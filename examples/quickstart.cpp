// Quickstart: build two packets, collide them twice at different offsets
// (the hidden-terminal pattern of Fig 1-2), and ZigZag-decode both.
//
//   $ ./quickstart
//
// Walks through the whole public API: transmitter, channel, collision
// synthesis, detection, and the ZigZag decoder.
#include <cstdio>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/decoder.h"

using namespace zz;

int main() {
  Rng rng(2008);

  // --- Two senders build packets ------------------------------------------
  phy::FrameHeader ha;
  ha.sender_id = 1;
  ha.seq = 1;
  ha.payload_bytes = 400;
  const phy::TxFrame alice = phy::build_frame(ha, rng.bytes(400));

  phy::FrameHeader hb = ha;
  hb.sender_id = 2;
  const phy::TxFrame bob = phy::build_frame(hb, rng.bytes(400));

  // --- Each traverses its own impaired channel -----------------------------
  chan::ImpairmentConfig icfg;
  icfg.snr_db = 10.0;  // both at 10 dB: no capture possible, SIR = 0 dB
  const auto ch_a = chan::random_channel(rng, icfg);
  const auto ch_b = chan::random_channel(rng, icfg);

  // --- They collide twice, jittered differently (802.11 retransmissions) ---
  const auto c1 = emu::CollisionBuilder()
                      .add(alice, ch_a, 0)
                      .add(bob, ch_b, 240)  // Δ1 = 240 samples
                      .build(rng);
  const auto c2 = emu::CollisionBuilder()
                      .add(phy::with_retry(alice, true),
                           chan::retransmission_channel(rng, ch_a), 0)
                      .add(phy::with_retry(bob, true),
                           chan::retransmission_channel(rng, ch_b), 700)
                      .build(rng);  // Δ2 = 700: different offset = decodable

  // --- The AP knows its clients from association ----------------------------
  phy::SenderProfile prof_a, prof_b;
  prof_a.id = 1;
  prof_a.freq_offset = ch_a.freq_offset;  // coarse estimate from association
  prof_a.isi = ch_a.isi;
  prof_a.equalizer = ch_a.isi.inverse(7, 3);
  prof_a.snr_db = 10.0;
  prof_b = prof_a;
  prof_b.id = 2;
  prof_b.freq_offset = ch_b.freq_offset;
  prof_b.isi = ch_b.isi;
  prof_b.equalizer = ch_b.isi.inverse(7, 3);
  const std::vector<phy::SenderProfile> profiles{prof_a, prof_b};

  // --- Estimate each copy's channel from its preamble correlation ----------
  auto detect = [&](const emu::Reception& rec, int truth_idx, int prof_idx) {
    const auto pe = phy::estimate_at_peak(
        rec.samples, static_cast<std::size_t>(rec.truth[truth_idx].start),
        profiles[prof_idx].freq_offset);
    zigzag::Detection d;
    d.origin = pe.origin;
    d.mu = pe.mu;
    d.h = pe.h;
    d.freq_offset = profiles[prof_idx].freq_offset;
    d.metric = pe.metric;
    d.profile_index = prof_idx;
    return d;
  };

  zigzag::CollisionInput in1, in2;
  in1.samples = &c1.samples;
  in1.placements = {{0, detect(c1, 0, 0)}, {1, detect(c1, 1, 1)}};
  in2.samples = &c2.samples;
  in2.is_retransmission = true;
  in2.placements = {{0, detect(c2, 0, 0)}, {1, detect(c2, 1, 1)}};

  // --- ZigZag decode --------------------------------------------------------
  const zigzag::ZigZagDecoder decoder;
  const zigzag::CollisionInput inputs[2] = {in1, in2};
  const auto result = decoder.decode({inputs, 2}, profiles, 2);

  std::printf("Decoded %zu chunks across the two collisions\n\n", result.chunks);
  const phy::TxFrame* truths[2] = {&alice, &bob};
  for (int i = 0; i < 2; ++i) {
    const auto& p = result.packets[i];
    const phy::TxFrame ref = truths[i]->header.retry == p.header.retry
                                 ? *truths[i]
                                 : phy::with_retry(*truths[i], p.header.retry);
    std::printf("packet %d (sender %u): header=%s crc=%s BER=%.2e\n", i,
                p.header.sender_id, p.header_ok ? "ok" : "FAIL",
                p.crc_ok ? "ok" : "fail",
                p.header_ok ? bit_error_rate(ref.air_bits(), p.air_bits) : 1.0);
  }
  std::printf("\nBoth packets recovered from two collisions that stock 802.11 "
              "would have discarded.\n");
  return 0;
}
