// The paper's motivating scenario end to end: Alice and Bob cannot sense
// each other and hammer the same AP. Compare the three receiver designs of
// §5.1(e) on the identical traffic pattern.
//
//   $ ./hidden_terminal_demo
#include <cstdio>

#include "zz/common/rng.h"
#include "zz/common/table.h"
#include "zz/testbed/experiment.h"

using namespace zz;

int main() {
  testbed::ExperimentConfig cfg;
  cfg.packets_per_sender = 12;
  cfg.payload_bytes = 200;

  Table t({"receiver", "Alice loss", "Bob loss", "aggregate throughput"});
  for (auto kind : {testbed::ReceiverKind::Current80211,
                    testbed::ReceiverKind::CollisionFreeScheduler,
                    testbed::ReceiverKind::ZigZag}) {
    Rng rng(7);  // identical seed: identical traffic and channels
    const auto r = testbed::run_pair(rng, kind, 11.0, 11.0, /*p_sense=*/0.0, cfg);
    const char* name = kind == testbed::ReceiverKind::Current80211
                           ? "current 802.11"
                       : kind == testbed::ReceiverKind::CollisionFreeScheduler
                           ? "collision-free scheduler"
                           : "ZigZag";
    t.add_row({name, Table::pct(r.flows[0].loss_rate(), 1),
               Table::pct(r.flows[1].loss_rate(), 1),
               Table::num(r.total_throughput(), 3)});
  }
  t.print("Hidden terminals: Alice & Bob at 11 dB, no carrier sense");
  std::printf("\n802.11 loses nearly everything to repeated collisions; the\n"
              "scheduler survives by serializing; ZigZag decodes the "
              "collisions themselves.\n");
  return 0;
}
