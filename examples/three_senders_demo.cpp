// Beyond two interferers (§4.5, §5.7): three hidden senders resolved from
// three collisions by the greedy chunk schedule of Fig 4-6.
//
//   $ ./three_senders_demo
#include <cstdio>

#include "zz/common/rng.h"
#include "zz/common/table.h"
#include "zz/testbed/experiment.h"
#include "zz/zigzag/scheduler.h"

using namespace zz;

int main() {
  // First, the abstract schedule on the Fig 4-6(a) pattern.
  zigzag::Pattern pattern;
  pattern.lengths = {100, 100, 100};
  pattern.collisions = {{{0, 0}, {1, 20}, {2, 50}},
                        {{0, 0}, {1, 60}, {2, 20}},
                        {{0, 0}, {1, 40}, {2, 80}}};
  const auto schedule = zigzag::greedy_schedule(pattern);
  std::printf("Greedy schedule for Fig 4-6(a): %s in %zu chunks "
              "(%zu rounds)\n\n",
              schedule.complete ? "decodable" : "NOT decodable",
              schedule.steps.size(), schedule.rounds);
  std::printf("first decode steps:\n");
  for (std::size_t i = 0; i < 6 && i < schedule.steps.size(); ++i) {
    const auto& st = schedule.steps[i];
    std::printf("  chunk %zu: packet %zu symbols [%zu, %zu) from collision %zu\n",
                i + 1, st.packet, st.k0, st.k1, st.collision);
  }

  // Then the full waveform experiment.
  testbed::ExperimentConfig cfg;
  cfg.packets_per_sender = 5;
  cfg.payload_bytes = 200;
  Rng rng(31);
  const auto flows =
      testbed::run_three_hidden(rng, testbed::ReceiverKind::ZigZag, 12.0, cfg);

  Table t({"sender", "delivered", "loss", "throughput"});
  for (std::size_t i = 0; i < flows.size(); ++i)
    t.add_row({std::to_string(i + 1),
               std::to_string(flows[i].delivered) + "/" +
                   std::to_string(flows[i].offered),
               Table::pct(flows[i].loss_rate(), 1),
               Table::num(flows[i].throughput, 3)});
  t.print("\nThree hidden senders, joint decode over three collisions");
  std::printf("\nEach sender gets a fair ~1/3 share — as if scheduled in "
              "separate slots (§5.7).\n");
  return 0;
}
