// A tour of the collision patterns of Fig 4-1: overlapped, flipped order,
// different sizes, capture, and single-collision cancellation — all through
// the same decoder.
//
//   $ ./collision_patterns_demo
#include <cstdio>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/common/table.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/decoder.h"

using namespace zz;

namespace {

struct Party {
  phy::TxFrame frame;
  chan::ChannelParams channel;
  phy::SenderProfile profile;
};

Party make_party(Rng& rng, std::uint8_t id, std::size_t payload, double snr) {
  Party p;
  phy::FrameHeader h;
  h.sender_id = id;
  h.seq = id * 10;
  h.payload_bytes = static_cast<std::uint16_t>(payload);
  p.frame = phy::build_frame(h, rng.bytes(payload));
  chan::ImpairmentConfig icfg;
  icfg.snr_db = snr;
  p.channel = chan::random_channel(rng, icfg);
  p.profile.id = id;
  p.profile.freq_offset = p.channel.freq_offset;
  p.profile.snr_db = snr;
  p.profile.isi = p.channel.isi;
  p.profile.equalizer = p.channel.isi.inverse(7, 3);
  return p;
}

zigzag::Detection detect(const emu::Reception& rec, int truth_idx,
                         const phy::SenderProfile& prof, int prof_idx) {
  const auto pe = phy::estimate_at_peak(
      rec.samples, static_cast<std::size_t>(rec.truth[truth_idx].start),
      prof.freq_offset);
  zigzag::Detection d;
  d.origin = pe.origin;
  d.mu = pe.mu;
  d.h = pe.h;
  d.freq_offset = prof.freq_offset;
  d.metric = pe.metric;
  d.profile_index = prof_idx;
  return d;
}

std::string outcome(const Party& a, const Party& b,
                    const zigzag::DecodeResult& res) {
  auto ber = [](const phy::TxFrame& t, const zigzag::PacketResult& r) {
    if (!r.header_ok) return 1.0;
    const phy::TxFrame ref =
        t.header.retry == r.header.retry ? t : phy::with_retry(t, r.header.retry);
    return bit_error_rate(ref.air_bits(), r.air_bits);
  };
  const double ba = ber(a.frame, res.packets[0]);
  const double bb = ber(b.frame, res.packets[1]);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "A %.1e / B %.1e %s", ba, bb,
                (ba < 1e-3 && bb < 1e-3) ? "(both delivered)" : "");
  return buf;
}

}  // namespace

int main() {
  const zigzag::ZigZagDecoder dec;
  Table t({"pattern", "result (BER)"});

  {  // (a) overlapped collisions at different offsets
    Rng rng(1);
    auto a = make_party(rng, 1, 300, 11.0), b = make_party(rng, 2, 300, 11.0);
    auto c1 = emu::CollisionBuilder().add(a.frame, a.channel, 0).add(b.frame, b.channel, 300).build(rng);
    auto c2 = emu::CollisionBuilder()
                  .add(phy::with_retry(a.frame, true), chan::retransmission_channel(rng, a.channel), 0)
                  .add(phy::with_retry(b.frame, true), chan::retransmission_channel(rng, b.channel), 800)
                  .build(rng);
    std::vector<phy::SenderProfile> profs{a.profile, b.profile};
    zigzag::CollisionInput i1{&c1.samples, {{0, detect(c1, 0, a.profile, 0)}, {1, detect(c1, 1, b.profile, 1)}}, false};
    zigzag::CollisionInput i2{&c2.samples, {{0, detect(c2, 0, a.profile, 0)}, {1, detect(c2, 1, b.profile, 1)}}, true};
    const zigzag::CollisionInput ins[2] = {i1, i2};
    t.add_row({"(a) overlapped collisions", outcome(a, b, dec.decode({ins, 2}, profs, 2))});
  }
  {  // (b) flipped order
    Rng rng(2);
    auto a = make_party(rng, 1, 300, 11.0), b = make_party(rng, 2, 300, 11.0);
    auto c1 = emu::CollisionBuilder().add(a.frame, a.channel, 0).add(b.frame, b.channel, 350).build(rng);
    auto c2 = emu::CollisionBuilder()
                  .add(phy::with_retry(b.frame, true), chan::retransmission_channel(rng, b.channel), 0)
                  .add(phy::with_retry(a.frame, true), chan::retransmission_channel(rng, a.channel), 500)
                  .build(rng);
    std::vector<phy::SenderProfile> profs{a.profile, b.profile};
    zigzag::CollisionInput i1{&c1.samples, {{0, detect(c1, 0, a.profile, 0)}, {1, detect(c1, 1, b.profile, 1)}}, false};
    zigzag::CollisionInput i2{&c2.samples, {{1, detect(c2, 0, b.profile, 1)}, {0, detect(c2, 1, a.profile, 0)}}, true};
    const zigzag::CollisionInput ins[2] = {i1, i2};
    t.add_row({"(b) flipped order", outcome(a, b, dec.decode({ins, 2}, profs, 2))});
  }
  {  // (c) different sizes
    Rng rng(3);
    auto a = make_party(rng, 1, 400, 11.0), b = make_party(rng, 2, 150, 11.0);
    auto c1 = emu::CollisionBuilder().add(a.frame, a.channel, 0).add(b.frame, b.channel, 200).build(rng);
    auto c2 = emu::CollisionBuilder()
                  .add(phy::with_retry(a.frame, true), chan::retransmission_channel(rng, a.channel), 0)
                  .add(phy::with_retry(b.frame, true), chan::retransmission_channel(rng, b.channel), 700)
                  .build(rng);
    std::vector<phy::SenderProfile> profs{a.profile, b.profile};
    zigzag::CollisionInput i1{&c1.samples, {{0, detect(c1, 0, a.profile, 0)}, {1, detect(c1, 1, b.profile, 1)}}, false};
    zigzag::CollisionInput i2{&c2.samples, {{0, detect(c2, 0, a.profile, 0)}, {1, detect(c2, 1, b.profile, 1)}}, true};
    const zigzag::CollisionInput ins[2] = {i1, i2};
    t.add_row({"(c) different sizes", outcome(a, b, dec.decode({ins, 2}, profs, 2))});
  }
  {  // (e) capture: single collision, interference cancellation
    Rng rng(8);
    auto a = make_party(rng, 1, 300, 24.0), b = make_party(rng, 2, 300, 12.0);
    auto c1 = emu::CollisionBuilder().add(a.frame, a.channel, 0).add(b.frame, b.channel, 150).build(rng);
    std::vector<phy::SenderProfile> profs{a.profile, b.profile};
    zigzag::CollisionInput i1{&c1.samples, {{0, detect(c1, 0, a.profile, 0)}, {1, detect(c1, 1, b.profile, 1)}}, false};
    t.add_row({"(e) capture, one collision", outcome(a, b, dec.decode({&i1, 1}, profs, 2))});
  }
  {  // (f) collision + clean retransmission
    Rng rng(5);
    auto a = make_party(rng, 1, 300, 11.0), b = make_party(rng, 2, 300, 11.0);
    auto c1 = emu::CollisionBuilder().add(a.frame, a.channel, 0).add(b.frame, b.channel, 220).build(rng);
    auto c2 = emu::CollisionBuilder()
                  .add(phy::with_retry(b.frame, true), chan::retransmission_channel(rng, b.channel), 0)
                  .build(rng);
    std::vector<phy::SenderProfile> profs{a.profile, b.profile};
    zigzag::CollisionInput i1{&c1.samples, {{0, detect(c1, 0, a.profile, 0)}, {1, detect(c1, 1, b.profile, 1)}}, false};
    zigzag::CollisionInput i2{&c2.samples, {{1, detect(c2, 0, b.profile, 1)}}, true};
    const zigzag::CollisionInput ins[2] = {i1, i2};
    t.add_row({"(f) clean retransmission", outcome(a, b, dec.decode({ins, 2}, profs, 2))});
  }

  t.print("Fig 4-1 collision patterns through one decoder");
  return 0;
}
