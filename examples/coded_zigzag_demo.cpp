// §6(a) future work: layering a convolutional code under ZigZag. The
// decoder's residual ~1e-3 bit errors — which cost a CRC-gated receiver the
// whole packet — are exactly what the K=7 rate-1/2 code mops up.
//
//   $ ./coded_zigzag_demo
#include <cstdio>

#include "zz/chan/channel.h"
#include "zz/coding/convolutional.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/common/table.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/phy/scrambler.h"
#include "zz/zigzag/decoder.h"

using namespace zz;

int main() {
  Rng rng(66);
  const coding::ConvolutionalCode code;

  // The "application payload" is coded before framing: 150 info bytes become
  // a 306-byte coded payload.
  const Bits info = rng.bits(150 * 8);
  const Bits coded = code.encode(info);
  Bytes coded_payload((coded.size() + 7) / 8);
  for (std::size_t i = 0; i < coded.size(); ++i)
    if (coded[i]) coded_payload[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));

  std::size_t trials = 0, uncoded_ok = 0, coded_ok = 0;
  for (int t = 0; t < 10; ++t) {
    phy::FrameHeader ha;
    ha.sender_id = 1;
    ha.seq = static_cast<std::uint16_t>(t);
    ha.payload_bytes = static_cast<std::uint16_t>(coded_payload.size());
    auto fa = phy::build_frame(ha, coded_payload);
    phy::FrameHeader hb = ha;
    hb.sender_id = 2;
    hb.seq = static_cast<std::uint16_t>(100 + t);
    auto fb = phy::build_frame(hb, rng.bytes(coded_payload.size()));

    chan::ImpairmentConfig icfg;
    icfg.snr_db = 7.5;  // low SNR: uncoded packets barely squeak by
    auto ca = chan::random_channel(rng, icfg);
    auto cb = chan::random_channel(rng, icfg);
    auto c1 = emu::CollisionBuilder().add(fa, ca, 0).add(fb, cb, 250).build(rng);
    auto c2 = emu::CollisionBuilder()
                  .add(phy::with_retry(fa, true), chan::retransmission_channel(rng, ca), 0)
                  .add(phy::with_retry(fb, true), chan::retransmission_channel(rng, cb), 800)
                  .build(rng);

    phy::SenderProfile pa, pb;
    pa.id = 1; pa.freq_offset = ca.freq_offset; pa.snr_db = 7.5;
    pa.isi = ca.isi; pa.equalizer = ca.isi.inverse(7, 3);
    pb.id = 2; pb.freq_offset = cb.freq_offset; pb.snr_db = 7.5;
    pb.isi = cb.isi; pb.equalizer = cb.isi.inverse(7, 3);
    std::vector<phy::SenderProfile> profiles{pa, pb};

    auto det = [&](const emu::Reception& rec, int idx, const phy::SenderProfile& p, int pi) {
      const auto pe = phy::estimate_at_peak(
          rec.samples, static_cast<std::size_t>(rec.truth[idx].start), p.freq_offset);
      zigzag::Detection d;
      d.origin = pe.origin; d.mu = pe.mu; d.h = pe.h;
      d.freq_offset = p.freq_offset; d.metric = pe.metric; d.profile_index = pi;
      return d;
    };
    zigzag::CollisionInput i1{&c1.samples, {{0, det(c1, 0, pa, 0)}, {1, det(c1, 1, pb, 1)}}, false};
    zigzag::CollisionInput i2{&c2.samples, {{0, det(c2, 0, pa, 0)}, {1, det(c2, 1, pb, 1)}}, true};
    const zigzag::CollisionInput ins[2] = {i1, i2};
    const auto res = zigzag::ZigZagDecoder().decode({ins, 2}, profiles, 2);
    ++trials;
    if (!res.packets[0].header_ok) continue;
    if (res.packets[0].crc_ok) ++uncoded_ok;

    // Re-derive the coded payload bits from ZigZag's (possibly imperfect)
    // output and run Viterbi over them.
    const Bits air = res.packets[0].air_bits;
    if (air.size() < 48) continue;
    phy::Scrambler scr(phy::scrambler_seed_for(res.packets[0].header.seq));
    Bits body(air.begin() + 48, air.end());
    const Bits descrambled = scr.apply(body);
    Bits rx_coded(coded.size());
    for (std::size_t i = 0; i < coded.size() && i < descrambled.size(); ++i)
      rx_coded[i] = descrambled[i];
    const Bits decoded = code.decode_hard(rx_coded);
    if (decoded == info) ++coded_ok;
  }

  Table t({"pipeline", "packets recovered"});
  t.add_row({"ZigZag alone (CRC-gated)", std::to_string(uncoded_ok) + "/" + std::to_string(trials)});
  t.add_row({"ZigZag + convolutional code", std::to_string(coded_ok) + "/" + std::to_string(trials)});
  t.print("Coding under ZigZag at 7.5 dB (paper §6a)");
  std::printf("\nThe code converts residual ~1e-3 BER decodes into clean "
              "packets — the paper's\njustification for the BER<1e-3 delivery "
              "criterion (§5.1f).\n");
  return 0;
}
