// Capture-effect scenarios (Fig 4-1 d/e, §5.5): as Alice's power grows,
// ZigZag transitions from pair decoding (throughput ~1) to single-collision
// interference cancellation (throughput ~2) — without being told.
//
//   $ ./capture_effect_demo
#include <cstdio>

#include "zz/common/rng.h"
#include "zz/common/table.h"
#include "zz/testbed/experiment.h"

using namespace zz;

int main() {
  testbed::ExperimentConfig cfg;
  cfg.packets_per_sender = 8;
  cfg.payload_bytes = 200;

  Table t({"SINR (dB)", "ZigZag Alice", "ZigZag Bob", "ZigZag total",
           "802.11 total"});
  for (double sinr : {0.0, 6.0, 12.0, 16.0}) {
    Rng rng(11);
    const auto zz = testbed::run_pair(rng, testbed::ReceiverKind::ZigZag,
                                      12.0 + sinr, 12.0, 0.0, cfg);
    Rng rng2(11);
    const auto r11 = testbed::run_pair(rng2, testbed::ReceiverKind::Current80211,
                                       12.0 + sinr, 12.0, 0.0, cfg);
    t.add_row({Table::num(sinr, 3), Table::num(zz.concurrent_throughput[0], 3),
               Table::num(zz.concurrent_throughput[1], 3),
               Table::num(zz.total_throughput(), 3),
               Table::num(r11.total_throughput(), 3)});
  }
  t.print("Capture effect: Alice's SNR grows, Bob fixed at 12 dB");
  std::printf("\nAt high SINR ZigZag decodes Alice directly, subtracts her, "
              "and decodes Bob from the\nsame collision — two packets per "
              "airtime slot.\n");
  return 0;
}
