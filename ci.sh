#!/usr/bin/env bash
# Tier-1 verify, executable form. Runs the exact ROADMAP recipe from a clean
# tree, then smoke-runs the bench driver so the BENCH_*.json path stays live.
#
#   ./ci.sh            # clean configure + build + ctest + bench smoke
#   ZZ_KEEP_BUILD=1 ./ci.sh   # reuse an existing build directory
set -euo pipefail
cd "$(dirname "$0")"

if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
  rm -rf build
fi

# --- Tier-1 (ROADMAP.md recipe; -j given a value for older ctest) ---
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench harness smoke: driver must emit a machine-readable baseline ---
./build/bench/run_all --quick --out build/BENCH_decoder.json
test -s build/BENCH_decoder.json

echo "ci.sh: tier-1 green, bench baseline written to build/BENCH_decoder.json"
