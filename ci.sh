#!/usr/bin/env bash
# Tier-1 verify, executable form. Runs the exact ROADMAP recipe from a clean
# tree, then the bench driver's regression gates against the committed
# baseline.
#
#   ./ci.sh            # clean configure + build + ctest + bench gates
#   ZZ_KEEP_BUILD=1 ./ci.sh   # reuse an existing build directory
set -euo pipefail
cd "$(dirname "$0")"

if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
  rm -rf build
fi

# --- Tier-1 (ROADMAP.md recipe; -j given a value for older ctest) ---
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench gates, at the committed baseline's (default) scale: the driver
# runs EVERY deterministic paper bench (headline subset + the folded
# fig_*/lemma_* sweeps), parses its own output and fails on
# detector-accuracy drift, Fig 5-3 BER non-monotonicity, an n_sender_sweep
# fair-share ratio below 0.9 of 1/n, a per-bench wall-time budget blowout —
# and on ANY stdout drift from bench/baselines (every bench is sharded-RNG
# reproducible, so a changed digit means changed behavior; regenerate the
# baseline deliberately when that is intended). ---
./build/bench/run_all --check \
  --baseline bench/baselines/BENCH_decoder.json \
  --out build/BENCH_decoder.json
test -s build/BENCH_decoder.json

# --- Docs-consistency: every src/<module> must appear in the README module
# map and docs/PAPER_MAP.md, and every bench target (the ZZ_BENCHES list
# plus run_all/complexity) must appear in docs/PAPER_MAP.md — so the
# paper-to-code map cannot silently rot as modules and benches are added.
docs_fail=0
for d in src/*/; do
  m="$(basename "$d")"
  grep -q "| \`$m\`" README.md || {
    echo "docs-consistency: README.md module map is missing \`$m\`"
    docs_fail=1
  }
  grep -q "src/$m/" docs/PAPER_MAP.md || {
    echo "docs-consistency: docs/PAPER_MAP.md does not mention module src/$m/"
    docs_fail=1
  }
done
benches="$(sed -n '/^set(ZZ_BENCHES$/,/)$/p' bench/CMakeLists.txt \
  | sed -e 's/set(ZZ_BENCHES//' -e 's/)//' ) run_all complexity"
for b in $benches; do
  grep -q "\`$b\`" docs/PAPER_MAP.md || {
    echo "docs-consistency: docs/PAPER_MAP.md does not mention bench \`$b\`"
    docs_fail=1
  }
done
if [[ "$docs_fail" -ne 0 ]]; then
  echo "ci.sh: docs-consistency check FAILED"
  exit 1
fi

echo "ci.sh: tier-1 green, bench gates green, docs consistent, baseline at build/BENCH_decoder.json"
