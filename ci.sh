#!/usr/bin/env bash
# Tier-1 verify, executable form. Runs the exact ROADMAP recipe from a clean
# tree, then the bench driver's regression gates against the committed
# baseline.
#
#   ./ci.sh                  # plain: configure + build + ctest + bench gates
#   ./ci.sh --sanitize       # analysis matrix: ASan+UBSan leg, TSan leg,
#                            #   clang -Wthread-safety + clang-tidy when a
#                            #   suitable clang is installed (version-guarded)
#   ./ci.sh --sanitize=asan  # one sanitizer leg only (CI matrix jobs)
#   ./ci.sh --sanitize=tsan
#   ./ci.sh --coverage       # instrumented build + ctest + per-module line
#                            #   coverage floors (scripts/coverage_floors.txt)
#   ./ci.sh --model-check    # ZZ_MODEL_CHECK build: full ctest (model suites
#                            #   included) + the protocol runner, which logs
#                            #   per-protocol interleaving counts and enforces
#                            #   the 1000-interleaving floor
#   ZZ_KEEP_BUILD=1 ./ci.sh  # reuse existing build directories
#
# The PLAIN run stays authoritative for the bench drift gate: sanitizer legs
# run the full test suite plus a fast deterministic bench subset with scaled
# wall budgets (--wall-scale), but never the stdout drift-diff — the
# instrumentation measures the tool, not the decoder. See docs/ANALYSIS.md.
set -euo pipefail
cd "$(dirname "$0")"

MODE="plain"
case "${1:-}" in
  "") ;;
  --sanitize) MODE="matrix" ;;
  --sanitize=asan) MODE="asan" ;;
  --sanitize=tsan) MODE="tsan" ;;
  --coverage) MODE="coverage" ;;
  --model-check) MODE="model" ;;
  *) echo "usage: $0 [--sanitize | --sanitize=asan | --sanitize=tsan |" \
          "--coverage | --model-check]" >&2
     exit 2 ;;
esac

SUPP_DIR="$PWD/scripts/sanitizers"
# Fast deterministic benches, cheap enough that 2-10x sanitizer overhead
# still finishes inside the (scaled) budgets.
SAN_BENCHES="error_propagation,fig_4_2_correlation,fig_5_2_tracking_isi,lemma_4_4_1_ack"
SAN_WALL_SCALE=12

# --- one sanitizer leg: configure, build, ctest, fast bench subset -------
run_sanitizer_leg() {  # $1 = asan|tsan
  local leg="$1" build_dir san jobs
  build_dir="build-$1"
  if [[ "$leg" == "asan" ]]; then
    san="address;undefined"
  else
    san="thread"
  fi
  # Sanitizer runtimes fail hard (halt_on_error) so a finding is a red
  # build, never a console note; suppressions live in scripts/sanitizers/
  # (policy: docs/ANALYSIS.md §2 — every entry carries a justification).
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:check_initialization_order=1:strict_init_order=1:suppressions=$SUPP_DIR/asan.supp"
  export LSAN_OPTIONS="suppressions=$SUPP_DIR/lsan.supp"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP_DIR/ubsan.supp"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$SUPP_DIR/tsan.supp"

  # Cap parallelism: the suites spin their own 1/2/4-thread pools, and
  # instrumented threads are far heavier than plain ones — `ctest -j
  # $(nproc)` oversubscribes into wall-budget timeouts. TSan serializes
  # worst, so it gets the tighter cap.
  if [[ "$leg" == "tsan" ]]; then
    jobs=$(( $(nproc) / 4 ))
  else
    jobs=$(( $(nproc) / 2 ))
  fi
  (( jobs >= 1 )) || jobs=1

  if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
    rm -rf "$build_dir"
  fi
  # The ASan leg also builds with ZZ_MODEL_CHECK so the explorer engine and
  # the model suites themselves run instrumented (the virtual threads are
  # real std::threads precisely so sanitizers keep working under the
  # explorer); TSan stays a plain build — its job is the production
  # interleavings, and the model leg covers the simulated ones.
  if [[ "$leg" == "asan" ]]; then
    cmake -B "$build_dir" -S . -DZZ_SANITIZE="$san" -DZZ_MODEL_CHECK=ON
  else
    cmake -B "$build_dir" -S . -DZZ_SANITIZE="$san"
  fi
  cmake --build "$build_dir" -j "$(nproc)"
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs")

  # Fast bench subset: exit codes + scaled wall budgets, no drift diff.
  "./$build_dir/bench/run_all" --check \
    --only "$SAN_BENCHES" --wall-scale "$SAN_WALL_SCALE" \
    --out "$build_dir/BENCH_sanitize.json"
  # Streaming route and AP farm under sanitizers: the sample-in →
  # packet-out pipeline (ring ingest, online framing, chunk decode) and
  # the farm's concurrent machinery (work-stealing shards, per-worker
  # caches, the episode-memo CAS protocol) are exactly the kind of
  # stateful/racy code sanitizers exist for, but at default scale they
  # are too heavy for 2-10x instrumentation — run them at --quick scale
  # in their own invocation (one run_all run carries one scale).
  "./$build_dir/bench/run_all" --quick --check \
    --only streaming_pipeline,ap_farm --wall-scale "$SAN_WALL_SCALE" \
    --out "$build_dir/BENCH_sanitize_streaming.json"
  echo "ci.sh: $leg leg green ($build_dir)"
}

# --- clang-only static analysis: thread-safety contract + clang-tidy -----
run_clang_static() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "ci.sh: clang++ not found — skipping -Wthread-safety leg" \
         "(the contract is still enforced by the GitHub Actions matrix)"
  else
    local build_dir="build-tsa"
    if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
      rm -rf "$build_dir"
    fi
    # Compile-only leg: -Wthread-safety violations are errors
    # (ZZ_THREAD_SAFETY), so a clean build IS the machine-checked proof of
    # the ThreadPool/DecodeCache locking contracts.
    cmake -B "$build_dir" -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DZZ_THREAD_SAFETY=ON
    cmake --build "$build_dir" -j "$(nproc)"
    echo "ci.sh: clang -Wthread-safety leg green ($build_dir)"
  fi
  ./scripts/run_clang_tidy.sh || exit 1
}

# --- model-check leg: explore the lock-free protocol interleavings -------
run_model_check() {
  local build_dir="build-model"
  if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
    rm -rf "$build_dir"
  fi
  cmake -B "$build_dir" -S . -DZZ_MODEL_CHECK=ON
  cmake --build "$build_dir" -j "$(nproc)"
  # Full suite: the model suites run the explorer, the ordinary suites
  # prove the instrumented façade still passes through for objects outside
  # explorations.
  (cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
  # The runner logs per-protocol interleaving counts (the acceptance
  # record) and fails on any unexpected verdict or a count under 1000.
  "./$build_dir/tools/model/model_check_runner"
  echo "ci.sh: model-check leg green ($build_dir)"
}
if [[ "$MODE" == "model" ]]; then
  run_model_check
  exit 0
fi

# --- coverage leg: instrumented tests + per-module line-coverage floors --
# The test suite (not the benches) defines covered; benches/examples are
# skipped — at -O0 with instrumentation they are slow and their coverage
# is the same decode paths the tests already pin. Floors ratchet: pinned
# at last-measured minus 2 points, only ever raised (docs/ANALYSIS.md §9).
if [[ "$MODE" == "coverage" ]]; then
  build_dir="build-cov"
  if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
    rm -rf "$build_dir"
  fi
  cmake -B "$build_dir" -S . -DZZ_COVERAGE=ON \
    -DZZ_BUILD_BENCH=OFF -DZZ_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j "$(nproc)"
  (cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
  python3 scripts/coverage_report.py "$build_dir" \
    --floors scripts/coverage_floors.txt
  echo "ci.sh: coverage leg green ($build_dir)"
  exit 0
fi

if [[ "$MODE" == "asan" || "$MODE" == "tsan" ]]; then
  run_sanitizer_leg "$MODE"
  exit 0
fi
if [[ "$MODE" == "matrix" ]]; then
  run_sanitizer_leg asan
  run_sanitizer_leg tsan
  run_clang_static
  echo "ci.sh: sanitizer matrix green"
  exit 0
fi

# ------------------------------------------------------------- plain tier-1
if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
  rm -rf build
fi

# --- Tier-1 (ROADMAP.md recipe; -j given a value for older ctest) ---
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench gates, at the committed baseline's (default) scale: the driver
# runs EVERY deterministic paper bench (headline subset + the folded
# fig_*/lemma_* sweeps), parses its own output and fails on
# detector-accuracy drift, Fig 5-3 BER non-monotonicity, an n_sender_sweep
# fair-share ratio below 0.9 of 1/n, a per-bench wall-time budget blowout —
# and on ANY stdout drift from bench/baselines (every bench is sharded-RNG
# reproducible, so a changed digit means changed behavior; regenerate the
# baseline deliberately when that is intended). ---
./build/bench/run_all --check \
  --baseline bench/baselines/BENCH_decoder.json \
  --out build/BENCH_decoder.json
test -s build/BENCH_decoder.json

# --- Docs/conventions consistency: every src/<module> must appear in the
# README module map and docs/PAPER_MAP.md, every bench target in
# docs/PAPER_MAP.md, and the mechanical source conventions (include
# hygiene, RNG discipline, bench registration) must hold — so neither the
# paper-to-code map nor the code conventions silently rot.
docs_fail=0
for d in src/*/; do
  m="$(basename "$d")"
  grep -q "| \`$m\`" README.md || {
    echo "docs-consistency: README.md module map is missing \`$m\`"
    docs_fail=1
  }
  grep -q "src/$m/" docs/PAPER_MAP.md || {
    echo "docs-consistency: docs/PAPER_MAP.md does not mention module src/$m/"
    docs_fail=1
  }
done
benches="$(sed -n '/^set(ZZ_BENCHES$/,/)$/p' bench/CMakeLists.txt \
  | sed -e 's/set(ZZ_BENCHES//' -e 's/)//' ) run_all complexity"
for b in $benches; do
  grep -q "\`$b\`" docs/PAPER_MAP.md || {
    echo "docs-consistency: docs/PAPER_MAP.md does not mention bench \`$b\`"
    docs_fail=1
  }
done
# Selftest first: prove every lint rule can fire before trusting its
# "clean" (a gate that cannot fail is not a gate), then lint the tree.
./scripts/lint_conventions.sh --selftest || docs_fail=1
./scripts/lint_conventions.sh || docs_fail=1
if [[ "$docs_fail" -ne 0 ]]; then
  echo "ci.sh: docs-consistency check FAILED"
  exit 1
fi

echo "ci.sh: tier-1 green, bench gates green, docs consistent, baseline at build/BENCH_decoder.json"
