#!/usr/bin/env bash
# Tier-1 verify, executable form. Runs the exact ROADMAP recipe from a clean
# tree, then the bench driver's regression gates against the committed
# baseline.
#
#   ./ci.sh            # clean configure + build + ctest + bench gates
#   ZZ_KEEP_BUILD=1 ./ci.sh   # reuse an existing build directory
set -euo pipefail
cd "$(dirname "$0")"

if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
  rm -rf build
fi

# --- Tier-1 (ROADMAP.md recipe; -j given a value for older ctest) ---
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench gates, at the committed baseline's (default) scale: the driver
# parses its own output and fails on detector-accuracy drift, Fig 5-3 BER
# non-monotonicity, an n_sender_sweep fair-share ratio below 0.9 of 1/n, a
# >2.5x wall-time blowup of a headline bench — and, for the deterministic
# n_sender_sweep, on ANY stdout drift from bench/baselines (the sweep is
# sharded-RNG reproducible, so a changed digit means changed behavior;
# regenerate the baseline deliberately when that is intended). ---
./build/bench/run_all --check \
  --baseline bench/baselines/BENCH_decoder.json \
  --out build/BENCH_decoder.json
test -s build/BENCH_decoder.json

echo "ci.sh: tier-1 green, bench gates green, baseline at build/BENCH_decoder.json"
