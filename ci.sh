#!/usr/bin/env bash
# Tier-1 verify, executable form. Runs the exact ROADMAP recipe from a clean
# tree, then smoke-runs the bench driver so the BENCH_*.json path stays live.
#
#   ./ci.sh            # clean configure + build + ctest + bench smoke
#   ZZ_KEEP_BUILD=1 ./ci.sh   # reuse an existing build directory
set -euo pipefail
cd "$(dirname "$0")"

if [[ -z "${ZZ_KEEP_BUILD:-}" ]]; then
  rm -rf build
fi

# --- Tier-1 (ROADMAP.md recipe; -j given a value for older ctest) ---
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# --- Bench smoke + regression gates: the driver parses its own output and
# fails on detector-accuracy drift, Fig 5-3 BER non-monotonicity, or a
# >2.5x wall-time blowup of either headline bench. ---
./build/bench/run_all --quick --check --out build/BENCH_decoder.json
test -s build/BENCH_decoder.json

echo "ci.sh: tier-1 green, bench gates green, baseline at build/BENCH_decoder.json"
