#!/usr/bin/env python3
"""Per-module line-coverage report + ratchet gate (ci.sh --coverage).

Walks a ZZ_COVERAGE build tree for .gcda note/data pairs, asks gcov for
JSON (`gcov --json-format --stdout`), folds the per-TU line records into
one covered/instrumented set per source file (a line counts as covered if
ANY test TU executed it), aggregates files into their src/<module>, and
enforces the per-module floors in scripts/coverage_floors.txt.

Ratchet rule (docs/ANALYSIS.md §9): floors sit 2 points under the last
measured value. When a module's coverage rises, raise its floor to the new
measurement minus 2 in the same PR; floors only move up. A module below
its floor fails the gate — write tests, don't lower the number.

Usage:
  scripts/coverage_report.py BUILD_DIR [--floors scripts/coverage_floors.txt]
                             [--gcov gcov]
Exit: 0 when every module meets its floor, 1 otherwise.
"""

import argparse
import collections
import json
import os
import re
import subprocess
import sys


def find_gcda(build_dir):
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                yield os.path.join(dirpath, name)


def gcov_json(gcov, gcda):
    """All file records gcov emits for one .gcda (may be several TUs)."""
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", gcda],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{gcov} failed on {gcda}: {proc.stderr.strip() or proc.stdout.strip()}"
        )
    records = []
    # One JSON document per line with --stdout; be tolerant of both shapes.
    for chunk in proc.stdout.splitlines():
        chunk = chunk.strip()
        if not chunk:
            continue
        records.append(json.loads(chunk))
    return records


def module_of(path):
    """src/<module>/... -> <module>, else None (tests/bench/system)."""
    m = re.search(r"(?:^|/)src/([^/]+)/", path)
    return m.group(1) if m else None


def load_floors(path):
    floors = {}
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            name, pct = line.split()
            floors[name] = float(pct)
    return floors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("build_dir")
    ap.add_argument("--floors", default="scripts/coverage_floors.txt")
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    args = ap.parse_args()

    gcda_files = sorted(find_gcda(args.build_dir))
    if not gcda_files:
        print(
            f"coverage_report: no .gcda under {args.build_dir} — "
            "build with -DZZ_COVERAGE=ON and run ctest first",
            file=sys.stderr,
        )
        return 1

    # file -> line -> max hit count across all TUs that instrument the line
    hits = collections.defaultdict(dict)
    for gcda in gcda_files:
        for record in gcov_json(args.gcov, gcda):
            for frec in record.get("files", []):
                path = frec["file"]
                if module_of(path) is None:
                    continue
                lines = hits[path]
                for lrec in frec.get("lines", []):
                    n = lrec["line_number"]
                    lines[n] = max(lines.get(n, 0), lrec["count"])

    per_module = collections.defaultdict(lambda: [0, 0])  # covered, total
    for path, lines in hits.items():
        mod = module_of(path)
        per_module[mod][0] += sum(1 for c in lines.values() if c > 0)
        per_module[mod][1] += len(lines)

    floors = load_floors(args.floors)
    fail = 0
    print(f"{'module':<10} {'lines':>7} {'covered':>8} {'pct':>7} {'floor':>7}")
    for mod in sorted(set(per_module) | set(floors)):
        covered, total = per_module.get(mod, (0, 0))
        if total == 0:
            print(f"coverage_report: module '{mod}' has a floor but no "
                  "instrumented lines — stale floors file?")
            fail = 1
            continue
        pct = 100.0 * covered / total
        floor = floors.get(mod)
        mark = ""
        if floor is None:
            # New module with no floor yet: report, then demand a pin so the
            # ratchet cannot silently skip it.
            mark = "  (no floor pinned — add one at measured-2)"
            fail = 1
        elif pct < floor:
            mark = "  BELOW FLOOR"
            fail = 1
        print(f"{mod:<10} {total:>7} {covered:>8} {pct:>6.1f}% "
              f"{floor if floor is not None else 0.0:>6.1f}%{mark}")
    if fail:
        print("coverage_report: FAILED (see ratchet rule in docs/ANALYSIS.md §9)")
        return 1
    print("coverage_report: all modules at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
