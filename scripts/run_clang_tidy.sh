#!/usr/bin/env bash
# clang-tidy over every src/ module with the committed .clang-tidy profile.
#
# Version-guarded: the profile uses check names (concurrency-*, performance-
# enum-size exclusions) that need clang-tidy >= 14; older or missing tools
# skip with a notice instead of failing, so the plain gcc tier-1 recipe
# stays runnable on lean machines. CI provides a suitable clang-tidy, which
# makes the pass enforcing there. WarningsAsErrors is '*' in .clang-tidy —
# any finding is a hard failure; fix it or NOLINT it with a justification
# (policy: docs/ANALYSIS.md §4).
#
#   ./scripts/run_clang_tidy.sh [build-dir]   # default: build-tidy
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_MAJOR=14
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found — skipping (enforced in CI)"
  exit 0
fi
major="$(clang-tidy --version | sed -n 's/.*version \([0-9]*\).*/\1/p' | head -1)"
if [[ -z "$major" || "$major" -lt "$MIN_MAJOR" ]]; then
  echo "run_clang_tidy: clang-tidy ${major:-?} < $MIN_MAJOR — skipping (enforced in CI)"
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"
# A dedicated configure keeps the compile database stable regardless of
# which sanitizer/tool legs ran before; tests/examples/benches are out of
# tidy scope (the profile targets the 9 library modules).
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . -DZZ_BUILD_TESTS=OFF -DZZ_BUILD_EXAMPLES=OFF \
    -DZZ_BUILD_BENCH=OFF >/dev/null
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "run_clang_tidy: clang-tidy $major over ${#sources[@]} src/ files"
fail=0
for f in "${sources[@]}"; do
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || fail=1
done
if [[ "$fail" -ne 0 ]]; then
  echo "run_clang_tidy: FAILED"
  exit 1
fi
echo "run_clang_tidy: clean"
