#!/usr/bin/env bash
# clang-tidy over the FULL compile database — the 9 src/ modules AND the
# tests/bench/examples leaves (each leaf directory carries its own
# .clang-tidy profile scoping which checks apply there).
#
# Version-guarded: the committed profiles use check names that need
# clang-tidy >= 14; older or missing tools skip with a notice instead of
# failing, so the plain gcc tier-1 recipe stays runnable on lean machines.
# CI provides a suitable clang-tidy, which makes the pass enforcing there.
# WarningsAsErrors is '*' in every profile — any finding is a hard failure;
# fix it or NOLINT it with a justification (policy: docs/ANALYSIS.md §4).
#
# The zz-* domain checks (tools/tidy) ride along via --load when the plugin
# is built. The plugin resolves clang/llvm symbols from the loading binary,
# so it only works inside the same LLVM major it was built against; the
# stamp file written next to the .so encodes that major and mismatches
# demote to the lint_conventions.sh grep fallback. ZZ_REQUIRE_TIDY_PLUGIN=1
# (the CI clang-plugin job) turns that demotion into a hard failure.
#
#   ./scripts/run_clang_tidy.sh [build-dir]   # default: build-tidy
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_MAJOR=14
if ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ "${ZZ_REQUIRE_TIDY_PLUGIN:-0}" == "1" ]]; then
    echo "run_clang_tidy: clang-tidy not found but ZZ_REQUIRE_TIDY_PLUGIN=1"
    exit 1
  fi
  echo "run_clang_tidy: clang-tidy not found — skipping (enforced in CI)"
  exit 0
fi
major="$(clang-tidy --version | sed -n 's/.*version \([0-9]*\).*/\1/p' | head -1)"
if [[ -z "$major" || "$major" -lt "$MIN_MAJOR" ]]; then
  echo "run_clang_tidy: clang-tidy ${major:-?} < $MIN_MAJOR — skipping (enforced in CI)"
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"
# Full configure (tests, examples, bench all default ON, plus the
# ZZ_MODEL_CHECK sources) so the compile database covers every TU any
# build compiles, not just the libraries — the completeness gate below
# counts the model explorer and its suites like any other TU.
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . -DZZ_MODEL_CHECK=ON >/dev/null
fi

# Enumerate TUs from the database itself — find(1) would silently include
# files the build doesn't compile and miss generated ones.
mapfile -t sources < <(python3 - "$BUILD_DIR/compile_commands.json" <<'PY'
import json, os, sys

with open(sys.argv[1]) as fh:
    db = json.load(fh)
root = os.getcwd()
seen = set()
for entry in db:
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(".."):
        continue  # out-of-tree TU (none expected)
    seen.add(rel)
print("\n".join(sorted(seen)))
PY
)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_clang_tidy: empty compile database in $BUILD_DIR — broken configure"
  exit 1
fi

# Completeness gate: a checked-in TU absent from the database would dodge
# the pass without anyone noticing. Every .cpp under the four source roots
# must appear (there are no conditionally-compiled TUs in this tree).
missing=0
while IFS= read -r f; do
  if ! printf '%s\n' "${sources[@]}" | grep -qxF "$f"; then
    echo "run_clang_tidy: $f is not in the compile database — unparseable/unbuilt TU"
    missing=1
  fi
done < <(find src tests bench examples -name '*.cpp' | sort)
if [[ "$missing" -ne 0 ]]; then
  echo "run_clang_tidy: FAILED (compile database incomplete)"
  exit 1
fi

PLUGIN="${ZZ_TIDY_PLUGIN:-}"
if [[ -z "$PLUGIN" ]]; then
  PLUGIN="$(ls build*/tools/tidy/libzz_tidy_checks.so 2>/dev/null | head -n1 || true)"
fi
LOAD=()
if [[ -n "$PLUGIN" && -f "$PLUGIN" ]]; then
  built_major="$(cat "${PLUGIN%.so}.llvm-major" 2>/dev/null || echo "$major")"
  if [[ "$built_major" == "$major" ]]; then
    LOAD=(--load "$PLUGIN")
    echo "run_clang_tidy: zz-* checks loaded from $PLUGIN"
  else
    echo "run_clang_tidy: plugin built against LLVM $built_major, clang-tidy" \
         "is $major — zz-* demoted to the lint_conventions.sh fallback"
  fi
else
  echo "run_clang_tidy: plugin not built — zz-* via lint_conventions.sh fallback only"
fi
if [[ "${ZZ_REQUIRE_TIDY_PLUGIN:-0}" == "1" && ${#LOAD[@]} -eq 0 ]]; then
  echo "run_clang_tidy: ZZ_REQUIRE_TIDY_PLUGIN=1 but the zz plugin is not loadable"
  exit 1
fi

echo "run_clang_tidy: clang-tidy $major over ${#sources[@]} TUs (full database)"
fail=0
for f in "${sources[@]}"; do
  # Any nonzero exit — findings (WarningsAsErrors) or a TU clang cannot
  # parse — fails the pass; unparseable files are bugs, not skips.
  clang-tidy -p "$BUILD_DIR" --quiet "${LOAD[@]}" "$f" || {
    echo "run_clang_tidy: $f failed"
    fail=1
  }
done
if [[ "$fail" -ne 0 ]]; then
  echo "run_clang_tidy: FAILED"
  exit 1
fi
echo "run_clang_tidy: clean"
