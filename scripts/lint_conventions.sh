#!/usr/bin/env bash
# Repo-convention lint (wired into ci.sh's docs-consistency block).
#
# Mechanical conventions that -Wall cannot see and reviews forget:
#   1. Header guards: every committed header uses `#pragma once` — no
#      ad-hoc #ifndef guards drifting out of sync with file moves.
#   2. Include-path hygiene: src/ code includes project headers by their
#      installed `zz/...` name, never by relative path, so the module
#      boundaries in the CMake graph stay real.
#   3. RNG discipline: no rand()/srand()/random() outside zz/common/rng —
#      every stochastic element must flow from a seeded zz::Rng or the
#      sharded-seed plumbing, or bit-exact reproducibility dies quietly.
#   4. Bench registration: every bench/*.cpp is registered in ZZ_BENCHES
#      (run_all.cpp and complexity.cpp are the two intentional exceptions),
#      so a new bench cannot exist outside the build/docs/baseline gates.
#   5. Module layering: src/<m>/ may only include zz/<dep>/ for deps the
#      DAG in tools/tidy/layering.dag grants <m>. Grep fallback for the
#      clang-tidy zz-layering check — same DAG file, so the rule holds on
#      hosts where the plugin cannot be built (docs/ANALYSIS.md §6).
#   6. Nondeterminism: bench-reachable code (src/ + bench/) must replay
#      bit-identically — no hardware entropy, no wall clocks as data
#      (steady_clock is fine: wall budgets only). Grep fallback for the
#      clang-tidy zz-nondeterminism check.
#   7. Atomic façade: no raw std::atomic / std::atomic_flag outside
#      zz/common/atomic.h and the model-checker engine — a raw atomic is
#      invisible to the interleaving explorer, so its protocol is
#      unverifiable. Grep fallback for the clang-tidy zz-raw-atomic check
#      (docs/ANALYSIS.md §10).
#
#   ./scripts/lint_conventions.sh             # lint the repo
#   ./scripts/lint_conventions.sh --selftest  # prove every rule can fire
set -uo pipefail
cd "$(dirname "$0")/.."

# --selftest re-invokes this script against a synthetic tree carrying one
# violation per rule and asserts each fires; a gate that cannot fail is
# not a gate. ZZ_LINT_ROOT is the selftest hook, not a user feature.
if [[ "${1:-}" == "--selftest" ]]; then
  self="$(pwd)/scripts/lint_conventions.sh"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp"/src/foo "$tmp"/bench "$tmp"/tests "$tmp"/examples \
           "$tmp"/tools/tidy

  # Rule 1: header with a classic guard and no pragma once.
  printf '#ifndef FOO_BAD_H\n#define FOO_BAD_H\n#endif\n' \
    > "$tmp"/src/foo/bad_guard.h
  # Rule 2: relative quoted include.
  printf '#include "../other/x.h"\n' > "$tmp"/src/foo/rel_include.cpp
  # Rule 3: raw C rand.
  printf '#include <cstdlib>\nint f() { return rand(); }\n' \
    > "$tmp"/src/foo/raw_rand.cpp
  # Rule 4: bench TU missing from ZZ_BENCHES.
  printf 'set(ZZ_BENCHES\n  listed\n)\n' > "$tmp"/bench/CMakeLists.txt
  printf 'int main() {}\n' > "$tmp"/bench/rogue.cpp
  # Rule 5: foo may only see common, but includes zz/testbed/.
  printf 'foo: common\n' > "$tmp"/tools/tidy/layering.dag
  printf '#include "zz/testbed/scenario.h"\n' > "$tmp"/src/foo/layer.cpp
  # Rule 6: hardware entropy in src/.
  printf '#include <random>\nstd::random_device g_rd;\n' \
    > "$tmp"/src/foo/entropy.cpp
  # Rule 7: raw std::atomic outside the façade.
  printf '#include <atomic>\nstd::atomic<int> g_n{0};\n' \
    > "$tmp"/src/foo/raw_atomic.cpp

  out="$(ZZ_LINT_ROOT="$tmp" "$self" 2>&1)"
  status=$?
  selffail=0
  if [[ "$status" -eq 0 ]]; then
    echo "selftest: lint PASSED a tree with known violations"
    selffail=1
  fi
  for pat in "missing '#pragma once'" \
             "classic #ifndef include guard" \
             "non-zz/ quoted include" \
             "raw C rand" \
             "not registered in ZZ_BENCHES" \
             "layering violation" \
             "nondeterminism in bench-reachable code" \
             "raw std::atomic outside the zz::Atomic facade"; do
    if ! grep -qF "$pat" <<<"$out"; then
      echo "selftest: rule \"$pat\" did not fire; output was:"
      sed 's/^/  | /' <<<"$out"
      selffail=1
    fi
  done
  if [[ "$selffail" -ne 0 ]]; then
    echo "lint_conventions --selftest: FAILED"
    exit 1
  fi
  echo "lint_conventions --selftest: every rule fires"
  exit 0
fi

if [[ -n "${ZZ_LINT_ROOT:-}" ]]; then
  cd "$ZZ_LINT_ROOT"
fi

fail=0
note() {
  echo "lint_conventions: $1"
  fail=1
}

# --- 1. pragma-once consistency ------------------------------------------
while IFS= read -r h; do
  grep -q '^#pragma once$' "$h" || note "$h: missing '#pragma once'"
  if grep -qE '^#ifndef +[A-Z0-9_]*_H' "$h"; then
    note "$h: classic #ifndef include guard (use #pragma once)"
  fi
done < <(find src bench tests -name '*.h' | sort)

# --- 2. zz/ include-path hygiene in src/ ---------------------------------
# Quoted includes in src/ must name an installed zz/ header; relative
# escapes ("../", "include/zz/...") bypass the module dependency graph.
while IFS= read -r line; do
  note "non-zz/ quoted include in src/: $line"
done < <(grep -rn '#include "' src --include='*.h' --include='*.cpp' \
           | grep -v '#include "zz/')

# --- 3. RNG discipline ----------------------------------------------------
# \brand( does not match operand( / uniform_rand( etc.; common/rng.* and
# this script are the only places allowed to say rand.
while IFS= read -r line; do
  note "raw C rand in non-rng code (use zz::Rng): $line"
done < <(grep -rnE '\b(std::)?(rand|srand|random)\(' \
           src bench tests examples \
           --include='*.h' --include='*.cpp' \
           | grep -v '^src/common/rng\.' \
           | grep -v '^src/common/include/zz/common/rng\.h')

# --- 4. bench registration ------------------------------------------------
benches="$(sed -n '/^set(ZZ_BENCHES$/,/)$/p' bench/CMakeLists.txt)"
for f in bench/*.cpp; do
  [[ -e "$f" ]] || continue
  b="$(basename "$f" .cpp)"
  case "$b" in
    run_all|complexity) continue ;;  # driver / Google-Benchmark binary
  esac
  grep -qE "^  $b\)?\$" <<<"$benches" || \
    note "$f not registered in ZZ_BENCHES (bench/CMakeLists.txt)"
done

# --- 5. module layering (grep fallback for zz-layering) -------------------
# Parses the same DAG the clang-tidy plugin consumes. Deps are spelled
# transitively in the file, so membership is a flat lookup — no closure.
declare -A dag_deps
dag_ok=0
if [[ -f tools/tidy/layering.dag ]]; then
  while IFS= read -r line; do
    line="${line%%#*}"
    [[ "$line" =~ ^[[:space:]]*$ ]] && continue
    mod="$(tr -d '[:space:]' <<<"${line%%:*}")"
    deps="$(xargs <<<"${line#*:}" 2>/dev/null || true)"
    dag_deps["$mod"]=" $mod $deps "
    dag_ok=1
  done < tools/tidy/layering.dag
fi
if [[ "$dag_ok" -eq 0 ]]; then
  # Loud by design: a missing DAG must not look like a clean layering pass.
  note "tools/tidy/layering.dag missing or empty — layering NOT enforced"
else
  while IFS= read -r hit; do
    f="${hit%%:*}"
    from="${f#src/}"
    from="${from%%/*}"
    to="$(sed -n 's|.*#include "zz/\([^/"]*\)/.*|\1|p' <<<"$hit")"
    [[ -z "$to" || "$from" == "$to" ]] && continue
    if [[ -z "${dag_deps[$from]:-}" ]]; then
      note "layering violation: module '$from' absent from tools/tidy/layering.dag ($f)"
    elif [[ "${dag_deps[$from]}" != *" $to "* ]]; then
      note "layering violation: $hit ('$from' may not depend on '$to' — move the code down the stack or extend the DAG deliberately)"
    fi
  done < <(grep -rn '#include "zz/' src --include='*.h' --include='*.cpp')
fi

# --- 6. nondeterminism discipline (grep fallback for zz-nondeterminism) ---
# steady_clock deliberately not matched: monotonic wall budgets are fine,
# wall TIME as data is not. The plugin's zz-nondeterminism covers the same
# surface structurally (through typedefs etc.) where it can run.
while IFS= read -r line; do
  note "nondeterminism in bench-reachable code: $line"
done < <(grep -rnE 'std::random_device|system_clock|high_resolution_clock|\bgettimeofday\b|\bclock_gettime\b|\btime\(NULL\)|\btime\(nullptr\)|\bdrand48\b' \
           src bench --include='*.h' --include='*.cpp')

# --- 7. atomic façade (grep fallback for zz-raw-atomic) -------------------
# Type mentions only (std::atomic< / std::atomic_flag): prose in comments
# may say "std::atomic", code may not name the type. The façade header
# (which embeds the real thing) and the model-checker engine are the two
# sanctioned homes.
while IFS= read -r line; do
  note "raw std::atomic outside the zz::Atomic facade (zz/common/atomic.h): $line"
done < <(grep -rnE 'std::atomic<|std::atomic_flag' \
           src bench tests examples \
           --include='*.h' --include='*.cpp' \
           | grep -v '^src/common/include/zz/common/atomic\.h' \
           | grep -v '^src/common/include/zz/common/model/' \
           | grep -v '^src/common/model/')

if [[ "$fail" -ne 0 ]]; then
  echo "lint_conventions: FAILED"
  exit 1
fi
echo "lint_conventions: clean"
