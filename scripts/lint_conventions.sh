#!/usr/bin/env bash
# Repo-convention lint (wired into ci.sh's docs-consistency block).
#
# Mechanical conventions that -Wall cannot see and reviews forget:
#   1. Header guards: every committed header uses `#pragma once` — no
#      ad-hoc #ifndef guards drifting out of sync with file moves.
#   2. Include-path hygiene: src/ code includes project headers by their
#      installed `zz/...` name, never by relative path, so the module
#      boundaries in the CMake graph stay real.
#   3. RNG discipline: no rand()/srand()/random() outside zz/common/rng —
#      every stochastic element must flow from a seeded zz::Rng or the
#      sharded-seed plumbing, or bit-exact reproducibility dies quietly.
#   4. Bench registration: every bench/*.cpp is registered in ZZ_BENCHES
#      (run_all.cpp and complexity.cpp are the two intentional exceptions),
#      so a new bench cannot exist outside the build/docs/baseline gates.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
note() {
  echo "lint_conventions: $1"
  fail=1
}

# --- 1. pragma-once consistency ------------------------------------------
while IFS= read -r h; do
  grep -q '^#pragma once$' "$h" || note "$h: missing '#pragma once'"
  if grep -qE '^#ifndef +[A-Z0-9_]*_H' "$h"; then
    note "$h: classic #ifndef include guard (use #pragma once)"
  fi
done < <(find src bench tests -name '*.h' | sort)

# --- 2. zz/ include-path hygiene in src/ ---------------------------------
# Quoted includes in src/ must name an installed zz/ header; relative
# escapes ("../", "include/zz/...") bypass the module dependency graph.
while IFS= read -r line; do
  note "non-zz/ quoted include in src/: $line"
done < <(grep -rn '#include "' src --include='*.h' --include='*.cpp' \
           | grep -v '#include "zz/')

# --- 3. RNG discipline ----------------------------------------------------
# \brand( does not match operand( / uniform_rand( etc.; common/rng.* and
# this script are the only places allowed to say rand.
while IFS= read -r line; do
  note "raw C rand in non-rng code (use zz::Rng): $line"
done < <(grep -rnE '\b(std::)?(rand|srand|random)\(' \
           src bench tests examples \
           --include='*.h' --include='*.cpp' \
           | grep -v '^src/common/rng\.' \
           | grep -v '^src/common/include/zz/common/rng\.h')

# --- 4. bench registration ------------------------------------------------
benches="$(sed -n '/^set(ZZ_BENCHES$/,/)$/p' bench/CMakeLists.txt)"
for f in bench/*.cpp; do
  b="$(basename "$f" .cpp)"
  case "$b" in
    run_all|complexity) continue ;;  # driver / Google-Benchmark binary
  esac
  grep -qE "^  $b\)?\$" <<<"$benches" || \
    note "$f not registered in ZZ_BENCHES (bench/CMakeLists.txt)"
done

if [[ "$fail" -ne 0 ]]; then
  echo "lint_conventions: FAILED"
  exit 1
fi
echo "lint_conventions: clean"
