// CLI entry point for the lock-free protocol model checker: runs every
// exploration in src/common/model/protocols.cpp and prints the
// per-protocol verdict and interleaving counts CI logs (ci.sh
// --model-check). Exit status is nonzero when any must-pass protocol
// fails, any must-catch broken variant goes undetected, or a must-pass
// exploration's breadth drops below the 1000-interleaving floor.
#include <cstdio>

#include "zz/common/model/protocols.h"

int main() {
  constexpr unsigned long long kMinInterleavings = 1000;
  const auto runs = zz::model::run_protocol_suite();

  std::printf("%-32s %-9s %14s %12s  %s\n", "protocol", "verdict",
              "interleavings", "ops", "contract");
  bool ok = true;
  for (const auto& run : runs) {
    const auto n = static_cast<unsigned long long>(run.result.interleavings);
    const char* verdict;
    if (run.expect_failure) {
      verdict = run.result.failed ? "caught" : "MISSED";
      if (!run.result.failed) ok = false;
    } else if (run.result.failed) {
      verdict = "FAILED";
      ok = false;
    } else if (n < kMinInterleavings) {
      verdict = "SHALLOW";
      ok = false;
    } else {
      verdict = "pass";
    }
    std::printf("%-32s %-9s %14llu %12llu  %s\n", run.name, verdict, n,
                static_cast<unsigned long long>(run.result.ops),
                run.contract);
    if (!run.expect_failure && run.result.failed)
      std::printf("  %s\n", run.result.failure.c_str());
  }
  if (!ok) {
    std::printf("model check: FAILED (unexpected verdict above; floor is "
                "%llu interleavings per protocol)\n",
                kMinInterleavings);
    return 1;
  }
  std::printf("model check: all protocols verified\n");
  return 0;
}
