#include "ArenaSlotEscapeCheck.h"

#include "clang/AST/Decl.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace zz::tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

namespace {

bool isScratchArenaType(clang::QualType T) {
  T = T.getNonReferenceType();
  if (const auto* P = T->getAs<clang::PointerType>())
    T = P->getPointeeType();
  const auto* Rec = T->getAsCXXRecordDecl();
  return Rec && Rec->getQualifiedNameAsString() == "zz::sig::ScratchArena";
}

}  // namespace

void ArenaSlotEscapeCheck::registerMatchers(MatchFinder* Finder) {
  const auto SlotCall = cxxMemberCallExpr(callee(
      cxxMethodDecl(hasAnyName("cvec", "czero", "dvec"),
                    ofClass(hasName("::zz::sig::ScratchArena")))));
  // Shape 1: `return arena_.cvec(...)` — the slot reference outlives the
  // scope that knows which slot it aliases.
  Finder->addMatcher(
      returnStmt(hasReturnValue(ignoringParenImpCasts(SlotCall)))
          .bind("escape-return"),
      this);
  // Shape 2: a lambda passed to ThreadPool::parallel_for whose captures
  // carry a ScratchArena (by reference or pointer) across the submit
  // boundary into worker threads.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasName("parallel_for"),
                               ofClass(hasName("::zz::ThreadPool")))),
          hasAnyArgument(ignoringParenImpCasts(
              lambdaExpr().bind("pool-lambda")))),
      this);
}

void ArenaSlotEscapeCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* Ret =
          Result.Nodes.getNodeAs<clang::ReturnStmt>("escape-return")) {
    diag(Ret->getBeginLoc(),
         "returning a ScratchArena slot reference escapes the arena scope; "
         "the next use of the slot silently invalidates it — pass the "
         "buffer in, or copy out");
    return;
  }
  const auto* Lam = Result.Nodes.getNodeAs<clang::LambdaExpr>("pool-lambda");
  if (!Lam) return;
  for (const clang::LambdaCapture& Cap : Lam->captures()) {
    if (!Cap.capturesVariable()) continue;
    const clang::ValueDecl* Var = Cap.getCapturedVar();
    if (!Var || !isScratchArenaType(Var->getType())) continue;
    const bool ByRef =
        Cap.getCaptureKind() == clang::LCK_ByRef ||
        Var->getType()->isPointerType() ||
        Var->getType()->isReferenceType();
    if (!ByRef) continue;
    diag(Cap.getLocation(),
         "lambda passed to ThreadPool::parallel_for captures ScratchArena "
         "'%0' by reference; arenas are thread-confined (zz/signal/"
         "scratch.h) — give each worker its own arena")
        << Var->getName();
  }
}

}  // namespace zz::tidy
