// zz-layering — includes must respect the module DAG declared once in
// tools/tidy/layering.dag (docs/ANALYSIS.md §8). A file under src/<m>/ may
// include "zz/<m>/..." plus "zz/<dep>/..." for each dep the DAG grants <m>.
// Files outside src/ (tests, bench, examples, tools) are leaves and may
// include anything. The same DAG file drives the grep fallback in
// scripts/lint_conventions.sh, so the rule holds even where this plugin
// cannot be built.
#pragma once

#include <map>
#include <set>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace zz::tidy {

class LayeringCheck : public clang::tidy::ClangTidyCheck {
 public:
  LayeringCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext* Context);
  void registerPPCallbacks(const clang::SourceManager& SM,
                           clang::Preprocessor* PP,
                           clang::Preprocessor* ModuleExpanderPP) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap& Opts) override;

  /// Loaded module -> allowed-dep-modules table (self always allowed).
  const std::map<std::string, std::set<std::string>>& dag() const {
    return dag_;
  }

 private:
  void loadDag();

  std::string dag_file_;  ///< `DagFile` check option
  std::map<std::string, std::set<std::string>> dag_;
  bool dag_loaded_ = false;
};

}  // namespace zz::tidy
