// The zz domain clang-tidy module: registers the six project-invariant
// checks under the `zz-` prefix (docs/ANALYSIS.md §8, §10). Built as a
// plugin (`-load libzz_tidy_checks.so`) against the clang-tidy the host
// provides; all clang/llvm symbols resolve from the loading clang-tidy
// binary.
#include "ArenaSlotEscapeCheck.h"
#include "DecodeCacheFingerprintCheck.h"
#include "LayeringCheck.h"
#include "MemoryOrderCheck.h"
#include "NondeterminismCheck.h"
#include "RawAtomicCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace zz::tidy {

class ZzModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories& CheckFactories) override {
    CheckFactories.registerCheck<DecodeCacheFingerprintCheck>(
        "zz-decodecache-fingerprint-complete");
    CheckFactories.registerCheck<ArenaSlotEscapeCheck>("zz-arena-slot-escape");
    CheckFactories.registerCheck<NondeterminismCheck>("zz-nondeterminism");
    CheckFactories.registerCheck<LayeringCheck>("zz-layering");
    CheckFactories.registerCheck<RawAtomicCheck>("zz-raw-atomic");
    CheckFactories.registerCheck<MemoryOrderCheck>("zz-memory-order");
  }
};

}  // namespace zz::tidy

namespace clang::tidy {

static ClangTidyModuleRegistry::Add<zz::tidy::ZzModule> X(
    "zz-module", "zz domain-invariant checks (ZigZag decoding repo)");

// Anchor so `-load` keeps the registration object file.
volatile int ZzModuleAnchorSource = 0;  // NOLINT

}  // namespace clang::tidy
