// zz-nondeterminism — the bench drift gates and the DecodeCache replay
// contract both rest on bit-identical reruns (docs/ANALYSIS.md §8), so
// bench-reachable code must not read wall-clock entropy or the C library's
// hidden-state RNG. Flags:
//   * std::random_device (construction or use);
//   * ::time, ::clock, ::gettimeofday, ::clock_gettime, ::rand, ::srand,
//     ::random, ::srandom, ::drand48;
//   * std::chrono::system_clock::now / high_resolution_clock::now.
// steady_clock is allowed: wall-time budgets and progress logs are not part
// of any decoded result. Seeded zz::Rng (sharded via ThreadPool::shard_seed)
// is the sanctioned randomness source.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace zz::tidy {

class NondeterminismCheck : public clang::tidy::ClangTidyCheck {
 public:
  NondeterminismCheck(llvm::StringRef Name,
                      clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace zz::tidy
