// zz-decodecache-fingerprint-complete — every struct whose fields feed
// DecodeCache's 128-bit fingerprint must keep the field count the
// fingerprint code was written against (docs/ANALYSIS.md §8). See the
// matching static_assert sizeof pins next to the Fingerprint struct in
// src/zigzag/decoder.cpp: the pins catch size-changing edits on the pinned
// ABI, this check catches ANY added/removed field on every platform the
// plugin runs on, and names the struct in the diagnostic.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace zz::tidy {

class DecodeCacheFingerprintCheck : public clang::tidy::ClangTidyCheck {
 public:
  DecodeCacheFingerprintCheck(llvm::StringRef Name,
                              clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace zz::tidy
