// zz-arena-slot-escape — references into a ScratchArena slot are owner-
// scoped: the next cvec/czero/dvec call on the same slot invalidates the
// contents, and arenas are thread-confined (src/signal/include/zz/signal/
// scratch.h). Two escape shapes are flagged:
//   1. returning a slot reference out of the function that obtained it
//      (the caller cannot see which slot it aliases);
//   2. a lambda handed to ThreadPool::parallel_for capturing a ScratchArena
//      by reference (worker threads would enter a thread-confined arena).
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace zz::tidy {

class ArenaSlotEscapeCheck : public clang::tidy::ClangTidyCheck {
 public:
  ArenaSlotEscapeCheck(llvm::StringRef Name,
                       clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace zz::tidy
