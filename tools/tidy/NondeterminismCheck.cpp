#include "NondeterminismCheck.h"

#include "clang/AST/Decl.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace zz::tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

void NondeterminismCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(
                  cxxRecordDecl(hasName("::std::random_device"))))))
          .bind("random-device"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::time", "::clock", "::gettimeofday",
                              "::clock_gettime", "::rand", "::srand",
                              "::random", "::srandom", "::drand48"))
                   .bind("libc-fn")))
          .bind("libc-call"),
      this);
  // now() of the non-monotonic clocks. The callee's qualified name is
  // inspected in check() so high_resolution_clock (an alias of either
  // system_clock or steady_clock, per libstdc++/libc++ choice) is caught by
  // its spelled class rather than what the alias resolves to.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasName("now"),
                                   hasParent(cxxRecordDecl(hasAnyName(
                                       "::std::chrono::system_clock",
                                       "::std::chrono::high_resolution_clock",
                                       "::std::chrono::_V2::system_clock",
                                       "::std::chrono::_V2::high_resolution_clock"))))))
          .bind("clock-now"),
      this);
}

void NondeterminismCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* TL = Result.Nodes.getNodeAs<clang::TypeLoc>("random-device")) {
    diag(TL->getBeginLoc(),
         "std::random_device draws hardware entropy; bench-reachable code "
         "must be replayable — take a seeded zz::Rng instead");
    return;
  }
  if (const auto* Call = Result.Nodes.getNodeAs<clang::CallExpr>("libc-call")) {
    const auto* Fn = Result.Nodes.getNodeAs<clang::FunctionDecl>("libc-fn");
    diag(Call->getBeginLoc(),
         "'%0' reads wall-clock or hidden-state randomness; results would "
         "not replay bit-identically — use a seeded zz::Rng, or "
         "steady_clock for wall budgets")
        << (Fn ? Fn->getName() : llvm::StringRef("<libc>"));
    return;
  }
  if (const auto* Call = Result.Nodes.getNodeAs<clang::CallExpr>("clock-now")) {
    diag(Call->getBeginLoc(),
         "system_clock/high_resolution_clock::now() is wall time; only "
         "steady_clock is allowed in bench-reachable code (wall budgets), "
         "and never as a data input");
  }
}

}  // namespace zz::tidy
