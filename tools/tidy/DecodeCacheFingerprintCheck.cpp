#include "DecodeCacheFingerprintCheck.h"

#include <cstddef>
#include <iterator>

#include "clang/AST/Decl.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace zz::tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

namespace {

// Field counts cached_decode() (src/zigzag/decoder.cpp) hashes, per struct.
// A mismatch means a member was added (or removed) without revisiting the
// fingerprint feed — two inequivalent decodes would share a fingerprint and
// silently replay each other's results. Fix the fingerprint AND this table
// AND the sizeof pins next to the Fingerprint struct.
struct Pinned {
  const char* name;
  unsigned fields;
};
constexpr Pinned kPinned[] = {
    {"zz::chan::ChannelParams", 5},  // h, freq_offset, mu, drift, isi
    {"zz::phy::LinkEstimate", 4},    // params, equalizer, noise_var, seeded
    {"zz::phy::SymbolSpec", 2},      // mod, pilot
    {"zz::phy::TrackingGains", 6},   // block, phase, freq, amp, timing, en
    {"zz::sig::Fir", 2},             // taps_, pre_
};

}  // namespace

void DecodeCacheFingerprintCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      cxxRecordDecl(isDefinition(),
                    hasAnyName("::zz::chan::ChannelParams",
                               "::zz::phy::LinkEstimate",
                               "::zz::phy::SymbolSpec",
                               "::zz::phy::TrackingGains", "::zz::sig::Fir"))
          .bind("rec"),
      this);
}

void DecodeCacheFingerprintCheck::check(
    const MatchFinder::MatchResult& Result) {
  const auto* Rec = Result.Nodes.getNodeAs<clang::CXXRecordDecl>("rec");
  if (!Rec) return;
  const std::string Qual = Rec->getQualifiedNameAsString();
  for (const Pinned& P : kPinned) {
    if (Qual != P.name) continue;
    const auto Fields = static_cast<unsigned>(
        std::distance(Rec->field_begin(), Rec->field_end()));
    if (Fields == P.fields) return;
    diag(Rec->getLocation(),
         "'%0' has %1 fields but DecodeCache's fingerprint hashes %2; "
         "update cached_decode() in src/zigzag/decoder.cpp (and its sizeof "
         "pins) to cover the new layout, then re-pin this count")
        << Qual << Fields << P.fields;
    return;
  }
}

}  // namespace zz::tidy
