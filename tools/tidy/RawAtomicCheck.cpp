#include "RawAtomicCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"

namespace zz::tidy {
namespace {

/// Files allowed to name the raw types: the façade header (which embeds
/// the real std::atomic) and the model-checker engine it routes to.
bool inFacadeOrModel(llvm::StringRef Path) {
  return Path.contains("zz/common/atomic.h") ||
         Path.contains("/common/model/");
}

}  // namespace

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

void RawAtomicCheck::registerMatchers(MatchFinder* Finder) {
  // Any spelled use of the types: declarations, members, parameters,
  // casts. Template instantiations carry the template's own location, so
  // the façade's internal std::atomic member never leaks diagnostics into
  // its users.
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(cxxRecordDecl(
                  hasAnyName("::std::atomic", "::std::atomic_flag"))))))
          .bind("raw-atomic-type"),
      this);
  // ATOMIC_FLAG_INIT-style C API: the free std::atomic_* functions bypass
  // the façade just as effectively as the types do.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::std::atomic_load", "::std::atomic_store",
                   "::std::atomic_exchange",
                   "::std::atomic_compare_exchange_weak",
                   "::std::atomic_compare_exchange_strong",
                   "::std::atomic_fetch_add", "::std::atomic_fetch_sub",
                   "::std::atomic_flag_test_and_set",
                   "::std::atomic_flag_clear"))))
          .bind("raw-atomic-call"),
      this);
}

void RawAtomicCheck::check(const MatchFinder::MatchResult& Result) {
  const clang::SourceManager& SM = *Result.SourceManager;
  clang::SourceLocation Loc;
  if (const auto* TL =
          Result.Nodes.getNodeAs<clang::TypeLoc>("raw-atomic-type"))
    Loc = TL->getBeginLoc();
  else if (const auto* Call =
               Result.Nodes.getNodeAs<clang::CallExpr>("raw-atomic-call"))
    Loc = Call->getBeginLoc();
  if (Loc.isInvalid()) return;
  const clang::SourceLocation Spelling = SM.getSpellingLoc(Loc);
  if (inFacadeOrModel(SM.getFilename(Spelling))) return;
  diag(Loc,
       "raw std::atomic is invisible to the interleaving model checker; "
       "use the zz::Atomic facade (zz/common/atomic.h, "
       "docs/ANALYSIS.md sec. 10)");
}

}  // namespace zz::tidy
