// zz-raw-atomic — every atomic in this repo goes through the zz::Atomic
// façade (zz/common/atomic.h): in production it compiles to the identical
// std::atomic, under ZZ_MODEL_CHECK it becomes a model-checker yield
// point, and its API has no defaulted memory orders. A raw std::atomic /
// std::atomic_flag is invisible to the interleaving explorer, so its
// protocol is unverifiable — this check flags any mention of those types
// outside the façade header itself and the model-checker engine
// (src/common/model/). Suppression policy in docs/ANALYSIS.md §10.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace zz::tidy {

class RawAtomicCheck : public clang::tidy::ClangTidyCheck {
 public:
  RawAtomicCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace zz::tidy
