#include "MemoryOrderCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace zz::tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

void MemoryOrderCheck::registerMatchers(MatchFinder* Finder) {
  // A memory_order parameter filled in by its default argument. The
  // parameter type (not the callee's class) is the anchor, so this covers
  // std::atomic members, the libstdc++/libc++ __atomic_base bases they
  // inherit from, and the std::atomic_* free functions alike. zz::Atomic
  // itself has no defaulted orders — a façade call can never trip this.
  Finder->addMatcher(
      callExpr(forEachArgumentWithParam(
                   cxxDefaultArgExpr().bind("default-order"),
                   parmVarDecl(hasType(namedDecl(
                       hasAnyName("::std::memory_order",
                                  "::std::__1::memory_order"))))))
          .bind("defaulted-call"),
      this);
  // Explicitly spelled seq_cst: the C++17 enumerator and the C++20
  // inline-variable alias of the scoped enumerator.
  Finder->addMatcher(
      declRefExpr(to(namedDecl(hasAnyName("::std::memory_order_seq_cst",
                                          "::std::memory_order::seq_cst"))))
          .bind("seq-cst-ref"),
      this);
}

void MemoryOrderCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* Call =
          Result.Nodes.getNodeAs<clang::CallExpr>("defaulted-call")) {
    diag(Call->getBeginLoc(),
         "atomic operation relies on the implicit seq_cst default; name "
         "the ordering from the convention table (docs/ANALYSIS.md "
         "sec. 10) at every call site");
    return;
  }
  if (const auto* Ref =
          Result.Nodes.getNodeAs<clang::DeclRefExpr>("seq-cst-ref")) {
    diag(Ref->getBeginLoc(),
         "seq_cst is outside the repo's ordering convention table "
         "(docs/ANALYSIS.md sec. 10); pick the weakest order the protocol "
         "edge needs, or NOLINT with the justification");
  }
}

}  // namespace zz::tidy
