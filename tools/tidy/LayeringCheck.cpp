#include "LayeringCheck.h"

#include <memory>
#include <utility>

#include "clang/Basic/SourceManager.h"
#include "clang/Basic/Version.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "llvm/Support/MemoryBuffer.h"
#include "llvm/Support/raw_ostream.h"

namespace zz::tidy {
namespace {

/// Module owning a path under src/ ("" when the file is outside src/,
/// i.e. a leaf free to include anything).
std::string moduleOfFile(llvm::StringRef Path) {
  const std::size_t Pos = Path.rfind("src/");
  if (Pos == llvm::StringRef::npos) return {};
  llvm::StringRef Rest = Path.drop_front(Pos + 4);
  const std::size_t Slash = Rest.find('/');
  if (Slash == llvm::StringRef::npos) return {};
  return Rest.take_front(Slash).str();
}

/// Module a spelled include names ("" for non-zz includes).
std::string moduleOfInclude(llvm::StringRef FileName) {
  if (!FileName.consume_front("zz/")) return {};
  const std::size_t Slash = FileName.find('/');
  if (Slash == llvm::StringRef::npos) return {};
  return FileName.take_front(Slash).str();
}

class LayeringPPCallbacks : public clang::PPCallbacks {
 public:
  LayeringPPCallbacks(LayeringCheck& Check, const clang::SourceManager& SM)
      : check_(Check), sm_(SM) {}

  // The InclusionDirective signature changed across clang-tidy's supported
  // LLVM majors; declare the one this build's headers expect.
#if LLVM_VERSION_MAJOR >= 19
  void InclusionDirective(clang::SourceLocation HashLoc,
                          const clang::Token& IncludeTok,
                          llvm::StringRef FileName, bool IsAngled,
                          clang::CharSourceRange FilenameRange,
                          clang::OptionalFileEntryRef File,
                          llvm::StringRef SearchPath,
                          llvm::StringRef RelativePath,
                          const clang::Module* SuggestedModule,
                          bool ModuleImported,
                          clang::SrcMgr::CharacteristicKind FileType) override {
    handle(HashLoc, FileName);
  }
#elif LLVM_VERSION_MAJOR >= 16
  void InclusionDirective(clang::SourceLocation HashLoc,
                          const clang::Token& IncludeTok,
                          llvm::StringRef FileName, bool IsAngled,
                          clang::CharSourceRange FilenameRange,
                          clang::OptionalFileEntryRef File,
                          llvm::StringRef SearchPath,
                          llvm::StringRef RelativePath,
                          const clang::Module* Imported,
                          clang::SrcMgr::CharacteristicKind FileType) override {
    handle(HashLoc, FileName);
  }
#else
  void InclusionDirective(clang::SourceLocation HashLoc,
                          const clang::Token& IncludeTok,
                          llvm::StringRef FileName, bool IsAngled,
                          clang::CharSourceRange FilenameRange,
                          llvm::Optional<clang::FileEntryRef> File,
                          llvm::StringRef SearchPath,
                          llvm::StringRef RelativePath,
                          const clang::Module* Imported,
                          clang::SrcMgr::CharacteristicKind FileType) override {
    handle(HashLoc, FileName);
  }
#endif

 private:
  void handle(clang::SourceLocation HashLoc, llvm::StringRef FileName) {
    const std::string To = moduleOfInclude(FileName);
    if (To.empty()) return;  // not a zz/ include
    const clang::PresumedLoc PLoc = sm_.getPresumedLoc(HashLoc);
    if (PLoc.isInvalid()) return;
    const std::string From = moduleOfFile(PLoc.getFilename());
    if (From.empty() || From == To) return;  // leaf file or self-include
    const auto& Dag = check_.dag();
    const auto It = Dag.find(From);
    if (It == Dag.end()) return;  // unknown module: DAG missing or new dir
    if (It->second.count(To)) return;
    check_.diag(HashLoc,
                "module '%0' must not include \"%1\": '%2' is not among its "
                "deps in tools/tidy/layering.dag — move the code down the "
                "stack or (deliberately) extend the DAG")
        << From << FileName << To;
  }

  LayeringCheck& check_;
  const clang::SourceManager& sm_;
};

}  // namespace

LayeringCheck::LayeringCheck(llvm::StringRef Name,
                             clang::tidy::ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      dag_file_(Options.get("DagFile", "tools/tidy/layering.dag")) {}

void LayeringCheck::storeOptions(clang::tidy::ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "DagFile", dag_file_);
}

void LayeringCheck::loadDag() {
  if (dag_loaded_) return;
  dag_loaded_ = true;
  auto Buf = llvm::MemoryBuffer::getFile(dag_file_);
  if (!Buf) {
    // Loud by design: a silently-skipped layering gate looks green while
    // enforcing nothing. run_clang_tidy.sh runs from the repo root, where
    // the default relative path resolves; point DagFile elsewhere via
    // .clang-tidy CheckOptions if invoking from another directory.
    llvm::errs() << "zz-layering: cannot read DAG file '" << dag_file_
                 << "' (cwd-relative); layering NOT enforced this run\n";
    return;
  }
  llvm::StringRef Data = (*Buf)->getBuffer();
  while (!Data.empty()) {
    auto [Line, Rest] = Data.split('\n');
    Data = Rest;
    Line = Line.trim();
    if (Line.empty() || Line[0] == '#') continue;  // StringRef::startswith
                                                   // was removed in LLVM 18
    auto [Mod, Deps] = Line.split(':');
    std::set<std::string>& Allowed = dag_[Mod.trim().str()];
    llvm::SmallVector<llvm::StringRef, 8> Parts;
    Deps.split(Parts, ' ', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
    for (llvm::StringRef D : Parts) Allowed.insert(D.trim().str());
  }
}

void LayeringCheck::registerPPCallbacks(const clang::SourceManager& SM,
                                        clang::Preprocessor* PP,
                                        clang::Preprocessor*) {
  loadDag();
  PP->addPPCallbacks(std::make_unique<LayeringPPCallbacks>(*this, SM));
}

}  // namespace zz::tidy
