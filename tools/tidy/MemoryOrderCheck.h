// zz-memory-order — every atomic call site names its ordering from the
// convention table in docs/ANALYSIS.md §10 (acquire scans, acq_rel
// claims, release publishes, relaxed gauges). Two ways to dodge that
// discipline are flagged:
//   * an implicit seq_cst default argument (calling load()/store()/... of
//     an atomic type without spelling the order) — the silent strongest
//     ordering hides which edge the protocol actually needs;
//   * naming std::memory_order_seq_cst explicitly — seq_cst is outside
//     the convention table (the model checker only approximates it, and
//     no repo protocol needs it); a justified exception takes a NOLINT
//     with the reasoning (suppression policy in docs/ANALYSIS.md §10).
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace zz::tidy {

class MemoryOrderCheck : public clang::tidy::ClangTidyCheck {
 public:
  MemoryOrderCheck(llvm::StringRef Name,
                   clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace zz::tidy
