// Frozen mirror of the five structs cached_decode() fingerprints
// (src/zigzag/decoder.cpp). Field counts here match the kPinned table in
// DecodeCacheFingerprintCheck.cpp, so zz-decodecache-fingerprint-complete
// must stay silent on any TU including this header.
#pragma once

#include <complex>
#include <vector>

namespace zz::sig {

struct Fir {
  std::vector<std::complex<double>> taps_;
  int pre_;
};

}  // namespace zz::sig

namespace zz::chan {

struct ChannelParams {
  std::complex<double> h;
  double freq_offset;
  double mu;
  double drift;
  double isi;
};

}  // namespace zz::chan

namespace zz::phy {

struct SymbolSpec {
  int mod;
  bool pilot;
};

struct TrackingGains {
  unsigned block;
  double phase;
  double freq;
  double amp;
  double timing;
  bool en;
};

struct LinkEstimate {
  chan::ChannelParams params;
  sig::Fir equalizer;
  double noise_var;
  bool seeded;
};

}  // namespace zz::phy
