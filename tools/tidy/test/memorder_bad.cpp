// Positive fixture for zz-memory-order: expect diagnostics on implicit
// seq_cst default arguments and on explicitly spelled seq_cst.
#include <atomic>

std::atomic<int> g{0};

int implicit_default_load() {
  return g.load();  // defaulted memory_order parameter
}

void implicit_default_rmw() {
  g.fetch_add(1);  // defaulted memory_order parameter
}

int explicit_seq_cst() {
  return g.load(std::memory_order_seq_cst);  // named outside the table
}
