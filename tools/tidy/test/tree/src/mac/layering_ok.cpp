// Negative fixture for zz-layering: mac may include common and zigzag per
// tools/tidy/layering.dag — the check must stay silent.
// Compile flags (run_tests.sh): -I tools/tidy/test/tree/include
#include "zz/common/stub.h"
#include "zz/zigzag/stub.h"

int layering_ok_anchor() { return 0; }
