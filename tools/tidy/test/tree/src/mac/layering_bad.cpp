// Positive fixture for zz-layering: this file lives under (a fake) src/mac/
// and includes a zz/testbed header, but tools/tidy/layering.dag does not
// grant mac -> testbed (testbed sits ABOVE mac) — expect one diagnostic.
// Compile flags (run_tests.sh): -I tools/tidy/test/tree/include
#include "zz/testbed/stub.h"

int layering_bad_anchor() { return 0; }
