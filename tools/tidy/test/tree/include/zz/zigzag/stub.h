// Layering-fixture stub: stands in for any zz/zigzag header.
#pragma once
