// Layering-fixture stub: stands in for any zz/testbed header.
#pragma once
