// Layering-fixture stub: stands in for any zz/common header.
#pragma once
