// Positive fixture for zz-nondeterminism: expect diagnostics on
// std::random_device, ::time, and system_clock::now — each breaks
// bit-identical replay of bench scenarios.
#include <chrono>
#include <ctime>
#include <random>

unsigned entropy_seed() {
  std::random_device rd;  // hardware entropy
  return rd() + static_cast<unsigned>(::time(nullptr));  // wall clock
}

long wall_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
