// Minimal stand-ins for zz::sig::ScratchArena and zz::ThreadPool with the
// exact qualified names and member signatures zz-arena-slot-escape matches
// on. Declarations suffice — fixtures are parsed, never linked.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace zz::sig {

class ScratchArena {
 public:
  std::vector<std::complex<double>>& cvec(std::size_t slot, std::size_t n);
  std::vector<std::complex<double>>& czero(std::size_t slot, std::size_t n);
  std::vector<double>& dvec(std::size_t slot, std::size_t n);
};

}  // namespace zz::sig

namespace zz {

class ThreadPool {
 public:
  template <class F>
  void parallel_for(std::size_t n, F&& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

}  // namespace zz
