// Negative fixture for zz-arena-slot-escape: slot references stay inside
// their scope and each pool worker owns its arena — the check must stay
// silent. Compile flags (run_tests.sh): -I tools/tidy/test/stubs
#include "arena.h"

double sum_in_scope(zz::sig::ScratchArena& a) {
  auto& buf = a.dvec(0, 16);  // fine: consumed before the scope ends
  double acc = 0.0;
  for (double v : buf) acc += v;
  return acc;
}

void per_worker_arena(zz::ThreadPool& pool) {
  pool.parallel_for(4, [](std::size_t) {
    zz::sig::ScratchArena local;  // thread-confined, never shared
    local.cvec(0, 8);
  });
}
