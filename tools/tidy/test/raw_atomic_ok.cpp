// Negative fixture for zz-raw-atomic: the REAL façade header (compiled
// with -I src/common/include) embeds a std::atomic member, but its path
// is on the check's allowlist — uses of zz::Atomic must stay clean.
#include "zz/common/atomic.h"

zz::Atomic<int> g_counter{0};

int bump() {
  return g_counter.fetch_add(1, std::memory_order_relaxed);
}

bool try_take(zz::AtomicFlag& flag) {
  zz::AtomicFlagGuard guard(flag);
  return guard.acquired();
}
