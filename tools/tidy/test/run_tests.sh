#!/usr/bin/env bash
# Fixture suite for the zz clang-tidy plugin (tools/tidy): one positive
# (diagnostic expected) and one negative (must stay clean) case per check.
#
# Needs a clang-tidy binary plus the built plugin (libzz_tidy_checks.so);
# both are auto-discovered, overridable via
#   CLANG_TIDY=/path/to/clang-tidy ZZ_TIDY_PLUGIN=/path/to/libzz_tidy_checks.so
# When either is missing the suite SKIPs (exit 0) with a notice — unless
# ZZ_REQUIRE_TIDY_PLUGIN=1, mirroring the CMake option of the same name.
#
# The plugin binds clang/llvm symbols from the loading binary at -load
# time, so it only works inside the clang-tidy it was built against
# (same LLVM major); scripts/run_clang_tidy.sh applies the same guard.
set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
ROOT="$(cd "$HERE/../../.." && pwd)"
cd "$ROOT"  # zz-layering resolves tools/tidy/layering.dag cwd-relative

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
              clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 \
              clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
  done
fi

PLUGIN="${ZZ_TIDY_PLUGIN:-}"
if [ -z "$PLUGIN" ]; then
  PLUGIN="$(ls "$ROOT"/build*/tools/tidy/libzz_tidy_checks.so 2>/dev/null \
            | head -n1 || true)"
fi

if [ -z "$TIDY" ] || [ -z "$PLUGIN" ] || [ ! -f "$PLUGIN" ]; then
  msg="clang-tidy=${TIDY:-<none>} plugin=${PLUGIN:-<none>}"
  if [ "${ZZ_REQUIRE_TIDY_PLUGIN:-0}" = "1" ]; then
    echo "FAIL: tidy plugin fixtures need both pieces ($msg) and" \
         "ZZ_REQUIRE_TIDY_PLUGIN=1 forbids skipping" >&2
    exit 1
  fi
  echo "SKIP: tidy plugin fixtures ($msg)"
  exit 0
fi

echo "tidy fixtures: $TIDY + $PLUGIN"
fails=0

# run_case <name> <check> <diag|clean> <pattern> <file> [compile flags...]
#   diag:  output must contain a line matching <pattern>
#   clean: output must contain no "[<check>]" diagnostic at all
run_case() {
  local name="$1" check="$2" expect="$3" pattern="$4" file="$5"
  shift 5
  local out
  # --header-filter: fingerprint diags anchor on the struct definition,
  # which lives in a fixture header, not the main file.
  out="$("$TIDY" --load "$PLUGIN" --quiet --checks="-*,$check" \
           --header-filter='.*' "$file" -- -std=c++17 "$@" 2>&1 || true)"
  case "$expect" in
    diag)
      if grep -q "$pattern" <<<"$out"; then
        echo "PASS $name"
      else
        echo "FAIL $name: expected a diagnostic matching /$pattern/, got:"
        sed 's/^/  | /' <<<"$out"
        fails=$((fails + 1))
      fi
      ;;
    clean)
      if grep -q "\[$check\]" <<<"$out"; then
        echo "FAIL $name: expected no $check diagnostics, got:"
        sed 's/^/  | /' <<<"$out"
        fails=$((fails + 1))
      else
        echo "PASS $name"
      fi
      ;;
  esac
}

T="tools/tidy/test"

run_case fingerprint-bad zz-decodecache-fingerprint-complete diag \
  "fields but DecodeCache's fingerprint hashes" \
  "$T/fingerprint_bad.cpp" -I "$T/stubs_bad"
run_case fingerprint-ok zz-decodecache-fingerprint-complete clean - \
  "$T/fingerprint_ok.cpp" -I "$T/stubs_ok"

run_case arena-return-bad zz-arena-slot-escape diag \
  "slot reference escapes the arena scope" \
  "$T/arena_bad.cpp" -I "$T/stubs"
run_case arena-capture-bad zz-arena-slot-escape diag \
  "captures ScratchArena 'arena' by reference" \
  "$T/arena_bad.cpp" -I "$T/stubs"
run_case arena-ok zz-arena-slot-escape clean - \
  "$T/arena_ok.cpp" -I "$T/stubs"

run_case nondet-rd-bad zz-nondeterminism diag \
  "random_device draws hardware entropy" \
  "$T/nondet_bad.cpp"
run_case nondet-time-bad zz-nondeterminism diag \
  "reads wall-clock or hidden-state randomness" \
  "$T/nondet_bad.cpp"
run_case nondet-clock-bad zz-nondeterminism diag \
  "only .*steady_clock is allowed" \
  "$T/nondet_bad.cpp"
run_case nondet-ok zz-nondeterminism clean - \
  "$T/nondet_ok.cpp"

# The negative fixtures compile the REAL façade header: its internal
# std::atomic member must be allowlisted by path, and its API must offer
# no defaulted memory orders to trip on.
run_case raw-atomic-type-bad zz-raw-atomic diag \
  "raw std::atomic is invisible to the interleaving model checker" \
  "$T/raw_atomic_bad.cpp"
run_case raw-atomic-ok zz-raw-atomic clean - \
  "$T/raw_atomic_ok.cpp" -I "src/common/include"

run_case memorder-default-bad zz-memory-order diag \
  "relies on the implicit seq_cst default" \
  "$T/memorder_bad.cpp"
run_case memorder-explicit-bad zz-memory-order diag \
  "seq_cst is outside the repo's ordering convention table" \
  "$T/memorder_bad.cpp"
run_case memorder-ok zz-memory-order clean - \
  "$T/memorder_ok.cpp" -I "src/common/include"

run_case layering-bad zz-layering diag \
  "module 'mac' must not include" \
  "$T/tree/src/mac/layering_bad.cpp" -I "$T/tree/include"
run_case layering-ok zz-layering clean - \
  "$T/tree/src/mac/layering_ok.cpp" -I "$T/tree/include"

if [ "$fails" -ne 0 ]; then
  echo "tidy fixtures: $fails FAILURE(S)" >&2
  exit 1
fi
echo "tidy fixtures: all green"
