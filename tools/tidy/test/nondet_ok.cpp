// Negative fixture for zz-nondeterminism: seeded generator plus
// steady_clock (explicitly allowed for wall budgets) — must stay clean.
#include <chrono>
#include <cstdint>

struct Rng {  // stands in for zz::Rng: seed in, replayable stream out
  explicit Rng(std::uint64_t seed);
  std::uint64_t next();
};

std::uint64_t seeded_draw(Rng& rng) { return rng.next(); }

long elapsed_budget_ns(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
