// Positive fixture for zz-arena-slot-escape: expect TWO diagnostics —
// one for the returned slot reference, one for the by-ref arena capture
// crossing the ThreadPool::parallel_for boundary.
// Compile flags (run_tests.sh): -I tools/tidy/test/stubs
#include "arena.h"

std::vector<std::complex<double>>& leak_slot(zz::sig::ScratchArena& a) {
  return a.cvec(0, 16);  // slot ref escapes the scope that owns the slot
}

void share_arena_across_workers(zz::ThreadPool& pool,
                                zz::sig::ScratchArena& arena) {
  pool.parallel_for(4, [&arena](std::size_t) { arena.czero(1, 8); });
}
