// Positive fixture: stubs_bad's ChannelParams has 6 fields while the check
// pins 5 — expect one zz-decodecache-fingerprint-complete diagnostic.
// Compile flags (run_tests.sh): -I tools/tidy/test/stubs_bad
#include "zz_structs.h"

int fingerprint_bad_anchor() {
  zz::chan::ChannelParams p{};
  (void)p;
  return 0;
}
