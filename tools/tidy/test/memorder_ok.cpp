// Negative fixture for zz-memory-order: every façade call names its
// ordering from the convention table — and the façade API gives no
// defaulted alternative. Compiled with -I src/common/include.
#include "zz/common/atomic.h"

zz::Atomic<unsigned> g_state{0};

bool publish(unsigned v) {
  unsigned expected = 0;
  if (!g_state.compare_exchange_strong(expected, 1, std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
    return false;
  g_state.store(v, std::memory_order_release);
  return true;
}

unsigned scan() { return g_state.load(std::memory_order_acquire); }
