// Positive fixture for zz-raw-atomic: expect diagnostics on every raw
// std::atomic / std::atomic_flag mention and on the C-style free-function
// API — all are invisible to the interleaving model checker.
#include <atomic>

std::atomic<int> g_counter{0};  // raw type at namespace scope

struct Holder {
  std::atomic_flag busy = ATOMIC_FLAG_INIT;  // raw flag member
};

int bump() {
  return g_counter.fetch_add(1, std::memory_order_relaxed);
}

int free_fn_api() {
  return std::atomic_load(&g_counter);  // free-function bypass
}
