// Like stubs_ok/zz_structs.h but ChannelParams grew a sixth member that the
// DecodeCache fingerprint would NOT hash — exactly the silent-collision bug
// zz-decodecache-fingerprint-complete exists to catch. Any TU including this
// header must trip the check on ChannelParams (and only on it).
#pragma once

#include <complex>
#include <vector>

namespace zz::sig {

struct Fir {
  std::vector<std::complex<double>> taps_;
  int pre_;
};

}  // namespace zz::sig

namespace zz::chan {

struct ChannelParams {
  std::complex<double> h;
  double freq_offset;
  double mu;
  double drift;
  double isi;
  double cfo_jitter;  // NEW field the fingerprint feed never learned about
};

}  // namespace zz::chan

namespace zz::phy {

struct SymbolSpec {
  int mod;
  bool pilot;
};

struct TrackingGains {
  unsigned block;
  double phase;
  double freq;
  double amp;
  double timing;
  bool en;
};

struct LinkEstimate {
  chan::ChannelParams params;
  sig::Fir equalizer;
  double noise_var;
  bool seeded;
};

}  // namespace zz::phy
