// Negative fixture: struct layouts agree with the pinned fingerprint field
// counts — zz-decodecache-fingerprint-complete must report nothing.
// Compile flags (run_tests.sh): -I tools/tidy/test/stubs_ok
#include "zz_structs.h"

int fingerprint_ok_anchor() {
  zz::chan::ChannelParams p{};
  zz::phy::LinkEstimate le{};
  (void)p;
  (void)le;
  return 0;
}
