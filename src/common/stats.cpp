#include "zz/common/stats.h"

#include <algorithm>
#include <cmath>

#include "zz/common/mathutil.h"

namespace zz {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Cdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double x : samples_) acc += x;
  return acc / static_cast<double>(samples_.size());
}

double Cdf::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  sort();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  sort();
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  sort();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        static_cast<double>(i) / static_cast<double>(points - 1 ? points - 1 : 1);
    out.emplace_back(percentile(p), p);
  }
  return out;
}

std::size_t hamming_distance(const Bits& a, const Bits& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t d = std::max(a.size(), b.size()) - n;
  for (std::size_t i = 0; i < n; ++i) d += (a[i] != b[i]) ? 1u : 0u;
  return d;
}

}  // namespace zz
