#include "zz/common/check.h"

#include <cstdio>

namespace zz::internal {

// Out of line so the abort machinery (and <cstdio>) stays off the check
// fast path and out of every including TU.
CheckFailure::~CheckFailure() {
  const std::string msg = os_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace zz::internal
