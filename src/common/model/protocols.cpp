// Model-check explorations of the five production lock-free protocols
// (zz/common/model/protocols.h). Each protocol struct follows the
// explore<T> shape: fresh instance per schedule, thread(tid) bodies on
// virtual threads, invariants in ZZ_MODEL_ASSERT (inline) and finish()
// (end-state). Members touched by more than one body are zz::Atomic (and
// so scheduled + weak-memory modeled); per-thread observation slots are
// plain members — the baton serializes real accesses, and finish() reads
// them after every body has returned.
#include "zz/common/model/protocols.h"

#include <cstddef>
#include <cstdint>

#include "zz/common/atomic.h"
#include "zz/common/once_memo.h"
#include "zz/common/steal_range.h"

namespace zz::model {
namespace {

// ------------------------------------------------------------- farm memo

/// The farm's episode-memo protocol (src/farm/farm.cpp::process): readers
/// acquire-check Ready; misses compute locally, one CAS winner writes the
/// payload and release-publishes. Contract: at most one publish, the
/// payload slot is written at most once, and EVERY thread ends up with the
/// winner's value (readers must never see Ready with a stale payload).
struct MemoPublish {
  static constexpr int kThreads = 3;
  static constexpr std::uint64_t kValue = 42;

  PublishOnceState state;
  Atomic<std::uint64_t> payload{0};
  int publishes = 0;             // winner-only (CAS-protected): plain
  std::uint64_t seen[kThreads] = {};

  void thread(int t) {
    if (state.ready_acquire()) {
      seen[t] = payload.load(std::memory_order_relaxed);
      return;
    }
    // Miss: "compute" the (deterministic) aggregate locally.
    seen[t] = kValue;
    if (state.try_begin_publish()) {
      payload.store(kValue, std::memory_order_relaxed);
      state.publish();
      ++publishes;
    }
  }

  void finish() {
    ZZ_MODEL_ASSERT(publishes <= 1, "two CAS winners published the slot");
    for (int t = 0; t < kThreads; ++t)
      ZZ_MODEL_ASSERT(seen[t] == kValue,
                      "a reader that passed ready_acquire() observed a "
                      "stale payload");
  }
};

/// Same shape with the release publish weakened to relaxed — the
/// explorer must find a schedule where a reader sees Ready but reads the
/// stale (pre-publish) payload.
struct MemoBrokenRelaxedPublish {
  static constexpr int kThreads = 3;
  static constexpr std::uint64_t kValue = 42;
  enum : unsigned char { kAbsent = 0, kBuilding = 1, kReady = 2 };

  Atomic<unsigned char> state{kAbsent};
  Atomic<std::uint64_t> payload{0};
  std::uint64_t seen[kThreads] = {};

  void thread(int t) {
    if (state.load(std::memory_order_acquire) == kReady) {
      seen[t] = payload.load(std::memory_order_relaxed);
      return;
    }
    seen[t] = kValue;
    unsigned char expected = kAbsent;
    if (state.compare_exchange_strong(expected, kBuilding,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      payload.store(kValue, std::memory_order_relaxed);
      // BUG under test: relaxed publish — nothing orders the payload
      // store before a reader's acquire of Ready.
      state.store(kReady, std::memory_order_relaxed);
    }
  }

  void finish() {
    for (int t = 0; t < kThreads; ++t)
      ZZ_MODEL_ASSERT(seen[t] == kValue,
                      "stale payload read behind a relaxed publish");
  }
};

// ----------------------------------------------------- work-stealing deque

/// parallel_for_sharded's per-worker range cells driven through the
/// extracted kernels (range_pop_front / range_steal_back). Contract:
/// across owner pops, back-half steals, single-claims and re-installs,
/// every index in [0, n) is claimed exactly once.
struct DequeSteal {
  static constexpr int kThreads = 2;
  static constexpr std::size_t kN = 4;

  Atomic<std::uint64_t> q[kThreads];
  int claims[kThreads][kN] = {};

  DequeSteal() {
    for (std::size_t k = 0; k < kThreads; ++k)
      q[k].store(RangeCell::pack(k * kN / kThreads, (k + 1) * kN / kThreads),
                 std::memory_order_relaxed);
  }

  void thread(int t) {
    const auto k = static_cast<std::size_t>(t);
    for (;;) {
      for (;;) {  // drain own cell front-to-back
        std::size_t i;
        const PopOutcome pop = range_pop_front(q[k], &i);
        if (pop == PopOutcome::kEmpty) break;
        if (pop == PopOutcome::kRaced) continue;
        claim(t, i);
      }
      std::size_t victim = kThreads;
      std::uint64_t best = 0;
      for (std::size_t v = 0; v < kThreads; ++v) {
        if (v == k) continue;
        const std::uint64_t cur = q[v].load(std::memory_order_acquire);
        const std::uint64_t rem = RangeCell::hi(cur) - RangeCell::lo(cur);
        if (!RangeCell::empty(cur) && rem > best) {
          best = rem;
          victim = v;
        }
      }
      if (victim == kThreads) return;
      std::size_t i;
      switch (range_steal_back(q[victim], q[k], &i)) {
        case StealOutcome::kStoleSingle:
          claim(t, i);
          break;
        case StealOutcome::kEmpty:
        case StealOutcome::kRaced:
        case StealOutcome::kInstalled:
          break;
      }
    }
  }

  void claim(int t, std::size_t i) {
    ZZ_MODEL_ASSERT(i < kN, "claimed index outside the batch");
    ++claims[t][i];
  }

  void finish() {
    for (std::size_t i = 0; i < kN; ++i) {
      int total = 0;
      for (int t = 0; t < kThreads; ++t) total += claims[t][i];
      ZZ_MODEL_ASSERT(total == 1,
                      "an index was dropped or double-claimed across "
                      "pop/steal races");
    }
  }
};

// ------------------------------------------------------------ batch ticket

/// parallel_for's generation ticket via ticket_claim. Thread 0 drains
/// generation 1; thread 1 claims one gen-1 index, bumps the ticket to
/// generation 2 (the real pool does this under its mutex when a new batch
/// starts) and drains generation 2. Contract: within a generation every
/// claimed index is claimed exactly once and claims form a prefix of
/// [0, n); the full-word CAS means a stale gen-1 claimer can never take a
/// gen-2 index.
struct TicketGeneration {
  static constexpr int kThreads = 2;
  static constexpr std::size_t kN1 = 3, kN2 = 2;

  Atomic<std::uint64_t> ticket{std::uint64_t{1} << 32};
  int g1[kThreads][kN1] = {};
  int g2[kThreads][kN2] = {};

  template <std::size_t N>
  void drain(Atomic<std::uint64_t>& tk, std::uint32_t gen, int (&arr)[N]) {
    for (;;) {
      std::size_t i;
      const TicketOutcome c = ticket_claim(tk, gen, N, &i);
      if (c == TicketOutcome::kSuperseded || c == TicketOutcome::kExhausted)
        return;
      if (c == TicketOutcome::kRaced) continue;
      ++arr[i];
    }
  }

  void thread(int t) {
    if (t == 0) {
      drain(ticket, 1, g1[0]);
      return;
    }
    // One competing gen-1 claim (no retry on a lost race), then the bump.
    std::size_t i;
    if (ticket_claim(ticket, 1, kN1, &i) == TicketOutcome::kClaimed)
      ++g1[1][i];
    ticket.store(std::uint64_t{2} << 32, std::memory_order_release);
    drain(ticket, 2, g2[1]);
  }

  void finish() {
    bool gap = false;
    for (std::size_t i = 0; i < kN1; ++i) {
      const int total = g1[0][i] + g1[1][i];
      ZZ_MODEL_ASSERT(total <= 1, "gen-1 index claimed twice");
      if (total == 0) gap = true;
      ZZ_MODEL_ASSERT(!(total == 1 && gap),
                      "gen-1 claims are not a prefix of the batch");
    }
    for (std::size_t i = 0; i < kN2; ++i) {
      ZZ_MODEL_ASSERT(g2[0][i] == 0,
                      "a stale gen-1 worker claimed a gen-2 index");
      ZZ_MODEL_ASSERT(g2[1][i] == 1, "gen-2 batch not fully drained");
    }
  }
};

// --------------------------------------------------- DecodeCache publish

/// The DecodeCache cached_decode shape (src/zigzag/decoder.cpp): check
/// under the lock, decode OUTSIDE the lock, re-lock and first-writer-wins
/// publish; racers adopt the published entry. model::Mutex supplies the
/// acquire/release pairing, so the entry fields themselves are relaxed —
/// exactly the production contract (entries immutable once published).
struct CachePublish {
  static constexpr int kThreads = 3;
  static constexpr std::uint64_t kValue = 7;

  Mutex mu;
  Atomic<int> present{0};
  Atomic<std::uint64_t> value{0};
  int writes = 0;  // mutated under mu only
  std::uint64_t seen[kThreads] = {};

  void thread(int t) {
    mu.lock();
    const bool hit = present.load(std::memory_order_relaxed) != 0;
    const std::uint64_t cached =
        hit ? value.load(std::memory_order_relaxed) : 0;
    mu.unlock();
    if (hit) {
      seen[t] = cached;
      return;
    }
    const std::uint64_t computed = kValue;  // the decode, outside the lock
    mu.lock();
    if (present.load(std::memory_order_relaxed) != 0) {
      seen[t] = value.load(std::memory_order_relaxed);  // raced: adopt
    } else {
      value.store(computed, std::memory_order_relaxed);
      present.store(1, std::memory_order_relaxed);
      ++writes;
      seen[t] = computed;
    }
    mu.unlock();
  }

  void finish() {
    ZZ_MODEL_ASSERT(writes == 1,
                    "entry written more than once (publish is "
                    "first-writer-wins, entries are immutable)");
    for (int t = 0; t < kThreads; ++t)
      ZZ_MODEL_ASSERT(seen[t] == kValue,
                      "a cache reader observed a torn/stale entry");
  }
};

// ------------------------------------------------------------- peak gauge

/// alloc_hook's live/peak gauges: relaxed fetch_add on live, fetch_max on
/// peak. Contract: the peak never loses a concurrent maximum — it ends
/// exactly at the largest post-add level any thread observed — and the
/// live gauge nets out (RMW atomicity). Thread 1 also frees, proving the
/// peak latches.
struct PeakGauge {
  static constexpr int kThreads = 3;
  static constexpr std::int64_t kAmount[kThreads] = {5, 9, 7};

  Atomic<std::int64_t> live{0};
  Atomic<std::int64_t> peak{0};
  std::int64_t observed[kThreads] = {};

  void thread(int t) {
    const std::int64_t after =
        live.fetch_add(kAmount[t], std::memory_order_relaxed) + kAmount[t];
    observed[t] = after;
    fetch_max(peak, after, std::memory_order_relaxed);
    if (t == 1)
      live.fetch_sub(kAmount[t], std::memory_order_relaxed);  // the free
  }

  void finish() {
    std::int64_t max_seen = 0, sum = 0;
    for (int t = 0; t < kThreads; ++t) {
      if (observed[t] > max_seen) max_seen = observed[t];
      sum += kAmount[t];
    }
    const std::int64_t final_live = live.load(std::memory_order_relaxed);
    const std::int64_t final_peak = peak.load(std::memory_order_relaxed);
    ZZ_MODEL_ASSERT(final_live == sum - kAmount[1],
                    "live gauge lost an update");
    ZZ_MODEL_ASSERT(final_peak == max_seen,
                    "peak gauge lost a concurrent maximum");
  }
};

// ---------------------------------------------------------- reentry flag

/// ReentryFlag/AtomicFlagGuard: a try-lock region. Contract: acquirers
/// are mutually exclusive, and because enter is an acquire exchange and
/// leave a release store, a later acquirer sees every write of the
/// previous holder — the relaxed counter inside the region stays exact.
struct ReentryFlagGuard {
  static constexpr int kThreads = 3;

  AtomicFlag flag;
  Atomic<int> data{0};
  bool acquired[kThreads] = {};

  void thread(int t) {
    AtomicFlagGuard guard(flag);
    if (!guard.acquired()) return;
    acquired[t] = true;
    const int v = data.load(std::memory_order_relaxed);
    data.store(v + 1, std::memory_order_relaxed);
  }

  void finish() {
    int holders = 0;
    for (int t = 0; t < kThreads; ++t)
      if (acquired[t]) ++holders;
    ZZ_MODEL_ASSERT(holders >= 1, "try-lock failed for every thread");
    ZZ_MODEL_ASSERT(data.load(std::memory_order_relaxed) == holders,
                    "writes inside the flag-guarded region were lost");
    ZZ_MODEL_ASSERT(!flag.held(std::memory_order_relaxed),
                    "flag still held after every guard released");
  }
};

// ------------------------------------------------- confinement hand-off

/// ScratchArena::ConfinementGuard via zz::EntryCounter (the PR's bugfix):
/// both threads increment-check-decrement. When neither detects overlap
/// (both enter() calls returned 0) the accesses were serialized, and the
/// acq_rel counter chain makes the hand-off a happens-before edge — the
/// second user must see the first user's buffer write.
struct ConfinementHandOff {
  static constexpr int kThreads = 3;

  EntryCounter guard;
  Atomic<std::uint64_t> buf{0};
  int prior[kThreads] = {-1, -1, -1};

  void thread(int t) {
    prior[t] = guard.enter();
    if (prior[t] == 0) {
      const std::uint64_t v = buf.load(std::memory_order_relaxed);
      buf.store(v + 1, std::memory_order_relaxed);
    }
    guard.exit();
  }

  void finish() {
    // Silent detector (every enter saw 0) ⟹ the RMW chain serialized the
    // users ⟹ the acq_rel edges make each increment visible to the next.
    bool all_sole = true;
    for (int t = 0; t < kThreads; ++t)
      if (prior[t] != 0) all_sole = false;
    if (all_sole)
      ZZ_MODEL_ASSERT(buf.load(std::memory_order_relaxed) == kThreads,
                      "serial hand-off lost an update although the "
                      "detector stayed silent");
  }
};

/// The pre-fix ConfinementGuard: relaxed fetch_add/fetch_sub. The
/// explorer must find the regression — the detector stays silent (both
/// enters see 0) yet the second user reads a stale buffer and an update
/// is lost.
struct ConfinementBrokenRelaxed {
  static constexpr int kThreads = 2;

  Atomic<int> active{0};
  Atomic<std::uint64_t> buf{0};
  int prior[kThreads] = {-1, -1};

  void thread(int t) {
    prior[t] = active.fetch_add(1, std::memory_order_relaxed);
    if (prior[t] == 0) {
      const std::uint64_t v = buf.load(std::memory_order_relaxed);
      buf.store(v + 1, std::memory_order_relaxed);
    }
    active.fetch_sub(1, std::memory_order_relaxed);
  }

  void finish() {
    if (prior[0] == 0 && prior[1] == 0)
      ZZ_MODEL_ASSERT(buf.load(std::memory_order_relaxed) == 2,
                      "relaxed confinement counter: silent detector with "
                      "a lost hand-off update");
  }
};

Options tuned(int threads, int preemptions) {
  Options opt;
  opt.threads = threads;
  opt.max_preemptions = preemptions;
  return opt;
}

}  // namespace

Result run_memo_publish() {
  return explore<MemoPublish>(tuned(3, 3));
}
Result run_memo_broken_relaxed_publish() {
  return explore<MemoBrokenRelaxedPublish>(tuned(3, 2));
}
Result run_deque_steal() {
  return explore<DequeSteal>(tuned(2, 3));
}
Result run_ticket_generation() {
  return explore<TicketGeneration>(tuned(2, -1));  // small: exhaustive
}
Result run_cache_publish() {
  return explore<CachePublish>(tuned(3, 2));
}
Result run_peak_gauge() {
  return explore<PeakGauge>(tuned(3, 2));
}
Result run_reentry_flag() {
  return explore<ReentryFlagGuard>(tuned(3, -1));  // tiny: exhaustive
}
Result run_confinement_handoff() {
  return explore<ConfinementHandOff>(tuned(3, -1));  // tiny: exhaustive
}
Result run_confinement_broken_relaxed() {
  return explore<ConfinementBrokenRelaxed>(tuned(2, -1));
}

std::vector<ProtocolRun> run_protocol_suite() {
  std::vector<ProtocolRun> runs;
  runs.push_back({"memo-publish",
                  "one publish; readers of Ready see the winner's payload",
                  false, run_memo_publish()});
  runs.push_back({"memo-broken-relaxed-publish",
                  "relaxed publish store MUST be caught by the explorer",
                  true, run_memo_broken_relaxed_publish()});
  runs.push_back({"deque-steal",
                  "every index claimed exactly once across pop/steal races",
                  false, run_deque_steal()});
  runs.push_back({"ticket-generation",
                  "per-generation claim-once; no cross-batch claims",
                  false, run_ticket_generation()});
  runs.push_back({"cache-publish",
                  "first-writer-wins entry, written once, racers adopt it",
                  false, run_cache_publish()});
  runs.push_back({"peak-gauge",
                  "peak is monotone and never loses a concurrent maximum",
                  false, run_peak_gauge()});
  runs.push_back({"reentry-flag",
                  "guard region is exclusive and hands its writes onward",
                  false, run_reentry_flag()});
  runs.push_back({"confinement-handoff",
                  "acq_rel entry counter orders the serial arena hand-off",
                  false, run_confinement_handoff()});
  runs.push_back({"confinement-broken-relaxed",
                  "relaxed entry counter MUST be caught by the explorer",
                  true, run_confinement_broken_relaxed()});
  return runs;
}

}  // namespace zz::model
