// Interleaving explorer engine — see zz/common/model/explorer.h for the
// execution and memory-model overview. Everything here is single-logical-
// threaded: a baton (mu_/cv_/active_) guarantees exactly one of
// {controller, virtual threads} runs at a time, so exploration state needs
// no further locking — the baton handoff is the happens-before edge.
#include "zz/common/model/explorer.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

namespace zz::model {
namespace detail {
namespace {

constexpr int kController = -1;

// memory_order numeric values (matching std::memory_order casts from the
// façade; avoids including <atomic> here).
[[maybe_unused]] constexpr int kRelaxed = 0;
constexpr int kAcquire = 2;
constexpr int kRelease = 3;
constexpr int kAcqRel = 4;
constexpr int kSeqCst = 5;

bool is_acquire(int o) { return o == kAcquire || o == kAcqRel || o == kSeqCst; }
bool is_release(int o) { return o == kRelease || o == kAcqRel || o == kSeqCst; }

/// Per-thread visibility: loc → minimum store timestamp this thread may
/// still observe there (its watermark).
using View = std::map<const void*, std::uint64_t>;

void join(View& into, const View& from) {
  for (const auto& [loc, ts] : from) {
    auto [it, inserted] = into.try_emplace(loc, ts);
    if (!inserted && it->second < ts) it->second = ts;
  }
}

struct StoreRec {
  std::uint64_t val = 0;
  std::uint64_t ts = 0;
  int tid = kController;
  View mview;  ///< view released with this store (empty for relaxed stores)
};

struct Location {
  std::vector<StoreRec> hist;  ///< timestamp-ascending modification order
  unsigned width = 8;          ///< sizeof(T): RMW results wrap at this width
  int index = 0;               ///< registration order, for trace names
};

struct MutexState {
  bool held = false;
  int holder = kController;
  View mview;  ///< view released by the last unlock
  int index = 0;
};

enum class TState { kNotStarted, kRunning, kRunnable, kBlocked, kDone };

struct VThread {
  TState state = TState::kNotStarted;
  View view;
  const void* blocked_on = nullptr;  ///< mutex key while kBlocked
  std::thread worker;
};

struct Choice {
  int chosen = 0;
  int arity = 1;
};

class Explorer;
thread_local Explorer* tl_ex = nullptr;
thread_local int tl_tid = kController;

class Explorer {
 public:
  Explorer(const Options& opt, const ExploreHooks& hooks)
      : opt_(opt),
        hooks_(hooks),
        th_(static_cast<std::size_t>(opt.threads < 1 ? 1 : opt.threads)) {
    if (opt_.threads < 1) opt_.threads = 1;
    if (opt_.store_history < 1) opt_.store_history = 1;
  }

  Result run() {
    tl_ex = this;
    tl_tid = kController;
    for (int t = 0; t < opt_.threads; ++t)
      th_[static_cast<std::size_t>(t)].worker =
          std::thread([this, t] { worker_main(t); });

    for (;;) {
      run_one_schedule();
      ++result_.interleavings;
      if (result_.failed) break;
      // DFS backtrack: drop exhausted suffix, advance the deepest live
      // choice; replay re-derives everything above it next schedule.
      while (!stack_.empty() &&
             stack_.back().chosen + 1 >= stack_.back().arity)
        stack_.pop_back();
      if (stack_.empty()) break;  // schedule space fully explored
      if (result_.interleavings >= opt_.max_schedules) {
        result_.cap_hit = true;  // live choices remain but budget is spent
        break;
      }
      ++stack_.back().chosen;
    }

    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
      cv_.notify_all();
    }
    for (auto& t : th_) t.worker.join();
    tl_ex = nullptr;
    return result_;
  }

  // ---- modeled operations (called with the baton held) -----------------

  std::uint64_t do_load(const void* loc, int order) {
    if (tl_tid == kController) {
      // Construction / finish() context: no scheduling, newest-value
      // visibility — final invariants judge the end state.
      return hist(loc).back().val;
    }
    announce();
    Location& l = hist_loc(loc);
    View& v = th_at(tl_tid).view;
    const std::uint64_t wm = watermark(v, loc);
    // Candidates: the newest store plus up to store_history-1 older ones
    // the watermark still allows. History is ts-ascending, so walk back.
    std::vector<const StoreRec*> cand;
    for (auto it = l.hist.rbegin();
         it != l.hist.rend() &&
         cand.size() < static_cast<std::size_t>(opt_.store_history);
         ++it) {
      if (it->ts < wm) break;
      cand.push_back(&*it);
    }
    std::reverse(cand.begin(), cand.end());  // oldest-first: stable numbering
    const StoreRec& s = *cand[static_cast<std::size_t>(
        choose(static_cast<int>(cand.size())))];
    bump(v, loc, s.ts);
    if (is_acquire(order)) join(v, s.mview);
    if (order == kSeqCst) {
      join(v, sc_view_);
      join(sc_view_, v);
    }
    trace_op("load", l.index, s.val);
    return s.val;
  }

  void do_store(const void* loc, std::uint64_t val, int order) {
    if (tl_tid == kController) {
      push_store(loc, val, /*mview=*/View{});
      return;
    }
    announce();
    Location& l = hist_loc(loc);
    View& v = th_at(tl_tid).view;
    const std::uint64_t ts = push_store(loc, val, View{});
    bump(v, loc, ts);
    if (is_release(order)) l.hist.back().mview = v;
    if (order == kSeqCst) {
      join(v, sc_view_);
      join(sc_view_, v);
      l.hist.back().mview = v;
    }
    trace_op("store", l.index, val);
  }

  std::uint64_t do_exchange(const void* loc, std::uint64_t val, int order) {
    return do_rmw(loc, order, [val](std::uint64_t) { return val; }, "xchg");
  }

  std::uint64_t do_fetch_add(const void* loc, std::uint64_t delta,
                             int order) {
    return do_rmw(
        loc, order, [delta](std::uint64_t old) { return old + delta; },
        "fetch_add");
  }

  bool do_cas(const void* loc, std::uint64_t& expected, std::uint64_t desired,
              int success_order, int failure_order) {
    if (tl_tid == kController) {
      StoreRec& newest = hist(loc).back();
      if (newest.val != expected) {
        expected = newest.val;
        return false;
      }
      push_store(loc, desired, View{});
      return true;
    }
    announce();
    Location& l = hist_loc(loc);
    View& v = th_at(tl_tid).view;
    StoreRec& newest = l.hist.back();  // RMW: modification-order head
    if (newest.val != expected) {
      bump(v, loc, newest.ts);
      if (is_acquire(failure_order)) join(v, newest.mview);
      trace_op("cas-fail", l.index, newest.val);
      expected = newest.val;
      return false;
    }
    rmw_write(l, loc, v, desired, success_order, newest.mview);
    trace_op("cas", l.index, desired);
    return true;
  }

  // ---- registration ----------------------------------------------------

  void reg(void* loc, std::uint64_t initial, unsigned width) {
    // Address reuse across schedule-local temporaries: stale watermarks for
    // a dead location must not constrain the new one.
    for (auto& t : th_) t.view.erase(loc);
    ctrl_view_.erase(loc);
    sc_view_.erase(loc);
    Location& l = locs_[loc];
    l.hist.clear();
    l.width = width;
    l.index = next_loc_index_++;
    const std::uint64_t ts = ++now_;
    l.hist.push_back(StoreRec{initial, ts, tl_tid, View{}});
    if (tl_tid == kController)
      bump(ctrl_view_, loc, ts);
    else
      bump(th_at(tl_tid).view, loc, ts);
  }

  void unreg(void* loc) { locs_.erase(loc); }
  bool has(const void* loc) const { return locs_.count(loc) != 0; }

  // ---- model::Mutex ----------------------------------------------------

  void mutex_reg(const void* m) {
    MutexState& s = mutexes_[m];
    s = MutexState{};
    s.index = next_mutex_index_++;
  }
  void mutex_unreg(const void* m) { mutexes_.erase(m); }

  void mutex_lock(const void* m) {
    for (;;) {
      announce();
      MutexState& s = mutexes_.at(m);
      if (!s.held) {
        s.held = true;
        s.holder = tl_tid;
        join(th_at(tl_tid).view, s.mview);  // acquire the last release
        trace_mutex("lock", s.index);
        return;
      }
      park_blocked(m);  // held elsewhere: scheduler skips us until unlock
    }
  }

  void mutex_unlock(const void* m) {
    announce();
    MutexState& s = mutexes_.at(m);
    if (!s.held || s.holder != tl_tid)
      fail_now("model::Mutex::unlock without holding the lock");
    s.mview = th_at(tl_tid).view;  // release our view to the next locker
    s.held = false;
    s.holder = kController;
    trace_mutex("unlock", s.index);
  }

  // ---- failure ---------------------------------------------------------

  [[noreturn]] void fail_now(const std::string& msg) {
    record_failure(msg);
    throw Abort{};
  }

 private:
  // ---- schedule driver (controller) ------------------------------------

  void run_one_schedule() {
    now_ = 0;
    steps_ = 0;
    preemptions_ = 0;
    cursor_ = 0;
    last_ran_ = kController;
    aborting_ = false;
    sched_failed_ = false;
    next_loc_index_ = 0;
    next_mutex_index_ = 0;
    locs_.clear();
    mutexes_.clear();
    ctrl_view_.clear();
    sc_view_.clear();
    trace_.clear();
    for (auto& t : th_) {
      t.state = TState::kNotStarted;
      t.view.clear();
      t.blocked_on = nullptr;
    }

    obj_ = nullptr;
    try {
      obj_ = hooks_.make(hooks_.ctx);
      // Construction happens-before every thread start: seed each
      // thread's watermark view with the controller's init stores.
      for (auto& t : th_) t.view = ctrl_view_;
      step_loop();
      if (!sched_failed_) hooks_.finish(obj_);
    } catch (const Abort&) {
      sched_failed_ = true;
    }
    if (sched_failed_) drain();
    if (!sched_failed_) {
      for (const auto& [m, s] : mutexes_)
        if (s.held) {
          record_failure("model::Mutex still held at end of schedule");
          break;
        }
    }
    if (obj_) hooks_.destroy(obj_);
    obj_ = nullptr;
  }

  void step_loop() {
    for (;;) {
      std::vector<int> runnable;
      bool all_done = true;
      for (int t = 0; t < opt_.threads; ++t) {
        const VThread& vt = th_at(t);
        if (vt.state != TState::kDone) all_done = false;
        if (vt.state == TState::kNotStarted || vt.state == TState::kRunnable)
          runnable.push_back(t);
        else if (vt.state == TState::kBlocked &&
                 !mutexes_.at(vt.blocked_on).held)
          runnable.push_back(t);
      }
      if (runnable.empty()) {
        if (all_done) return;
        fail_now("deadlock: every virtual thread is blocked on model::Mutex");
      }
      // Bounded preemption: once the budget is spent, a still-runnable
      // last-ran thread must keep running (switches away from a blocked or
      // finished thread stay free).
      const bool last_runnable =
          std::find(runnable.begin(), runnable.end(), last_ran_) !=
          runnable.end();
      std::vector<int> cand = runnable;
      if (opt_.max_preemptions >= 0 && last_runnable &&
          preemptions_ >= opt_.max_preemptions)
        cand.assign(1, last_ran_);
      const int next = cand[static_cast<std::size_t>(
          choose(static_cast<int>(cand.size())))];
      if (last_runnable && next != last_ran_) ++preemptions_;
      last_ran_ = next;
      resume(next);
      if (sched_failed_) return;
      if (steps_ > opt_.max_steps)
        fail_now("step budget exceeded: protocol livelocks under this "
                 "schedule (raise Options::max_steps if intentional)");
    }
  }

  /// Hand the baton to thread `t`; returns when it parks, blocks, or
  /// finishes.
  void resume(int t) {
    std::unique_lock<std::mutex> lk(mu_);
    th_at(t).state = TState::kRunning;
    active_ = t;
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == kController; });
  }

  /// After a schedule fails: resume every parked thread so its body
  /// unwinds (announce/park throw Abort while aborting_), leaving all
  /// workers at the top of worker_main for the next schedule.
  void drain() {
    aborting_ = true;
    for (;;) {
      int pending = -2;
      for (int t = 0; t < opt_.threads; ++t) {
        const TState s = th_at(t).state;
        if (s == TState::kRunnable || s == TState::kBlocked) {
          pending = t;
          break;
        }
      }
      if (pending == -2) break;
      resume(pending);
    }
    aborting_ = false;
  }

  void worker_main(int tid) {
    tl_ex = this;
    tl_tid = tid;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] { return shutdown_ || active_ == tid; });
      if (shutdown_) return;
      lk.unlock();
      try {
        hooks_.run_thread(obj_for_workers(), tid);
      } catch (const Abort&) {
      } catch (const std::exception& e) {
        record_failure(std::string("unexpected exception escaped protocol "
                                   "body: ") +
                       e.what());
      } catch (...) {
        record_failure("unexpected non-exception thrown from protocol body");
      }
      lk.lock();
      th_at(tid).state = TState::kDone;
      active_ = kController;
      cv_.notify_all();
    }
  }

  /// Park at a scheduling point: give the baton back and wait to be
  /// chosen again. Every modeled op calls this first — the yield points
  /// the tentpole promises.
  void announce() {
    std::unique_lock<std::mutex> lk(mu_);
    th_at(tl_tid).state = TState::kRunnable;
    active_ = kController;
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == tl_tid; });
    lk.unlock();
    if (aborting_) throw Abort{};
    ++result_.ops;
    ++steps_;
  }

  void park_blocked(const void* m) {
    std::unique_lock<std::mutex> lk(mu_);
    th_at(tl_tid).state = TState::kBlocked;
    th_at(tl_tid).blocked_on = m;
    active_ = kController;
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == tl_tid; });
    th_at(tl_tid).blocked_on = nullptr;
    lk.unlock();
    if (aborting_) throw Abort{};
  }

  // ---- DFS choice stack ------------------------------------------------

  int choose(int arity) {
    if (arity <= 1) return 0;
    ++result_.choice_points;
    if (cursor_ < stack_.size()) {
      Choice& c = stack_[cursor_];
      if (c.arity != arity)
        fail_now("schedule replay diverged: protocol body is "
                 "nondeterministic beyond its zz::Atomic accesses");
      ++cursor_;
      return c.chosen;
    }
    stack_.push_back(Choice{0, arity});
    ++cursor_;
    return 0;
  }

  // ---- memory-model helpers --------------------------------------------

  Location& hist_loc(const void* loc) {
    auto it = locs_.find(loc);
    if (it == locs_.end())
      fail_now("modeled op on an unregistered location (constructed "
               "outside the exploration?)");
    return it->second;
  }
  std::vector<StoreRec>& hist(const void* loc) {
    return hist_loc(loc).hist;
  }

  static std::uint64_t watermark(const View& v, const void* loc) {
    auto it = v.find(loc);
    return it == v.end() ? 0 : it->second;
  }
  static void bump(View& v, const void* loc, std::uint64_t ts) {
    auto [it, inserted] = v.try_emplace(loc, ts);
    if (!inserted && it->second < ts) it->second = ts;
  }

  static std::uint64_t mask_width(std::uint64_t v, unsigned width) {
    return width >= 8 ? v : v & ((std::uint64_t{1} << (width * 8)) - 1);
  }

  std::uint64_t push_store(const void* loc, std::uint64_t val, View mview) {
    Location& l = hist_loc(loc);
    const std::uint64_t ts = ++now_;
    l.hist.push_back(
        StoreRec{mask_width(val, l.width), ts, tl_tid, std::move(mview)});
    if (tl_tid == kController) bump(ctrl_view_, loc, ts);
    return ts;
  }

  template <typename Fn>
  std::uint64_t do_rmw(const void* loc, int order, Fn&& update,
                       const char* name) {
    if (tl_tid == kController) {
      StoreRec& newest = hist(loc).back();
      const std::uint64_t old = newest.val;
      push_store(loc, update(old), View{});
      return old;
    }
    announce();
    Location& l = hist_loc(loc);
    View& v = th_at(tl_tid).view;
    StoreRec& newest = l.hist.back();  // RMWs read the newest store
    const std::uint64_t old = newest.val;
    rmw_write(l, loc, v, update(old), order, newest.mview);
    trace_op(name, l.index, old);
    return old;
  }

  /// Shared RMW write path: acquire side joins the read store's view,
  /// the new store continues the read store's release sequence (C++20:
  /// RMWs inherit, plain stores do not), release side attaches our view.
  void rmw_write(Location& l, const void* loc, View& v, std::uint64_t desired,
                 int order, const View& read_mview) {
    StoreRec& newest = l.hist.back();
    bump(v, loc, newest.ts);
    if (is_acquire(order)) join(v, newest.mview);
    if (order == kSeqCst) join(v, sc_view_);
    const std::uint64_t ts = ++now_;
    StoreRec rec{mask_width(desired, l.width), ts, tl_tid, read_mview};
    bump(v, loc, ts);
    if (is_release(order)) join(rec.mview, v);
    if (order == kSeqCst) join(sc_view_, v);
    l.hist.push_back(std::move(rec));
  }

  // ---- failure + trace -------------------------------------------------

  void record_failure(const std::string& msg) {
    sched_failed_ = true;
    if (result_.failed) return;  // keep the first counterexample
    result_.failed = true;
    std::ostringstream os;
    os << msg << "\n  counterexample schedule ("
       << trace_.size() << " ops; A<i> = i-th registered atomic, M<i> = "
       << "i-th model::Mutex):\n";
    for (const auto& line : trace_) os << "    " << line << "\n";
    result_.failure = os.str();
  }

  void trace_op(const char* op, int loc_index, std::uint64_t val) {
    std::ostringstream os;
    os << "t" << tl_tid << " " << op << " A" << loc_index << " = " << val;
    trace_.push_back(os.str());
  }
  void trace_mutex(const char* op, int index) {
    std::ostringstream os;
    os << "t" << tl_tid << " " << op << " M" << index;
    trace_.push_back(os.str());
  }

  VThread& th_at(int t) { return th_[static_cast<std::size_t>(t)]; }
  void* obj_for_workers() { return obj_; }

  Options opt_;
  ExploreHooks hooks_;
  Result result_;

  // Baton: exactly one of {controller (kController), worker t} runs.
  std::mutex mu_;
  std::condition_variable cv_;
  int active_ = kController;
  bool shutdown_ = false;

  std::vector<VThread> th_;
  void* obj_ = nullptr;

  // Per-schedule state (reset in run_one_schedule).
  std::unordered_map<const void*, Location> locs_;
  std::map<const void*, MutexState> mutexes_;
  View ctrl_view_;
  View sc_view_;
  std::uint64_t now_ = 0;
  int steps_ = 0;
  int preemptions_ = 0;
  int last_ran_ = kController;
  bool aborting_ = false;
  bool sched_failed_ = false;
  int next_loc_index_ = 0;
  int next_mutex_index_ = 0;
  std::vector<std::string> trace_;

  // DFS state (persists across schedules).
  std::vector<Choice> stack_;
  std::size_t cursor_ = 0;
};

}  // namespace

bool exploring() noexcept { return tl_ex != nullptr; }

bool registered(const void* loc) noexcept {
  return tl_ex != nullptr && tl_ex->has(loc);
}

void register_loc(void* loc, std::uint64_t initial, unsigned width) {
  if (tl_ex) tl_ex->reg(loc, initial, width);
}
void unregister_loc(void* loc) noexcept {
  if (tl_ex) tl_ex->unreg(loc);
}

std::uint64_t op_load(const void* loc, int order) {
  return tl_ex->do_load(loc, order);
}
void op_store(void* loc, std::uint64_t v, int order) {
  tl_ex->do_store(loc, v, order);
}
std::uint64_t op_exchange(void* loc, std::uint64_t v, int order) {
  return tl_ex->do_exchange(loc, v, order);
}
std::uint64_t op_fetch_add(void* loc, std::uint64_t delta, int order) {
  return tl_ex->do_fetch_add(loc, delta, order);
}
bool op_cas(void* loc, std::uint64_t& expected, std::uint64_t desired,
            int success_order, int failure_order) {
  return tl_ex->do_cas(loc, expected, desired, success_order, failure_order);
}

void fail(const char* expr, const char* msg, const char* file, int line) {
  std::ostringstream os;
  os << "ZZ_MODEL_ASSERT(" << expr << ") failed at " << file << ":" << line
     << " — " << msg;
  if (tl_ex) tl_ex->fail_now(os.str());
  // Outside an exploration a model assert is a plain programming error.
  std::fprintf(stderr, "%s\n", os.str().c_str());
  std::abort();
}

Result explore_impl(const Options& opt, const ExploreHooks& hooks) {
  Explorer ex(opt, hooks);
  return ex.run();
}

}  // namespace detail

Mutex::Mutex() {
  if (!detail::tl_ex) {
    std::fprintf(stderr,
                 "zz::model::Mutex constructed outside an exploration\n");
    std::abort();
  }
  detail::tl_ex->mutex_reg(this);
}
Mutex::~Mutex() {
  if (detail::tl_ex) detail::tl_ex->mutex_unreg(this);
}
void Mutex::lock() { detail::tl_ex->mutex_lock(this); }
void Mutex::unlock() { detail::tl_ex->mutex_unlock(this); }

}  // namespace zz::model
