#include "zz/common/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace zz {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::cout << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      std::cout << cell << std::string(width[c] - cell.size(), ' ')
                << (c + 1 < header_.size() ? " | " : " |");
    }
    std::cout << "\n";
  };

  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  print_row(header_);
  std::cout << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    std::cout << std::string(width[c] + 2, '-') << (c + 1 < header_.size() ? "+" : "|");
  std::cout << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

}  // namespace zz
