#include "zz/common/rng.h"

#include <cmath>

namespace zz {

cplx Rng::gaussian_c(double variance) {
  const double sigma = std::sqrt(variance / 2.0);
  return {sigma * gaussian(), sigma * gaussian()};
}

Bits Rng::bits(std::size_t n) {
  Bits out(n);
  for (auto& b : out) b = bit();
  return out;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(eng_() & 0xffu);
  return out;
}

cplx Rng::unit_phasor() {
  const double phi = uniform(0.0, kTwoPi);
  return {std::cos(phi), std::sin(phi)};
}

Rng Rng::fork() { return Rng(eng_()); }

}  // namespace zz
