#include "zz/common/crc32.h"

#include <array>

namespace zz {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected 802.3 polynomial

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

void Crc32::update(std::uint8_t byte) {
  state_ = table()[(state_ ^ byte) & 0xffu] ^ (state_ >> 8);
}

void Crc32::update(const Bytes& data) {
  for (auto b : data) update(b);
}

std::uint32_t crc32(const Bytes& data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace zz
