// Lock-free kernels of ThreadPool (zz/common/thread_pool.h), extracted so
// the model-check suites explore EXACTLY the transitions the pool runs:
//
//  * RangeCell / range_pop_front / range_steal_back — the work-stealing
//    deque of parallel_for_sharded: one packed [lo, hi) range per worker,
//    owner front-pops, thieves take the back half and install the loot in
//    their own (drained) cell. Every transition is a CAS on the packed
//    word, so no index is ever claimed twice (pinned by the deque suite).
//  * ticket_claim — the (generation << 32 | next_index) batch ticket of
//    parallel_for: the CAS re-checks the generation, so a worker lingering
//    from a drained batch can never claim an index of the NEXT batch.
//
// Ordering convention (docs/ANALYSIS.md §10): scans are acquire loads
// (observe the latest claims before deciding), claims are acq_rel CASes
// (a claim both takes ownership of the index and republishes the cell),
// installs of freshly-stolen loot are release stores; CAS failure paths
// are relaxed (the retry re-loads).
#pragma once

#include <cstddef>
#include <cstdint>

#include "zz/common/atomic.h"

namespace zz {

/// A [lo, hi) index range packed into one atomic 64-bit word.
struct RangeCell {
  static constexpr std::uint64_t pack(std::uint64_t lo,
                                      std::uint64_t hi) noexcept {
    return (lo << 32) | hi;
  }
  static constexpr std::uint64_t lo(std::uint64_t packed) noexcept {
    return packed >> 32;
  }
  static constexpr std::uint64_t hi(std::uint64_t packed) noexcept {
    return packed & 0xffffffffu;
  }
  static constexpr bool empty(std::uint64_t packed) noexcept {
    return lo(packed) >= hi(packed);
  }
};

enum class PopOutcome {
  kEmpty,   ///< cell drained — stop popping, go steal
  kPopped,  ///< *out holds the claimed front index
  kRaced,   ///< CAS lost (a thief moved the cell) — retry
};

/// One owner front-pop attempt on `q`.
inline PopOutcome range_pop_front(Atomic<std::uint64_t>& q,
                                  std::size_t* out) noexcept {
  std::uint64_t cur = q.load(std::memory_order_acquire);
  const std::uint64_t lo = RangeCell::lo(cur), hi = RangeCell::hi(cur);
  if (lo >= hi) return PopOutcome::kEmpty;
  if (!q.compare_exchange_weak(cur, RangeCell::pack(lo + 1, hi),
                               std::memory_order_acq_rel,
                               std::memory_order_relaxed))
    return PopOutcome::kRaced;
  *out = static_cast<std::size_t>(lo);
  return PopOutcome::kPopped;
}

enum class StealOutcome {
  kEmpty,        ///< victim raced empty — rescan for another victim
  kStoleSingle,  ///< one index left: claimed directly into *out
  kInstalled,    ///< back half moved into `own` — resume popping it
  kRaced,        ///< CAS lost — rescan
};

/// One steal attempt from `victim` into the caller's drained cell `own`.
/// Takes the back half so the victim keeps its cache-warm front; installing
/// the loot (rather than looping over it) lets other thieves re-steal it.
inline StealOutcome range_steal_back(Atomic<std::uint64_t>& victim,
                                     Atomic<std::uint64_t>& own,
                                     std::size_t* out) noexcept {
  std::uint64_t cur = victim.load(std::memory_order_acquire);
  const std::uint64_t lo = RangeCell::lo(cur), hi = RangeCell::hi(cur);
  if (lo >= hi) return StealOutcome::kEmpty;
  if (hi - lo == 1) {
    // A single index: claim and run it directly.
    if (!victim.compare_exchange_weak(cur, RangeCell::pack(lo + 1, hi),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed))
      return StealOutcome::kRaced;
    *out = static_cast<std::size_t>(lo);
    return StealOutcome::kStoleSingle;
  }
  const std::uint64_t mid = lo + (hi - lo + 1) / 2;
  if (!victim.compare_exchange_weak(cur, RangeCell::pack(lo, mid),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed))
    return StealOutcome::kRaced;
  own.store(RangeCell::pack(mid, hi), std::memory_order_release);
  return StealOutcome::kInstalled;
}

enum class TicketOutcome {
  kSuperseded,  ///< ticket's generation moved past `gen` — exit the batch
  kExhausted,   ///< all n indices claimed — exit the batch
  kClaimed,     ///< *out holds the claimed index
  kRaced,       ///< CAS lost — retry
};

/// One claim attempt on the batch ticket for generation `gen` of `n`
/// tasks. The full-word CAS makes generation re-check and index claim one
/// atomic step — there is no window where a stale worker can take an index
/// of a newer batch.
inline TicketOutcome ticket_claim(Atomic<std::uint64_t>& ticket,
                                  std::uint32_t gen, std::size_t n,
                                  std::size_t* out) noexcept {
  std::uint64_t t = ticket.load(std::memory_order_acquire);
  if (static_cast<std::uint32_t>(t >> 32) != gen)
    return TicketOutcome::kSuperseded;
  const auto i = static_cast<std::size_t>(t & 0xffffffffu);
  if (i >= n) return TicketOutcome::kExhausted;
  if (!ticket.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed))
    return TicketOutcome::kRaced;
  *out = i;
  return TicketOutcome::kClaimed;
}

}  // namespace zz
