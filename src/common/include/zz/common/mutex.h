// Annotated mutex wrappers for clang -Wthread-safety (docs/ANALYSIS.md §3).
//
// libstdc++'s std::mutex has no capability attributes, so locking it
// directly is invisible to the analysis. zz::Mutex is a zero-overhead
// std::mutex wrapper that carries them; zz::MutexLock is the RAII guard.
// Condition-variable waits go through the native handles (`native()`),
// which the wait re-acquires before returning — annotated call sites keep
// the capability across the wait, which matches what the analysis assumes.
#pragma once

#include <mutex>

#include "zz/common/thread_annotations.h"

namespace zz {

class ZZ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ZZ_ACQUIRE() { m_.lock(); }
  void unlock() ZZ_RELEASE() { m_.unlock(); }

  /// Underlying std::mutex, for std::condition_variable waits only. The
  /// caller must already hold this Mutex (via MutexLock::native()).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock over zz::Mutex; the scoped-capability shape clang's analysis
/// tracks across the guarded region.
class ZZ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ZZ_ACQUIRE(mu) : lk_(mu.native()) {}
  ~MutexLock() ZZ_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Native handle for std::condition_variable::wait. wait() unlocks and
  /// re-acquires before returning, so the capability is held whenever
  /// annotated code runs — the transient release is invisible by design
  /// (same contract as abseil's CondVar-on-Mutex).
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace zz
