// CRC-32 (IEEE 802.3 polynomial), the frame check sequence 802.11 appends to
// every MPDU. ZigZag relies on it twice: the standard decoder declares
// failure when the checksum does not verify (§4.2, "decoding fails ... or
// the decoded packet does not satisfy the checksum"), and decoded collision
// chunks are only accepted into a packet once the reassembled frame checks.
#pragma once

#include <cstdint>

#include "zz/common/types.h"

namespace zz {

/// CRC-32/IEEE over a byte buffer (reflected, init 0xFFFFFFFF, xorout
/// 0xFFFFFFFF) — the 802.11 FCS.
std::uint32_t crc32(const Bytes& data);

/// Incremental CRC-32 for streaming use.
class Crc32 {
 public:
  void update(std::uint8_t byte);
  void update(const Bytes& data);
  /// Finalized value; the object may keep accumulating afterwards.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace zz
