// Clang thread-safety-analysis annotations (docs/ANALYSIS.md §3).
//
// These macros expand to clang's `-Wthread-safety` capability attributes
// when the analysis is available and to nothing everywhere else, so the
// annotated contracts compile identically under gcc. The vocabulary is the
// standard one (see the clang ThreadSafetyAnalysis documentation and the
// abseil `thread_annotations.h` idiom): data members state which capability
// guards them, functions state which capabilities they acquire, release or
// require. `ci.sh --sanitize` compiles the tree with
// `-DZZ_THREAD_SAFETY=ON` under clang, turning every violated contract into
// a build error.
//
// The analysis only understands capabilities it can see, and libstdc++'s
// std::mutex carries no attributes — lock through zz::Mutex / zz::MutexLock
// (zz/common/mutex.h) instead of std::mutex directly in annotated code.
#pragma once

#if defined(__clang__)
#define ZZ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ZZ_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Class attribute: instances of this type are lockable capabilities.
#define ZZ_CAPABILITY(x) ZZ_THREAD_ANNOTATION__(capability(x))

/// Class attribute: RAII type that holds a capability for its lifetime.
#define ZZ_SCOPED_CAPABILITY ZZ_THREAD_ANNOTATION__(scoped_lockable)

/// Member attribute: reads/writes require holding `x`.
#define ZZ_GUARDED_BY(x) ZZ_THREAD_ANNOTATION__(guarded_by(x))

/// Member attribute: the pointee (not the pointer) is guarded by `x`.
#define ZZ_PT_GUARDED_BY(x) ZZ_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function attribute: caller must hold the listed capabilities.
#define ZZ_REQUIRES(...) \
  ZZ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function attribute: caller must NOT hold the listed capabilities.
#define ZZ_EXCLUDES(...) ZZ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function attribute: acquires the listed capabilities (or `this` if none).
#define ZZ_ACQUIRE(...) \
  ZZ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the listed capabilities (or `this` if none).
#define ZZ_RELEASE(...) \
  ZZ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attribute: returns a reference to the named capability.
#define ZZ_RETURN_CAPABILITY(x) ZZ_THREAD_ANNOTATION__(lock_returned(x))

/// Function attribute: opt this function out of the analysis. Every use
/// must carry a comment saying why the analysis cannot see the invariant.
#define ZZ_NO_THREAD_SAFETY_ANALYSIS \
  ZZ_THREAD_ANNOTATION__(no_thread_safety_analysis)
