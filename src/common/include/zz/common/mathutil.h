// Small numeric helpers used across the PHY, channel and ZigZag modules.
#pragma once

#include <cmath>
#include <cstddef>

#include "zz/common/types.h"

namespace zz {

/// Decibels → linear power ratio.
inline double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

/// Linear power ratio → decibels.
inline double lin_to_db(double lin) { return 10.0 * std::log10(lin); }

/// Normalized sinc: sin(pi x) / (pi x), sinc(0) = 1. This is the
/// interpolation kernel of §4.2.3(b): a band-limited signal sampled at the
/// Nyquist rate can be reconstructed at any fractional offset with it.
inline double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

/// Wrap an angle to (-pi, pi].
inline double wrap_phase(double phi) {
  while (phi > kPi) phi -= kTwoPi;
  while (phi <= -kPi) phi += kTwoPi;
  return phi;
}

/// Mean power (mean |x|^2) of a sample stream.
inline double mean_power(const CVec& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& v : x) acc += std::norm(v);
  return acc / static_cast<double>(x.size());
}

/// Energy (sum |x|^2) of a sample stream.
inline double energy(const CVec& x) {
  double acc = 0.0;
  for (const auto& v : x) acc += std::norm(v);
  return acc;
}

/// Hamming distance between two equal-length bit vectors; if lengths differ
/// the extra tail of the longer one counts as errors.
std::size_t hamming_distance(const Bits& a, const Bits& b);

/// Bit error rate of `rx` against reference `tx`.
inline double bit_error_rate(const Bits& tx, const Bits& rx) {
  if (tx.empty()) return 0.0;
  return static_cast<double>(hamming_distance(tx, rx)) /
         static_cast<double>(tx.size());
}

}  // namespace zz
