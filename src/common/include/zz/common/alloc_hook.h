// Allocation-counting test hook (AP-farm soak gates).
//
// The farm's long-haul soak run must prove that steady-state episodes
// perform NO heap allocation — arenas, cache shards and the episode memo
// have to reach a fixed point after warmup, or a thousand-cell farm churns
// the allocator forever. There is no portable way to observe that from
// the outside, so this hook replaces the global operator new/delete with
// counting wrappers (alloc_hook.cpp) and exposes the counters:
//
//  * thread_alloc_counts() — per-thread totals, so a worker can tally the
//    allocations of exactly the episode it just ran (AllocTally);
//  * live_heap_bytes()/peak_heap_bytes() — process-wide net heap, the
//    bounded-retention side of the soak gate (a leak or an unbounded
//    cache shows up as monotone growth across episodes).
//
// The replacement is linked into any binary whose object files reference
// these functions (the farm module does); it forwards to malloc/free and
// adds a handful of thread-local increments per call — cheap enough to
// stay enabled in the Release benches the drift gate times. Binaries that
// never reference the hook keep the toolchain's stock operator new.
//
// Thread contract: counters for a thread are written only by that thread;
// the process-wide net/peak counters are relaxed atomics (they order
// nothing — they are gauges, read at quiescent points).
#pragma once

#include <cstdint>

namespace zz {

/// Per-thread allocation totals since thread start.
struct AllocCounts {
  std::uint64_t allocs = 0;       ///< operator new calls served
  std::uint64_t frees = 0;        ///< operator delete calls (non-null)
  std::uint64_t alloc_bytes = 0;  ///< usable bytes handed out
};

/// The calling thread's totals.
AllocCounts thread_alloc_counts();

/// Process-wide net heap (usable bytes allocated minus freed) and the
/// highest value it has reached. Counts only memory that flowed through
/// the replaced operator new — i.e. C++ allocations of this binary.
std::int64_t live_heap_bytes();
std::int64_t peak_heap_bytes();

/// Scoped tally: allocation activity on the calling thread since
/// construction. The farm wraps each steady-state episode in one and
/// gates allocs() == 0 after warmup.
class AllocTally {
 public:
  AllocTally() : start_(thread_alloc_counts()) {}

  std::uint64_t allocs() const {
    return thread_alloc_counts().allocs - start_.allocs;
  }
  std::uint64_t frees() const {
    return thread_alloc_counts().frees - start_.frees;
  }
  std::uint64_t alloc_bytes() const {
    return thread_alloc_counts().alloc_bytes - start_.alloc_bytes;
  }

 private:
  AllocCounts start_;
};

}  // namespace zz
