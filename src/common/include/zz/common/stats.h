// Statistics helpers for the evaluation harness: running moments, empirical
// CDFs (Figs 5-5, 5-6, 5-8, 5-9 are all CDFs) and percentile queries.
#pragma once

#include <cstddef>
#include <vector>

namespace zz {

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set. Mirrors the paper's presentation of
/// testbed results as cumulative fractions of flows.
class Cdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Fraction of samples <= x.
  double fraction_below(double x) const;
  /// p-th percentile, p in [0, 1], linear interpolation.
  double percentile(double p) const;
  /// Evenly spaced (value, cumulative fraction) points for printing a curve.
  std::vector<std::pair<double, double>> curve(std::size_t points = 20) const;

 private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace zz
