// Core value types shared by every module in the ZigZag reproduction.
//
// The whole library operates on complex baseband samples, exactly as the
// paper's Chapter 3 ("A Communication Primer") describes: a wireless signal
// is a stream of discrete complex numbers, and the channel multiplies each
// transmitted symbol by a complex gain and adds noise.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace zz {

/// Complex baseband sample. Double precision keeps subtraction residuals in
/// ZigZag's iterative cancellation loop far below the noise floor, so the
/// algorithmic behaviour — not numerics — dominates every experiment.
using cplx = std::complex<double>;

/// A contiguous stream of complex baseband samples.
using CVec = std::vector<cplx>;

/// A packed-as-bytes bit stream, one bit per element (0 or 1). Keeping bits
/// unpacked trades memory for clarity; packets here are ≤ 1500 B (12k bits).
using Bits = std::vector<std::uint8_t>;

/// Raw packet payload bytes.
using Bytes = std::vector<std::uint8_t>;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace zz
