// Deterministic random number generation.
//
// Every stochastic element of the reproduction — payload bits, channel
// gains, noise, backoff slots, topology placement — draws from a seeded
// `Rng`, so each test and bench is exactly reproducible from its printed
// seed.
#pragma once

#include <cstdint>
#include <random>

#include "zz/common/types.h"

namespace zz {

/// Seeded pseudo-random source wrapping std::mt19937_64 with the handful of
/// distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed2008u) : eng_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(eng_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  /// Standard normal variate.
  double gaussian() { return normal_(eng_); }

  /// Zero-mean circularly-symmetric complex Gaussian with total variance
  /// `variance` (i.e. variance/2 per real dimension) — the AWGN model of
  /// Eq. 3.1.
  cplx gaussian_c(double variance);

  /// A single fair bit.
  std::uint8_t bit() { return static_cast<std::uint8_t>(eng_() & 1u); }

  /// `n` fair bits.
  Bits bits(std::size_t n);

  /// `n` uniform random bytes.
  Bytes bytes(std::size_t n);

  /// Complex number of unit magnitude with uniform random phase — used for
  /// channel gains and initial carrier phases.
  cplx unit_phasor();

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-node / per-run streams).
  Rng fork();

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace zz
