// Runtime contracts — the dynamic half of the domain-invariant analysis
// layer (docs/ANALYSIS.md §7; the static half is the zz-* clang-tidy plugin
// under tools/tidy/).
//
//   ZZ_CHECK(cond) << "context " << value;   // always on, fatal
//   ZZ_CHECK_EQ(a, b);                       // prints both operands
//   ZZ_DCHECK_LT(i, n);                      // debug-only (see below)
//
// Semantics:
//   * A failed check prints `file:line: ZZ_CHECK(expr)` plus the streamed
//     message to stderr and aborts — a contract violation is a wrong
//     program, not a recoverable condition. Recoverable/user-input errors
//     keep using exceptions (e.g. ZigZagDecoder's invalid_argument).
//   * Message formatting is lazy: nothing right of `<<` is evaluated — and
//     no stream is constructed — unless the condition already failed, so a
//     passing ZZ_CHECK costs one predictable branch.
//   * ZZ_DCHECK* compile to nothing (arguments unevaluated, but still
//     type-checked) unless ZZ_ENABLE_DCHECKS is defined. The build defines
//     it for Debug and sanitizer configurations and `-DZZ_DCHECKS=ON`
//     forces it anywhere; plain Release — the configuration that runs the
//     drift-gated benches — compiles them out, which is what lets DCHECKs
//     sit inside per-symbol loops without perturbing baselines.
//
// The comparison forms evaluate each operand exactly once and stream both
// values into the failure report, so `ZZ_CHECK_EQ(got, want)` failures are
// diagnosable from CI logs without a debugger.
#pragma once

#include <sstream>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define ZZ_PREDICT_TRUE(x) (__builtin_expect(static_cast<bool>(x), true))
#else
#define ZZ_PREDICT_TRUE(x) (static_cast<bool>(x))
#endif

namespace zz::internal {

/// Failure sink: collects the streamed message, then prints and aborts in
/// the destructor (end of the full check expression). Only ever constructed
/// on the failure path.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* what) {
    os_ << file << ":" << line << ": " << what;
  }
  /// Comparison-form failure: operands already rendered by check_op_fail.
  CheckFailure(const char* file, int line, const std::string& what) {
    os_ << file << ":" << line << ": " << what;
  }
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  ~CheckFailure();  // prints and aborts; defined in check.cpp

  std::ostream& stream() { return os_; }

 private:
  std::ostringstream os_;
};

/// `operator&` binds looser than `<<` and tighter than `?:`, so
/// `cond ? (void)0 : Voidify() & failure.stream() << a << b` swallows the
/// whole streamed chain into one void-typed conditional branch.
struct Voidify {
  void operator&(std::ostream&) {}
};

/// Renders a failed comparison (`expr (lhs vs. rhs)`) on the cold path.
/// Returns a heap string so the fast path stays a bare compare-and-branch;
/// ownership passes to the CheckFailure via the macro below.
template <typename A, typename B>
std::string* check_op_fail(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << expr << " (" << a << " vs. " << b << ")";
  return new std::string(os.str());
}

// One compare-and-render function per operator, so each macro operand is
// evaluated exactly once (as the function argument). Returns nullptr on
// success, the rendered message on failure.
#define ZZ_DEFINE_CHECK_OP_IMPL(op_name, op)                          \
  template <typename A, typename B>                                   \
  inline std::string* check_##op_name##_impl(const A& a, const B& b, \
                                             const char* expr) {      \
    if (ZZ_PREDICT_TRUE(a op b)) return nullptr;                      \
    return check_op_fail(expr, a, b);                                 \
  }
ZZ_DEFINE_CHECK_OP_IMPL(eq, ==)
ZZ_DEFINE_CHECK_OP_IMPL(ne, !=)
ZZ_DEFINE_CHECK_OP_IMPL(lt, <)
ZZ_DEFINE_CHECK_OP_IMPL(le, <=)
ZZ_DEFINE_CHECK_OP_IMPL(gt, >)
ZZ_DEFINE_CHECK_OP_IMPL(ge, >=)
#undef ZZ_DEFINE_CHECK_OP_IMPL

/// Holds the rendered comparison message across the macro's `while` scope.
class OwnedMessage {
 public:
  explicit OwnedMessage(std::string* s) : s_(s) {}
  ~OwnedMessage() { delete s_; }
  OwnedMessage(const OwnedMessage&) = delete;
  OwnedMessage& operator=(const OwnedMessage&) = delete;
  const std::string& str() const { return *s_; }
  explicit operator bool() const { return s_ != nullptr; }

 private:
  std::string* s_;
};

}  // namespace zz::internal

/// Always-on fatal contract. Supports `ZZ_CHECK(cond) << "detail" << v;`.
#define ZZ_CHECK(cond)                                             \
  ZZ_PREDICT_TRUE(cond)                                            \
  ? (void)0                                                        \
  : ::zz::internal::Voidify() &                                    \
        ::zz::internal::CheckFailure(__FILE__, __LINE__,           \
                                     "ZZ_CHECK(" #cond ") failed") \
            .stream()

// Comparison forms: each operand is evaluated exactly once, as an argument
// of check_<op>_impl (which compares on the fast path and renders both
// values on failure). The `while` runs at most once — CheckFailure's
// destructor aborts — and exists so the macro both scopes the rendered
// message and accepts a trailing streamed message, without a dangling-else
// hazard.
#define ZZ_CHECK_OP(op_name, impl, a, b)                             \
  while (::zz::internal::OwnedMessage zz_msg{::zz::internal::impl(   \
      (a), (b), "ZZ_CHECK_" #op_name "(" #a ", " #b ") failed")})    \
  ::zz::internal::CheckFailure(__FILE__, __LINE__, zz_msg.str()).stream()

#define ZZ_CHECK_EQ(a, b) ZZ_CHECK_OP(EQ, check_eq_impl, a, b)
#define ZZ_CHECK_NE(a, b) ZZ_CHECK_OP(NE, check_ne_impl, a, b)
#define ZZ_CHECK_LT(a, b) ZZ_CHECK_OP(LT, check_lt_impl, a, b)
#define ZZ_CHECK_LE(a, b) ZZ_CHECK_OP(LE, check_le_impl, a, b)
#define ZZ_CHECK_GT(a, b) ZZ_CHECK_OP(GT, check_gt_impl, a, b)
#define ZZ_CHECK_GE(a, b) ZZ_CHECK_OP(GE, check_ge_impl, a, b)

// Debug contracts: full checks when ZZ_ENABLE_DCHECKS is defined, otherwise
// a dead `while (false)` whose condition and message still type-check but
// never execute — safe inside the decoder's per-symbol loops.
#ifdef ZZ_ENABLE_DCHECKS
#define ZZ_DCHECK(cond) ZZ_CHECK(cond)
#define ZZ_DCHECK_EQ(a, b) ZZ_CHECK_EQ(a, b)
#define ZZ_DCHECK_NE(a, b) ZZ_CHECK_NE(a, b)
#define ZZ_DCHECK_LT(a, b) ZZ_CHECK_LT(a, b)
#define ZZ_DCHECK_LE(a, b) ZZ_CHECK_LE(a, b)
#define ZZ_DCHECK_GT(a, b) ZZ_CHECK_GT(a, b)
#define ZZ_DCHECK_GE(a, b) ZZ_CHECK_GE(a, b)
#else
#define ZZ_DCHECK(cond) \
  while (false) ZZ_CHECK(cond)
#define ZZ_DCHECK_EQ(a, b) \
  while (false) ZZ_CHECK_EQ(a, b)
#define ZZ_DCHECK_NE(a, b) \
  while (false) ZZ_CHECK_NE(a, b)
#define ZZ_DCHECK_LT(a, b) \
  while (false) ZZ_CHECK_LT(a, b)
#define ZZ_DCHECK_LE(a, b) \
  while (false) ZZ_CHECK_LE(a, b)
#define ZZ_DCHECK_GT(a, b) \
  while (false) ZZ_CHECK_GT(a, b)
#define ZZ_DCHECK_GE(a, b) \
  while (false) ZZ_CHECK_GE(a, b)
#endif
