// Worker pool for the embarrassingly-parallel experiment sweeps.
//
// The testbed benches decode thousands of independent collision pairs; each
// pair is seeded from its own deterministic RNG shard (shard_seed), so the
// results are bit-identical no matter how many workers run or in which
// order tasks complete. Decoders, detectors and arenas are NOT shared
// across tasks — each task builds its own (they are cheap; the scratch
// buffers inside them amortize within a task).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace zz {

/// Independent 64-bit seed for task `index` of a run seeded with `base`
/// (SplitMix64 over the pair) — the RNG sharding used by every parallel
/// sweep so a task's stream never depends on scheduling.
std::uint64_t shard_seed(std::uint64_t base, std::uint64_t index);

class ThreadPool {
 public:
  /// 0 = one worker per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Run fn(i) for every i in [0, n), distributed over the workers; blocks
  /// until all complete. The calling thread participates, so a pool of
  /// size 1 (or n == 1) degenerates to a plain loop. The first exception
  /// thrown by any task is rethrown here after the batch drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Work-stealing variant for heterogeneous task costs (the AP-farm
  /// episode queue): the index space is pre-partitioned into one
  /// contiguous block per worker; each worker drains its own block
  /// front-to-back and, when out of work, steals the back half of the
  /// largest remaining block (or the lone remaining index). fn(i, worker)
  /// runs every i in [0, n) exactly once; `worker` is a stable queue id in
  /// [0, min(size(), n)) that is never inside fn on two threads at once,
  /// so callers key per-worker state (scratch arenas, cache shards) by it.
  /// Scheduling — and therefore which worker id an index lands on — is
  /// nondeterministic; bit-identical results at any pool size remain the
  /// caller's contract (per-index RNG shards, worker state that cannot
  /// change results). Blocks until all indices complete; the first
  /// exception is rethrown after the batch drains.
  void parallel_for_sharded(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool, created on first use.
  static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;
  std::size_t size_;
};

}  // namespace zz
