// zz::Atomic<T>: the repo's only sanctioned atomic type (lint: zz-raw-atomic
// bans std::atomic outside this header; zz-memory-order bans implicit
// seq_cst — this API has no defaulted order arguments, every call site
// names its ordering from the convention table in docs/ANALYSIS.md §10).
//
// Production builds compile to a plain std::atomic<T>: same size, same
// codegen, zero allocations (pinned by tests/atomic_test.cpp). Under
// ZZ_MODEL_CHECK every load/store/CAS/fetch-op of an object constructed
// inside a zz::model exploration routes through the interleaving explorer
// (zz/common/model/explorer.h) — a scheduling yield point plus simulated
// relaxed/acquire/release visibility. Objects constructed outside an
// exploration (globals like the alloc-hook gauges, pool state in ordinary
// tests) fall through to the embedded std::atomic even in model builds, so
// a ZZ_MODEL_CHECK tree still runs the full ordinary test suite.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(ZZ_MODEL_CHECK)
#include "zz/common/model/explorer.h"
#endif

namespace zz {

namespace detail_atomic {

// Model-checker word transport: values travel as zero-extended 64-bit
// words (the explorer masks RMW results back to sizeof(T)).
template <typename T>
inline std::uint64_t to_word(T v) noexcept {
  std::uint64_t w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}
template <typename T>
inline T from_word(std::uint64_t w) noexcept {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

}  // namespace detail_atomic

template <typename T>
class Atomic {
  static_assert(std::is_trivially_copyable_v<T>,
                "zz::Atomic values must be trivially copyable");
  static_assert(sizeof(T) <= 8,
                "the model checker transports values as 64-bit words");

 public:
  constexpr Atomic() noexcept : Atomic(T()) {}
  constexpr explicit Atomic(T v) noexcept : a_(v) {
#if defined(ZZ_MODEL_CHECK)
    // Constant-initialized globals skip registration (they are never part
    // of an exploration); runtime construction inside one registers the
    // location with the live explorer.
    if (!std::is_constant_evaluated()) {
      if (model::detail::exploring())
        model::detail::register_loc(this, detail_atomic::to_word(v),
                                    sizeof(T));
    }
#endif
  }
#if defined(ZZ_MODEL_CHECK)
  ~Atomic() {
    if (model::detail::exploring()) model::detail::unregister_loc(this);
  }
#else
  ~Atomic() = default;
#endif
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order) const noexcept {
#if defined(ZZ_MODEL_CHECK)
    if (model::detail::registered(this))
      return detail_atomic::from_word<T>(
          model::detail::op_load(this, static_cast<int>(order)));
#endif
    return a_.load(order);
  }

  void store(T v, std::memory_order order) noexcept {
#if defined(ZZ_MODEL_CHECK)
    if (model::detail::registered(this)) {
      model::detail::op_store(this, detail_atomic::to_word(v),
                              static_cast<int>(order));
      return;
    }
#endif
    a_.store(v, order);
  }

  T exchange(T v, std::memory_order order) noexcept {
#if defined(ZZ_MODEL_CHECK)
    if (model::detail::registered(this))
      return detail_atomic::from_word<T>(model::detail::op_exchange(
          this, detail_atomic::to_word(v), static_cast<int>(order)));
#endif
    return a_.exchange(v, order);
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) noexcept {
#if defined(ZZ_MODEL_CHECK)
    if (model::detail::registered(this)) return model_cas(expected, desired,
                                                          success, failure);
#endif
    return a_.compare_exchange_weak(expected, desired, success, failure);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) noexcept {
#if defined(ZZ_MODEL_CHECK)
    if (model::detail::registered(this)) return model_cas(expected, desired,
                                                          success, failure);
#endif
    return a_.compare_exchange_strong(expected, desired, success, failure);
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order order) noexcept {
#if defined(ZZ_MODEL_CHECK)
    if (model::detail::registered(this))
      return detail_atomic::from_word<T>(model::detail::op_fetch_add(
          this, detail_atomic::to_word(delta), static_cast<int>(order)));
#endif
    return a_.fetch_add(delta, order);
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T delta, std::memory_order order) noexcept {
#if defined(ZZ_MODEL_CHECK)
    if (model::detail::registered(this))
      // Two's-complement delta: the explorer adds words mod 2^width.
      return detail_atomic::from_word<T>(model::detail::op_fetch_add(
          this, ~detail_atomic::to_word(delta) + 1,
          static_cast<int>(order)));
#endif
    return a_.fetch_sub(delta, order);
  }

 private:
#if defined(ZZ_MODEL_CHECK)
  bool model_cas(T& expected, T desired, std::memory_order success,
                 std::memory_order failure) noexcept {
    std::uint64_t e = detail_atomic::to_word(expected);
    const bool ok =
        model::detail::op_cas(this, e, detail_atomic::to_word(desired),
                              static_cast<int>(success),
                              static_cast<int>(failure));
    expected = detail_atomic::from_word<T>(e);
    return ok;
  }
#endif
  std::atomic<T> a_;
};

/// Lock-free maximum: raises `a` to at least `v` and returns the prior
/// value read. The RMW loop never loses a larger concurrent maximum — the
/// alloc_hook peak-gauge contract, pinned by the peak model suite.
template <typename T>
inline T fetch_max(Atomic<T>& a, T v, std::memory_order order) noexcept {
  T cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, order, std::memory_order_relaxed)) {
  }
  return cur;
}

/// One-owner flag: try_acquire wins at most once until release. Enter is
/// an acquire exchange and leave a release store, so the holder's writes
/// are visible to the next successful acquirer — the ReentryFlag contract.
class AtomicFlag {
 public:
  constexpr AtomicFlag() noexcept : held_(false) {}
  AtomicFlag(const AtomicFlag&) = delete;
  AtomicFlag& operator=(const AtomicFlag&) = delete;

  /// True if the caller took the flag (it was clear).
  bool try_acquire() noexcept {
    return !held_.exchange(true, std::memory_order_acquire);
  }
  void release() noexcept { held_.store(false, std::memory_order_release); }
  bool held(std::memory_order order) const noexcept {
    return held_.load(order);
  }

 private:
  Atomic<bool> held_;
};

/// RAII try-lock over AtomicFlag — the reentry/confinement guard shape:
/// construction attempts the acquire, acquired() reports ownership, the
/// destructor releases only what it took.
class AtomicFlagGuard {
 public:
  explicit AtomicFlagGuard(AtomicFlag& flag) noexcept
      : flag_(flag), acquired_(flag.try_acquire()) {}
  ~AtomicFlagGuard() {
    if (acquired_) flag_.release();
  }
  AtomicFlagGuard(const AtomicFlagGuard&) = delete;
  AtomicFlagGuard& operator=(const AtomicFlagGuard&) = delete;

  bool acquired() const noexcept { return acquired_; }

 private:
  AtomicFlag& flag_;
  bool acquired_;
};

/// Concurrent-entry detector for single-owner regions (ScratchArena
/// confinement). enter()/exit() return the PRIOR count; prior != 0 on
/// enter means overlap. Both are acq_rel RMWs: besides detecting overlap,
/// the counter chain is the happens-before edge for the documented serial
/// cross-thread hand-off (B's enter that reads A's exit observes all of
/// A's writes) — relaxed here both missed overlaps and broke the hand-off
/// (docs/ANALYSIS.md §10; pinned by the confinement model suite).
class EntryCounter {
 public:
  constexpr EntryCounter() noexcept : n_(0) {}
  EntryCounter(const EntryCounter&) = delete;
  EntryCounter& operator=(const EntryCounter&) = delete;

  /// Returns the count before entering (0 = sole owner).
  int enter() noexcept { return n_.fetch_add(1, std::memory_order_acq_rel); }
  /// Returns the count before exiting (1 = we were sole owner).
  int exit() noexcept { return n_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  Atomic<int> n_;
};

}  // namespace zz
