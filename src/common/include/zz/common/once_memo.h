// Publish-once slot state — the Absent → (one CAS winner) Building → Ready
// lifecycle of the farm's episode memo (src/farm/farm.cpp), extracted so
// the memo model suite explores the exact transitions the farm runs.
//
// Contract (pinned by the memo model suite): at most one caller ever wins
// try_begin_publish(), so the payload slot is written at most once; a
// reader that sees ready_acquire() observes the winner's completed payload
// (release publish ↔ acquire check); losers compute their own identical
// value locally and publish nothing. Ordering convention in
// docs/ANALYSIS.md §10 — the release on publish() is load-bearing: the
// suite's intentionally-broken relaxed-publish variant is caught by the
// explorer (a reader sees Ready but a stale payload).
#pragma once

#include "zz/common/atomic.h"

namespace zz {

class PublishOnceState {
 public:
  enum State : unsigned char { kAbsent = 0, kBuilding = 1, kReady = 2 };

  constexpr PublishOnceState() noexcept : s_(kAbsent) {}
  PublishOnceState(const PublishOnceState&) = delete;
  PublishOnceState& operator=(const PublishOnceState&) = delete;

  /// True once the payload is published; the acquire pairs with publish()
  /// so the payload read that follows sees the winner's writes.
  bool ready_acquire() const noexcept {
    return s_.load(std::memory_order_acquire) == kReady;
  }

  /// At most one caller over the slot's lifetime wins (Absent→Building).
  /// The winner must write the payload and then call publish(); losers
  /// must not touch the payload slot.
  bool try_begin_publish() noexcept {
    unsigned char expected = kAbsent;
    return s_.compare_exchange_strong(expected, kBuilding,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
  }

  /// Building→Ready. Release: everything the winner wrote to the payload
  /// happens-before any reader that passes ready_acquire().
  void publish() noexcept { s_.store(kReady, std::memory_order_release); }

 private:
  Atomic<unsigned char> s_;
};

}  // namespace zz
