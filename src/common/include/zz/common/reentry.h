// Re-entry guards — runtime enforcement of "not reentrant; give each
// thread its own instance" contracts that used to live in comments (e.g.
// the persistent-correlator state of phy::StandardReceiver::decode).
//
//   class Receiver {
//     mutable ReentryFlag busy_;
//     void decode(...) const {
//       ReentryScope guard(busy_, "StandardReceiver::decode");
//       ...
//     }
//   };
//
// The scope is ZZ_DCHECK-backed: with ZZ_ENABLE_DCHECKS defined (Debug and
// sanitizer builds) a second entry — recursive from the same thread or
// concurrent from another — aborts with the offending site named; in plain
// Release the guard compiles to nothing, so it can sit on hot decode paths
// without perturbing the drift-gated benches. The flag itself is a
// zz::AtomicFlag and always functional, so callers that want an always-on
// guard (or a test of the mechanism) can use try_enter()/leave() directly.
#pragma once

#include "zz/common/atomic.h"
#include "zz/common/check.h"

namespace zz {

/// One bit of "a caller is inside" state, on the façade's AtomicFlag
/// (acquire enter / release leave — the guard model suite pins mutual
/// exclusion of the acquired() region). Atomic so a concurrent second
/// entry is detected (not just recursion); cheap enough to be free on the
/// fast path.
class ReentryFlag {
 public:
  /// True when the flag was clear and is now held by this caller.
  bool try_enter() noexcept { return flag_.try_acquire(); }
  void leave() noexcept { flag_.release(); }
  bool busy() const noexcept {
    return flag_.held(std::memory_order_relaxed);
  }

 private:
  AtomicFlag flag_;
};

/// RAII contract scope: entering while another scope holds `flag` is a
/// fatal contract violation when DCHECKs are compiled in, a no-op
/// otherwise.
class ReentryScope {
 public:
  ReentryScope(ReentryFlag& flag, const char* what) noexcept : flag_(flag) {
#ifdef ZZ_ENABLE_DCHECKS
    ZZ_CHECK(flag_.try_enter())
        << " — " << what
        << " re-entered while a prior call is still active; the persistent "
           "scratch state is single-caller (give each thread its own "
           "instance)";
#else
    (void)what;
#endif
  }
  ~ReentryScope() {
#ifdef ZZ_ENABLE_DCHECKS
    flag_.leave();
#endif
  }
  ReentryScope(const ReentryScope&) = delete;
  ReentryScope& operator=(const ReentryScope&) = delete;

 private:
  [[maybe_unused]] ReentryFlag& flag_;
};

}  // namespace zz
