// Systematic interleaving explorer for the repo's lock-free protocols
// (docs/ANALYSIS.md §10).
//
// TSan (ci.sh --sanitize=tsan) only observes schedules that happen to run,
// and a 1-core container barely interleaves at all; the protocols the
// AP-farm scale-out leans on (work-stealing deque claims, the episode-memo
// Absent→Building→Ready publish, peak-gauge CAS, reentry/confinement
// guards) need their CONTRACT verified under all small interleavings, not
// a lucky schedule. This explorer runs a protocol body on 2-4 virtual
// threads, enumerates schedules at every zz::Atomic access (DPOR-lite:
// plain DFS with bounded preemption, plus an exhaustive mode for tiny
// protocols), simulates relaxed/acquire/release visibility with a
// per-location store-history + per-thread view model, and asserts
// user-supplied invariants on every explored schedule.
//
// Execution model
//   Virtual threads are real std::threads serialized by a baton: exactly
//   one runs at a time, parking at each façade access while the controller
//   replays a DFS choice stack. Real threads (not fibers) keep ASan/TSan
//   fully functional under the explorer — the sanitizer matrix runs these
//   suites as ordinary tests.
//
// Memory model (the "store buffer" simulation, view formulation)
//   Every modeled location keeps a timestamped store history; every
//   virtual thread keeps a per-location watermark view. A load may read
//   any of the last `store_history` stores at-or-above the thread's
//   watermark (the stale window — this is where relaxed bugs live); the
//   choice is a DFS decision like a context switch. A release store
//   attaches the storing thread's whole view to the store; an acquire
//   load that reads it joins that view (synchronizes-with). RMWs always
//   read the newest store (atomicity) and inherit the read store's
//   attached view (release sequences, C++20 rules: plain stores break the
//   sequence, RMWs continue it). seq_cst is approximated by a global view
//   all seq_cst accesses join both ways — stronger than C++ seq_cst, which
//   is fine because the zz-memory-order lint bans seq_cst outside the
//   documented convention table anyway. compare_exchange_weak never fails
//   spuriously in the model (retry loops make spurious failure
//   uninteresting: it only re-runs the loop).
//
// Limits (documented, deliberate): values must be trivially copyable and
// ≤ 8 bytes; protocol bodies must be deterministic given the schedule
// (divergent replay is a hard failure); bodies must not spawn real
// threads or block on real synchronization — model::Mutex is the blocking
// primitive the scheduler understands.
#pragma once

#include <cstdint>
#include <string>

namespace zz::model {

struct Options {
  /// Virtual threads the protocol body runs on (2-4 is the useful range;
  /// the schedule space is exponential in this).
  int threads = 2;
  /// Bounded-preemption DFS: a schedule may switch away from a runnable
  /// thread at most this many times (non-preemptive switches — the running
  /// thread blocked or finished — are always free). Negative = exhaustive.
  int max_preemptions = 2;
  /// Hard cap on explored schedules; hitting it sets Result::cap_hit
  /// rather than failing, so suites can assert exhaustiveness separately.
  std::uint64_t max_schedules = 100000;
  /// Per-schedule step guard: a protocol that exceeds this many scheduled
  /// ops in ONE schedule is livelocked (fails the exploration).
  int max_steps = 20000;
  /// How many trailing stores per location a load may still observe when
  /// its watermark allows (the stale window). 1 = sequentially consistent
  /// visibility; 2 is the default weak-memory window.
  int store_history = 2;
};

struct Result {
  std::uint64_t interleavings = 0;  ///< complete schedules executed
  std::uint64_t choice_points = 0;  ///< DFS decisions with arity > 1
  std::uint64_t ops = 0;            ///< modeled atomic/mutex ops (all runs)
  bool cap_hit = false;             ///< max_schedules stopped exploration
  bool failed = false;              ///< an invariant failed on some schedule
  std::string failure;              ///< message + offending schedule trace
};

namespace detail {

/// True while the calling thread is a controller or virtual thread of a
/// live exploration — the façade's routing test (zz/common/atomic.h).
bool exploring() noexcept;

/// True when `loc` was registered with the live exploration (constructed
/// inside it). Unregistered atomics — globals like the alloc-hook gauges —
/// fall through to their real std::atomic even during exploration.
bool registered(const void* loc) noexcept;

// Location registration from zz::Atomic's ctor/dtor. `width` is sizeof(T)
// so modeled RMW results wrap at the value type's width; register_loc is a
// no-op unless exploring().
void register_loc(void* loc, std::uint64_t initial, unsigned width);
void unregister_loc(void* loc) noexcept;

// Modeled operations. `order` is the std::memory_order value. All yield
// to the scheduler before executing; only call on registered locations.
std::uint64_t op_load(const void* loc, int order);
void op_store(void* loc, std::uint64_t v, int order);
std::uint64_t op_exchange(void* loc, std::uint64_t v, int order);
std::uint64_t op_fetch_add(void* loc, std::uint64_t delta, int order);
bool op_cas(void* loc, std::uint64_t& expected, std::uint64_t desired,
            int success_order, int failure_order);

/// Records an invariant violation on the current schedule and aborts the
/// schedule (throws Abort). [[noreturn]].
[[noreturn]] void fail(const char* expr, const char* msg, const char* file,
                       int line);

/// Unwind token thrown through protocol bodies when a schedule aborts
/// (assertion failure or exploration shutdown). Bodies must be exception
/// safe; the explorer catches it at the body boundary.
struct Abort {};

struct ExploreHooks {
  void* (*make)(void*);
  void (*run_thread)(void*, int);
  void (*finish)(void*);
  void (*destroy)(void*);
  void* ctx;
};

Result explore_impl(const Options& opt, const ExploreHooks& hooks);

}  // namespace detail

/// Blocking mutex the scheduler understands: lock() on a held mutex parks
/// the virtual thread until unlock (an all-blocked state is reported as a
/// deadlock failure). Acquire/release view propagation is built in, so
/// data guarded by the mutex may use relaxed accesses — exactly the
/// DecodeCache publish contract. Must be constructed inside an exploration.
class Mutex {
 public:
  Mutex();
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  void lock();
  void unlock();
};

/// Explore every schedule of `T`: per schedule the explorer constructs a
/// fresh T, runs T::thread(tid) on opt.threads virtual threads, then calls
/// T::finish() (controller context, newest-value visibility) for final
/// invariants. Assert inside bodies with ZZ_MODEL_ASSERT.
template <typename T>
Result explore(const Options& opt) {
  detail::ExploreHooks hooks{
      [](void*) -> void* { return static_cast<void*>(new T()); },
      [](void* p, int tid) { static_cast<T*>(p)->thread(tid); },
      [](void* p) { static_cast<T*>(p)->finish(); },
      [](void* p) { delete static_cast<T*>(p); }, nullptr};
  return detail::explore_impl(opt, hooks);
}

}  // namespace zz::model

/// Protocol invariant: when `cond` is false the current schedule is
/// recorded (message + full interleaving trace) as the exploration's
/// counterexample and exploration stops. Usable from thread bodies and
/// finish().
#define ZZ_MODEL_ASSERT(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) ::zz::model::detail::fail(#cond, msg, __FILE__, __LINE__); \
  } while (0)
