// The repo's five lock-free protocols expressed as model-check
// explorations (one per protocol, pinning its contract), shared between
// the gtest suites (tests/model/) and the CLI runner
// (tools/model/model_check_runner.cpp) so CI logs the interleaving counts
// the acceptance gate requires. Compiled only under ZZ_MODEL_CHECK — the
// explorations drive the exact production kernels (zz/common/
// steal_range.h, once_memo.h, atomic.h guards, farm/alloc_hook shapes)
// through the instrumented façade.
//
// `expect_failure` entries are intentionally-broken variants (relaxed
// publish, relaxed confinement counter): the explorer CATCHING them is the
// regression test that the memory model has teeth.
#pragma once

#include <vector>

#include "zz/common/model/explorer.h"

namespace zz::model {

struct ProtocolRun {
  const char* name;      ///< stable id, e.g. "memo-publish"
  const char* contract;  ///< one-line statement of the pinned invariant
  bool expect_failure;   ///< true for intentionally-broken variants
  Result result;
};

// The five protocols (all must pass: result.failed == false).
Result run_memo_publish();        ///< farm memo: PublishOnceState + payload
Result run_deque_steal();         ///< pool deque: pop/steal claim-once
Result run_ticket_generation();   ///< pool ticket: per-gen claim-once
Result run_cache_publish();       ///< DecodeCache first-writer-wins (Mutex)
Result run_peak_gauge();          ///< alloc_hook live/peak fetch_max
Result run_reentry_flag();        ///< AtomicFlagGuard mutual exclusion
Result run_confinement_handoff(); ///< EntryCounter serial hand-off (acq_rel)

// Broken variants the explorer must catch (result.failed == true).
Result run_memo_broken_relaxed_publish();
Result run_confinement_broken_relaxed();

/// Every exploration above, in a stable order, for the runner and the
/// suites' count gates.
std::vector<ProtocolRun> run_protocol_suite();

}  // namespace zz::model
