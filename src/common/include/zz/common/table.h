// Fixed-width console table printer used by the bench harness so each bench
// prints rows shaped like the paper's tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace zz {

/// Accumulates rows of string cells and prints them with aligned columns,
/// a header rule, and an optional title block.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);
  static std::string pct(double fraction, int precision = 1);

  /// Render to stdout.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zz
