#include "zz/common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <thread>
#include <vector>

#include "zz/common/mutex.h"
#include "zz/common/thread_annotations.h"

namespace zz {

std::uint64_t shard_seed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 finalizer over the combined state: uncorrelated streams for
  // neighbouring indices, stable across platforms.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct ThreadPool::Impl {
  Mutex mu;
  std::condition_variable work_cv;   ///< workers wait here for a batch
  std::condition_variable done_cv;   ///< parallel_for waits here for drain
  const std::function<void(std::size_t)>* fn ZZ_GUARDED_BY(mu) = nullptr;
  std::size_t batch_n ZZ_GUARDED_BY(mu) = 0;
  /// Claim ticket packing (generation << 32) | next_index. Claims go
  /// through a CAS that re-checks the generation, so a worker lingering
  /// from a drained batch can never claim (and silently consume) an index
  /// of the NEXT batch — it observes the bumped generation and exits.
  std::atomic<std::uint64_t> ticket{0};
  std::size_t in_flight ZZ_GUARDED_BY(mu) = 0;  ///< claimed, not finished
  std::uint32_t generation ZZ_GUARDED_BY(mu) = 0;
  bool stop ZZ_GUARDED_BY(mu) = false;
  std::exception_ptr error ZZ_GUARDED_BY(mu);
  /// Written by the constructor before any worker runs and joined by the
  /// destructor after all have exited — confined to the owning thread, so
  /// deliberately not guarded by mu.
  std::vector<std::thread> workers;

  void run_tasks(const std::function<void(std::size_t)>& f, std::size_t n,
                 std::uint32_t gen) ZZ_EXCLUDES(mu) {
    for (;;) {
      std::uint64_t t = ticket.load();
      if (static_cast<std::uint32_t>(t >> 32) != gen) break;  // superseded
      const auto i = static_cast<std::size_t>(t & 0xffffffffu);
      if (i >= n) break;
      if (!ticket.compare_exchange_weak(t, t + 1)) continue;
      try {
        f(i);
      } catch (...) {
        MutexLock lock(mu);
        if (!error) error = std::current_exception();
      }
      {
        MutexLock lock(mu);
        --in_flight;
        if (in_flight == 0) done_cv.notify_all();
      }
    }
  }

  void worker() ZZ_EXCLUDES(mu) {
    std::uint32_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* f;
      std::size_t n;
      std::uint32_t gen;
      {
        MutexLock lock(mu);
        // Explicit wait loop (not the predicate overload): the predicate
        // lambda would be a separate function the thread-safety analysis
        // cannot see holding mu. wait() re-acquires before returning, so
        // the guarded reads below stay under the capability.
        while (!stop && generation == seen) work_cv.wait(lock.native());
        if (stop) return;
        seen = generation;
        gen = generation;
        f = fn;
        n = batch_n;
      }
      if (f) run_tasks(*f, n, gen);
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc ? hc : 1;
  }
  size_ = threads;
  for (std::size_t t = 0; t + 1 < threads; ++t)
    impl_->workers.emplace_back([this] { impl_->worker(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (impl_->workers.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::uint32_t gen;
  {
    MutexLock lock(impl_->mu);
    impl_->fn = &fn;
    impl_->batch_n = n;
    impl_->in_flight = n;
    impl_->error = nullptr;
    gen = ++impl_->generation;
    impl_->ticket.store(static_cast<std::uint64_t>(gen) << 32);
  }
  impl_->work_cv.notify_all();
  impl_->run_tasks(fn, n, gen);  // the caller helps drain the batch
  {
    MutexLock lock(impl_->mu);
    while (impl_->in_flight != 0) impl_->done_cv.wait(lock.native());
    impl_->fn = nullptr;
    if (impl_->error) std::rethrow_exception(impl_->error);
  }
}

void ThreadPool::parallel_for_sharded(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (impl_->workers.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  // One deque per worker, as a packed [lo, hi) range over the contiguous
  // block partition of [0, n). All transitions are CASes on the packed
  // value, so owner pops (lo+1), thief back-half steals (hi→mid) and
  // re-installs of stolen ranges into an emptied queue can interleave
  // freely without ever double-claiming an index.
  const std::size_t q = std::min(size_, n);
  const auto pack = [](std::uint64_t lo, std::uint64_t hi) {
    return (lo << 32) | hi;
  };
  std::vector<std::atomic<std::uint64_t>> queues(q);
  for (std::size_t k = 0; k < q; ++k)
    queues[k].store(pack(k * n / q, (k + 1) * n / q));

  parallel_for(q, [&](std::size_t k) {
    for (;;) {
      // Drain the own queue front-to-back.
      for (;;) {
        std::uint64_t cur = queues[k].load();
        const std::uint64_t lo = cur >> 32, hi = cur & 0xffffffffu;
        if (lo >= hi) break;
        if (!queues[k].compare_exchange_weak(cur, pack(lo + 1, hi))) continue;
        fn(static_cast<std::size_t>(lo), k);
      }
      // Out of work: steal from the largest remaining queue. Take the
      // back half so the victim keeps its cache-warm front, and park the
      // loot in the (empty) own queue — other thieves may in turn steal
      // from it, which is the point of installing rather than looping.
      std::size_t victim = q;
      std::uint64_t best = 0;
      for (std::size_t v = 0; v < q; ++v) {
        if (v == k) continue;
        const std::uint64_t cur = queues[v].load();
        const std::uint64_t rem = (cur & 0xffffffffu) - (cur >> 32);
        if ((cur >> 32) < (cur & 0xffffffffu) && rem > best) {
          best = rem;
          victim = v;
        }
      }
      if (victim == q) return;  // every queue drained or in-flight
      std::uint64_t cur = queues[victim].load();
      const std::uint64_t lo = cur >> 32, hi = cur & 0xffffffffu;
      if (lo >= hi) continue;  // raced empty; rescan
      if (hi - lo == 1) {
        // A single index: claim and run it directly.
        if (queues[victim].compare_exchange_weak(cur, pack(lo + 1, hi)))
          fn(static_cast<std::size_t>(lo), k);
        continue;
      }
      const std::uint64_t mid = lo + (hi - lo + 1) / 2;
      if (!queues[victim].compare_exchange_weak(cur, pack(lo, mid)))
        continue;  // lost the race; rescan
      queues[k].store(pack(mid, hi));
    }
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace zz
