#include "zz/common/thread_pool.h"

#include <condition_variable>
#include <exception>
#include <thread>
#include <vector>

#include "zz/common/atomic.h"
#include "zz/common/mutex.h"
#include "zz/common/steal_range.h"
#include "zz/common/thread_annotations.h"

namespace zz {

std::uint64_t shard_seed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 finalizer over the combined state: uncorrelated streams for
  // neighbouring indices, stable across platforms.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct ThreadPool::Impl {
  Mutex mu;
  std::condition_variable work_cv;   ///< workers wait here for a batch
  std::condition_variable done_cv;   ///< parallel_for waits here for drain
  const std::function<void(std::size_t)>* fn ZZ_GUARDED_BY(mu) = nullptr;
  std::size_t batch_n ZZ_GUARDED_BY(mu) = 0;
  /// Claim ticket packing (generation << 32) | next_index; the claim
  /// protocol itself lives in zz/common/steal_range.h (ticket_claim) so
  /// the model-check suite explores the same transitions. The CAS
  /// re-checks the generation, so a worker lingering from a drained batch
  /// can never claim (and silently consume) an index of the NEXT batch —
  /// it observes the bumped generation and exits.
  Atomic<std::uint64_t> ticket{0};
  std::size_t in_flight ZZ_GUARDED_BY(mu) = 0;  ///< claimed, not finished
  std::uint32_t generation ZZ_GUARDED_BY(mu) = 0;
  bool stop ZZ_GUARDED_BY(mu) = false;
  std::exception_ptr error ZZ_GUARDED_BY(mu);
  /// Written by the constructor before any worker runs and joined by the
  /// destructor after all have exited — confined to the owning thread, so
  /// deliberately not guarded by mu.
  std::vector<std::thread> workers;

  void run_tasks(const std::function<void(std::size_t)>& f, std::size_t n,
                 std::uint32_t gen) ZZ_EXCLUDES(mu) {
    for (;;) {
      std::size_t i;
      const TicketOutcome claim = ticket_claim(ticket, gen, n, &i);
      if (claim == TicketOutcome::kSuperseded ||
          claim == TicketOutcome::kExhausted)
        break;
      if (claim == TicketOutcome::kRaced) continue;
      try {
        f(i);
      } catch (...) {
        MutexLock lock(mu);
        if (!error) error = std::current_exception();
      }
      {
        MutexLock lock(mu);
        --in_flight;
        if (in_flight == 0) done_cv.notify_all();
      }
    }
  }

  void worker() ZZ_EXCLUDES(mu) {
    std::uint32_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* f;
      std::size_t n;
      std::uint32_t gen;
      {
        MutexLock lock(mu);
        // Explicit wait loop (not the predicate overload): the predicate
        // lambda would be a separate function the thread-safety analysis
        // cannot see holding mu. wait() re-acquires before returning, so
        // the guarded reads below stay under the capability.
        while (!stop && generation == seen) work_cv.wait(lock.native());
        if (stop) return;
        seen = generation;
        gen = generation;
        f = fn;
        n = batch_n;
      }
      if (f) run_tasks(*f, n, gen);
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc ? hc : 1;
  }
  size_ = threads;
  for (std::size_t t = 0; t + 1 < threads; ++t)
    impl_->workers.emplace_back([this] { impl_->worker(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (impl_->workers.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::uint32_t gen;
  {
    MutexLock lock(impl_->mu);
    impl_->fn = &fn;
    impl_->batch_n = n;
    impl_->in_flight = n;
    impl_->error = nullptr;
    gen = ++impl_->generation;
    // Release pairs with the claimers' acquire load in ticket_claim; the
    // batch parameters themselves are published by mu.
    impl_->ticket.store(static_cast<std::uint64_t>(gen) << 32,
                        std::memory_order_release);
  }
  impl_->work_cv.notify_all();
  impl_->run_tasks(fn, n, gen);  // the caller helps drain the batch
  {
    MutexLock lock(impl_->mu);
    while (impl_->in_flight != 0) impl_->done_cv.wait(lock.native());
    impl_->fn = nullptr;
    if (impl_->error) std::rethrow_exception(impl_->error);
  }
}

void ThreadPool::parallel_for_sharded(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (impl_->workers.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  // One deque per worker, as a packed [lo, hi) range over the contiguous
  // block partition of [0, n). The pop/steal/install transitions live in
  // zz/common/steal_range.h (where the model-check suite explores them):
  // every transition is a CAS on the packed value, so owner pops, thief
  // back-half steals and re-installs of stolen ranges into an emptied
  // queue can interleave freely without ever double-claiming an index.
  const std::size_t q = std::min(size_, n);
  std::vector<Atomic<std::uint64_t>> queues(q);
  for (std::size_t k = 0; k < q; ++k)
    // The batch hand-off (pool mutex + ticket release) publishes the
    // initial partition to the workers.
    queues[k].store(RangeCell::pack(k * n / q, (k + 1) * n / q),
                    std::memory_order_relaxed);

  parallel_for(q, [&](std::size_t k) {
    for (;;) {
      // Drain the own queue front-to-back.
      for (;;) {
        std::size_t i;
        const PopOutcome pop = range_pop_front(queues[k], &i);
        if (pop == PopOutcome::kEmpty) break;
        if (pop == PopOutcome::kRaced) continue;
        fn(i, k);
      }
      // Out of work: steal from the largest remaining queue.
      std::size_t victim = q;
      std::uint64_t best = 0;
      for (std::size_t v = 0; v < q; ++v) {
        if (v == k) continue;
        const std::uint64_t cur = queues[v].load(std::memory_order_acquire);
        const std::uint64_t rem = RangeCell::hi(cur) - RangeCell::lo(cur);
        if (!RangeCell::empty(cur) && rem > best) {
          best = rem;
          victim = v;
        }
      }
      if (victim == q) return;  // every queue drained or in-flight
      std::size_t i;
      switch (range_steal_back(queues[victim], queues[k], &i)) {
        case StealOutcome::kStoleSingle:
          fn(i, k);
          break;
        case StealOutcome::kEmpty:   // raced empty; rescan
        case StealOutcome::kRaced:   // lost the race; rescan
        case StealOutcome::kInstalled:  // loot parked — resume popping
          break;
      }
    }
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace zz
