// Global operator new/delete replacement backing zz/common/alloc_hook.h.
//
// Linked (and therefore active) only in binaries that reference the hook's
// accessors — the static-library member rule: the linker pulls this TU in
// to resolve thread_alloc_counts(), and the replacement operators come
// with it, overriding the toolchain's. All variants forward to
// malloc/free, so sanitizer allocators keep interposing underneath.
#include "zz/common/alloc_hook.h"

#include <cstdlib>
#include <new>

#include "zz/common/atomic.h"

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_usable_size
#endif

namespace zz {
namespace {

// Plain PODs: zero-initialized before any allocation can happen on the
// thread, no destructor ordering hazards at thread exit.
thread_local AllocCounts tls_counts;

// Constant-initialized (constexpr ctor), so allocations from other TUs'
// dynamic initializers are counted correctly — no init-order hazard.
Atomic<std::int64_t> g_live{0};
Atomic<std::int64_t> g_peak{0};

std::size_t usable(void* p, std::size_t requested) {
#if defined(__GLIBC__)
  (void)requested;
  return malloc_usable_size(p);
#else
  (void)p;
  return requested;
#endif
}

void note_alloc(void* p, std::size_t requested) {
  const std::size_t n = usable(p, requested);
  ++tls_counts.allocs;
  tls_counts.alloc_bytes += n;
  const std::int64_t live =
      g_live.fetch_add(static_cast<std::int64_t>(n),
                       std::memory_order_relaxed) +
      static_cast<std::int64_t>(n);
  // Relaxed is enough for a gauge: the RMW loop inside fetch_max never
  // loses a larger concurrent maximum (pinned by the peak model suite).
  fetch_max(g_peak, live, std::memory_order_relaxed);
}

void note_free(void* p) {
  if (!p) return;
  ++tls_counts.frees;
  g_live.fetch_sub(static_cast<std::int64_t>(usable(p, 0)),
                   std::memory_order_relaxed);
}

void* checked_alloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (!p) throw std::bad_alloc();
  note_alloc(p, size);
  return p;
}

void* checked_alloc_aligned(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded);
  if (!p) throw std::bad_alloc();
  note_alloc(p, padded);
  return p;
}

}  // namespace

AllocCounts thread_alloc_counts() { return tls_counts; }

std::int64_t live_heap_bytes() { return g_live.load(std::memory_order_relaxed); }
std::int64_t peak_heap_bytes() { return g_peak.load(std::memory_order_relaxed); }

}  // namespace zz

// ------------------------------------------------ replacement operators

void* operator new(std::size_t size) { return zz::checked_alloc(size); }
void* operator new[](std::size_t size) { return zz::checked_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return zz::checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return zz::checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return zz::checked_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return zz::checked_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return zz::checked_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return zz::checked_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  zz::note_free(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  zz::note_free(p);
  std::free(p);
}
