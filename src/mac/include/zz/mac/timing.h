// 802.11 MAC timing: slots, interframe spaces, binary exponential backoff,
// and the synchronous-ACK feasibility analysis of §4.4 / Lemma 4.4.1.
#pragma once

#include <cstdint>

#include "zz/common/rng.h"

namespace zz::mac {

/// Timing constants. Defaults are the backward-compatible 802.11g values
/// used in Appendix A: slot 20 µs, SIFS 10 µs, ACK 30 µs, CWmin 31,
/// CWmax 1023.
struct DcfTiming {
  double slot_us = 20.0;
  double sifs_us = 10.0;
  double difs_us = 50.0;
  double ack_us = 30.0;
  int cw_min = 31;
  int cw_max = 1023;
  int retry_limit = 7;

  /// Congestion window after `retries` consecutive failures (binary
  /// exponential backoff, §4.5 footnote).
  int cw_after(int retries) const;
};

/// Lemma 4.4.1's analytic lower bound on the probability that the offset
/// between two colliding packets suffices to send a synchronous ACK:
///   P >= 1 - (SIFS + ACK) / (S · 2·CW).
double ack_offset_probability_bound(const DcfTiming& t = {});

/// Monte-Carlo estimate of the same probability: both colliding senders
/// draw a slot uniformly in [0, 2·CW] for the retransmission; the ACK fits
/// when their offset exceeds SIFS + ACK.
double ack_offset_probability_mc(Rng& rng, std::size_t trials = 200000,
                                 const DcfTiming& t = {});

}  // namespace zz::mac
