// Slotted-ALOHA MAC timing — the access scheme of the "Enhanced Slotted
// Aloha by ZigZag Decoding" variant (arXiv:1501.00976).
//
// Time is divided into packet-sized slots. Every backlogged sender
// transmits in a slot with probability p, aligned to the slot boundary up
// to a synchronisation error. Colliding packets are retransmitted (with the
// same per-slot probability) until delivered or the retry limit drops them.
// The per-slot sync error is what feeds the zigzag decoder: two collisions
// of the same packet pair land at different residual offsets, giving the
// chunk structure §4.3 needs.
#pragma once

#include <cstddef>

#include "zz/common/rng.h"

namespace zz::mac {

struct SlottedTiming {
  /// Per-slot transmission probability of a backlogged sender.
  /// 0 = "auto": the throughput-optimal 1/n for n backlogged senders.
  double tx_prob = 0.0;
  /// Maximum slot-boundary synchronisation error, in samples. Uniform per
  /// transmission; retransmissions re-draw it.
  std::size_t sync_jitter = 96;
  /// Consecutive failed slots before a packet is dropped.
  int retry_limit = 7;

  /// The probability actually used for `backlogged` contending senders.
  double effective_tx_prob(std::size_t backlogged) const;
  /// Draw this transmission's slot-boundary offset (samples).
  std::ptrdiff_t draw_sync_offset(Rng& rng) const;
  /// Does a backlogged sender transmit this slot?
  bool draw_transmit(Rng& rng, std::size_t backlogged) const;
};

}  // namespace zz::mac
