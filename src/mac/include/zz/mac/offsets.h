// Slot-offset Monte Carlo for Fig 4-7: how often can the §4.5 greedy
// algorithm decode n senders' repeated collisions?
//
// Every node picks a random backoff slot before each (re)transmission, so
// each collision combines the same packets at fresh offsets. The greedy
// chunk scheduler succeeds unless the offset patterns are degenerate
// (Assertion 4.5.1); this module measures that failure probability.
#pragma once

#include <cstddef>

#include "zz/common/rng.h"
#include "zz/mac/timing.h"

namespace zz::mac {

struct OffsetSimConfig {
  std::size_t packet_symbols = 120;  ///< abstract packet length
  std::size_t slot_symbols = 10;     ///< 20 µs slot at 500 kb/s BPSK
  bool exponential_backoff = false;  ///< Fig 4-7(b) vs fixed cw (a)
  int cw = 31;                       ///< fixed congestion window for (a)
  DcfTiming timing{};                ///< BEB parameters for (b)
};

/// Probability that the greedy algorithm FAILS to decode `nodes` colliding
/// senders given `nodes` successive collisions, over `trials` draws.
double greedy_failure_probability(Rng& rng, std::size_t nodes,
                                  std::size_t trials,
                                  const OffsetSimConfig& cfg = {});

}  // namespace zz::mac
