#include "zz/mac/slotted.h"

#include <algorithm>

namespace zz::mac {

double SlottedTiming::effective_tx_prob(std::size_t backlogged) const {
  if (tx_prob > 0.0) return std::min(tx_prob, 1.0);
  // Slotted ALOHA's throughput-optimal attempt rate: one expected
  // transmission per slot across the backlog.
  return 1.0 / static_cast<double>(std::max<std::size_t>(backlogged, 1));
}

std::ptrdiff_t SlottedTiming::draw_sync_offset(Rng& rng) const {
  if (sync_jitter == 0) return 0;
  return rng.uniform_int(0, static_cast<int>(sync_jitter));
}

bool SlottedTiming::draw_transmit(Rng& rng, std::size_t backlogged) const {
  return rng.chance(effective_tx_prob(backlogged));
}

}  // namespace zz::mac
