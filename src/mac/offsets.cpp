#include "zz/mac/offsets.h"

#include <algorithm>

#include "zz/zigzag/scheduler.h"

namespace zz::mac {

double greedy_failure_probability(Rng& rng, std::size_t nodes,
                                  std::size_t trials,
                                  const OffsetSimConfig& cfg) {
  std::size_t failures = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    zigzag::Pattern pattern;
    pattern.lengths.assign(nodes, cfg.packet_symbols);
    // One collision per (re)transmission round; n unknowns need n equations.
    for (std::size_t round = 0; round < nodes; ++round) {
      const int cw = cfg.exponential_backoff
                         ? cfg.timing.cw_after(static_cast<int>(round))
                         : cfg.cw;
      std::vector<zigzag::Pattern::Placement> coll(nodes);
      std::ptrdiff_t min_off = 0;
      for (std::size_t i = 0; i < nodes; ++i) {
        const auto slot = rng.uniform_int(0, cw);
        coll[i] = {i, static_cast<std::ptrdiff_t>(slot) *
                          static_cast<std::ptrdiff_t>(cfg.slot_symbols)};
        min_off = i == 0 ? coll[i].offset : std::min(min_off, coll[i].offset);
      }
      // The earliest transmission defines time zero for the collision.
      for (auto& pl : coll) pl.offset -= min_off;
      pattern.collisions.push_back(std::move(coll));
    }
    if (!zigzag::greedy_schedule(pattern).complete) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

}  // namespace zz::mac
