#include "zz/mac/timing.h"

#include <algorithm>
#include <cmath>

namespace zz::mac {

int DcfTiming::cw_after(int retries) const {
  long long cw = cw_min;
  for (int i = 0; i < retries; ++i) cw = std::min<long long>(2 * cw + 1, cw_max);
  return static_cast<int>(cw);
}

double ack_offset_probability_bound(const DcfTiming& t) {
  // Appendix A: the retransmission slots are drawn from a window of size
  // 2·CW; Alice must avoid a stretch of ±(SIFS + ACK) around Bob's slot, so
  // the offset is too small with probability at most
  // 2·(SIFS + ACK) / (S · 2·CW). For 802.11g this gives P >= 0.9375.
  const double window = t.slot_us * 2.0 * (t.cw_min + 1);
  return 1.0 - 2.0 * (t.sifs_us + t.ack_us) / window;
}

double ack_offset_probability_mc(Rng& rng, std::size_t trials,
                                 const DcfTiming& t) {
  const int window_slots = 2 * (t.cw_min + 1);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto a = rng.uniform_int(0, window_slots - 1);
    const auto b = rng.uniform_int(0, window_slots - 1);
    const double offset_us = std::abs(static_cast<double>(a - b)) * t.slot_us;
    if (offset_us >= t.sifs_us + t.ack_us) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace zz::mac
