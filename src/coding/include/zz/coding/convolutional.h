// Convolutional coding — the paper's §6(a) future-work extension.
//
// "In practice, additional bit-level codes (like Convolutional codes ...)
//  are applied to increase the reliability of the packet. The performance
//  of ZigZag can be further enhanced by exploiting these bit-level codes."
//
// This module provides the 802.11a convolutional code (K = 7, rate 1/2,
// generators 133/171 octal) with hard- and soft-decision Viterbi decoding.
// Layered under ZigZag it turns the residual ~1e-3 uncoded bit errors of a
// decoded collision into clean packets — exactly the iteration the paper
// sketches.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/types.h"

namespace zz::coding {

/// K = 7, rate 1/2 convolutional code with the 802.11 generators.
class ConvolutionalCode {
 public:
  static constexpr int kConstraint = 7;
  static constexpr unsigned kG0 = 0155;  ///< 133 octal, MSB-first taps
  static constexpr unsigned kG1 = 0117;  ///< 171 octal reversed for LSB state

  /// Encode `data`, appending K-1 flush (tail) bits. Output length is
  /// 2 * (data.size() + 6).
  Bits encode(const Bits& data) const;

  /// Hard-decision Viterbi over the full trellis. `coded` must have even
  /// length; returns the data bits (tail stripped).
  Bits decode_hard(const Bits& coded) const;

  /// Soft-decision Viterbi. `llrs[i]` > 0 favours coded bit 0; magnitudes
  /// weigh branch metrics.
  Bits decode_soft(const std::vector<double>& llrs) const;

  /// Coded length for a given data length (tail included).
  static std::size_t coded_bits(std::size_t data_bits) {
    return 2 * (data_bits + kConstraint - 1);
  }

 private:
  Bits viterbi(const std::vector<double>& metric0) const;
};

}  // namespace zz::coding
