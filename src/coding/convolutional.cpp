#include "zz/coding/convolutional.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace zz::coding {
namespace {

constexpr int kStates = 1 << (ConvolutionalCode::kConstraint - 1);

// Parity of the masked state+input register.
inline unsigned parity(unsigned v) {
  v ^= v >> 16;
  v ^= v >> 8;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return v & 1u;
}

// Output pair for (state, input). Register layout: input is the MSB of the
// 7-bit window, state holds the previous 6 bits.
inline void branch_outputs(int state, unsigned input, unsigned& o0,
                           unsigned& o1) {
  const unsigned reg = (input << 6) | static_cast<unsigned>(state);
  o0 = parity(reg & ConvolutionalCode::kG0);
  o1 = parity(reg & ConvolutionalCode::kG1);
}

inline int next_state(int state, unsigned input) {
  return ((static_cast<unsigned>(state) >> 1) | (input << 5)) & (kStates - 1);
}

}  // namespace

Bits ConvolutionalCode::encode(const Bits& data) const {
  Bits padded = data;
  for (int i = 0; i < kConstraint - 1; ++i) padded.push_back(0);  // flush

  Bits out;
  out.reserve(2 * padded.size());
  int state = 0;
  for (const auto bit : padded) {
    unsigned o0, o1;
    branch_outputs(state, bit & 1u, o0, o1);
    out.push_back(static_cast<std::uint8_t>(o0));
    out.push_back(static_cast<std::uint8_t>(o1));
    state = next_state(state, bit & 1u);
  }
  return out;
}

Bits ConvolutionalCode::viterbi(const std::vector<double>& llr) const {
  if (llr.size() % 2 != 0)
    throw std::invalid_argument("viterbi: odd coded length");
  const std::size_t steps = llr.size() / 2;

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> metric(kStates, kNegInf), next(kStates, kNegInf);
  metric[0] = 0.0;  // encoder starts in state 0
  std::vector<std::vector<std::uint8_t>> decisions(
      steps, std::vector<std::uint8_t>(kStates, 0));

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next.begin(), next.end(), kNegInf);
    const double l0 = llr[2 * t];      // > 0 favours coded bit 0
    const double l1 = llr[2 * t + 1];
    for (int s = 0; s < kStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (unsigned input = 0; input < 2; ++input) {
        unsigned o0, o1;
        branch_outputs(s, input, o0, o1);
        const double m = metric[s] + (o0 ? -l0 : l0) + (o1 ? -l1 : l1);
        const int ns = next_state(s, input);
        if (m > next[ns]) {
          next[ns] = m;
          decisions[t][ns] =
              static_cast<std::uint8_t>((input << 6) | static_cast<unsigned>(s));
        }
      }
    }
    metric.swap(next);
  }

  // Terminated trellis: trace back from state 0.
  int state = 0;
  Bits reversed;
  reversed.reserve(steps);
  for (std::size_t t = steps; t > 0; --t) {
    const std::uint8_t d = decisions[t - 1][state];
    reversed.push_back(static_cast<std::uint8_t>((d >> 6) & 1u));
    state = d & (kStates - 1);
  }
  std::reverse(reversed.begin(), reversed.end());
  reversed.resize(steps - (kConstraint - 1));  // strip the tail
  return reversed;
}

Bits ConvolutionalCode::decode_hard(const Bits& coded) const {
  std::vector<double> llr(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    llr[i] = coded[i] ? -1.0 : 1.0;
  return viterbi(llr);
}

Bits ConvolutionalCode::decode_soft(const std::vector<double>& llrs) const {
  return viterbi(llrs);
}

}  // namespace zz::coding
