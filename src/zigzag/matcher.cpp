#include "zz/zigzag/matcher.h"

#include <algorithm>
#include <cmath>
#include <complex>

namespace zz::zigzag {

MatchScore match_same_packet(const CVec& rx1, std::ptrdiff_t start1,
                             const CVec& rx2, std::ptrdiff_t start2,
                             const MatchConfig& cfg) {
  MatchScore out;
  const std::ptrdiff_t s1 = start1 + static_cast<std::ptrdiff_t>(cfg.skip);
  const std::ptrdiff_t s2 = start2 + static_cast<std::ptrdiff_t>(cfg.skip);
  if (s1 < 0 || s2 < 0) return out;

  const std::size_t n1 = rx1.size() > static_cast<std::size_t>(s1)
                             ? rx1.size() - static_cast<std::size_t>(s1)
                             : 0;
  const std::size_t n2 = rx2.size() > static_cast<std::size_t>(s2)
                             ? rx2.size() - static_cast<std::size_t>(s2)
                             : 0;
  const std::size_t span = std::min(cfg.span, std::min(n1, n2));
  if (span < 64) return out;  // not enough overlap to judge

  cplx acc{0.0, 0.0};
  double e1 = 0.0, e2 = 0.0;
  for (std::size_t i = 0; i < span; ++i) {
    const cplx a = rx1[static_cast<std::size_t>(s1) + i];
    const cplx b = rx2[static_cast<std::size_t>(s2) + i];
    acc += a * std::conj(b);
    e1 += std::norm(a);
    e2 += std::norm(b);
  }
  if (e1 < 1e-12 || e2 < 1e-12) return out;
  out.score = std::abs(acc) / std::sqrt(e1 * e2);
  out.matched = out.score >= cfg.threshold;
  return out;
}

}  // namespace zz::zigzag
