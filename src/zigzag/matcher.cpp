#include "zz/zigzag/matcher.h"

#include <algorithm>
#include <cmath>
#include <complex>

namespace zz::zigzag {

MatchScore match_same_packet(const CVec& rx1, std::ptrdiff_t start1,
                             const CVec& rx2, std::ptrdiff_t start2,
                             const MatchConfig& cfg) {
  MatchScore out;
  const std::ptrdiff_t s1 = start1 + static_cast<std::ptrdiff_t>(cfg.skip);
  const std::ptrdiff_t s2 = start2 + static_cast<std::ptrdiff_t>(cfg.skip);
  if (s1 < 0 || s2 < 0) return out;

  const std::size_t n1 = rx1.size() > static_cast<std::size_t>(s1)
                             ? rx1.size() - static_cast<std::size_t>(s1)
                             : 0;
  const std::size_t n2 = rx2.size() > static_cast<std::size_t>(s2)
                             ? rx2.size() - static_cast<std::size_t>(s2)
                             : 0;
  const std::size_t span = std::min(cfg.span, std::min(n1, n2));
  if (span < 64) return out;  // not enough overlap to judge

  cplx acc{0.0, 0.0};
  double e1 = 0.0, e2 = 0.0;
  for (std::size_t i = 0; i < span; ++i) {
    const cplx a = rx1[static_cast<std::size_t>(s1) + i];
    const cplx b = rx2[static_cast<std::size_t>(s2) + i];
    acc += a * std::conj(b);
    e1 += std::norm(a);
    e2 += std::norm(b);
  }
  if (e1 < 1e-12 || e2 < 1e-12) return out;
  out.score = std::abs(acc) / std::sqrt(e1 * e2);
  out.matched = out.score >= cfg.threshold;
  return out;
}

PacketMatcher::PacketMatcher(MatchConfig cfg) : cfg_(cfg) {}

bool PacketMatcher::prepare(const CVec& rx2, std::ptrdiff_t start2) {
  prepared_ = false;
  const std::ptrdiff_t s2 = start2 + static_cast<std::ptrdiff_t>(cfg_.skip);
  if (s2 < 0 || static_cast<std::size_t>(s2) >= rx2.size()) return false;
  const std::size_t avail2 = rx2.size() - static_cast<std::size_t>(s2);
  span_ = std::min(cfg_.span, avail2);
  if (span_ < 64) return false;  // match_same_packet's minimum-overlap rule

  const auto slack = static_cast<std::ptrdiff_t>(cfg_.slack);
  const std::ptrdiff_t w0 = std::max<std::ptrdiff_t>(0, s2 - slack);
  const std::ptrdiff_t w1 =
      std::min(static_cast<std::ptrdiff_t>(rx2.size()),
               s2 + static_cast<std::ptrdiff_t>(span_) + slack);
  stream_.assign(rx2.begin() + w0, rx2.begin() + w1);
  base_ = s2 - w0;
  if (stream_.size() < span_) return false;

  if (!corr_ || corr_->reference().size() != span_)
    corr_.emplace(CVec(span_, cplx{0.0, 0.0}));
  corr_->prepare(stream_);

  energy_.assign(stream_.size() + 1, 0.0);
  for (std::size_t i = 0; i < stream_.size(); ++i)
    energy_[i + 1] = energy_[i] + std::norm(stream_[i]);
  prepared_ = true;
  return true;
}

MatchScore PacketMatcher::score(const CVec& rx1, std::ptrdiff_t start1) {
  MatchScore out;
  if (!prepared_) return out;
  const std::ptrdiff_t s1 = start1 + static_cast<std::ptrdiff_t>(cfg_.skip);
  if (s1 < 0 || static_cast<std::size_t>(s1) >= rx1.size()) return out;
  const std::size_t n1 = rx1.size() - static_cast<std::size_t>(s1);
  const std::size_t len = std::min(span_, n1);
  if (len < 64) return out;

  // Zero-padded reference: missing tail samples contribute nothing to Γ,
  // exactly like the reference loop's truncation to min(n1, n2).
  ref_.assign(span_, cplx{0.0, 0.0});
  double e1 = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    ref_[i] = rx1[static_cast<std::size_t>(s1) + i];
    e1 += std::norm(ref_[i]);
  }
  if (e1 < 1e-12) return out;

  corr_->set_reference(ref_);
  corr_->correlate(0.0, gamma_);

  double best = -1.0;
  std::ptrdiff_t best_d = -1;
  for (std::size_t d = 0; d < gamma_.size(); ++d) {
    if (d + len > stream_.size()) break;
    const double e2 = energy_[d + len] - energy_[d];
    if (e2 < 1e-12) continue;
    const double s = std::abs(gamma_[d]) / std::sqrt(e1 * e2);
    if (s > best) {
      best = s;
      best_d = static_cast<std::ptrdiff_t>(d);
    }
  }
  if (best_d < 0) return out;
  out.score = best;
  out.matched = best >= cfg_.threshold;
  out.lag = best_d - base_;
  return out;
}

MatchScore PacketMatcher::match(const CVec& rx1, std::ptrdiff_t start1,
                                const CVec& rx2, std::ptrdiff_t start2) {
  if (!prepare(rx2, start2)) return {};
  return score(rx1, start1);
}

}  // namespace zz::zigzag
