#include "zz/zigzag/receiver.h"

#include <algorithm>

#include "zz/chan/channel.h"

namespace zz::zigzag {
namespace {

CollisionInput make_input(const CVec& samples,
                          const std::vector<Detection>& dets,
                          const std::vector<std::size_t>& packet_ids,
                          bool is_retx) {
  CollisionInput in;
  in.samples = &samples;
  in.is_retransmission = is_retx;
  for (std::size_t i = 0; i < dets.size(); ++i)
    in.placements.push_back({packet_ids[i], dets[i]});
  return in;
}

}  // namespace

ZigZagReceiver::ZigZagReceiver(ReceiverOptions opt) : opt_(std::move(opt)) {}

void ZigZagReceiver::add_client(const phy::SenderProfile& profile) {
  clients_.push_back(profile);
}

bool ZigZagReceiver::fresh(const phy::FrameHeader& h) {
  return delivered_keys_.insert({h.sender_id, h.seq}).second;
}

std::vector<Delivered> ZigZagReceiver::try_single(
    const CVec& rx, const std::vector<Detection>& dets) {
  // A single reception handed to the general decoder covers the standard
  // no-collision decode, the capture effect (Fig 4-1d), and single-collision
  // interference cancellation (Fig 4-1e) in one code path.
  DecodeOptions fast = opt_.decode;
  fast.max_stall_breaks = opt_.single_shot_stall_breaks;
  fast.backward_pass = false;
  fast.refinement_passes = std::min(opt_.decode.refinement_passes, 1);
  const ZigZagDecoder dec(fast, opt_.rx);

  std::vector<std::size_t> ids(dets.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const CollisionInput in = make_input(rx, dets, ids, false);
  const auto res = dec.decode({&in, 1}, clients_, dets.size());

  std::vector<Delivered> out;
  for (const auto& p : res.packets) {
    if (!p.crc_ok || !fresh(p.header)) continue;
    out.push_back({p.header, p.payload, p.air_bits, true, false,
                   dets.size() > 1});
  }
  return out;
}

std::vector<Delivered> ZigZagReceiver::try_joint(
    const std::vector<const PendingCollision*>& olds, const CVec& rx,
    const std::vector<Detection>& dets, bool* matched) {
  *matched = false;

  // Register packets across all receptions, unifying copies by data
  // correlation (§4.2.2) against the reception where each packet was first
  // seen; unmatched detections become new packets.
  struct Anchor {
    const CVec* samples;
    std::ptrdiff_t origin;
  };
  std::vector<Anchor> registry;
  std::vector<CollisionInput> inputs;
  std::size_t matches = 0;

  auto place = [&](const CVec& samples, const std::vector<Detection>& ds,
                   bool is_retx) {
    std::vector<std::size_t> ids(ds.size());
    std::vector<bool> used(registry.size(), false);
    for (std::size_t j = 0; j < ds.size(); ++j) {
      double best = 0.0;
      int best_i = -1;
      for (std::size_t i = 0; i < registry.size(); ++i) {
        if (used[i]) continue;
        const auto score =
            match_same_packet(*registry[i].samples, registry[i].origin,
                              samples, ds[j].origin, opt_.match);
        if (score.matched && score.score > best) {
          best = score.score;
          best_i = static_cast<int>(i);
        }
      }
      if (best_i >= 0) {
        ids[j] = static_cast<std::size_t>(best_i);
        used[static_cast<std::size_t>(best_i)] = true;
        ++matches;
      } else {
        ids[j] = registry.size();
        registry.push_back({&samples, ds[j].origin});
        used.push_back(true);
      }
    }
    inputs.push_back(make_input(samples, ds, ids, is_retx));
  };

  for (const auto* old_coll : olds)
    place(old_coll->samples, old_coll->detections,
          old_coll != olds.front());
  place(rx, dets, true);

  if (matches == 0) return {};
  *matched = true;

  const ZigZagDecoder dec(opt_.decode, opt_.rx);
  const auto res = dec.decode({inputs.data(), inputs.size()}, clients_,
                              registry.size());

  std::vector<Delivered> out;
  for (const auto& p : res.packets) {
    if (!p.header_ok) continue;
    if (p.crc_ok && !fresh(p.header)) continue;
    out.push_back({p.header, p.payload, p.air_bits, p.crc_ok, true, false});
  }
  return out;
}

std::vector<Delivered> ZigZagReceiver::try_capture_second(
    const CVec& rx, const std::vector<Delivered>& got) {
  if (got.empty()) return {};
  const phy::StandardReceiver std_rx(opt_.rx);

  // Re-decode each delivered packet to recover its link estimate, re-encode
  // it through that estimate and cancel it out of the reception.
  CVec cleaned = rx;
  bool removed = false;
  for (const auto& d : got) {
    if (!d.crc_ok) continue;
    const phy::SenderProfile* prof = nullptr;
    for (const auto& c : clients_)
      if (c.id == d.header.sender_id) prof = &c;
    const auto pd = std_rx.decode(cleaned, prof);
    if (!pd.crc_ok) continue;
    const phy::TxFrame frame = phy::build_frame(pd.header, pd.payload);
    chan::add_signal(cleaned, pd.origin, frame.symbols, pd.est.params, -1.0);
    removed = true;
  }
  if (!removed) return {};

  // Anything still standing is a weaker packet the capture was hiding.
  const CollisionDetector detector(opt_.detector);
  const auto dets = detector.detect(cleaned, clients_);
  if (dets.empty()) return {};
  auto out = try_single(cleaned, dets);
  for (auto& d : out) d.via_sic = true;
  return out;
}

void ZigZagReceiver::remember(const CVec& rx, std::vector<Detection> dets) {
  pending_.push_back({rx, std::move(dets)});
  while (pending_.size() > opt_.max_pending) pending_.pop_front();
}

std::vector<Delivered> ZigZagReceiver::receive(const CVec& rx) {
  const CollisionDetector detector(opt_.detector);
  const auto dets = detector.detect(rx, clients_);
  if (dets.empty()) return {};

  // Standard decode / capture / single-collision cancellation first.
  auto out = try_single(rx, dets);
  if (!out.empty()) {
    // Capture check (§5.1d): subtract what was decoded and look again for
    // weaker packets hidden underneath.
    const auto extra = try_capture_second(rx, out);
    out.insert(out.end(), extra.begin(), extra.end());
  }
  const bool unresolved = out.size() < dets.size();
  if (!unresolved) return out;

  // Unresolved collision: look for matching earlier collisions (§4.2.2).
  // Try every stored reception as a pair partner; if a matched pair still
  // cannot be decoded (e.g. three-way collisions need a third equation,
  // §4.5), widen to the two most recent matching receptions.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    bool matched = false;
    auto joint_out = try_joint({&*it}, rx, dets, &matched);
    if (!matched) continue;
    const bool useful = std::any_of(
        joint_out.begin(), joint_out.end(),
        [](const Delivered& d) { return d.crc_ok || !d.air_bits.empty(); });
    if (useful) {
      out.insert(out.end(), joint_out.begin(), joint_out.end());
      pending_.erase(it);
      return out;
    }
    if (std::next(it) != pending_.end()) {
      bool matched3 = false;
      auto triple_out = try_joint({&*it, &*std::next(it)}, rx, dets, &matched3);
      const bool useful3 = std::any_of(
          triple_out.begin(), triple_out.end(),
          [](const Delivered& d) { return d.crc_ok || !d.air_bits.empty(); });
      if (matched3 && useful3) {
        out.insert(out.end(), triple_out.begin(), triple_out.end());
        pending_.erase(std::next(it));
        pending_.erase(it);
        return out;
      }
    }
    break;  // matched but undecodable (e.g. identical offsets): store below
  }

  remember(rx, dets);
  return out;
}

}  // namespace zz::zigzag
