#include "zz/zigzag/receiver.h"

#include <algorithm>
#include <cstdint>

#include "zz/chan/channel.h"

namespace zz::zigzag {
namespace {

CollisionInput make_input(const CVec& samples,
                          const std::vector<Detection>& dets,
                          const std::vector<std::size_t>& packet_ids,
                          bool is_retx) {
  CollisionInput in;
  in.samples = &samples;
  in.is_retransmission = is_retx;
  for (std::size_t i = 0; i < dets.size(); ++i)
    in.placements.push_back({packet_ids[i], dets[i]});
  return in;
}

}  // namespace

ReceiverOptions ReceiverOptions::for_clients(std::size_t n) {
  ReceiverOptions opt;
  opt.max_pending = std::max<std::size_t>(4, n + 1);
  opt.max_joint_receptions = std::max<std::size_t>(3, n);
  if (n > 2) {
    opt.decode.chunk_order = ChunkOrder::BestFirst;
    opt.strict_joint = true;
    // §4.2.2 at n-way overlap: |<s1,s2>|/√(E1·E2) of one client's copies
    // normalizes to ≈ p_c ≈ 1/n of each segment's energy, so the pair
    // threshold (0.30) sits inside the true-match distribution at n = 3
    // (measured q25 ≈ 0.30) while unrelated packets decorrelate to ≲ 0.12
    // over the 512-sample span. 0.6/n tracks the 1/n scaling with 2×
    // headroom above decorrelation noise.
    opt.match.threshold =
        std::min(opt.match.threshold, 0.6 / static_cast<double>(n));
    // n-way overlaps push many data excursions over β, and the
    // cons-ranked eviction under the pair cap (6) throws away faded true
    // starts — which no later stage can recover. Keep the detector's
    // measurement-sized cap and let the decoder-side phantom triage
    // (alias collapse, provenance gate) absorb the surplus.
    opt.detector.max_detections = 32;
  }
  return opt;
}

ZigZagReceiver::ZigZagReceiver(ReceiverOptions opt)
    : opt_(std::move(opt)), matcher_(opt_.match) {}

void ZigZagReceiver::add_client(const phy::SenderProfile& profile) {
  clients_.push_back(profile);
}

void ZigZagReceiver::add_clients(std::span<const phy::SenderProfile> profiles) {
  for (const auto& p : profiles) clients_.push_back(p);
}

bool ZigZagReceiver::fresh(const phy::FrameHeader& h) {
  return delivered_keys_.insert({h.sender_id, h.seq}).second;
}

std::vector<Delivered> ZigZagReceiver::try_single(
    const CVec& rx, const std::vector<Detection>& dets) {
  // A single reception handed to the general decoder covers the standard
  // no-collision decode, the capture effect (Fig 4-1d), and single-collision
  // interference cancellation (Fig 4-1e) in one code path.
  DecodeOptions fast = opt_.decode;
  fast.max_stall_breaks = opt_.single_shot_stall_breaks;
  fast.backward_pass = false;
  fast.refinement_passes = std::min(opt_.decode.refinement_passes, 1);
  const ZigZagDecoder dec(fast, opt_.rx);

  std::vector<std::size_t> ids(dets.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const CollisionInput in = make_input(rx, dets, ids, false);
  const auto res =
      dec.decode({&in, 1}, clients_, dets.size(), opt_.shared_cache,
                 opt_.arena);

  std::vector<Delivered> out;
  for (const auto& p : res.packets) {
    if (!p.crc_ok || !fresh(p.header)) continue;
    out.push_back({p.header, p.payload, p.air_bits, true, false,
                   dets.size() > 1});
  }
  return out;
}

std::vector<Delivered> ZigZagReceiver::try_joint(
    const std::vector<const PendingCollision*>& olds, const CVec& rx,
    const std::vector<Detection>& dets, bool* matched,
    std::size_t* unknowns) {
  *matched = false;
  *unknowns = 0;

  // Register packets across all receptions, unifying copies by data
  // correlation (§4.2.2) against the reception where each packet was first
  // seen; unmatched detections become new packets.
  struct Anchor {
    const CVec* samples;
    std::ptrdiff_t origin;
  };
  std::vector<Anchor> registry;
  std::vector<CollisionInput> inputs;
  std::size_t matches = 0;

  auto place = [&](const CVec& samples, const std::vector<Detection>& ds,
                   bool is_retx) {
    std::vector<std::size_t> ids(ds.size());
    std::vector<bool> used(registry.size(), false);
    for (std::size_t j = 0; j < ds.size(); ++j) {
      double best = 0.0;
      int best_i = -1;
      // One prepare() of this detection's comparison window serves every
      // registry candidate (§4.2.2 through the SlidingCorrelator engine).
      const bool window_ok = matcher_.prepare(samples, ds[j].origin);
      for (std::size_t i = 0; window_ok && i < registry.size(); ++i) {
        if (used[i]) continue;
        const auto score =
            matcher_.score(*registry[i].samples, registry[i].origin);
        if (score.matched && score.score > best) {
          best = score.score;
          best_i = static_cast<int>(i);
        }
      }
      if (best_i >= 0) {
        ids[j] = static_cast<std::size_t>(best_i);
        used[static_cast<std::size_t>(best_i)] = true;
        ++matches;
      } else {
        ids[j] = registry.size();
        registry.push_back({&samples, ds[j].origin});
        used.push_back(true);
      }
    }
    inputs.push_back(make_input(samples, ds, ids, is_retx));
  };

  for (const auto* old_coll : olds)
    place(old_coll->samples, old_coll->detections,
          old_coll != olds.front());
  place(rx, dets, true);

  if (matches == 0) return {};
  *matched = true;

  // Alias collapse (Assertion 4.5.1 in reverse). A phantom detection is a
  // data excursion riding a real packet, so its copies track that packet's
  // copies at one CONSTANT relative offset in every reception — exactly
  // the degenerate "same Δ in every collision" pattern §4.5 proves
  // unresolvable, because it is not a second transmitter at all. Collapse
  // any unknown pair locked at a constant offset across ≥2 receptions into
  // the earlier-origin one: the excursion correlates with data that only
  // exists AFTER the true start, so the earliest alias is the start. (Two
  // genuinely distinct packets stuck at one offset are unresolvable anyway
  // — §4.5 — so collapsing them loses nothing decodable.)
  if (opt_.strict_joint) {
    constexpr std::ptrdiff_t kNotPlaced = PTRDIFF_MIN;
    std::vector<std::vector<std::ptrdiff_t>> origin(
        registry.size(),
        std::vector<std::ptrdiff_t>(inputs.size(), kNotPlaced));
    for (std::size_t c = 0; c < inputs.size(); ++c)
      for (const auto& pl : inputs[c].placements)
        origin[pl.packet][c] = pl.detection.origin;

    std::vector<std::size_t> alias(registry.size());
    for (std::size_t i = 0; i < alias.size(); ++i) alias[i] = i;
    const auto root_of = [&](std::size_t i) {
      while (alias[i] != i) i = alias[i];
      return i;
    };
    for (std::size_t a = 0; a < registry.size(); ++a) {
      for (std::size_t b = a + 1; b < registry.size(); ++b) {
        std::ptrdiff_t lo = 0, hi = 0;
        std::size_t both = 0;
        for (std::size_t c = 0; c < inputs.size(); ++c) {
          if (origin[a][c] == kNotPlaced || origin[b][c] == kNotPlaced)
            continue;
          const std::ptrdiff_t d = origin[b][c] - origin[a][c];
          if (both == 0) lo = hi = d;
          lo = std::min(lo, d);
          hi = std::max(hi, d);
          ++both;
        }
        if (both < 2 || hi - lo > 2) continue;  // offsets move: distinct
        // Locked pair: fold the later-origin unknown into the earlier.
        const std::size_t ra = root_of(a), rb = root_of(b);
        if (ra == rb) continue;
        if (lo + hi >= 0)  // b starts after a: b is the excursion
          alias[rb] = ra;
        else
          alias[ra] = rb;
      }
    }
    bool any_alias = false;
    for (std::size_t i = 0; i < alias.size(); ++i)
      if (root_of(i) != i) any_alias = true;
    if (any_alias) {
      // Compact ids: aliased unknowns vanish, survivors renumber densely.
      std::vector<std::size_t> renum(registry.size());
      std::size_t next = 0;
      for (std::size_t i = 0; i < registry.size(); ++i)
        if (root_of(i) == i) renum[i] = next++;
      for (auto& in : inputs) {
        std::vector<CollisionInput::Placement> kept;
        // The root's own placement wins; an alias never substitutes for it
        // (its origin points into the packet's data, past the true start).
        for (const auto& pl : in.placements)
          if (root_of(pl.packet) == pl.packet) kept.push_back(pl);
        in.placements = std::move(kept);
        for (auto& pl : in.placements) pl.packet = renum[pl.packet];
      }
      std::vector<Anchor> survivors;
      for (std::size_t i = 0; i < registry.size(); ++i)
        if (root_of(i) == i) survivors.push_back(registry[i]);
      registry = std::move(survivors);
    }
  }
  // Decidability count (§4.5): only packets placed in two or more
  // receptions participate in the joint system — a singleton (one stray
  // detection that matched nothing) contributes no cross-reception
  // equation and cannot be separated by widening either, so it must not
  // make a solvable pair look underdetermined. The decoder still sees the
  // singleton's placement (its signal is real interference); it just does
  // not count against the equation budget.
  std::vector<std::size_t> copies(registry.size(), 0);
  for (const auto& in : inputs)
    for (const auto& pl : in.placements) ++copies[pl.packet];
  *unknowns = 0;
  for (const std::size_t c : copies)
    if (c >= 2) ++*unknowns;

  const ZigZagDecoder dec(opt_.decode, opt_.rx);
  const auto res = dec.decode(
      {inputs.data(), inputs.size()}, clients_, registry.size(),
      opt_.shared_cache ? opt_.shared_cache : &joint_cache_, opt_.arena);

  std::vector<Delivered> out;
  for (const auto& p : res.packets) {
    if (!p.header_ok) continue;
    if (p.crc_ok && !fresh(p.header)) continue;
    out.push_back({p.header, p.payload, p.air_bits, p.crc_ok, true, false});
  }
  return out;
}

std::vector<Delivered> ZigZagReceiver::try_capture_second(
    const CVec& rx, const std::vector<Delivered>& got) {
  if (got.empty()) return {};
  const phy::StandardReceiver std_rx(opt_.rx);

  // Re-decode each delivered packet to recover its link estimate, re-encode
  // it through that estimate and cancel it out of the reception.
  CVec cleaned = rx;
  bool removed = false;
  for (const auto& d : got) {
    if (!d.crc_ok) continue;
    const phy::SenderProfile* prof = nullptr;
    for (const auto& c : clients_)
      if (c.id == d.header.sender_id) prof = &c;
    const auto pd = std_rx.decode(cleaned, prof);
    if (!pd.crc_ok) continue;
    const phy::TxFrame frame = phy::build_frame(pd.header, pd.payload);
    chan::add_signal(cleaned, pd.origin, frame.symbols, pd.est.params, -1.0);
    removed = true;
  }
  if (!removed) return {};

  // Anything still standing is a weaker packet the capture was hiding.
  const CollisionDetector detector(opt_.detector);
  const auto dets = detector.detect(cleaned, clients_);
  if (dets.empty()) return {};
  auto out = try_single(cleaned, dets);
  for (auto& d : out) d.via_sic = true;
  return out;
}

void ZigZagReceiver::remember(const CVec& rx, std::vector<Detection> dets) {
  pending_.push_back({rx, std::move(dets)});
  while (pending_.size() > opt_.max_pending) pending_.pop_front();
}

std::vector<Delivered> ZigZagReceiver::receive(const CVec& rx) {
  // The internal memo is per-reception (bounds memory); an injected farm
  // cache persists across receptions by design — its owner bounds it.
  if (!opt_.shared_cache) joint_cache_.clear();
  const CollisionDetector detector(opt_.detector);
  const auto dets = detector.detect(rx, clients_);
  if (dets.empty()) return {};

  // Standard decode / capture / single-collision cancellation first.
  auto out = try_single(rx, dets);
  if (!out.empty()) {
    // Capture check (§5.1d): subtract what was decoded and look again for
    // weaker packets hidden underneath.
    const auto extra = try_capture_second(rx, out);
    out.insert(out.end(), extra.begin(), extra.end());
  }
  const bool unresolved = out.size() < dets.size();
  if (!unresolved) return out;

  // Unresolved collision: look for matching earlier collisions (§4.2.2).
  // Try every stored reception as a pair partner; if a matched pair still
  // cannot be decoded (n-way collisions need more equations, §4.5), widen
  // with consecutive stored receptions up to max_joint_receptions — two
  // receptions resolve a pair, n resolve n senders.
  const auto useful_fn = [](const std::vector<Delivered>& ds) {
    return std::any_of(ds.begin(), ds.end(), [](const Delivered& d) {
      return d.crc_ok || !d.air_bits.empty();
    });
  };
  // Accepting a joint result consumes the stored receptions under it, so
  // an *underdetermined* decode (§4.5: fewer receptions than distinct
  // packets — e.g. a pair attempt on a 3-way collision) must not be
  // accepted: its output is partial junk and accepting it destroys the
  // very equations the widening step needs. A joint attempt is decisive
  // when its equation count covers the (cross-reception) unknowns or
  // widening is already at its cap; otherwise the reception is stored and
  // the decode waits for more equations.
  const auto decisive = [&](std::size_t receptions, std::size_t unknowns) {
    if (!opt_.strict_joint) return true;  // historical greedy accept (pinned)
    return receptions >= unknowns || receptions >= opt_.max_joint_receptions;
  };
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    bool matched = false;
    std::size_t unknowns = 0;
    auto joint_out = try_joint({&pending_[i]}, rx, dets, &matched, &unknowns);
    if (!matched) continue;
    if (decisive(2, unknowns) && useful_fn(joint_out)) {
      out.insert(out.end(), joint_out.begin(), joint_out.end());
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      return out;
    }
    std::vector<const PendingCollision*> olds = {&pending_[i]};
    for (std::size_t j = i + 1;
         j < pending_.size() && olds.size() + 1 < opt_.max_joint_receptions;
         ++j) {
      olds.push_back(&pending_[j]);
      bool matched_n = false;
      std::size_t unknowns_n = 0;
      auto wide_out = try_joint(olds, rx, dets, &matched_n, &unknowns_n);
      if (matched_n && decisive(olds.size() + 1, unknowns_n) &&
          useful_fn(wide_out)) {
        out.insert(out.end(), wide_out.begin(), wide_out.end());
        for (std::size_t k = j + 1; k-- > i + 1;)  // erase back-to-front
          pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(k));
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return out;
      }
    }
    break;  // matched but not yet decodable: store below, wait for equations
  }

  remember(rx, dets);
  return out;
}

}  // namespace zz::zigzag
