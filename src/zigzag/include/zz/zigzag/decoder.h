// The ZigZag collision decoder — §4.2.3, §4.2.4 and §4.3 end to end.
//
// Given a set of receptions that contain (re)transmissions of the same
// packets at different offsets, the decoder:
//   1. bootstraps per-(packet, collision) channel estimates from the
//      preamble correlation peaks (§4.2.4a),
//   2. repeatedly finds a stretch of symbols whose residual interference is
//      low enough to decode (interference-free chunks, or capture when one
//      sender is much stronger — Fig 4-1 d/e),
//   3. decodes the stretch with the black-box ChunkDecoder,
//   4. re-encodes it through the estimated channel — ISI filter, sinc
//      interpolation at the sampling offset, gain and frequency-offset
//      rotation (§4.2.3b, §4.2.4d) — and subtracts the image from every
//      collision it appears in,
//   5. refines ĥ, δf̂ and μ̂ by projecting the image against the residual
//      (the chunk-1′ / chunk-1″ comparison of §4.2.4b,c), and
//   6. repeats until both packets are out; a backward pass and optional
//      refinement passes give each symbol two independent estimates that
//      are MRC-combined (§4.3b).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "zz/common/types.h"
#include "zz/phy/frame.h"
#include "zz/phy/receiver.h"
#include "zz/zigzag/detector.h"

namespace zz::sig {
class ScratchArena;
}

namespace zz::zigzag {

/// Memo of black-box chunk-decode results keyed by a bit-level fingerprint
/// of the exact decode inputs (view samples, window-relative origin, symbol
/// range, direction, symbol specs, link state, decoder configuration).
/// Callers that joint-decode several times over a growing equation set —
/// run_logged_joint's §4.5 extra-equation top-ups, the live receiver's
/// widening search — hand the same cache to every ZigZagDecoder::decode
/// call: chunks whose schedule did not change replay their inputs
/// bit-identically and skip the ChunkDecoder, so only chunks the new
/// equation actually perturbs are re-decoded. A hit requires the full
/// 128-bit fingerprint to match, so the decode output is bit-identical to
/// the from-scratch route by construction (test-enforced).
class DecodeCache {
 public:
  DecodeCache();
  ~DecodeCache();
  // Neither movable nor copyable: every accessor (and the decoder itself)
  // dereferences the pimpl unconditionally, so a moved-from cache would be
  // a null-deref landmine. Callers share caches by pointer.
  DecodeCache(DecodeCache&&) = delete;
  DecodeCache& operator=(DecodeCache&&) = delete;

  void clear();
  std::size_t size() const;    ///< stored chunk decodes
  std::size_t hits() const;    ///< lookups served from the cache
  std::size_t misses() const;  ///< lookups that ran the ChunkDecoder

 private:
  friend struct DecodeCacheAccess;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A fixed set of independent DecodeCaches, one per pool worker. The cache
/// itself is internally synchronized, so sharding is a contention (not a
/// correctness) tool: the AP-farm keys a shard by the stable worker id of
/// ThreadPool::parallel_for_sharded so steady-state lookups never contend
/// on one mutex, while warm replay within a worker still hits. Aggregate
/// accessors sum over shards (taking each shard's lock in turn — totals
/// are exact only at quiescence, which is when the gates read them).
class DecodeCacheShards {
 public:
  explicit DecodeCacheShards(std::size_t shards);

  std::size_t size() const { return shards_.size(); }
  DecodeCache& shard(std::size_t worker);
  const DecodeCache& shard(std::size_t worker) const;

  void clear();                   ///< clears every shard
  std::size_t entries() const;    ///< summed stored decodes
  std::size_t hits() const;       ///< summed cache hits
  std::size_t misses() const;     ///< summed cache misses

 private:
  std::vector<std::unique_ptr<DecodeCache>> shards_;
};

/// How a decode pass orders the interference-free chunks it finds.
enum class ChunkOrder {
  /// Walk the collisions in input order and decode every available run as
  /// it is encountered — the historical behavior, kept as the default so
  /// existing two-way pipelines reproduce bit-identical results.
  Input,
  /// Priority-driven: at each step decode the cleanest available chunk
  /// (lowest residual interference relative to own power) across all
  /// collisions. With 3+ overlapped packets this decodes high-SINR
  /// territory first, so subtraction errors propagate into fewer
  /// not-yet-decoded symbols — measurably fewer n-way decode failures.
  BestFirst,
};

/// Knobs for the decoder; the defaults reproduce the full ZigZag receiver.
/// The ablation flags correspond to the rows of Table 5.1.
struct DecodeOptions {
  phy::TrackingGains decoder_gains{};   ///< black-box decoder's own loops
  bool reconstruction_tracking = true;  ///< §4.2.4(b,c) image refinement
  bool isi_reconstruction = true;       ///< §4.2.4(d) inverse-ISI in images
  bool backward_pass = true;            ///< §4.3(b) backward decoding
  int refinement_passes = 1;            ///< post-pass clean re-decodes
  double capture_sinr_db = 10.0;        ///< SINR for capture decode (BPSK)
  std::size_t interp_half_width = 8;    ///< §4.2.3(b) sinc window, symbols
  int max_stall_breaks = 64;            ///< forced short chunks on stalls
  ChunkOrder chunk_order = ChunkOrder::Input;
};

/// One reception handed to the decoder, with the identified packet starts.
struct CollisionInput {
  const CVec* samples = nullptr;
  struct Placement {
    std::size_t packet = 0;  ///< global packet index for this decode call
    Detection detection;     ///< where it starts and with what channel
  };
  std::vector<Placement> placements;
  /// True if this reception is a retransmission of the matched packets —
  /// the 802.11 retry flag in re-encoded header images is set accordingly.
  bool is_retransmission = false;
};

/// Per-packet outcome.
struct PacketResult {
  bool header_ok = false;
  bool crc_ok = false;
  phy::FrameHeader header;
  Bits air_bits;   ///< decoded header ‖ body bits (for BER scoring)
  Bytes payload;   ///< descrambled payload (valid when crc_ok)
  CVec soft;       ///< MRC-combined symbol estimates (header ‖ body)
  std::size_t symbols_decoded = 0;
};

struct DecodeResult {
  std::vector<PacketResult> packets;
  std::size_t chunks = 0;        ///< chunk decodes performed
  std::size_t stall_breaks = 0;  ///< forced decodes past the guard
  bool all_crc_ok() const;
};

class ZigZagDecoder {
 public:
  explicit ZigZagDecoder(DecodeOptions opt = {},
                         phy::ReceiverConfig rxcfg = {});

  const DecodeOptions& options() const { return opt_; }

  /// Decode `num_packets` packets from the given collisions. Placements
  /// reference packets by index < num_packets; a packet may appear in any
  /// subset of the collisions (Fig 4-1 covers the shapes this handles).
  /// `cache`, when given, memoizes chunk decodes across calls (see
  /// DecodeCache) — results are bit-identical with or without it.
  /// `arena`, when given, supplies the engine's scratch buffers so their
  /// capacity survives across decode calls (the AP-farm hands each worker
  /// one arena reused for every episode, making steady-state decodes
  /// allocation-free). The arena is thread-confined and the engine uses
  /// fixed slot numbers, so one arena must never be inside two concurrent
  /// decode calls; sequential reuse — including across decoder instances —
  /// is the intended pattern. Results are bit-identical with or without it.
  DecodeResult decode(std::span<const CollisionInput> collisions,
                      std::span<const phy::SenderProfile> profiles,
                      std::size_t num_packets, DecodeCache* cache = nullptr,
                      sig::ScratchArena* arena = nullptr) const;

 private:
  DecodeOptions opt_;
  phy::ReceiverConfig rxcfg_;
};

}  // namespace zz::zigzag
