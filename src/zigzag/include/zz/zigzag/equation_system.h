// Collisions as a linear equation system over packet chunks — the
// "Collision Helps" view (arXiv:1001.1948) of the same geometry the §4.5
// greedy scheduler walks.
//
// Each logged collision is one linear equation over the packets it carries:
// partitioned at every packet start/end boundary, it becomes a set of
// *chunk equations*, each relating the symbol chunks that overlap one
// segment of the collision timeline. Recovery is then message passing on
// the bipartite chunk/equation graph:
//
//   * Peel: a degree-1 segment (one unknown chunk) is solved directly and
//     its value substituted — back-propagated — into every other equation.
//     ZigZag's chunk-by-chunk decode is exactly this peeling process.
//   * Eliminate: when peeling stalls, two equations whose unknown support
//     is the same packet pair at the SAME relative offset form a 2x2
//     linear system in the overlapped chunks; Gaussian elimination over the
//     (complex channel-gain) coefficients solves it. This is the step pure
//     zigzag lacks — Assertion 4.5.1 declares same-offset pairs
//     undecodable, while the algebraic receiver solves them whenever the
//     channel coefficients are linearly independent.
//
// Like zz/zigzag/scheduler.h this module is pure geometry: it plans, the
// waveform executor (zz/zigzag/algebraic_mp.h) carries the plan out on real
// samples. Equations are visited best-conditioned-first via
// order_equations, sharing the §4.5 conditioning helpers.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/zigzag/scheduler.h"

namespace zz::zigzag {

/// One packet's symbol range inside a chunk equation.
struct ChunkTerm {
  std::size_t packet = 0;
  std::size_t k0 = 0, k1 = 0;  ///< symbol range of `packet` in this segment
};

/// One segment of one collision's symbol timeline: the received samples over
/// [t0, t1) are a known linear combination of the listed packet chunks.
struct ChunkEquation {
  std::size_t collision = 0;
  std::ptrdiff_t t0 = 0, t1 = 0;  ///< collision symbol-time span
  std::vector<ChunkTerm> terms;
  std::size_t degree() const { return terms.size(); }
};

/// Partition every collision of `pattern` at packet start/end boundaries.
/// Segments with no packet (gaps) are dropped. Throws std::invalid_argument
/// on a placement referencing a missing packet.
///
/// This is the inspection/analysis view of the equation system ("what are
/// the equations, and of what degree?") — the static partition before any
/// solving. message_passing_plan below operates on the same Pattern
/// geometry directly, because peeling changes equation degrees as chunks
/// resolve and a static partition cannot express that evolution.
std::vector<ChunkEquation> chunk_equations(const Pattern& pattern);

/// One solve action of the message-passing plan.
struct MpStep {
  enum class Kind {
    Peel,      ///< decode symbols [k0,k1) of `packet` from `collision`
    Eliminate  ///< 2x2-eliminate `other_packet` between `collision` and
               ///< `other_collision`, solving [k0,k1) of `packet`
  };
  Kind kind = Kind::Peel;
  std::size_t collision = 0;
  std::size_t other_collision = 0;  ///< Eliminate only
  std::size_t packet = 0;           ///< the packet this step solves
  std::size_t other_packet = 0;     ///< Eliminate only: the cancelled packet
  std::size_t k0 = 0, k1 = 0;       ///< solved symbol range of `packet`
};

struct MpPlan {
  bool complete = false;             ///< every symbol of every packet solved
  std::vector<MpStep> steps;
  std::vector<std::size_t> unresolved_packets;  ///< ids with missing symbols
  std::size_t peels = 0;
  std::size_t eliminations = 0;
  std::size_t rounds = 0;            ///< message-passing iterations
};

/// Plan the message-passing solve of `pattern`. Equations are visited in
/// order_equations (best-conditioned-first) order; `guard` is the symbol
/// separation a peelable symbol needs from unknown symbols of other packets
/// (pulse tails — same meaning as greedy_schedule's guard). Elimination
/// steps are emitted only when a peel round makes no progress.
MpPlan message_passing_plan(const Pattern& pattern, std::size_t guard = 0);

}  // namespace zz::zigzag
