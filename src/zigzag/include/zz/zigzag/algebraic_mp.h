// "Collision Helps"-style algebraic collision recovery (arXiv:1001.1948) on
// this repo's waveforms.
//
// The decoder treats each logged collision as a linear equation over the
// colliding packets' symbol chunks and solves the n-packet system by
// message passing (zz/zigzag/equation_system.h): degree-1 chunk equations
// are demodulated directly and back-substituted into every other equation;
// when peeling stalls, two equations whose unknown support is the same
// packet pair at the same relative offset are 2x2 Gaussian-eliminated over
// their complex channel coefficients — the step that solves the
// equal-offset patterns Assertion 4.5.1 declares zigzag-undecodable.
//
// Deliberately NOT here: the §4.2.4 reconstruction-tracking machinery
// (image projection refinement, retro refinement, MRC over passes, the
// backward pass). The algebraic model assumes the equation coefficients
// are known once estimated; each chunk is demodulated once through the
// standard black-box decoder and substituted. The gap between this
// receiver and the full ZigZag decoder on the same logs is therefore
// exactly the value of §4.2.4/§4.3 — the comparison
// bench/baseline_comparison measures and gates.
#pragma once

#include <cstddef>
#include <span>

#include "zz/phy/receiver.h"
#include "zz/zigzag/decoder.h"

namespace zz::zigzag {

struct AlgebraicMpOptions {
  phy::TrackingGains decoder_gains{};  ///< black-box chunk decoder loops
  std::size_t interp_half_width = 8;
  /// Symbols of separation a peelable symbol needs from unknown symbols of
  /// other packets (pulse tails; forwarded to message_passing_plan).
  std::size_t guard = 2;
  /// Conditioning floor for a 2x2 elimination: |det| of the coefficient
  /// matrix relative to the magnitude of its cross products. Below it the
  /// per-symbol solve would amplify noise unboundedly and the symbol is
  /// skipped instead.
  double min_det_ratio = 0.15;
};

/// Offline joint decoder with the ZigZagDecoder::decode contract: same
/// CollisionInput geometry, same DecodeResult. `packet_syms` pins the
/// believed per-packet symbol count (the LoggedJoint engine knows it from
/// the frame layout); 0 infers an upper bound from buffer room exactly like
/// the zigzag decoder does.
class AlgebraicMpDecoder {
 public:
  explicit AlgebraicMpDecoder(AlgebraicMpOptions opt = {},
                              phy::ReceiverConfig rxcfg = {});

  const AlgebraicMpOptions& options() const { return opt_; }

  DecodeResult decode(std::span<const CollisionInput> collisions,
                      std::span<const phy::SenderProfile> profiles,
                      std::size_t num_packets,
                      std::size_t packet_syms = 0) const;

 private:
  AlgebraicMpOptions opt_;
  phy::ReceiverConfig rxcfg_;
};

}  // namespace zz::zigzag
