// The streaming ZigZag receiver — sample-in → packet-out (§4, ROADMAP
// "streaming receiver architecture").
//
// Every other receiver in this repo decodes a fully-logged buffer offline.
// StreamingReceiver is the incremental pipeline a real AP runs instead:
//
//   push(samples)
//     → sig::SampleRing            bounded retention, absolute positions
//     → phy::FrameSync             WAIT_PREAMBLE → WAIT_PAYLOAD →
//                                  JOINT_PENDING, silence-gap framing
//     → online preamble hints      one streaming SlidingCorrelator
//                                  (begin_stream/extend), every client
//                                  frequency hypothesis sharing its block
//                                  transforms, evaluated only over
//                                  finalized blocks so hints are identical
//                                  under any push() chunking
//     → window decode              as soon as the window's interference
//                                  extent is resolved (the silence hang),
//                                  the materialized window flows through
//                                  the unmodified ZigZagReceiver —
//                                  detector, matcher, chunk decoder and
//                                  DecodeCache included
//
// Because the materialized window is bit-identical to the buffer the
// offline route logs (FrameSync recovers reception boundaries exactly),
// the delivered packets are bit-identical to ZigZagReceiver::receive on
// the same receptions — at ANY chunking of the input stream. That is the
// gated contract; the online hints only drive the state machine and the
// latency accounting, never the decode.
//
// Work per push() is O(chunk + windows closed this push): each sample is
// ring-buffered once, framed once, hint-scanned once per client, and
// decoded once inside its window — nothing rescans history, so per-sample
// work is O(1) in stream length (StreamingStats::max_push_work pins it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "zz/common/reentry.h"
#include "zz/common/types.h"
#include "zz/phy/framer.h"
#include "zz/signal/correlate.h"
#include "zz/signal/ring.h"
#include "zz/zigzag/receiver.h"

namespace zz::zigzag {

struct StreamingOptions {
  /// The inner (offline-identical) receiver: detector, matcher, decoder,
  /// pending-collision store. Streaming adds no decode knobs of its own.
  ReceiverOptions receiver{};
  phy::FramerConfig framer{};
  /// Assumed noise floor for the online hint threshold (the authoritative
  /// per-window detection re-estimates its own floor offline; hints only
  /// need the right order of magnitude — the emulator's floor is 1.0).
  double hint_noise_floor = 1.0;
};

/// One packet out of the stream, with its decode timing: `decoded_at` is
/// the stream position at which the window's closure was decided and its
/// joint decode ran — long before end-of-log, which is the point.
struct StreamDelivered {
  Delivered packet;
  std::uint64_t window_begin = 0;  ///< window whose decode emitted this
  std::uint64_t window_end = 0;
  std::uint64_t decoded_at = 0;
};

struct StreamingStats {
  std::uint64_t samples_in = 0;
  std::uint64_t windows = 0;        ///< reception windows closed & decoded
  std::uint64_t joint_windows = 0;  ///< closed in JOINT_PENDING state
  std::uint64_t preamble_hints = 0; ///< online hints fed to the tracker
  std::size_t max_push_work = 0;    ///< peak samples touched by one push()
  std::size_t max_retained = 0;     ///< peak ring occupancy (samples)
};

class StreamingReceiver {
 public:
  explicit StreamingReceiver(StreamingOptions opt = {});

  /// Clients, mirrored into the inner receiver and the hint scanner.
  void add_client(const phy::SenderProfile& profile);
  void add_clients(std::span<const phy::SenderProfile> profiles);

  /// Feed stream samples. Returns every packet whose decode this chunk
  /// unlocked (windows it closed), in stream order.
  std::vector<StreamDelivered> push(const cplx* data, std::size_t count);
  std::vector<StreamDelivered> push(const CVec& samples) {
    return push(samples.data(), samples.size());
  }

  /// End of stream: close and decode the open window, if any.
  std::vector<StreamDelivered> finish();

  phy::SyncState state() const { return framer_.state(); }
  std::uint64_t position() const { return framer_.position(); }
  const StreamingStats& stats() const { return stats_; }
  std::size_t retained_samples() const { return ring_.size(); }
  std::size_t last_push_work() const { return last_work_; }
  std::size_t pending_collisions() const { return rx_.pending_collisions(); }

 private:
  /// Anchor the hint scanner at a window begin (no-op when already there).
  void ensure_scanner(std::uint64_t window_begin);
  /// Feed the scanner ring samples up to `upto` (absolute position).
  void feed_scanner(std::uint64_t upto);
  /// Evaluate hint alignments up to `limit` (scanner-relative).
  void scan_hints(std::size_t limit);
  void handle_closed(const phy::FrameWindow& w,
                     std::vector<StreamDelivered>& out);

  StreamingOptions opt_;
  ZigZagReceiver rx_;              ///< the unmodified offline engine
  sig::SampleRing ring_;
  phy::FrameSync framer_;
  sig::SlidingCorrelator scan_;    ///< streaming-mode hint correlator
  std::vector<double> hint_freqs_;       ///< per client: δf̂ hypothesis
  std::vector<double> hint_thresholds_;  ///< per client: |Γ'| threshold
  bool scanner_live_ = false;
  std::uint64_t scan_base_ = 0;    ///< absolute position of alignment 0
  std::uint64_t scan_fed_ = 0;     ///< absolute position fed so far
  std::size_t scan_next_ = 0;      ///< next alignment to evaluate
  std::uint64_t last_hint_ = 0;    ///< dedup guard (absolute position)
  bool any_hint_ = false;
  CVec scan_chunk_;                ///< scratch: ring → scanner copies
  CVec scan_corr_;                 ///< scratch: per-hypothesis Γ' range
  std::vector<double> scan_best_;  ///< scratch: best ratio per alignment
  CVec window_buf_;                ///< scratch: materialized window
  std::vector<phy::FrameWindow> windows_;  ///< scratch: closed this push
  StreamingStats stats_;
  std::size_t last_work_ = 0;
  ReentryFlag busy_;  ///< push()/finish() share persistent scratch state
};

}  // namespace zz::zigzag
