// "Is It a Collision?" — §4.2.1.
//
// The AP slides the known preamble over the received signal, compensating
// for each active client's coarse frequency offset (kept from association),
// and reads packet starts off the correlation spikes. A spike in the middle
// of a reception = a collision, and its position is the offset Δ between
// the colliding packets.
//
// Detection statistic. A true packet start correlates at |Γ'| ≈ E_pre·|h|,
// so the detector scores every alignment as
//
//     ρ(Δ) = |Γ'(Δ)| / (κ · E_pre · ĥ),   ĥ = sqrt(SNR_client · noisê)
//
// and detects where ρ ≥ β, gated by the windowed rx energy (a start whose
// surrounding window carries almost no power cannot hold a preamble).
// Normalizing by the windowed energy ALONE — the textbook cosine
// similarity — does not work at this preamble length: measured on the §5.1
// waveforms, in-packet data cross-correlation excursions reach 0.63–0.70
// of the Cauchy-Schwarz bound while a preamble buried under an equal-power
// packet peaks at only ~0.71, so the two distributions overlap and no β
// separates them. Referencing the client's expected peak height instead
// separates cleanly; κ (see DetectorConfig) calibrates the reference so
// that the paper's β = 0.65 sits at the paper's operating point
// (FP ≈ 3%, FN ≈ 2–4%, Table 5.1a).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "zz/common/types.h"
#include "zz/phy/receiver.h"
#include "zz/signal/correlate.h"

namespace zz::zigzag {

/// One detected packet start inside a reception.
struct Detection {
  std::ptrdiff_t origin = 0;   ///< integer sample index of symbol 0
  double mu = 0.0;             ///< sub-sample offset (parabolic refinement)
  cplx h{0.0, 0.0};            ///< channel estimate from the peak (§4.2.4a)
  double freq_offset = 0.0;    ///< coarse δf̂ used for this client
  /// Peak-height consistency min(ρ, 1/ρ) ∈ (0, 1]: how well the measured
  /// |Γ'| matches the resolved client's expected E_pre·ĥ (1 = exact).
  double metric = 0.0;
  int profile_index = -1;      ///< best-matching client, -1 if unknown
};

struct DetectorConfig {
  /// Threshold factor (§5.3a): detect where ρ ≥ β. The paper tunes
  /// β ∈ [0.6, 0.7] on its USRP correlation statistics; the calibration
  /// gain below maps the same β onto this reproduction's waveforms, so
  /// β = 0.65 reproduces Table 5.1(a)'s 3.1% FP / 1.9% FN tradeoff.
  double beta = 0.65;
  /// Peak-height reference gain κ: the measured ratio between the paper's
  /// operating point and this waveform family's |Γ'| statistics (shared
  /// with the standard receiver — see phy::kDetectCalibration).
  double calibration = phy::kDetectCalibration;
  /// Candidate starts whose surrounding window carries less than this
  /// fraction of the hypothesized preamble energy are rejected outright —
  /// the windowed-energy gate that keeps noise-only stretches silent.
  double energy_gate = 0.25;
  std::size_t preamble_len = phy::kPreambleLength;
  std::size_t min_separation = 16;    ///< samples between distinct starts
  /// Keep the most height-consistent starts. The default is sized so the
  /// cap essentially never evicts a true start (the paper's detector has
  /// no cap at all); pipelines that feed detections straight into the
  /// decoder set a tighter cap to bound phantom-triage work
  /// (zigzag::ReceiverOptions does).
  std::size_t max_detections = 16;
  /// Power-step gate (off at 0). A true packet start is a transmitter
  /// turning ON: mean received power across the candidate rises by that
  /// sender's |h|², while a data cross-correlation excursion rides on
  /// power that is already flowing — requiring
  ///     mean|rx|²(after) − mean|rx|²(before) ≥ gate · ĥ_c²
  /// for a client-c start prunes excursions at the source, per client
  /// hypothesis, so a strong sender cannot vouch for a weak one's phantom.
  /// Measured on the §5.1 waveforms the two distributions OVERLAP at the
  /// n = 3 operating point (true-start step/ĥ² q10 ≈ 0.68 against phantom
  /// step noise of ± 0.5ĥ² over 64-sample windows): a gate tight enough to
  /// prune most phantoms also drops a meaningful tail of Rayleigh-faded
  /// true starts, which no later stage can recover. The live n > 2 path
  /// therefore leaves this off and triages phantoms downstream, where a
  /// false positive IS recoverable (ZigZagReceiver's §4.5.1 alias collapse
  /// and provenance gating). Kept as a measurement/diagnostic knob.
  double power_step_gate = 0.0;
};

class CollisionDetector {
 public:
  explicit CollisionDetector(DetectorConfig cfg = {});

  const DetectorConfig& config() const { return cfg_; }

  /// All packet starts of the known clients in `rx`, sorted by position.
  /// Every client's coarse δf̂ hypothesis is tried; overlapping detections
  /// keep the strongest hypothesis. The sliding correlation is computed
  /// once per reception (stream transforms shared), each client hypothesis
  /// adding only a reference rotation — not a full re-correlation.
  /// Not thread-safe per instance (reuses internal scratch); give each
  /// thread its own detector.
  std::vector<Detection> detect(const CVec& rx,
                                std::span<const phy::SenderProfile> profiles) const;

  /// The sliding-correlation magnitude profile for one client hypothesis —
  /// the curve of Fig 4-2.
  std::vector<double> correlation_profile(const CVec& rx,
                                          double coarse_freq) const;

  /// Absolute |Γ'| detection threshold for a client at the given SNR over
  /// the given noise floor: β · κ · E_pre · sqrt(SNR · noise).
  double threshold(double snr_linear, double noise_floor) const;

 private:
  sig::SlidingCorrelator& correlator() const;

  DetectorConfig cfg_;
  mutable std::optional<sig::SlidingCorrelator> corr_;  ///< lazy, reused
};

}  // namespace zz::zigzag
