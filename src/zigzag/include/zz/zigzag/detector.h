// "Is It a Collision?" — §4.2.1.
//
// The AP slides the known preamble over the received signal, compensating
// for each active client's coarse frequency offset (kept from association),
// and reads packet starts off the correlation spikes. A spike in the middle
// of a reception = a collision, and its position is the offset Δ between
// the colliding packets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "zz/common/types.h"
#include "zz/phy/receiver.h"

namespace zz::zigzag {

/// One detected packet start inside a reception.
struct Detection {
  std::ptrdiff_t origin = 0;   ///< integer sample index of symbol 0
  double mu = 0.0;             ///< sub-sample offset (parabolic refinement)
  cplx h{0.0, 0.0};            ///< channel estimate from the peak (§4.2.4a)
  double freq_offset = 0.0;    ///< coarse δf̂ used for this client
  double metric = 0.0;         ///< |Γ'| at the peak
  int profile_index = -1;      ///< best-matching client, -1 if unknown
};

struct DetectorConfig {
  /// Threshold factor (§5.3a). The paper tunes β ∈ [0.6, 0.7] on its USRP
  /// correlation statistics; β = 0.65 works here too: correlation false positives are capped per reception and neutralized by the decoder, so the threshold optimizes against false negatives (missed collisions).
  /// same false-positive/false-negative balance (Table 5.1 bench sweeps β).
  double beta = 0.65;
  std::size_t preamble_len = phy::kPreambleLength;
  std::size_t min_separation = 16;    ///< samples between distinct starts
  std::size_t max_detections = 4;     ///< keep the strongest starts
};

class CollisionDetector {
 public:
  explicit CollisionDetector(DetectorConfig cfg = {});

  const DetectorConfig& config() const { return cfg_; }

  /// All packet starts of the known clients in `rx`, sorted by position.
  /// Every client's coarse δf̂ hypothesis is tried; overlapping detections
  /// keep the strongest hypothesis.
  std::vector<Detection> detect(const CVec& rx,
                                std::span<const phy::SenderProfile> profiles) const;

  /// The sliding-correlation magnitude profile for one client hypothesis —
  /// the curve of Fig 4-2.
  std::vector<double> correlation_profile(const CVec& rx,
                                          double coarse_freq) const;

  /// Detection threshold for a client at the given SNR over the given noise
  /// floor: β · E_preamble · sqrt(SNR · noise).
  double threshold(double snr_linear, double noise_floor) const;

 private:
  DetectorConfig cfg_;
};

}  // namespace zz::zigzag
