// "Did the AP Receive Two Matching Collisions?" — §4.2.2.
//
// The AP keeps recent unmatched collisions (raw samples). When a new
// collision arrives it aligns candidate packet starts across the two
// receptions and correlates: two copies of the same packet are identical up
// to channel phase, noise and the retransmission flag, so the normalized
// correlation is large; unrelated (scrambled) packets decorrelate.
#pragma once

#include <cstddef>

#include "zz/common/types.h"

namespace zz::zigzag {

struct MatchConfig {
  std::size_t skip = 192;    ///< samples to skip past preamble+header
  std::size_t span = 512;    ///< samples to correlate
  double threshold = 0.30;   ///< normalized score required for a match
};

struct MatchScore {
  double score = 0.0;  ///< |<s1, s2>| / sqrt(E1·E2) over the compared span
  bool matched = false;
};

/// Compare the transmissions starting at `start1` in `rx1` and `start2` in
/// `rx2`: are they the same packet? Starts are the detected packet origins.
MatchScore match_same_packet(const CVec& rx1, std::ptrdiff_t start1,
                             const CVec& rx2, std::ptrdiff_t start2,
                             const MatchConfig& cfg = {});

}  // namespace zz::zigzag
