// "Did the AP Receive Two Matching Collisions?" — §4.2.2.
//
// The AP keeps recent unmatched collisions (raw samples). When a new
// collision arrives it aligns candidate packet starts across the two
// receptions and correlates: two copies of the same packet are identical up
// to channel phase, noise and the retransmission flag, so the normalized
// correlation is large; unrelated (scrambled) packets decorrelate.
//
// Two routes compute the same score. `match_same_packet` is the original
// O(span) single-alignment loop, kept as the golden reference. The
// `PacketMatcher` engine routes through sig::SlidingCorrelator: the new
// reception's segment is block-transformed once and every stored packet
// swaps in as the correlator's reference, so an n-way registry match costs
// one prepare() plus one kernel FFT per candidate instead of re-walking the
// samples per pair — and a non-zero alignment slack searches the whole
// window at no extra asymptotic cost. Both routes agree to ~1e-11 (tests
// pin 1e-9) at slack 0.
#pragma once

#include <cstddef>
#include <optional>

#include "zz/common/types.h"
#include "zz/signal/correlate.h"

namespace zz::zigzag {

struct MatchConfig {
  std::size_t skip = 192;    ///< samples to skip past preamble+header
  std::size_t span = 512;    ///< samples to correlate
  double threshold = 0.30;   ///< normalized score required for a match
  /// Alignment slack (samples) searched around the hypothesized start in
  /// the second reception: the peak within ±slack is scored. 0 reproduces
  /// the single-alignment reference exactly; a small slack absorbs
  /// detector origin jitter between receptions.
  std::size_t slack = 0;
};

struct MatchScore {
  double score = 0.0;  ///< |<s1, s2>| / sqrt(E1·E2) over the compared span
  bool matched = false;
  /// Alignment correction (samples) of the best-scoring lag relative to
  /// the hypothesized start2 (always 0 when cfg.slack is 0).
  std::ptrdiff_t lag = 0;
};

/// Compare the transmissions starting at `start1` in `rx1` and `start2` in
/// `rx2`: are they the same packet? Starts are the detected packet origins.
/// Golden-reference route (naive single-alignment correlation).
MatchScore match_same_packet(const CVec& rx1, std::ptrdiff_t start1,
                             const CVec& rx2, std::ptrdiff_t start2,
                             const MatchConfig& cfg = {});

/// Batched §4.2.2 matcher over the SlidingCorrelator engine. Typical n-way
/// use: prepare(rx2, start2) once for a new detection, then score() every
/// stored packet against it — the stream transforms are shared and each
/// candidate costs one reference swap. Not thread-safe; one per thread.
class PacketMatcher {
 public:
  explicit PacketMatcher(MatchConfig cfg = {});

  const MatchConfig& config() const { return cfg_; }

  /// Block-transform the comparison window of `rx2` around `start2`
  /// (span + 2·slack samples past the skip). Subsequent score() calls
  /// reuse the transforms. Returns false when the window is too short to
  /// judge (score() then reports no match).
  bool prepare(const CVec& rx2, std::ptrdiff_t start2);

  /// Score the packet starting at `start1` in `rx1` against the prepared
  /// reception. Same normalized metric as match_same_packet; with
  /// cfg.slack > 0 the best lag in the window wins.
  MatchScore score(const CVec& rx1, std::ptrdiff_t start1);

  /// One-shot convenience mirroring the match_same_packet signature.
  MatchScore match(const CVec& rx1, std::ptrdiff_t start1, const CVec& rx2,
                   std::ptrdiff_t start2);

 private:
  MatchConfig cfg_;
  std::optional<sig::SlidingCorrelator> corr_;  ///< lazily sized to span
  CVec stream_;                 ///< prepared comparison window
  std::vector<double> energy_;  ///< prefix sums of |stream|² (O(1) windows)
  CVec gamma_;                  ///< correlate() output scratch
  CVec ref_;                    ///< reference segment scratch
  std::size_t span_ = 0;        ///< effective compare length this prepare
  std::ptrdiff_t base_ = 0;     ///< zero-lag alignment index within stream_
  bool prepared_ = false;
};

}  // namespace zz::zigzag
