// The greedy chunk-scheduling algorithm of §4.5, on abstract collision
// patterns.
//
//   Step 1: decode all overhanging interference-free chunks.
//   Step 2: subtract the known chunks wherever they appear in all collisions.
//   Step 3: decode the new chunks that became interference-free.
//   Repeat until all chunks of all packets are decoded.
//
// This module works on pure geometry (packet lengths + per-collision
// offsets), with no waveforms: it answers "is this set of collisions
// decodable, and in what order?" — the question behind Fig 4-7's failure
// probability curves and Assertion 4.5.1. The waveform decoder
// (zz::zigzag::ZigZagDecoder) applies the same greedy rule to real samples.
#pragma once

#include <cstddef>
#include <vector>

namespace zz::zigzag {

/// An abstract collision pattern: which packets appear in which collisions
/// at which symbol offsets.
struct Pattern {
  /// Length, in symbols, of each packet.
  std::vector<std::size_t> lengths;

  struct Placement {
    std::size_t packet = 0;      ///< index into `lengths`
    std::ptrdiff_t offset = 0;   ///< symbol offset within the collision
  };
  /// collisions[c] lists the packets present in collision c.
  std::vector<std::vector<Placement>> collisions;
};

/// One decode action: symbols [k0, k1) of `packet` from `collision`.
struct ScheduleStep {
  std::size_t collision = 0;
  std::size_t packet = 0;
  std::size_t k0 = 0;
  std::size_t k1 = 0;
};

struct ScheduleResult {
  bool complete = false;              ///< every symbol of every packet decoded
  std::vector<ScheduleStep> steps;    ///< greedy decode order
  std::vector<std::size_t> undecoded_packets;  ///< ids with missing symbols
  std::size_t rounds = 0;             ///< greedy iterations used
};

/// Run the §4.5 greedy algorithm. `guard` is the number of symbols of
/// separation a decodable symbol needs from any *unknown* symbol of another
/// packet (0 reproduces the paper's idealized chunk model; the waveform
/// engine uses a small guard for pulse tails).
ScheduleResult greedy_schedule(const Pattern& pattern, std::size_t guard = 0);

/// The feasibility condition of §4.5 / Assertion 4.5.1: for every pair of
/// packets that ever collide together, there exist two collisions in which
/// the pair combined at different relative offsets (or some collision where
/// one of them appears without the other, which breaks the tie trivially).
bool pairwise_condition_holds(const Pattern& pattern);

/// Conditioning of one equation (collision) for the greedy schedule: the
/// minimum pairwise offset separation, in symbols, between any two packets
/// present in it. Larger is better — a collision whose packets are well
/// separated yields long interference-free head/tail chunks, so the n-way
/// zigzag bootstraps from it with the least error propagation. A collision
/// holding fewer than two packets is trivially clean (max conditioning).
std::size_t equation_conditioning(const Pattern& pattern, std::size_t collision);

/// Equation-selection order for joint decoding: the collision indices of
/// `pattern` sorted by decreasing conditioning (ties keep arrival order).
/// The n-sender scenario engine feeds collisions to the waveform decoder in
/// this order; the decoder's ChunkOrder::BestFirst then refines the same
/// idea per chunk.
std::vector<std::size_t> order_equations(const Pattern& pattern);

}  // namespace zz::zigzag
