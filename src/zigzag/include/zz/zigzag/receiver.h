// The ZigZag access point receiver — the full pipeline of §5.1(d).
//
//   "First, the packet is detected ... Second, we try to decode the packet
//    using the standard approach. If standard decoding fails, we use the
//    algorithm in §4.2.1 to detect whether the packet has experienced a
//    collision, and where exactly the colliding packet starts. If a
//    collision is detected, the receiver matches the packet against any
//    recent reception (§4.2.2). If no match is found, the packet is stored
//    in case it helps decoding a future collision. If a match is found, the
//    receiver performs chunk-by-chunk decoding on the two collisions
//    (§4.2.3). Note that even when the standard decoding succeeds we still
//    check whether we can decode a second packet with lower power (i.e., a
//    capture scenario)."
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <span>
#include <vector>

#include "zz/common/types.h"
#include "zz/phy/receiver.h"
#include "zz/zigzag/decoder.h"
#include "zz/zigzag/detector.h"
#include "zz/zigzag/matcher.h"

namespace zz::zigzag {

struct ReceiverOptions {
  /// The detector itself reports every credible start (its default cap is
  /// sized for measurement); the live pipeline bounds the decoder's
  /// phantom-triage work with a tighter cap per reception.
  ReceiverOptions() { detector.max_detections = 6; }

  /// Options tuned for an AP serving `n` associated clients. Reduces to
  /// the stock defaults at n ≤ 2 (the pinned pair configuration), so the
  /// historical two-sender pipelines are reproduced exactly. For n > 2 it
  /// widens the knobs the n-way live path needs: best-first chunk order,
  /// an n-aware §4.2.2 match threshold (the same-packet correlation of one
  /// client among n equal-power overlaps normalizes to ≈ 1/n, so the pair
  /// threshold rejects true matches), and the detector's measurement-sized
  /// cap (n-way overlaps throw many data excursions over β; evicting a
  /// faded true start is unrecoverable, while surplus phantoms are triaged
  /// downstream by the alias collapse and provenance gates).
  static ReceiverOptions for_clients(std::size_t n);

  DecodeOptions decode{};
  DetectorConfig detector{};
  MatchConfig match{};
  phy::ReceiverConfig rx{};
  std::size_t max_pending = 4;        ///< stored unmatched collisions
  int single_shot_stall_breaks = 2;   ///< fail fast on lone collisions
  /// Most receptions one joint decode may combine (matched stored
  /// collisions plus the new one). Two receptions resolve a sender pair;
  /// n resolve n senders (§4.5). The default keeps the historical
  /// pair-then-triple behavior; n-sender scenarios raise it to n.
  std::size_t max_joint_receptions = 3;
  /// n-way joint triage (§4.5). When set, the receiver (a) collapses
  /// constant-offset phantom aliases before counting unknowns (a data
  /// excursion tracks its host packet at one fixed Δ in every reception —
  /// Assertion 4.5.1's degenerate pattern), and (b) refuses to accept a
  /// joint decode whose cross-reception unknown count exceeds its equation
  /// count, storing the reception and widening instead. Off by default:
  /// the historical pair pipelines greedily accept any matched joint
  /// output and their baselines pin that exact decision sequence.
  /// for_clients(n > 2) turns it on — an n-way collision decoded at pair
  /// width is partial junk whose acceptance destroys the very equations
  /// the widening step needs.
  bool strict_joint = false;
  /// Farm hooks (src/farm). When set, `shared_cache` replaces the
  /// receiver's internal per-reception chunk-decode memo: every decode —
  /// single, capture and joint — goes through it, and it is NOT cleared
  /// between receptions, so warm episode replay hits across receive()
  /// calls (cache use is bit-identical by the DecodeCache contract, so
  /// outputs do not change). The owner bounds its memory and must not
  /// share one cache shard between two receivers running concurrently
  /// unless it accepts lock contention (the cache is internally
  /// synchronized either way). `arena`, when set, supplies the decoder's
  /// scratch buffers; it is thread-confined, so it must never be inside
  /// two concurrent receive() calls. Both are borrowed, never owned.
  DecodeCache* shared_cache = nullptr;
  sig::ScratchArena* arena = nullptr;
};

/// One packet handed up the stack.
///
/// Packets with `crc_ok` carry verified payloads. Packets without it are
/// best-effort decodes (header valid, some body bits possibly wrong) —
/// emitted because the paper's delivery criterion (§5.1f) is BER < 1e-3
/// with channel coding assumed on top; evaluation harnesses score these
/// against ground truth exactly as the paper's offline analysis did.
struct Delivered {
  phy::FrameHeader header;
  Bytes payload;   ///< valid when crc_ok
  Bits air_bits;   ///< decoded header ‖ body bits, for offline scoring
  bool crc_ok = false;
  bool via_pair = false;  ///< needed a matched collision pair (ZigZag proper)
  bool via_sic = false;   ///< decoded out of a single collision (capture)
};

class ZigZagReceiver {
 public:
  explicit ZigZagReceiver(ReceiverOptions opt = {});

  /// Register a client learned at association time.
  void add_client(const phy::SenderProfile& profile);
  /// Register n clients uniformly — the n-sender scenario entry point.
  void add_clients(std::span<const phy::SenderProfile> profiles);
  const std::vector<phy::SenderProfile>& clients() const { return clients_; }

  /// Feed one logged reception. Returns every packet decodable *now* —
  /// possibly including packets from a previously stored collision that
  /// this reception just unlocked.
  std::vector<Delivered> receive(const CVec& rx);

  std::size_t pending_collisions() const { return pending_.size(); }
  void clear_pending() { pending_.clear(); }

 private:
  struct PendingCollision {
    CVec samples;
    std::vector<Detection> detections;
  };

  std::vector<Delivered> try_single(const CVec& rx,
                                    const std::vector<Detection>& dets);
  /// §5.1(d): "even when the standard decoding succeeds we still check
  /// whether we can decode a second packet with lower power". Subtract the
  /// packets already delivered from this reception and hunt for weaker
  /// arrivals buried underneath.
  std::vector<Delivered> try_capture_second(const CVec& rx,
                                            const std::vector<Delivered>& got);
  /// Jointly decode `olds` (stored receptions, oldest first) plus the new
  /// reception. Packets are unified across receptions by data correlation
  /// (§4.2.2). Two receptions resolve a pair of senders; three resolve a
  /// triple (§4.5). `*unknowns` reports how many distinct packets the
  /// unification registered — when it exceeds the reception count the
  /// system is underdetermined (§4.5) and the caller should widen rather
  /// than accept the partial output.
  std::vector<Delivered> try_joint(
      const std::vector<const PendingCollision*>& olds, const CVec& rx,
      const std::vector<Detection>& dets, bool* matched,
      std::size_t* unknowns);
  void remember(const CVec& rx, std::vector<Detection> dets);
  bool fresh(const phy::FrameHeader& h);

  ReceiverOptions opt_;
  PacketMatcher matcher_;  ///< §4.2.2 engine route, reused across receptions
  /// Chunk-decode memo for one reception's widening search (§4.5): as the
  /// joint decode retries with more stored receptions, chunks the extra
  /// equation does not perturb replay from the memo. Cleared per receive()
  /// — unless opt_.shared_cache overrides it with a longer-lived memo.
  DecodeCache joint_cache_;
  std::vector<phy::SenderProfile> clients_;
  std::deque<PendingCollision> pending_;
  std::set<std::pair<std::uint8_t, std::uint16_t>> delivered_keys_;
};

}  // namespace zz::zigzag
