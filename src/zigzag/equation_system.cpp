#include "zz/zigzag/equation_system.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "zz/common/check.h"

namespace zz::zigzag {
namespace {

void validate(const Pattern& pattern, const char* who) {
  for (const auto& coll : pattern.collisions)
    for (const auto& pl : coll)
      if (pl.packet >= pattern.lengths.size())
        throw std::invalid_argument(std::string(who) +
                                    ": placement out of range");
}

// Is symbol k of placement `self` in `coll` free of unknown symbols of every
// other packet within ±guard? (Same rule as the greedy scheduler's
// symbol_clean — peeling and greedy chunk decoding share the geometry.)
bool peelable(const Pattern& pattern,
              const std::vector<std::vector<std::uint8_t>>& known,
              const std::vector<Pattern::Placement>& coll, std::size_t self,
              std::size_t k, std::ptrdiff_t guard) {
  const auto& pl = coll[self];
  const std::ptrdiff_t pos = pl.offset + static_cast<std::ptrdiff_t>(k);
  for (std::size_t oi = 0; oi < coll.size(); ++oi) {
    if (oi == self) continue;
    const auto& other = coll[oi];
    const auto olen = static_cast<std::ptrdiff_t>(pattern.lengths[other.packet]);
    const std::ptrdiff_t jlo =
        std::max<std::ptrdiff_t>(0, pos - guard - other.offset);
    const std::ptrdiff_t jhi =
        std::min<std::ptrdiff_t>(olen - 1, pos + guard - other.offset);
    for (std::ptrdiff_t j = jlo; j <= jhi; ++j)
      if (!known[other.packet][static_cast<std::size_t>(j)]) return false;
  }
  return true;
}

// Symbols of packets other than {a, b} unknown within ±guard of collision
// time `pos` would corrupt a 2x2 elimination — the eliminated system must
// contain exactly the pair.
bool pair_region_clean(const Pattern& pattern,
                       const std::vector<std::vector<std::uint8_t>>& known,
                       const std::vector<Pattern::Placement>& coll,
                       std::size_t a, std::size_t b, std::ptrdiff_t pos,
                       std::ptrdiff_t guard) {
  for (const auto& other : coll) {
    if (other.packet == a || other.packet == b) continue;
    const auto olen = static_cast<std::ptrdiff_t>(pattern.lengths[other.packet]);
    const std::ptrdiff_t jlo =
        std::max<std::ptrdiff_t>(0, pos - guard - other.offset);
    const std::ptrdiff_t jhi =
        std::min<std::ptrdiff_t>(olen - 1, pos + guard - other.offset);
    for (std::ptrdiff_t j = jlo; j <= jhi; ++j)
      if (!known[other.packet][static_cast<std::size_t>(j)]) return false;
  }
  return true;
}

}  // namespace

std::vector<ChunkEquation> chunk_equations(const Pattern& pattern) {
  validate(pattern, "chunk_equations");
  std::vector<ChunkEquation> eqs;
  for (std::size_t c = 0; c < pattern.collisions.size(); ++c) {
    const auto& coll = pattern.collisions[c];
    // Segment boundaries: every packet start and end.
    std::vector<std::ptrdiff_t> cuts;
    for (const auto& pl : coll) {
      cuts.push_back(pl.offset);
      cuts.push_back(pl.offset +
                     static_cast<std::ptrdiff_t>(pattern.lengths[pl.packet]));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      ChunkEquation eq;
      eq.collision = c;
      eq.t0 = cuts[s];
      eq.t1 = cuts[s + 1];
      ZZ_DCHECK_LT(eq.t0, eq.t1);  // cuts are sorted and deduplicated
      for (const auto& pl : coll) {
        const auto len = static_cast<std::ptrdiff_t>(pattern.lengths[pl.packet]);
        const std::ptrdiff_t k0 = eq.t0 - pl.offset;
        const std::ptrdiff_t k1 = eq.t1 - pl.offset;
        if (k1 <= 0 || k0 >= len) continue;
        // pl.offset is itself a cut, so a segment overlapping the packet
        // starts at or after it — the size_t casts below cannot wrap.
        ZZ_DCHECK_GE(k0, 0);
        eq.terms.push_back({pl.packet, static_cast<std::size_t>(k0),
                            static_cast<std::size_t>(k1)});
      }
      if (!eq.terms.empty()) eqs.push_back(std::move(eq));
    }
  }
  return eqs;
}

MpPlan message_passing_plan(const Pattern& pattern, std::size_t guard) {
  validate(pattern, "message_passing_plan");

  const std::size_t npk = pattern.lengths.size();
  std::vector<std::vector<std::uint8_t>> known(npk);
  for (std::size_t p = 0; p < npk; ++p) known[p].assign(pattern.lengths[p], 0);

  MpPlan plan;
  const auto g = static_cast<std::ptrdiff_t>(guard);
  const auto order = order_equations(pattern);

  // One peel sweep over the equations, best-conditioned-first. Returns
  // whether any chunk was solved.
  const auto peel_sweep = [&] {
    bool progress = false;
    for (const std::size_t c : order) {
      const auto& coll = pattern.collisions[c];
      for (std::size_t self = 0; self < coll.size(); ++self) {
        const auto& pl = coll[self];
        const std::size_t len = pattern.lengths[pl.packet];
        std::size_t k = 0;
        while (k < len) {
          if (known[pl.packet][k] ||
              !peelable(pattern, known, coll, self, k, g)) {
            ++k;
            continue;
          }
          std::size_t k1 = k;
          while (k1 < len && !known[pl.packet][k1] &&
                 peelable(pattern, known, coll, self, k1, g))
            ++k1;
          for (std::size_t j = k; j < k1; ++j) known[pl.packet][j] = 1;
          plan.steps.push_back({MpStep::Kind::Peel, c, 0, pl.packet, 0, k, k1});
          ++plan.peels;
          progress = true;
          k = k1;
        }
      }
    }
    return progress;
  };

  // One elimination: the first (in conditioning order) pair of collisions
  // whose unknown support over some region is the same packet pair at the
  // same relative offset. Solves the lower-numbered packet of the pair;
  // the other becomes peelable once the solved chunk is substituted.
  const auto eliminate_once = [&] {
    for (std::size_t ci = 0; ci < order.size(); ++ci) {
      const std::size_t c1 = order[ci];
      for (std::size_t cj = ci + 1; cj < order.size(); ++cj) {
        const std::size_t c2 = order[cj];
        for (const auto& pa : pattern.collisions[c1]) {
          for (const auto& pb : pattern.collisions[c1]) {
            if (pb.packet <= pa.packet) continue;
            ZZ_DCHECK_LT(pa.packet, pb.packet);  // solve the lower-numbered
            // Both packets in c2 at the same relative offset?
            const Pattern::Placement* qa = nullptr;
            const Pattern::Placement* qb = nullptr;
            for (const auto& pl : pattern.collisions[c2]) {
              if (pl.packet == pa.packet) qa = &pl;
              if (pl.packet == pb.packet) qb = &pl;
            }
            if (!qa || !qb) continue;
            if (pa.offset - pb.offset != qa->offset - qb->offset) continue;

            // The elimination's matched sampling cancels the WHOLE of
            // pb.packet's waveform (not individual symbols), so any unknown
            // symbol of pa.packet qualifies as long as no third packet's
            // unknown symbols interfere in either collision — pb's guard
            // tails cancel along with the rest of it. (Outside pb's span
            // the 2x2 solve degenerates gracefully: the pb unknown is just
            // zero there.)
            const auto la = static_cast<std::ptrdiff_t>(
                pattern.lengths[pa.packet]);
            const std::ptrdiff_t o0 = 0;
            const std::ptrdiff_t o1 = la;

            std::ptrdiff_t k = o0;
            while (k < o1) {
              const auto ku = static_cast<std::size_t>(k);
              const bool usable =
                  !known[pa.packet][ku] &&
                  pair_region_clean(pattern, known, pattern.collisions[c1],
                                    pa.packet, pb.packet, pa.offset + k, g) &&
                  pair_region_clean(pattern, known, pattern.collisions[c2],
                                    pa.packet, pb.packet, qa->offset + k, g);
              if (!usable) {
                ++k;
                continue;
              }
              std::ptrdiff_t k1 = k;
              while (k1 < o1) {
                const auto k1u = static_cast<std::size_t>(k1);
                if (known[pa.packet][k1u] ||
                    !pair_region_clean(pattern, known,
                                       pattern.collisions[c1], pa.packet,
                                       pb.packet, pa.offset + k1, g) ||
                    !pair_region_clean(pattern, known,
                                       pattern.collisions[c2], pa.packet,
                                       pb.packet, qa->offset + k1, g))
                  break;
                ++k1;
              }
              for (std::ptrdiff_t j = k; j < k1; ++j)
                known[pa.packet][static_cast<std::size_t>(j)] = 1;
              plan.steps.push_back({MpStep::Kind::Eliminate, c1, c2,
                                    pa.packet, pb.packet,
                                    static_cast<std::size_t>(k),
                                    static_cast<std::size_t>(k1)});
              ++plan.eliminations;
              return true;
            }
          }
        }
      }
    }
    return false;
  };

  for (;;) {
    ++plan.rounds;
    if (peel_sweep()) continue;
    if (eliminate_once()) continue;
    break;
  }
  // Every recorded step is one of the two kinds, counted as it was pushed.
  ZZ_CHECK_EQ(plan.steps.size(), plan.peels + plan.eliminations);

  plan.complete = true;
  for (std::size_t p = 0; p < npk; ++p) {
    const bool all = std::all_of(known[p].begin(), known[p].end(),
                                 [](std::uint8_t v) { return v != 0; });
    if (!all) {
      plan.complete = false;
      plan.unresolved_packets.push_back(p);
    }
  }
  return plan;
}

}  // namespace zz::zigzag
