#include "zz/zigzag/algebraic_mp.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "zz/chan/channel.h"
#include "zz/common/check.h"
#include "zz/common/mathutil.h"
#include "zz/phy/preamble.h"
#include "zz/phy/scrambler.h"
#include "zz/phy/tracker.h"
#include "zz/signal/interp.h"
#include "zz/zigzag/equation_system.h"

namespace zz::zigzag {
namespace {

using phy::Modulation;

cplx rot(double cycles) {
  const double phi = kTwoPi * cycles;
  return cplx{std::cos(phi), std::sin(phi)};
}

struct MpLink {
  bool present = false;
  std::ptrdiff_t origin = 0;
  phy::LinkEstimate est;
};

struct MpPacket {
  std::size_t len = 0;
  std::optional<phy::FrameHeader> header;
  phy::FrameLayout layout{};
  Modulation body_mod = Modulation::BPSK;
  int profile_index = -1;
  CVec decided;
  std::vector<std::uint8_t> known;
  /// Header symbols re-encoded per retry-flag variant (§4.2.2), for
  /// substituting into collisions that carry the other variant.
  CVec hdr_variant[2];
  /// Retry flag of the collision the retry/HCS header symbols were last
  /// solved against (-1 = untouched). Those positions genuinely differ
  /// between transmissions, so a decided header assembled from mixed
  /// sources — or from an elimination, whose two equations carry the two
  /// variants — needs them rebuilt deterministically before parsing.
  int hdr_variant_hint = -1;
};

class MpEngine {
 public:
  MpEngine(std::span<const CollisionInput> collisions,
           std::span<const phy::SenderProfile> profiles,
           std::size_t num_packets, std::size_t packet_syms,
           const AlgebraicMpOptions& opt, const phy::ReceiverConfig& rxcfg)
      : opt_(opt),
        rxcfg_(rxcfg),
        profiles_(profiles),
        inputs_(collisions),
        C_(collisions.size()),
        P_(num_packets),
        dec_(opt.decoder_gains, opt.interp_half_width),
        interp_(opt.interp_half_width) {
    init(packet_syms);
  }

  DecodeResult run() {
    const MpPlan plan = message_passing_plan(pattern_, opt_.guard);
    for (const MpStep& step : plan.steps) {
      if (step.kind == MpStep::Kind::Peel)
        peel(step);
      else
        eliminate(step);
    }
    return finalize();
  }

 private:
  void init(std::size_t packet_syms) {
    // decode() screens empty inputs before constructing the engine.
    ZZ_CHECK_GT(C_, 0u);
    ZZ_CHECK_GT(P_, 0u);
    residual_.resize(C_);
    noise_.resize(C_);
    imgs_.assign(P_, std::vector<CVec>(C_));
    links_.assign(P_, std::vector<MpLink>(C_));
    pkts_.resize(P_);

    for (std::size_t c = 0; c < C_; ++c) {
      residual_[c] = *inputs_[c].samples;
      noise_[c] = phy::estimate_noise_floor(residual_[c]);
    }

    for (std::size_t c = 0; c < C_; ++c) {
      for (const auto& pl : inputs_[c].placements) {
        if (pl.packet >= P_)
          throw std::invalid_argument("AlgebraicMpDecoder: placement out of range");
        MpLink& l = links_[pl.packet][c];
        l.present = true;
        l.origin = pl.detection.origin;
        l.est.params.h = pl.detection.h;
        l.est.params.freq_offset = pl.detection.freq_offset;
        l.est.params.mu = pl.detection.mu;
        l.est.noise_var = noise_[c];
        MpPacket& pk = pkts_[pl.packet];
        if (pl.detection.profile_index >= 0)
          pk.profile_index = pl.detection.profile_index;
        if (pk.profile_index >= 0 &&
            static_cast<std::size_t>(pk.profile_index) < profiles_.size()) {
          const auto& prof = profiles_[static_cast<std::size_t>(pk.profile_index)];
          l.est.params.freq_offset = prof.freq_offset;
          if (!prof.isi.is_identity()) {
            l.est.params.isi = prof.isi;
            l.est.equalizer = prof.equalizer;
          }
          pk.body_mod = prof.mod;
        }
      }
    }

    // Believed packet lengths: pinned by the caller, or bounded by the
    // shortest buffer the packet appears in (the zigzag decoder's rule).
    // A packet placed in no collision at all has nothing to decode — zero
    // length, not the unbounded sentinel.
    for (std::size_t p = 0; p < P_; ++p) {
      bool present = false;
      for (std::size_t c = 0; c < C_; ++c) present |= links_[p][c].present;
      std::size_t cap = present && packet_syms ? packet_syms : 0;
      if (present && !packet_syms) {
        cap = 1u << 20;
        for (std::size_t c = 0; c < C_; ++c) {
          if (!links_[p][c].present) continue;
          const auto room = static_cast<std::ptrdiff_t>(residual_[c].size()) -
                            links_[p][c].origin - 40;
          cap = std::min(cap, static_cast<std::size_t>(
                                  std::max<std::ptrdiff_t>(room, 0) /
                                  static_cast<std::ptrdiff_t>(chan::kSps)));
        }
      }
      pkts_[p].len = cap;
      pkts_[p].decided.assign(cap, cplx{0.0, 0.0});
      pkts_[p].known.assign(cap, 0);
    }

    // The chunk-equation geometry: symbol lengths plus per-collision symbol
    // offsets (the §4.5 Pattern the planner and conditioning helpers share).
    pattern_.lengths.resize(P_);
    for (std::size_t p = 0; p < P_; ++p) pattern_.lengths[p] = pkts_[p].len;
    pattern_.collisions.resize(C_);
    for (std::size_t c = 0; c < C_; ++c)
      for (const auto& pl : inputs_[c].placements)
        pattern_.collisions[c].push_back(
            {pl.packet, static_cast<std::ptrdiff_t>(std::llround(
                            static_cast<double>(pl.detection.origin) /
                            chan::kSps))});
  }

  Modulation mod_at(std::size_t p, std::size_t k) const {
    const std::size_t body = rxcfg_.preamble_len + phy::kHeaderBits;
    return k < body ? Modulation::BPSK : pkts_[p].body_mod;
  }

  // The symbol packet p would transmit at index k as carried by collision c
  // (retry-flag header variant swapped in when it differs).
  cplx decided_at(std::size_t p, std::size_t c, std::ptrdiff_t k) const {
    const MpPacket& pk = pkts_[p];
    if (k < 0 || k >= static_cast<std::ptrdiff_t>(pk.len)) return cplx{0.0, 0.0};
    const auto ku = static_cast<std::size_t>(k);
    if (pk.header && pk.header->retry != inputs_[c].is_retransmission) {
      const std::size_t base = rxcfg_.preamble_len;
      if (ku >= base && ku < base + phy::kHeaderBits && pk.known[ku])
        return pk.hdr_variant[inputs_[c].is_retransmission ? 1 : 0][ku - base];
    }
    return pk.decided[ku];  // zero until decoded
  }

  // Substitute p's symbols [k0,k1) into every equation: render the chunk
  // through each link's channel estimate and subtract, keeping a per-link
  // image account so later decodes can add the own signal back.
  void subtract_everywhere(std::size_t p, std::size_t k0, std::size_t k1) {
    if (k1 <= k0) return;
    const MpPacket& pk = pkts_[p];
    for (std::size_t c = 0; c < C_; ++c) {
      const MpLink& l = links_[p][c];
      if (!l.present) continue;

      // ISI-filtered chunk symbols; decided neighbours just outside the
      // range contribute through the filter tails exactly as a full-packet
      // render would.
      u_.assign(pk.len, cplx{0.0, 0.0});
      const auto& isi = l.est.params.isi;
      if (isi.is_identity()) {
        for (std::size_t k = k0; k < k1; ++k)
          u_[k] = decided_at(p, c, static_cast<std::ptrdiff_t>(k));
      } else {
        const auto& taps = isi.taps();
        const auto pre = static_cast<std::ptrdiff_t>(isi.pre());
        for (std::size_t k = k0; k < k1; ++k) {
          cplx acc{0.0, 0.0};
          for (std::size_t t = 0; t < taps.size(); ++t)
            acc += taps[t] *
                   decided_at(p, c, static_cast<std::ptrdiff_t>(k) + pre -
                                        static_cast<std::ptrdiff_t>(t));
          u_[k] = acc;
        }
      }

      chan::ChannelParams params = l.est.params;
      params.isi = sig::Fir();  // applied above

      // The image only reaches the chunk's sample span plus pulse tails;
      // render, refit and subtract stay inside that window instead of
      // walking the whole collision buffer per step. img_ persists across
      // calls: samples outside the current window are never read, so only
      // the window needs re-zeroing.
      const auto nbuf = static_cast<std::ptrdiff_t>(residual_[c].size());
      const double tail =
          static_cast<double>(opt_.interp_half_width) * chan::kSps + 8.0;
      const auto lo = std::clamp<std::ptrdiff_t>(
          static_cast<std::ptrdiff_t>(std::floor(
              static_cast<double>(l.origin) +
              chan::kSps * static_cast<double>(k0) + params.mu - tail)),
          0, nbuf);
      const auto hi = std::clamp<std::ptrdiff_t>(
          static_cast<std::ptrdiff_t>(std::ceil(
              static_cast<double>(l.origin) +
              chan::kSps * static_cast<double>(k1) + params.mu + tail)),
          lo, nbuf);
      ZZ_DCHECK_LE(lo, hi);  // hi is clamped to [lo, nbuf]
      if (img_.size() < residual_[c].size()) img_.resize(residual_[c].size());
      std::fill(img_.begin() + lo, img_.begin() + hi, cplx{0.0, 0.0});
      chan::add_signal(img_, l.origin, u_, params, 1.0, opt_.interp_half_width);

      // Per-equation coefficient refit: the chunk's own signal is still in
      // the residual, so projecting the rendered image onto it re-measures
      // this link's mixing coefficient — the "Collision Helps" model
      // estimates each equation's coefficients, it just never revisits the
      // symbols. Only trusted when no other packet's unknown symbols
      // overlap the chunk's window (their signal would bias the fit).
      if (refit_clean(p, c, k0, k1)) {
        cplx num{0.0, 0.0};
        double den = 0.0;
        for (std::ptrdiff_t n = lo; n < hi; ++n) {
          const auto i = static_cast<std::size_t>(n);
          if (std::norm(img_[i]) < 1e-12) continue;
          num += std::conj(img_[i]) * residual_[c][i];
          den += std::norm(img_[i]);
        }
        if (den > 1e-9) {
          const cplx corr = num / den;
          const double mag = std::abs(corr);
#ifdef ZZ_MP_DEBUG
          std::fprintf(stderr, "refit p=%zu c=%zu [%zu,%zu) corr=%.3f/%+.3f\n",
                       p, c, k0, k1, mag, std::arg(corr));
#endif
          if (mag > 0.5 && mag < 2.0) {
            links_[p][c].est.params.h *= corr;
            params.h *= corr;
            std::fill(img_.begin() + lo, img_.begin() + hi, cplx{0.0, 0.0});
            chan::add_signal(img_, l.origin, u_, params, 1.0,
                             opt_.interp_half_width);
          }
        }
      }

      auto& acct = imgs_[p][c];
      if (acct.empty()) acct.assign(residual_[c].size(), cplx{0.0, 0.0});
      for (std::ptrdiff_t n = lo; n < hi; ++n) {
        const auto i = static_cast<std::size_t>(n);
        residual_[c][i] -= img_[i];
        acct[i] += img_[i];
      }
    }
  }

  // No unknown foreign symbols within the sample window p's chunk [k0,k1)
  // occupies in collision c (pulse tails included)?
  bool refit_clean(std::size_t p, std::size_t c, std::size_t k0,
                   std::size_t k1) const {
    const MpLink& l = links_[p][c];
    // The image's energy is concentrated in the chunk span; a guard-sized
    // margin keeps the fit unbiased without demanding the (always-occupied)
    // full pulse-tail window be free.
    const double pad = static_cast<double>(opt_.guard) * chan::kSps + 2.0;
    const double w0 = static_cast<double>(l.origin) +
                      chan::kSps * static_cast<double>(k0) - pad;
    const double w1 = static_cast<double>(l.origin) +
                      chan::kSps * static_cast<double>(k1) + pad;
    for (std::size_t q = 0; q < P_; ++q) {
      if (q == p || !links_[q][c].present) continue;
      const MpLink& lq = links_[q][c];
      const auto j0 = static_cast<std::ptrdiff_t>(
          std::floor((w0 - static_cast<double>(lq.origin)) / chan::kSps)) - 1;
      const auto j1 = static_cast<std::ptrdiff_t>(
          std::ceil((w1 - static_cast<double>(lq.origin)) / chan::kSps)) + 1;
      const auto len = static_cast<std::ptrdiff_t>(pkts_[q].len);
      for (std::ptrdiff_t j = std::max<std::ptrdiff_t>(0, j0);
           j <= std::min(len - 1, j1); ++j)
        if (!pkts_[q].known[static_cast<std::size_t>(j)]) return false;
    }
    return true;
  }

  // Note where a solved range last touched the variant-sensitive header
  // positions (retry bit + HCS), and with which retransmission flag.
  void note_variant_source(std::size_t p, std::size_t c, std::size_t k0,
                           std::size_t k1) {
    const std::size_t retry_sym = rxcfg_.preamble_len + phy::kHeaderRetryBit;
    const std::size_t hdr_end = rxcfg_.preamble_len + phy::kHeaderBits;
    if (k0 < hdr_end && k1 > retry_sym)
      pkts_[p].hdr_variant_hint = inputs_[c].is_retransmission ? 1 : 0;
  }

  void maybe_parse_header(std::size_t p) {
    MpPacket& pk = pkts_[p];
    if (pk.header) return;
    const std::size_t h0 = rxcfg_.preamble_len;
    const std::size_t h1 = h0 + phy::kHeaderBits;
    if (pk.len < h1) return;
    for (std::size_t k = h0; k < h1; ++k)
      if (!pk.known[k]) return;

    const phy::Modulator bpsk(Modulation::BPSK);
    Bits bits;
    bits.reserve(phy::kHeaderBits);
    for (std::size_t k = h0; k < h1; ++k) bpsk.append_bits(pk.decided[k], bits);
    auto header = phy::decode_header(bits);
    if (!header && pk.hdr_variant_hint >= 0) {
      // Retry-variant completion: an eliminated (or mixed-source) header
      // carries inconsistent bits exactly at the retry and HCS positions —
      // the only bits that differ between the two transmissions, so the
      // "same symbol in both equations" model breaks there. Both are
      // deterministic given the other field bits and the reference
      // collision's known retransmission flag: rebuild and re-parse. (A
      // wrong field bit would survive the recomputed HCS, but delivery is
      // still gated by the §5.1(f) BER criterion and the body CRC.)
      Bits fixed = bits;
      fixed[phy::kHeaderRetryBit] = pk.hdr_variant_hint ? 1 : 0;
      const Bits head(fixed.begin(),
                      fixed.begin() +
                          static_cast<std::ptrdiff_t>(phy::kHeaderFieldBits));
      const std::uint8_t hcs = phy::crc8_bits(head);
      for (std::size_t i = 0; i < phy::kHeaderHcsBits; ++i)
        fixed[phy::kHeaderFieldBits + i] =
            static_cast<std::uint8_t>((hcs >> i) & 1u);
      header = phy::decode_header(fixed);
    }
    if (!header) return;

    pk.header = *header;
    pk.layout = phy::layout_for(*header);
    pk.body_mod = header->payload_mod;
    for (int v = 0; v < 2; ++v) {
      phy::FrameHeader hv = *header;
      hv.retry = v != 0;
      pk.hdr_variant[v] = bpsk.modulate(phy::encode_header(hv));
    }
    // Re-anchor the decided header on the parsed variant: variant-sensitive
    // symbols solved through the other transmission (or an elimination) now
    // render and subtract consistently.
    for (std::size_t k = h0; k < h1; ++k)
      pk.decided[k] = pk.hdr_variant[pk.header->retry ? 1 : 0][k - h0];
    // Pin the believed length; later plan steps clamp to it.
    if (pk.layout.total_syms < pk.len) {
      pk.len = pk.layout.total_syms;
      pk.decided.resize(pk.len);
      pk.known.resize(pk.len);
    }
    // A parsed header's layout covers preamble + header symbols, so the
    // truncation can never cut into the header that was just decoded.
    ZZ_CHECK_LE(h1, pk.len) << " truncated layout cut into the header";
  }

  // ------------------------------------------------------------------ peel
  void peel(const MpStep& step) {
    const std::size_t p = step.packet;
    const std::size_t c = step.collision;
    MpPacket& pk = pkts_[p];
    MpLink& l = links_[p][c];
    if (!l.present) return;
    const std::size_t k0 = std::min(step.k0, pk.len);
    const std::size_t k1 = std::min(step.k1, pk.len);
    if (k1 <= k0) return;

    // The packet's own view of this equation: residual plus everything of p
    // already substituted out of it.
    view_ = residual_[c];
    const auto& acct = imgs_[p][c];
    if (!acct.empty())
      for (std::size_t n = 0; n < view_.size(); ++n) view_[n] += acct[n];

    std::vector<phy::SymbolSpec> specs(k1 - k0);
    const CVec& pre = phy::preamble(rxcfg_.preamble_len);
    for (std::size_t k = k0; k < k1; ++k) {
      specs[k - k0].mod = mod_at(p, k);
      if (k < pre.size()) specs[k - k0].pilot = pre[k];
    }

    const auto res = dec_.decode(view_, l.origin, k0, k1, specs, l.est);
    ZZ_DCHECK_EQ(res.decided.size(), k1 - k0);
    ++chunks_;
    for (std::size_t k = k0; k < k1; ++k) {
      pk.decided[k] = res.decided[k - k0];
      pk.known[k] = 1;
    }
    note_variant_source(p, c, k0, k1);
    maybe_parse_header(p);
    subtract_everywhere(p, k0, std::min(k1, pk.len));
  }

  // ------------------------------------------------------------- eliminate
  // Solve packet a's symbols [k0,k1) from the pair of equations (c1, c2)
  // that carry packets a and b at the same relative offset. For each symbol
  // the two receptions are sampled at positions where b's baseband waveform
  // argument is IDENTICAL, so b cancels exactly in the 2x2 solve no matter
  // what its (unknown) symbols are; a's second sample sits off its symbol
  // grid by the residual sync mismatch, which the pulse-shape coefficient
  // absorbs to first order.
  void eliminate(const MpStep& step) {
    const std::size_t a = step.packet;
    const std::size_t b = step.other_packet;
    const std::size_t c1 = step.collision;
    const std::size_t c2 = step.other_collision;
    MpPacket& pk = pkts_[a];
    const MpLink& la1 = links_[a][c1];
    const MpLink& la2 = links_[a][c2];
    const MpLink& lb1 = links_[b][c1];
    const MpLink& lb2 = links_[b][c2];
    // The planner pairs two distinct packets across two distinct equations;
    // a degenerate pairing would make the 2x2 system singular by design.
    ZZ_DCHECK_NE(a, b);
    ZZ_DCHECK_NE(c1, c2);
    if (!la1.present || !la2.present || !lb1.present || !lb2.present) return;
    const std::size_t k0 = std::min(step.k0, pk.len);
    const std::size_t k1 = std::min(step.k1, pk.len);
    if (k1 <= k0) return;

    const CVec& pre = phy::preamble(rxcfg_.preamble_len);
    for (std::size_t k = k0; k < k1; ++k) {
      // Sample c1 at a's symbol-k centre.
      const double rel_a1 =
          chan::kSps * static_cast<double>(k) * (1.0 + la1.est.params.drift) +
          la1.est.params.mu;
      const double pos1 = static_cast<double>(la1.origin) + rel_a1;
      // Sample c2 where b's waveform argument matches c1's sample.
      const double tau = pos1 - static_cast<double>(lb1.origin) -
                         lb1.est.params.mu;
      const double pos2 = static_cast<double>(lb2.origin) +
                          lb2.est.params.mu + tau;
      const double rel_a2 = pos2 - static_cast<double>(la2.origin);
      const double eps =
          rel_a2 - (chan::kSps * static_cast<double>(k) *
                        (1.0 + la2.est.params.drift) +
                    la2.est.params.mu);

      const cplx z1 = interp_.at(residual_[c1], pos1);
      const cplx z2 = interp_.at(residual_[c2], pos2);

      const cplx ca1 =
          la1.est.params.h * rot(la1.est.params.freq_offset * rel_a1);
      const cplx cb1 =
          lb1.est.params.h *
          rot(lb1.est.params.freq_offset *
              (pos1 - static_cast<double>(lb1.origin)));
      const cplx ca2 = la2.est.params.h *
                       rot(la2.est.params.freq_offset * rel_a2) *
                       chan::pulse(eps, opt_.interp_half_width);
      const cplx cb2 =
          lb2.est.params.h *
          rot(lb2.est.params.freq_offset *
              (pos2 - static_cast<double>(lb2.origin)));

      const cplx det = ca1 * cb2 - cb1 * ca2;
      const double scale = std::abs(ca1 * cb2) + std::abs(cb1 * ca2);
      if (scale < 1e-12 || std::abs(det) < opt_.min_det_ratio * scale) {
        ++skipped_;  // ill-conditioned: leave the symbol unsolved
        continue;
      }
      const cplx sym = (z1 * cb2 - z2 * cb1) / det;
      pk.decided[k] = k < pre.size() ? pre[k]
                                     : phy::Modulator(mod_at(a, k)).nearest_point(sym);
      pk.known[k] = 1;
    }
    note_variant_source(a, c1, k0, k1);  // the solve references c1's samples
    maybe_parse_header(a);
    subtract_everywhere(a, k0, std::min(k1, pk.len));
  }

  // -------------------------------------------------------------- finalize
  DecodeResult finalize() {
    DecodeResult out;
    out.chunks = chunks_;
    out.stall_breaks = skipped_;
    out.packets.resize(P_);
    for (std::size_t p = 0; p < P_; ++p) {
      MpPacket& pk = pkts_[p];
      PacketResult& r = out.packets[p];
      r.symbols_decoded = static_cast<std::size_t>(
          std::count(pk.known.begin(), pk.known.end(), 1));
      if (!pk.header) continue;
      r.header_ok = true;
      r.header = *pk.header;

      const std::size_t h0 = rxcfg_.preamble_len;
      const std::size_t total = std::min(pk.layout.total_syms, pk.len);
      r.soft.assign(pk.decided.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(h0, total)),
                    pk.decided.begin() + static_cast<std::ptrdiff_t>(total));

      // Header bits from the parse (retry variants differ per collision);
      // body bits from the single decided estimate per symbol — the
      // algebraic receiver has no MRC, every chunk is solved exactly once.
      Bits bits = phy::encode_header(*pk.header);
      Bits body_bits;
      const phy::Modulator body(pk.body_mod);
      for (std::size_t k = h0 + phy::kHeaderBits; k < total; ++k)
        body.append_bits(pk.decided[k], body_bits);
      body_bits.resize(pk.layout.body_bits);
      bits.insert(bits.end(), body_bits.begin(), body_bits.end());
      r.air_bits = std::move(bits);

      phy::Scrambler scr(phy::scrambler_seed_for(pk.header->seq));
      const Bits descrambled = scr.apply(body_bits);
      if (phy::body_crc_ok(descrambled)) {
        r.crc_ok = true;
        r.payload = phy::body_payload(descrambled);
      }
    }
    return out;
  }

  const AlgebraicMpOptions& opt_;
  const phy::ReceiverConfig& rxcfg_;
  std::span<const phy::SenderProfile> profiles_;
  std::span<const CollisionInput> inputs_;
  std::size_t C_;
  std::size_t P_;
  phy::ChunkDecoder dec_;
  sig::SincInterpolator interp_;

  Pattern pattern_;
  std::vector<CVec> residual_;
  std::vector<std::vector<CVec>> imgs_;  // [p][c] substituted-image accounts
  std::vector<std::vector<MpLink>> links_;
  std::vector<MpPacket> pkts_;
  std::vector<double> noise_;
  CVec u_;     ///< chunk-symbol scratch
  CVec img_;   ///< render scratch
  CVec view_;  ///< peel add-back view scratch
  std::size_t chunks_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace

AlgebraicMpDecoder::AlgebraicMpDecoder(AlgebraicMpOptions opt,
                                       phy::ReceiverConfig rxcfg)
    : opt_(opt), rxcfg_(rxcfg) {}

DecodeResult AlgebraicMpDecoder::decode(
    std::span<const CollisionInput> collisions,
    std::span<const phy::SenderProfile> profiles, std::size_t num_packets,
    std::size_t packet_syms) const {
  if (collisions.empty() || num_packets == 0) return {};
  for (const auto& ci : collisions)
    if (ci.samples == nullptr)
      throw std::invalid_argument("AlgebraicMpDecoder: null samples");
  MpEngine engine(collisions, profiles, num_packets, packet_syms, opt_,
                  rxcfg_);
  return engine.run();
}

}  // namespace zz::zigzag
