#include "zz/zigzag/scheduler.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace zz::zigzag {
namespace {

// Is symbol k of `pl` free of interference from unknown symbols of every
// other placement in the same collision?
bool symbol_clean(const Pattern& pattern,
                  const std::vector<std::vector<std::uint8_t>>& known,
                  const std::vector<Pattern::Placement>& coll,
                  std::size_t self, std::size_t k, std::ptrdiff_t guard) {
  const auto& pl = coll[self];
  const std::ptrdiff_t pos = pl.offset + static_cast<std::ptrdiff_t>(k);
  for (std::size_t oi = 0; oi < coll.size(); ++oi) {
    if (oi == self) continue;
    const auto& other = coll[oi];
    const auto olen = static_cast<std::ptrdiff_t>(pattern.lengths[other.packet]);
    // Unknown symbols j of `other` with |other.offset + j - pos| <= guard.
    const std::ptrdiff_t jlo =
        std::max<std::ptrdiff_t>(0, pos - guard - other.offset);
    const std::ptrdiff_t jhi =
        std::min<std::ptrdiff_t>(olen - 1, pos + guard - other.offset);
    for (std::ptrdiff_t j = jlo; j <= jhi; ++j)
      if (!known[other.packet][static_cast<std::size_t>(j)]) return false;
  }
  return true;
}

}  // namespace

ScheduleResult greedy_schedule(const Pattern& pattern, std::size_t guard) {
  for (const auto& coll : pattern.collisions)
    for (const auto& pl : coll)
      if (pl.packet >= pattern.lengths.size())
        throw std::invalid_argument("greedy_schedule: placement out of range");

  const std::size_t npk = pattern.lengths.size();
  std::vector<std::vector<std::uint8_t>> known(npk);
  for (std::size_t p = 0; p < npk; ++p) known[p].assign(pattern.lengths[p], 0);

  ScheduleResult res;
  const auto g = static_cast<std::ptrdiff_t>(guard);

  bool progress = true;
  while (progress) {
    progress = false;
    ++res.rounds;
    for (std::size_t c = 0; c < pattern.collisions.size(); ++c) {
      const auto& coll = pattern.collisions[c];
      for (std::size_t self = 0; self < coll.size(); ++self) {
        const auto& pl = coll[self];
        const std::size_t len = pattern.lengths[pl.packet];
        std::size_t k = 0;
        while (k < len) {
          if (known[pl.packet][k] ||
              !symbol_clean(pattern, known, coll, self, k, g)) {
            ++k;
            continue;
          }
          // Extend a maximal decodable run.
          std::size_t k1 = k;
          while (k1 < len && !known[pl.packet][k1] &&
                 symbol_clean(pattern, known, coll, self, k1, g))
            ++k1;
          for (std::size_t j = k; j < k1; ++j) known[pl.packet][j] = 1;
          res.steps.push_back({c, pl.packet, k, k1});
          progress = true;
          k = k1;
        }
      }
    }
  }

  res.complete = true;
  for (std::size_t p = 0; p < npk; ++p) {
    const bool all = std::all_of(known[p].begin(), known[p].end(),
                                 [](std::uint8_t v) { return v != 0; });
    if (!all) {
      res.complete = false;
      res.undecoded_packets.push_back(p);
    }
  }
  return res;
}

std::size_t equation_conditioning(const Pattern& pattern,
                                  std::size_t collision) {
  if (collision >= pattern.collisions.size())
    throw std::invalid_argument("equation_conditioning: collision out of range");
  const auto& coll = pattern.collisions[collision];
  std::size_t best = static_cast<std::size_t>(-1);
  for (std::size_t a = 0; a < coll.size(); ++a)
    for (std::size_t b = a + 1; b < coll.size(); ++b) {
      const auto d = coll[a].offset - coll[b].offset;
      best = std::min(best, static_cast<std::size_t>(d < 0 ? -d : d));
    }
  return best;
}

std::vector<std::size_t> order_equations(const Pattern& pattern) {
  std::vector<std::size_t> order(pattern.collisions.size());
  for (std::size_t c = 0; c < order.size(); ++c) order[c] = c;
  std::vector<std::size_t> cond(order.size());
  for (std::size_t c = 0; c < order.size(); ++c)
    cond[c] = equation_conditioning(pattern, c);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return cond[a] > cond[b]; });
  return order;
}

bool pairwise_condition_holds(const Pattern& pattern) {
  const std::size_t npk = pattern.lengths.size();
  // For every unordered pair: the set of relative offsets across collisions
  // where both appear, and whether either ever appears without the other.
  for (std::size_t a = 0; a < npk; ++a) {
    for (std::size_t b = a + 1; b < npk; ++b) {
      std::set<std::ptrdiff_t> rel;
      bool ever_together = false;
      bool ever_apart = false;
      for (const auto& coll : pattern.collisions) {
        std::ptrdiff_t oa = 0, ob = 0;
        bool ha = false, hb = false;
        for (const auto& pl : coll) {
          if (pl.packet == a) {
            ha = true;
            oa = pl.offset;
          }
          if (pl.packet == b) {
            hb = true;
            ob = pl.offset;
          }
        }
        if (ha && hb) {
          ever_together = true;
          rel.insert(oa - ob);
        } else if (ha != hb) {
          ever_apart = true;
        }
      }
      if (ever_together && rel.size() < 2 && !ever_apart) return false;
    }
  }
  return true;
}

}  // namespace zz::zigzag
