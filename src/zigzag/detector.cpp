#include "zz/zigzag/detector.h"

#include <algorithm>
#include <cmath>

#include "zz/common/mathutil.h"
#include "zz/phy/preamble.h"

namespace zz::zigzag {

CollisionDetector::CollisionDetector(DetectorConfig cfg) : cfg_(cfg) {}

double CollisionDetector::threshold(double snr_linear,
                                    double noise_floor) const {
  return cfg_.beta * cfg_.calibration *
         phy::preamble_waveform_energy(cfg_.preamble_len) *
         std::sqrt(std::max(snr_linear, 1e-6) * std::max(noise_floor, 1e-12));
}

sig::SlidingCorrelator& CollisionDetector::correlator() const {
  if (!corr_)
    corr_.emplace(phy::preamble_waveform(cfg_.preamble_len));
  return *corr_;
}

std::vector<double> CollisionDetector::correlation_profile(
    const CVec& rx, double coarse_freq) const {
  const CVec corr = correlator().correlate(rx, coarse_freq);
  std::vector<double> mag(corr.size());
  for (std::size_t i = 0; i < corr.size(); ++i) mag[i] = std::abs(corr[i]);
  return mag;
}

std::vector<Detection> CollisionDetector::detect(
    const CVec& rx, std::span<const phy::SenderProfile> profiles) const {
  const double noise = phy::estimate_noise_floor_robust(rx);
  std::vector<Detection> out;

  // The preamble is common to all clients; hypotheses differ only in the
  // frequency compensation. The stream's block transforms are prepared
  // once and shared: each client hypothesis costs one reference rotation
  // plus the inverse transforms, not a fresh O(N·M) correlation. Candidate
  // starts found under every hypothesis are then resolved to a client by
  // comparing the *measured* preamble phase slope against the clients'
  // association-time offsets — the correlation magnitude alone barely
  // discriminates, and a wrong client assignment would seed the decoder
  // with the wrong δf̂.
  sig::SlidingCorrelator& corr = correlator();
  corr.prepare(rx);
  if (corr.positions() == 0) return out;
  const double eref = corr.reference_energy();
  const std::vector<double> ewin =
      sig::windowed_energy(rx, corr.reference().size());

  struct Candidate {
    std::size_t pos;
    double score;  ///< ρ in threshold units under the hypothesis that found it
  };
  std::vector<Candidate> cands;
  CVec gamma;
  std::vector<double> rho(corr.positions());
  for (const auto& prof : profiles) {
    corr.correlate(prof.freq_offset, gamma);
    const double h2 = db_to_lin(prof.snr_db) * std::max(noise, 1e-12);
    const double peak_ref =
        cfg_.calibration * eref * std::sqrt(std::max(h2, 1e-12));
    const double gate = cfg_.energy_gate * eref * h2;
    for (std::size_t d = 0; d < gamma.size(); ++d)
      rho[d] = ewin[d] < gate ? 0.0 : std::abs(gamma[d]) / peak_ref;
    for (const std::size_t pk : sig::find_peaks(rho, cfg_.beta, cfg_.min_separation))
      cands.push_back({pk, rho[pk]});
  }

  // Cross-hypothesis dedup by non-maximum suppression: the strongest
  // candidate claims its neighbourhood. First-hypothesis-wins merging used
  // to let a weaker spike absorb a true start found under a later client's
  // compensation.
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  std::vector<std::size_t> positions;
  for (const auto& c : cands) {
    bool merged = false;
    for (const std::size_t existing : positions)
      if (std::llabs(static_cast<long long>(existing) -
                     static_cast<long long>(c.pos)) <=
          static_cast<long long>(cfg_.min_separation)) {
        merged = true;
        break;
      }
    if (!merged) positions.push_back(c.pos);
  }

  // Power-step statistic for the optional gate: mean |rx|² over one
  // reference length after the candidate minus the same before it. A true
  // start adds the new sender's |h|²; an in-packet excursion adds nothing.
  const std::size_t step_win = corr.reference().size();
  const auto mean_power = [&](std::size_t lo, std::size_t hi) {
    if (hi <= lo) return 0.0;
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += std::norm(rx[i]);
    return acc / static_cast<double>(hi - lo);
  };

  for (const std::size_t pk : positions) {
    const double power_step =
        cfg_.power_step_gate > 0.0
            ? mean_power(pk, std::min(pk + step_win, rx.size())) -
                  mean_power(pk > step_win ? pk - step_win : 0, pk)
            : 0.0;
    // Slope-based offset measurement (client-agnostic).
    const auto probe = phy::estimate_at_peak(rx, pk, 0.0, cfg_.preamble_len);

    // Peak-height consistency per client, in (0, 1]: ρ_i ≈ 1 when the
    // measured |Γ'| matches client i's expected E_pre·ĥ_i. min(ρ, 1/ρ)
    // ranks both too-weak spikes (threshold grazers) AND too-strong ones
    // (a stronger packet's data excursion crossing a weaker client's
    // threshold) below genuine starts, so the max_detections cap and the
    // decoder's phantom triage keep the real packets. The best consistency
    // over all clients is the detection's metric; the client itself is
    // resolved by the measured phase slope among the plausible ones —
    // magnitude separates power classes, the slope separates within one.
    // Consistency references the PHYSICAL expectation E_pre·ĥ — κ belongs
    // to the detection threshold only; folding it in here would make every
    // true peak score 1/κ and lose to data excursions near a weaker
    // client's height.
    std::vector<double> cons(profiles.size());
    double best_cons = 0.0;
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const double h2 =
          db_to_lin(profiles[pi].snr_db) * std::max(noise, 1e-12);
      // Power-step gate: this client could only have started here if the
      // received power rose by (a good fraction of) its |h|².
      if (cfg_.power_step_gate > 0.0 &&
          power_step < cfg_.power_step_gate * h2) {
        cons[pi] = 0.0;
        continue;
      }
      const double rho =
          probe.metric / (eref * std::sqrt(std::max(h2, 1e-12)));
      cons[pi] = rho > 1.0 ? 1.0 / rho : rho;
      best_cons = std::max(best_cons, cons[pi]);
    }
    // Every client gated out on the power step: the spike rides on power
    // that was already flowing — an in-packet excursion, not a start.
    if (cfg_.power_step_gate > 0.0 && best_cons == 0.0) continue;
    int best = -1;
    double best_d = 1e9;
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      if (cons[pi] <= 0.0 || cons[pi] < 0.8 * best_cons) continue;
      const double d = std::abs(probe.freq_offset - profiles[pi].freq_offset);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(pi);
      }
    }
    const double coarse = best >= 0 ? profiles[static_cast<std::size_t>(best)].freq_offset : 0.0;
    const auto pe = phy::estimate_at_peak(rx, pk, coarse, cfg_.preamble_len);
    Detection d;
    d.origin = pe.origin;
    d.mu = pe.mu;
    d.h = pe.h;
    d.freq_offset = coarse;
    d.metric = best_cons;
    d.profile_index = best;
    out.push_back(d);
  }

  if (out.size() > cfg_.max_detections) {
    std::sort(out.begin(), out.end(),
              [](const Detection& a, const Detection& b) {
                return a.metric > b.metric;
              });
    out.resize(cfg_.max_detections);
  }
  std::sort(out.begin(), out.end(),
            [](const Detection& a, const Detection& b) {
              return a.origin < b.origin;
            });
  return out;
}

}  // namespace zz::zigzag
