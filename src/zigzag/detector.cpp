#include "zz/zigzag/detector.h"

#include <algorithm>
#include <cmath>

#include "zz/common/mathutil.h"
#include "zz/phy/preamble.h"
#include "zz/signal/correlate.h"

namespace zz::zigzag {

CollisionDetector::CollisionDetector(DetectorConfig cfg) : cfg_(cfg) {}

double CollisionDetector::threshold(double snr_linear,
                                    double noise_floor) const {
  return cfg_.beta * phy::preamble_waveform_energy(cfg_.preamble_len) *
         std::sqrt(std::max(snr_linear, 1e-6) * std::max(noise_floor, 1e-12));
}

std::vector<double> CollisionDetector::correlation_profile(
    const CVec& rx, double coarse_freq) const {
  const CVec corr = sig::sliding_correlation(
      phy::preamble_waveform(cfg_.preamble_len), rx, coarse_freq);
  std::vector<double> mag(corr.size());
  for (std::size_t i = 0; i < corr.size(); ++i) mag[i] = std::abs(corr[i]);
  return mag;
}

std::vector<Detection> CollisionDetector::detect(
    const CVec& rx, std::span<const phy::SenderProfile> profiles) const {
  const double noise = phy::estimate_noise_floor(rx);
  std::vector<Detection> out;

  // The preamble is common to all clients; hypotheses differ only in the
  // frequency compensation. Find candidate starts under every hypothesis,
  // then resolve each position's client by comparing the *measured*
  // preamble phase slope against the clients' association-time offsets —
  // the correlation magnitude alone barely discriminates, and a wrong
  // client assignment would seed the decoder with the wrong δf̂.
  std::vector<std::size_t> positions;
  for (const auto& prof : profiles) {
    const CVec corr = sig::sliding_correlation(
        phy::preamble_waveform(cfg_.preamble_len), rx, prof.freq_offset);
    const double thr = threshold(db_to_lin(prof.snr_db), noise);
    for (const std::size_t pk : sig::find_peaks(corr, thr, cfg_.min_separation)) {
      bool merged = false;
      for (auto& existing : positions)
        if (std::llabs(static_cast<long long>(existing) -
                       static_cast<long long>(pk)) <=
            static_cast<long long>(cfg_.min_separation)) {
          merged = true;
          break;
        }
      if (!merged) positions.push_back(pk);
    }
  }

  for (const std::size_t pk : positions) {
    // Slope-based offset measurement (client-agnostic).
    const auto probe = phy::estimate_at_peak(rx, pk, 0.0, cfg_.preamble_len);
    int best = -1;
    double best_d = 1e9;
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const double d = std::abs(probe.freq_offset - profiles[pi].freq_offset);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(pi);
      }
    }
    const double coarse = best >= 0 ? profiles[static_cast<std::size_t>(best)].freq_offset : 0.0;
    const auto pe = phy::estimate_at_peak(rx, pk, coarse, cfg_.preamble_len);
    Detection d;
    d.origin = pe.origin;
    d.mu = pe.mu;
    d.h = pe.h;
    d.freq_offset = coarse;
    d.metric = pe.metric;
    d.profile_index = best;
    out.push_back(d);
  }

  if (out.size() > cfg_.max_detections) {
    std::sort(out.begin(), out.end(),
              [](const Detection& a, const Detection& b) {
                return a.metric > b.metric;
              });
    out.resize(cfg_.max_detections);
  }
  std::sort(out.begin(), out.end(),
            [](const Detection& a, const Detection& b) {
              return a.origin < b.origin;
            });
  return out;
}

}  // namespace zz::zigzag
