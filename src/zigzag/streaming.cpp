#include "zz/zigzag/streaming.h"

#include <algorithm>
#include <cmath>

#include "zz/common/check.h"
#include "zz/phy/preamble.h"

namespace zz::zigzag {

StreamingReceiver::StreamingReceiver(StreamingOptions opt)
    : opt_(std::move(opt)),
      rx_(opt_.receiver),
      ring_(4096),
      framer_(opt_.framer),
      scan_(phy::preamble_waveform(opt_.receiver.detector.preamble_len)) {}

void StreamingReceiver::add_client(const phy::SenderProfile& profile) {
  rx_.add_client(profile);
  hint_freqs_.push_back(profile.freq_offset);
  // Expected-peak-height threshold, same statistic as the offline detector
  // (§4.2.1: |Γ'| ≈ E_pre·ĥ at a true start) with the assumed noise floor
  // standing in for the per-window estimate the offline pass will make.
  const DetectorConfig& dcfg = opt_.receiver.detector;
  const double snr_linear = std::pow(10.0, profile.snr_db / 10.0);
  hint_thresholds_.push_back(
      dcfg.beta * dcfg.calibration *
      phy::preamble_waveform_energy(dcfg.preamble_len) *
      std::sqrt(std::max(snr_linear, 1e-6) *
                std::max(opt_.hint_noise_floor, 1e-12)));
}

void StreamingReceiver::add_clients(
    std::span<const phy::SenderProfile> profiles) {
  for (const auto& p : profiles) add_client(p);
}

void StreamingReceiver::ensure_scanner(std::uint64_t window_begin) {
  if (scanner_live_ && scan_base_ == window_begin) return;
  scan_.begin_stream();
  scan_base_ = window_begin;
  scan_fed_ = window_begin;
  scan_next_ = 0;
  any_hint_ = false;
  scanner_live_ = true;
}

void StreamingReceiver::feed_scanner(std::uint64_t upto) {
  if (upto <= scan_fed_) return;
  ring_.copy_range(scan_fed_, upto, scan_chunk_);
  scan_.extend(scan_chunk_);
  last_work_ += scan_chunk_.size();
  scan_fed_ = upto;
}

void StreamingReceiver::scan_hints(std::size_t limit) {
  if (limit <= scan_next_) return;
  const std::size_t count = limit - scan_next_;
  if (hint_freqs_.empty()) {
    scan_next_ = limit;
    return;
  }
  // Every client hypothesis shares the scanner's block transforms; only
  // the short reference kernel is rebuilt per hypothesis.
  scan_best_.assign(count, 0.0);
  for (std::size_t c = 0; c < hint_freqs_.size(); ++c) {
    scan_.correlate_range(hint_freqs_[c], scan_next_, limit, scan_corr_);
    const double thr = hint_thresholds_[c];
    for (std::size_t i = 0; i < count; ++i)
      scan_best_[i] = std::max(scan_best_[i], std::abs(scan_corr_[i]) / thr);
  }
  last_work_ += count * hint_freqs_.size();
  const std::size_t min_sep = opt_.receiver.detector.min_separation;
  for (std::size_t i = 0; i < count; ++i) {
    if (scan_best_[i] < 1.0) continue;
    const std::uint64_t pos = scan_base_ + scan_next_ + i;
    // One hint per packet start: threshold runs around one peak collapse.
    if (any_hint_ && pos - last_hint_ < min_sep) continue;
    framer_.note_preamble(pos);
    last_hint_ = pos;
    any_hint_ = true;
    ++stats_.preamble_hints;
  }
  scan_next_ = limit;
}

void StreamingReceiver::handle_closed(const phy::FrameWindow& w,
                                      std::vector<StreamDelivered>& out) {
  // Flush the hint scan over the whole window (the stream under it is now
  // fixed, so the tail alignments past the last finalized block evaluate
  // identically regardless of how the window arrived in pushes). Closure
  // already snapshotted the tracker state into w.final_state.
  ensure_scanner(w.begin);
  feed_scanner(w.end);
  scan_hints(scan_.stream_positions());

  // Decode the materialized window through the unmodified offline engine.
  // The window IS the logged reception — bit for bit — so everything
  // downstream (detector, matcher, chunk decoder, DecodeCache, pending
  // store) behaves exactly as the offline route.
  ring_.copy_range(w.begin, w.end, window_buf_);
  last_work_ += window_buf_.size();
  ++stats_.windows;
  if (w.final_state == phy::SyncState::JointPending) ++stats_.joint_windows;
  for (auto& d : rx_.receive(window_buf_))
    out.push_back(StreamDelivered{std::move(d), w.begin, w.end, w.decided_at});

  ring_.drop_before(w.end);
  scanner_live_ = false;
}

std::vector<StreamDelivered> StreamingReceiver::push(const cplx* data,
                                                     std::size_t count) {
  const ReentryScope guard(busy_, "StreamingReceiver::push");
  last_work_ = 0;
  stats_.samples_in += count;
  ring_.push(data, count);
  stats_.max_retained = std::max(stats_.max_retained, ring_.size());
  windows_.clear();
  framer_.push(data, count, windows_);
  last_work_ += 2 * count;  // ring ingest + framing

  std::vector<StreamDelivered> out;
  for (const auto& w : windows_) handle_closed(w, out);

  if (framer_.in_window()) {
    // Advance the online scan; only alignments whose overlap-save block is
    // final are evaluated, so hints are identical under any chunking.
    ensure_scanner(framer_.window_begin());
    feed_scanner(ring_.end_pos());
    scan_hints(scan_.final_positions());
  } else {
    // Idle medium: nothing retained — the ring stays bounded by the
    // largest window, not by stream length.
    ring_.drop_before(ring_.end_pos());
  }
  stats_.max_push_work = std::max(stats_.max_push_work, last_work_);
  return out;
}

std::vector<StreamDelivered> StreamingReceiver::finish() {
  const ReentryScope guard(busy_, "StreamingReceiver::finish");
  last_work_ = 0;
  windows_.clear();
  framer_.finish(windows_);
  std::vector<StreamDelivered> out;
  for (const auto& w : windows_) handle_closed(w, out);
  ring_.drop_before(ring_.end_pos());
  stats_.max_push_work = std::max(stats_.max_push_work, last_work_);
  return out;
}

}  // namespace zz::zigzag
