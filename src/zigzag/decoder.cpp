#include "zz/zigzag/decoder.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "zz/chan/channel.h"
#include "zz/common/check.h"
#include "zz/common/mathutil.h"
#include "zz/common/mutex.h"
#include "zz/common/thread_annotations.h"
#include "zz/phy/preamble.h"
#include "zz/phy/scrambler.h"
#include "zz/phy/tracker.h"
#include "zz/phy/transmitter.h"
#include "zz/signal/scratch.h"

namespace zz::zigzag {

// ------------------------------------------------------------- DecodeCache

struct DecodeCache::Impl {
  struct Entry {
    std::uint64_t check = 0;  ///< second, independent fingerprint
    phy::ChunkDecoder::Result res;
    chan::ChannelParams params_out;
    double noise_var_out = 0.0;
    bool noise_seeded_out = false;
  };
  // Concurrency contract (docs/ANALYSIS.md §3, pinned by
  // DecodeCacheStress.*): the cache is internally synchronized so decoder
  // engines on different threads can share one instance — the shared-cache
  // design the AP-farm scale-out is written against. mu guards the map and
  // the counters; entries are immutable once published (first writer wins
  // on a double miss), so a reference handed out under the lock stays
  // valid and race-free afterwards — std::unordered_map never moves
  // elements on insert/rehash, and nothing erases entries while decoders
  // run (clear() requires external quiescence).
  mutable Mutex mu;
  std::unordered_map<std::uint64_t, Entry> map ZZ_GUARDED_BY(mu);
  std::size_t hits ZZ_GUARDED_BY(mu) = 0;
  std::size_t misses ZZ_GUARDED_BY(mu) = 0;
};

DecodeCache::DecodeCache() : impl_(std::make_unique<Impl>()) {}
DecodeCache::~DecodeCache() = default;

void DecodeCache::clear() {
  MutexLock lock(impl_->mu);
  impl_->map.clear();
  impl_->hits = 0;
  impl_->misses = 0;
}
std::size_t DecodeCache::size() const {
  MutexLock lock(impl_->mu);
  return impl_->map.size();
}
std::size_t DecodeCache::hits() const {
  MutexLock lock(impl_->mu);
  return impl_->hits;
}
std::size_t DecodeCache::misses() const {
  MutexLock lock(impl_->mu);
  return impl_->misses;
}

/// Engine-side access to the cache internals (the engine lives in an
/// anonymous namespace below and cannot be befriended directly).
struct DecodeCacheAccess {
  static DecodeCache::Impl& impl(DecodeCache& c) { return *c.impl_; }
};

DecodeCacheShards::DecodeCacheShards(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<DecodeCache>());
}

DecodeCache& DecodeCacheShards::shard(std::size_t worker) {
  return *shards_[worker % shards_.size()];
}
const DecodeCache& DecodeCacheShards::shard(std::size_t worker) const {
  return *shards_[worker % shards_.size()];
}

void DecodeCacheShards::clear() {
  for (auto& s : shards_) s->clear();
}
std::size_t DecodeCacheShards::entries() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->size();
  return n;
}
std::size_t DecodeCacheShards::hits() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->hits();
  return n;
}
std::size_t DecodeCacheShards::misses() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->misses();
  return n;
}

namespace {

/// Dual 64-bit FNV-1a over 64-bit words: a 128-bit bit-level fingerprint of
/// a chunk decode's inputs. Two decodes with equal fingerprints have equal
/// inputs for all practical purposes (collision odds ~2^-128 per pair), so
/// replaying a cached result preserves bit-identity. Word-wise mixing keeps
/// the sample-buffer hashing far cheaper than the decode it guards.
struct Fingerprint {
  std::uint64_t a = 14695981039346656037ull;
  std::uint64_t b = 14695981039346656037ull ^ 0x9e3779b97f4a7c15ull;

  void u64(std::uint64_t v) {
    a = (a ^ v) * 1099511628211ull;
    b = (b ^ (v + 0x9e3779b97f4a7c15ull)) * 0x100000001b3ull ^ (b >> 29);
  }
  void f64(double v) {
    std::uint64_t w;
    std::memcpy(&w, &v, sizeof w);
    u64(w);
  }
  void cv(const CVec& v) {
    // cplx is two doubles; hash the raw 64-bit lanes.
    const auto* p = reinterpret_cast<const unsigned char*>(v.data());
    for (std::size_t i = 0; i < v.size() * 2; ++i) {
      std::uint64_t w;
      std::memcpy(&w, p + i * sizeof(std::uint64_t), sizeof w);
      u64(w);
    }
  }
};

// Size pins for every struct cached_decode() fingerprints field-by-field.
// Adding a member to one of these without feeding it into the fingerprint
// makes two inequivalent decodes collide and replay each other's results —
// a silent wrong-answer bug (this is also what the zz-decodecache-
// fingerprint-complete tidy check enforces structurally). A new member
// changes sizeof on this pinned ABI and fails the build here, forcing the
// author to visit the fingerprint feed; update BOTH the hash and the pin.
#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(sig::Fir) == 32,
              "Fir changed: update cached_decode's fingerprint and this pin");
static_assert(sizeof(chan::ChannelParams) == 72,
              "ChannelParams changed: update cached_decode's fingerprint "
              "and this pin");
static_assert(sizeof(phy::LinkEstimate) == 120,
              "LinkEstimate changed: update cached_decode's fingerprint "
              "and this pin");
static_assert(sizeof(phy::SymbolSpec) == 32,
              "SymbolSpec changed: update cached_decode's fingerprint "
              "and this pin");
static_assert(sizeof(phy::TrackingGains) == 48,
              "TrackingGains changed: update cached_decode's fingerprint "
              "and this pin");
#endif

using phy::Modulation;

// Pulse-energy weights used in the interference presence profile: a symbol
// deposits most of its power within ±2 samples of its centre, and windowed
// sinc tails out to the interpolation half-width. Normalized so that a
// fully-present packet contributes ≈ its per-sample power (symbols arrive
// every kSps samples, so each sample sees ~sum(w)/kSps of overlapping
// weight).
constexpr std::ptrdiff_t kMainSpan = 2;
constexpr std::ptrdiff_t kNearSpan = 6;
constexpr std::ptrdiff_t kFarSpan = 16;
constexpr double kWeightNorm =
    1.0 / ((5.0 * 1.0 + 8.0 * 0.05 + 20.0 * 0.012) / chan::kSps);
constexpr double kMainW = 1.0 * kWeightNorm;
constexpr double kNearW = 0.05 * kWeightNorm;
constexpr double kFarW = 0.012 * kWeightNorm;

// Required SINR (linear) for decoding a symbol of modulation `m` on top of
// residual interference — the capture-effect criterion of Fig 4-1(d,e).
double sinr_required(Modulation m, double base_db) {
  double extra_db = 0.0;
  switch (m) {
    case Modulation::BPSK: extra_db = 0.0; break;
    case Modulation::QPSK: extra_db = 3.0; break;
    case Modulation::QAM16: extra_db = 10.0; break;
    case Modulation::QAM64: extra_db = 16.0; break;
  }
  return db_to_lin(base_db + extra_db);
}

struct Link {
  bool present = false;
  std::ptrdiff_t origin = 0;
  phy::LinkEstimate est;      ///< evolving (tracking on)
  phy::LinkEstimate initial;  ///< detection-time (tracking-off ablation)
  double last_track_pos = 0.0;
  /// Fixed reference power for presence bookkeeping: additions and removals
  /// must use the same value or phantom interference accumulates as the
  /// gain estimate evolves between them.
  double pres_power = 0.0;
};

struct PacketCtx {
  std::size_t len = 0;  ///< believed symbol count (capped until header known)
  bool length_known = false;
  std::optional<phy::FrameHeader> header;
  phy::FrameLayout layout{};
  Modulation body_mod = Modulation::BPSK;
  int profile_index = -1;
  CVec decided;
  std::vector<std::uint8_t> known;
  /// Header symbols re-encoded for each retry-flag variant (§4.2.2), built
  /// when the header parses; collisions carrying the other variant render
  /// through these instead of the decided symbols.
  CVec hdr_variant[2];
  double metric = 0.0;  ///< strongest detection metric (phantom triage)
  /// A detection that never produced a parseable header and stalled the
  /// schedule — most likely a correlation false positive (§5.3a notes these
  /// are harmless). Ghosts stop scheduling and stop counting as
  /// interference.
  bool ghost = false;
};

class Engine {
 public:
  Engine(std::span<const CollisionInput> collisions,
         std::span<const phy::SenderProfile> profiles, std::size_t num_packets,
         const DecodeOptions& opt, const phy::ReceiverConfig& rxcfg,
         DecodeCache* cache, sig::ScratchArena* ext_arena)
      : opt_(opt),
        rxcfg_(rxcfg),
        profiles_(profiles),
        inputs_(collisions),
        C_(collisions.size()),
        P_(num_packets),
        dec_(opt.decoder_gains, opt.interp_half_width),
        cache_(cache),
        arena_(ext_arena ? *ext_arena : own_arena_) {
    init();
  }

  DecodeResult run() {
    pass(/*backward=*/false);
    if (opt_.backward_pass && !all_known()) {
      // Bootstrap from the packet tails (§4.3b) to finish whatever the
      // forward direction could not reach — e.g. when the offsets are so
      // close that the forward zigzag stalls mid-packet.
      harmonize_frequencies();
      pass(/*backward=*/true);
    }
    if (opt_.refinement_passes > 0) harmonize_frequencies();
    for (int r = 0; r < opt_.refinement_passes; ++r) refinement_pass();
    return finalize();
  }

  // A sender's oscillator offset is one number, but each (packet,
  // collision) link tracks it independently and the less-exercised links
  // drift. Before re-decoding from the packet tails (where extrapolation
  // distances are largest), copy the best-tracked link's frequency to its
  // siblings, rotating each ĥ to keep the phase continuous at that link's
  // last validated position.
  void harmonize_frequencies() {
    if (!opt_.reconstruction_tracking) return;
    for (std::size_t p = 0; p < P_; ++p) {
      int best = -1;
      for (std::size_t c = 0; c < C_; ++c) {
        if (!links_[p][c].present) continue;
        if (best < 0 ||
            links_[p][c].est.noise_var <
                links_[p][static_cast<std::size_t>(best)].est.noise_var)
          best = static_cast<int>(c);
      }
      if (best < 0) continue;
      const double f = links_[p][static_cast<std::size_t>(best)].est.params.freq_offset;
      for (std::size_t c = 0; c < C_; ++c) {
        Link& l = links_[p][c];
        if (!l.present || c == static_cast<std::size_t>(best)) continue;
        const double df = f - l.est.params.freq_offset;
        l.est.params.freq_offset = f;
        const double comp = -kTwoPi * df * l.last_track_pos;
        l.est.params.h *= cplx{std::cos(comp), std::sin(comp)};
      }
    }
  }

 private:
  // ---------------------------------------------------------------- setup
  void init() {
    // decode() screens empty inputs; an engine constructed around zero
    // collisions or packets is a caller bug, not a degenerate decode.
    ZZ_CHECK_GT(C_, 0u);
    ZZ_CHECK_GT(P_, 0u);
    residual_.resize(C_);
    imgs_.assign(P_, std::vector<CVec>(C_));
    pres_.assign(C_, std::vector<std::vector<double>>(P_));
    links_.assign(P_, std::vector<Link>(C_));
    pkts_.resize(P_);
    noise_.resize(C_);
    for (int bank = 0; bank < 2; ++bank) {
      soft_[bank].assign(P_, std::vector<CVec>(C_));
      soft_ok_[bank].assign(P_, std::vector<std::vector<std::uint8_t>>(C_));
      bank_nv_[bank].assign(P_, std::vector<double>(C_, 0.0));
    }

    for (std::size_t c = 0; c < C_; ++c) {
      residual_[c] = *inputs_[c].samples;
      noise_[c] = phy::estimate_noise_floor(residual_[c]);
    }

    // Per-(packet, collision) links and packet contexts.
    for (std::size_t c = 0; c < C_; ++c) {
      for (const auto& pl : inputs_[c].placements) {
        if (pl.packet >= P_)
          throw std::invalid_argument("ZigZagDecoder: placement out of range");
        Link& l = links_[pl.packet][c];
        l.present = true;
        l.origin = pl.detection.origin;
        l.est.params.h = pl.detection.h;
        l.est.params.freq_offset = pl.detection.freq_offset;
        l.est.params.mu = pl.detection.mu;
        PacketCtx& pk = pkts_[pl.packet];
        if (pl.detection.profile_index >= 0)
          pk.profile_index = pl.detection.profile_index;
        if (pk.profile_index >= 0 &&
            static_cast<std::size_t>(pk.profile_index) < profiles_.size()) {
          const auto& prof = profiles_[static_cast<std::size_t>(pk.profile_index)];
          l.est.params.freq_offset = prof.freq_offset;
          if (opt_.isi_reconstruction && !prof.isi.is_identity()) {
            l.est.params.isi = prof.isi;
            l.est.equalizer = prof.equalizer;
          }
          pk.body_mod = prof.mod;
        }
        l.est.noise_var = noise_[c];
        l.initial = l.est;
        l.pres_power = std::norm(l.est.params.h);
        pk.metric = std::max(pk.metric, pl.detection.metric);
      }
    }

    // Believed packet lengths: until the header is decoded, assume the
    // packet may extend to the end of the shortest buffer it appears in.
    for (std::size_t p = 0; p < P_; ++p) {
      std::size_t cap = 1u << 20;
      for (std::size_t c = 0; c < C_; ++c) {
        if (!links_[p][c].present) continue;
        const auto room = static_cast<std::ptrdiff_t>(residual_[c].size()) -
                          links_[p][c].origin - 40;
        cap = std::min(cap, static_cast<std::size_t>(
                                std::max<std::ptrdiff_t>(room, 0) /
                                static_cast<std::ptrdiff_t>(chan::kSps)));
      }
      PacketCtx& pk = pkts_[p];
      pk.len = cap;
      pk.decided.assign(pk.len, cplx{0.0, 0.0});
      pk.known.assign(pk.len, 0);
      for (int bank = 0; bank < 2; ++bank)
        for (std::size_t c = 0; c < C_; ++c) {
          soft_[bank][p][c].assign(pk.len, cplx{});
          soft_ok_[bank][p][c].assign(pk.len, 0);
        }
      // Preamble symbols are known a priori.
      const CVec& pre = phy::preamble(rxcfg_.preamble_len);
      for (std::size_t k = 0; k < pre.size() && k < pk.len; ++k) {
        pk.decided[k] = pre[k];
        pk.known[k] = 1;
      }
    }

    rebuild_presence();
    // Subtract the a-priori-known preambles everywhere (the detector already
    // estimated each copy's channel from them).
    for (std::size_t p = 0; p < P_; ++p)
      subtract_everywhere(p, 0, std::min<std::size_t>(rxcfg_.preamble_len,
                                                      pkts_[p].len));
  }

  // Presence of every not-yet-subtracted symbol; callers subtract ranges as
  // images are cancelled out of the residual.
  void rebuild_presence() {
    for (std::size_t c = 0; c < C_; ++c)
      for (std::size_t p = 0; p < P_; ++p) {
        pres_[c][p].assign(residual_[c].size(), 0.0);
        if (!links_[p][c].present) continue;
        const double power = links_[p][c].pres_power;
        for (std::size_t k = 0; k < pkts_[p].len; ++k)
          add_presence(c, p, k, power, +1.0);
      }
  }

  double sym_pos(std::size_t p, std::size_t c, double k) const {
    const Link& l = links_[p][c];
    return static_cast<double>(l.origin) +
           chan::kSps * k * (1.0 + l.est.params.drift) + l.est.params.mu;
  }

  // Presence bookkeeping must use a FIXED geometry. A symbol's presence is
  // added at init and removed when the symbol is subtracted — often many
  // chunks later, after the timing tracker has moved μ̂. Positioning both
  // operations with the evolving estimate leaves phantom interference
  // wherever the rounding flips between them, which stalls the schedule and
  // gets real packets ghosted as false positives (the Fig 5-3 high-SNR
  // anomaly). Detection-time geometry is used for every presence query.
  double pres_pos(std::size_t p, std::size_t c, double k) const {
    const Link& l = links_[p][c];
    return static_cast<double>(l.origin) +
           chan::kSps * k * (1.0 + l.initial.params.drift) +
           l.initial.params.mu;
  }

  void add_presence(std::size_t c, std::size_t p, std::size_t k, double power,
                    double sign) {
    const auto pos = static_cast<std::ptrdiff_t>(std::lround(pres_pos(p, c, static_cast<double>(k))));
    auto& v = pres_[c][p];
    const auto n = static_cast<std::ptrdiff_t>(v.size());
    for (std::ptrdiff_t d = -kFarSpan; d <= kFarSpan; ++d) {
      const std::ptrdiff_t i = pos + d;
      if (i < 0 || i >= n) continue;
      const std::ptrdiff_t a = d < 0 ? -d : d;
      const double w = a <= kMainSpan ? kMainW : (a <= kNearSpan ? kNearW : kFarW);
      v[static_cast<std::size_t>(i)] += sign * power * w;
    }
  }

  // ------------------------------------------------------------ scheduling
  double interference_at(std::size_t p, std::size_t c, std::size_t k) const {
    const auto pos = static_cast<std::ptrdiff_t>(std::lround(pres_pos(p, c, static_cast<double>(k))));
    if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(residual_[c].size()))
      return 1e30;
    double acc = 0.0;
    for (std::size_t q = 0; q < P_; ++q) {
      if (q == p) continue;
      acc += pres_[c][q][static_cast<std::size_t>(pos)];
    }
    return acc;
  }

  Modulation mod_at(std::size_t p, std::size_t k) const {
    const std::size_t body = rxcfg_.preamble_len + phy::kHeaderBits;
    return k < body ? Modulation::BPSK : pkts_[p].body_mod;
  }

  bool decodable(std::size_t p, std::size_t c, std::size_t k) const {
    const Link& l = links_[p][c];
    const double own = std::norm(l.est.params.h);
    const double theta =
        std::max(2.0 * noise_[c],
                 own / sinr_required(mod_at(p, k), opt_.capture_sinr_db));
    return interference_at(p, c, k) <= theta;
  }

  // Maximal decodable run of unknown symbols, anchored at the packet edges:
  // the forward pass only grows the contiguous prefix and the backward pass
  // only the suffix. This is how the paper's chunks propagate (each chunk
  // borders already-decoded territory), and it is what keeps the
  // decision-directed trackers honest — decoding a stretch far from any
  // validated region would let the phase re-lock on the wrong BPSK
  // half-plane, poisoning every subtraction that uses those bits.
  std::pair<std::size_t, std::size_t> find_run(std::size_t p, std::size_t c,
                                               bool backward) const {
    const PacketCtx& pk = pkts_[p];
    if (pk.ghost) return {0, 0};
    if (!backward) {
      std::size_t k = 0;
      while (k < pk.len && pk.known[k]) ++k;
      if (k == pk.len || !decodable(p, c, k)) return {0, 0};
      std::size_t k1 = k;
      while (k1 < pk.len && !pk.known[k1] && decodable(p, c, k1)) ++k1;
      return {k, k1};
    }
    if (!pk.header) return {0, 0};  // tail position unknown
    std::size_t r = pk.len;
    while (r > 0 && pk.known[r - 1]) --r;
    if (r == 0 || !decodable(p, c, r - 1)) return {0, 0};
    std::size_t k0 = r - 1;
    while (k0 > 0 && !pk.known[k0 - 1] && decodable(p, c, k0 - 1)) --k0;
    return {k0, r};
  }

  // Until the header has been parsed, the packet's believed length is an
  // overestimate; decoding past the header would run the tracker into
  // phantom symbols beyond the true packet end and corrupt the estimate.
  // Stop at the header boundary — the parse then pins the real length.
  std::size_t clamp_to_header(std::size_t p, std::size_t k0,
                              std::size_t k1) const {
    if (pkts_[p].header) return k1;
    const std::size_t hdr_end = rxcfg_.preamble_len + phy::kHeaderBits;
    if (k0 < hdr_end) return std::min(k1, hdr_end);
    return std::min(k1, k0 + 16);  // header parse failed: creep cautiously
  }

  bool all_known() const {
    for (std::size_t p = 0; p < P_; ++p) {
      if (pkts_[p].ghost) continue;
      for (std::size_t k = 0; k < pkts_[p].len; ++k)
        if (!pkts_[p].known[k]) return false;
    }
    return true;
  }

  // On a stall, suspect the weakest never-validated detection of being a
  // correlation false positive: stop scheduling it and release the phantom
  // interference it contributes, unblocking the real packets.
  bool ghost_weakest_unvalidated() {
    int victim = -1;
    for (std::size_t p = 0; p < P_; ++p) {
      const PacketCtx& pk = pkts_[p];
      if (pk.ghost || pk.header) continue;
      if (victim < 0 || pk.metric < pkts_[static_cast<std::size_t>(victim)].metric)
        victim = static_cast<int>(p);
    }
    if (victim < 0) return false;
    const auto v = static_cast<std::size_t>(victim);
    pkts_[v].ghost = true;
    for (std::size_t c = 0; c < C_; ++c) {
      if (!links_[v][c].present) continue;
      for (std::size_t k = 0; k < pkts_[v].len; ++k)
        if (!pkts_[v].known[k])
          add_presence(c, v, k, links_[v][c].pres_power, -1.0);
      // Undo anything already subtracted for the ghost (its "preamble"
      // image was cancelled at init) — a false positive has no signal to
      // cancel, so the subtraction itself was the corruption.
      auto& acct = imgs_[v][c];
      for (std::size_t n = 0; n < acct.size(); ++n) {
        residual_[c][n] += acct[n];
        acct[n] = cplx{0.0, 0.0};
      }
    }
    return true;
  }

  // -------------------------------------------------------------- decoding
  /// Sample range [s0, s1) of collision c that the image of p's symbols
  /// [k0, k1) can touch (pulse tails plus slack).
  struct Window {
    std::ptrdiff_t s0 = 0, s1 = 0;
    std::size_t size() const { return static_cast<std::size_t>(s1 - s0); }
  };

  Window image_window(std::size_t p, std::size_t c, std::size_t k0,
                      std::size_t k1) const {
    const auto pad = static_cast<double>(opt_.interp_half_width) * chan::kSps + 8.0;
    const auto n = static_cast<std::ptrdiff_t>(residual_[c].size());
    Window w;
    w.s0 = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(std::floor(sym_pos(p, c, static_cast<double>(k0)) - pad)),
        0, n);
    w.s1 = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(std::ceil(sym_pos(p, c, static_cast<double>(k1)) + pad)),
        w.s0, n);
    return w;
  }

  // The symbol packet p would transmit at index k, as carried by collision
  // c: decided value for known symbols (zero otherwise), with the
  // retry-flag header variant of this collision re-encoded (§4.2.2).
  cplx decided_at(std::size_t p, std::size_t c, std::ptrdiff_t k) const {
    const PacketCtx& pk = pkts_[p];
    if (k < 0 || k >= static_cast<std::ptrdiff_t>(pk.len)) return cplx{0.0, 0.0};
    const auto ku = static_cast<std::size_t>(k);
    if (pk.header && pk.header->retry != inputs_[c].is_retransmission) {
      const std::size_t base = rxcfg_.preamble_len;
      if (ku >= base && ku < base + phy::kHeaderBits && pk.known[ku])
        return pk.hdr_variant[inputs_[c].is_retransmission ? 1 : 0][ku - base];
    }
    return pk.decided[ku];  // zero until decoded
  }

  // Render the ISI-filtered symbol stream of packet p restricted to symbol
  // range [k0, k1) into `u` (u[j] = symbol k0+j). ISI pulls in decided
  // neighbours just outside the range, exactly like filtering the whole
  // packet and masking would — without touching the other `len` symbols.
  void render_u(std::size_t p, std::size_t c, std::size_t k0, std::size_t k1,
                CVec& u) const {
    const Link& l = links_[p][c];
    const auto& isi = tracked(l).params.isi;
    u.resize(k1 - k0);
    if (isi.is_identity()) {
      for (std::size_t k = k0; k < k1; ++k) u[k - k0] = decided_at(p, c, static_cast<std::ptrdiff_t>(k));
      return;
    }
    const auto& taps = isi.taps();
    const auto pre = static_cast<std::ptrdiff_t>(isi.pre());
    for (std::size_t k = k0; k < k1; ++k) {
      cplx acc{0.0, 0.0};
      for (std::size_t t = 0; t < taps.size(); ++t)
        acc += taps[t] *
               decided_at(p, c, static_cast<std::ptrdiff_t>(k) + pre -
                                    static_cast<std::ptrdiff_t>(t));
      u[k - k0] = acc;
    }
  }

  const phy::LinkEstimate& tracked(const Link& l) const {
    return opt_.reconstruction_tracking ? l.est : l.initial;
  }

  // Render the image of p's symbols [k0,k1) as received in collision c into
  // the window buffer `img` (img[i] = sample w.s0 + i). The symbol range is
  // re-based so the synthesis cost scales with the chunk, not the packet:
  // an integer sample shift of kSps·k0 folds into the buffer offset, its
  // drift contribution into μ and its carrier rotation into ĥ.
  Window render_image(std::size_t p, std::size_t c, std::size_t k0,
                      std::size_t k1, CVec& img) const {
    render_u(p, c, k0, k1, u_scratch_);
    return render_image_from_u(p, c, k0, k1, u_scratch_, img);
  }

  // Same, from an already-rendered ISI-filtered symbol stream `u` (see
  // render_u). The full-packet re-estimation scan renders the same symbol
  // stream at many candidate timings; hoisting the (μ-independent) ISI
  // stage out of that loop renders it once instead of once per candidate.
  Window render_image_from_u(std::size_t p, std::size_t c, std::size_t k0,
                             std::size_t k1, const CVec& u, CVec& img) const {
    const Link& l = links_[p][c];
    const Window w = image_window(p, c, k0, k1);
    img.assign(w.size(), cplx{0.0, 0.0});
    if (w.s1 <= w.s0) return w;

    chan::ChannelParams params = tracked(l).params;
    params.isi = sig::Fir();  // ISI already applied in render_u
    const auto shift = static_cast<std::ptrdiff_t>(
        std::llround(chan::kSps * static_cast<double>(k0)));
    params.mu += static_cast<double>(shift) * params.drift;
    const double phi = kTwoPi * params.freq_offset * static_cast<double>(shift);
    params.h *= cplx{std::cos(phi), std::sin(phi)};
    chan::add_signal(img, l.origin + shift - w.s0, u, params, 1.0,
                     opt_.interp_half_width);
    return w;
  }

  // Same re-basing for the timing-derivative image.
  Window render_image_derivative(std::size_t p, std::size_t c, std::size_t k0,
                                 std::size_t k1, CVec& dimg) const {
    const Link& l = links_[p][c];
    const Window w = image_window(p, c, k0, k1);
    dimg.assign(w.size(), cplx{0.0, 0.0});
    if (w.s1 <= w.s0) return w;

    render_u(p, c, k0, k1, u_scratch_);

    chan::ChannelParams params = tracked(l).params;
    params.isi = sig::Fir();
    const auto shift = static_cast<std::ptrdiff_t>(
        std::llround(chan::kSps * static_cast<double>(k0)));
    params.mu += static_cast<double>(shift) * params.drift;
    const double phi = kTwoPi * params.freq_offset * static_cast<double>(shift);
    params.h *= cplx{std::cos(phi), std::sin(phi)};
    chan::add_signal_derivative(dimg, l.origin + shift - w.s0, u_scratch_,
                                params, opt_.interp_half_width);
    return w;
  }

  // Project the current residual onto the image to refine ĥ, δf̂, μ̂ of the
  // (p, c) link — the chunk-1′/chunk-1″ comparison of §4.2.4(b,c). `img`
  // is the window-relative image covering samples [w.s0, w.s1). Returns
  // true when the link estimate was actually updated — callers re-render
  // the image only then (a bailed-out projection leaves the estimate, and
  // therefore the image, untouched).
  bool project_refine(std::size_t p, std::size_t c, const CVec& img,
                      const Window& w, std::size_t k0, std::size_t k1) {
    if (!opt_.reconstruction_tracking) return false;
    Link& l = links_[p][c];
    // Only trust the projection when the region is mostly this packet.
    double foreign = 0.0;
    std::size_t count = 0;
    for (std::size_t k = k0; k < k1; ++k) {
      foreign += interference_at(p, c, k);
      ++count;
    }
    if (count < 16) return false;
    const double own = std::norm(l.est.params.h);
    if (foreign / static_cast<double>(count) > 0.25 * own) return false;

    cplx num{0.0, 0.0};
    double den = 0.0;
    for (std::size_t i = 0; i < img.size(); ++i) {
      if (std::norm(img[i]) < 1e-12) continue;
      num += std::conj(img[i]) * residual_[c][static_cast<std::size_t>(w.s0) + i];
      den += std::norm(img[i]);
    }
    if (den < 1e-9) return false;
    cplx eps = num / den - cplx{1.0, 0.0};
    if (std::abs(eps) > 0.5) eps *= 0.5 / std::abs(eps);

    const cplx corr = cplx{1.0, 0.0} + 0.5 * eps;
    l.est.params.h *= corr;

    // Residual frequency: phase error accrued since the last update here.
    const double center = sym_pos(p, c, 0.5 * static_cast<double>(k0 + k1)) -
                          static_cast<double>(l.origin);
    const double dt = center - l.last_track_pos;
    if (dt > 32.0) {
      const double df = 0.15 * std::arg(corr) / (kTwoPi * dt);
      l.est.params.freq_offset += df;
      const double comp = -kTwoPi * df * center;
      l.est.params.h *= cplx{std::cos(comp), std::sin(comp)};
    }
    l.last_track_pos = center;

    // Sampling offset: project onto the timing derivative of the image.
    CVec& dimg = arena_.cvec(kSlotDImg, 0);
    const Window dw = render_image_derivative(p, c, k0, k1, dimg);
    double tn = 0.0, td = 0.0;
    for (std::size_t i = 0; i < dimg.size(); ++i) {
      if (std::norm(dimg[i]) < 1e-12) continue;
      const std::ptrdiff_t n = dw.s0 + static_cast<std::ptrdiff_t>(i);
      if (n < w.s0 || n >= w.s1) continue;
      tn += std::real(std::conj(dimg[i]) *
                      (residual_[c][static_cast<std::size_t>(n)] -
                       img[static_cast<std::size_t>(n - w.s0)]));
      td += std::norm(dimg[i]);
    }
    if (td > 1e-9) l.est.params.mu += std::clamp(0.3 * tn / td, -0.05, 0.05);
    return true;
  }

  // Subtract p's symbols [k0,k1) from collision c (rendering through the
  // link estimate), updating the packet's image account and the presence
  // profile. Optionally refine the estimate from the projection first.
  void subtract_range(std::size_t p, std::size_t c, std::size_t k0,
                      std::size_t k1) {
    Link& l = links_[p][c];
    if (!l.present) return;
    CVec& img = arena_.cvec(kSlotImg, 0);
    Window w = render_image(p, c, k0, k1, img);
    if (project_refine(p, c, img, w, k0, k1))
      w = render_image(p, c, k0, k1, img);  // re-render with refined estimate
    auto& acct = imgs_[p][c];
    if (acct.empty()) acct.assign(residual_[c].size(), cplx{0.0, 0.0});
    // image_window clamps to the buffer; the subtraction below relies on it.
    ZZ_DCHECK_LE(static_cast<std::size_t>(w.s0) + img.size(),
                 residual_[c].size());
    for (std::size_t i = 0; i < img.size(); ++i) {
      const auto n = static_cast<std::size_t>(w.s0) + i;
      residual_[c][n] -= img[i];
      acct[n] += img[i];
    }
    for (std::size_t k = k0; k < k1; ++k)
      add_presence(c, p, k, l.pres_power, -1.0);
#ifdef ZZ_ZIGZAG_DEBUG
    {
      double ipow = 0.0, rpow = 0.0;
      std::size_t cnt = 0;
      for (std::size_t i = 0; i < img.size(); ++i) {
        if (std::norm(img[i]) < 1e-12) continue;
        ipow += std::norm(img[i]);
        rpow += std::norm(residual_[c][static_cast<std::size_t>(w.s0) + i]);
        ++cnt;
      }
      std::fprintf(stderr,
                   "sub p=%zu c=%zu [%zu,%zu) img=%.1f resid=%.2f h=%.3f/%+.3f "
                   "f=%+.6f mu=%+.3f\n",
                   p, c, k0, k1, ipow / cnt, rpow / cnt,
                   std::abs(l.est.params.h), std::arg(l.est.params.h),
                   l.est.params.freq_offset, l.est.params.mu);
    }
#endif
  }

  void subtract_everywhere(std::size_t p, std::size_t k0, std::size_t k1) {
    if (k1 <= k0) return;
    for (std::size_t c = 0; c < C_; ++c)
      if (links_[p][c].present) subtract_range(p, c, k0, k1);
  }

  // Run the black-box decoder through the optional chunk-decode memo: on a
  // full-fingerprint match the stored result and post-decode link state are
  // replayed instead of re-decoding (bit-identical by construction). The
  // returned reference stays valid until the next cached_decode call
  // (uncached path) or cache mutation (node-based map, stable nodes).
  const phy::ChunkDecoder::Result& cached_decode(
      const CVec& view, std::ptrdiff_t origin, std::size_t k0, std::size_t k1,
      std::span<const phy::SymbolSpec> specs, phy::LinkEstimate& est,
      bool backward) {
    ZZ_DCHECK_LE(k0, k1);
    ZZ_DCHECK_EQ(specs.size(), k1 - k0);
    if (!cache_) {
      last_res_ = dec_.decode(view, origin, k0, k1, specs, est, backward);
      return last_res_;
    }

    Fingerprint fp;
    fp.cv(view);
    fp.u64(static_cast<std::uint64_t>(origin));
    fp.u64(k0);
    fp.u64(k1);
    fp.u64(backward ? 1 : 0);
    for (const auto& s : specs) {
      fp.u64(static_cast<std::uint64_t>(s.mod) |
             (s.pilot ? 0x100u : 0x0u));
      if (s.pilot) {
        fp.f64(s.pilot->real());
        fp.f64(s.pilot->imag());
      }
    }
    const auto& p = est.params;
    fp.f64(p.h.real());
    fp.f64(p.h.imag());
    fp.f64(p.freq_offset);
    fp.f64(p.mu);
    fp.f64(p.drift);
    fp.f64(est.noise_var);
    fp.u64(est.noise_seeded ? 1 : 0);
    fp.u64(p.isi.pre());
    for (const cplx& t : p.isi.taps()) {
      fp.f64(t.real());
      fp.f64(t.imag());
    }
    fp.u64(est.equalizer.pre());
    for (const cplx& t : est.equalizer.taps()) {
      fp.f64(t.real());
      fp.f64(t.imag());
    }
    const auto& g = dec_.gains();
    fp.u64(g.block);
    fp.f64(g.phase);
    fp.f64(g.freq);
    fp.f64(g.amplitude);
    fp.f64(g.timing);
    fp.u64(g.enabled ? 1 : 0);
    fp.u64(dec_.interp_half_width());
    // The interpolation route is part of the decode configuration: the two
    // routes are bit-identical by contract, but a cache shared between
    // decoders configured differently must not conflate their entries.
    fp.u64(dec_.block_interp() ? 1 : 0);

    auto& impl = DecodeCacheAccess::impl(*cache_);
    {
      MutexLock lock(impl.mu);
      const auto it = impl.map.find(fp.a);
      if (it != impl.map.end() && it->second.check == fp.b) {
        // Replay integrity: a full-fingerprint match must carry a result of
        // the requested shape — anything else means the fingerprint missed
        // an input (the failure mode the size pins above guard against).
        ZZ_DCHECK_EQ(it->second.res.decided.size(), k1 - k0);
        ++impl.hits;
        est.params = it->second.params_out;
        est.noise_var = it->second.noise_var_out;
        est.noise_seeded = it->second.noise_seeded_out;
        return it->second.res;
      }
      ++impl.misses;
    }
    // Decode OUTSIDE the lock — concurrent engines sharing a cache must
    // not serialize on each other's chunk decodes — and BEFORE touching
    // the map: populating the entry first would leave a poisoned
    // (empty-result) entry behind if the decode threw, and a later
    // identical lookup would silently replay it.
    auto res = dec_.decode(view, origin, k0, k1, specs, est, backward);
    MutexLock lock(impl.mu);
    const auto [it, inserted] = impl.map.try_emplace(fp.a);
    auto& entry = it->second;
    if (!inserted && entry.check == fp.b) {
      // Another engine raced us to the same fingerprint. Identical inputs
      // give identical outputs, so adopt the published entry (references
      // to it may already be live — entries are immutable once visible)
      // and drop our copy.
      est.params = entry.params_out;
      est.noise_var = entry.noise_var_out;
      est.noise_seeded = entry.noise_seeded_out;
      return entry.res;
    }
    entry.check = fp.b;
    entry.res = std::move(res);
    entry.params_out = est.params;
    entry.noise_var_out = est.noise_var;
    entry.noise_seeded_out = est.noise_seeded;
    return entry.res;
  }

  void decode_chunk(std::size_t p, std::size_t c, std::size_t k0,
                    std::size_t k1, bool backward, int bank) {
    PacketCtx& pk = pkts_[p];
    Link& l = links_[p][c];
    // find_run / clamp_to_header / force_frontier_chunk all bound their
    // ranges by the believed length; a chunk past it would index the
    // decided/known/soft arrays out of range.
    ZZ_DCHECK_LE(k1, pk.len);

    // Window of interest plus margins for the equalizer and pulse tails.
    const auto w0 = std::max<std::ptrdiff_t>(
        0, static_cast<std::ptrdiff_t>(std::floor(sym_pos(p, c, static_cast<double>(k0)))) - 48);
    const auto w1 = std::min<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(residual_[c].size()),
        static_cast<std::ptrdiff_t>(std::ceil(sym_pos(p, c, static_cast<double>(k1)))) + 48);
    if (w1 <= w0) return;

    // Reconstruct this packet's own signal view: residual plus everything of
    // p we previously subtracted from this collision (exact add-back).
    CVec& view = arena_.cvec(kSlotView, static_cast<std::size_t>(w1 - w0));
    const auto& acct = imgs_[p][c];
    for (std::ptrdiff_t n = w0; n < w1; ++n) {
      const auto i = static_cast<std::size_t>(n);
      view[static_cast<std::size_t>(n - w0)] =
          residual_[c][i] + (acct.empty() ? cplx{0.0, 0.0} : acct[i]);
    }

    std::vector<phy::SymbolSpec> specs(k1 - k0);
    const CVec& pre = phy::preamble(rxcfg_.preamble_len);
    for (std::size_t k = k0; k < k1; ++k) {
      specs[k - k0].mod = mod_at(p, k);
      if (k < pre.size()) specs[k - k0].pilot = pre[k];
    }

    const auto& res =
        cached_decode(view, l.origin - w0, k0, k1, specs, l.est, backward);
    ZZ_DCHECK_EQ(res.decided.size(), k1 - k0);
    ++chunks_;

    for (std::size_t k = k0; k < k1; ++k) {
      pk.decided[k] = res.decided[k - k0];
      pk.known[k] = 1;
      soft_[bank][p][c][k] = res.soft[k - k0];
      soft_ok_[bank][p][c][k] = 1;
    }
    note_quality(bank, p, c, res.noise_var, k1 - k0);

    maybe_parse_header(p);
    subtract_everywhere(p, k0, k1);

    // §4.2.4(b,c): with this chunk now subtracted from collision c, the
    // residual in its window is (other packets' actual − image) + noise —
    // the paper's chunk-1″. Compare every other packet's image against it
    // to correct that link's gain, frequency and sampling estimates, and
    // repair the residual in place.
    if (opt_.reconstruction_tracking)
      for (std::size_t q = 0; q < P_; ++q)
        if (q != p && links_[q][c].present)
          retro_refine(q, c, static_cast<std::size_t>(w0),
                       static_cast<std::size_t>(w1));
  }

  // Measure the reconstruction error of packet q's already-subtracted image
  // within window [w0, w1) of collision c, update the (q, c) link, and
  // repair the residual. The window must be clean of *unsubtracted* signals
  // for the projection to be unbiased.
  void retro_refine(std::size_t q, std::size_t c, std::size_t w0,
                    std::size_t w1) {
    ZZ_DCHECK_LE(w0, w1);
    const auto& acct = imgs_[q][c];
    if (acct.empty()) return;
    Link& l = links_[q][c];
    const double own = std::norm(l.est.params.h);

    // Projection statistics over the image support, weighted by image
    // energy; unsubtracted foreign signal biases the estimate, so measure
    // it the same way and bail out when it dominates.
    cplx num{0.0, 0.0};
    double den = 0.0;
    double center_acc = 0.0;
    double foreign_acc = 0.0;
    for (std::size_t n = w0; n < w1 && n < acct.size(); ++n) {
      const double e = std::norm(acct[n]);
      if (e < 1e-12) continue;
      num += std::conj(acct[n]) * residual_[c][n];
      den += e;
      center_acc += e * static_cast<double>(n);
      double others = 0.0;
      for (std::size_t r = 0; r < P_; ++r) others += pres_[c][r][n];
      foreign_acc += e * others;
    }
    if (den < 32.0 * own) {
#ifdef ZZ_ZIGZAG_DEBUG
      std::fprintf(stderr, "  retro q=%zu c=%zu skip den=%.1f\n", q, c, den);
#endif
      return;  // too little image energy to trust
    }
    if (foreign_acc / den > 0.3 * own) {
#ifdef ZZ_ZIGZAG_DEBUG
      std::fprintf(stderr, "  retro q=%zu c=%zu skip foreign=%.2f own=%.2f\n",
                   q, c, foreign_acc / den, own);
#endif
      return;
    }
#ifdef ZZ_ZIGZAG_DEBUG
    std::fprintf(stderr, "  retro q=%zu c=%zu eps=%.3f/%+.3f den=%.0f\n", q, c,
                 std::abs(num / den), std::arg(num / den), den);
#endif
    cplx eps = num / den;
    if (std::abs(eps) > 0.5) eps *= 0.5 / std::abs(eps);

    const cplx corr = cplx{1.0, 0.0} + 0.7 * eps;
    l.est.params.h *= corr;

    const double center =
        center_acc / den - static_cast<double>(l.origin);
    const double dt = center - l.last_track_pos;
    // Frequency updates need a long lever arm: with a short dt the phase
    // noise of the projection turns into a frequency random walk.
    if (std::abs(dt) > 192.0) {
      const double df = 0.15 * std::arg(corr) / (kTwoPi * dt);
      l.est.params.freq_offset += df;
      const double comp = -kTwoPi * df * center;
      l.est.params.h *= cplx{std::cos(comp), std::sin(comp)};
    }
    l.last_track_pos = center;

    // Repair the residual: the subtracted image was low by a factor (1+ε).
    for (std::size_t n = w0; n < w1 && n < acct.size(); ++n) {
      const cplx delta = 0.7 * eps * acct[n];
      residual_[c][n] -= delta;
      imgs_[q][c][n] += delta;
    }

    // Timing (§4.2.4c applied to reconstructed images): a link whose chunks
    // always subtract into occupied territory never reaches project_refine,
    // so a sampling-offset error from its interference-corrupted preamble
    // fit would persist for the whole packet — the dominant cancellation
    // residue. Project the post-repair residual onto the timing derivative
    // of this packet's symbols inside the window and correct μ̂ (and the
    // residual, to first order) here.
    {
      const PacketCtx& pk = pkts_[q];
      const double denom = chan::kSps * (1.0 + l.est.params.drift);
      const auto pad = static_cast<double>(opt_.interp_half_width);
      const auto k0 = static_cast<std::size_t>(std::clamp(
          (static_cast<double>(w0) - static_cast<double>(l.origin) -
           l.est.params.mu) / denom - pad,
          0.0, static_cast<double>(pk.len)));
      const auto k1 = static_cast<std::size_t>(std::clamp(
          (static_cast<double>(w1) - static_cast<double>(l.origin) -
           l.est.params.mu) / denom + pad,
          static_cast<double>(k0), static_cast<double>(pk.len)));
      if (k1 > k0 + 16) {
        CVec& dimg = arena_.cvec(kSlotDImg, 0);
        const Window dw = render_image_derivative(q, c, k0, k1, dimg);
        double tn = 0.0, td = 0.0;
        for (std::size_t i = 0; i < dimg.size(); ++i) {
          if (std::norm(dimg[i]) < 1e-12) continue;
          const std::ptrdiff_t n = dw.s0 + static_cast<std::ptrdiff_t>(i);
          if (n < static_cast<std::ptrdiff_t>(w0) ||
              n >= static_cast<std::ptrdiff_t>(w1))
            continue;
          tn += std::real(std::conj(dimg[i]) *
                          residual_[c][static_cast<std::size_t>(n)]);
          td += std::norm(dimg[i]);
        }
        if (td > 1e-9) {
          const double dmu = std::clamp(0.3 * tn / td, -0.08, 0.08);
          l.est.params.mu += dmu;
          for (std::size_t i = 0; i < dimg.size(); ++i) {
            const std::ptrdiff_t n = dw.s0 + static_cast<std::ptrdiff_t>(i);
            if (n < static_cast<std::ptrdiff_t>(w0) ||
                n >= static_cast<std::ptrdiff_t>(w1))
              continue;
            const cplx delta = dmu * dimg[i];
            residual_[c][static_cast<std::size_t>(n)] -= delta;
            imgs_[q][c][static_cast<std::size_t>(n)] += delta;
          }
#ifdef ZZ_ZIGZAG_DEBUG
          std::fprintf(stderr, "  retro-mu q=%zu c=%zu dmu=%+.3f mu=%+.3f\n",
                       q, c, dmu, l.est.params.mu);
#endif
        }
      }
    }
  }

  // Track the slicer noise measured by the decodes that filled each soft
  // bank — the MRC weight of a copy reflects how clean that copy actually
  // was (residual interference included), not just the link gain.
  void note_quality(int bank, std::size_t p, std::size_t c, double nv,
                    std::size_t count) {
    ZZ_DCHECK_GT(count, 0u);  // a zero-symbol decode has no quality to note
    auto& cur = bank_nv_[bank][p][c];
    const double w = static_cast<double>(count);
    if (cur <= 0.0)
      cur = std::max(nv, 1e-6);
    else
      cur = (cur * 64.0 + std::max(nv, 1e-6) * w) / (64.0 + w);
  }

  void maybe_parse_header(std::size_t p) {
    PacketCtx& pk = pkts_[p];
    if (pk.header) return;
    const std::size_t h0 = rxcfg_.preamble_len;
    const std::size_t h1 = h0 + phy::kHeaderBits;
    if (pk.len < h1) return;
    for (std::size_t k = h0; k < h1; ++k)
      if (!pk.known[k]) return;

    const phy::Modulator bpsk(Modulation::BPSK);
    Bits bits;
    bits.reserve(phy::kHeaderBits);
    for (std::size_t k = h0; k < h1; ++k) bpsk.append_bits(pk.decided[k], bits);
    const auto header = phy::decode_header(bits);
    if (!header) return;

    pk.header = *header;
    pk.layout = phy::layout_for(*header);
    pk.body_mod = header->payload_mod;

    // Pre-encode both retry-flag header variants for image rendering.
    const phy::Modulator hdr_bpsk(Modulation::BPSK);
    for (int v = 0; v < 2; ++v) {
      phy::FrameHeader hv = *header;
      hv.retry = v != 0;
      pk.hdr_variant[v] = hdr_bpsk.modulate(phy::encode_header(hv));
    }

    // Re-map the profile if the header names a different client than the
    // detector guessed (the preamble itself is sender-agnostic, and two
    // clients' oscillator offsets can sit within the slope-measurement
    // noise). Snap grossly-off link parameters to the right profile,
    // keeping the phase continuous at each link's last validated position.
    for (std::size_t pi = 0; pi < profiles_.size(); ++pi)
      if (profiles_[pi].id == header->sender_id) {
        pk.profile_index = static_cast<int>(pi);
        break;
      }
    if (pk.profile_index >= 0 &&
        static_cast<std::size_t>(pk.profile_index) < profiles_.size()) {
      const auto& prof = profiles_[static_cast<std::size_t>(pk.profile_index)];
      for (std::size_t c = 0; c < C_; ++c) {
        Link& l = links_[p][c];
        if (!l.present) continue;
        if (std::abs(l.est.params.freq_offset - prof.freq_offset) > 8e-5) {
          const double df = prof.freq_offset - l.est.params.freq_offset;
          l.est.params.freq_offset = prof.freq_offset;
          const double comp = -kTwoPi * df * l.last_track_pos;
          l.est.params.h *= cplx{std::cos(comp), std::sin(comp)};
        }
        if (opt_.isi_reconstruction && !prof.isi.is_identity()) {
          l.est.params.isi = prof.isi;
          l.est.equalizer = prof.equalizer;
        }
      }
    }

    // Truncate the believed length: phantom tail symbols stop counting as
    // interference for everyone else.
    if (pk.layout.total_syms < pk.len) {
      for (std::size_t c = 0; c < C_; ++c) {
        if (!links_[p][c].present) continue;
        for (std::size_t k = pk.layout.total_syms; k < pk.len; ++k)
          add_presence(c, p, k, links_[p][c].pres_power, -1.0);
      }
      pk.len = pk.layout.total_syms;
      pk.decided.resize(pk.len);
      pk.known.resize(pk.len);
      for (int bank = 0; bank < 2; ++bank)
        for (std::size_t c = 0; c < C_; ++c) {
          soft_[bank][p][c].resize(pk.len);
          soft_ok_[bank][p][c].resize(pk.len);
        }
    }
    // A parsed header's layout always covers preamble + header symbols, so
    // the truncation above can never cut into already-decoded header state.
    ZZ_CHECK_LE(h1, pk.len) << " truncated layout cut into the header";
  }

  // Decode the single cleanest available chunk across all collisions: the
  // run whose residual interference is lowest relative to the link's own
  // power. Chunks are re-ranked after every decode because each subtraction
  // changes the interference landscape of everything else.
  bool decode_best_chunk(bool backward, int bank) {
    double best_score = 1e30;
    std::size_t bp = 0, bc = 0, bk0 = 0, bk1 = 0;
    bool found = false;
    for (std::size_t c = 0; c < C_; ++c) {
      for (const auto& pl : inputs_[c].placements) {
        auto [k0, k1] = find_run(pl.packet, c, backward);
        k1 = clamp_to_header(pl.packet, k0, k1);
        if (k1 <= k0) continue;
        const double own =
            std::max(std::norm(links_[pl.packet][c].est.params.h), 1e-12);
        double acc = 0.0;
        for (std::size_t k = k0; k < k1; ++k)
          acc += interference_at(pl.packet, c, k);
        const double score = acc / static_cast<double>(k1 - k0) / own;
        if (score < best_score) {
          best_score = score;
          bp = pl.packet;
          bc = c;
          bk0 = k0;
          bk1 = k1;
          found = true;
        }
      }
    }
    if (!found) return false;
    decode_chunk(bp, bc, bk0, bk1, backward, bank);
    return true;
  }

  // One full decode pass (forward or backward bootstrap).
  void pass(bool backward) {
    const int bank = backward ? 1 : 0;
    int stall_budget = opt_.max_stall_breaks;
    while (!all_known()) {
      bool progress = false;
      if (opt_.chunk_order == ChunkOrder::BestFirst) {
        progress = decode_best_chunk(backward, bank);
      } else {
        for (std::size_t c = 0; c < C_; ++c) {
          for (const auto& pl : inputs_[c].placements) {
            auto [k0, k1] = find_run(pl.packet, c, backward);
            k1 = clamp_to_header(pl.packet, k0, k1);
            if (k1 > k0) {
              decode_chunk(pl.packet, c, k0, k1, backward, bank);
              progress = true;
            }
          }
        }
      }
      if (progress) continue;

      // Stalled: first suspect a phantom detection (correlation false
      // positive) and ghost the weakest never-validated packet — with the
      // presence ledger pinned to detection-time geometry, a real packet no
      // longer stalls on its own phantom interference, so a stall with a
      // headerless packet present is overwhelmingly a phantom blocking the
      // schedule, and ghosting first keeps its garbage chunks from ever
      // being force-decoded into the residual. Then force a short chunk at
      // the least-interfered frontier — errors it causes decay
      // exponentially (§4.3a) and the refinement pass revisits it.
      if (ghost_weakest_unvalidated()) continue;
      if (stall_budget-- <= 0) break;
      if (!force_frontier_chunk(backward, bank)) break;
      ++stalls_;
    }
  }

  bool force_frontier_chunk(bool backward, int bank) {
    double best_i = 1e30;
    std::size_t bp = 0, bc = 0, bk = 0;
    bool found = false;
    for (std::size_t c = 0; c < C_; ++c) {
      for (const auto& pl : inputs_[c].placements) {
        const PacketCtx& pk = pkts_[pl.packet];
        // Frontier symbol: first (or last) unknown.
        if (!backward) {
          for (std::size_t k = 0; k < pk.len; ++k) {
            if (pk.known[k]) continue;
            const double i = interference_at(pl.packet, c, k);
            if (i < best_i) {
              best_i = i;
              bp = pl.packet;
              bc = c;
              bk = k;
              found = true;
            }
            break;
          }
        } else {
          for (std::size_t r = pk.len; r > 0; --r) {
            const std::size_t k = r - 1;
            if (pk.known[k]) continue;
            const double i = interference_at(pl.packet, c, k);
            if (i < best_i) {
              best_i = i;
              bp = pl.packet;
              bc = c;
              bk = k;
              found = true;
            }
            break;
          }
        }
      }
    }
    if (!found) return false;
    const PacketCtx& pk = pkts_[bp];
    std::size_t k0 = bk, k1 = bk;
    if (!backward) {
      while (k1 < pk.len && !pk.known[k1] && k1 - k0 < 12) ++k1;
      k1 = clamp_to_header(bp, k0, k1);
    } else {
      if (!pk.header) return false;  // tail position unknown
      k1 = bk + 1;
      while (k0 > 0 && !pk.known[k0 - 1] && k1 - k0 < 12) --k0;
    }
    if (k1 <= k0) return false;
    decode_chunk(bp, bc, k0, k1, backward, bank);
    return true;
  }

  // With everything decoded once, re-render every packet's image with the
  // final (best) link estimates — replacing chunk images that were
  // subtracted earlier with stale parameters — then re-decode every packet
  // from every collision it appears in against the cleaned residual. Each
  // symbol ends up with one soft estimate per collision, MRC-combined in
  // finalize(): this is where "every bit is received twice" pays out.
  // Data-aided re-estimation of one link: with the packet's symbols known,
  // the whole packet acts as a giant preamble. Scan the sampling offset,
  // project for the complex gain, and fit the residual frequency from the
  // phase slope across the packet — processing gain makes these estimates
  // far better than what a buried 32-symbol preamble could give (§4.2.4
  // generalized to reconstructed images).
  void reestimate_link(std::size_t p, std::size_t c, const CVec& u_full) {
    Link& l = links_[p][c];
    if (!l.present || !opt_.reconstruction_tracking) return;
    const PacketCtx& pk = pkts_[p];
    ZZ_DCHECK_EQ(u_full.size(), pk.len);  // full-packet symbol stream

    CVec& view = arena_.cvec(kSlotEstView, residual_[c].size());
    std::copy(residual_[c].begin(), residual_[c].end(), view.begin());
    {
      const auto& acct = imgs_[p][c];
      if (!acct.empty())
        for (std::size_t n = 0; n < view.size(); ++n) view[n] += acct[n];
    }

    const double mu0 = l.est.params.mu;
    double best_score = -1.0, best_dmu = 0.0;
    cplx best_corr{1.0, 0.0};
    std::vector<double> scores;
    const double step = 0.15;
    CVec& img = arena_.cvec(kSlotEstImg, 0);
    for (int i = -3; i <= 3; ++i) {
      const double dmu = step * i;
      l.est.params.mu = mu0 + dmu;
      const Window w = render_image_from_u(p, c, 0, pk.len, u_full, img);
      cplx num{0.0, 0.0};
      double den = 0.0;
      for (std::size_t j = 0; j < img.size(); ++j) {
        if (std::norm(img[j]) < 1e-12) continue;
        num += std::conj(img[j]) * view[static_cast<std::size_t>(w.s0) + j];
        den += std::norm(img[j]);
      }
      const double score = den > 1e-9 ? std::abs(num) / std::sqrt(den) : 0.0;
      scores.push_back(score);
      if (score > best_score) {
        best_score = score;
        best_dmu = dmu;
        best_corr = den > 1e-9 ? num / den : cplx{1.0, 0.0};
      }
    }
    // Parabolic touch-up between grid points.
    const auto bi = static_cast<std::size_t>(std::lround(best_dmu / step) + 3);
    ZZ_DCHECK_LT(bi, scores.size());  // best_dmu came from the scan grid
    if (bi > 0 && bi + 1 < scores.size()) {
      const double ym = scores[bi - 1], y0 = scores[bi], yp = scores[bi + 1];
      const double d = ym - 2.0 * y0 + yp;
      if (std::abs(d) > 1e-12)
        best_dmu += step * std::clamp(0.5 * (ym - yp) / d, -0.5, 0.5);
    }
    l.est.params.mu = mu0 + best_dmu;
    if (std::abs(best_corr) > 0.25 && std::abs(best_corr) < 4.0)
      l.est.params.h *= best_corr;

    // Residual frequency from the phase slope between the packet halves.
    const Window w = render_image_from_u(p, c, 0, pk.len, u_full, img);
    cplx g[2] = {cplx{0.0, 0.0}, cplx{0.0, 0.0}};
    double t[2] = {0.0, 0.0}, e[2] = {0.0, 0.0};
    const double mid =
        static_cast<double>(l.origin) +
        chan::kSps * static_cast<double>(pk.len) / 2.0;
    for (std::size_t j = 0; j < img.size(); ++j) {
      if (std::norm(img[j]) < 1e-12) continue;
      const auto n = static_cast<std::size_t>(w.s0) + j;
      const int half = static_cast<double>(n) < mid ? 0 : 1;
      g[half] += std::conj(img[j]) * view[n];
      t[half] += std::norm(img[j]) * static_cast<double>(n);
      e[half] += std::norm(img[j]);
    }
    if (e[0] > 1e-9 && e[1] > 1e-9) {
      const double dt = t[1] / e[1] - t[0] / e[0];
      if (dt > 64.0) {
        const double dphi = std::arg(g[1] * std::conj(g[0]));
        const double df = std::clamp(dphi / (kTwoPi * dt), -2e-4, 2e-4);
        l.est.params.freq_offset += df;
        const double center =
            0.5 * (t[0] / e[0] + t[1] / e[1]) - static_cast<double>(l.origin);
        const double comp = -kTwoPi * df * center;
        l.est.params.h *= cplx{std::cos(comp), std::sin(comp)};
      }
    }
  }

  void refinement_pass() {
    for (std::size_t p = 0; p < P_; ++p) {
      PacketCtx& pk = pkts_[p];
      if (pk.ghost) continue;
      bool complete = true;
      for (std::size_t k = 0; k < pk.len; ++k)
        if (!pk.known[k]) complete = false;
      if (!complete) continue;
      for (std::size_t c = 0; c < C_; ++c) {
        Link& l = links_[p][c];
        if (!l.present || imgs_[p][c].empty()) continue;
        // The ISI-filtered symbol stream is μ/ĥ-independent: render it once
        // and share it across the re-estimation scan and the fresh image.
        CVec& u_full = arena_.cvec(kSlotEstU, 0);
        render_u(p, c, 0, pk.len, u_full);
        reestimate_link(p, c, u_full);
        // Replace the account with a fresh full-packet image rendered under
        // the final estimates. The old account can extend (slightly) past
        // the fresh window when μ̂ moved, so clear it everywhere.
        CVec& fresh = arena_.cvec(kSlotEstImg, 0);
        const Window w = render_image_from_u(p, c, 0, pk.len, u_full, fresh);
        auto& acct = imgs_[p][c];
        for (std::size_t n = 0; n < acct.size(); ++n) {
          residual_[c][n] += acct[n];
          acct[n] = cplx{0.0, 0.0};
        }
        ZZ_DCHECK_LE(static_cast<std::size_t>(w.s0) + fresh.size(),
                     residual_[c].size());
        for (std::size_t j = 0; j < fresh.size(); ++j) {
          const auto n = static_cast<std::size_t>(w.s0) + j;
          residual_[c][n] -= fresh[j];
          acct[n] = fresh[j];
        }
      }
    }
    for (std::size_t p = 0; p < P_; ++p) {
      PacketCtx& pk = pkts_[p];
      if (pk.ghost) continue;
      for (std::size_t c = 0; c < C_; ++c) {
        Link& l = links_[p][c];
        if (!l.present) continue;
        const int bank = 1;  // refinement updates the second bank
        // Clean view across the whole packet.
        bool any_unknown = false;
        for (std::size_t k = 0; k < pk.len; ++k)
          if (!pk.known[k]) any_unknown = true;
        if (any_unknown) continue;

        std::vector<phy::SymbolSpec> specs(pk.len);
        const CVec& pre = phy::preamble(rxcfg_.preamble_len);
        for (std::size_t k = 0; k < pk.len; ++k) {
          specs[k].mod = mod_at(p, k);
          if (k < pre.size()) specs[k].pilot = pre[k];
        }
        CVec& view = arena_.cvec(kSlotView, residual_[c].size());
        const auto& acct = imgs_[p][c];
        for (std::size_t n = 0; n < view.size(); ++n)
          view[n] = residual_[c][n] +
                    (acct.empty() ? cplx{0.0, 0.0} : acct[n]);
        // Full-packet refinement decodes are not memoized: their entries
        // would dwarf the chunk entries for a stage that only replays when
        // every prior chunk already hit the memo.
        const auto res = dec_.decode(view, l.origin, 0, pk.len, specs, l.est,
                                     /*backward=*/false);
        for (std::size_t k = 0; k < pk.len; ++k) {
          soft_[bank][p][c][k] = res.soft[k];
          soft_ok_[bank][p][c][k] = 1;
        }
        bank_nv_[bank][p][c] = std::max(res.noise_var, 1e-6);
        // The refined copy re-decodes the same samples with the final
        // parameter estimates and a fully-cleaned residual — it strictly
        // supersedes the bootstrap-pass copy from this collision.
        std::fill(soft_ok_[0][p][c].begin(), soft_ok_[0][p][c].end(),
                  static_cast<std::uint8_t>(0));
      }
    }

    // Decision update: re-slice each symbol from the MRC combination of the
    // refreshed copies. Without this, a symbol decided wrongly during the
    // passes keeps being re-rendered and subtracted self-consistently — the
    // corrupted image poisons the OTHER packet's copies at the same samples
    // in every collision, and no amount of re-decoding escapes (a decision-
    // feedback lock-in visible as a high-SNR BER floor in Fig 5-3). The
    // corrected decisions feed the next refinement pass's re-rendering.
    for (std::size_t p = 0; p < P_; ++p) {
      PacketCtx& pk = pkts_[p];
      if (pk.ghost || !pk.header) continue;
      bool complete = true;
      for (std::size_t k = 0; k < pk.len; ++k)
        if (!pk.known[k]) complete = false;
      if (!complete) continue;
      // Body symbols only: header symbols differ across collisions in the
      // retry-flag variant (§4.2.2), so MRC-mixing them would corrupt the
      // decided header — they are protected by the parse/re-encode path.
      // Copies much noisier than the best are excluded exactly as in the
      // finalize() combination; a symbol covered only by excluded copies
      // keeps its chunk-pass decision.
      double best_nv = 1e30;
      for (int bank = 0; bank < 2; ++bank)
        for (std::size_t c = 0; c < C_; ++c)
          if (bank_nv_[bank][p][c] > 0.0)
            best_nv = std::min(best_nv, bank_nv_[bank][p][c]);
      const double nv_cut = best_nv < 1e29 ? 3.0 * best_nv : 1e30;
      const phy::Modulator body(pk.body_mod);
      for (std::size_t k = rxcfg_.preamble_len + phy::kHeaderBits; k < pk.len;
           ++k) {
        cplx acc{0.0, 0.0};
        double wsum = 0.0;
        for (int bank = 0; bank < 2; ++bank)
          for (std::size_t c = 0; c < C_; ++c) {
            if (k >= soft_ok_[bank][p][c].size() || !soft_ok_[bank][p][c][k])
              continue;
            const double nv = bank_nv_[bank][p][c] > 0.0
                                  ? bank_nv_[bank][p][c]
                                  : links_[p][c].est.noise_var;
            if (nv > nv_cut) continue;
            const double w = 1.0 / std::max(nv, 1e-6);
            acc += w * soft_[bank][p][c][k];
            wsum += w;
          }
        if (wsum <= 0.0) continue;
        pk.decided[k] = body.nearest_point(acc / wsum);
      }
    }
  }

  DecodeResult finalize() {
    DecodeResult out;
    out.chunks = chunks_;
    out.stall_breaks = stalls_;
    out.packets.resize(P_);
    for (std::size_t p = 0; p < P_; ++p) {
      PacketCtx& pk = pkts_[p];
      PacketResult& r = out.packets[p];
      r.symbols_decoded = static_cast<std::size_t>(
          std::count(pk.known.begin(), pk.known.end(), 1));
      if (!pk.header) continue;
      r.header_ok = true;
      r.header = *pk.header;

      // MRC across every (pass, collision) estimate of each symbol. Soft
      // symbols are gain-normalized, so a copy's weight is the inverse of
      // its measured slicer noise; copies much noisier than the best one
      // (typically a re-decode through a poorly-anchored link) are dropped
      // rather than allowed to drag the combination down.
      const std::size_t total = pk.layout.total_syms;
      double best_nv = 1e30;
      for (int bank = 0; bank < 2; ++bank)
        for (std::size_t c = 0; c < C_; ++c)
          if (bank_nv_[bank][p][c] > 0.0)
            best_nv = std::min(best_nv, bank_nv_[bank][p][c]);
      const double nv_cut = best_nv < 1e29 ? 3.0 * best_nv : 1e30;
      CVec combined(total, cplx{0.0, 0.0});
      for (std::size_t k = 0; k < total; ++k) {
        cplx acc{0.0, 0.0};
        double wsum = 0.0;
        for (int bank = 0; bank < 2; ++bank)
          for (std::size_t c = 0; c < C_; ++c) {
            if (k >= soft_ok_[bank][p][c].size() || !soft_ok_[bank][p][c][k])
              continue;
            const double nv = bank_nv_[bank][p][c] > 0.0
                                  ? bank_nv_[bank][p][c]
                                  : links_[p][c].est.noise_var;
            if (nv > nv_cut) continue;
            const double w = 1.0 / std::max(nv, 1e-6);
            acc += w * soft_[bank][p][c][k];
            wsum += w;
          }
        combined[k] = wsum > 0.0 ? acc / wsum
                                 : (k < pk.decided.size() ? pk.decided[k]
                                                          : cplx{0.0, 0.0});
      }

      const std::size_t h0 = rxcfg_.preamble_len;
      // layout_for() always budgets the preamble; a shorter total would
      // make the strip below walk off the combined buffer.
      ZZ_CHECK_LE(h0, combined.size());
      r.soft.assign(combined.begin() + static_cast<std::ptrdiff_t>(h0),
                    combined.end());
      const phy::Modulator bpsk(Modulation::BPSK);
      const phy::Modulator body(pk.body_mod);
      // Header bits come from the parsed header, not the MRC combination:
      // the two collisions carry different retry-flag variants (§4.2.2), so
      // averaging their header symbols would mangle the differing bits.
      Bits bits = phy::encode_header(*pk.header);
      Bits body_bits;
      for (std::size_t k = h0 + phy::kHeaderBits; k < total; ++k)
        body.append_bits(combined[k], body_bits);
      body_bits.resize(pk.layout.body_bits);
      bits.insert(bits.end(), body_bits.begin(), body_bits.end());
      r.air_bits = std::move(bits);

      phy::Scrambler scr(phy::scrambler_seed_for(pk.header->seq));
      const Bits descrambled = scr.apply(body_bits);
      if (phy::body_crc_ok(descrambled)) {
        r.crc_ok = true;
        r.payload = phy::body_payload(descrambled);
      }
    }
    return out;
  }

  // ------------------------------------------------------------------ data
  /// ScratchArena slots (owner-scoped; see scratch.h). Call sites sharing a
  /// slot never have overlapping lifetimes.
  enum Slot : std::size_t {
    kSlotImg = 0,   ///< subtract_range chunk image
    kSlotDImg,      ///< project_refine timing-derivative image
    kSlotView,      ///< decode_chunk / refinement re-decode view
    kSlotEstImg,    ///< reestimate_link / refinement fresh full-packet image
    kSlotEstView,   ///< reestimate_link add-back view
    kSlotEstU,      ///< refinement shared ISI-filtered symbol stream
  };

  const DecodeOptions& opt_;
  const phy::ReceiverConfig& rxcfg_;
  std::span<const phy::SenderProfile> profiles_;
  std::span<const CollisionInput> inputs_;
  std::size_t C_;
  std::size_t P_;
  phy::ChunkDecoder dec_;

  std::vector<CVec> residual_;
  std::vector<std::vector<CVec>> imgs_;                 // [p][c]
  std::vector<std::vector<std::vector<double>>> pres_;  // [c][p][sample]
  std::vector<std::vector<Link>> links_;                // [p][c]
  std::vector<PacketCtx> pkts_;
  std::vector<double> noise_;
  std::vector<std::vector<CVec>> soft_[2];              // [bank][p][c]
  std::vector<std::vector<std::vector<std::uint8_t>>> soft_ok_[2];
  std::vector<std::vector<double>> bank_nv_[2];         // [bank][p][c]
  DecodeCache* cache_ = nullptr;
  phy::ChunkDecoder::Result last_res_;  ///< cached_decode's uncached return
  /// Fallback scratch storage when no external arena was injected; arena_
  /// aliases either this or the caller's (episode-persistent) arena. Slot
  /// numbers are engine-owned either way, and decodes are sequential on an
  /// arena by contract, so cross-engine reuse only recycles capacity.
  mutable sig::ScratchArena own_arena_;
  sig::ScratchArena& arena_;
  mutable CVec u_scratch_;  ///< render_u output inside render_image*
  std::size_t chunks_ = 0;
  std::size_t stalls_ = 0;
};

}  // namespace

bool DecodeResult::all_crc_ok() const {
  if (packets.empty()) return false;
  return std::all_of(packets.begin(), packets.end(),
                     [](const PacketResult& p) { return p.crc_ok; });
}

ZigZagDecoder::ZigZagDecoder(DecodeOptions opt, phy::ReceiverConfig rxcfg)
    : opt_(opt), rxcfg_(rxcfg) {}

DecodeResult ZigZagDecoder::decode(std::span<const CollisionInput> collisions,
                                   std::span<const phy::SenderProfile> profiles,
                                   std::size_t num_packets, DecodeCache* cache,
                                   sig::ScratchArena* arena) const {
  if (collisions.empty() || num_packets == 0) return {};
  for (const auto& ci : collisions)
    if (ci.samples == nullptr)
      throw std::invalid_argument("ZigZagDecoder: null samples");
  Engine engine(collisions, profiles, num_packets, opt_, rxcfg_, cache, arena);
  return engine.run();
}

}  // namespace zz::zigzag
