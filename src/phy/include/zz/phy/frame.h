// 802.11-like frame format.
//
// Layout on air (in symbols):
//   [ preamble : 32 BPSK symbols, known sequence                 ]
//   [ header   : 48 bits, always BPSK (like the PLCP header)     ]
//   [ body     : (payload ‖ CRC-32), scrambled, payload modulation ]
//
// Header fields (48 bits total, LSB-first within each field):
//   sender_id : 8   — client address
//   seq       : 16  — sequence number
//   retry     : 1   — 802.11 retransmission flag; the single bit that
//                     differs between two collisions of "the same" packet
//                     (§4.2.2 notes the copies differ only in noise and
//                     this flag)
//   mod       : 2   — payload modulation (BPSK/QPSK/16/64-QAM)
//   length    : 13  — payload bytes (0..8191)
//   hcs       : 8   — CRC-8 over the previous 40 bits
#pragma once

#include <cstdint>
#include <optional>

#include "zz/common/types.h"
#include "zz/phy/modulation.h"

namespace zz::phy {

inline constexpr std::size_t kHeaderBits = 48;
/// Bit index of the retry flag within the 48 header bits (after sender_id
/// and seq) — the one field that differs between two transmissions of "the
/// same" packet (§4.2.2).
inline constexpr std::size_t kHeaderRetryBit = 24;
/// The HCS covers the first kHeaderFieldBits bits; the last kHeaderHcsBits
/// carry the CRC-8 itself.
inline constexpr std::size_t kHeaderHcsBits = 8;
inline constexpr std::size_t kHeaderFieldBits = kHeaderBits - kHeaderHcsBits;

struct FrameHeader {
  std::uint8_t sender_id = 0;
  std::uint16_t seq = 0;
  bool retry = false;
  Modulation payload_mod = Modulation::BPSK;
  std::uint16_t payload_bytes = 0;

  bool operator==(const FrameHeader&) const = default;
};

/// CRC-8 (poly 0x07) over a bit vector; protects the header.
std::uint8_t crc8_bits(const Bits& bits);

/// Serialize a header to its 48 on-air bits (including HCS).
Bits encode_header(const FrameHeader& h);

/// Parse 48 header bits; empty optional if the HCS does not verify.
std::optional<FrameHeader> decode_header(const Bits& bits);

/// Static frame geometry for a given header.
struct FrameLayout {
  std::size_t preamble_syms = 0;  ///< always kPreambleLength
  std::size_t header_syms = 0;    ///< kHeaderBits (BPSK)
  std::size_t body_syms = 0;      ///< scrambled payload‖CRC32 symbols
  std::size_t total_syms = 0;
  std::size_t body_bits = 0;      ///< 8 * (payload_bytes + 4)

  /// Symbol index where the body starts.
  std::size_t body_begin() const { return preamble_syms + header_syms; }
  /// Symbol index (within the frame) of the header's retry bit.
  std::size_t retry_symbol() const;
};

FrameLayout layout_for(const FrameHeader& h);

/// Bits → bytes helper (LSB-first per byte), used when reassembling payloads.
Bytes pack_bytes(const Bits& bits);
/// Bytes → bits helper (LSB-first per byte).
Bits unpack_bits(const Bytes& bytes);

}  // namespace zz::phy
