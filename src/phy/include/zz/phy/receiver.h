// The standard 802.11 receiver.
//
// This object is the "Current 802.11" baseline of §5.1(e) *and* the source
// of the primitives ZigZag composes: preamble detection by correlation,
// channel estimation from the correlation peak (§4.2.4a), coarse frequency
// offset "from association" (§4.2.4b), and the black-box chunk decoder.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "zz/common/reentry.h"
#include "zz/common/types.h"
#include "zz/phy/frame.h"
#include "zz/phy/preamble.h"
#include "zz/phy/modulation.h"
#include "zz/phy/tracker.h"
#include "zz/phy/transmitter.h"
#include "zz/signal/correlate.h"
#include "zz/signal/fir.h"

namespace zz::phy {

/// Peak-height reference gain κ mapping the paper's β onto this waveform
/// family's correlation statistics — the single calibration shared by the
/// standard receiver's detection threshold and the zigzag collision
/// detector (measured on the Table 5.1a scenario set; see
/// bench/table_5_1_micro).
inline constexpr double kDetectCalibration = 1.22;

/// Receiver-wide configuration.
struct ReceiverConfig {
  std::size_t preamble_len = kPreambleLength;
  double detect_beta = 0.65;  ///< correlation threshold factor (§5.3a)
  double detect_calibration = kDetectCalibration;
  TrackingGains gains{};
  std::size_t interp_half_width = 8;
  std::size_t equalizer_len = 7;  ///< taps of the LS inverse-ISI filter
};

/// Stable per-client state the AP keeps from association (§4.2.1: "the AP
/// can maintain coarse estimates of the frequency offsets of active clients
/// as obtained at the time of association").
struct SenderProfile {
  std::uint8_t id = 0;
  double freq_offset = 0.0;  ///< association-time δf̂ (cycles/sample)
  sig::Fir isi;              ///< fitted symbol-spaced channel filter
  sig::Fir equalizer;        ///< its LS inverse
  double snr_db = 10.0;      ///< coarse received SNR
  Modulation mod = Modulation::BPSK;
};

/// Channel parameters read off a preamble correlation peak.
struct PreambleEstimate {
  std::ptrdiff_t origin = 0;  ///< integer arrival position of symbol 0
  double mu = 0.0;            ///< sub-sample offset (parabolic fit)
  cplx h{0.0, 0.0};           ///< channel gain: Γ'(Δ) / Σ|s[k]|² (§4.2.4a)
  double freq_offset = 0.0;   ///< refined: coarse + preamble phase slope
  double metric = 0.0;        ///< |Γ'| at the peak
};

/// Result of a full-packet decode attempt.
struct PacketDecode {
  bool detected = false;
  bool header_ok = false;
  bool crc_ok = false;
  FrameHeader header;
  Bits air_bits;   ///< hard bits of header ‖ body as decoded (for BER)
  Bytes payload;   ///< descrambled payload (valid when crc_ok)
  CVec soft;       ///< per-symbol equalized estimates (header ‖ body)
  LinkEstimate est;
  std::ptrdiff_t origin = 0;
};

/// Mean power of the quietest stretch of the buffer — the receiver's noise
/// floor estimate (receptions carry a noise-only lead-in).
double estimate_noise_floor(const CVec& rx, std::size_t window = 32);

/// Bias-corrected variant for threshold calibration: averages the 2nd/3rd
/// quietest windows instead of taking the minimum (which sits ~20% low).
double estimate_noise_floor_robust(const CVec& rx, std::size_t window = 32);

/// Correlation-peak channel estimation at a known peak position.
PreambleEstimate estimate_at_peak(const CVec& rx, std::size_t peak,
                                  double coarse_freq,
                                  std::size_t preamble_len = kPreambleLength);

class StandardReceiver {
 public:
  explicit StandardReceiver(ReceiverConfig cfg = {});

  const ReceiverConfig& config() const { return cfg_; }

  /// Detect the strongest preamble and decode the packet as if it were
  /// interference-free — exactly what a stock 802.11 receiver does (§4.2:
  /// "when a ZigZag receiver detects a packet it tries to decode it,
  /// assuming no collision, and using a typical decoder").
  PacketDecode decode(const CVec& rx,
                      const SenderProfile* profile = nullptr) const;

  /// Decode with a known start position (used by capture/SIC paths).
  PacketDecode decode_at(const CVec& rx, std::size_t peak,
                         const SenderProfile* profile = nullptr) const;

  /// Learn a sender's stable link parameters from one clean reception:
  /// refined frequency offset, fitted ISI taps and their inverse, SNR.
  SenderProfile associate(const CVec& clean_rx, std::uint8_t id) const;

  /// Detection threshold for a sender at the given SNR (paper §5.3a:
  /// β · L · sqrt(SNR) scaled by the noise floor amplitude).
  double detection_threshold(double snr_linear, double noise_floor) const;

 private:
  ReceiverConfig cfg_;
  /// Full-buffer preamble scan engine, built lazily and reused across
  /// decode() calls (the stream transforms are re-prepared per buffer; the
  /// object, its block buffers and the output vector persist). Makes
  /// decode() non-reentrant on a shared instance — give each thread its
  /// own StandardReceiver, the same contract as SlidingCorrelator itself.
  /// Enforced by the ReentryScope in decode() (fatal under ZZ_DCHECKS),
  /// not just this comment.
  mutable std::unique_ptr<sig::SlidingCorrelator> scan_;
  mutable CVec scan_corr_;
  mutable ReentryFlag scan_busy_;
};

}  // namespace zz::phy
