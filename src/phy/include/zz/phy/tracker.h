// Receiver-side link state and the chunk decoder ("the black box").
//
// ZigZag's contract with the decoder (§4.2.3a) is narrow: given a stretch of
// samples that is free of interference, decode the symbols, tracking phase
// (§4.2.4b), sampling offset (§4.2.4c) and ISI (§4.2.4d) as any standard
// 802.11 receiver would. `ChunkDecoder` is that black box. It holds no
// ZigZag logic; the "Current 802.11" baseline uses the very same object.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "zz/chan/channel.h"
#include "zz/common/types.h"
#include "zz/phy/modulation.h"
#include "zz/signal/fir.h"
#include "zz/signal/interp.h"

namespace zz::phy {

/// What the receiver believes about one sender's signal within one
/// reception. Same shape as the true channel (chan::ChannelParams) plus the
/// decoder-side equalizer and noise estimate. ZigZag keeps one LinkEstimate
/// per (packet, collision) pair and both decodes and re-encodes through it.
struct LinkEstimate {
  chan::ChannelParams params;  ///< ĥ, δf̂, μ̂, drift̂, ISI-tap estimate
  sig::Fir equalizer;          ///< LS inverse of params.isi
  double noise_var = 1.0;      ///< complex noise variance at the slicer input
  /// True once noise_var holds a slicer measurement. Before the first chunk
  /// decode, noise_var carries a prior of a different scale (the buffer
  /// noise floor, or the 1.0 default); the decoder's EWMA must seed from
  /// its first measurement instead of blending into that prior, which
  /// biased early chunks' noise ranking (and MRC/best-link selection) low.
  bool noise_seeded = false;
};

/// Loop gains of the decision-directed trackers. Defaults are stable from
/// 5 dB (the lowest SNR in Fig 5-3) up.
struct TrackingGains {
  std::size_t block = 16;   ///< symbols per tracking block
  double phase = 0.5;       ///< first-order phase correction gain
  double freq = 0.03;       ///< second-order (frequency) gain
  double amplitude = 0.2;   ///< gain magnitude correction
  double timing = 0.15;     ///< sampling-offset correction gain
  bool enabled = true;      ///< master switch (Table 5.1 ablates this)
};

/// Per-symbol decode directive: which constellation the symbol uses, and —
/// for preamble symbols — its known value (used as a pilot, never sliced).
struct SymbolSpec {
  Modulation mod = Modulation::BPSK;
  std::optional<cplx> pilot;
};

/// Decodes an interference-free range of one packet's symbols from a sample
/// buffer, mutating the caller's LinkEstimate as it tracks.
class ChunkDecoder {
 public:
  /// `block_interp` selects the batched per-tracking-block symbol fetch
  /// (SincInterpolator::at_batch). The per-symbol route is kept as the
  /// golden reference; the two produce bit-identical decodes.
  ChunkDecoder(TrackingGains gains = {}, std::size_t interp_half_width = 8,
               bool block_interp = true);

  struct Result {
    CVec soft;     ///< equalized complex symbol estimates (one per symbol)
    CVec decided;  ///< nearest constellation points / pilot values
    double noise_var = 0.0;  ///< mean |soft - decided|^2 over the chunk
  };

  /// Decode symbols [k0, k1) of a packet whose symbol 0 arrives at buffer
  /// time `origin + est.params.mu`. `specs[k - k0]` describes symbol k.
  /// If `backward` is true, tracking blocks are processed from the end of
  /// the range toward the start (for ZigZag's backward pass, §4.3b).
  Result decode(const CVec& buf, std::ptrdiff_t origin, std::size_t k0,
                std::size_t k1, std::span<const SymbolSpec> specs,
                LinkEstimate& est, bool backward = false) const;

  const TrackingGains& gains() const { return gains_; }
  std::size_t interp_half_width() const { return hw_; }

  bool block_interp() const { return block_interp_; }

 private:
  /// Interpolated, de-rotated, gain-normalized sample for symbol index k.
  cplx raw_symbol(const CVec& buf, std::ptrdiff_t origin, double k,
                  const LinkEstimate& est) const;

  /// Raw symbols for the whole index range [m0, m1) into `z` — one block
  /// interpolation pass instead of a raw_symbol call per symbol (or the
  /// per-symbol reference route when block_interp is off).
  void raw_block(const CVec& buf, std::ptrdiff_t origin, std::ptrdiff_t m0,
                 std::ptrdiff_t m1, const LinkEstimate& est, CVec& z) const;

  TrackingGains gains_;
  std::size_t hw_;
  bool block_interp_;
  sig::SincInterpolator interp_;
};

}  // namespace zz::phy
