// The 802.11-like transmitter: payload bytes in, complex symbol stream out.
//
// The sender side is deliberately stock (§5.1d: "the network interface
// pushes the packets to the GNU software blocks with no modifications") —
// ZigZag is a pure receiver design. This transmitter exists so the
// simulator and the ZigZag reconstructor share one definitive definition of
// what a frame looks like on air.
#pragma once

#include "zz/common/types.h"
#include "zz/phy/frame.h"
#include "zz/phy/modulation.h"

namespace zz::phy {

/// A fully rendered frame: ground-truth bits and the on-air symbol stream.
struct TxFrame {
  FrameHeader header;
  Bytes payload;          ///< original unscrambled payload (without CRC)
  Bits body_bits;         ///< scrambled on-air body bits (payload ‖ CRC-32)
  CVec symbols;           ///< preamble + header + body symbols
  FrameLayout layout;

  /// On-air bits of the whole frame after the preamble (header ‖ body) —
  /// the reference stream for BER accounting.
  Bits air_bits() const;
};

/// Build the on-air frame for a payload. The scrambler seed derives from
/// `header.seq`, so receivers can descramble without side channels.
TxFrame build_frame(const FrameHeader& header, const Bytes& payload);

/// Re-render the symbols of one frame with a different retry flag — what a
/// sender does when it retransmits. Only the retry header symbol (and the
/// HCS symbols it participates in) change.
TxFrame with_retry(const TxFrame& frame, bool retry);

/// Validate a received, descrambled body (payload ‖ CRC-32): true iff the
/// checksum verifies.
bool body_crc_ok(const Bits& descrambled_body_bits);

/// Extract the payload bytes from a descrambled, CRC-checked body.
Bytes body_payload(const Bits& descrambled_body_bits);

}  // namespace zz::phy
