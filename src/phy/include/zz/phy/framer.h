// Frame synchronisation for the streaming receiver — the state machine
// that turns an unbounded sample stream into bounded reception windows.
//
// The paper's AP (§4) never sees "a logged buffer"; it sees samples
// arriving and must decide, online, where a reception starts and ends.
// FrameSync is that decision, modeled on the FrameSynchroniser
// WAIT_PREAMBLE → WAIT_PAYLOAD idiom of SNIPPETS.md (snippets 2–3) with a
// third state for ZigZag: JOINT_PENDING, entered when a second overlapped
// preamble is hinted inside an open window — the §4.2.1 "it's a
// collision" moment, which tells the scheduler the window will need a
// joint decode rather than a standard one.
//
// Window framing itself is energy-based: the emulated medium is exactly
// zero between receptions (receiver noise is part of each reception's
// buffer, lead-in and tail included — see emu::CollisionBuilder), so a run
// of `gap_hang` silent samples closes the window at the last active
// sample. That makes the recovered window bit-identical to the buffer the
// offline route decodes, independent of how the stream was chunked into
// push() calls — the property the streaming-vs-offline pins gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "zz/common/types.h"

namespace zz::phy {

/// Where the frame tracker is inside the current window.
enum class SyncState {
  WaitPreamble,  ///< hunting for a packet start (idle, or window just opened)
  WaitPayload,   ///< one preamble hinted; accumulating its payload
  JointPending,  ///< ≥2 overlapped packets hinted — a collision window
};

struct FramerConfig {
  /// |x|² at or below this is silence. Exact zero by default: the emulated
  /// inter-reception medium is exactly zero, so window recovery is exact.
  double silence_eps = 0.0;
  /// Consecutive silent samples that close an open window.
  std::size_t gap_hang = 24;
  /// Hard cap on one window's length: a never-silent stream is cut here
  /// rather than retained without bound.
  std::size_t max_window = std::size_t{1} << 22;
};

/// One closed reception window [begin, end) in absolute stream positions.
struct FrameWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  /// Stream position at which closure was decided (end + the silence hang,
  /// or the cut position) — when the window's decode can be scheduled.
  std::uint64_t decided_at = 0;
  SyncState final_state = SyncState::WaitPreamble;  ///< state when closed
};

/// The tracker. Feed samples with push(); closed windows come back in
/// stream order. The preamble/joint hints come from the online detection
/// layer above (zigzag::StreamingReceiver) and only drive the state
/// machine — framing is energy-based and hint-independent.
class FrameSync {
 public:
  explicit FrameSync(FramerConfig cfg = {});

  const FramerConfig& config() const { return cfg_; }

  /// Consume samples; any windows closed by them are appended to `out`.
  void push(const cplx* data, std::size_t count, std::vector<FrameWindow>& out);
  void push(const CVec& samples, std::vector<FrameWindow>& out) {
    push(samples.data(), samples.size(), out);
  }

  /// End of stream: close the open window (if any) at the current position.
  void finish(std::vector<FrameWindow>& out);

  /// Online-detection hint: a preamble was found at `pos` inside the open
  /// window. First hint: WAIT_PREAMBLE → WAIT_PAYLOAD; a later overlapped
  /// hint: WAIT_PAYLOAD → JOINT_PENDING.
  void note_preamble(std::uint64_t pos);

  bool in_window() const { return open_; }
  SyncState state() const { return state_; }
  std::uint64_t position() const { return pos_; }
  std::uint64_t window_begin() const { return wbegin_; }

 private:
  void close(std::uint64_t end, std::uint64_t decided_at,
             std::vector<FrameWindow>& out);

  FramerConfig cfg_;
  std::uint64_t pos_ = 0;          ///< samples consumed so far
  bool open_ = false;
  std::uint64_t wbegin_ = 0;
  std::uint64_t active_end_ = 0;   ///< one past the last active sample
  std::size_t silent_run_ = 0;
  SyncState state_ = SyncState::WaitPreamble;
};

}  // namespace zz::phy
