// The known 802.11 preamble (§4.2.1).
//
// Every packet starts with a pseudo-random BPSK sequence known to all
// receivers. Its two properties carry the whole collision detector: it is
// independent of shifted versions of itself (sharp autocorrelation) and
// independent of payload data (near-zero cross-correlation), so the sliding
// correlation of §4.2.1 spikes exactly at packet starts.
#pragma once

#include <cstddef>

#include "zz/common/types.h"

namespace zz::phy {

/// Length, in symbols, of the standard preamble used throughout the
/// reproduction — the paper's prototype uses a 32-bit preamble (§5.1c).
inline constexpr std::size_t kPreambleLength = 32;

/// The shared pseudo-random ±1 preamble sequence of `len` symbols.
/// Deterministic: every node and every test sees the same sequence.
const CVec& preamble(std::size_t len = kPreambleLength);

/// Peak autocorrelation sidelobe magnitude of the preamble (for tests and
/// threshold calibration).
double preamble_max_sidelobe(std::size_t len = kPreambleLength);

/// The preamble as it appears on air: pulse-shaped at 2 samples/symbol
/// through a unit channel, truncated to [0, 2·len) samples. This is the
/// reference sequence the sliding correlator of §4.2.1 uses.
const CVec& preamble_waveform(std::size_t len = kPreambleLength);

/// Energy (Σ|s|²) of the preamble waveform — the Γ'(Δ) normalizer the AP
/// divides by to read H off the correlation peak (§4.2.4a).
double preamble_waveform_energy(std::size_t len = kPreambleLength);

}  // namespace zz::phy
