// Linear modulation schemes.
//
// The paper's prototype uses BPSK ("the modulation scheme that 802.11 uses
// at low rates", §5.1b) but the design claim of §4.2.3(a) is modulation
// independence: ZigZag treats the decoder as a black box, so any scheme
// plugs in. We provide the gray-mapped constellations of 802.11a/g: BPSK,
// QPSK, 16-QAM and 64-QAM, all normalized to unit average symbol energy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "zz/common/types.h"

namespace zz::phy {

enum class Modulation : std::uint8_t { BPSK = 0, QPSK = 1, QAM16 = 2, QAM64 = 3 };

/// Human-readable name ("BPSK", ...).
std::string to_string(Modulation m);

/// Bits carried per symbol (1, 2, 4, 6).
int bits_per_symbol(Modulation m);

/// Bit <-> constellation mapping for one modulation scheme.
class Modulator {
 public:
  explicit Modulator(Modulation m);

  Modulation scheme() const { return scheme_; }
  int bits_per_symbol() const { return bps_; }

  /// Map a group of `bits_per_symbol()` bits (LSB-first in `value`) to a
  /// constellation point.
  cplx map(unsigned value) const { return points_[value & mask_]; }

  /// Modulate a bit stream; the tail is zero-padded to a whole symbol.
  CVec modulate(const Bits& bits) const;

  /// Hard decision: nearest constellation point's bit group.
  unsigned slice(cplx y) const;

  /// Nearest constellation point itself (the "re-encode" step of §4.2.3b
  /// starts from this noise-free point).
  cplx nearest_point(cplx y) const { return points_[slice(y)]; }

  /// Append the hard-decision bits of `y` to `out`, LSB-first.
  void append_bits(cplx y, Bits& out) const;

  /// Demodulate a symbol stream to bits (length = symbols * bps).
  Bits demodulate(const CVec& symbols) const;

  /// Per-bit log-likelihood ratios (max-log approximation), positive = bit 0.
  /// `noise_var` is the complex noise variance at the slicer.
  void soft_bits(cplx y, double noise_var, std::vector<double>& llrs) const;

  /// Minimum distance between constellation points (error-decay analysis).
  double min_distance() const;

 private:
  Modulation scheme_;
  int bps_;
  unsigned mask_;
  std::vector<cplx> points_;
};

}  // namespace zz::phy
