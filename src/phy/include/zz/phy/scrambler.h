// 802.11 data scrambler (x^7 + x^4 + 1 LFSR).
//
// Payload whitening matters to ZigZag: §4.2.1's detector and §4.2.2's
// matcher both rely on data looking pseudo-random so that it decorrelates
// from the preamble and from other packets' data. The standard's scrambler
// provides exactly that.
#pragma once

#include <cstdint>

#include "zz/common/types.h"

namespace zz::phy {

/// Self-synchronizing multiplicative scrambler as used by 802.11. The seed
/// is the 7-bit initial LFSR state (non-zero).
class Scrambler {
 public:
  explicit Scrambler(std::uint8_t seed = 0x7f);

  /// Scramble (or descramble — the operation is an involution when applied
  /// with the same starting state) a bit stream.
  Bits apply(const Bits& in);

  /// Reset to a new starting state.
  void reset(std::uint8_t seed);

 private:
  std::uint8_t state_;
};

/// Deterministic per-frame scrambler seed derived from the frame sequence
/// number (stands in for 802.11's SERVICE-field seed exchange; both ends
/// can compute it).
std::uint8_t scrambler_seed_for(std::uint16_t seq);

}  // namespace zz::phy
