#include "zz/phy/scrambler.h"

namespace zz::phy {

Scrambler::Scrambler(std::uint8_t seed) : state_(seed ? seed : 0x7f) {}

void Scrambler::reset(std::uint8_t seed) { state_ = seed ? seed : 0x7f; }

Bits Scrambler::apply(const Bits& in) {
  Bits out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    // Feedback bit = x^7 XOR x^4 of the current state.
    const std::uint8_t fb =
        static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
    out[i] = static_cast<std::uint8_t>((in[i] ^ fb) & 1u);
    state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7fu);
  }
  return out;
}

std::uint8_t scrambler_seed_for(std::uint16_t seq) {
  // Any non-zero 7-bit function of seq works; both transmitter and receiver
  // derive it from the header.
  const std::uint8_t s = static_cast<std::uint8_t>((seq * 37u + 11u) & 0x7fu);
  return s ? s : 0x5a;
}

}  // namespace zz::phy
