#include "zz/phy/transmitter.h"

#include <stdexcept>

#include "zz/common/crc32.h"
#include "zz/phy/preamble.h"
#include "zz/phy/scrambler.h"

namespace zz::phy {

Bits TxFrame::air_bits() const {
  Bits out = encode_header(header);
  out.insert(out.end(), body_bits.begin(), body_bits.end());
  return out;
}

TxFrame build_frame(const FrameHeader& header, const Bytes& payload) {
  if (payload.size() != header.payload_bytes)
    throw std::invalid_argument("build_frame: payload size != header length");

  TxFrame f;
  f.header = header;
  f.payload = payload;
  f.layout = layout_for(header);

  // Body = payload ‖ CRC-32, then scrambled.
  Bytes body_bytes = payload;
  const std::uint32_t fcs = crc32(payload);
  for (int i = 0; i < 4; ++i)
    body_bytes.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xffu));
  Scrambler scr(scrambler_seed_for(header.seq));
  f.body_bits = scr.apply(unpack_bits(body_bytes));

  // Symbols: preamble (BPSK) + header (BPSK) + body (payload modulation).
  const Modulator header_mod(Modulation::BPSK);
  const Modulator body_mod(header.payload_mod);
  const CVec& pre = preamble();
  f.symbols.reserve(f.layout.total_syms);
  f.symbols.insert(f.symbols.end(), pre.begin(), pre.end());
  const CVec hdr_syms = header_mod.modulate(encode_header(header));
  f.symbols.insert(f.symbols.end(), hdr_syms.begin(), hdr_syms.end());
  const CVec body_syms = body_mod.modulate(f.body_bits);
  f.symbols.insert(f.symbols.end(), body_syms.begin(), body_syms.end());
  if (f.symbols.size() != f.layout.total_syms)
    throw std::logic_error("build_frame: layout mismatch");
  return f;
}

TxFrame with_retry(const TxFrame& frame, bool retry) {
  if (frame.header.retry == retry) return frame;
  FrameHeader h = frame.header;
  h.retry = retry;
  return build_frame(h, frame.payload);
}

bool body_crc_ok(const Bits& body_bits) {
  if (body_bits.size() < 32 || body_bits.size() % 8 != 0) return false;
  const Bytes bytes = pack_bytes(body_bits);
  Bytes payload(bytes.begin(), bytes.end() - 4);
  std::uint32_t fcs = 0;
  for (int i = 0; i < 4; ++i)
    fcs |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + static_cast<std::size_t>(i)])
           << (8 * i);
  return crc32(payload) == fcs;
}

Bytes body_payload(const Bits& body_bits) {
  const Bytes bytes = pack_bytes(body_bits);
  if (bytes.size() < 4) return {};
  return Bytes(bytes.begin(), bytes.end() - 4);
}

}  // namespace zz::phy
