#include "zz/phy/modulation.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace zz::phy {
namespace {

// Gray-coded PAM level for a bit pair/triple as used by 802.11a/g.
// For 2 bits (16-QAM axis): 00->-3, 01->-1, 11->+1, 10->+3.
double gray_pam4(unsigned b) {
  static constexpr double lvl[4] = {-3.0, -1.0, +1.0, +3.0};
  static constexpr unsigned order[4] = {0u, 1u, 3u, 2u};  // gray sequence
  for (unsigned i = 0; i < 4; ++i)
    if (order[i] == b) return lvl[i];
  return 0.0;
}

// For 3 bits (64-QAM axis): gray sequence 000,001,011,010,110,111,101,100.
double gray_pam8(unsigned b) {
  static constexpr double lvl[8] = {-7.0, -5.0, -3.0, -1.0, +1.0, +3.0, +5.0, +7.0};
  static constexpr unsigned order[8] = {0u, 1u, 3u, 2u, 6u, 7u, 5u, 4u};
  for (unsigned i = 0; i < 8; ++i)
    if (order[i] == b) return lvl[i];
  return 0.0;
}

}  // namespace

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::BPSK: return "BPSK";
    case Modulation::QPSK: return "QPSK";
    case Modulation::QAM16: return "16-QAM";
    case Modulation::QAM64: return "64-QAM";
  }
  return "?";
}

int bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::BPSK: return 1;
    case Modulation::QPSK: return 2;
    case Modulation::QAM16: return 4;
    case Modulation::QAM64: return 6;
  }
  return 1;
}

Modulator::Modulator(Modulation m)
    : scheme_(m), bps_(phy::bits_per_symbol(m)), mask_((1u << bps_) - 1u) {
  const auto n = static_cast<std::size_t>(1) << bps_;
  points_.resize(n);
  switch (m) {
    case Modulation::BPSK:
      points_[0] = {-1.0, 0.0};
      points_[1] = {+1.0, 0.0};
      break;
    case Modulation::QPSK: {
      const double a = 1.0 / std::sqrt(2.0);
      for (unsigned v = 0; v < 4; ++v)
        points_[v] = {(v & 1u) ? a : -a, (v & 2u) ? a : -a};
      break;
    }
    case Modulation::QAM16: {
      const double a = 1.0 / std::sqrt(10.0);
      for (unsigned v = 0; v < 16; ++v)
        points_[v] = {a * gray_pam4(v & 3u), a * gray_pam4((v >> 2) & 3u)};
      break;
    }
    case Modulation::QAM64: {
      const double a = 1.0 / std::sqrt(42.0);
      for (unsigned v = 0; v < 64; ++v)
        points_[v] = {a * gray_pam8(v & 7u), a * gray_pam8((v >> 3) & 7u)};
      break;
    }
  }
}

CVec Modulator::modulate(const Bits& bits) const {
  const std::size_t nsym = (bits.size() + bps_ - 1) / static_cast<std::size_t>(bps_);
  CVec out(nsym);
  for (std::size_t s = 0; s < nsym; ++s) {
    unsigned v = 0;
    for (int b = 0; b < bps_; ++b) {
      const std::size_t idx = s * static_cast<std::size_t>(bps_) + static_cast<std::size_t>(b);
      if (idx < bits.size() && bits[idx]) v |= 1u << b;
    }
    out[s] = points_[v];
  }
  return out;
}

unsigned Modulator::slice(cplx y) const {
  unsigned best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (unsigned v = 0; v < points_.size(); ++v) {
    const double d = std::norm(y - points_[v]);
    if (d < best_d) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

void Modulator::append_bits(cplx y, Bits& out) const {
  const unsigned v = slice(y);
  for (int b = 0; b < bps_; ++b)
    out.push_back(static_cast<std::uint8_t>((v >> b) & 1u));
}

Bits Modulator::demodulate(const CVec& symbols) const {
  Bits out;
  out.reserve(symbols.size() * static_cast<std::size_t>(bps_));
  for (const auto& y : symbols) append_bits(y, out);
  return out;
}

void Modulator::soft_bits(cplx y, double noise_var,
                          std::vector<double>& llrs) const {
  llrs.assign(static_cast<std::size_t>(bps_), 0.0);
  const double inv = 1.0 / std::max(noise_var, 1e-12);
  for (int b = 0; b < bps_; ++b) {
    double d0 = std::numeric_limits<double>::max();
    double d1 = std::numeric_limits<double>::max();
    for (unsigned v = 0; v < points_.size(); ++v) {
      const double d = std::norm(y - points_[v]);
      if ((v >> b) & 1u)
        d1 = std::min(d1, d);
      else
        d0 = std::min(d0, d);
    }
    llrs[static_cast<std::size_t>(b)] = (d1 - d0) * inv;  // >0 favours bit 0
  }
}

double Modulator::min_distance() const {
  double dmin = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < points_.size(); ++i)
    for (std::size_t j = i + 1; j < points_.size(); ++j)
      dmin = std::min(dmin, std::abs(points_[i] - points_[j]));
  return dmin;
}

}  // namespace zz::phy
