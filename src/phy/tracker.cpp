#include "zz/phy/tracker.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "zz/common/check.h"
#include "zz/common/mathutil.h"

namespace zz::phy {

ChunkDecoder::ChunkDecoder(TrackingGains gains, std::size_t interp_half_width,
                           bool block_interp)
    : gains_(gains),
      hw_(interp_half_width),
      block_interp_(block_interp),
      interp_(interp_half_width) {
  // decode() partitions chunks into gains_.block-sized tracking blocks; a
  // zero block size would divide by zero there, and interpolation needs at
  // least one tap on each side of the sample.
  ZZ_CHECK_GT(gains_.block, 0u);
  ZZ_CHECK_GT(hw_, 0u);
}

cplx ChunkDecoder::raw_symbol(const CVec& buf, std::ptrdiff_t origin, double k,
                              const LinkEstimate& est) const {
  const auto& p = est.params;
  // Packet-relative sample time of symbol k (2 samples/symbol, §5.1c).
  const double rel = chan::kSps * k * (1.0 + p.drift) + p.mu;
  const double pos = static_cast<double>(origin) + rel;
  const cplx raw = interp_.at(buf, pos);
  const double phi = -kTwoPi * p.freq_offset * rel;
  const cplx derot = raw * cplx{std::cos(phi), std::sin(phi)};
  const cplx h = p.h;
  const double hn = std::norm(h);
  return hn > 1e-18 ? derot * std::conj(h) / hn : derot;
}

void ChunkDecoder::raw_block(const CVec& buf, std::ptrdiff_t origin,
                             std::ptrdiff_t m0, std::ptrdiff_t m1,
                             const LinkEstimate& est, CVec& z) const {
  ZZ_DCHECK_LE(m0, m1);  // a reversed range would wrap the size below
  const auto n = static_cast<std::size_t>(m1 - m0);
  z.resize(n);
  if (!block_interp_) {
    // Per-symbol golden reference route.
    for (std::ptrdiff_t m = m0; m < m1; ++m)
      z[static_cast<std::size_t>(m - m0)] =
          raw_symbol(buf, origin, static_cast<double>(m), est);
    return;
  }
  // Batched route: one block interpolation pass, then the same per-symbol
  // de-rotation and gain normalization arithmetic as raw_symbol — the two
  // routes are bit-identical.
  const auto& p = est.params;
  thread_local std::vector<double> rel, pos;
  rel.resize(n);
  pos.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto k = static_cast<double>(m0 + static_cast<std::ptrdiff_t>(j));
    rel[j] = chan::kSps * k * (1.0 + p.drift) + p.mu;
    pos[j] = static_cast<double>(origin) + rel[j];
  }
  interp_.at_batch(buf, {pos.data(), n}, z.data());
  const cplx h = p.h;
  const double hn = std::norm(h);
  for (std::size_t j = 0; j < n; ++j) {
    const double phi = -kTwoPi * p.freq_offset * rel[j];
    const cplx derot = z[j] * cplx{std::cos(phi), std::sin(phi)};
    z[j] = hn > 1e-18 ? derot * std::conj(h) / hn : derot;
  }
}

ChunkDecoder::Result ChunkDecoder::decode(const CVec& buf,
                                          std::ptrdiff_t origin,
                                          std::size_t k0, std::size_t k1,
                                          std::span<const SymbolSpec> specs,
                                          LinkEstimate& est,
                                          bool backward) const {
  if (k1 < k0) throw std::invalid_argument("ChunkDecoder: k1 < k0");
  const std::size_t n = k1 - k0;
  if (specs.size() < n)
    throw std::invalid_argument("ChunkDecoder: specs shorter than range");

  Result out;
  out.soft.assign(n, cplx{});
  out.decided.assign(n, cplx{});
  if (n == 0) return out;

  // Modulators are immutable after construction; build the table once per
  // process instead of once per chunk decode.
  static const Modulator mods[4] = {Modulator(Modulation::BPSK),
                                    Modulator(Modulation::QPSK),
                                    Modulator(Modulation::QAM16),
                                    Modulator(Modulation::QAM64)};
  auto mod_of = [&](std::size_t i) -> const Modulator& {
    return mods[static_cast<std::size_t>(specs[i].mod)];
  };

  // Margin for the equalizer's non-causal taps: raw symbols just outside the
  // chunk. The ZigZag scheduler guarantees those positions are clean.
  const std::size_t guard =
      std::max(est.equalizer.pre(), est.equalizer.post());

  const std::size_t nblocks = (n + gains_.block - 1) / gains_.block;
  double resid_acc = 0.0;
  std::size_t resid_cnt = 0;

  // Block-decode workspaces, allocated once per decode and reused across
  // blocks and passes (resize within capacity after the first block).
  CVec z, zeq, dec;

  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    const std::size_t b = backward ? nblocks - 1 - bi : bi;
    const std::size_t bk0 = k0 + b * gains_.block;
    const std::size_t bk1 = std::min(k1, bk0 + gains_.block);
    ZZ_DCHECK_LT(bk0, bk1);  // nblocks covers [k0, k1) with no empty block
    const std::size_t bn = bk1 - bk0;

    // Two passes: measure errors with the current estimate, correct, and
    // re-slice with the corrected estimate.
    for (int pass = 0; pass < 2; ++pass) {
      // Raw (pre-equalizer) symbols for the block plus equalizer margin,
      // fetched through the block interpolation engine.
      const std::ptrdiff_t m0 = static_cast<std::ptrdiff_t>(bk0) -
                                static_cast<std::ptrdiff_t>(guard);
      const std::ptrdiff_t m1 =
          static_cast<std::ptrdiff_t>(bk1) + static_cast<std::ptrdiff_t>(guard);
      raw_block(buf, origin, m0, m1, est, z);

      // Equalize and slice the block.
      zeq.resize(bn);
      dec.resize(bn);
      for (std::size_t i = 0; i < bn; ++i) {
        const std::size_t k = bk0 + i;
        const cplx v = est.equalizer.at(
            z, static_cast<std::ptrdiff_t>(k) - m0);
        zeq[i] = v;
        const auto& spec = specs[k - k0];
        dec[i] = spec.pilot ? *spec.pilot
                            : mod_of(k - k0).nearest_point(v);
      }

      if (pass == 1 || !gains_.enabled) {
        // Final pass: emit and accumulate the noise estimate.
        for (std::size_t i = 0; i < bn; ++i) {
          out.soft[bk0 + i - k0] = zeq[i];
          out.decided[bk0 + i - k0] = dec[i];
          resid_acc += std::norm(zeq[i] - dec[i]);
          ++resid_cnt;
        }
        break;
      }

      // --- Tracking (decision-directed, per block) ---
      cplx corr{0.0, 0.0};
      double dpow = 0.0;
      for (std::size_t i = 0; i < bn; ++i) {
        corr += zeq[i] * std::conj(dec[i]);
        dpow += std::norm(dec[i]);
      }
      if (dpow < 1e-12) break;

      const double phase_err = std::arg(corr);
      const double amp_ratio = std::abs(corr) / dpow;

      // Timing error via the derivative of the symbol waveform (a
      // Mueller-and-Müller flavour, §4.2.4c footnote). Sampling early by δ
      // (μ̂ < μ) leaves residual z - d ≈ -δ·s'(t_k), and for the half-band
      // pulse s'(t_k) ∝ d[k+1] - d[k-1]; project the residual onto the
      // slope to read -δ.
      double terr_num = 0.0, terr_den = 0.0;
      if (bn >= 3) {
        for (std::size_t i = 1; i + 1 < bn; ++i) {
          const cplx slope = 0.5 * (dec[i + 1] - dec[i - 1]);
          terr_num += std::real(std::conj(slope) * (zeq[i] - dec[i]));
          terr_den += std::norm(slope);
        }
      } else if (bn == 2) {
        // Degenerate short block (a tail chunk): the central-difference
        // loop above is empty for bn <= 2, which used to freeze μ̂ while
        // phase/amplitude corrections still applied. Use the one-sided
        // difference as the slope at both symbols so short chunks track
        // timing too. (bn == 1 carries no slope information at all; μ̂ is
        // legitimately left untouched there.)
        const cplx slope = dec[1] - dec[0];
        terr_num += std::real(std::conj(slope) * (zeq[0] - dec[0]));
        terr_num += std::real(std::conj(slope) * (zeq[1] - dec[1]));
        terr_den += 2.0 * std::norm(slope);
      }
      const double timing_err = terr_den > 1e-9 ? -terr_num / terr_den : 0.0;

#ifdef ZZ_TRACKER_DEBUG
      std::fprintf(stderr,
                   "blk %zu k0=%zu e_phi=%+.3f amp=%.3f e_t=%+.3f f=%+.5f "
                   "mu=%+.3f argh=%+.3f\n",
                   b, bk0, phase_err, amp_ratio, timing_err,
                   est.params.freq_offset, est.params.mu,
                   std::arg(est.params.h));
#endif
      // Apply the corrections.
      auto& p = est.params;
      const double dphi = gains_.phase * phase_err;
      p.h *= cplx{std::cos(dphi), std::sin(dphi)};
      const double damp = 1.0 + gains_.amplitude * (amp_ratio - 1.0);
      p.h *= std::clamp(damp, 0.5, 2.0);
      // Frequency: phase error accrued over one block of symbols
      // (block·kSps samples). De-rotation is referenced to the packet
      // start, so a frequency bump Δf would retroactively rotate the
      // current position by 2π·Δf·rel — rotate ĥ to keep the phase
      // continuous here and let the new slope act only going forward.
      const double df =
          gains_.freq * phase_err /
          (kTwoPi * chan::kSps * static_cast<double>(gains_.block));
      const double df_applied = backward ? -df : df;
      p.freq_offset += df_applied;
      const double rel_center =
          chan::kSps * (static_cast<double>(bk0) +
                        0.5 * static_cast<double>(bn)) *
              (1.0 + p.drift) +
          p.mu;
      const double comp = -kTwoPi * df_applied * rel_center;
      p.h *= cplx{std::cos(comp), std::sin(comp)};
      p.mu += std::clamp(gains_.timing * timing_err, -0.1, 0.1);
    }
  }

  out.noise_var = resid_cnt ? resid_acc / static_cast<double>(resid_cnt) : 0.0;
  // Seed the slicer-noise EWMA from the first measurement: the pre-decode
  // noise_var is a prior of a different scale, and blending the first
  // measurement into it at 10% weight biased early chunks' noise ranking.
  if (!est.noise_seeded) {
    est.noise_var = out.noise_var;
    est.noise_seeded = true;
  } else {
    est.noise_var = 0.9 * est.noise_var + 0.1 * out.noise_var;
  }
  return out;
}

}  // namespace zz::phy
