#include "zz/phy/preamble.h"

#include <cmath>
#include <map>
#include <mutex>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/signal/correlate.h"

namespace zz::phy {
namespace {

CVec make_preamble(std::size_t len) {
  // Fixed seed: the preamble is part of the "standard", identical for every
  // node, every run, every test.
  Rng rng(0xbadc0ffee0ddf00dULL ^ len);
  CVec p(len);
  for (auto& s : p) s = rng.bit() ? cplx{1.0, 0.0} : cplx{-1.0, 0.0};
  return p;
}

}  // namespace

const CVec& preamble(std::size_t len) {
  static std::mutex mu;
  static std::map<std::size_t, CVec> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(len);
  if (it == cache.end()) it = cache.emplace(len, make_preamble(len)).first;
  return it->second;
}

const CVec& preamble_waveform(std::size_t len) {
  static std::mutex mu;
  static std::map<std::size_t, CVec> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(len);
  if (it == cache.end()) {
    // Render through a unit channel; keep the [0, kSps·len) window. The
    // pulse tails that fall before symbol 0 are tiny and truncating them
    // costs a fraction of a percent of correlation energy.
    const std::size_t n = static_cast<std::size_t>(chan::kSps) * len;
    CVec buf(n + 64, cplx{0.0, 0.0});
    chan::add_signal(buf, 0, preamble(len), chan::ChannelParams{});
    buf.resize(n);
    it = cache.emplace(len, std::move(buf)).first;
  }
  return it->second;
}

double preamble_waveform_energy(std::size_t len) {
  return energy(preamble_waveform(len));
}

double preamble_max_sidelobe(std::size_t len) {
  const CVec& p = preamble(len);
  double worst = 0.0;
  for (std::size_t shift = 1; shift < len; ++shift) {
    cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k + shift < len; ++k)
      acc += std::conj(p[k]) * p[k + shift];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

}  // namespace zz::phy
