#include "zz/phy/receiver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "zz/common/mathutil.h"
#include "zz/phy/preamble.h"
#include "zz/phy/scrambler.h"
#include "zz/signal/correlate.h"

namespace zz::phy {

double estimate_noise_floor(const CVec& rx, std::size_t window) {
  if (rx.size() < window || window == 0) return mean_power(rx);
  double best = std::numeric_limits<double>::max();
  for (std::size_t start = 0; start + window <= rx.size(); start += window / 2) {
    double p = 0.0;
    for (std::size_t i = 0; i < window; ++i) p += std::norm(rx[start + i]);
    best = std::min(best, p / static_cast<double>(window));
  }
  return best;
}

double estimate_noise_floor_robust(const CVec& rx, std::size_t window) {
  if (rx.size() < 2 * window || window < 2) return estimate_noise_floor(rx, window);
  std::vector<double> powers;
  powers.reserve(2 * rx.size() / window);
  for (std::size_t start = 0; start + window <= rx.size(); start += window / 2) {
    double p = 0.0;
    for (std::size_t i = 0; i < window; ++i) p += std::norm(rx[start + i]);
    powers.push_back(p / static_cast<double>(window));
  }
  if (powers.size() < 4) return *std::min_element(powers.begin(), powers.end());
  // The minimum of many chi-square window averages is biased ~20% low —
  // enough to miscalibrate a detection threshold. Averaging the 2nd and
  // 3rd order statistics instead keeps the quiet-region selectivity while
  // cancelling most of the bias.
  std::partial_sort(powers.begin(), powers.begin() + 3, powers.end());
  return 0.5 * (powers[1] + powers[2]);
}

PreambleEstimate estimate_at_peak(const CVec& rx, std::size_t peak,
                                  double coarse_freq,
                                  std::size_t preamble_len) {
  const CVec& ref = preamble_waveform(preamble_len);
  const double eref = preamble_waveform_energy(preamble_len);
  PreambleEstimate e;
  e.origin = static_cast<std::ptrdiff_t>(peak);

  const cplx g = sig::correlation_at(ref, rx, peak, coarse_freq);
  e.metric = std::abs(g);
  e.h = g / eref;  // Γ'(Δ) / Σ|s[k]|², §4.2.4(a)

  // Sub-sample arrival from the shape of the correlation peak.
  CVec local(3);
  local[0] = peak > 0 ? sig::correlation_at(ref, rx, peak - 1, coarse_freq)
                      : cplx{0.0, 0.0};
  local[1] = g;
  local[2] = sig::correlation_at(ref, rx, peak + 1, coarse_freq);
  e.mu = sig::parabolic_peak_offset(local, 1);

  // δf from the phase slope between the two preamble halves: each half
  // correlates coherently; the inter-half phase step accrues over half the
  // waveform length. (Unambiguous for |δf| < 1/(2·len) cycles/sample.)
  const std::size_t half = ref.size() / 2;
  const CVec first(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(half));
  const CVec second(ref.begin() + static_cast<std::ptrdiff_t>(half), ref.end());
  const cplx g1 = sig::correlation_at(first, rx, peak, coarse_freq);
  const cplx g2 = sig::correlation_at(second, rx, peak + half, coarse_freq);
  if (std::abs(g1) > 1e-9 && std::abs(g2) > 1e-9) {
    // Local compensation restarts per window, so the inter-window step
    // reflects the *total* frequency offset, not the residual.
    const double dphi = std::arg(g2 * std::conj(g1));
    e.freq_offset = dphi / (kTwoPi * static_cast<double>(half));
  } else {
    e.freq_offset = coarse_freq;
  }
  return e;
}

StandardReceiver::StandardReceiver(ReceiverConfig cfg) : cfg_(std::move(cfg)) {}

double StandardReceiver::detection_threshold(double snr_linear,
                                             double noise_floor) const {
  // |Γ'| at a true peak ≈ E_ref·|H| with E_ref the reference energy; β
  // trades false positives against false negatives exactly as in §5.3(a).
  // The calibration gain mirrors zigzag::DetectorConfig::calibration: it
  // maps the paper's β onto this waveform family's correlation statistics.
  return cfg_.detect_beta * cfg_.detect_calibration *
         preamble_waveform_energy(cfg_.preamble_len) *
         std::sqrt(std::max(snr_linear, 1e-6) * std::max(noise_floor, 1e-12));
}

PacketDecode StandardReceiver::decode(const CVec& rx,
                                      const SenderProfile* profile) const {
  // The persistent scan engine below is single-caller state; a recursive
  // or cross-thread second entry would silently corrupt the prepared
  // stream transforms mid-scan (receiver.h documents the contract).
  const ReentryScope guard(scan_busy_, "StandardReceiver::decode");
  const double coarse = profile ? profile->freq_offset : 0.0;
  // Full-buffer preamble scan through the persistent SlidingCorrelator
  // engine (same routing as sig::sliding_correlation, so the numbers are
  // unchanged — short buffers keep the naive loop, long ones reuse this
  // receiver's prepared engine instead of building one per call).
  const CVec& ref = preamble_waveform(cfg_.preamble_len);
  if (rx.size() < ref.size() || ref.empty()) return {};
  const std::size_t positions = rx.size() - ref.size() + 1;
  if (positions < sig::kSlidingNaiveCutoff) {
    scan_corr_ = sig::sliding_correlation_naive(ref, rx, coarse);
  } else {
    if (!scan_) scan_ = std::make_unique<sig::SlidingCorrelator>(ref);
    scan_->prepare(rx);
    scan_->correlate(coarse, scan_corr_);
  }
  const CVec& corr = scan_corr_;
  if (corr.empty()) return {};

  std::size_t peak = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const double m = std::abs(corr[i]);
    if (m > best) {
      best = m;
      peak = i;
    }
  }
  const double noise = estimate_noise_floor_robust(rx);
  const double snr_hint = profile ? db_to_lin(profile->snr_db) : 1.0;
  if (best < detection_threshold(snr_hint, noise)) return {};
  return decode_at(rx, peak, profile);
}

PacketDecode StandardReceiver::decode_at(const CVec& rx, std::size_t peak,
                                         const SenderProfile* profile) const {
  PacketDecode out;
  const double coarse = profile ? profile->freq_offset : 0.0;
  const PreambleEstimate pe =
      estimate_at_peak(rx, peak, coarse, cfg_.preamble_len);
  out.detected = true;
  out.origin = pe.origin;

  LinkEstimate est;
  est.params.h = pe.h;
  // The association-time estimate (tracked over a whole clean packet) beats
  // the preamble phase-slope when available; the decoder's own tracking
  // absorbs whatever remains either way.
  est.params.freq_offset = profile ? profile->freq_offset : pe.freq_offset;
  est.params.mu = pe.mu;
  est.params.drift = 0.0;
  if (profile && !profile->isi.is_identity()) {
    est.params.isi = profile->isi;
    est.equalizer = profile->equalizer;
  }
  est.noise_var = estimate_noise_floor(rx);

  const ChunkDecoder dec(cfg_.gains, cfg_.interp_half_width);
  const std::size_t L = cfg_.preamble_len;

  // Preamble symbols are pilots; header is BPSK.
  std::vector<SymbolSpec> specs(L + kHeaderBits);
  const CVec& pre = preamble(L);
  for (std::size_t k = 0; k < L; ++k) specs[k] = {Modulation::BPSK, pre[k]};
  for (std::size_t k = L; k < specs.size(); ++k)
    specs[k] = {Modulation::BPSK, std::nullopt};

  const auto head = dec.decode(rx, pe.origin, 0, L + kHeaderBits, specs, est);

  const Modulator bpsk(Modulation::BPSK);
  Bits header_bits;
  header_bits.reserve(kHeaderBits);
  for (std::size_t k = L; k < L + kHeaderBits; ++k)
    bpsk.append_bits(head.soft[k], header_bits);

  const auto header = decode_header(header_bits);
  if (!header) {
    out.est = est;
    return out;
  }
  out.header_ok = true;
  out.header = *header;

  const FrameLayout layout = layout_for(*header);
  const Modulator body_mod(header->payload_mod);
  std::vector<SymbolSpec> body_specs(layout.body_syms,
                                     {header->payload_mod, std::nullopt});
  const auto body = dec.decode(rx, pe.origin, layout.body_begin(),
                               layout.total_syms, body_specs, est);

  out.air_bits = header_bits;
  Bits body_bits;
  body_bits.reserve(layout.body_bits);
  for (const auto& s : body.soft) body_mod.append_bits(s, body_bits);
  body_bits.resize(layout.body_bits);
  out.air_bits.insert(out.air_bits.end(), body_bits.begin(), body_bits.end());

  out.soft = head.soft;
  out.soft.erase(out.soft.begin(),
                 out.soft.begin() + static_cast<std::ptrdiff_t>(L));
  out.soft.insert(out.soft.end(), body.soft.begin(), body.soft.end());

  Scrambler scr(scrambler_seed_for(header->seq));
  const Bits descrambled = scr.apply(body_bits);
  if (body_crc_ok(descrambled)) {
    out.crc_ok = true;
    out.payload = body_payload(descrambled);
  }
  out.est = est;
  return out;
}

SenderProfile StandardReceiver::associate(const CVec& clean_rx,
                                          std::uint8_t id) const {
  SenderProfile p;
  p.id = id;

  // First decode with no ISI knowledge (identity equalizer).
  const PacketDecode d0 = decode(clean_rx, nullptr);
  if (!d0.header_ok)
    throw std::runtime_error("associate: could not decode association packet");
  p.freq_offset = d0.est.params.freq_offset;
  p.mod = d0.header.payload_mod;

  const double noise = estimate_noise_floor(clean_rx);
  p.snr_db = lin_to_db(std::max(std::norm(d0.est.params.h), 1e-12) /
                       std::max(noise, 1e-12));

  // Fit the symbol-spaced ISI channel: regress the raw (pre-equalizer)
  // symbol estimates against the re-modulated decided symbols.
  const TxFrame ref = build_frame(d0.header, d0.crc_ok ? d0.payload : Bytes(d0.header.payload_bytes, 0));
  if (d0.crc_ok && ref.symbols.size() >= d0.soft.size()) {
    const std::size_t L = cfg_.preamble_len;
    CVec x(ref.symbols.begin() + static_cast<std::ptrdiff_t>(L),
           ref.symbols.end());
    CVec z = d0.soft;
    const std::size_t n = std::min(x.size(), z.size());
    x.resize(n);
    z.resize(n);
    p.isi = sig::fit_fir(x, z, 1, 1);
    p.equalizer = p.isi.inverse(cfg_.equalizer_len, (cfg_.equalizer_len - 1) / 2);
  }
  return p;
}

}  // namespace zz::phy
