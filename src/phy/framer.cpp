#include "zz/phy/framer.h"

#include <complex>

#include "zz/common/check.h"

namespace zz::phy {

FrameSync::FrameSync(FramerConfig cfg) : cfg_(cfg) {
  ZZ_CHECK_GE(cfg_.gap_hang, 1u);
  ZZ_CHECK_GT(cfg_.max_window, cfg_.gap_hang);
}

void FrameSync::close(std::uint64_t end, std::uint64_t decided_at,
                      std::vector<FrameWindow>& out) {
  out.push_back(FrameWindow{wbegin_, end, decided_at, state_});
  open_ = false;
  silent_run_ = 0;
  state_ = SyncState::WaitPreamble;
}

void FrameSync::push(const cplx* data, std::size_t count,
                     std::vector<FrameWindow>& out) {
  for (std::size_t i = 0; i < count; ++i) {
    const bool active = std::norm(data[i]) > cfg_.silence_eps;
    const std::uint64_t p = pos_++;
    if (!open_) {
      if (!active) continue;
      open_ = true;
      wbegin_ = p;
      active_end_ = p + 1;
      silent_run_ = 0;
      state_ = SyncState::WaitPreamble;
      continue;
    }
    if (active) {
      active_end_ = p + 1;
      silent_run_ = 0;
    } else if (++silent_run_ >= cfg_.gap_hang) {
      // The window ends at the last active sample: the silence hang is a
      // closure *decision* delay, not window content, so the recovered
      // buffer matches the offline reception exactly.
      close(active_end_, p + 1, out);
      continue;
    }
    if (open_ && p + 1 - wbegin_ >= cfg_.max_window)
      close(p + 1, p + 1, out);
  }
}

void FrameSync::finish(std::vector<FrameWindow>& out) {
  if (open_) close(active_end_, pos_, out);
}

void FrameSync::note_preamble(std::uint64_t pos) {
  if (!open_) return;
  ZZ_DCHECK_GE(pos, wbegin_);
  switch (state_) {
    case SyncState::WaitPreamble:
      state_ = SyncState::WaitPayload;
      break;
    case SyncState::WaitPayload:
      state_ = SyncState::JointPending;
      break;
    case SyncState::JointPending:
      break;  // already known to be a collision
  }
}

}  // namespace zz::phy
