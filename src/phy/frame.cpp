#include "zz/phy/frame.h"

#include <stdexcept>

#include "zz/phy/preamble.h"

namespace zz::phy {
namespace {

void put_bits(Bits& out, std::uint32_t value, int nbits) {
  for (int b = 0; b < nbits; ++b)
    out.push_back(static_cast<std::uint8_t>((value >> b) & 1u));
}

std::uint32_t get_bits(const Bits& in, std::size_t& pos, int nbits) {
  std::uint32_t v = 0;
  for (int b = 0; b < nbits; ++b, ++pos)
    if (pos < in.size() && in[pos]) v |= 1u << b;
  return v;
}

}  // namespace

std::uint8_t crc8_bits(const Bits& bits) {
  std::uint8_t crc = 0;
  for (auto bit : bits) {
    const std::uint8_t top = static_cast<std::uint8_t>((crc >> 7) & 1u);
    crc = static_cast<std::uint8_t>(crc << 1);
    if (top ^ (bit & 1u)) crc ^= 0x07u;
  }
  return crc;
}

Bits encode_header(const FrameHeader& h) {
  Bits bits;
  bits.reserve(kHeaderBits);
  put_bits(bits, h.sender_id, 8);
  put_bits(bits, h.seq, 16);
  put_bits(bits, h.retry ? 1u : 0u, 1);
  put_bits(bits, static_cast<std::uint32_t>(h.payload_mod), 2);
  put_bits(bits, h.payload_bytes & 0x1fffu, 13);
  put_bits(bits, crc8_bits(bits), 8);
  return bits;
}

std::optional<FrameHeader> decode_header(const Bits& bits) {
  if (bits.size() < kHeaderBits) return std::nullopt;
  Bits body(bits.begin(),
            bits.begin() + static_cast<std::ptrdiff_t>(kHeaderFieldBits));
  std::size_t pos = kHeaderFieldBits;
  const auto hcs = static_cast<std::uint8_t>(
      get_bits(bits, pos, static_cast<int>(kHeaderHcsBits)));
  if (crc8_bits(body) != hcs) return std::nullopt;

  FrameHeader h;
  pos = 0;
  h.sender_id = static_cast<std::uint8_t>(get_bits(bits, pos, 8));
  h.seq = static_cast<std::uint16_t>(get_bits(bits, pos, 16));
  h.retry = get_bits(bits, pos, 1) != 0;
  const auto mod = get_bits(bits, pos, 2);
  if (mod > static_cast<std::uint32_t>(Modulation::QAM64)) return std::nullopt;
  h.payload_mod = static_cast<Modulation>(mod);
  h.payload_bytes = static_cast<std::uint16_t>(get_bits(bits, pos, 13));
  return h;
}

std::size_t FrameLayout::retry_symbol() const {
  // Header is BPSK: one bit per symbol.
  return preamble_syms + kHeaderRetryBit;
}

FrameLayout layout_for(const FrameHeader& h) {
  FrameLayout l;
  l.preamble_syms = kPreambleLength;
  l.header_syms = kHeaderBits;  // BPSK, 1 bit/symbol
  l.body_bits = 8u * (static_cast<std::size_t>(h.payload_bytes) + 4u);
  const int bps = bits_per_symbol(h.payload_mod);
  l.body_syms = (l.body_bits + static_cast<std::size_t>(bps) - 1) /
                static_cast<std::size_t>(bps);
  l.total_syms = l.preamble_syms + l.header_syms + l.body_syms;
  return l;
}

Bytes pack_bytes(const Bits& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return out;
}

Bits unpack_bits(const Bytes& bytes) {
  Bits out(bytes.size() * 8);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    for (int b = 0; b < 8; ++b)
      out[i * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>((bytes[i] >> b) & 1u);
  return out;
}

}  // namespace zz::phy
