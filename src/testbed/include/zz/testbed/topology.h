// The 14-node indoor testbed (§5.1, Fig 5-1), synthesized.
//
// Nodes are placed in a square arena; log-distance path loss maps node
// pairs to SNRs and carrier-sense outcomes. The default geometry is tuned
// so the sender-pair mix matches the paper's: ≈12% perfect hidden
// terminals, ≈8% partial, ≈80% sense each other fine.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/rng.h"

namespace zz::testbed {

enum class Sensing { Hidden, Partial, Full };

struct TopologyConfig {
  std::size_t nodes = 14;
  double arena_m = 60.0;            ///< square side
  double ref_snr_db = 62.5;         ///< SNR at 1 m (calibrated, see DESIGN)
  double path_loss_exp = 3.2;       ///< indoor NLOS-ish
  double min_link_snr_db = 6.0;     ///< below this a link is unusable
  double sense_snr_db = 9.0;        ///< carrier sense works above this
  double partial_band_db = 1.0;     ///< within this of threshold: partial
};

class Topology {
 public:
  Topology(Rng& rng, TopologyConfig cfg = {});

  std::size_t size() const { return x_.size(); }
  double snr_db(std::size_t a, std::size_t b) const;
  Sensing sensing(std::size_t a, std::size_t b) const;
  /// Can `rx` decode clean packets from `tx` at all?
  bool usable(std::size_t tx, std::size_t rx) const;

  /// Fraction of sender pairs (with a usable common AP) in each sensing
  /// class — used to verify the 12/8/80 mix.
  struct Mix {
    double hidden = 0, partial = 0, full = 0;
  };
  Mix sensing_mix() const;

  /// All (sender, sender, ap) triples where both senders reach the AP.
  struct PairChoice {
    std::size_t s1, s2, ap;
  };
  std::vector<PairChoice> viable_pairs() const;

 private:
  TopologyConfig cfg_;
  std::vector<double> x_, y_;
};

}  // namespace zz::testbed
