// The n-sender scenario engine (§5.2, §5.5–§5.7 generalized).
//
// A Scenario describes an experiment declaratively — n senders with
// per-sender SNR and traffic, a receiver design, MAC timing and the way
// the AP collects equations — and one generic simulation loop runs it.
// The fixed-arity run_pair / run_three_hidden entry points of
// zz/testbed/experiment.h are thin wrappers over this engine.
//
// Two collection modes mirror the paper's two methodologies:
//  * Live (§5.2): saturated senders contend under (possibly failing)
//    carrier sense; every reception is decoded online by the chosen
//    receiver, collisions included. With two senders this reproduces the
//    historical run_pair loop draw-for-draw.
//  * LoggedJoint (§5.7): each round the n senders retransmit the same n
//    packets until the AP has logged enough collisions (≥ n equations for
//    n unknowns, §4.5), then the log is decoded offline in one joint
//    ZigZag decode. Equations are ordered best-conditioned-first
//    (zigzag::order_equations) and extra equations are requested when the
//    §4.5 pairwise feasibility condition fails or the decode leaves
//    packets unresolved — every extra collision costs one airtime round,
//    exactly like the retransmission it models.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/rng.h"
#include "zz/mac/slotted.h"
#include "zz/testbed/experiment.h"
#include "zz/zigzag/decoder.h"

namespace zz::testbed {

/// One sender of a scenario.
struct SenderSpec {
  double snr_db = 12.0;
  /// Packets this sender offers; 0 = ExperimentConfig::packets_per_sender.
  /// (LoggedJoint rounds are lockstep, so the mode uses the config value
  /// for every sender.)
  std::size_t packets = 0;
};

/// How the AP collects decodable equations.
///  * Live (§5.2): saturated senders contend under emulated carrier sense;
///    every reception is decoded online.
///  * LoggedJoint (§5.7): rounds of lockstep retransmissions are logged and
///    decoded offline in one joint decode.
///  * SlottedAloha (arXiv:1501.00976): packet-sized slots; backlogged
///    senders transmit per slot with probability p at slot-aligned starts
///    (up to a sync error). ZigZag receivers store collided slots and
///    joint-decode them once a matching retransmission slot arrives;
///    Current80211 is plain slotted ALOHA (collisions lost unless capture).
///  * Streaming: the Live contention loop, but the AP is the incremental
///    sample-in → packet-out pipeline (zigzag::StreamingReceiver): every
///    reception is pushed through the stream in fixed chunks separated by
///    silence gaps, framed online, and decoded as soon as its window
///    closes. Draw-for-draw identical RNG consumption to Live, and — by
///    the gated streaming contract — bit-identical delivered packets, so
///    ScenarioStats flows match Live exactly; the stream_* fields add the
///    latency accounting. ZigZag receiver kind only.
enum class CollectMode { Live, LoggedJoint, SlottedAloha, Streaming };

/// Decoder tuning for n-way (3+) joint decodes: best-first chunk
/// scheduling plus a second refinement pass. Measurably fewer decode
/// failures when every collision carries 3+ overlapped packets; the
/// two-way live path keeps the stock options.
zigzag::DecodeOptions nway_decode_options();

struct Scenario {
  std::vector<SenderSpec> senders;
  ReceiverKind receiver = ReceiverKind::ZigZag;
  CollectMode mode = CollectMode::Live;
  /// Live: probability the contending senders sense each other
  /// (1 = full carrier sense, 0 = perfect hidden terminals).
  double p_sense = 0.0;
  /// LoggedJoint: extra equations the AP may log when feasibility or the
  /// joint decode fails before giving up on the round's missing packets.
  std::size_t max_extra_equations = 4;
  /// LoggedJoint: the senders' standing retry count when a round begins —
  /// collision c draws its backoff from cw_after(backoff_stage + c).
  /// Saturated hidden terminals never operate at CWmin (the window only
  /// resets after a *successful* delivery, and during §5.7 logging there
  /// is none), so Fig 5-9-style scenarios start elevated; 0 reproduces the
  /// historical run_three_hidden draw schedule.
  std::size_t backoff_stage = 0;
  /// LoggedJoint decode options (ZigZag receiver kind only).
  zigzag::DecodeOptions joint_decode = nway_decode_options();
  /// SlottedAloha: per-slot transmission probability and slot sync error.
  mac::SlottedTiming slotted{};
  ExperimentConfig cfg{};
};

/// Per-run outcome: one FlowStats per sender plus contention-regime
/// throughput, sized to the scenario's n.
struct ScenarioStats {
  std::vector<FlowStats> flows;
  std::size_t airtime_rounds = 0;
  std::size_t concurrent_rounds = 0;
  /// Per-sender throughput while ≥2 senders were backlogged (Fig 5-4/§5.6
  /// regime; equals flows[i].throughput in LoggedJoint mode where every
  /// round is contended).
  std::vector<double> concurrent_throughput;

  /// CollectMode::Streaming only (zeros elsewhere): latency accounting of
  /// the streaming pipeline, in stream samples. Deterministic at a fixed
  /// seed, so benches drift-gate these alongside the throughput numbers.
  std::uint64_t stream_samples = 0;      ///< total samples pushed
  std::uint64_t stream_windows = 0;      ///< reception windows decoded
  std::uint64_t stream_deliveries = 0;   ///< packets out of the stream
  std::uint64_t first_delivery_pos = 0;  ///< decoded_at of first delivery
  /// Mean decoded_at − window_begin over deliveries: how long after a
  /// reception began its packets were out (window length + silence hang —
  /// versus "end of log" for the offline routes).
  double mean_decode_latency = 0.0;
  std::size_t stream_max_push_work = 0;  ///< bounded-per-push pin
  std::size_t stream_max_retained = 0;   ///< peak ring occupancy

  double total_throughput() const;
  /// Jain's fairness index over per-flow throughput: 1 = perfectly fair,
  /// 1/n = one sender starves the rest. 1 when every flow is zero.
  double fairness_index() const;
};

/// Run one scenario. Throws std::invalid_argument on an empty sender list,
/// on LoggedJoint with fewer than two senders, on AlgebraicMP outside
/// LoggedJoint (it is an offline joint decoder), and on
/// CollisionFreeScheduler under SlottedAloha (a TDMA schedule has no
/// slotted contention to resolve).
ScenarioStats run_scenario(Rng& rng, const Scenario& scenario);

/// Convenience topology: n identical hidden senders at one SNR — the
/// Fig 5-9 shape for any n. AlgebraicMP scenarios always collect
/// LoggedJoint; SlottedAloha is chosen by setting `mode` afterwards.
Scenario hidden_n_scenario(std::size_t n, double snr_db, ReceiverKind kind,
                           const ExperimentConfig& cfg = {});

}  // namespace zz::testbed
