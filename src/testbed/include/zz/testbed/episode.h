// One Live/Streaming scenario as a resumable stream of contention rounds.
//
// run_scenario's Live and Streaming modes are a loop: while any sender is
// backlogged, play one contention round (clean slot, separated backoffs or
// a collision) through the AP. EpisodeStream is that loop exposed one
// round at a time, so a caller can interleave many independent episodes —
// the AP-farm (src/farm) runs one EpisodeStream per (cell, episode) and
// multiplexes thousands of them over a worker pool. run_scenario itself is
// a thin wrapper (construct, step to completion, finish), so the stream
// consumes the scenario RNG draw-for-draw like the historical loop and
// every committed baseline is reproduced bit for bit.
#pragma once

#include <memory>

#include "zz/common/rng.h"
#include "zz/testbed/scenario.h"

namespace zz::testbed {

/// Borrowed per-worker decode resources threaded into the episode's AP
/// (ZigZag receiver kinds only; ignored by the others). `cache` becomes
/// the receiver's shared chunk-decode memo — persistent across receptions
/// and across episodes, so warm replay of a repeated episode hits instead
/// of re-running the black-box decoder. `arena` supplies the decoder's
/// scratch buffers, reused across episodes so steady-state decodes stop
/// allocating. Both are thread-confined by their own contracts: one
/// resource set must never be inside two concurrently-stepped episodes
/// (the farm keys a set by the pool's stable worker id). Results are
/// bit-identical with or without them.
struct EpisodeResources {
  zigzag::DecodeCache* cache = nullptr;
  sig::ScratchArena* arena = nullptr;
};

class EpisodeStream {
 public:
  /// Builds the senders and the AP, consuming the scenario's opening RNG
  /// draws (sender channels and profiles). Valid for CollectMode::Live and
  /// CollectMode::Streaming under the same receiver-kind rules as
  /// run_scenario; throws std::invalid_argument otherwise.
  EpisodeStream(const Scenario& scenario, Rng& rng,
                const EpisodeResources& res = {});
  ~EpisodeStream();
  EpisodeStream(const EpisodeStream&) = delete;
  EpisodeStream& operator=(const EpisodeStream&) = delete;

  /// True once every sender's backlog is drained; step() is then a no-op.
  bool done() const;

  /// Play one contention round: pick the transmitting sender(s), run the
  /// waveforms through the AP, and account deliveries/retries — exactly
  /// one iteration of the historical run_scenario loop, consuming the
  /// identical RNG draws.
  void step(Rng& rng);

  /// Airtime rounds elapsed so far (collision rounds that separated into
  /// k clean transmissions count k, as in ScenarioStats).
  std::size_t rounds() const;

  /// Flush the streaming tail and compute the final ScenarioStats. Call
  /// once, after done(); further step()/finish() calls are invalid.
  ScenarioStats finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace zz::testbed
