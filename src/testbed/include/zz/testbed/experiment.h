// Pairwise flow experiments (§5.2, §5.5–§5.7): two (or three) saturated
// senders push packets to an AP under one of the three compared receiver
// designs, with carrier sensing emulated per the pair's topology class.
//
// Every reception is materialized as waveforms and decoded by the real PHY
// — collisions included — mirroring the paper's log-and-decode-offline
// methodology. Delivery follows §5.1(f): a packet counts when its uncoded
// BER is below 1e-3.
//
// These fixed-arity entry points are source-compatible wrappers over the
// n-sender scenario engine in zz/testbed/scenario.h — new code (and any
// n > 3 topology) should describe a Scenario and call run_scenario.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/rng.h"
#include "zz/mac/timing.h"
#include "zz/phy/modulation.h"

namespace zz::testbed {

/// The compared receiver designs: the three of §5.1(e) plus the
/// "Collision Helps" algebraic message-passing receiver (arXiv:1001.1948,
/// zz/zigzag/algebraic_mp.h), which joint-decodes the same LoggedJoint
/// collision logs by peeling/eliminating chunk equations instead of the
/// full ZigZag §4.2.4 tracking loop.
enum class ReceiverKind {
  Current80211,
  ZigZag,
  CollisionFreeScheduler,
  AlgebraicMP,
};

struct ExperimentConfig {
  ExperimentConfig() { timing.cw_max = 127; }

  std::size_t packets_per_sender = 30;
  /// 300 B keeps runs fast while preserving the paper's key geometry: the
  /// packet (≈5000 samples) outlasts the maximum backoff window
  /// (CWmax·slot ≈ 2540 samples), so hidden terminals cannot escape each
  /// other through backoff — just like 1500 B packets against CWmax 1023
  /// at 500 kb/s.
  std::size_t payload_bytes = 300;
  phy::Modulation mod = phy::Modulation::BPSK;
  mac::DcfTiming timing{};
  std::size_t slot_samples = 20;  ///< one 20 µs slot at 500 kb/s, 2 sps
  double freq_jitter = 2e-5;      ///< oscillator wander since association
  double ber_threshold = 1e-3;    ///< §5.1(f) delivery criterion
};

/// Per-sender outcome of one experiment run.
struct FlowStats {
  std::size_t offered = 0;
  std::size_t delivered = 0;
  double throughput = 0.0;  ///< delivered / total airtime rounds

  double loss_rate() const {
    return offered ? 1.0 - static_cast<double>(delivered) /
                               static_cast<double>(offered)
                   : 0.0;
  }
};

struct PairStats {
  FlowStats flows[2];
  std::size_t airtime_rounds = 0;
  /// Throughput measured while BOTH senders are backlogged — the regime
  /// Fig 5-4 and §5.6 report. Once one sender drains, the other's solo
  /// tail would otherwise dilute the contention story.
  double concurrent_throughput[2] = {0.0, 0.0};
  std::size_t concurrent_rounds = 0;

  double total_throughput() const {
    return concurrent_throughput[0] + concurrent_throughput[1];
  }
};

/// Run one sender-pair experiment. `p_sense` is the probability the two
/// senders detect each other's transmissions (1 = full carrier sense,
/// 0 = perfect hidden terminals, between = partial).
PairStats run_pair(Rng& rng, ReceiverKind kind, double snr_a_db,
                   double snr_b_db, double p_sense,
                   const ExperimentConfig& cfg = {});

/// Three hidden senders to one AP (§5.7). Returns one FlowStats per sender.
std::vector<FlowStats> run_three_hidden(Rng& rng, ReceiverKind kind,
                                        double snr_db,
                                        const ExperimentConfig& cfg = {});

}  // namespace zz::testbed
