// The n-sender sweep (Fig 5-9 generalized to n = 2..6): hidden-n
// LoggedJoint scenarios per n, pooled over worker threads with sharded
// RNG so the results are bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "zz/common/thread_pool.h"
#include "zz/testbed/experiment.h"
#include "zz/testbed/scenario.h"

namespace zz::testbed {

struct NSenderSweepConfig {
  std::size_t n_min = 2;
  std::size_t n_max = 6;
  std::size_t runs_per_n = 3;  ///< independent scenario repetitions per n
  std::size_t packets_per_sender = 4;
  std::size_t payload_bytes = 200;
  double snr_db = 12.0;
  std::uint64_t seed = 90;
  ReceiverKind receiver = ReceiverKind::ZigZag;
  /// Collection methodology. LoggedJoint (the Fig 5-9 shape) for every n —
  /// including n = 2 — keeps the fair share at 1/n by construction;
  /// SlottedAloha runs the same senders through packet-sized slots
  /// (bench/baseline_comparison's slotted-ALOHA-ZigZag head).
  CollectMode mode = CollectMode::LoggedJoint;
  /// Standard 802.11 CWmax (Appendix A), not ExperimentConfig's tightened
  /// 127: n-way rounds rely on binary exponential backoff spreading the
  /// later retransmissions, else n ≥ 5 packets pack into so few slots
  /// that every equation is ill-conditioned and decode quality collapses.
  int cw_max = 1023;
};

struct NSenderSweepPoint {
  std::size_t n = 0;
  /// Per-sender throughput of every flow across the runs (n × runs_per_n
  /// values) — the Fig 5-9 CDF population.
  std::vector<double> per_sender_throughput;
  double mean_throughput = 0.0;
  double fair_share = 0.0;  ///< 1/n
  double fairness = 0.0;    ///< mean Jain index across runs
  double mean_loss = 0.0;
};

struct NSenderSweepResult {
  std::vector<NSenderSweepPoint> points;  ///< one per n, ascending
};

/// Runs (n_max - n_min + 1) × runs_per_n scenarios on `pool`. Every run
/// draws from its own shard_seed(cfg.seed, run_index) stream and lands in
/// a preallocated slot, so the result is identical for any worker count —
/// the property the determinism tests pin at 1, 2 and N threads.
NSenderSweepResult run_n_sender_sweep(const NSenderSweepConfig& cfg,
                                      ThreadPool& pool);

}  // namespace zz::testbed
