#include "zz/testbed/topology.h"

#include <cmath>

#include "zz/common/mathutil.h"

namespace zz::testbed {

Topology::Topology(Rng& rng, TopologyConfig cfg) : cfg_(cfg) {
  x_.resize(cfg_.nodes);
  y_.resize(cfg_.nodes);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    x_[i] = rng.uniform(0.0, cfg_.arena_m);
    y_[i] = rng.uniform(0.0, cfg_.arena_m);
  }
}

double Topology::snr_db(std::size_t a, std::size_t b) const {
  const double dx = x_[a] - x_[b];
  const double dy = y_[a] - y_[b];
  const double d = std::max(std::sqrt(dx * dx + dy * dy), 1.0);
  return cfg_.ref_snr_db - 10.0 * cfg_.path_loss_exp * std::log10(d);
}

Sensing Topology::sensing(std::size_t a, std::size_t b) const {
  const double s = snr_db(a, b);
  if (s >= cfg_.sense_snr_db + cfg_.partial_band_db) return Sensing::Full;
  if (s >= cfg_.sense_snr_db - cfg_.partial_band_db) return Sensing::Partial;
  return Sensing::Hidden;
}

bool Topology::usable(std::size_t tx, std::size_t rx) const {
  return tx != rx && snr_db(tx, rx) >= cfg_.min_link_snr_db;
}

Topology::Mix Topology::sensing_mix() const {
  Mix m;
  std::size_t total = 0;
  for (const auto& pc : viable_pairs()) {
    ++total;
    switch (sensing(pc.s1, pc.s2)) {
      case Sensing::Hidden: m.hidden += 1; break;
      case Sensing::Partial: m.partial += 1; break;
      case Sensing::Full: m.full += 1; break;
    }
  }
  if (total) {
    m.hidden /= static_cast<double>(total);
    m.partial /= static_cast<double>(total);
    m.full /= static_cast<double>(total);
  }
  return m;
}

std::vector<Topology::PairChoice> Topology::viable_pairs() const {
  std::vector<PairChoice> out;
  for (std::size_t s1 = 0; s1 < size(); ++s1)
    for (std::size_t s2 = s1 + 1; s2 < size(); ++s2)
      for (std::size_t ap = 0; ap < size(); ++ap) {
        if (ap == s1 || ap == s2) continue;
        if (usable(s1, ap) && usable(s2, ap)) {
          out.push_back({s1, s2, ap});
          break;  // one AP per sender pair keeps the sample balanced
        }
      }
  return out;
}

}  // namespace zz::testbed
