#include "zz/testbed/sweep.h"

#include <stdexcept>

#include "zz/testbed/scenario.h"

namespace zz::testbed {

NSenderSweepResult run_n_sender_sweep(const NSenderSweepConfig& cfg,
                                      ThreadPool& pool) {
  if (cfg.n_min < 2 || cfg.n_max < cfg.n_min)
    throw std::invalid_argument("run_n_sender_sweep: need 2 <= n_min <= n_max");
  const std::size_t num_n = cfg.n_max - cfg.n_min + 1;
  const std::size_t tasks = num_n * cfg.runs_per_n;

  std::vector<ScenarioStats> outcomes(tasks);
  pool.parallel_for(tasks, [&](std::size_t t) {
    const std::size_t n = cfg.n_min + t / cfg.runs_per_n;
    Rng rng(shard_seed(cfg.seed, t));
    ExperimentConfig ecfg;
    ecfg.packets_per_sender = cfg.packets_per_sender;
    ecfg.payload_bytes = cfg.payload_bytes;
    ecfg.timing.cw_max = cfg.cw_max;
    Scenario sc = hidden_n_scenario(n, cfg.snr_db, cfg.receiver, ecfg);
    // One collection methodology for every n — including n = 2 (see the
    // NSenderSweepConfig::mode doc).
    sc.mode = cfg.mode;
    outcomes[t] = run_scenario(rng, sc);
  });

  NSenderSweepResult out;
  out.points.resize(num_n);
  for (std::size_t ni = 0; ni < num_n; ++ni) {
    NSenderSweepPoint& pt = out.points[ni];
    pt.n = cfg.n_min + ni;
    pt.fair_share = 1.0 / static_cast<double>(pt.n);
    double loss = 0.0;
    std::size_t flows = 0;
    for (std::size_t r = 0; r < cfg.runs_per_n; ++r) {
      const ScenarioStats& st = outcomes[ni * cfg.runs_per_n + r];
      for (const auto& f : st.flows) {
        pt.per_sender_throughput.push_back(f.throughput);
        pt.mean_throughput += f.throughput;
        loss += f.loss_rate();
        ++flows;
      }
      pt.fairness += st.fairness_index();
    }
    if (flows) {
      pt.mean_throughput /= static_cast<double>(flows);
      pt.mean_loss = loss / static_cast<double>(flows);
    }
    if (cfg.runs_per_n)
      pt.fairness /= static_cast<double>(cfg.runs_per_n);
  }
  return out;
}

}  // namespace zz::testbed
