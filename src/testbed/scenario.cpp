#include "zz/testbed/scenario.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "zz/testbed/episode.h"

#include "zz/chan/channel.h"
#include "zz/common/check.h"
#include "zz/common/mathutil.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/algebraic_mp.h"
#include "zz/zigzag/receiver.h"
#include "zz/zigzag/scheduler.h"
#include "zz/zigzag/streaming.h"

namespace zz::testbed {
namespace {

struct Sender {
  std::uint8_t id;
  chan::ChannelParams base_channel;
  phy::SenderProfile profile;
  std::size_t remaining = 0;
  std::size_t delivered = 0;
  std::uint16_t seq = 0;
  int retries = 0;
  std::optional<phy::TxFrame> inflight;  ///< packet being (re)transmitted

  phy::TxFrame next_frame(Rng& rng, const ExperimentConfig& cfg) {
    phy::FrameHeader h;
    h.sender_id = id;
    h.seq = seq;
    h.payload_mod = cfg.mod;
    h.payload_bytes = static_cast<std::uint16_t>(cfg.payload_bytes);
    return phy::build_frame(h, rng.bytes(cfg.payload_bytes));
  }
};

Sender make_sender(Rng& rng, std::uint8_t id, const SenderSpec& spec,
                   const ExperimentConfig& cfg) {
  Sender s;
  s.id = id;
  chan::ImpairmentConfig icfg;
  icfg.snr_db = spec.snr_db;
  icfg.freq_offset_max = 2e-3;
  s.base_channel = chan::random_channel(rng, icfg);
  s.profile.id = id;
  s.profile.freq_offset =
      s.base_channel.freq_offset + rng.uniform(-cfg.freq_jitter, cfg.freq_jitter);
  s.profile.snr_db = spec.snr_db;
  s.profile.mod = cfg.mod;
  s.profile.isi = s.base_channel.isi;
  if (!s.base_channel.isi.is_identity())
    s.profile.equalizer = s.base_channel.isi.inverse(7, 3);
  s.remaining = spec.packets ? spec.packets : cfg.packets_per_sender;
  return s;
}

// Score a decoded bit stream against the transmitted frame (§5.1f).
bool delivered_ok(const phy::TxFrame& truth, const phy::FrameHeader& got,
                  const Bits& air_bits, double threshold) {
  if (got.sender_id != truth.header.sender_id || got.seq != truth.header.seq)
    return false;
  const phy::TxFrame& ref = truth.header.retry == got.retry
                                ? truth
                                : phy::with_retry(truth, got.retry);
  return bit_error_rate(ref.air_bits(), air_bits) < threshold;
}

// One clean (no-interference) transmission decoded by the standard path.
bool clean_delivery(Rng& rng, Sender& s, const ExperimentConfig& cfg,
                    const phy::StandardReceiver& rx) {
  const phy::TxFrame frame = s.next_frame(rng, cfg);
  const auto ch = chan::retransmission_channel(rng, s.base_channel, 0.0);
  const CVec wave = chan::clean_reception(rng, frame.symbols, ch);
  const auto d = rx.decode(wave, &s.profile);
  const bool ok = d.header_ok &&
                  delivered_ok(frame, d.header, d.air_bits, cfg.ber_threshold);
  ++s.seq;
  return ok;
}

// Size-generic flow bookkeeping: spans over the n senders, no fixed arity.
void finish_stats(ScenarioStats& stats, std::span<const Sender> senders,
                  std::span<const std::size_t> conc_delivered) {
  ZZ_CHECK_EQ(stats.flows.size(), senders.size());
  ZZ_CHECK_EQ(conc_delivered.size(), senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    stats.flows[i].delivered = senders[i].delivered;
    stats.flows[i].throughput =
        stats.airtime_rounds
            ? static_cast<double>(senders[i].delivered) /
                  static_cast<double>(stats.airtime_rounds)
            : 0.0;
    stats.concurrent_throughput[i] =
        stats.concurrent_rounds
            ? static_cast<double>(conc_delivered[i]) /
                  static_cast<double>(stats.concurrent_rounds)
            : 0.0;
  }
}

std::vector<std::size_t> active_indices(const std::vector<Sender>& senders) {
  std::vector<std::size_t> act;
  for (std::size_t i = 0; i < senders.size(); ++i)
    if (senders[i].remaining) act.push_back(i);
  return act;
}

// ------------------------------------------------------- Live / Streaming

/// Stream-feed geometry of the Streaming route. The chunk length is a
/// deliberately awkward prime so reception windows straddle push
/// boundaries in every way (the boundary-bug pins); the silence gap models
/// the inter-frame idle and must exceed FramerConfig::gap_hang so every
/// window closes — and its packets come out — before the next round.
inline constexpr std::size_t kStreamChunk = 509;
inline constexpr std::size_t kStreamGap = 64;

}  // namespace

// The Live/Streaming loop body, held between step() calls. Everything that
// was a local of the historical run_live lives here; step() is one
// iteration of its round loop, byte-for-byte, so the RNG draw sequence —
// and with it every committed baseline — is unchanged.
struct EpisodeStream::Impl {
  const Scenario sc;  ///< by value: episodes outlive the caller's spec
  const std::size_t n;
  const bool streaming;
  std::vector<Sender> senders;
  ScenarioStats stats;
  phy::StandardReceiver std_rx;
  std::vector<phy::SenderProfile> profiles;
  // The AP: offline per-reception receiver (Live) or the incremental
  // pipeline (Streaming). Both are fed through zz_receive below and draw
  // nothing from the scenario RNG, so the two routes consume identical
  // draw sequences — which is what makes their ScenarioStats comparable
  // bit for bit at a fixed seed (the streaming contract's scenario pin).
  std::optional<zigzag::ZigZagReceiver> zz_rx;
  std::optional<zigzag::StreamingReceiver> stream_rx;
  std::uint64_t latency_sum = 0;
  // Paren-init: braces would pick vector's initializer-list constructor
  // and build a 2-element "silence" whose first sample is kStreamGap.
  const CVec silence = CVec(kStreamGap, cplx{0.0, 0.0});
  std::vector<std::size_t> conc_delivered;
  std::size_t turn = 0;  ///< TDMA rotation (CollisionFreeScheduler)
  bool finished = false;

  Impl(const Scenario& scenario, Rng& rng, const EpisodeResources& res)
      : sc(scenario), n(sc.senders.size()),
        streaming(sc.mode == CollectMode::Streaming) {
    senders.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      senders.push_back(make_sender(rng, static_cast<std::uint8_t>(i + 1),
                                    sc.senders[i], sc.cfg));

    stats.flows.resize(n);
    stats.concurrent_throughput.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      stats.flows[i].offered = senders[i].remaining;
    conc_delivered.assign(n, 0);

    // Reduces to the stock defaults at n = 2 (the historical pair
    // configuration, bit-for-bit); n > 2 gets the n-way matching/detection
    // tuning that makes the live and streaming routes decodable at all.
    zigzag::ReceiverOptions zz_opt = zigzag::ReceiverOptions::for_clients(n);
    zz_opt.shared_cache = res.cache;
    zz_opt.arena = res.arena;
    for (const auto& s : senders) profiles.push_back(s.profile);
    if (streaming) {
      zigzag::StreamingOptions sopt;
      sopt.receiver = zz_opt;
      stream_rx.emplace(sopt);
      stream_rx->add_clients(profiles);
    } else if (sc.receiver == ReceiverKind::ZigZag) {
      zz_rx.emplace(zz_opt);
      zz_rx->add_clients(profiles);
    }
  }

  std::vector<zigzag::Delivered> zz_receive(const CVec& rx) {
    if (!streaming) return zz_rx->receive(rx);
    std::vector<zigzag::Delivered> got;
    const auto take = [&](std::vector<zigzag::StreamDelivered>&& ds) {
      for (auto& sd : ds) {
        if (stats.stream_deliveries == 0)
          stats.first_delivery_pos = sd.decoded_at;
        ++stats.stream_deliveries;
        latency_sum += sd.decoded_at - sd.window_begin;
        got.push_back(std::move(sd.packet));
      }
    };
    for (std::size_t off = 0; off < rx.size(); off += kStreamChunk)
      take(stream_rx->push(rx.data() + off,
                           std::min(kStreamChunk, rx.size() - off)));
    take(stream_rx->push(silence));
    return got;
  }

  void note_concurrent(bool contended, std::size_t i, std::size_t cnt) {
    if (contended) conc_delivered[i] += cnt;
  }

  bool done() const {
    for (const auto& s : senders)
      if (s.remaining) return false;
    return true;
  }

  void step(Rng& rng) {
    if (sc.receiver == ReceiverKind::CollisionFreeScheduler)
      step_tdma(rng);
    else
      step_contention(rng);
  }

  // The Collision-Free Scheduler is pure TDMA: every packet gets a clean
  // slot; throughput is capped at 1 packet per round.
  void step_tdma(Rng& rng) {
    const ExperimentConfig& cfg = sc.cfg;
    const auto act = active_indices(senders);
    if (act.empty()) return;
    const bool contended = act.size() >= 2;
    std::size_t idx = act[0];
    for (std::size_t o = 0; o < n; ++o) {
      const std::size_t cand = (turn + o) % n;
      if (senders[cand].remaining) {
        idx = cand;
        break;
      }
    }
    Sender& s = senders[idx];
    ++turn;
    ++stats.airtime_rounds;
    if (contended) ++stats.concurrent_rounds;
    if (clean_delivery(rng, s, cfg, std_rx)) {
      ++s.delivered;
      note_concurrent(contended, idx, 1);
    }
    --s.remaining;
  }

  // 802.11 / ZigZag: saturated senders; when several are backlogged and
  // fail to sense each other, their transmissions collide.
  void step_contention(Rng& rng) {
    const ExperimentConfig& cfg = sc.cfg;
    const auto act = active_indices(senders);
    if (act.empty()) return;
    const bool contended = act.size() >= 2;
    const bool sensed = contended ? rng.chance(sc.p_sense) : true;
    ++stats.airtime_rounds;
    if (contended) ++stats.concurrent_rounds;

    if (!contended || sensed) {
      // Serialized transmission: one clean packet this round.
      const std::size_t idx =
          act.size() == 1 ? act[0] : act[stats.airtime_rounds % act.size()];
      Sender& s = senders[idx];
      if (clean_delivery(rng, s, cfg, std_rx)) {
        ++s.delivered;
        note_concurrent(contended, idx, 1);
      }
      --s.remaining;
      s.retries = 0;
      s.inflight.reset();
      return;
    }

    // Collision round: every backlogged sender transmits with random slot
    // jitter.
    for (const std::size_t i : act)
      if (!senders[i].inflight) {
        senders[i].inflight = senders[i].next_frame(rng, cfg);
        ++senders[i].seq;
      }
    std::vector<std::ptrdiff_t> offs(act.size());
    for (std::size_t a = 0; a < act.size(); ++a) {
      const int cw = cfg.timing.cw_after(senders[act[a]].retries);
      offs[a] = rng.uniform_int(0, cw) *
                static_cast<std::ptrdiff_t>(cfg.slot_samples);
    }
    const std::ptrdiff_t base = *std::min_element(offs.begin(), offs.end());

    // Backoff can separate all transmissions entirely (possible for short
    // packets); then each goes through clean.
    const auto pkt_samples = static_cast<std::ptrdiff_t>(
        chan::kSps *
        static_cast<double>(
            phy::layout_for(senders[act[0]].inflight->header).total_syms));
    std::vector<std::ptrdiff_t> sorted_offs = offs;
    std::sort(sorted_offs.begin(), sorted_offs.end());
    bool all_separate = true;
    for (std::size_t a = 1; a < sorted_offs.size(); ++a)
      if (sorted_offs[a] - sorted_offs[a - 1] <= pkt_samples + 32)
        all_separate = false;

    if (all_separate) {
      stats.airtime_rounds += act.size() - 1;  // several transmissions
      for (const std::size_t i : act) {
        Sender& s = senders[i];
        const phy::TxFrame frame = phy::with_retry(*s.inflight, s.retries > 0);
        const auto ch = chan::retransmission_channel(rng, s.base_channel, 0.0);
        const CVec wave = chan::clean_reception(rng, frame.symbols, ch);
        bool ok = false;
        if (sc.receiver == ReceiverKind::ZigZag) {
          for (const auto& d : zz_receive(wave))
            if (delivered_ok(*s.inflight, d.header, d.air_bits,
                             cfg.ber_threshold))
              ok = true;
        } else {
          const auto d = std_rx.decode(wave, &s.profile);
          ok = d.header_ok && delivered_ok(*s.inflight, d.header, d.air_bits,
                                           cfg.ber_threshold);
        }
        if (ok) {
          ++s.delivered;
          note_concurrent(true, i, 1);
          --s.remaining;
          s.retries = 0;
          s.inflight.reset();
        } else if (++s.retries > cfg.timing.retry_limit) {
          --s.remaining;
          s.retries = 0;
          s.inflight.reset();
        }
      }
      return;
    }

    emu::CollisionBuilder builder;
    builder.lead(64);
    std::vector<phy::TxFrame> frames(act.size());
    for (std::size_t a = 0; a < act.size(); ++a) {
      Sender& s = senders[act[a]];
      frames[a] = phy::with_retry(*s.inflight, s.retries > 0);
      builder.add(frames[a],
                  chan::retransmission_channel(rng, s.base_channel, 0.0),
                  offs[a] - base);
    }
    const emu::Reception rec = builder.build(rng);

    std::vector<bool> got(act.size(), false);
    if (sc.receiver == ReceiverKind::ZigZag) {
      for (const auto& d : zz_receive(rec.samples))
        for (std::size_t a = 0; a < act.size(); ++a)
          if (senders[act[a]].inflight &&
              delivered_ok(*senders[act[a]].inflight, d.header, d.air_bits,
                           cfg.ber_threshold))
            got[a] = true;
    } else {
      // Stock 802.11 decodes the strongest packet if capture permits.
      const auto d0 = std_rx.decode(rec.samples, &senders[act[0]].profile);
      if (d0.header_ok)
        for (std::size_t a = 0; a < act.size(); ++a)
          if (senders[act[a]].inflight &&
              delivered_ok(*senders[act[a]].inflight, d0.header, d0.air_bits,
                           cfg.ber_threshold))
            got[a] = true;
    }

    for (std::size_t a = 0; a < act.size(); ++a) {
      Sender& s = senders[act[a]];
      // Every sender in `act` was backlogged when the round started; an
      // exhausted sender here would wrap `remaining` and spin forever.
      ZZ_DCHECK_GT(s.remaining, 0u);
      if (got[a]) {
        ++s.delivered;
        note_concurrent(true, act[a], 1);
        --s.remaining;
        s.retries = 0;
        s.inflight.reset();
      } else if (++s.retries > cfg.timing.retry_limit) {
        --s.remaining;  // dropped
        s.retries = 0;
        s.inflight.reset();
      }
    }
  }

  ScenarioStats finish() {
    ZZ_CHECK(!finished);
    finished = true;
    if (streaming) {
      // Every window has already closed (each reception ends in a full
      // silence gap), so finish() is a formality — but run it so a framer
      // bug that held a window open would surface as extra deliveries here.
      for (auto& sd : stream_rx->finish()) {
        ++stats.stream_deliveries;
        latency_sum += sd.decoded_at - sd.window_begin;
      }
      const auto& st = stream_rx->stats();
      stats.stream_samples = st.samples_in;
      stats.stream_windows = st.windows;
      stats.stream_max_push_work = st.max_push_work;
      stats.stream_max_retained = st.max_retained;
      if (stats.stream_deliveries)
        stats.mean_decode_latency =
            static_cast<double>(latency_sum) /
            static_cast<double>(stats.stream_deliveries);
    }
    finish_stats(stats, senders, conc_delivered);
    return stats;
  }
};

EpisodeStream::EpisodeStream(const Scenario& scenario, Rng& rng,
                             const EpisodeResources& res) {
  if (scenario.senders.empty())
    throw std::invalid_argument("EpisodeStream: no senders");
  if (scenario.mode != CollectMode::Live &&
      scenario.mode != CollectMode::Streaming)
    throw std::invalid_argument(
        "EpisodeStream: only Live/Streaming collection runs round by round");
  if (scenario.receiver == ReceiverKind::AlgebraicMP)
    throw std::invalid_argument(
        "EpisodeStream: AlgebraicMP is an offline joint decoder and needs "
        "LoggedJoint collection");
  if (scenario.mode == CollectMode::Streaming &&
      scenario.receiver != ReceiverKind::ZigZag)
    throw std::invalid_argument(
        "EpisodeStream: Streaming collection is the ZigZag streaming "
        "pipeline; other receiver kinds have no streaming route");
  impl_ = std::make_unique<Impl>(scenario, rng, res);
}

EpisodeStream::~EpisodeStream() = default;

bool EpisodeStream::done() const { return impl_->done(); }
void EpisodeStream::step(Rng& rng) { impl_->step(rng); }
std::size_t EpisodeStream::rounds() const { return impl_->stats.airtime_rounds; }
ScenarioStats EpisodeStream::finish() { return impl_->finish(); }

namespace {

ScenarioStats run_live(Rng& rng, const Scenario& sc) {
  EpisodeStream es(sc, rng);
  while (!es.done()) es.step(rng);
  return es.finish();
}

// ------------------------------------------------------------ LoggedJoint

ScenarioStats run_logged_joint(Rng& rng, const Scenario& sc) {
  // §5.7 methodology, n-generic: the senders retransmit the same packets
  // until the AP has collected enough collisions (n equations for n
  // unknowns, §4.5, plus any extras the feasibility check or a failed
  // decode requests), then the logs are decoded offline. Packet starts
  // come from the recorded experiment structure; every channel parameter
  // is estimated from the waveforms.
  const std::size_t n = sc.senders.size();
  const ExperimentConfig& cfg = sc.cfg;

  std::vector<Sender> senders;
  senders.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    senders.push_back(
        make_sender(rng, static_cast<std::uint8_t>(i + 1), sc.senders[i], cfg));

  const phy::StandardReceiver std_rx;
  std::size_t airtime = 0;

  std::vector<phy::SenderProfile> profiles;
  for (const auto& s : senders) profiles.push_back(s.profile);

  for (std::size_t round = 0; round < cfg.packets_per_sender; ++round) {
    std::vector<phy::TxFrame> frames(n);
    for (std::size_t i = 0; i < n; ++i) {
      frames[i] = senders[i].next_frame(rng, cfg);
      ++senders[i].seq;
    }

    if (sc.receiver == ReceiverKind::CollisionFreeScheduler) {
      for (std::size_t i = 0; i < n; ++i) {
        Sender& s = senders[i];
        ++airtime;
        const auto ch = chan::retransmission_channel(rng, s.base_channel, 0.0);
        const CVec wave = chan::clean_reception(rng, frames[i].symbols, ch);
        const auto d = std_rx.decode(wave, &s.profile);
        if (d.header_ok &&
            delivered_ok(frames[i], d.header, d.air_bits, cfg.ber_threshold))
          ++s.delivered;
      }
      continue;
    }

    // Collisions of the same n packets at fresh backoff offsets. Index c
    // doubles as the senders' retry count for the contention window.
    std::vector<emu::Reception> recs;
    recs.reserve(n + sc.max_extra_equations);
    const auto log_collision = [&] {
      const std::size_t c = recs.size();
      emu::CollisionBuilder builder;
      builder.lead(64);
      std::vector<std::ptrdiff_t> offs(n);
      for (std::size_t i = 0; i < n; ++i)
        offs[i] = rng.uniform_int(
                  0, cfg.timing.cw_after(static_cast<int>(sc.backoff_stage + c))) *
                  static_cast<std::ptrdiff_t>(cfg.slot_samples);
      const std::ptrdiff_t base = *std::min_element(offs.begin(), offs.end());
      for (std::size_t i = 0; i < n; ++i)
        builder.add(phy::with_retry(frames[i], c > 0),
                    chan::retransmission_channel(rng, senders[i].base_channel, 0.0),
                    offs[i] - base);
      recs.push_back(builder.build(rng));
    };
    for (std::size_t c = 0; c < n; ++c) log_collision();

    if (sc.receiver == ReceiverKind::Current80211) {
      // Stock 802.11 gets nothing out of equal-power n-way pileups unless
      // capture applies; check the strongest-decode path anyway.
      for (const auto& rec : recs) {
        const auto d = std_rx.decode(rec.samples, &senders[0].profile);
        if (!d.header_ok) continue;
        for (std::size_t i = 0; i < n; ++i)
          if (delivered_ok(frames[i], d.header, d.air_bits, cfg.ber_threshold))
            ++senders[i].delivered;
      }
      airtime += recs.size();
      continue;
    }

    // ZigZag / algebraic-MP joint decode over the logged collisions, with
    // scheduler-driven equation selection (§4.5).
    const bool mp = sc.receiver == ReceiverKind::AlgebraicMP;
    const std::size_t pkt_syms = phy::layout_for(frames[0].header).total_syms;
    const auto make_pattern = [&] {
      zigzag::Pattern pat;
      pat.lengths.assign(n, pkt_syms);
      pat.collisions.resize(recs.size());
      for (std::size_t c = 0; c < recs.size(); ++c) {
        pat.collisions[c].clear();
        for (std::size_t i = 0; i < n; ++i)
          pat.collisions[c].push_back(
              {i, recs[c].truth[i].start /
                      static_cast<std::ptrdiff_t>(chan::kSps)});
      }
      return pat;
    };

    std::size_t extra = 0;
    // Assertion 4.5.1 pre-check: an equation set that cannot possibly
    // resolve (a packet pair stuck at one relative offset) is topped up
    // with another retransmission before any decode is attempted. The
    // algebraic receiver skips it — a same-offset pair is exactly what its
    // 2x2 elimination solves, so the equations are not zigzag-infeasible
    // for it.
    while (!mp && extra < sc.max_extra_equations &&
           !zigzag::pairwise_condition_holds(make_pattern())) {
      log_collision();
      ++extra;
    }

    std::vector<bool> ok(n, false);
    // Chunk-decode memo shared by this round's joint decodes: when a failed
    // decode tops up with an extra equation, the re-decode replays every
    // chunk whose schedule the new equation did not perturb (bit-identical
    // to decoding from scratch — see DecodeCache).
    zigzag::DecodeCache cache;
    for (;;) {
      std::vector<zigzag::CollisionInput> inputs(recs.size());
      for (std::size_t c = 0; c < recs.size(); ++c) {
        inputs[c].samples = &recs[c].samples;
        inputs[c].is_retransmission = c > 0;
        for (std::size_t i = 0; i < n; ++i) {
          const auto pe = phy::estimate_at_peak(
              recs[c].samples, static_cast<std::size_t>(recs[c].truth[i].start),
              senders[i].profile.freq_offset);
          zigzag::Detection det;
          det.origin = pe.origin;
          det.mu = pe.mu;
          det.h = pe.h;
          det.freq_offset = senders[i].profile.freq_offset;
          det.metric = pe.metric;
          det.profile_index = static_cast<int>(i);
          inputs[c].placements.push_back({i, det});
        }
      }
      // Best-conditioned equations first (the decoder's BestFirst chunk
      // scheduling then refines the same idea per chunk).
      const auto order = zigzag::order_equations(make_pattern());
      std::vector<zigzag::CollisionInput> ordered;
      ordered.reserve(inputs.size());
      for (const std::size_t c : order) ordered.push_back(std::move(inputs[c]));

      zigzag::DecodeResult res;
      if (mp) {
        const zigzag::AlgebraicMpDecoder dec;
        res = dec.decode({ordered.data(), ordered.size()}, profiles, n,
                         pkt_syms);
      } else {
        const zigzag::ZigZagDecoder dec(sc.joint_decode);
        res = dec.decode({ordered.data(), ordered.size()}, profiles, n, &cache);
      }
      // Joint decoders size their result to the requested packet count.
      ZZ_CHECK_EQ(res.packets.size(), n);
      for (std::size_t i = 0; i < n; ++i)
        ok[i] = res.packets[i].header_ok &&
                delivered_ok(frames[i], res.packets[i].header,
                             res.packets[i].air_bits, cfg.ber_threshold);

      const bool all_ok = std::all_of(ok.begin(), ok.end(),
                                      [](bool b) { return b; });
      if (all_ok || extra >= sc.max_extra_equations) break;
      // A failed joint decode requests one more equation — the
      // retransmission the unacknowledged senders would send anyway.
      log_collision();
      ++extra;
    }

    airtime += recs.size();
    for (std::size_t i = 0; i < n; ++i)
      if (ok[i]) ++senders[i].delivered;
  }

  ScenarioStats stats;
  stats.flows.resize(n);
  stats.concurrent_throughput.assign(n, 0.0);
  stats.airtime_rounds = airtime;
  stats.concurrent_rounds = airtime;  // every round is contended
  for (std::size_t i = 0; i < n; ++i) {
    stats.flows[i].offered = cfg.packets_per_sender;
    stats.flows[i].delivered = senders[i].delivered;
    stats.flows[i].throughput =
        airtime ? static_cast<double>(senders[i].delivered) /
                      static_cast<double>(airtime)
                : 0.0;
    stats.concurrent_throughput[i] = stats.flows[i].throughput;
  }
  return stats;
}

// ----------------------------------------------------------- SlottedAloha

// Slotted-ALOHA MAC (arXiv:1501.00976): packet-sized slots, per-slot
// transmission probability, slot-aligned starts up to a sync error. With
// ReceiverKind::ZigZag, the AP's live receiver stores collided slots and
// joint-decodes them once a matching retransmission slot arrives
// (§4.2.2 matching across slots) — the "enhanced" variant. Current80211 is
// plain slotted ALOHA: only singleton slots (or capture) deliver.
ScenarioStats run_slotted(Rng& rng, const Scenario& sc) {
  const std::size_t n = sc.senders.size();
  const ExperimentConfig& cfg = sc.cfg;
  const mac::SlottedTiming& slotted = sc.slotted;

  std::vector<Sender> senders;
  senders.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    senders.push_back(
        make_sender(rng, static_cast<std::uint8_t>(i + 1), sc.senders[i], cfg));

  ScenarioStats stats;
  stats.flows.resize(n);
  stats.concurrent_throughput.assign(n, 0.0);
  std::size_t total_offered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    stats.flows[i].offered = senders[i].remaining;
    total_offered += senders[i].remaining;
  }

  const phy::StandardReceiver std_rx;
  // The zigzag AP (with its cross-slot pending store) only exists for the
  // ZigZag kind; plain slotted ALOHA decodes through std_rx alone.
  std::optional<zigzag::ZigZagReceiver> zz_rx;
  if (sc.receiver == ReceiverKind::ZigZag) {
    // NOT for_clients(): the slotted-ALOHA-ZigZag head's n ≥ 3 results are
    // baseline-pinned on this exact historical configuration (slots rarely
    // hold more than a pair, so the n-way live tuning has nothing to buy
    // here and would shift committed baselines).
    zigzag::ReceiverOptions zz_opt;
    zz_opt.max_pending = std::max<std::size_t>(4, n + 1);
    zz_opt.max_joint_receptions = std::max<std::size_t>(3, n);
    if (n > 2) zz_opt.decode.chunk_order = zigzag::ChunkOrder::BestFirst;
    zz_rx.emplace(zz_opt);
    std::vector<phy::SenderProfile> ps;
    for (const auto& s : senders) ps.push_back(s.profile);
    zz_rx->add_clients(ps);
  }

  std::vector<std::size_t> conc_delivered(n, 0);
  // Slots are cheap (idle ones carry no PHY work); the cap only guards
  // against a pathological tx_prob starving the backlog forever.
  const std::size_t max_slots = 400 * total_offered + 400;

  while (stats.airtime_rounds < max_slots) {
    const auto act = active_indices(senders);
    if (act.empty()) break;
    const bool contended = act.size() >= 2;
    ++stats.airtime_rounds;
    if (contended) ++stats.concurrent_rounds;

    // Per-slot transmission draws, sender-index order (deterministic).
    std::vector<std::size_t> txs;
    for (const std::size_t i : act)
      if (slotted.draw_transmit(rng, act.size())) txs.push_back(i);
    if (txs.empty()) continue;  // idle slot

    for (const std::size_t i : txs)
      if (!senders[i].inflight) {
        senders[i].inflight = senders[i].next_frame(rng, cfg);
        ++senders[i].seq;
      }

    // Which senders' packets came out of this slot (transmitters, plus any
    // sender whose earlier collided slot a joint decode just resolved).
    std::vector<bool> got(n, false);
    const auto match_delivery = [&](const phy::FrameHeader& h,
                                    const Bits& air_bits) {
      for (std::size_t i = 0; i < n; ++i)
        if (senders[i].inflight &&
            delivered_ok(*senders[i].inflight, h, air_bits, cfg.ber_threshold))
          got[i] = true;
    };

    if (txs.size() == 1) {
      Sender& s = senders[txs[0]];
      const phy::TxFrame frame = phy::with_retry(*s.inflight, s.retries > 0);
      const auto ch = chan::retransmission_channel(rng, s.base_channel, 0.0);
      const CVec wave = chan::clean_reception(rng, frame.symbols, ch);
      if (sc.receiver == ReceiverKind::ZigZag) {
        for (const auto& d : zz_rx->receive(wave))
          match_delivery(d.header, d.air_bits);
      } else {
        const auto d = std_rx.decode(wave, &s.profile);
        if (d.header_ok) match_delivery(d.header, d.air_bits);
      }
    } else {
      // Collision slot: all transmissions start at the slot boundary plus
      // their sync error.
      emu::CollisionBuilder builder;
      builder.lead(64);
      for (const std::size_t i : txs) {
        Sender& s = senders[i];
        builder.add(phy::with_retry(*s.inflight, s.retries > 0),
                    chan::retransmission_channel(rng, s.base_channel, 0.0),
                    slotted.draw_sync_offset(rng));
      }
      const emu::Reception rec = builder.build(rng);
      if (sc.receiver == ReceiverKind::ZigZag) {
        for (const auto& d : zz_rx->receive(rec.samples))
          match_delivery(d.header, d.air_bits);
      } else {
        // Plain slotted ALOHA decodes the strongest packet if capture
        // permits; otherwise the slot is lost.
        const auto d = std_rx.decode(rec.samples, &senders[txs[0]].profile);
        if (d.header_ok) match_delivery(d.header, d.air_bits);
      }
    }

    // ACK the delivered senders (transmitters or not); transmitters that
    // failed retry until the limit drops their packet.
    for (std::size_t i = 0; i < n; ++i) {
      Sender& s = senders[i];
      if (got[i] && s.inflight) {
        ZZ_DCHECK_GT(s.remaining, 0u);  // an inflight packet is backlogged
        ++s.delivered;
        if (contended) ++conc_delivered[i];
        --s.remaining;
        s.retries = 0;
        s.inflight.reset();
      }
    }
    for (const std::size_t i : txs) {
      Sender& s = senders[i];
      if (!s.inflight) continue;  // delivered above
      if (++s.retries > slotted.retry_limit) {
        --s.remaining;  // dropped
        s.retries = 0;
        s.inflight.reset();
      }
    }
  }

  finish_stats(stats, senders, conc_delivered);
  return stats;
}

}  // namespace

zigzag::DecodeOptions nway_decode_options() {
  zigzag::DecodeOptions opt;
  opt.chunk_order = zigzag::ChunkOrder::BestFirst;
  opt.refinement_passes = 2;
  return opt;
}

double ScenarioStats::total_throughput() const {
  double acc = 0.0;
  for (const double t : concurrent_throughput) acc += t;
  return acc;
}

double ScenarioStats::fairness_index() const {
  double sum = 0.0, sum2 = 0.0;
  for (const auto& f : flows) {
    sum += f.throughput;
    sum2 += f.throughput * f.throughput;
  }
  if (sum2 <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(flows.size()) * sum2);
}

ScenarioStats run_scenario(Rng& rng, const Scenario& scenario) {
  if (scenario.senders.empty())
    throw std::invalid_argument("run_scenario: no senders");
  if (scenario.mode == CollectMode::LoggedJoint && scenario.senders.size() < 2)
    throw std::invalid_argument(
        "run_scenario: LoggedJoint needs at least two senders");
  if (scenario.receiver == ReceiverKind::AlgebraicMP &&
      scenario.mode != CollectMode::LoggedJoint)
    throw std::invalid_argument(
        "run_scenario: AlgebraicMP is an offline joint decoder and needs "
        "LoggedJoint collection");
  if (scenario.mode == CollectMode::SlottedAloha &&
      scenario.receiver == ReceiverKind::CollisionFreeScheduler)
    throw std::invalid_argument(
        "run_scenario: CollisionFreeScheduler has no slotted contention");
  if (scenario.mode == CollectMode::Streaming &&
      scenario.receiver != ReceiverKind::ZigZag)
    throw std::invalid_argument(
        "run_scenario: Streaming collection is the ZigZag streaming "
        "pipeline; other receiver kinds have no streaming route");
  switch (scenario.mode) {
    case CollectMode::Live:
    case CollectMode::Streaming: return run_live(rng, scenario);
    case CollectMode::SlottedAloha: return run_slotted(rng, scenario);
    case CollectMode::LoggedJoint: break;
  }
  return run_logged_joint(rng, scenario);
}

Scenario hidden_n_scenario(std::size_t n, double snr_db, ReceiverKind kind,
                           const ExperimentConfig& cfg) {
  Scenario sc;
  sc.senders.assign(n, SenderSpec{snr_db, 0});
  sc.receiver = kind;
  sc.mode = (n >= 3 || kind == ReceiverKind::AlgebraicMP)
                ? CollectMode::LoggedJoint
                : CollectMode::Live;
  sc.p_sense = 0.0;
  sc.backoff_stage = 2;  // saturated steady state (see Scenario)
  sc.cfg = cfg;
  return sc;
}

}  // namespace zz::testbed
