// Source-compatible fixed-arity wrappers over the n-sender scenario engine
// (zz/testbed/scenario.h). run_pair reproduces the historical two-sender
// loop draw-for-draw (tests pin it bit-identical); run_three_hidden maps to
// the LoggedJoint §5.7 methodology at n = 3.
#include "zz/testbed/experiment.h"

#include "zz/testbed/scenario.h"

namespace zz::testbed {

PairStats run_pair(Rng& rng, ReceiverKind kind, double snr_a_db,
                   double snr_b_db, double p_sense,
                   const ExperimentConfig& cfg) {
  Scenario sc;
  sc.senders = {SenderSpec{snr_a_db, 0}, SenderSpec{snr_b_db, 0}};
  sc.receiver = kind;
  sc.mode = CollectMode::Live;
  sc.p_sense = p_sense;
  sc.cfg = cfg;
  const ScenarioStats stats = run_scenario(rng, sc);

  PairStats out;
  out.flows[0] = stats.flows[0];
  out.flows[1] = stats.flows[1];
  out.airtime_rounds = stats.airtime_rounds;
  out.concurrent_rounds = stats.concurrent_rounds;
  out.concurrent_throughput[0] = stats.concurrent_throughput[0];
  out.concurrent_throughput[1] = stats.concurrent_throughput[1];
  return out;
}

std::vector<FlowStats> run_three_hidden(Rng& rng, ReceiverKind kind,
                                        double snr_db,
                                        const ExperimentConfig& cfg) {
  const ScenarioStats stats =
      run_scenario(rng, hidden_n_scenario(3, snr_db, kind, cfg));
  return stats.flows;
}

}  // namespace zz::testbed
