#include "zz/testbed/experiment.h"

#include <algorithm>
#include <optional>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/decoder.h"
#include "zz/zigzag/receiver.h"

namespace zz::testbed {
namespace {

struct Sender {
  std::uint8_t id;
  chan::ChannelParams base_channel;
  phy::SenderProfile profile;
  std::size_t remaining = 0;
  std::size_t delivered = 0;
  std::uint16_t seq = 0;
  int retries = 0;
  std::optional<phy::TxFrame> inflight;  ///< packet being (re)transmitted

  phy::TxFrame next_frame(Rng& rng, const ExperimentConfig& cfg) {
    phy::FrameHeader h;
    h.sender_id = id;
    h.seq = seq;
    h.payload_mod = cfg.mod;
    h.payload_bytes = static_cast<std::uint16_t>(cfg.payload_bytes);
    return phy::build_frame(h, rng.bytes(cfg.payload_bytes));
  }
};

Sender make_sender(Rng& rng, std::uint8_t id, double snr_db,
                   const ExperimentConfig& cfg) {
  Sender s;
  s.id = id;
  chan::ImpairmentConfig icfg;
  icfg.snr_db = snr_db;
  icfg.freq_offset_max = 2e-3;
  s.base_channel = chan::random_channel(rng, icfg);
  s.profile.id = id;
  s.profile.freq_offset =
      s.base_channel.freq_offset + rng.uniform(-cfg.freq_jitter, cfg.freq_jitter);
  s.profile.snr_db = snr_db;
  s.profile.mod = cfg.mod;
  s.profile.isi = s.base_channel.isi;
  if (!s.base_channel.isi.is_identity())
    s.profile.equalizer = s.base_channel.isi.inverse(7, 3);
  s.remaining = cfg.packets_per_sender;
  return s;
}

// Score a decoded bit stream against the transmitted frame (§5.1f).
bool delivered_ok(const phy::TxFrame& truth, const phy::FrameHeader& got,
                  const Bits& air_bits, double threshold) {
  if (got.sender_id != truth.header.sender_id || got.seq != truth.header.seq)
    return false;
  const phy::TxFrame& ref = truth.header.retry == got.retry
                                ? truth
                                : phy::with_retry(truth, got.retry);
  return bit_error_rate(ref.air_bits(), air_bits) < threshold;
}

// One clean (no-interference) transmission decoded by the standard path.
bool clean_delivery(Rng& rng, Sender& s, const ExperimentConfig& cfg,
                    const phy::StandardReceiver& rx) {
  const phy::TxFrame frame = s.next_frame(rng, cfg);
  const auto ch = chan::retransmission_channel(rng, s.base_channel, 0.0);
  const CVec wave = chan::clean_reception(rng, frame.symbols, ch);
  const auto d = rx.decode(wave, &s.profile);
  const bool ok = d.header_ok &&
                  delivered_ok(frame, d.header, d.air_bits, cfg.ber_threshold);
  ++s.seq;
  return ok;
}

void finish_stats(PairStats& stats, const Sender senders[2],
                  const std::size_t conc_delivered[2]) {
  for (int i = 0; i < 2; ++i) {
    stats.flows[i].delivered = senders[i].delivered;
    stats.flows[i].throughput =
        stats.airtime_rounds
            ? static_cast<double>(senders[i].delivered) /
                  static_cast<double>(stats.airtime_rounds)
            : 0.0;
    stats.concurrent_throughput[i] =
        stats.concurrent_rounds
            ? static_cast<double>(conc_delivered[i]) /
                  static_cast<double>(stats.concurrent_rounds)
            : 0.0;
  }
}

}  // namespace

PairStats run_pair(Rng& rng, ReceiverKind kind, double snr_a_db,
                   double snr_b_db, double p_sense,
                   const ExperimentConfig& cfg) {
  Sender senders[2] = {make_sender(rng, 1, snr_a_db, cfg),
                       make_sender(rng, 2, snr_b_db, cfg)};
  PairStats stats;
  stats.flows[0].offered = stats.flows[1].offered = cfg.packets_per_sender;

  const phy::StandardReceiver std_rx;
  zigzag::ZigZagReceiver zz_rx;
  zz_rx.add_client(senders[0].profile);
  zz_rx.add_client(senders[1].profile);

  std::size_t conc_delivered[2] = {0, 0};
  auto note_concurrent = [&](bool both_active, int i, std::size_t n) {
    if (both_active) conc_delivered[i] += n;
  };

  // The Collision-Free Scheduler is pure TDMA: every packet gets a clean
  // slot; throughput is capped at 1 packet per round.
  if (kind == ReceiverKind::CollisionFreeScheduler) {
    std::size_t turn = 0;
    while (senders[0].remaining || senders[1].remaining) {
      const bool both = senders[0].remaining && senders[1].remaining;
      const int idx = senders[turn % 2].remaining ? static_cast<int>(turn % 2)
                                                  : static_cast<int>((turn + 1) % 2);
      Sender& s = senders[idx];
      ++turn;
      ++stats.airtime_rounds;
      if (both) ++stats.concurrent_rounds;
      if (clean_delivery(rng, s, cfg, std_rx)) {
        ++s.delivered;
        note_concurrent(both, idx, 1);
      }
      --s.remaining;
    }
    finish_stats(stats, senders, conc_delivered);
    return stats;
  }

  // 802.11 / ZigZag: saturated senders; when both are backlogged and fail
  // to sense each other, their transmissions collide.
  while (senders[0].remaining || senders[1].remaining) {
    const bool both = senders[0].remaining && senders[1].remaining;
    const bool sensed = both ? rng.chance(p_sense) : true;
    ++stats.airtime_rounds;
    if (both) ++stats.concurrent_rounds;

    if (!both || sensed) {
      // Serialized transmission: one clean packet this round.
      const int idx = !senders[0].remaining ? 1
                      : !senders[1].remaining
                          ? 0
                          : static_cast<int>(stats.airtime_rounds % 2);
      Sender& s = senders[idx];
      if (clean_delivery(rng, s, cfg, std_rx)) {
        ++s.delivered;
        note_concurrent(both, idx, 1);
      }
      --s.remaining;
      s.retries = 0;
      s.inflight.reset();
      continue;
    }

    // Collision round: both transmit with random slot jitter.
    for (auto& s : senders)
      if (!s.inflight) {
        s.inflight = s.next_frame(rng, cfg);
        ++s.seq;
      }
    const int cw0 = cfg.timing.cw_after(senders[0].retries);
    const int cw1 = cfg.timing.cw_after(senders[1].retries);
    const auto off0 = rng.uniform_int(0, cw0) *
                      static_cast<std::ptrdiff_t>(cfg.slot_samples);
    const auto off1 = rng.uniform_int(0, cw1) *
                      static_cast<std::ptrdiff_t>(cfg.slot_samples);
    const std::ptrdiff_t base = std::min(off0, off1);

    // Backoff can separate the two transmissions entirely (possible for
    // short packets); then both go through clean.
    const auto pkt_samples = static_cast<std::ptrdiff_t>(
        chan::kSps *
        static_cast<double>(phy::layout_for(senders[0].inflight->header).total_syms));
    if (std::abs(off0 - off1) > pkt_samples + 32) {
      ++stats.airtime_rounds;  // two transmissions this cycle
      for (int i = 0; i < 2; ++i) {
        Sender& s = senders[i];
        const phy::TxFrame frame = phy::with_retry(*s.inflight, s.retries > 0);
        const auto ch = chan::retransmission_channel(rng, s.base_channel, 0.0);
        const CVec wave = chan::clean_reception(rng, frame.symbols, ch);
        bool ok = false;
        if (kind == ReceiverKind::ZigZag) {
          for (const auto& d : zz_rx.receive(wave))
            if (delivered_ok(*s.inflight, d.header, d.air_bits,
                             cfg.ber_threshold))
              ok = true;
        } else {
          const auto d = std_rx.decode(wave, &s.profile);
          ok = d.header_ok && delivered_ok(*s.inflight, d.header, d.air_bits,
                                           cfg.ber_threshold);
        }
        if (ok) {
          ++s.delivered;
          note_concurrent(true, i, 1);
          --s.remaining;
          s.retries = 0;
          s.inflight.reset();
        } else if (++s.retries > cfg.timing.retry_limit) {
          --s.remaining;
          s.retries = 0;
          s.inflight.reset();
        }
      }
      continue;
    }

    emu::CollisionBuilder builder;
    builder.lead(64);
    phy::TxFrame frames[2];
    for (int i = 0; i < 2; ++i) {
      Sender& s = senders[i];
      frames[i] = phy::with_retry(*s.inflight, s.retries > 0);
      builder.add(frames[i],
                  chan::retransmission_channel(rng, s.base_channel, 0.0),
                  (i == 0 ? off0 : off1) - base);
    }
    const emu::Reception rec = builder.build(rng);

    bool got[2] = {false, false};
    if (kind == ReceiverKind::ZigZag) {
      for (const auto& d : zz_rx.receive(rec.samples))
        for (int i = 0; i < 2; ++i)
          if (senders[i].inflight &&
              delivered_ok(*senders[i].inflight, d.header, d.air_bits,
                           cfg.ber_threshold))
            got[i] = true;
    } else {
      // Stock 802.11 decodes the strongest packet if capture permits.
      const auto d0 = std_rx.decode(rec.samples, &senders[0].profile);
      if (d0.header_ok)
        for (int i = 0; i < 2; ++i)
          if (senders[i].inflight &&
              delivered_ok(*senders[i].inflight, d0.header, d0.air_bits,
                           cfg.ber_threshold))
            got[i] = true;
    }

    for (int i = 0; i < 2; ++i) {
      Sender& s = senders[i];
      if (got[i]) {
        ++s.delivered;
        note_concurrent(true, i, 1);
        --s.remaining;
        s.retries = 0;
        s.inflight.reset();
      } else if (++s.retries > cfg.timing.retry_limit) {
        --s.remaining;  // dropped
        s.retries = 0;
        s.inflight.reset();
      }
    }
  }

  finish_stats(stats, senders, conc_delivered);
  return stats;
}

std::vector<FlowStats> run_three_hidden(Rng& rng, ReceiverKind kind,
                                        double snr_db,
                                        const ExperimentConfig& cfg) {
  // §5.7 methodology: three hidden senders retransmit the same packets
  // until the AP has collected one collision per sender (n equations for n
  // unknowns, §4.5), then the logs are decoded offline. Packet starts come
  // from the recorded experiment structure; every channel parameter is
  // estimated from the waveforms.
  Sender senders[3] = {make_sender(rng, 1, snr_db, cfg),
                       make_sender(rng, 2, snr_db, cfg),
                       make_sender(rng, 3, snr_db, cfg)};
  const phy::StandardReceiver std_rx;
  std::size_t airtime = 0;

  for (std::size_t round = 0; round < cfg.packets_per_sender; ++round) {
    phy::TxFrame frames[3];
    for (int i = 0; i < 3; ++i) {
      frames[i] = senders[i].next_frame(rng, cfg);
      ++senders[i].seq;
    }

    if (kind == ReceiverKind::CollisionFreeScheduler) {
      for (auto& s : senders) {
        ++airtime;
        const auto ch = chan::retransmission_channel(rng, s.base_channel, 0.0);
        const CVec wave = chan::clean_reception(
            rng, frames[&s - senders].symbols, ch);
        const auto d = std_rx.decode(wave, &s.profile);
        if (d.header_ok && delivered_ok(frames[&s - senders], d.header,
                                        d.air_bits, cfg.ber_threshold))
          ++s.delivered;
      }
      continue;
    }

    // Three collisions of the same three packets at fresh offsets.
    std::vector<emu::Reception> recs;
    for (int c = 0; c < 3; ++c) {
      ++airtime;
      emu::CollisionBuilder builder;
      builder.lead(64);
      std::ptrdiff_t offs[3];
      for (int i = 0; i < 3; ++i)
        offs[i] = rng.uniform_int(0, cfg.timing.cw_after(c)) *
                  static_cast<std::ptrdiff_t>(cfg.slot_samples);
      const std::ptrdiff_t base = *std::min_element(offs, offs + 3);
      for (int i = 0; i < 3; ++i)
        builder.add(phy::with_retry(frames[i], c > 0),
                    chan::retransmission_channel(rng, senders[i].base_channel, 0.0),
                    offs[i] - base);
      recs.push_back(builder.build(rng));
    }

    if (kind == ReceiverKind::Current80211) {
      // Stock 802.11 gets nothing out of equal-power three-way pileups
      // unless capture applies; check the strongest-decode path anyway.
      for (const auto& rec : recs) {
        const auto d = std_rx.decode(rec.samples, &senders[0].profile);
        if (!d.header_ok) continue;
        for (int i = 0; i < 3; ++i)
          if (delivered_ok(frames[i], d.header, d.air_bits, cfg.ber_threshold))
            ++senders[i].delivered;
      }
      continue;
    }

    // ZigZag joint decode over the three logged collisions.
    std::vector<zigzag::CollisionInput> inputs(3);
    std::vector<phy::SenderProfile> profiles;
    for (auto& s : senders) profiles.push_back(s.profile);
    for (int c = 0; c < 3; ++c) {
      inputs[c].samples = &recs[c].samples;
      inputs[c].is_retransmission = c > 0;
      for (int i = 0; i < 3; ++i) {
        const auto pe = phy::estimate_at_peak(
            recs[c].samples,
            static_cast<std::size_t>(recs[c].truth[i].start),
            senders[i].profile.freq_offset);
        zigzag::Detection det;
        det.origin = pe.origin;
        det.mu = pe.mu;
        det.h = pe.h;
        det.freq_offset = senders[i].profile.freq_offset;
        det.metric = pe.metric;
        det.profile_index = i;
        inputs[c].placements.push_back({static_cast<std::size_t>(i), det});
      }
    }
    const zigzag::ZigZagDecoder dec;
    const auto res = dec.decode({inputs.data(), 3}, profiles, 3);
    for (int i = 0; i < 3; ++i)
      if (res.packets[i].header_ok &&
          delivered_ok(frames[i], res.packets[i].header,
                       res.packets[i].air_bits, cfg.ber_threshold))
        ++senders[i].delivered;
  }

  std::vector<FlowStats> out(3);
  for (int i = 0; i < 3; ++i) {
    out[i].offered = cfg.packets_per_sender;
    out[i].delivered = senders[i].delivered;
    out[i].throughput = airtime ? static_cast<double>(senders[i].delivered) /
                                      static_cast<double>(airtime)
                                : 0.0;
  }
  return out;
}

}  // namespace zz::testbed
