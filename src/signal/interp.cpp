#include "zz/signal/interp.h"

#include <cmath>
#include <stdexcept>

#include "zz/common/mathutil.h"

namespace zz::sig {

SincInterpolator::SincInterpolator(std::size_t half_width)
    : half_width_(half_width) {
  if (half_width_ == 0)
    throw std::invalid_argument("SincInterpolator: zero half width");
}

double SincInterpolator::kernel(double x) const {
  const double hw = static_cast<double>(half_width_);
  if (std::abs(x) >= hw) return 0.0;
  // Hann window keeps the truncated kernel's sidelobes low enough that the
  // reconstruction error sits well below the AWGN floor of every experiment.
  const double w = 0.5 * (1.0 + std::cos(kPi * x / hw));
  return sinc(x) * w;
}

cplx SincInterpolator::at(const CVec& x, double t) const {
  const auto n0 = static_cast<std::ptrdiff_t>(std::floor(t));
  const auto hw = static_cast<std::ptrdiff_t>(half_width_);
  const std::ptrdiff_t lo =
      std::max<std::ptrdiff_t>(n0 - hw + 1, 0);
  const std::ptrdiff_t hi =
      std::min<std::ptrdiff_t>(n0 + hw, static_cast<std::ptrdiff_t>(x.size()) - 1);
  if (hi < lo) return cplx{0.0, 0.0};

  // Consecutive kernel arguments differ by exactly 1, so the two
  // transcendental factors recur instead of being re-evaluated per tap:
  //   sin(π(x0 - j)) = ±sin(πf)          (alternating sign)
  //   cos(π(x0 - j)/hw)                  (fixed-angle rotor)
  // This is ~2 sin/cos calls per interpolation instead of 2 per tap, and
  // matches the direct evaluation to ~1e-15.
  const double x0 = t - static_cast<double>(lo);  // largest argument, > 0
  const double hwd = static_cast<double>(half_width_);
  const double s0 = std::sin(kPi * x0);
  const double phi0 = kPi * x0 / hwd;
  const double dphi = kPi / hwd;
  double cw = std::cos(phi0);
  double sw = std::sin(phi0);
  const double cd = std::cos(dphi);
  const double sd = std::sin(dphi);

  cplx acc{0.0, 0.0};
  double sign = 1.0;  // (-1)^j for the sine alternation
  for (std::ptrdiff_t i = lo; i <= hi; ++i) {
    const double xv = t - static_cast<double>(i);
    if (std::abs(xv) < hwd) {
      double k;
      if (std::abs(xv) < 1e-9) {
        k = 0.5 * (1.0 + cw);
      } else {
        const double s = sign * s0 / (kPi * xv);   // sinc(xv)
        k = s * 0.5 * (1.0 + cw);                  // Hann window
      }
      acc += x[static_cast<std::size_t>(i)] * k;
    }
    // Advance the window rotor: cos(phi0 - (j+1)·dphi).
    const double cn = cw * cd + sw * sd;
    sw = sw * cd - cw * sd;
    cw = cn;
    sign = -sign;
  }
  return acc;
}

CVec SincInterpolator::shift(const CVec& x, double mu,
                             double drift_per_sample) const {
  CVec y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double t =
        static_cast<double>(n) + mu + drift_per_sample * static_cast<double>(n);
    y[n] = at(x, t);
  }
  return y;
}

}  // namespace zz::sig
