#include "zz/signal/interp.h"

#include <cmath>
#include <stdexcept>

#include "zz/common/mathutil.h"

namespace zz::sig {

SincInterpolator::SincInterpolator(std::size_t half_width)
    : half_width_(half_width) {
  if (half_width_ == 0)
    throw std::invalid_argument("SincInterpolator: zero half width");
}

double SincInterpolator::kernel(double x) const {
  const double hw = static_cast<double>(half_width_);
  if (std::abs(x) >= hw) return 0.0;
  // Hann window keeps the truncated kernel's sidelobes low enough that the
  // reconstruction error sits well below the AWGN floor of every experiment.
  const double w = 0.5 * (1.0 + std::cos(kPi * x / hw));
  return sinc(x) * w;
}

cplx SincInterpolator::point(const CVec& x, double t, double cd,
                             double sd) const {
  const auto n0 = static_cast<std::ptrdiff_t>(std::floor(t));
  const auto hw = static_cast<std::ptrdiff_t>(half_width_);
  const std::ptrdiff_t full_lo = n0 - hw + 1;
  const std::ptrdiff_t full_hi = n0 + hw;
  const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(full_lo, 0);
  const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
      full_hi, static_cast<std::ptrdiff_t>(x.size()) - 1);
  if (hi < lo) return cplx{0.0, 0.0};
  const double hwd = static_cast<double>(half_width_);

  // Consecutive kernel arguments differ by exactly 1, so the two
  // transcendental factors recur instead of being re-evaluated per tap:
  //   sin(π(x0 - j)) = ±sin(πf)          (alternating sign)
  //   cos(π(x0 - j)/hw)                  (fixed-angle rotor)
  // This is ~2 sin/cos calls per interpolation instead of 2 per tap, and
  // matches the direct evaluation to ~1e-15.
  if (lo == full_lo && hi == full_hi) {
    // Interior fast path: the whole kernel window is inside the stream.
    const double x0 = t - static_cast<double>(lo);  // largest argument, > 0
    const double s0 = std::sin(kPi * x0);
    const double phi0 = kPi * x0 / hwd;
    double cw = std::cos(phi0);
    double sw = std::sin(phi0);

    cplx acc{0.0, 0.0};
    double sign = 1.0;  // (-1)^j for the sine alternation
    for (std::ptrdiff_t i = lo; i <= hi; ++i) {
      const double xv = t - static_cast<double>(i);
      if (std::abs(xv) < hwd) {
        double k;
        if (std::abs(xv) < 1e-9) {
          k = 0.5 * (1.0 + cw);
        } else {
          const double s = sign * s0 / (kPi * xv);   // sinc(xv)
          k = s * 0.5 * (1.0 + cw);                  // Hann window
        }
        acc += x[static_cast<std::size_t>(i)] * k;
      }
      // Advance the window rotor: cos(phi0 - (j+1)·dphi).
      const double cn = cw * cd + sw * sd;
      sw = sw * cd - cw * sd;
      cw = cn;
      sign = -sign;
    }
    return acc;
  }

  // Edge path: the stream boundary truncates the kernel window. A plain
  // truncated sum loses the clipped taps' weight and comes back attenuated
  // (a DC stream would read ~0.5 at the very first sample), so the clipped
  // window is renormalized by the summed kernel weight: the usable taps are
  // scaled by (full-window weight) / (in-range weight). Guarded so a
  // pathological clipped weight near zero (possible in principle since
  // sidelobes are negative) never amplifies noise.
  const double x0 = t - static_cast<double>(full_lo);
  const double s0 = std::sin(kPi * x0);
  const double phi0 = kPi * x0 / hwd;
  double cw = std::cos(phi0);
  double sw = std::sin(phi0);

  cplx acc{0.0, 0.0};
  double wsum_full = 0.0;
  double wsum_clip = 0.0;
  double sign = 1.0;
  for (std::ptrdiff_t i = full_lo; i <= full_hi; ++i) {
    const double xv = t - static_cast<double>(i);
    if (std::abs(xv) < hwd) {
      double k;
      if (std::abs(xv) < 1e-9) {
        k = 0.5 * (1.0 + cw);
      } else {
        const double s = sign * s0 / (kPi * xv);
        k = s * 0.5 * (1.0 + cw);
      }
      wsum_full += k;
      if (i >= lo && i <= hi) {
        acc += x[static_cast<std::size_t>(i)] * k;
        wsum_clip += k;
      }
    }
    const double cn = cw * cd + sw * sd;
    sw = sw * cd - cw * sd;
    cw = cn;
    sign = -sign;
  }
  if (std::abs(wsum_clip) > 1e-6) {
    const double renorm = wsum_full / wsum_clip;
    if (renorm > 0.25 && renorm < 4.0) acc *= renorm;
  }
  return acc;
}

cplx SincInterpolator::at(const CVec& x, double t) const {
  const double dphi = kPi / static_cast<double>(half_width_);
  const double cd = std::cos(dphi);
  const double sd = std::sin(dphi);
  return point(x, t, cd, sd);
}

void SincInterpolator::at_batch(const CVec& x, std::span<const double> t,
                                cplx* out) const {
  const double dphi = kPi / static_cast<double>(half_width_);
  const double cd = std::cos(dphi);
  const double sd = std::sin(dphi);
  for (std::size_t j = 0; j < t.size(); ++j) out[j] = point(x, t[j], cd, sd);
}

void SincInterpolator::at_uniform(const CVec& x, double t0, double dt,
                                  std::size_t n, cplx* out) const {
  const double dphi = kPi / static_cast<double>(half_width_);
  const double cd = std::cos(dphi);
  const double sd = std::sin(dphi);
  for (std::size_t j = 0; j < n; ++j)
    out[j] = point(x, t0 + dt * static_cast<double>(j), cd, sd);
}

CVec SincInterpolator::shift(const CVec& x, double mu,
                             double drift_per_sample) const {
  // A whole-stream resample is one long block evaluation: hoist the
  // recurrence constants like at_batch does, keeping the historical
  // per-sample position formula (bit-identical to calling at() per sample).
  const double dphi = kPi / static_cast<double>(half_width_);
  const double cd = std::cos(dphi);
  const double sd = std::sin(dphi);
  CVec y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double t =
        static_cast<double>(n) + mu + drift_per_sample * static_cast<double>(n);
    y[n] = point(x, t, cd, sd);
  }
  return y;
}

}  // namespace zz::sig
