#include "zz/signal/interp.h"

#include <cmath>
#include <stdexcept>

#include "zz/common/mathutil.h"

namespace zz::sig {

SincInterpolator::SincInterpolator(std::size_t half_width)
    : half_width_(half_width) {
  if (half_width_ == 0)
    throw std::invalid_argument("SincInterpolator: zero half width");
}

double SincInterpolator::kernel(double x) const {
  const double hw = static_cast<double>(half_width_);
  if (std::abs(x) >= hw) return 0.0;
  // Hann window keeps the truncated kernel's sidelobes low enough that the
  // reconstruction error sits well below the AWGN floor of every experiment.
  const double w = 0.5 * (1.0 + std::cos(kPi * x / hw));
  return sinc(x) * w;
}

cplx SincInterpolator::at(const CVec& x, double t) const {
  const auto n0 = static_cast<std::ptrdiff_t>(std::floor(t));
  cplx acc{0.0, 0.0};
  const auto hw = static_cast<std::ptrdiff_t>(half_width_);
  for (std::ptrdiff_t i = n0 - hw + 1; i <= n0 + hw; ++i) {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(x.size())) continue;
    acc += x[static_cast<std::size_t>(i)] * kernel(t - static_cast<double>(i));
  }
  return acc;
}

CVec SincInterpolator::shift(const CVec& x, double mu,
                             double drift_per_sample) const {
  CVec y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double t =
        static_cast<double>(n) + mu + drift_per_sample * static_cast<double>(n);
    y[n] = at(x, t);
  }
  return y;
}

}  // namespace zz::sig
