// Band-limited fractional-delay interpolation (§4.2.3b).
//
// The paper reconstructs the image of a decoded chunk at the receiver's
// sampling phase by Nyquist interpolation, "approximated by taking the
// summation over few symbols (about 8 symbols) in the neighborhood of n".
// `SincInterpolator` implements exactly that: a windowed-sinc kernel with a
// configurable half-width (default 8 one-sided taps, 16 total).
#pragma once

#include <cstddef>

#include "zz/common/types.h"

namespace zz::sig {

/// Windowed-sinc interpolator over a complex sample stream.
class SincInterpolator {
 public:
  /// `half_width`: number of neighbouring samples used on each side.
  explicit SincInterpolator(std::size_t half_width = 8);

  std::size_t half_width() const { return half_width_; }

  /// Value of the band-limited signal underlying `x` at continuous position
  /// `t` (in samples). Positions outside the stream see implicit zeros.
  cplx at(const CVec& x, double t) const;

  /// Resample the whole stream at positions t_n = n + mu + drift*n, i.e. a
  /// constant fractional offset plus a linear clock drift — the sampling
  /// model of §3.1.2. Output has the same length as the input.
  CVec shift(const CVec& x, double mu, double drift_per_sample = 0.0) const;

 private:
  double kernel(double x) const;  ///< Hann-windowed sinc.
  std::size_t half_width_;
};

}  // namespace zz::sig
