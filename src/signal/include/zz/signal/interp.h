// Band-limited fractional-delay interpolation (§4.2.3b).
//
// The paper reconstructs the image of a decoded chunk at the receiver's
// sampling phase by Nyquist interpolation, "approximated by taking the
// summation over few symbols (about 8 symbols) in the neighborhood of n".
// `SincInterpolator` implements exactly that: a windowed-sinc kernel with a
// configurable half-width (default 8 one-sided taps, 16 total).
#pragma once

#include <cstddef>
#include <span>

#include "zz/common/types.h"

namespace zz::sig {

/// Windowed-sinc interpolator over a complex sample stream.
class SincInterpolator {
 public:
  /// `half_width`: number of neighbouring samples used on each side.
  explicit SincInterpolator(std::size_t half_width = 8);

  std::size_t half_width() const { return half_width_; }

  /// Value of the band-limited signal underlying `x` at continuous position
  /// `t` (in samples). Positions outside the stream see implicit zeros;
  /// near the stream edges the truncated kernel window is renormalized by
  /// its summed weight, so edge samples keep interior gain.
  cplx at(const CVec& x, double t) const;

  /// Block evaluation of a run of positions in one pass: out[j] is the
  /// value at t[j], bit-identical to calling at(x, t[j]) per position. The
  /// per-call kernel recurrence setup that at() redoes per sample is
  /// hoisted across the whole run — this is the decoder's per-tracking-
  /// block fetch path (ChunkDecoder::raw_block supplies the positions,
  /// which its legacy per-symbol formula defines).
  void at_batch(const CVec& x, std::span<const double> t, cplx* out) const;

  /// Convenience block evaluation at uniformly spaced positions
  /// t_j = t0 + j·dt for j in [0, n) — a symbol-rate run expressed by
  /// (start, step). Note the decoder itself feeds at_batch with positions
  /// computed by its historical per-symbol expression, whose rounding
  /// differs from t0 + j·dt at the ulp level; this wrapper is for callers
  /// without such a legacy contract.
  void at_uniform(const CVec& x, double t0, double dt, std::size_t n,
                  cplx* out) const;

  /// Resample the whole stream at positions t_n = n + mu + drift*n, i.e. a
  /// constant fractional offset plus a linear clock drift — the sampling
  /// model of §3.1.2. Output has the same length as the input.
  CVec shift(const CVec& x, double mu, double drift_per_sample = 0.0) const;

 private:
  /// One interpolated value with the recurrence constants precomputed.
  cplx point(const CVec& x, double t, double cd, double sd) const;
  double kernel(double x) const;  ///< Hann-windowed sinc.
  std::size_t half_width_;
};

}  // namespace zz::sig
