// Finite impulse response filtering over complex sample streams.
//
// Two places in the paper need FIR machinery: the symbol-spaced ISI channel
// of §3.1.3 / §4.2.4(d) (`x[i] = sum_l h_l x_isi[i+l]`), and its inverse —
// the equalizer the black-box decoder uses, which ZigZag inverts when it
// re-encodes a chunk so the reconstructed image carries the same distortion
// as the received signal.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/types.h"

namespace zz::sig {

/// A (possibly non-causal) complex FIR filter. Taps are indexed from
/// `-pre` to `taps.size()-1-pre`: output[n] = sum_k taps[k] * x[n + pre - k].
/// With pre == 0 this is an ordinary causal convolution.
class Fir {
 public:
  Fir() : taps_{cplx{1.0, 0.0}}, pre_(0) {}
  explicit Fir(std::vector<cplx> taps, std::size_t pre = 0);

  const std::vector<cplx>& taps() const { return taps_; }
  std::size_t pre() const { return pre_; }
  /// Number of taps after the centre (inclusive span is [-pre, post]).
  std::size_t post() const { return taps_.size() - 1 - pre_; }

  /// Filter the whole stream; output has the same length as the input
  /// (edges see implicit zeros).
  CVec apply(const CVec& x) const;

  /// Single output sample at position n (implicit zeros outside x).
  cplx at(const CVec& x, std::ptrdiff_t n) const;

  /// True if this filter is the identity (single unit tap, no offset).
  bool is_identity() const;

  /// Least-squares FIR inverse with `len` taps centred at `inv_pre`.
  /// Solves min ||g * h - delta||^2 over a support window; used by ZigZag to
  /// undo the decoder's equalizer when reconstructing a chunk (§4.2.4d).
  Fir inverse(std::size_t len, std::size_t inv_pre) const;

 private:
  std::vector<cplx> taps_;
  std::size_t pre_;
};

/// Least-squares fit of a FIR channel: finds taps t (span [-pre, post])
/// minimizing sum_n |y[n] - sum_l t_l x[n-l]|^2. Used at association time to
/// learn a sender's ISI profile from a cleanly decoded packet (§4.2.4d).
Fir fit_fir(const CVec& x, const CVec& y, std::size_t pre, std::size_t post);

}  // namespace zz::sig
