// Sliding correlation — the workhorse of §4.2.1 ("Is It a Collision?") and
// §4.2.2 ("Did the AP Receive Two Matching Collisions?").
//
// The AP slides the known preamble across the received stream; the
// correlation magnitude is near zero everywhere except where the preamble
// aligns with the start of a packet, because the preamble is pseudo-random
// and independent of data and of shifted versions of itself.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/types.h"

namespace zz::sig {

/// Γ(Δ) = Σ_k s*[k] · y[k+Δ] for every alignment Δ, optionally after
/// de-rotating y by a frequency offset hypothesis (the paper's Γ'):
/// Γ'(Δ) = Σ_k s*[k] · y[k+Δ] · e^{-j2πk·δf·T}.
CVec sliding_correlation(const CVec& reference, const CVec& stream,
                         double freq_offset_cycles_per_sample = 0.0);

/// One correlation value at a single alignment.
cplx correlation_at(const CVec& reference, const CVec& stream,
                    std::size_t offset,
                    double freq_offset_cycles_per_sample = 0.0);

/// Positions where |corr| exceeds `threshold`, keeping only local maxima
/// within a guard of `min_separation` samples (a collision detector must
/// not report the same packet start twice).
std::vector<std::size_t> find_peaks(const CVec& corr, double threshold,
                                    std::size_t min_separation);

/// Sub-sample peak refinement: fits a parabola to |corr| at (p-1, p, p+1)
/// and returns the fractional offset of the true maximum in (-0.5, 0.5).
double parabolic_peak_offset(const CVec& corr, std::size_t peak);

}  // namespace zz::sig
