// Sliding correlation — the workhorse of §4.2.1 ("Is It a Collision?") and
// §4.2.2 ("Did the AP Receive Two Matching Collisions?").
//
// The AP slides the known preamble across the received stream; the
// correlation magnitude is near zero everywhere except where the preamble
// aligns with the start of a packet, because the preamble is pseudo-random
// and independent of data and of shifted versions of itself.
//
// Two implementations live here. `sliding_correlation_naive` is the
// textbook O(N·M) loop, kept as the golden reference. `SlidingCorrelator`
// (and the `sliding_correlation` convenience wrapper that routes through
// it) evaluates the same Γ' via overlap-save FFT convolution: the stream's
// block transforms are computed once by prepare() and reused by every
// correlate() call, so the detector's per-client frequency hypotheses cost
// only one short reference FFT plus the inverse transforms each. The two
// paths agree to ~1e-11 absolute (tests pin 1e-9).
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/types.h"
#include "zz/signal/fft.h"

namespace zz::sig {

/// Below this many alignments the FFT set-up cost outweighs the naive loop;
/// sliding_correlation() routes accordingly, and callers that keep their own
/// persistent SlidingCorrelator use the same cutoff so either route produces
/// the same numbers it always did.
inline constexpr std::size_t kSlidingNaiveCutoff = 192;

/// Γ(Δ) = Σ_k s*[k] · y[k+Δ] for every alignment Δ, optionally after
/// de-rotating y by a frequency offset hypothesis (the paper's Γ'):
/// Γ'(Δ) = Σ_k s*[k] · y[k+Δ] · e^{-j2πk·δf·T}.
/// Routed through a one-shot SlidingCorrelator when the stream is long
/// enough for the FFT path to win; identical results either way.
CVec sliding_correlation(const CVec& reference, const CVec& stream,
                         double freq_offset_cycles_per_sample = 0.0);

/// The O(N·M) reference implementation (golden model for the FFT path).
CVec sliding_correlation_naive(const CVec& reference, const CVec& stream,
                               double freq_offset_cycles_per_sample = 0.0);

/// One correlation value at a single alignment.
cplx correlation_at(const CVec& reference, const CVec& stream,
                    std::size_t offset,
                    double freq_offset_cycles_per_sample = 0.0);

/// Batched sliding correlator: overlap-save FFT convolution of one
/// reference against streams, with the stream transforms hoisted so that
/// multiple frequency-offset hypotheses (one per client profile, §4.2.1)
/// reuse them. Not thread-safe; give each thread its own instance.
class SlidingCorrelator {
 public:
  explicit SlidingCorrelator(CVec reference);

  const CVec& reference() const { return ref_; }
  /// Σ|s[k]|² of the reference (the Γ' normalizer of §4.2.4a).
  double reference_energy() const { return eref_; }

  /// Swap in a new reference of the SAME length (throws otherwise),
  /// keeping the prepared stream transforms. This is what makes n-way
  /// packet matching cheap: one prepare() of the new reception serves a
  /// correlate() against every stored packet segment, each costing only a
  /// kernel FFT instead of a fresh O(N·M) pass.
  void set_reference(CVec reference);

  /// Block-transform `stream` once; subsequent correlate() calls reuse the
  /// transforms until the next prepare().
  void prepare(const CVec& stream);

  /// Number of alignments for the prepared stream
  /// (stream.size() - ref.size() + 1, or 0 when the stream is too short).
  std::size_t positions() const { return positions_; }

  /// Γ'(Δ) for all Δ of the prepared stream under one frequency-offset
  /// hypothesis. The hypothesis rotates the (short) reference, so the
  /// result is exact, not an approximation.
  void correlate(double freq_offset_cps, CVec& out);

  /// Convenience: prepare + correlate into a fresh vector.
  CVec correlate(const CVec& stream, double freq_offset_cps = 0.0);

  // --- Incremental (streaming) preparation --------------------------------
  // The overlap-save block boundaries are anchored at the stream start, so
  // appending samples never re-transforms history: a block is FFT'd exactly
  // once, as soon as its full input segment exists, and is bit-identical to
  // what a batch prepare() of the final stream would build. Only the
  // zero-padded partial tail is (re)transformed per query — bounded by one
  // FFT block, i.e. O(1) in stream length.

  /// Reset to an empty appended stream (alignment 0 = first sample).
  /// Ends any batch preparation; extend()/correlate_range() take over.
  void begin_stream();

  /// Append samples to the stream begun by begin_stream(). Amortized
  /// O(log N) work per sample, independent of how the stream is chunked.
  void extend(const cplx* data, std::size_t count);
  void extend(const CVec& samples) { extend(samples.data(), samples.size()); }

  /// Samples appended since begin_stream().
  std::size_t stream_length() const { return stream_len_; }

  /// Alignments of the appended stream (length - ref + 1, or 0).
  std::size_t stream_positions() const;

  /// Alignments whose overlap-save block is finalized: for d <
  /// final_positions(), correlate_range() returns values that are
  /// bit-independent of any samples appended later (the block's FFT input
  /// is complete), so online scans stay identical under any chunking.
  std::size_t final_positions() const;

  /// Γ'(Δ) for Δ in [from, to) of the appended stream, to ≤
  /// stream_positions(). Bit-identical to prepare(full stream) +
  /// correlate() at the same alignments.
  void correlate_range(double freq_offset_cps, std::size_t from,
                       std::size_t to, CVec& out);

 private:
  void ensure_kernel(double freq_offset_cps);

  CVec ref_;
  double eref_ = 0.0;
  Fft fft_;
  std::size_t valid_ = 0;        ///< output samples per block (N - M + 1)
  std::size_t positions_ = 0;    ///< alignments of the prepared stream
  std::vector<CVec> blocks_;     ///< forward FFTs of stream segments
  std::size_t nblocks_ = 0;
  CVec kernel_;                  ///< FFT of conj-reversed rotated reference
  double kernel_freq_ = 0.0;     ///< hypothesis kernel_ was built for
  bool kernel_ready_ = false;
  CVec work_;                    ///< per-block product / inverse buffer

  // Streaming state (begin_stream / extend / correlate_range route).
  bool streaming_ = false;
  std::size_t stream_len_ = 0;   ///< samples appended since begin_stream()
  std::size_t nfinal_ = 0;       ///< finalized (fully fed, FFT'd) blocks
  std::vector<CVec> sblocks_;    ///< forward FFTs of finalized blocks
  CVec tail_;                    ///< raw samples past the finalized blocks
  CVec tailblk_;                 ///< scratch: zero-padded partial tail block
};

/// Sliding sum of |y|² over `window` samples: out[d] = Σ_{k<window}
/// |stream[d+k]|², for d in [0, stream.size() - window]. The running-energy
/// normalizer of the collision detector. O(N) via a running sum that is
/// re-anchored periodically to keep cancellation error below 1e-9 relative.
std::vector<double> windowed_energy(const CVec& stream, std::size_t window);

/// Positions where |corr| exceeds `threshold`, keeping only local maxima
/// within a guard of `min_separation` samples (a collision detector must
/// not report the same packet start twice).
std::vector<std::size_t> find_peaks(const CVec& corr, double threshold,
                                    std::size_t min_separation);

/// Same, over a real-valued metric profile (e.g. the detector's normalized
/// correlation magnitude).
std::vector<std::size_t> find_peaks(const std::vector<double>& metric,
                                    double threshold,
                                    std::size_t min_separation);

/// Sub-sample peak refinement: fits a parabola to |corr| at (p-1, p, p+1)
/// and returns the fractional offset of the true maximum in (-0.5, 0.5).
double parabolic_peak_offset(const CVec& corr, std::size_t peak);

}  // namespace zz::sig
