// Ring-buffer sample ingest — the front end of the streaming receiver
// pipeline (ROADMAP "sample-in → packet-out").
//
// A real AP sees an unbounded sample stream; only a bounded window of it
// (the open reception plus a little slack) ever needs to stay resident.
// SampleRing addresses samples by their absolute 64-bit stream position, so
// the layers above it (frame tracker, streaming correlator, window decode)
// reason in stream positions and never see wrap-around: the ring grows to
// the largest window it is asked to retain and then stays at that
// capacity, making per-push work O(1) in stream length.
#pragma once

#include <cstddef>
#include <cstdint>

#include "zz/common/types.h"

namespace zz::sig {

/// Power-of-two ring over complex baseband samples, indexed by absolute
/// stream position. Retained range is [begin_pos, end_pos); push() appends
/// at end_pos, drop_before() releases the front. Not thread-safe.
class SampleRing {
 public:
  explicit SampleRing(std::size_t min_capacity = 1024);

  std::uint64_t begin_pos() const { return begin_; }
  std::uint64_t end_pos() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  std::size_t capacity() const { return buf_.size(); }

  /// Append `count` samples at end_pos(); grows (power-of-two) when the
  /// retained range would not fit.
  void push(const cplx* data, std::size_t count);
  void push(const CVec& samples) { push(samples.data(), samples.size()); }

  /// Release retained samples with position < pos (clamped to the retained
  /// range). Positions are never reused: begin/end keep counting.
  void drop_before(std::uint64_t pos);

  /// Sample at absolute position `pos`; must lie in [begin_pos, end_pos).
  const cplx& at(std::uint64_t pos) const;

  /// Copy [first, last) into `out` (resized to last - first). The range
  /// must be retained.
  void copy_range(std::uint64_t first, std::uint64_t last, CVec& out) const;

  /// Forget everything including positions (back to an empty stream at 0).
  void reset();

 private:
  void grow(std::size_t need);
  std::size_t slot(std::uint64_t pos) const {
    return static_cast<std::size_t>(pos) & (buf_.size() - 1);
  }

  CVec buf_;  ///< power-of-two storage; slot = pos & (capacity - 1)
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;
};

}  // namespace zz::sig
