// Reusable scratch buffers for per-call workspaces.
//
// The zigzag chunk loop and the collision detector render, correlate and
// project through temporary sample buffers thousands of times per decode;
// allocating them per call dominated the profile. A ScratchArena owns a
// small set of slot-addressed buffers that keep their capacity across
// calls, so steady-state operation performs no allocation at all.
//
// Discipline: slots are owner-scoped. Each object that embeds an arena
// assigns fixed slot numbers to its own call sites (an enum works well);
// two call sites may share a slot only when their lifetimes never overlap.
// Arenas are NOT thread-safe — give each thread (or each engine object)
// its own.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "zz/common/types.h"

namespace zz::sig {

class ScratchArena {
 public:
  /// Complex buffer for `slot`, resized to n. Contents are stale — callers
  /// that need zeros should use czero().
  CVec& cvec(std::size_t slot, std::size_t n) {
    while (c_.size() <= slot) c_.emplace_back();
    c_[slot].resize(n);
    return c_[slot];
  }

  /// Complex buffer for `slot`, resized to n and zero-filled.
  CVec& czero(std::size_t slot, std::size_t n) {
    while (c_.size() <= slot) c_.emplace_back();
    c_[slot].assign(n, cplx{0.0, 0.0});
    return c_[slot];
  }

  /// Real buffer for `slot`, resized to n (contents stale).
  std::vector<double>& dvec(std::size_t slot, std::size_t n) {
    while (d_.size() <= slot) d_.emplace_back();
    d_[slot].resize(n);
    return d_[slot];
  }

  /// Release all held capacity.
  void release() {
    c_.clear();
    d_.clear();
  }

 private:
  // Deques so a reference handed out for one slot survives another slot
  // being materialized while it is still in use.
  std::deque<CVec> c_;
  std::deque<std::vector<double>> d_;
};

}  // namespace zz::sig
