// Reusable scratch buffers for per-call workspaces.
//
// The zigzag chunk loop and the collision detector render, correlate and
// project through temporary sample buffers thousands of times per decode;
// allocating them per call dominated the profile. A ScratchArena owns a
// small set of slot-addressed buffers that keep their capacity across
// calls, so steady-state operation performs no allocation at all.
//
// Discipline: slots are owner-scoped. Each object that embeds an arena
// assigns fixed slot numbers to its own call sites (an enum works well);
// two call sites may share a slot only when their lifetimes never overlap.
//
// Thread contract (docs/ANALYSIS.md §3): arenas are NOT thread-safe — give
// each thread (or each engine object) its own. Serial hand-off between
// threads is fine (the pool runs one task at a time per engine); what is
// forbidden is two threads inside an arena at once. Sanitizer builds
// (ZZ_DEBUG_THREAD_CHECKS, set by the ZZ_SANITIZE configs) compile in a
// concurrent-entry detector that aborts with a diagnostic on violation —
// the machine check backing the contract, since there is no lock for
// clang's thread-safety analysis to see.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#ifdef ZZ_DEBUG_THREAD_CHECKS
#include <cstdio>
#include <cstdlib>

#include "zz/common/atomic.h"
#endif

#include "zz/common/check.h"
#include "zz/common/types.h"

namespace zz::sig {

class ScratchArena {
 public:
  /// Slots are small dense owner-assigned enum values. `slot` and `n` share
  /// a type, so swapping the arguments compiles; a slot this large is a
  /// buffer length standing where the slot index should be.
  static constexpr std::size_t kMaxSlots = 256;

  /// Complex buffer for `slot`, resized to n. Contents are stale — callers
  /// that need zeros should use czero().
  CVec& cvec(std::size_t slot, std::size_t n) {
    ZZ_DCHECK_LT(slot, kMaxSlots);
    [[maybe_unused]] const ConfinementGuard guard(*this);
    while (c_.size() <= slot) c_.emplace_back();
    c_[slot].resize(n);
    return c_[slot];
  }

  /// Complex buffer for `slot`, resized to n and zero-filled.
  CVec& czero(std::size_t slot, std::size_t n) {
    ZZ_DCHECK_LT(slot, kMaxSlots);
    [[maybe_unused]] const ConfinementGuard guard(*this);
    while (c_.size() <= slot) c_.emplace_back();
    c_[slot].assign(n, cplx{0.0, 0.0});
    return c_[slot];
  }

  /// Real buffer for `slot`, resized to n (contents stale).
  std::vector<double>& dvec(std::size_t slot, std::size_t n) {
    ZZ_DCHECK_LT(slot, kMaxSlots);
    [[maybe_unused]] const ConfinementGuard guard(*this);
    while (d_.size() <= slot) d_.emplace_back();
    d_[slot].resize(n);
    return d_[slot];
  }

  /// Release all held capacity.
  void release() {
    [[maybe_unused]] const ConfinementGuard guard(*this);
    c_.clear();
    d_.clear();
  }

 private:
#ifdef ZZ_DEBUG_THREAD_CHECKS
  /// Aborts when two threads are inside the arena at once. Entry/exit are
  /// acq_rel RMWs on a zz::EntryCounter — NOT relaxed: the documented
  /// contract allows serial cross-thread hand-off, and with a relaxed
  /// counter the detector both stayed silent AND provided no
  /// happens-before edge between the two users' buffer writes, so the
  /// hand-off the contract promises was itself a data race. The acq_rel
  /// counter chain is that edge (B's enter that observes A's exit sees all
  /// of A's writes); the confinement model suite pins both the overlap
  /// detection and the hand-off visibility, and its relaxed variant is the
  /// caught regression (docs/ANALYSIS.md §10).
  struct ConfinementGuard {
    explicit ConfinementGuard(ScratchArena& a) : a_(a) {
      if (a_.active_.enter() != 0) {
        std::fprintf(stderr,
                     "ScratchArena: concurrent access from two threads — "
                     "arenas are thread-confined (see zz/signal/scratch.h)\n");
        std::abort();
      }
    }
    ~ConfinementGuard() { a_.active_.exit(); }
    ScratchArena& a_;
  };
  EntryCounter active_;
#else
  struct ConfinementGuard {
    explicit ConfinementGuard(ScratchArena&) {}
  };
#endif

  // Deques so a reference handed out for one slot survives another slot
  // being materialized while it is still in use.
  std::deque<CVec> c_;
  std::deque<std::vector<double>> d_;
};

}  // namespace zz::sig
