// Radix-2 FFT used by the batched sliding correlator.
//
// The correlation hot path (§4.2.1) computes Γ'(Δ) for every alignment Δ of
// a short reference against a long stream. Done naively that is O(N·M);
// overlap-save convolution through this FFT makes it O(N·log M) and — more
// importantly for the detector — lets the stream's block transforms be
// computed once and reused across every client frequency hypothesis.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/common/types.h"

namespace zz::sig {

/// In-place iterative radix-2 DIT transform over power-of-two lengths.
/// Twiddles and the bit-reversal permutation are precomputed at
/// construction, so a plan is cheap to reuse across many buffers.
class Fft {
 public:
  explicit Fft(std::size_t n);  ///< n must be a power of two >= 2

  std::size_t size() const { return n_; }

  /// X[k] = Σ_n x[n]·e^{-j2πnk/N}, in place.
  void forward(cplx* x) const;

  /// x[n] = (1/N)·Σ_k X[k]·e^{+j2πnk/N}, in place.
  void inverse(cplx* x) const;

  /// Smallest power of two >= n.
  static std::size_t next_pow2(std::size_t n);

 private:
  void transform(cplx* x, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> rev_;  ///< bit-reversal permutation
  std::vector<cplx> tw_;            ///< e^{-j2πk/N}, k < N/2
};

}  // namespace zz::sig
