#include "zz/signal/fft.h"

#include <cmath>
#include <stdexcept>

#include "zz/common/mathutil.h"

namespace zz::sig {

std::size_t Fft::next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Fft::Fft(std::size_t n) : n_(n) {
  if (n < 2 || (n & (n - 1)) != 0)
    throw std::invalid_argument("Fft: size must be a power of two >= 2");
  rev_.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    rev_[i] = static_cast<std::uint32_t>(r);
  }
  tw_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double phi = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    tw_[k] = cplx{std::cos(phi), std::sin(phi)};
  }
}

void Fft::transform(cplx* x, bool inverse) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = rev_[i];
    if (i < r) std::swap(x[i], x[r]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n_ / len;
    for (std::size_t base = 0; base < n_; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx w = inverse ? std::conj(tw_[k * step]) : tw_[k * step];
        const cplx u = x[base + k];
        const cplx v = x[base + k + half] * w;
        x[base + k] = u + v;
        x[base + k + half] = u - v;
      }
    }
  }
}

void Fft::forward(cplx* x) const { transform(x, false); }

void Fft::inverse(cplx* x) const {
  transform(x, true);
  const double s = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] *= s;
}

}  // namespace zz::sig
