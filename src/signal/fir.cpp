#include "zz/signal/fir.h"

#include <stdexcept>

namespace zz::sig {

Fir::Fir(std::vector<cplx> taps, std::size_t pre)
    : taps_(std::move(taps)), pre_(pre) {
  if (taps_.empty()) throw std::invalid_argument("Fir: empty tap vector");
  if (pre_ >= taps_.size())
    throw std::invalid_argument("Fir: pre offset outside tap vector");
}

cplx Fir::at(const CVec& x, std::ptrdiff_t n) const {
  cplx acc{0.0, 0.0};
  const auto len = static_cast<std::ptrdiff_t>(taps_.size());
  for (std::ptrdiff_t k = 0; k < len; ++k) {
    const std::ptrdiff_t idx = n + static_cast<std::ptrdiff_t>(pre_) - k;
    if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(x.size()))
      acc += taps_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(idx)];
  }
  return acc;
}

CVec Fir::apply(const CVec& x) const {
  CVec y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n)
    y[n] = at(x, static_cast<std::ptrdiff_t>(n));
  return y;
}

bool Fir::is_identity() const {
  return taps_.size() == 1 && pre_ == 0 &&
         std::abs(taps_[0] - cplx{1.0, 0.0}) < 1e-12;
}

Fir Fir::inverse(std::size_t len, std::size_t inv_pre) const {
  if (len == 0) throw std::invalid_argument("Fir::inverse: zero length");
  // Solve the Toeplitz least-squares problem: find g minimizing
  // || conv(g, h) - delta ||^2 over an output window generous enough to
  // capture all of conv's support. Normal equations via direct Gaussian
  // elimination (len is tiny — a handful of taps).
  const std::size_t hl = taps_.size();
  const std::size_t out_len = len + hl - 1;
  // conv index mapping: conv[m] = sum_k g[k] h[m-k]; the delta target sits
  // where the combined "pre" offsets align: m_delta = inv_pre + pre_.
  const std::size_t m_delta = inv_pre + pre_;
  if (m_delta >= out_len)
    throw std::invalid_argument("Fir::inverse: inv_pre outside support");

  // Build A (out_len x len): A[m][k] = h[m-k].
  std::vector<std::vector<cplx>> a(out_len, std::vector<cplx>(len, cplx{}));
  for (std::size_t m = 0; m < out_len; ++m)
    for (std::size_t k = 0; k < len; ++k) {
      const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(m) -
                                static_cast<std::ptrdiff_t>(k);
      if (hi >= 0 && hi < static_cast<std::ptrdiff_t>(hl))
        a[m][k] = taps_[static_cast<std::size_t>(hi)];
    }

  // Normal equations: (A^H A) g = A^H d where d = e_{m_delta}.
  std::vector<std::vector<cplx>> ata(len, std::vector<cplx>(len, cplx{}));
  std::vector<cplx> atd(len, cplx{});
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t j = 0; j < len; ++j)
      for (std::size_t m = 0; m < out_len; ++m)
        ata[i][j] += std::conj(a[m][i]) * a[m][j];
    atd[i] = std::conj(a[m_delta][i]);
  }
  // Tikhonov damping keeps the inverse stable when h is near-singular.
  for (std::size_t i = 0; i < len; ++i) ata[i][i] += cplx{1e-9, 0.0};

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < len; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < len; ++r)
      if (std::abs(ata[r][col]) > std::abs(ata[piv][col])) piv = r;
    std::swap(ata[piv], ata[col]);
    std::swap(atd[piv], atd[col]);
    const cplx p = ata[col][col];
    if (std::abs(p) < 1e-15)
      throw std::runtime_error("Fir::inverse: singular system");
    for (std::size_t r = 0; r < len; ++r) {
      if (r == col) continue;
      const cplx f = ata[r][col] / p;
      for (std::size_t c = col; c < len; ++c) ata[r][c] -= f * ata[col][c];
      atd[r] -= f * atd[col];
    }
  }
  std::vector<cplx> g(len);
  for (std::size_t i = 0; i < len; ++i) g[i] = atd[i] / ata[i][i];
  return Fir(std::move(g), inv_pre);
}

Fir fit_fir(const CVec& x, const CVec& y, std::size_t pre, std::size_t post) {
  const std::size_t len = pre + post + 1;
  if (x.size() != y.size() || x.size() < len)
    throw std::invalid_argument("fit_fir: bad input sizes");

  // Normal equations over the interior where all regressors exist.
  std::vector<std::vector<cplx>> ata(len, std::vector<cplx>(len, cplx{}));
  std::vector<cplx> aty(len, cplx{});
  const std::size_t n0 = post;                 // x[n - (-pre)] = x[n + pre]
  const std::size_t n1 = x.size() - pre;
  auto reg = [&](std::size_t n, std::size_t l) -> cplx {
    // tap index l in [0, len) maps to lag (l - pre): y[n] ~ t_l x[n - (l-pre)]
    const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(n) -
                               (static_cast<std::ptrdiff_t>(l) -
                                static_cast<std::ptrdiff_t>(pre));
    return x[static_cast<std::size_t>(idx)];
  };
  for (std::size_t n = n0; n < n1; ++n) {
    for (std::size_t i = 0; i < len; ++i) {
      const cplx ri = reg(n, i);
      aty[i] += std::conj(ri) * y[n];
      for (std::size_t j = 0; j < len; ++j) ata[i][j] += std::conj(ri) * reg(n, j);
    }
  }
  for (std::size_t i = 0; i < len; ++i) ata[i][i] += cplx{1e-9, 0.0};

  // Gaussian elimination (len is tiny).
  for (std::size_t col = 0; col < len; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < len; ++r)
      if (std::abs(ata[r][col]) > std::abs(ata[piv][col])) piv = r;
    std::swap(ata[piv], ata[col]);
    std::swap(aty[piv], aty[col]);
    const cplx p = ata[col][col];
    if (std::abs(p) < 1e-15) throw std::runtime_error("fit_fir: singular");
    for (std::size_t r = 0; r < len; ++r) {
      if (r == col) continue;
      const cplx f = ata[r][col] / p;
      for (std::size_t c = col; c < len; ++c) ata[r][c] -= f * ata[col][c];
      aty[r] -= f * aty[col];
    }
  }
  std::vector<cplx> taps(len);
  for (std::size_t i = 0; i < len; ++i) taps[i] = aty[i] / ata[i][i];
  return Fir(std::move(taps), pre);
}

}  // namespace zz::sig
