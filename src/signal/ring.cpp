#include "zz/signal/ring.h"

#include <algorithm>

#include "zz/common/check.h"
#include "zz/signal/fft.h"

namespace zz::sig {

SampleRing::SampleRing(std::size_t min_capacity) {
  buf_.assign(Fft::next_pow2(std::max<std::size_t>(min_capacity, 2)),
              cplx{0.0, 0.0});
}

void SampleRing::grow(std::size_t need) {
  CVec bigger(Fft::next_pow2(std::max(need, 2 * buf_.size())),
              cplx{0.0, 0.0});
  const std::size_t mask = bigger.size() - 1;
  for (std::uint64_t p = begin_; p != end_; ++p)
    bigger[static_cast<std::size_t>(p) & mask] = buf_[slot(p)];
  buf_.swap(bigger);
}

void SampleRing::push(const cplx* data, std::size_t count) {
  if (size() + count > buf_.size()) grow(size() + count);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t s = slot(end_);
    const std::size_t run = std::min(count - done, buf_.size() - s);
    std::copy(data + done, data + done + run,
              buf_.begin() + static_cast<std::ptrdiff_t>(s));
    done += run;
    end_ += run;
  }
}

void SampleRing::drop_before(std::uint64_t pos) {
  begin_ = std::min(std::max(begin_, pos), end_);
}

const cplx& SampleRing::at(std::uint64_t pos) const {
  ZZ_DCHECK_GE(pos, begin_);
  ZZ_DCHECK_LT(pos, end_);
  return buf_[slot(pos)];
}

void SampleRing::copy_range(std::uint64_t first, std::uint64_t last,
                            CVec& out) const {
  ZZ_CHECK_LE(first, last);
  ZZ_CHECK_GE(first, begin_) << " — range already dropped";
  ZZ_CHECK_LE(last, end_) << " — range not yet pushed";
  out.resize(static_cast<std::size_t>(last - first));
  std::size_t done = 0;
  std::uint64_t p = first;
  while (p != last) {
    const std::size_t s = slot(p);
    const std::size_t run = std::min(static_cast<std::size_t>(last - p),
                                     buf_.size() - s);
    std::copy(buf_.begin() + static_cast<std::ptrdiff_t>(s),
              buf_.begin() + static_cast<std::ptrdiff_t>(s + run),
              out.begin() + static_cast<std::ptrdiff_t>(done));
    done += run;
    p += run;
  }
}

void SampleRing::reset() {
  begin_ = 0;
  end_ = 0;
}

}  // namespace zz::sig
