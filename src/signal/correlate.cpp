#include "zz/signal/correlate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "zz/common/check.h"
#include "zz/common/mathutil.h"

namespace zz::sig {
namespace {

// FFT block size: 4x the reference rounded up to a power of two keeps the
// valid fraction of each block (N - M + 1)/N around 3/4.
std::size_t pick_fft_size(std::size_t ref_len) {
  return std::max<std::size_t>(64, Fft::next_pow2(4 * ref_len));
}

}  // namespace

cplx correlation_at(const CVec& reference, const CVec& stream,
                    std::size_t offset, double freq_offset_cps) {
  cplx acc{0.0, 0.0};
  if (freq_offset_cps == 0.0) {
    for (std::size_t k = 0; k < reference.size(); ++k) {
      const std::size_t idx = offset + k;
      if (idx >= stream.size()) break;
      acc += std::conj(reference[k]) * stream[idx];
    }
    return acc;
  }
  // De-rotation via a unit rotor instead of per-sample sin/cos: the phase
  // step is constant, so one transcendental pair serves the whole window.
  const double dphi = -kTwoPi * freq_offset_cps;
  const cplx step{std::cos(dphi), std::sin(dphi)};
  cplx rot{1.0, 0.0};
  for (std::size_t k = 0; k < reference.size(); ++k) {
    const std::size_t idx = offset + k;
    if (idx >= stream.size()) break;
    acc += std::conj(reference[k]) * stream[idx] * rot;
    rot *= step;
  }
  return acc;
}

CVec sliding_correlation_naive(const CVec& reference, const CVec& stream,
                               double freq_offset_cps) {
  if (stream.size() < reference.size() || reference.empty()) return {};
  const std::size_t positions = stream.size() - reference.size() + 1;
  CVec out(positions);
  for (std::size_t d = 0; d < positions; ++d)
    out[d] = correlation_at(reference, stream, d, freq_offset_cps);
  return out;
}

CVec sliding_correlation(const CVec& reference, const CVec& stream,
                         double freq_offset_cps) {
  if (stream.size() < reference.size() || reference.empty()) return {};
  const std::size_t positions = stream.size() - reference.size() + 1;
  if (positions < kSlidingNaiveCutoff)
    return sliding_correlation_naive(reference, stream, freq_offset_cps);
  SlidingCorrelator corr(reference);
  return corr.correlate(stream, freq_offset_cps);
}

SlidingCorrelator::SlidingCorrelator(CVec reference)
    : ref_(std::move(reference)),
      fft_(pick_fft_size(std::max<std::size_t>(ref_.size(), 1))) {
  for (const cplx& v : ref_) eref_ += std::norm(v);
  valid_ = fft_.size() - ref_.size() + 1;
}

void SlidingCorrelator::set_reference(CVec reference) {
  if (reference.size() != ref_.size())
    throw std::invalid_argument(
        "SlidingCorrelator::set_reference: length must match the original "
        "reference (block transforms are sized for it)");
  ref_ = std::move(reference);
  eref_ = 0.0;
  for (const cplx& v : ref_) eref_ += std::norm(v);
  kernel_ready_ = false;
  kernel_freq_ = 0.0;
}

void SlidingCorrelator::prepare(const CVec& stream) {
  kernel_ready_ = false;  // hypotheses must re-pair with the new stream
  kernel_freq_ = 0.0;
  streaming_ = false;  // batch preparation supersedes any appended stream
  positions_ = stream.size() >= ref_.size() && !ref_.empty()
                   ? stream.size() - ref_.size() + 1
                   : 0;
  if (positions_ == 0) {
    nblocks_ = 0;
    return;
  }
  const std::size_t n = fft_.size();
  // Output block b covers alignments [b·valid_, b·valid_ + valid_); its
  // input segment is stream[b·valid_ .. b·valid_ + n), zero-padded at the
  // tail end.
  nblocks_ = (positions_ + valid_ - 1) / valid_;
  if (blocks_.size() < nblocks_) blocks_.resize(nblocks_);
  for (std::size_t b = 0; b < nblocks_; ++b) {
    CVec& blk = blocks_[b];
    blk.assign(n, cplx{0.0, 0.0});
    const std::size_t s0 = b * valid_;
    const std::size_t copy = std::min(n, stream.size() - s0);
    std::copy(stream.begin() + static_cast<std::ptrdiff_t>(s0),
              stream.begin() + static_cast<std::ptrdiff_t>(s0 + copy),
              blk.begin());
    fft_.forward(blk.data());
  }
}

void SlidingCorrelator::ensure_kernel(double freq_offset_cps) {
  if (kernel_ready_ && kernel_freq_ == freq_offset_cps) return;
  // Γ'(Δ) = Σ_k conj(r[k]·e^{+j2πk·δf}) · y[Δ+k]: the hypothesis folds
  // into the reference, so the stream transforms stay shared. Packed as
  // a convolution kernel g[m-1-k] = conj(r'[k]).
  const std::size_t n = fft_.size();
  const std::size_t m = ref_.size();
  kernel_.assign(n, cplx{0.0, 0.0});
  const double dphi = kTwoPi * freq_offset_cps;
  const cplx step{std::cos(dphi), std::sin(dphi)};
  cplx rot{1.0, 0.0};
  for (std::size_t k = 0; k < m; ++k) {
    kernel_[m - 1 - k] = std::conj(ref_[k] * rot);
    rot *= step;
  }
  fft_.forward(kernel_.data());
  kernel_freq_ = freq_offset_cps;
  kernel_ready_ = true;
}

void SlidingCorrelator::correlate(double freq_offset_cps, CVec& out) {
  out.assign(positions_, cplx{0.0, 0.0});
  if (positions_ == 0) return;
  const std::size_t n = fft_.size();
  const std::size_t m = ref_.size();

  ensure_kernel(freq_offset_cps);

  work_.resize(n);
  for (std::size_t b = 0; b < nblocks_; ++b) {
    const CVec& blk = blocks_[b];
    for (std::size_t i = 0; i < n; ++i) work_[i] = blk[i] * kernel_[i];
    fft_.inverse(work_.data());
    const std::size_t d0 = b * valid_;
    const std::size_t count = std::min(valid_, positions_ - d0);
    // Valid (non-circular) convolution outputs sit at [m-1, n).
    for (std::size_t i = 0; i < count; ++i) out[d0 + i] = work_[m - 1 + i];
  }
}

CVec SlidingCorrelator::correlate(const CVec& stream, double freq_offset_cps) {
  prepare(stream);
  CVec out;
  correlate(freq_offset_cps, out);
  return out;
}

void SlidingCorrelator::begin_stream() {
  streaming_ = true;
  stream_len_ = 0;
  nfinal_ = 0;
  tail_.clear();
  // Batch state is superseded; a stale prepare() must not answer queries.
  positions_ = 0;
  nblocks_ = 0;
}

void SlidingCorrelator::extend(const cplx* data, std::size_t count) {
  ZZ_CHECK(streaming_) << " — call begin_stream() before extend()";
  tail_.insert(tail_.end(), data, data + count);
  stream_len_ += count;
  const std::size_t n = fft_.size();
  // Finalize every block whose full n-sample input segment now exists.
  // Block b covers stream[b·valid_, b·valid_ + n); tail_ holds
  // stream[nfinal_·valid_, stream_len_), so a finalization consumes the
  // first n tail samples and then slides the tail by valid_.
  while (tail_.size() >= n) {
    if (sblocks_.size() <= nfinal_) sblocks_.emplace_back();
    CVec& blk = sblocks_[nfinal_];
    blk.assign(tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(n));
    fft_.forward(blk.data());
    ++nfinal_;
    tail_.erase(tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(valid_));
  }
}

std::size_t SlidingCorrelator::stream_positions() const {
  return stream_len_ >= ref_.size() && !ref_.empty()
             ? stream_len_ - ref_.size() + 1
             : 0;
}

std::size_t SlidingCorrelator::final_positions() const {
  return std::min(nfinal_ * valid_, stream_positions());
}

void SlidingCorrelator::correlate_range(double freq_offset_cps,
                                        std::size_t from, std::size_t to,
                                        CVec& out) {
  ZZ_CHECK(streaming_) << " — call begin_stream()/extend() first";
  ZZ_CHECK_LE(from, to);
  ZZ_CHECK_LE(to, stream_positions());
  out.assign(to - from, cplx{0.0, 0.0});
  if (from == to) return;
  ensure_kernel(freq_offset_cps);
  const std::size_t n = fft_.size();
  const std::size_t m = ref_.size();
  work_.resize(n);
  const std::size_t b0 = from / valid_;
  const std::size_t b1 = (to - 1) / valid_;
  for (std::size_t b = b0; b <= b1; ++b) {
    const cplx* blk;
    if (b < nfinal_) {
      blk = sblocks_[b].data();
    } else {
      // Partial tail block: zero-padded and transformed per query — the
      // same segment content a batch prepare() of the current stream would
      // build, so results match the contiguous route bit for bit.
      const std::size_t s0 = b * valid_;
      const std::size_t t0 = s0 - nfinal_ * valid_;
      const std::size_t copy = std::min(n, stream_len_ - s0);
      tailblk_.assign(n, cplx{0.0, 0.0});
      std::copy(tail_.begin() + static_cast<std::ptrdiff_t>(t0),
                tail_.begin() + static_cast<std::ptrdiff_t>(t0 + copy),
                tailblk_.begin());
      fft_.forward(tailblk_.data());
      blk = tailblk_.data();
    }
    for (std::size_t i = 0; i < n; ++i) work_[i] = blk[i] * kernel_[i];
    fft_.inverse(work_.data());
    const std::size_t d0 = b * valid_;
    const std::size_t lo = std::max(from, d0);
    const std::size_t hi = std::min(to, d0 + valid_);
    // Valid (non-circular) convolution outputs sit at [m-1, n).
    for (std::size_t d = lo; d < hi; ++d)
      out[d - from] = work_[m - 1 + (d - d0)];
  }
}

std::vector<double> windowed_energy(const CVec& stream, std::size_t window) {
  if (window == 0 || stream.size() < window) return {};
  const std::size_t positions = stream.size() - window + 1;
  std::vector<double> out(positions);
  // Running sum, re-anchored every block so the add/subtract cancellation
  // error cannot accumulate across a long stream.
  constexpr std::size_t kAnchor = 2048;
  double acc = 0.0;
  for (std::size_t k = 0; k < window; ++k) acc += std::norm(stream[k]);
  out[0] = acc;
  for (std::size_t d = 1; d < positions; ++d) {
    if (d % kAnchor == 0) {
      acc = 0.0;
      for (std::size_t k = 0; k < window; ++k) acc += std::norm(stream[d + k]);
    } else {
      acc += std::norm(stream[d + window - 1]) - std::norm(stream[d - 1]);
    }
    out[d] = acc;
  }
  return out;
}

namespace {

template <typename Mag>
std::vector<std::size_t> find_peaks_impl(std::size_t n, Mag&& mag,
                                         double threshold,
                                         std::size_t min_separation) {
  std::vector<std::size_t> peaks;
  for (std::size_t i = 0; i < n; ++i) {
    const double m = mag(i);
    if (m < threshold) continue;
    // Local maximum within the separation guard.
    bool is_max = true;
    const std::size_t lo = i > min_separation ? i - min_separation : 0;
    const std::size_t hi = std::min(n - 1, i + min_separation);
    for (std::size_t j = lo; j <= hi && is_max; ++j)
      if (mag(j) > m) is_max = false;
    if (!is_max) continue;
    if (!peaks.empty() && i - peaks.back() < min_separation) {
      if (m > mag(peaks.back())) peaks.back() = i;
      continue;
    }
    peaks.push_back(i);
  }
  return peaks;
}

}  // namespace

std::vector<std::size_t> find_peaks(const CVec& corr, double threshold,
                                    std::size_t min_separation) {
  return find_peaks_impl(
      corr.size(), [&](std::size_t i) { return std::abs(corr[i]); }, threshold,
      min_separation);
}

std::vector<std::size_t> find_peaks(const std::vector<double>& metric,
                                    double threshold,
                                    std::size_t min_separation) {
  return find_peaks_impl(
      metric.size(), [&](std::size_t i) { return metric[i]; }, threshold,
      min_separation);
}

double parabolic_peak_offset(const CVec& corr, std::size_t peak) {
  if (peak == 0 || peak + 1 >= corr.size()) return 0.0;
  const double ym = std::abs(corr[peak - 1]);
  const double y0 = std::abs(corr[peak]);
  const double yp = std::abs(corr[peak + 1]);
  const double denom = ym - 2.0 * y0 + yp;
  if (std::abs(denom) < 1e-12) return 0.0;
  double d = 0.5 * (ym - yp) / denom;
  if (d > 0.5) d = 0.5;
  if (d < -0.5) d = -0.5;
  return d;
}

}  // namespace zz::sig
