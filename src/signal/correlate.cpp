#include "zz/signal/correlate.h"

#include <cmath>

#include "zz/common/mathutil.h"

namespace zz::sig {

cplx correlation_at(const CVec& reference, const CVec& stream,
                    std::size_t offset, double freq_offset_cps) {
  cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < reference.size(); ++k) {
    const std::size_t idx = offset + k;
    if (idx >= stream.size()) break;
    cplx sample = stream[idx];
    if (freq_offset_cps != 0.0) {
      const double phi = -kTwoPi * freq_offset_cps * static_cast<double>(k);
      sample *= cplx{std::cos(phi), std::sin(phi)};
    }
    acc += std::conj(reference[k]) * sample;
  }
  return acc;
}

CVec sliding_correlation(const CVec& reference, const CVec& stream,
                         double freq_offset_cps) {
  if (stream.size() < reference.size() || reference.empty()) return {};
  const std::size_t positions = stream.size() - reference.size() + 1;
  CVec out(positions);
  for (std::size_t d = 0; d < positions; ++d)
    out[d] = correlation_at(reference, stream, d, freq_offset_cps);
  return out;
}

std::vector<std::size_t> find_peaks(const CVec& corr, double threshold,
                                    std::size_t min_separation) {
  std::vector<std::size_t> peaks;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const double m = std::abs(corr[i]);
    if (m < threshold) continue;
    // Local maximum within the separation guard.
    bool is_max = true;
    const std::size_t lo = i > min_separation ? i - min_separation : 0;
    const std::size_t hi = std::min(corr.size() - 1, i + min_separation);
    for (std::size_t j = lo; j <= hi && is_max; ++j)
      if (std::abs(corr[j]) > m) is_max = false;
    if (!is_max) continue;
    if (!peaks.empty() && i - peaks.back() < min_separation) {
      if (std::abs(corr[i]) > std::abs(corr[peaks.back()])) peaks.back() = i;
      continue;
    }
    peaks.push_back(i);
  }
  return peaks;
}

double parabolic_peak_offset(const CVec& corr, std::size_t peak) {
  if (peak == 0 || peak + 1 >= corr.size()) return 0.0;
  const double ym = std::abs(corr[peak - 1]);
  const double y0 = std::abs(corr[peak]);
  const double yp = std::abs(corr[peak + 1]);
  const double denom = ym - 2.0 * y0 + yp;
  if (std::abs(denom) < 1e-12) return 0.0;
  double d = 0.5 * (ym - yp) / denom;
  if (d > 0.5) d = 0.5;
  if (d < -0.5) d = -0.5;
  return d;
}

}  // namespace zz::sig
