#include "zz/emu/collision.h"

#include <algorithm>

namespace zz::emu {

CollisionBuilder& CollisionBuilder::lead(std::size_t samples) {
  lead_ = samples;
  return *this;
}

CollisionBuilder& CollisionBuilder::tail(std::size_t samples) {
  tail_ = samples;
  return *this;
}

CollisionBuilder& CollisionBuilder::noise_power(double p) {
  noise_power_ = p;
  return *this;
}

CollisionBuilder& CollisionBuilder::add(phy::TxFrame frame,
                                        chan::ChannelParams channel,
                                        std::ptrdiff_t offset_symbols) {
  entries_.push_back({std::move(frame), std::move(channel), offset_symbols});
  return *this;
}

Reception CollisionBuilder::build(Rng& rng) const {
  std::ptrdiff_t last_end = 0;
  for (const auto& e : entries_)
    last_end = std::max(
        last_end,
        e.offset + static_cast<std::ptrdiff_t>(
                       chan::kSps * static_cast<double>(e.frame.symbols.size())));

  Reception r;
  r.lead = lead_;
  r.noise_power = noise_power_;
  const std::size_t len =
      lead_ + static_cast<std::size_t>(std::max<std::ptrdiff_t>(last_end, 0)) +
      tail_ + 48;
  r.samples.assign(len, cplx{0.0, 0.0});

  for (const auto& e : entries_) {
    const std::ptrdiff_t start = static_cast<std::ptrdiff_t>(lead_) + e.offset;
    chan::add_signal(r.samples, start, e.frame.symbols, e.channel);
    r.truth.push_back({e.frame, e.channel, start});
  }
  if (noise_power_ > 0.0)
    for (auto& s : r.samples) s += rng.gaussian_c(noise_power_);
  return r;
}

}  // namespace zz::emu
