// Collision synthesis: overlays several transmissions, each through its own
// channel, at arbitrary offsets — the signals the AP "logs" in §5.2.
//
//   y[n] = y_A[n] + y_B[n] + w[n]                      (Chapter 3)
//
// The builder also records ground truth (frames, channels, exact offsets) so
// tests and benches can score decoders; receivers never look at it.
#pragma once

#include <cstddef>
#include <vector>

#include "zz/chan/channel.h"
#include "zz/phy/transmitter.h"

namespace zz::emu {

/// Ground truth for one transmission inside a reception (evaluation only).
struct TxTruth {
  phy::TxFrame frame;
  chan::ChannelParams channel;
  std::ptrdiff_t start = 0;  ///< integer sample index of symbol-0 arrival
};

/// One logged reception at the AP: samples plus (hidden) truth.
struct Reception {
  CVec samples;
  double noise_power = 1.0;
  std::size_t lead = 0;  ///< noise-only samples before the first packet
  std::vector<TxTruth> truth;
};

/// Composes receptions. Offsets are relative to the end of the noise lead-in
/// (i.e. offset 0 = first possible packet position).
class CollisionBuilder {
 public:
  CollisionBuilder& lead(std::size_t samples);
  CollisionBuilder& tail(std::size_t samples);
  CollisionBuilder& noise_power(double p);
  CollisionBuilder& add(phy::TxFrame frame, chan::ChannelParams channel,
                        std::ptrdiff_t offset_symbols);

  /// Render all transmissions plus AWGN.
  Reception build(Rng& rng) const;

 private:
  std::size_t lead_ = 64;
  std::size_t tail_ = 64;
  double noise_power_ = 1.0;
  struct Entry {
    phy::TxFrame frame;
    chan::ChannelParams channel;
    std::ptrdiff_t offset;
  };
  std::vector<Entry> entries_;
};

}  // namespace zz::emu
