#include "zz/chan/channel.h"

#include <algorithm>
#include <cmath>

#include "zz/common/mathutil.h"

namespace zz::chan {
namespace {

// Half-band transmit pulse: Hann-windowed sinc stretched to the symbol
// period (kSps samples). At integer multiples of kSps it is exactly zero —
// zero ISI between symbols at perfect timing — and its spectrum stops at
// half Nyquist, so the receiver can interpolate it at fractional delays with
// negligible error.
//
// The render loop below evaluates the pulse (or its μ-derivative) at a run
// of equally spaced arguments per symbol, so the two trigonometric factors
// are advanced by fixed-angle rotors instead of per-tap sin/cos — the
// baseband synthesis hot path spends its time on multiply-adds only.

struct PulseTrig {
  double sin_u, cos_u;  ///< sin/cos(π·x/kSps)
  double sin_w, cos_w;  ///< sin/cos(π·x/hw)
};

double pulse_value(double x, const PulseTrig& t) {
  const double w = 0.5 * (1.0 + t.cos_w);
  const double u = x / kSps;
  const double s = std::abs(u) < 1e-8 ? 1.0 : t.sin_u / (kPi * u);
  return s * w;
}

double pulse_derivative_value(double x, double hw, const PulseTrig& t) {
  const double w = 0.5 * (1.0 + t.cos_w);
  const double dw = -0.5 * (kPi / hw) * t.sin_w;
  const double u = x / kSps;
  double s, ds;
  if (std::abs(u) < 1e-8) {
    s = 1.0;
    ds = 0.0;
  } else {
    const double pu = kPi * u;
    s = t.sin_u / pu;
    ds = (t.cos_u * pu - t.sin_u) * kPi / (pu * pu) / kSps;
  }
  return ds * w + s * dw;
}

template <typename KernelFn>
void render(CVec& buf, std::ptrdiff_t offset, const CVec& symbols,
            const ChannelParams& p, double scale, std::size_t hw_symbols,
            KernelFn&& kfn) {
  if (symbols.empty()) return;
  const double hw = static_cast<double>(hw_symbols) * kSps;
  CVec isi_tmp;
  const CVec& u = p.isi.is_identity()
                      ? symbols
                      : (isi_tmp = p.isi.apply(symbols), isi_tmp);

  // ZigZag renders sparse chunk images (zeros outside the chunk); find the
  // populated symbol range so the accumulation buffer — and every loop
  // below — spans only the samples those symbols can reach, not the whole
  // packet.
  std::size_t k0 = 0;
  while (k0 < u.size() && std::norm(u[k0]) < 1e-24) ++k0;
  if (k0 == u.size()) return;
  std::size_t k1 = u.size();
  while (std::norm(u[k1 - 1]) < 1e-24) --k1;

  const double span =
      kSps * static_cast<double>(u.size()) + p.mu +
      p.drift * kSps * static_cast<double>(u.size());
  const auto rel_len = static_cast<std::ptrdiff_t>(std::ceil(span + 2.0 * hw)) + 2;
  const double t_first = kSps * static_cast<double>(k0) * (1.0 + p.drift) + p.mu;
  const double t_last =
      kSps * static_cast<double>(k1 - 1) * (1.0 + p.drift) + p.mu;
  const std::ptrdiff_t mbase =
      std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(std::floor(t_first - hw)));
  const std::ptrdiff_t mend = std::min<std::ptrdiff_t>(
      rel_len, static_cast<std::ptrdiff_t>(std::floor(t_last + hw)) + 1);
  if (mend <= mbase) return;

  // Accumulate band-limited contributions in window-relative coordinates,
  // then rotate/scale once per output sample.
  thread_local CVec v;
  v.assign(static_cast<std::size_t>(mend - mbase), cplx{0.0, 0.0});

  const double du = kPi / kSps;   // per-sample phase step of the sinc factor
  const double dwv = kPi / hw;    // per-sample phase step of the Hann factor
  const double cdu = std::cos(du), sdu = std::sin(du);
  const double cdw = std::cos(dwv), sdw = std::sin(dwv);

  for (std::size_t k = k0; k < k1; ++k) {
    if (std::norm(u[k]) < 1e-24) continue;
    const double tk = kSps * static_cast<double>(k) * (1.0 + p.drift) + p.mu;
    const auto lo = std::max<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(std::ceil(tk - hw)), mbase);
    const auto hi = std::min<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(std::floor(tk + hw)), mend - 1);
    if (hi < lo) continue;

    // Rotors for x = m - tk starting at m = lo.
    const double x_lo = static_cast<double>(lo) - tk;
    PulseTrig t;
    t.sin_u = std::sin(kPi * x_lo / kSps);
    t.cos_u = std::cos(kPi * x_lo / kSps);
    t.sin_w = std::sin(kPi * x_lo / hw);
    t.cos_w = std::cos(kPi * x_lo / hw);
    const cplx uk = u[k];
    for (std::ptrdiff_t m = lo; m <= hi; ++m) {
      const double x = static_cast<double>(m) - tk;
      if (std::abs(x) < hw)
        v[static_cast<std::size_t>(m - mbase)] += uk * kfn(x, hw, t);
      const double su = t.sin_u * cdu + t.cos_u * sdu;
      t.cos_u = t.cos_u * cdu - t.sin_u * sdu;
      t.sin_u = su;
      const double sw = t.sin_w * cdw + t.cos_w * sdw;
      t.cos_w = t.cos_w * cdw - t.sin_w * sdw;
      t.sin_w = sw;
    }
  }

  // Carrier rotation e^{j2πδf·m} via a rotor re-anchored periodically so
  // rounding drift stays below the subtraction-fidelity floor.
  const double dphi = kTwoPi * p.freq_offset;
  const cplx rot_step{std::cos(dphi), std::sin(dphi)};
  cplx rot{std::cos(dphi * static_cast<double>(mbase)),
           std::sin(dphi * static_cast<double>(mbase))};
  constexpr std::ptrdiff_t kAnchor = 4096;
  for (std::ptrdiff_t m = mbase; m < mend; ++m) {
    const std::size_t vi = static_cast<std::size_t>(m - mbase);
    if ((m - mbase) % kAnchor == 0 && m != mbase)
      rot = cplx{std::cos(dphi * static_cast<double>(m)),
                 std::sin(dphi * static_cast<double>(m))};
    if (std::norm(v[vi]) >= 1e-24) {
      const std::ptrdiff_t out = offset + m;
      if (out >= 0 && out < static_cast<std::ptrdiff_t>(buf.size()))
        buf[static_cast<std::size_t>(out)] += scale * p.h * v[vi] * rot;
    }
    rot *= rot_step;
  }
}

}  // namespace

double pulse(double x, std::size_t interp_half_width) {
  // Direct evaluation of the pulse the render loop above advances by
  // rotors: pulse_value(x) with sin/cos computed at x.
  const double hw = static_cast<double>(interp_half_width) * kSps;
  if (std::abs(x) >= hw) return 0.0;
  const double w = 0.5 * (1.0 + std::cos(kPi * x / hw));
  const double u = x / kSps;
  const double s = std::abs(u) < 1e-8 ? 1.0 : std::sin(kPi * u) / (kPi * u);
  return s * w;
}

ChannelParams random_channel(Rng& rng, const ImpairmentConfig& cfg) {
  ChannelParams p;
  const double amp = std::sqrt(db_to_lin(cfg.snr_db));
  p.h = cfg.random_phase ? amp * rng.unit_phasor() : cplx{amp, 0.0};
  p.freq_offset = rng.uniform(-cfg.freq_offset_max, cfg.freq_offset_max);
  p.mu = rng.uniform(-cfg.mu_max, cfg.mu_max);
  p.drift = rng.uniform(-cfg.drift_max, cfg.drift_max);
  if (cfg.enable_isi) {
    // One pre-echo and one post-echo with random phases; main tap unity.
    const cplx pre = cfg.isi_strength * 0.5 * rng.unit_phasor();
    const cplx post = cfg.isi_strength * rng.unit_phasor();
    p.isi = sig::Fir({pre, cplx{1.0, 0.0}, post}, 1);
  }
  return p;
}

ChannelParams retransmission_channel(Rng& rng, const ChannelParams& first,
                                     double freq_jitter) {
  ChannelParams p = first;
  p.h = std::abs(first.h) * rng.unit_phasor();  // new carrier phase
  if (freq_jitter > 0.0)
    p.freq_offset += rng.uniform(-freq_jitter, freq_jitter);
  p.mu = rng.uniform(-0.5, 0.5);  // resampled at an unrelated phase
  return p;
}

void add_signal(CVec& buf, std::ptrdiff_t offset, const CVec& symbols,
                const ChannelParams& p, double scale,
                std::size_t interp_half_width) {
  render(buf, offset, symbols, p, scale, interp_half_width,
         [](double x, double, const PulseTrig& t) {
           return pulse_value(x, t);
         });
}

void add_signal_derivative(CVec& buf, std::ptrdiff_t offset,
                           const CVec& symbols, const ChannelParams& p,
                           std::size_t interp_half_width) {
  // d/dμ of pulse(m - tk) with tk = kSps·k(1+drift) + μ is -pulse'(m - tk).
  render(buf, offset, symbols, p, -1.0, interp_half_width,
         [](double x, double hw, const PulseTrig& t) {
           return pulse_derivative_value(x, hw, t);
         });
}

CVec clean_reception(Rng& rng, const CVec& symbols, const ChannelParams& p,
                     std::size_t lead, std::size_t tail, double noise_power) {
  const std::size_t len =
      lead + static_cast<std::size_t>(kSps * static_cast<double>(symbols.size())) +
      tail + 48;
  CVec buf(len, cplx{0.0, 0.0});
  add_signal(buf, static_cast<std::ptrdiff_t>(lead), symbols, p);
  if (noise_power > 0.0)
    for (auto& s : buf) s += rng.gaussian_c(noise_power);
  return buf;
}

}  // namespace zz::chan
