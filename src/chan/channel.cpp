#include "zz/chan/channel.h"

#include <algorithm>
#include <cmath>

#include "zz/common/mathutil.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define ZZ_CHAN_AVX2_DISPATCH 1
#endif

namespace zz::chan {
namespace {

// Half-band transmit pulse: Hann-windowed sinc stretched to the symbol
// period (kSps samples). At integer multiples of kSps it is exactly zero —
// zero ISI between symbols at perfect timing — and its spectrum stops at
// half Nyquist, so the receiver can interpolate it at fractional delays with
// negligible error.
//
// The render loop below evaluates the pulse (or its μ-derivative) at a run
// of equally spaced arguments per symbol, so the two trigonometric factors
// are advanced by fixed-angle rotors instead of per-tap sin/cos — the
// baseband synthesis hot path spends its time on multiply-adds only.
// Symbols are rendered in GROUPS (pairs on baseline SSE2, quads when the
// CPU has AVX2) whose tap runs pack into SIMD lanes: packed IEEE
// add/mul/div are bit-exact per lane and the branches become bitwise
// selects of fully computed lanes, so the samples are bit-for-bit identical
// to the scalar one-symbol-at-a-time loop (kept as the portable fallback
// and tail path). No FMA contraction is used on any path.

struct PulseTrig {
  double sin_u, cos_u;  ///< sin/cos(π·x/kSps)
  double sin_w, cos_w;  ///< sin/cos(π·x/hw)
};

/// One symbol's tap-run geometry and rotor start state.
struct Sym {
  double tk = 0.0;
  std::ptrdiff_t lo = 0;
  std::size_t cnt = 0;
  PulseTrig t{};
};

#if defined(__SSE2__)
inline __m128d blend_pd(__m128d mask, __m128d a, __m128d b) {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}
#endif

struct ValuePulse {
  static double eval(double x, double /*hw*/, const PulseTrig& t) {
    const double w = 0.5 * (1.0 + t.cos_w);
    const double u = x / kSps;
    const double s = std::abs(u) < 1e-8 ? 1.0 : t.sin_u / (kPi * u);
    return s * w;
  }
#if defined(__SSE2__)
  /// Packed pair: lane-exact transcription of eval() above.
  static __m128d eval2(__m128d x, __m128d /*hw*/, __m128d su, __m128d /*cu*/,
                       __m128d /*sw*/, __m128d cw) {
    const __m128d abs_mask =
        _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
    const __m128d w =
        _mm_mul_pd(_mm_set1_pd(0.5), _mm_add_pd(_mm_set1_pd(1.0), cw));
    const __m128d u = _mm_div_pd(x, _mm_set1_pd(kSps));
    const __m128d near =
        _mm_cmplt_pd(_mm_and_pd(u, abs_mask), _mm_set1_pd(1e-8));
    const __m128d sdiv = _mm_div_pd(su, _mm_mul_pd(_mm_set1_pd(kPi), u));
    const __m128d s = blend_pd(near, _mm_set1_pd(1.0), sdiv);
    return _mm_mul_pd(s, w);
  }
#endif
#if defined(ZZ_CHAN_AVX2_DISPATCH)
  /// Packed quad: lane-exact transcription of eval() above.
  __attribute__((target("avx2"))) static __m256d eval4(__m256d x,
                                                       __m256d /*hw*/,
                                                       __m256d su,
                                                       __m256d /*cu*/,
                                                       __m256d /*sw*/,
                                                       __m256d cw) {
    const __m256d abs_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d w = _mm256_mul_pd(_mm256_set1_pd(0.5),
                                    _mm256_add_pd(_mm256_set1_pd(1.0), cw));
    const __m256d u = _mm256_div_pd(x, _mm256_set1_pd(kSps));
    const __m256d near = _mm256_cmp_pd(_mm256_and_pd(u, abs_mask),
                                       _mm256_set1_pd(1e-8), _CMP_LT_OQ);
    const __m256d sdiv =
        _mm256_div_pd(su, _mm256_mul_pd(_mm256_set1_pd(kPi), u));
    const __m256d s = _mm256_blendv_pd(sdiv, _mm256_set1_pd(1.0), near);
    return _mm256_mul_pd(s, w);
  }
#endif
};

struct DerivativePulse {
  static double eval(double x, double hw, const PulseTrig& t) {
    const double w = 0.5 * (1.0 + t.cos_w);
    const double dw = -0.5 * (kPi / hw) * t.sin_w;
    const double u = x / kSps;
    double s, ds;
    if (std::abs(u) < 1e-8) {
      s = 1.0;
      ds = 0.0;
    } else {
      const double pu = kPi * u;
      s = t.sin_u / pu;
      ds = (t.cos_u * pu - t.sin_u) * kPi / (pu * pu) / kSps;
    }
    return ds * w + s * dw;
  }
#if defined(__SSE2__)
  /// Packed pair: lane-exact transcription of eval() above.
  static __m128d eval2(__m128d x, __m128d hw, __m128d su, __m128d cu,
                       __m128d sw, __m128d cw) {
    const __m128d abs_mask =
        _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
    const __m128d vpi = _mm_set1_pd(kPi);
    const __m128d w =
        _mm_mul_pd(_mm_set1_pd(0.5), _mm_add_pd(_mm_set1_pd(1.0), cw));
    // -0.5 * (kPi / hw) * sin_w, with the same association as eval().
    const __m128d dw = _mm_mul_pd(
        _mm_mul_pd(_mm_set1_pd(-0.5), _mm_div_pd(vpi, hw)), sw);
    const __m128d u = _mm_div_pd(x, _mm_set1_pd(kSps));
    const __m128d near =
        _mm_cmplt_pd(_mm_and_pd(u, abs_mask), _mm_set1_pd(1e-8));
    const __m128d pu = _mm_mul_pd(vpi, u);
    const __m128d sdiv = _mm_div_pd(su, pu);
    const __m128d dsdiv = _mm_div_pd(
        _mm_div_pd(_mm_mul_pd(_mm_sub_pd(_mm_mul_pd(cu, pu), su), vpi),
                   _mm_mul_pd(pu, pu)),
        _mm_set1_pd(kSps));
    const __m128d s = blend_pd(near, _mm_set1_pd(1.0), sdiv);
    const __m128d ds = blend_pd(near, _mm_setzero_pd(), dsdiv);
    return _mm_add_pd(_mm_mul_pd(ds, w), _mm_mul_pd(s, dw));
  }
#endif
#if defined(ZZ_CHAN_AVX2_DISPATCH)
  /// Packed quad: lane-exact transcription of eval() above.
  __attribute__((target("avx2"))) static __m256d eval4(__m256d x, __m256d hw,
                                                       __m256d su, __m256d cu,
                                                       __m256d sw,
                                                       __m256d cw) {
    const __m256d abs_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d vpi = _mm256_set1_pd(kPi);
    const __m256d w = _mm256_mul_pd(_mm256_set1_pd(0.5),
                                    _mm256_add_pd(_mm256_set1_pd(1.0), cw));
    const __m256d dw = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_set1_pd(-0.5), _mm256_div_pd(vpi, hw)), sw);
    const __m256d u = _mm256_div_pd(x, _mm256_set1_pd(kSps));
    const __m256d near = _mm256_cmp_pd(_mm256_and_pd(u, abs_mask),
                                       _mm256_set1_pd(1e-8), _CMP_LT_OQ);
    const __m256d pu = _mm256_mul_pd(vpi, u);
    const __m256d sdiv = _mm256_div_pd(su, pu);
    const __m256d dsdiv = _mm256_div_pd(
        _mm256_div_pd(
            _mm256_mul_pd(_mm256_sub_pd(_mm256_mul_pd(cu, pu), su), vpi),
            _mm256_mul_pd(pu, pu)),
        _mm256_set1_pd(kSps));
    const __m256d s = _mm256_blendv_pd(sdiv, _mm256_set1_pd(1.0), near);
    const __m256d ds = _mm256_blendv_pd(dsdiv, _mm256_setzero_pd(), near);
    return _mm256_add_pd(_mm256_mul_pd(ds, w), _mm256_mul_pd(s, dw));
  }
#endif
};

/// One symbol's weights for taps [i0, cnt) — the scalar path, also used to
/// finish off the tap runs the SIMD groups do not cover. Always inlined so
/// that inside the AVX2 quad path it compiles to VEX encodings — an
/// out-of-line legacy-SSE call with dirty ymm uppers pays the AVX→SSE
/// transition penalty on every tail, which measurably dominates the quad
/// path's win.
template <typename Kernel>
__attribute__((always_inline)) inline void weights_tail(
    const Sym& s, PulseTrig t, std::size_t i0, double hw, double cdu,
    double sdu, double cdw, double sdw, double* w) {
  for (std::size_t i = i0; i < s.cnt; ++i) {
    const double x =
        static_cast<double>(s.lo + static_cast<std::ptrdiff_t>(i)) - s.tk;
    w[i] = std::abs(x) < hw ? Kernel::eval(x, hw, t) : 0.0;
    const double su = t.sin_u * cdu + t.cos_u * sdu;
    t.cos_u = t.cos_u * cdu - t.sin_u * sdu;
    t.sin_u = su;
    const double sw = t.sin_w * cdw + t.cos_w * sdw;
    t.cos_w = t.cos_w * cdw - t.sin_w * sdw;
    t.sin_w = sw;
  }
}

/// Weights for a PAIR of symbols over their common tap-run prefix, two
/// independent rotor chains in flight; tails finish the rest.
template <typename Kernel>
void weights_pair(const Sym& s0, const Sym& s1, double hw, double cdu,
                  double sdu, double cdw, double sdw, double* w0, double* w1) {
#if defined(__SSE2__)
  const std::size_t both = std::min(s0.cnt, s1.cnt);
  PulseTrig ta = s0.t, tb = s1.t;
  {
    const __m128d vcdu = _mm_set1_pd(cdu), vsdu = _mm_set1_pd(sdu);
    const __m128d vcdw = _mm_set1_pd(cdw), vsdw = _mm_set1_pd(sdw);
    const __m128d vhw = _mm_set1_pd(hw);
    const __m128d vabs =
        _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
    const __m128d vlo =
        _mm_set_pd(static_cast<double>(s1.lo), static_cast<double>(s0.lo));
    const __m128d vtk = _mm_set_pd(s1.tk, s0.tk);
    __m128d su = _mm_set_pd(tb.sin_u, ta.sin_u);
    __m128d cu = _mm_set_pd(tb.cos_u, ta.cos_u);
    __m128d sw = _mm_set_pd(tb.sin_w, ta.sin_w);
    __m128d cw = _mm_set_pd(tb.cos_w, ta.cos_w);
    for (std::size_t i = 0; i < both; ++i) {
      // x = double(lo + i) - tk; double(lo) + double(i) is exact, so the
      // lane value equals the scalar expression.
      const __m128d vx = _mm_sub_pd(
          _mm_add_pd(vlo, _mm_set1_pd(static_cast<double>(i))), vtk);
      const __m128d val = Kernel::eval2(vx, vhw, su, cu, sw, cw);
      // wgt = |x| < hw ? val : 0.0 (bitwise select).
      const __m128d take = _mm_cmplt_pd(_mm_and_pd(vx, vabs), vhw);
      const __m128d w = _mm_and_pd(take, val);
      _mm_storel_pd(&w0[i], w);
      _mm_storeh_pd(&w1[i], w);
      // Advance both rotor chains.
      const __m128d su2 =
          _mm_add_pd(_mm_mul_pd(su, vcdu), _mm_mul_pd(cu, vsdu));
      cu = _mm_sub_pd(_mm_mul_pd(cu, vcdu), _mm_mul_pd(su, vsdu));
      su = su2;
      const __m128d sw2 =
          _mm_add_pd(_mm_mul_pd(sw, vcdw), _mm_mul_pd(cw, vsdw));
      cw = _mm_sub_pd(_mm_mul_pd(cw, vcdw), _mm_mul_pd(sw, vsdw));
      sw = sw2;
    }
    // Hand the advanced states to the scalar tails.
    _mm_storel_pd(&ta.sin_u, su);
    _mm_storeh_pd(&tb.sin_u, su);
    _mm_storel_pd(&ta.cos_u, cu);
    _mm_storeh_pd(&tb.cos_u, cu);
    _mm_storel_pd(&ta.sin_w, sw);
    _mm_storeh_pd(&tb.sin_w, sw);
    _mm_storel_pd(&ta.cos_w, cw);
    _mm_storeh_pd(&tb.cos_w, cw);
  }
  weights_tail<Kernel>(s0, ta, both, hw, cdu, sdu, cdw, sdw, w0);
  weights_tail<Kernel>(s1, tb, both, hw, cdu, sdu, cdw, sdw, w1);
#else
  // Without SSE2 there is no lane packing to exploit: each symbol's whole
  // tap run is exactly the scalar loop (one rotor-recurrence definition,
  // shared with the SIMD tails, keeps all routes bit-identical).
  weights_tail<Kernel>(s0, s0.t, 0, hw, cdu, sdu, cdw, sdw, w0);
  weights_tail<Kernel>(s1, s1.t, 0, hw, cdu, sdu, cdw, sdw, w1);
#endif
}

#if defined(ZZ_CHAN_AVX2_DISPATCH)
/// Weights for a QUAD of symbols over their common tap-run prefix — four
/// independent rotor chains in the four AVX lanes.
template <typename Kernel>
__attribute__((target("avx2"))) void weights_quad(const Sym* s, double hw,
                                                  double cdu, double sdu,
                                                  double cdw, double sdw,
                                                  double* const* w) {
  std::size_t common = s[0].cnt;
  for (int j = 1; j < 4; ++j) common = std::min(common, s[j].cnt);

  const __m256d vcdu = _mm256_set1_pd(cdu), vsdu = _mm256_set1_pd(sdu);
  const __m256d vcdw = _mm256_set1_pd(cdw), vsdw = _mm256_set1_pd(sdw);
  const __m256d vhw = _mm256_set1_pd(hw);
  const __m256d vabs =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d vlo = _mm256_set_pd(
      static_cast<double>(s[3].lo), static_cast<double>(s[2].lo),
      static_cast<double>(s[1].lo), static_cast<double>(s[0].lo));
  const __m256d vtk = _mm256_set_pd(s[3].tk, s[2].tk, s[1].tk, s[0].tk);
  __m256d su = _mm256_set_pd(s[3].t.sin_u, s[2].t.sin_u, s[1].t.sin_u,
                             s[0].t.sin_u);
  __m256d cu = _mm256_set_pd(s[3].t.cos_u, s[2].t.cos_u, s[1].t.cos_u,
                             s[0].t.cos_u);
  __m256d sw = _mm256_set_pd(s[3].t.sin_w, s[2].t.sin_w, s[1].t.sin_w,
                             s[0].t.sin_w);
  __m256d cw = _mm256_set_pd(s[3].t.cos_w, s[2].t.cos_w, s[1].t.cos_w,
                             s[0].t.cos_w);
  for (std::size_t i = 0; i < common; ++i) {
    const __m256d vx = _mm256_sub_pd(
        _mm256_add_pd(vlo, _mm256_set1_pd(static_cast<double>(i))), vtk);
    const __m256d val = Kernel::eval4(vx, vhw, su, cu, sw, cw);
    const __m256d take =
        _mm256_cmp_pd(_mm256_and_pd(vx, vabs), vhw, _CMP_LT_OQ);
    const __m256d wv = _mm256_and_pd(take, val);
    alignas(32) double wl[4];
    _mm256_store_pd(wl, wv);
    w[0][i] = wl[0];
    w[1][i] = wl[1];
    w[2][i] = wl[2];
    w[3][i] = wl[3];
    const __m256d su2 =
        _mm256_add_pd(_mm256_mul_pd(su, vcdu), _mm256_mul_pd(cu, vsdu));
    cu = _mm256_sub_pd(_mm256_mul_pd(cu, vcdu), _mm256_mul_pd(su, vsdu));
    su = su2;
    const __m256d sw2 =
        _mm256_add_pd(_mm256_mul_pd(sw, vcdw), _mm256_mul_pd(cw, vsdw));
    cw = _mm256_sub_pd(_mm256_mul_pd(cw, vcdw), _mm256_mul_pd(sw, vsdw));
    sw = sw2;
  }
  // Hand the advanced states to the scalar tails.
  alignas(32) double lsu[4], lcu[4], lsw[4], lcw[4];
  _mm256_store_pd(lsu, su);
  _mm256_store_pd(lcu, cu);
  _mm256_store_pd(lsw, sw);
  _mm256_store_pd(lcw, cw);
  for (int j = 0; j < 4; ++j) {
    PulseTrig t{lsu[j], lcu[j], lsw[j], lcw[j]};
    weights_tail<Kernel>(s[j], t, common, hw, cdu, sdu, cdw, sdw, w[j]);
  }
}

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}
#endif

/// 0 = CPU dispatch; 1/2/4 = forced cap (see set_render_group_width_for_test).
int g_render_group_width_override = 0;

template <typename Kernel>
void render(CVec& buf, std::ptrdiff_t offset, const CVec& symbols,
            const ChannelParams& p, double scale, std::size_t hw_symbols) {
  if (symbols.empty()) return;
  const double hw = static_cast<double>(hw_symbols) * kSps;
  CVec isi_tmp;
  const CVec& u = p.isi.is_identity()
                      ? symbols
                      : (isi_tmp = p.isi.apply(symbols), isi_tmp);

  // ZigZag renders sparse chunk images (zeros outside the chunk); find the
  // populated symbol range so the accumulation buffer — and every loop
  // below — spans only the samples those symbols can reach, not the whole
  // packet.
  std::size_t k0 = 0;
  while (k0 < u.size() && std::norm(u[k0]) < 1e-24) ++k0;
  if (k0 == u.size()) return;
  std::size_t k1 = u.size();
  while (std::norm(u[k1 - 1]) < 1e-24) --k1;

  const double span =
      kSps * static_cast<double>(u.size()) + p.mu +
      p.drift * kSps * static_cast<double>(u.size());
  const auto rel_len = static_cast<std::ptrdiff_t>(std::ceil(span + 2.0 * hw)) + 2;
  const double t_first = kSps * static_cast<double>(k0) * (1.0 + p.drift) + p.mu;
  const double t_last =
      kSps * static_cast<double>(k1 - 1) * (1.0 + p.drift) + p.mu;
  const std::ptrdiff_t mbase =
      std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(std::floor(t_first - hw)));
  const std::ptrdiff_t mend = std::min<std::ptrdiff_t>(
      rel_len, static_cast<std::ptrdiff_t>(std::floor(t_last + hw)) + 1);
  if (mend <= mbase) return;

  // Accumulate band-limited contributions in window-relative coordinates,
  // then rotate/scale once per output sample.
  thread_local CVec v;
  v.assign(static_cast<std::size_t>(mend - mbase), cplx{0.0, 0.0});

  const double du = kPi / kSps;   // per-sample phase step of the sinc factor
  const double dwv = kPi / hw;    // per-sample phase step of the Hann factor
  const double cdu = std::cos(du), sdu = std::sin(du);
  const double cdw = std::cos(dwv), sdw = std::sin(dwv);

  // Weight lanes for one group of symbols: the (real) kernel weights are
  // computed first, then accumulated into the (complex) buffer in symbol
  // order — the same arithmetic in the same order as a fused loop.
  const auto max_taps = static_cast<std::size_t>(2.0 * hw) + 2;
  thread_local std::vector<double> wgt_scratch;
  if (wgt_scratch.size() < 4 * max_taps) wgt_scratch.resize(4 * max_taps);
  double* lanes[4] = {wgt_scratch.data(), wgt_scratch.data() + max_taps,
                      wgt_scratch.data() + 2 * max_taps,
                      wgt_scratch.data() + 3 * max_taps};

  // Per-symbol window geometry + rotor start state; false for a symbol with
  // no taps inside the accumulation window.
  const auto setup = [&](std::size_t k, Sym& s) {
    s.tk = kSps * static_cast<double>(k) * (1.0 + p.drift) + p.mu;
    s.lo = std::max<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(std::ceil(s.tk - hw)), mbase);
    const auto hi = std::min<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(std::floor(s.tk + hw)), mend - 1);
    if (hi < s.lo) return false;
    s.cnt = static_cast<std::size_t>(hi - s.lo + 1);
    // Rotors for x = m - tk starting at m = lo.
    const double x_lo = static_cast<double>(s.lo) - s.tk;
    s.t.sin_u = std::sin(kPi * x_lo / kSps);
    s.t.cos_u = std::cos(kPi * x_lo / kSps);
    s.t.sin_w = std::sin(kPi * x_lo / hw);
    s.t.cos_w = std::cos(kPi * x_lo / hw);
    return true;
  };
  const auto accumulate = [&](const Sym& s, const cplx uk, const double* w) {
    cplx* vk = v.data() + static_cast<std::size_t>(s.lo - mbase);
    for (std::size_t i = 0; i < s.cnt; ++i) vk[i] += uk * w[i];
  };

#if defined(ZZ_CHAN_AVX2_DISPATCH)
  std::size_t group_width = cpu_has_avx2() ? 4 : 2;
#else
  std::size_t group_width = 2;
#endif
  if (g_render_group_width_override > 0)
    group_width = std::min<std::size_t>(
        group_width, static_cast<std::size_t>(g_render_group_width_override));

  Sym syms[4];
  cplx uks[4];
  std::size_t k = k0;
  while (k < k1) {
    // Gather the next group of contributing symbols (ascending k).
    std::size_t ns = 0;
    while (k < k1 && ns < group_width) {
      if (std::norm(u[k]) >= 1e-24 && setup(k, syms[ns])) uks[ns++] = u[k];
      ++k;
    }
    if (ns == 0) break;

#if defined(ZZ_CHAN_AVX2_DISPATCH)
    if (ns == 4) {
      weights_quad<Kernel>(syms, hw, cdu, sdu, cdw, sdw, lanes);
    } else
#endif
    if (ns >= 2) {
      weights_pair<Kernel>(syms[0], syms[1], hw, cdu, sdu, cdw, sdw,
                           lanes[0], lanes[1]);
      if (ns == 3)
        weights_tail<Kernel>(syms[2], syms[2].t, 0, hw, cdu, sdu, cdw, sdw,
                             lanes[2]);
    } else {
      weights_tail<Kernel>(syms[0], syms[0].t, 0, hw, cdu, sdu, cdw, sdw,
                           lanes[0]);
    }
    for (std::size_t j = 0; j < ns; ++j) accumulate(syms[j], uks[j], lanes[j]);
  }

  // Carrier rotation e^{j2πδf·m} via a rotor re-anchored periodically so
  // rounding drift stays below the subtraction-fidelity floor.
  const double dphi = kTwoPi * p.freq_offset;
  const cplx rot_step{std::cos(dphi), std::sin(dphi)};
  cplx rot{std::cos(dphi * static_cast<double>(mbase)),
           std::sin(dphi * static_cast<double>(mbase))};
  constexpr std::ptrdiff_t kAnchor = 4096;
  for (std::ptrdiff_t m = mbase; m < mend; ++m) {
    const std::size_t vi = static_cast<std::size_t>(m - mbase);
    if ((m - mbase) % kAnchor == 0 && m != mbase)
      rot = cplx{std::cos(dphi * static_cast<double>(m)),
                 std::sin(dphi * static_cast<double>(m))};
    if (std::norm(v[vi]) >= 1e-24) {
      const std::ptrdiff_t out = offset + m;
      if (out >= 0 && out < static_cast<std::ptrdiff_t>(buf.size()))
        buf[static_cast<std::size_t>(out)] += scale * p.h * v[vi] * rot;
    }
    rot *= rot_step;
  }
}

}  // namespace

void set_render_group_width_for_test(int width) {
  g_render_group_width_override = width;
}

double pulse(double x, std::size_t interp_half_width) {
  // Direct evaluation of the pulse the render loop above advances by
  // rotors: ValuePulse::eval with sin/cos computed at x.
  const double hw = static_cast<double>(interp_half_width) * kSps;
  if (std::abs(x) >= hw) return 0.0;
  const double w = 0.5 * (1.0 + std::cos(kPi * x / hw));
  const double u = x / kSps;
  const double s = std::abs(u) < 1e-8 ? 1.0 : std::sin(kPi * u) / (kPi * u);
  return s * w;
}

ChannelParams random_channel(Rng& rng, const ImpairmentConfig& cfg) {
  ChannelParams p;
  const double amp = std::sqrt(db_to_lin(cfg.snr_db));
  p.h = cfg.random_phase ? amp * rng.unit_phasor() : cplx{amp, 0.0};
  p.freq_offset = rng.uniform(-cfg.freq_offset_max, cfg.freq_offset_max);
  p.mu = rng.uniform(-cfg.mu_max, cfg.mu_max);
  p.drift = rng.uniform(-cfg.drift_max, cfg.drift_max);
  if (cfg.enable_isi) {
    // One pre-echo and one post-echo with random phases; main tap unity.
    const cplx pre = cfg.isi_strength * 0.5 * rng.unit_phasor();
    const cplx post = cfg.isi_strength * rng.unit_phasor();
    p.isi = sig::Fir({pre, cplx{1.0, 0.0}, post}, 1);
  }
  return p;
}

ChannelParams retransmission_channel(Rng& rng, const ChannelParams& first,
                                     double freq_jitter) {
  ChannelParams p = first;
  p.h = std::abs(first.h) * rng.unit_phasor();  // new carrier phase
  if (freq_jitter > 0.0)
    p.freq_offset += rng.uniform(-freq_jitter, freq_jitter);
  p.mu = rng.uniform(-0.5, 0.5);  // resampled at an unrelated phase
  return p;
}

void add_signal(CVec& buf, std::ptrdiff_t offset, const CVec& symbols,
                const ChannelParams& p, double scale,
                std::size_t interp_half_width) {
  render<ValuePulse>(buf, offset, symbols, p, scale, interp_half_width);
}

void add_signal_derivative(CVec& buf, std::ptrdiff_t offset,
                           const CVec& symbols, const ChannelParams& p,
                           std::size_t interp_half_width) {
  // d/dμ of pulse(m - tk) with tk = kSps·k(1+drift) + μ is -pulse'(m - tk).
  render<DerivativePulse>(buf, offset, symbols, p, -1.0, interp_half_width);
}

CVec clean_reception(Rng& rng, const CVec& symbols, const ChannelParams& p,
                     std::size_t lead, std::size_t tail, double noise_power) {
  const std::size_t len =
      lead + static_cast<std::size_t>(kSps * static_cast<double>(symbols.size())) +
      tail + 48;
  CVec buf(len, cplx{0.0, 0.0});
  add_signal(buf, static_cast<std::ptrdiff_t>(lead), symbols, p);
  if (noise_power > 0.0)
    for (auto& s : buf) s += rng.gaussian_c(noise_power);
  return buf;
}

}  // namespace zz::chan
