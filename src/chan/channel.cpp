#include "zz/chan/channel.h"

#include <cmath>

#include "zz/common/mathutil.h"

namespace zz::chan {
namespace {

// Half-band transmit pulse: Hann-windowed sinc stretched to the symbol
// period (kSps samples). At integer multiples of kSps it is exactly zero —
// zero ISI between symbols at perfect timing — and its spectrum stops at
// half Nyquist, so the receiver can interpolate it at fractional delays with
// negligible error.
double pulse(double x, double hw_samples) {
  if (std::abs(x) >= hw_samples) return 0.0;
  return sinc(x / kSps) * 0.5 * (1.0 + std::cos(kPi * x / hw_samples));
}

// d/dx of the pulse (analytic), for timing-error sensitivity.
double pulse_derivative(double x, double hw_samples) {
  if (std::abs(x) >= hw_samples) return 0.0;
  const double w = 0.5 * (1.0 + std::cos(kPi * x / hw_samples));
  const double dw = -0.5 * (kPi / hw_samples) * std::sin(kPi * x / hw_samples);
  const double u = x / kSps;
  double s, ds;
  if (std::abs(u) < 1e-8) {
    s = 1.0;
    ds = 0.0;
  } else {
    const double pu = kPi * u;
    s = std::sin(pu) / pu;
    ds = (std::cos(pu) * pu - std::sin(pu)) * kPi / (pu * pu) / kSps;
  }
  return ds * w + s * dw;
}

template <typename KernelFn>
void render(CVec& buf, std::ptrdiff_t offset, const CVec& symbols,
            const ChannelParams& p, double scale, std::size_t hw_symbols,
            KernelFn&& kfn) {
  if (symbols.empty()) return;
  const double hw = static_cast<double>(hw_symbols) * kSps;
  const CVec u = p.isi.is_identity() ? symbols : p.isi.apply(symbols);

  // Accumulate band-limited contributions in packet-relative coordinates,
  // then rotate/scale once per output sample.
  const double span =
      kSps * static_cast<double>(u.size()) + p.mu +
      p.drift * kSps * static_cast<double>(u.size());
  const auto rel_len = static_cast<std::size_t>(std::ceil(span + 2.0 * hw)) + 2;
  CVec v(rel_len, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < u.size(); ++k) {
    // ZigZag renders sparse chunk images (zeros outside the chunk); skip
    // silent symbols instead of spreading zeros through the kernel.
    if (std::norm(u[k]) < 1e-24) continue;
    const double tk = kSps * static_cast<double>(k) * (1.0 + p.drift) + p.mu;
    const auto lo = static_cast<std::ptrdiff_t>(std::ceil(tk - hw));
    const auto hi = static_cast<std::ptrdiff_t>(std::floor(tk + hw));
    for (std::ptrdiff_t m = std::max<std::ptrdiff_t>(lo, 0); m <= hi; ++m) {
      if (m >= static_cast<std::ptrdiff_t>(rel_len)) break;
      v[static_cast<std::size_t>(m)] += u[k] * kfn(static_cast<double>(m) - tk, hw);
    }
  }

  for (std::size_t m = 0; m < rel_len; ++m) {
    if (std::norm(v[m]) < 1e-24) continue;
    const std::ptrdiff_t out = offset + static_cast<std::ptrdiff_t>(m);
    if (out < 0 || out >= static_cast<std::ptrdiff_t>(buf.size())) continue;
    const double phi = kTwoPi * p.freq_offset * static_cast<double>(m);
    buf[static_cast<std::size_t>(out)] +=
        scale * p.h * v[m] * cplx{std::cos(phi), std::sin(phi)};
  }
}

}  // namespace

ChannelParams random_channel(Rng& rng, const ImpairmentConfig& cfg) {
  ChannelParams p;
  const double amp = std::sqrt(db_to_lin(cfg.snr_db));
  p.h = cfg.random_phase ? amp * rng.unit_phasor() : cplx{amp, 0.0};
  p.freq_offset = rng.uniform(-cfg.freq_offset_max, cfg.freq_offset_max);
  p.mu = rng.uniform(-cfg.mu_max, cfg.mu_max);
  p.drift = rng.uniform(-cfg.drift_max, cfg.drift_max);
  if (cfg.enable_isi) {
    // One pre-echo and one post-echo with random phases; main tap unity.
    const cplx pre = cfg.isi_strength * 0.5 * rng.unit_phasor();
    const cplx post = cfg.isi_strength * rng.unit_phasor();
    p.isi = sig::Fir({pre, cplx{1.0, 0.0}, post}, 1);
  }
  return p;
}

ChannelParams retransmission_channel(Rng& rng, const ChannelParams& first,
                                     double freq_jitter) {
  ChannelParams p = first;
  p.h = std::abs(first.h) * rng.unit_phasor();  // new carrier phase
  if (freq_jitter > 0.0)
    p.freq_offset += rng.uniform(-freq_jitter, freq_jitter);
  p.mu = rng.uniform(-0.5, 0.5);  // resampled at an unrelated phase
  return p;
}

void add_signal(CVec& buf, std::ptrdiff_t offset, const CVec& symbols,
                const ChannelParams& p, double scale,
                std::size_t interp_half_width) {
  render(buf, offset, symbols, p, scale, interp_half_width,
         [](double x, double hw) { return pulse(x, hw); });
}

void add_signal_derivative(CVec& buf, std::ptrdiff_t offset,
                           const CVec& symbols, const ChannelParams& p,
                           std::size_t interp_half_width) {
  // d/dμ of pulse(m - tk) with tk = kSps·k(1+drift) + μ is -pulse'(m - tk).
  render(buf, offset, symbols, p, -1.0, interp_half_width,
         [](double x, double hw) { return pulse_derivative(x, hw); });
}

CVec clean_reception(Rng& rng, const CVec& symbols, const ChannelParams& p,
                     std::size_t lead, std::size_t tail, double noise_power) {
  const std::size_t len =
      lead + static_cast<std::size_t>(kSps * static_cast<double>(symbols.size())) +
      tail + 48;
  CVec buf(len, cplx{0.0, 0.0});
  add_signal(buf, static_cast<std::ptrdiff_t>(lead), symbols, p);
  if (noise_power > 0.0)
    for (auto& s : buf) s += rng.gaussian_c(noise_power);
  return buf;
}

}  // namespace zz::chan
