// The wireless channel model — the paper's Chapter 3 made executable.
//
//   y[n] = H · (h_isi * x̃)[n] · e^{j2π n δf T} + w[n]          (Eq. 3.1 + §3.1)
//
// where x̃ is the transmitted symbol stream resampled at the receiver's
// sampling phase (fractional offset μ plus clock drift, §3.1.2), h_isi is a
// short symbol-spaced inter-symbol-interference filter (§3.1.3), H = h·e^{jγ}
// is the quasi-static flat-fading gain and w is AWGN.
//
// THE key property of this module: `add_signal()` is the one and only
// definition of how symbols turn into received samples. The simulator calls
// it with true parameters; ZigZag's reconstructor calls it with *estimated*
// parameters when it re-encodes a decoded chunk (§4.2.3b). Subtraction
// fidelity is then limited by estimation error — exactly as on real radios —
// and never by model mismatch.
#pragma once

#include <cstddef>

#include "zz/common/rng.h"
#include "zz/common/types.h"
#include "zz/signal/fir.h"
#include "zz/signal/interp.h"

namespace zz::chan {

/// Samples per symbol. The paper's GNU Radio prototype runs 2 samples per
/// symbol (§5.1c); so do we. The on-air pulse is then half-band, which is
/// what makes fractional-delay reconstruction (§4.2.3b) accurate with the
/// short windowed-sinc kernels the paper prescribes.
inline constexpr double kSps = 2.0;

/// Per-link channel parameters (true for the simulator, estimated for the
/// receiver — same structure on both sides).
struct ChannelParams {
  cplx h{1.0, 0.0};        ///< complex gain (amplitude + phase at packet start)
  double freq_offset = 0.0;  ///< carrier frequency offset, cycles per sample
  double mu = 0.0;           ///< fractional sampling offset, samples
  double drift = 0.0;        ///< sampling clock drift, samples per sample
  sig::Fir isi;              ///< symbol-spaced ISI filter (identity if clean)
};

/// Impairment ranges used when drawing random channels.
struct ImpairmentConfig {
  double snr_db = 10.0;           ///< per-sender SNR at the AP (noise power = 1)
  double freq_offset_max = 5e-3;  ///< |δf·T| upper bound (post coarse RF correction)
  double mu_max = 0.5;            ///< |fractional sampling offset| bound
  double drift_max = 2e-6;        ///< |clock drift| bound, samples/sample
  bool enable_isi = true;
  double isi_strength = 0.15;     ///< relative magnitude of the echo taps
  bool random_phase = true;       ///< random carrier phase in H
};

/// Draw a random channel realization. |h| = sqrt(SNR) since the AWGN added
/// by `CollisionBuilder` has unit power.
ChannelParams random_channel(Rng& rng, const ImpairmentConfig& cfg);

/// A retransmission of the same packet moments later: same |h|, same ISI,
/// same δf up to oscillator jitter, new carrier phase, slightly moved μ.
ChannelParams retransmission_channel(Rng& rng, const ChannelParams& first,
                                     double freq_jitter = 0.0);

/// The half-band transmit pulse at offset `x` samples from a symbol centre:
/// a Hann-windowed sinc with window half-width interp_half_width·kSps, zero
/// at every other symbol centre. This is THE pulse `add_signal` renders
/// with (its hot loop evaluates the same function via fixed-angle rotors);
/// receivers that need a pointwise coefficient — e.g. the algebraic-MP
/// elimination — must use this definition, never a private copy.
double pulse(double x, std::size_t interp_half_width = 8);

/// Render `symbols` through `p` and accumulate into `buf`, with the packet's
/// symbol k arriving at continuous buffer time `offset + kSps·k + p.mu
/// (1+drift)`. `offset` is in samples. `scale` multiplies the contribution
/// (scale = -1 subtracts — ZigZag's cancellation step). Contributions that
/// fall outside `buf` are dropped.
///
/// `interp_half_width` is the windowed-sinc pulse half width in symbols
/// (§4.2.3b: "about 8 symbols in the neighborhood").
void add_signal(CVec& buf, std::ptrdiff_t offset, const CVec& symbols,
                const ChannelParams& p, double scale = 1.0,
                std::size_t interp_half_width = 8);

/// Same as add_signal but renders the time-derivative of the signal with
/// respect to the sampling offset μ. Used by the receiver's timing tracker:
/// a residual sampling error δμ shows up as δμ · d(image)/dμ.
void add_signal_derivative(CVec& buf, std::ptrdiff_t offset,
                           const CVec& symbols, const ChannelParams& p,
                           std::size_t interp_half_width = 8);

/// Test hook: cap the render's symbol-group width (4 = CPU-dispatched AVX2
/// quads where available, 2 = SSE2 pairs, 1 = scalar tap loop; 0 restores
/// CPU dispatch). All widths are bit-identical by contract — the drift
/// gates run on whatever the CI machine dispatches, so tests pin the
/// narrower paths against the widest one through this knob.
void set_render_group_width_for_test(int width);

/// Convenience: render a whole clean reception (signal + AWGN of unit power
/// scaled by `noise_power`), with `lead` noise-only samples before the
/// packet and `tail` after.
CVec clean_reception(Rng& rng, const CVec& symbols, const ChannelParams& p,
                     std::size_t lead = 64, std::size_t tail = 64,
                     double noise_power = 1.0);

}  // namespace zz::chan
