#include "zz/farm/farm.h"

#include <cmath>
#include <stdexcept>

#include "zz/common/alloc_hook.h"
#include "zz/common/check.h"
#include "zz/common/once_memo.h"
#include "zz/common/thread_pool.h"
#include "zz/signal/scratch.h"
#include "zz/testbed/episode.h"
#include "zz/zigzag/decoder.h"

namespace zz::farm {
namespace {

/// POD per-episode aggregate — the unit the soak memo stores and the merge
/// accumulates. Fixed arrays only: a memo hit is an index lookup plus this
/// struct's copy, with no heap traffic.
struct EpisodeAgg {
  std::uint64_t rounds = 0;
  std::uint64_t concurrent_rounds = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions_resolved = 0;
  std::uint64_t stream_samples = 0;
  std::uint64_t stream_windows = 0;
  std::uint64_t stream_deliveries = 0;
  std::uint64_t latency_sum = 0;
  std::array<std::uint64_t, kMaxCellSenders> per_flow{};
};

EpisodeAgg aggregate_stats(const testbed::ScenarioStats& s) {
  EpisodeAgg a;
  a.rounds = s.airtime_rounds;
  a.concurrent_rounds = s.concurrent_rounds;
  a.stream_samples = s.stream_samples;
  a.stream_windows = s.stream_windows;
  a.stream_deliveries = s.stream_deliveries;
  // ScenarioStats folds its integer tallies into rates; recover the exact
  // integers (the divisions were by the multiplier, so llround is exact).
  a.latency_sum = static_cast<std::uint64_t>(std::llround(
      s.mean_decode_latency * static_cast<double>(s.stream_deliveries)));
  ZZ_CHECK_LE(s.flows.size(), kMaxCellSenders);
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    a.per_flow[i] = s.flows[i].delivered;
    a.delivered += s.flows[i].delivered;
    a.collisions_resolved += static_cast<std::uint64_t>(std::llround(
        s.concurrent_throughput[i] * static_cast<double>(s.concurrent_rounds)));
  }
  return a;
}

void accumulate(CellResult& c, const EpisodeAgg& a) {
  ++c.episodes;
  c.rounds += a.rounds;
  c.concurrent_rounds += a.concurrent_rounds;
  c.delivered += a.delivered;
  c.collisions_resolved += a.collisions_resolved;
  c.stream_samples += a.stream_samples;
  c.stream_windows += a.stream_windows;
  c.stream_deliveries += a.stream_deliveries;
  c.latency_sum += a.latency_sum;
  for (std::size_t i = 0; i < kMaxCellSenders; ++i)
    c.per_flow_delivered[i] += a.per_flow[i];
}

/// The episode-seed discipline, shared verbatim by ApFarm and run_cell so
/// the scale-out and the serial reference draw identical streams.
std::uint64_t episode_seed(std::uint64_t farm_seed, std::size_t cell,
                           std::size_t episode, std::size_t distinct_seeds) {
  const std::size_t e = distinct_seeds ? episode % distinct_seeds : episode;
  return shard_seed(shard_seed(farm_seed, cell), e);
}

EpisodeAgg play_episode(const CellSpec& spec, std::uint64_t seed,
                        const testbed::EpisodeResources& res) {
  Rng rng(seed);
  testbed::EpisodeStream es(spec.scenario, rng, res);
  while (!es.done()) es.step(rng);
  return aggregate_stats(es.finish());
}

void validate_cell(const CellSpec& cell) {
  const auto& sc = cell.scenario;
  if (sc.senders.empty())
    throw std::invalid_argument("ApFarm: cell has no senders");
  if (sc.senders.size() > kMaxCellSenders)
    throw std::invalid_argument("ApFarm: cell exceeds kMaxCellSenders");
  if (sc.mode != testbed::CollectMode::Live &&
      sc.mode != testbed::CollectMode::Streaming)
    throw std::invalid_argument(
        "ApFarm: cells are episode streams (Live/Streaming collection)");
  if (sc.receiver == testbed::ReceiverKind::AlgebraicMP)
    throw std::invalid_argument(
        "ApFarm: AlgebraicMP needs LoggedJoint collection");
  if (sc.mode == testbed::CollectMode::Streaming &&
      sc.receiver != testbed::ReceiverKind::ZigZag)
    throw std::invalid_argument(
        "ApFarm: Streaming collection is ZigZag-only");
}

}  // namespace

CellResult run_cell(const CellSpec& cell, std::size_t cell_index,
                    std::uint64_t seed, std::size_t episodes,
                    std::size_t distinct_seeds) {
  validate_cell(cell);
  CellResult out;
  out.cell = cell_index;
  for (std::size_t e = 0; e < episodes; ++e)
    accumulate(out, play_episode(cell,
                                 episode_seed(seed, cell_index, e,
                                              distinct_seeds),
                                 {}));
  return out;
}

struct ApFarm::Impl {
  std::vector<CellSpec> cells;
  FarmOptions opt;
  ThreadPool pool;
  zigzag::DecodeCacheShards shards;
  std::vector<sig::ScratchArena> arenas;
  std::vector<EpisodeAgg> memo;
  /// Memo slot lifecycle: Absent → (one CAS winner) Building → Ready
  /// (zz::PublishOnceState — the protocol itself lives in
  /// zz/common/once_memo.h where the memo model suite explores it). Only
  /// the winner writes the entry; readers acquire-load Ready before
  /// touching it, so entries are immutable-once-published and race-free.
  /// A loser that raced the winner computes its own (identical) aggregate
  /// locally and publishes nothing — deterministic either way.
  std::vector<PublishOnceState> memo_state;

  Impl(std::vector<CellSpec> cs, const FarmOptions& o)
      : cells(std::move(cs)), opt(o), pool(opt.workers),
        shards(pool.size()), arenas(pool.size()) {
    if (cells.empty()) throw std::invalid_argument("ApFarm: no cells");
    for (const auto& c : cells) validate_cell(c);
    if (opt.distinct_seeds && opt.memoize_episodes) {
      memo.resize(cells.size() * opt.distinct_seeds);
      memo_state = std::vector<PublishOnceState>(memo.size());
    }
  }

  /// Per-episode outcome, filled on the worker and merged serially after
  /// the pool barrier — per-episode slots rather than shared accumulators
  /// so no cross-thread accumulation order can exist at all.
  struct Slot {
    EpisodeAgg agg;
    std::uint64_t allocs = 0;
    unsigned char memo_hit = 0;
    unsigned char memo_miss = 0;
  };

  void process(std::size_t cell, std::size_t e, std::size_t worker,
               Slot& slot) {
    AllocTally tally;
    testbed::EpisodeResources res;
    if (opt.use_decode_cache) res.cache = &shards.shard(worker);
    if (opt.reuse_arenas) res.arena = &arenas[worker];
    const std::uint64_t seed =
        episode_seed(opt.seed, cell, e, opt.distinct_seeds);
    if (memo.empty()) {
      slot.agg = play_episode(cells[cell], seed, res);
      slot.memo_miss = 1;
    } else {
      const std::size_t k =
          cell * opt.distinct_seeds + e % opt.distinct_seeds;
      if (memo_state[k].ready_acquire()) {
        slot.agg = memo[k];
        slot.memo_hit = 1;
      } else {
        slot.agg = play_episode(cells[cell], seed, res);
        slot.memo_miss = 1;
        if (memo_state[k].try_begin_publish()) {
          memo[k] = slot.agg;
          memo_state[k].publish();
        }
      }
    }
    slot.allocs = tally.allocs();
  }

  FarmResult run(std::size_t epc) {
    const std::size_t n = cells.size() * epc;
    std::vector<Slot> slots(n);
    pool.parallel_for_sharded(n, [&](std::size_t i, std::size_t w) {
      process(i / epc, i % epc, w, slots[i]);
    });

    FarmResult out;
    out.cells.resize(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) out.cells[c].cell = c;
    // Merge in (cell, episode) order on this thread: the only summation
    // order that ever exists, independent of scheduling.
    for (std::size_t i = 0; i < n; ++i) {
      const Slot& s = slots[i];
      accumulate(out.cells[i / epc], s.agg);
      out.episode_allocs += s.allocs;
      out.memo_hits += s.memo_hit;
      out.memo_misses += s.memo_miss;
    }
    out.episodes = n;
    for (const auto& c : out.cells) {
      out.rounds += c.rounds;
      out.delivered += c.delivered;
      out.collisions_resolved += c.collisions_resolved;
    }
    out.decode_cache_hits = shards.hits();
    out.decode_cache_misses = shards.misses();
    out.decode_cache_entries = shards.entries();
    return out;
  }
};

ApFarm::ApFarm(std::vector<CellSpec> cells, FarmOptions options)
    : impl_(std::make_unique<Impl>(std::move(cells), options)) {}
ApFarm::~ApFarm() = default;

FarmResult ApFarm::run(std::size_t episodes_per_cell) {
  return impl_->run(episodes_per_cell);
}
std::size_t ApFarm::cells() const { return impl_->cells.size(); }
std::size_t ApFarm::workers() const { return impl_->pool.size(); }

}  // namespace zz::farm
