// The AP-farm throughput engine: many independent AP cells at scale.
//
// A deployment-sized ZigZag evaluation is not one hidden-terminal pair but
// a building of them: N access points, each serving its own cell of
// saturated senders, each an endless stream of collision episodes. ApFarm
// runs that shape on one machine: every cell is a sequence of episodes —
// one episode is one full Live/Streaming scenario played through
// testbed::EpisodeStream — and the (cell, episode) grid is multiplexed
// over a work-stealing worker pool (ThreadPool::parallel_for_sharded).
//
// Determinism is the load-bearing property. Every episode draws from its
// own RNG stream, sharded twice: cell_seed = shard_seed(options.seed,
// cell) and episode_seed = shard_seed(cell_seed, episode). Episode results
// are integer aggregates accumulated into per-episode slots and merged in
// (cell, episode) order on the calling thread, so FarmResult is
// bit-identical at any worker count — the farm_test pins 1/2/4/8 workers
// against each other and against the serial run_cell reference.
//
// Per-worker resources make the steady state cheap: each stable worker id
// owns one DecodeCache shard (warm chunk replays without lock contention)
// and one ScratchArena (decoder workspaces stop allocating once their
// capacity plateaus). In soak mode (distinct_seeds > 0) each cell cycles a
// fixed set of episode seeds and the farm memoizes each (cell, seed)
// episode's aggregate: after one full warmup cycle every episode is a memo
// hit — an index lookup plus a POD copy — and the farm's steady state
// performs zero heap allocations (gated by the allocation-counting hook,
// see FarmResult::episode_allocs and tests/farm_soak_test.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "zz/testbed/scenario.h"

namespace zz::farm {

/// One AP cell: the scenario its senders and receiver play every episode.
/// Streaming collection is the headline configuration (the AP is the
/// incremental sample-in → packet-out pipeline); Live works identically.
/// LoggedJoint/SlottedAloha are not episode streams and are rejected.
struct CellSpec {
  testbed::Scenario scenario;
};

/// Sender count ceiling per cell — keeps episode aggregates POD (fixed
/// arrays, no per-episode heap traffic in the soak steady state).
inline constexpr std::size_t kMaxCellSenders = 8;

struct FarmOptions {
  std::uint64_t seed = 1;      ///< farm-level RNG shard base
  std::size_t workers = 0;     ///< pool size; 0 = one per hardware thread
  /// Soak mode: > 0 makes episode e of every cell replay seed e % n from a
  /// fixed set of n distinct seeds — the endless-stream shape. 0 gives
  /// every episode a fresh seed (throughput mode).
  std::size_t distinct_seeds = 0;
  /// Soak only: memoize each (cell, seed) episode's aggregate, so after
  /// one full warmup cycle every episode is an index lookup plus a POD
  /// copy and the steady state performs zero heap allocations. Turn off to
  /// re-run repeated episodes through the engine instead — the decode
  /// cache warm-replay shape (chunk decodes hit, episodes still execute).
  bool memoize_episodes = true;
  bool use_decode_cache = true;  ///< per-worker DecodeCache shards
  bool reuse_arenas = true;      ///< per-worker episode-persistent arenas
};

/// Integer aggregate of the episodes one cell has played. All fields are
/// exact sums of per-episode integers, so accumulation order cannot change
/// them; the doubles below are derived at read time.
struct CellResult {
  std::size_t cell = 0;
  std::uint64_t episodes = 0;
  std::uint64_t rounds = 0;               ///< airtime rounds
  std::uint64_t concurrent_rounds = 0;    ///< rounds with ≥2 backlogged
  std::uint64_t delivered = 0;            ///< packets delivered (all flows)
  std::uint64_t collisions_resolved = 0;  ///< deliveries out of contended rounds
  std::uint64_t stream_samples = 0;
  std::uint64_t stream_windows = 0;
  std::uint64_t stream_deliveries = 0;
  std::uint64_t latency_sum = 0;  ///< summed per-delivery decode latency
  std::array<std::uint64_t, kMaxCellSenders> per_flow_delivered{};

  /// Packets per airtime round, the paper's throughput unit.
  double throughput() const {
    return rounds ? static_cast<double>(delivered) / static_cast<double>(rounds)
                  : 0.0;
  }
};

struct FarmResult {
  std::vector<CellResult> cells;  ///< indexed by cell, merge order pinned
  std::uint64_t episodes = 0;
  std::uint64_t rounds = 0;
  std::uint64_t delivered = 0;
  std::uint64_t collisions_resolved = 0;
  /// operator new calls observed inside episode processing (memo lookup,
  /// episode run, slot accumulation) summed over all episodes — the soak
  /// gate's subject. Warm memo replay must report 0 here.
  std::uint64_t episode_allocs = 0;
  std::uint64_t memo_hits = 0;    ///< episodes served from the memo
  std::uint64_t memo_misses = 0;  ///< episodes that ran the engine
  /// DecodeCache shard totals at quiescence (run() end), cumulative over
  /// the farm's lifetime.
  std::uint64_t decode_cache_hits = 0;
  std::uint64_t decode_cache_misses = 0;
  std::uint64_t decode_cache_entries = 0;

  double throughput() const {
    return rounds ? static_cast<double>(delivered) / static_cast<double>(rounds)
                  : 0.0;
  }
};

/// Serial reference: cell `cell_index` of a farm configured with `seed`
/// and `distinct_seeds`, played for `episodes` episodes with no pool, no
/// decode cache, no arena and no memo. ApFarm's per-cell results must be
/// bit-identical to this (test-pinned) — it is the definition of what the
/// scale-out computes.
CellResult run_cell(const CellSpec& cell, std::size_t cell_index,
                    std::uint64_t seed, std::size_t episodes,
                    std::size_t distinct_seeds = 0);

class ApFarm {
 public:
  /// Validates every cell (Live/Streaming collection, ≤ kMaxCellSenders
  /// senders) and builds the pool plus per-worker resources. Throws
  /// std::invalid_argument on an invalid cell or an empty farm.
  ApFarm(std::vector<CellSpec> cells, FarmOptions options = {});
  ~ApFarm();
  ApFarm(const ApFarm&) = delete;
  ApFarm& operator=(const ApFarm&) = delete;

  /// Play `episodes_per_cell` episodes of every cell, fanned out over the
  /// pool, and return the merged result. Episode numbering restarts at 0
  /// each call, so in soak mode a second run() replays the same seeds —
  /// the warm-replay path the soak gates measure. Counters in the result
  /// cover this run only, except the decode-cache totals (cumulative).
  FarmResult run(std::size_t episodes_per_cell);

  std::size_t cells() const;
  std::size_t workers() const;  ///< resolved pool size

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace zz::farm
