// Tests for zz::coding — the K=7 rate-1/2 convolutional code and Viterbi
// decoding (the paper's §6a extension).
#include <gtest/gtest.h>

#include "zz/coding/convolutional.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"

namespace zz::coding {
namespace {

TEST(Conv, EncodeLengthAndDeterminism) {
  ConvolutionalCode code;
  Rng rng(1);
  const Bits data = rng.bits(100);
  const Bits c1 = code.encode(data);
  const Bits c2 = code.encode(data);
  EXPECT_EQ(c1.size(), ConvolutionalCode::coded_bits(100));
  EXPECT_EQ(c1, c2);
}

TEST(Conv, RoundTripNoErrors) {
  ConvolutionalCode code;
  Rng rng(2);
  for (std::size_t len : {1u, 7u, 64u, 500u}) {
    const Bits data = rng.bits(len);
    EXPECT_EQ(code.decode_hard(code.encode(data)), data) << "len=" << len;
  }
}

TEST(Conv, CorrectsScatteredBitErrors) {
  // Free distance 10: scattered single errors are easily corrected.
  ConvolutionalCode code;
  Rng rng(3);
  const Bits data = rng.bits(400);
  Bits coded = code.encode(data);
  for (std::size_t pos : {13u, 111u, 230u, 377u, 540u, 699u})
    coded[pos] ^= 1;
  EXPECT_EQ(code.decode_hard(coded), data);
}

TEST(Conv, SoftBeatsHardAtLowSnr) {
  ConvolutionalCode code;
  Rng rng(4);
  std::size_t hard_err = 0, soft_err = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Bits data = rng.bits(300);
    const Bits coded = code.encode(data);
    // BPSK over AWGN at ~2.5 dB Eb/N0.
    std::vector<double> llr(coded.size());
    Bits hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double x = coded[i] ? -1.0 : 1.0;
      const double y = x + rng.gaussian() * 0.75;
      llr[i] = y;
      hard[i] = y < 0 ? 1 : 0;
    }
    hard_err += hamming_distance(code.decode_hard(hard), data);
    soft_err += hamming_distance(code.decode_soft(llr), data);
  }
  EXPECT_LE(soft_err, hard_err);
  EXPECT_LT(soft_err, 60u);  // coding keeps the channel usable
}

TEST(Conv, UncorrectableBurstStillReturnsRightLength) {
  ConvolutionalCode code;
  Rng rng(5);
  const Bits data = rng.bits(64);
  Bits coded = code.encode(data);
  for (std::size_t i = 20; i < 60; ++i) coded[i] ^= 1;  // 40-bit burst
  const Bits out = code.decode_hard(coded);
  EXPECT_EQ(out.size(), data.size());
}

TEST(Conv, RejectsOddLength) {
  ConvolutionalCode code;
  EXPECT_THROW(code.decode_hard(Bits(17, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace zz::coding
