// Semantics of the zz/common/check.h contract library with ZZ_DCHECK
// contracts compiled IN (this TU is built with ZZ_ENABLE_DCHECKS=1 — see
// tests/CMakeLists.txt; the compiled-out half lives in
// check_release_test.cpp, built into the same binary without the define).
#include "zz/common/check.h"

#include <gtest/gtest.h>

#include <string>

#include "zz/common/reentry.h"

#ifndef ZZ_ENABLE_DCHECKS
#error "check_test.cpp must be compiled with ZZ_ENABLE_DCHECKS=1"
#endif

namespace {

using zz::ReentryFlag;
using zz::ReentryScope;

int g_evals = 0;
int counted(int v) {
  ++g_evals;
  return v;
}

TEST(Check, PassingCheckIsSilent) {
  ZZ_CHECK(1 + 1 == 2);
  ZZ_CHECK(true) << "never rendered";
  SUCCEED();
}

TEST(Check, PassingCheckDoesNotEvaluateMessage) {
  g_evals = 0;
  ZZ_CHECK(true) << "count=" << counted(7);
  EXPECT_EQ(g_evals, 0) << "message operands must be lazy";
}

TEST(Check, ComparisonOperandsEvaluateExactlyOnce) {
  g_evals = 0;
  ZZ_CHECK_EQ(counted(3), 3);
  EXPECT_EQ(g_evals, 1);
  g_evals = 0;
  ZZ_CHECK_LT(counted(1), counted(2));
  EXPECT_EQ(g_evals, 2);
}

TEST(Check, AllComparisonFormsPass) {
  ZZ_CHECK_EQ(4, 4);
  ZZ_CHECK_NE(4, 5);
  ZZ_CHECK_LT(4, 5);
  ZZ_CHECK_LE(5, 5);
  ZZ_CHECK_GT(5, 4);
  ZZ_CHECK_GE(5, 5);
}

TEST(Check, BindsAsOneStatementInUnbracedIfElse) {
  // Compile-shape contract: the macros must not swallow or steal an else.
  if (g_evals >= 0)
    ZZ_CHECK(true) << "then-branch";
  else
    ZZ_CHECK(true) << "else-branch";
  SUCCEED();
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailureReportsFileLineAndExpression) {
  EXPECT_DEATH(ZZ_CHECK(1 == 2),
               "check_test\\.cpp:[0-9]+: ZZ_CHECK\\(1 == 2\\) failed");
}

TEST(CheckDeathTest, FailureAppendsStreamedMessage) {
  EXPECT_DEATH(ZZ_CHECK(false) << "seed=" << 42 << " stage=" << "peel",
               "ZZ_CHECK\\(false\\) failed.*seed=42 stage=peel");
}

TEST(CheckDeathTest, ComparisonFailurePrintsBothOperands) {
  const int got = 3, want = 4;
  EXPECT_DEATH(ZZ_CHECK_EQ(got, want),
               "ZZ_CHECK_EQ\\(got, want\\) failed \\(3 vs\\. 4\\)");
}

TEST(CheckDeathTest, ComparisonFailureTakesTrailingMessage) {
  EXPECT_DEATH(ZZ_CHECK_LT(9, 2) << " while scheduling chunk " << 5,
               "ZZ_CHECK_LT\\(9, 2\\) failed \\(9 vs\\. 2\\).*chunk 5");
}

TEST(CheckDeathTest, StringOperandsRender) {
  const std::string a = "fwd", b = "bwd";
  EXPECT_DEATH(ZZ_CHECK_EQ(a, b), "failed \\(fwd vs\\. bwd\\)");
}

TEST(CheckDeathTest, DchecksAreFatalWhenCompiledIn) {
  EXPECT_DEATH(ZZ_DCHECK(false) << "dcheck on", "dcheck on");
  EXPECT_DEATH(ZZ_DCHECK_GE(1, 2), "ZZ_DCHECK_GE|ZZ_CHECK_GE");
}

// ReentryFlag / ReentryScope back the non-reentrancy contracts of the
// stateful receivers (StandardReceiver::decode, StreamingReceiver::push).
// This TU compiles with ZZ_ENABLE_DCHECKS forced on, so the scope is armed.

TEST(Reentry, FlagTracksEnterAndLeave) {
  ReentryFlag flag;
  EXPECT_FALSE(flag.busy());
  EXPECT_TRUE(flag.try_enter());
  EXPECT_TRUE(flag.busy());
  EXPECT_FALSE(flag.try_enter());  // second entry refused while held
  flag.leave();
  EXPECT_FALSE(flag.busy());
  EXPECT_TRUE(flag.try_enter());  // reusable after leave
  flag.leave();
}

TEST(Reentry, ScopeReleasesOnExit) {
  ReentryFlag flag;
  {
    const ReentryScope scope(flag, "guarded call");
    EXPECT_TRUE(flag.busy());
  }
  EXPECT_FALSE(flag.busy());
  {
    const ReentryScope again(flag, "guarded call");  // sequential calls fine
    EXPECT_TRUE(flag.busy());
  }
}

TEST(CheckDeathTest, ReentryScopeIsFatalOnNestedEntry) {
  ReentryFlag flag;
  const ReentryScope outer(flag, "Receiver::decode");
  EXPECT_DEATH(ReentryScope inner(flag, "Receiver::decode"),
               "Receiver::decode re-entered");
}

}  // namespace
