// Unit tests for zz::chan / zz::emu — the channel model and collision
// synthesis. These pin down the signal model every other module relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/emu/collision.h"
#include "zz/phy/transmitter.h"

namespace zz::chan {
namespace {

CVec random_bpsk(Rng& rng, std::size_t n) {
  CVec x(n);
  for (auto& v : x) v = rng.bit() ? cplx{1.0, 0.0} : cplx{-1.0, 0.0};
  return x;
}

TEST(Channel, CleanPassThrough) {
  Rng rng(1);
  const CVec x = random_bpsk(rng, 64);
  ChannelParams p;  // defaults: h=1, no impairments
  CVec buf(180, cplx{0.0, 0.0});
  add_signal(buf, 10, x, p);
  // Symbol k lands at sample 10 + 2k (2 samples/symbol, zero-ISI pulse).
  for (std::size_t k = 4; k < 60; ++k)
    EXPECT_LT(std::abs(buf[10 + 2 * k] - x[k]), 1e-9) << "k=" << k;
}

TEST(Channel, ComplexGainApplies) {
  Rng rng(2);
  const CVec x = random_bpsk(rng, 32);
  ChannelParams p;
  p.h = cplx{0.3, -1.2};
  CVec buf(128, cplx{0.0, 0.0});
  add_signal(buf, 0, x, p);
  for (std::size_t k = 4; k < 28; ++k)
    EXPECT_LT(std::abs(buf[2 * k] - p.h * x[k]), 1e-9);
}

TEST(Channel, FrequencyOffsetRotatesLinearly) {
  Rng rng(3);
  const CVec x(128, cplx{1.0, 0.0});  // constant symbol exposes the ramp
  ChannelParams p;
  p.freq_offset = 1e-3;
  CVec buf(300, cplx{0.0, 0.0});
  add_signal(buf, 0, x, p);
  // Phase difference between samples 100 and 20 ≈ 2π·δf·80.
  const double dphi = std::arg(buf[100] * std::conj(buf[20]));
  EXPECT_NEAR(dphi, kTwoPi * 1e-3 * 80.0, 1e-3);
}

TEST(Channel, FractionalOffsetMatchesInterpolator) {
  Rng rng(4);
  const CVec x = random_bpsk(rng, 96);
  ChannelParams p;
  p.mu = 0.37;
  CVec buf(260, cplx{0.0, 0.0});
  add_signal(buf, 8, x, p);
  // The rendered waveform sampled back at t = 8 + 2k + 0.37 must be ~x[k]:
  // the pulse is half-band, so windowed-sinc interpolation is accurate.
  const sig::SincInterpolator interp(8);
  for (std::size_t k = 10; k < 80; ++k) {
    const cplx v = interp.at(buf, 8.0 + 2.0 * static_cast<double>(k) + 0.37);
    EXPECT_LT(std::abs(v - x[k]), 0.02) << "k=" << k;
  }
}

TEST(Channel, IsiFilterShapesSymbols) {
  Rng rng(5);
  const CVec x = random_bpsk(rng, 64);
  ChannelParams p;
  p.isi = sig::Fir({cplx{0.0, 0.0}, cplx{1.0, 0.0}, cplx{0.5, 0.0}}, 1);
  CVec buf(180, cplx{0.0, 0.0});
  add_signal(buf, 0, x, p);
  for (std::size_t k = 8; k < 56; ++k)
    EXPECT_LT(std::abs(buf[2 * k] - (x[k] + 0.5 * x[k - 1])), 1e-6);
}

TEST(Channel, SubtractionCancelsExactly) {
  // ZigZag's core operation: render with identical parameters and scale -1
  // — the residual must vanish to numerical precision.
  Rng rng(6);
  const CVec x = random_bpsk(rng, 200);
  ImpairmentConfig cfg;
  cfg.snr_db = 12.0;
  const ChannelParams p = random_channel(rng, cfg);
  CVec buf(480, cplx{0.0, 0.0});
  add_signal(buf, 16, x, p);
  const double before = mean_power(buf);
  add_signal(buf, 16, x, p, -1.0);
  EXPECT_GT(before, 1.0);
  EXPECT_LT(mean_power(buf), 1e-20);
}

TEST(Channel, DerivativeMatchesFiniteDifference) {
  Rng rng(7);
  const CVec x = random_bpsk(rng, 64);
  ChannelParams p;
  p.mu = 0.1;
  const double eps = 1e-5;
  CVec d(200, cplx{}), hi(200, cplx{}), lo(200, cplx{});
  add_signal_derivative(d, 4, x, p);
  ChannelParams pp = p, pm = p;
  pp.mu += eps;
  pm.mu -= eps;
  add_signal(hi, 4, x, pp);
  add_signal(lo, 4, x, pm);
  for (std::size_t i = 20; i < 60; ++i) {
    const cplx fd = (hi[i] - lo[i]) / (2.0 * eps);
    EXPECT_LT(std::abs(d[i] - fd), 1e-3) << "i=" << i;
  }
}

TEST(Channel, RenderGroupWidthsAreBitIdentical) {
  // The render packs symbol groups into SIMD lanes (scalar, SSE2 pairs,
  // AVX2 quads by CPU dispatch) under a bit-exactness contract — the drift
  // gates only ever exercise the widest path the CI machine dispatches, so
  // pin the narrower paths against it here.
  Rng rng(606);
  const CVec x = random_bpsk(rng, 257);  // odd count: exercises group tails
  ChannelParams p;
  p.h = {1.3, -0.4};
  p.freq_offset = 7e-4;
  p.mu = 0.31;
  p.drift = 1.3e-6;
  p.isi = sig::Fir({cplx{0.06, 0.02}, cplx{1.0, 0.0}, cplx{0.12, -0.04}}, 1);

  const auto render_with = [&](int width, bool derivative) {
    set_render_group_width_for_test(width);
    CVec buf(620, cplx{0.0, 0.0});
    if (derivative)
      add_signal_derivative(buf, 16, x, p);
    else
      add_signal(buf, 16, x, p);
    set_render_group_width_for_test(0);
    return buf;
  };

  for (const bool derivative : {false, true}) {
    const CVec widest = render_with(0, derivative);  // CPU dispatch
    for (const int width : {1, 2, 4}) {
      const CVec forced = render_with(width, derivative);
      ASSERT_EQ(widest.size(), forced.size());
      for (std::size_t i = 0; i < widest.size(); ++i)
        ASSERT_EQ(widest[i], forced[i])
            << "width=" << width << " derivative=" << derivative
            << " i=" << i;
    }
  }
}

TEST(Channel, RandomChannelRespectsConfig) {
  Rng rng(8);
  ImpairmentConfig cfg;
  cfg.snr_db = 15.0;
  cfg.freq_offset_max = 1e-3;
  cfg.mu_max = 0.4;
  for (int i = 0; i < 32; ++i) {
    const ChannelParams p = random_channel(rng, cfg);
    EXPECT_NEAR(std::abs(p.h), std::sqrt(db_to_lin(15.0)), 1e-9);
    EXPECT_LE(std::abs(p.freq_offset), 1e-3);
    EXPECT_LE(std::abs(p.mu), 0.4);
    EXPECT_EQ(p.isi.taps().size(), 3u);
  }
}

TEST(Channel, RetransmissionKeepsMagnitudeAndIsi) {
  Rng rng(9);
  ImpairmentConfig cfg;
  const ChannelParams a = random_channel(rng, cfg);
  const ChannelParams b = retransmission_channel(rng, a, 2e-5);
  EXPECT_NEAR(std::abs(a.h), std::abs(b.h), 1e-12);
  EXPECT_NEAR(std::abs(a.freq_offset - b.freq_offset), 0.0, 2e-5 + 1e-12);
  ASSERT_EQ(a.isi.taps().size(), b.isi.taps().size());
  for (std::size_t i = 0; i < a.isi.taps().size(); ++i)
    EXPECT_EQ(a.isi.taps()[i], b.isi.taps()[i]);
}

TEST(Channel, CleanReceptionHasLeadNoise) {
  Rng rng(10);
  const CVec x = random_bpsk(rng, 128);
  ChannelParams p;
  p.h = cplx{10.0, 0.0};
  const CVec rx = clean_reception(rng, x, p, 64, 32, 1.0);
  double lead_pow = 0.0;
  for (std::size_t i = 0; i < 48; ++i) lead_pow += std::norm(rx[i]);
  lead_pow /= 48.0;
  EXPECT_NEAR(lead_pow, 1.0, 0.6);  // noise only
  double mid_pow = 0.0;
  for (std::size_t i = 96; i < 256; ++i) mid_pow += std::norm(rx[i]);
  EXPECT_GT(mid_pow / 160.0, 50.0);  // signal dominates
}

TEST(CollisionBuilder, TruthRecordsOffsetsAndSnr) {
  Rng rng(11);
  phy::FrameHeader h;
  h.sender_id = 1;
  h.seq = 7;
  h.payload_bytes = 40;
  const auto frame = phy::build_frame(h, rng.bytes(40));

  ImpairmentConfig cfg;
  cfg.snr_db = 20.0;
  cfg.enable_isi = false;
  const ChannelParams cp = random_channel(rng, cfg);

  emu::Reception r = emu::CollisionBuilder()
                         .lead(50)
                         .noise_power(1.0)
                         .add(frame, cp, 13)
                         .build(rng);
  ASSERT_EQ(r.truth.size(), 1u);
  EXPECT_EQ(r.truth[0].start, 63);
  EXPECT_EQ(r.lead, 50u);

  // Measured signal power in the packet interior ≈ |h|² + noise.
  double pow = 0.0;
  const std::size_t s0 = 80, s1 = 200;
  for (std::size_t i = s0; i < s1; ++i) pow += std::norm(r.samples[i]);
  pow /= static_cast<double>(s1 - s0);
  EXPECT_NEAR(pow, db_to_lin(20.0) + 1.0, 30.0);
}

TEST(CollisionBuilder, TwoPacketsSuperpose) {
  Rng rng(12);
  phy::FrameHeader h;
  h.payload_bytes = 30;
  const auto fa = phy::build_frame(h, rng.bytes(30));
  h.seq = 1;
  const auto fb = phy::build_frame(h, rng.bytes(30));

  ChannelParams pa, pb;
  pa.h = cplx{5.0, 0.0};
  pb.h = cplx{5.0, 0.0};

  auto lone = emu::CollisionBuilder().lead(32).noise_power(0).add(fa, pa, 0).build(rng);
  auto both = emu::CollisionBuilder()
                  .lead(32)
                  .noise_power(0)
                  .add(fa, pa, 0)
                  .add(fb, pb, 100)
                  .build(rng);
  // Before the second packet arrives the signals agree.
  for (std::size_t i = 0; i < 112; ++i)
    EXPECT_LT(std::abs(both.samples[i] - lone.samples[i]), 1e-9);
  // After it arrives they differ.
  double diff = 0.0;
  for (std::size_t i = 140; i < 200; ++i)
    diff += std::norm(both.samples[i] - lone.samples[i]);
  EXPECT_GT(diff, 1.0);
}

}  // namespace
}  // namespace zz::chan
