// Link-sanity guard for the receiver.cpp basename collision.
//
// src/phy/receiver.cpp and src/zigzag/receiver.cpp share a basename. A
// naive flat build (all objects in one directory, one `ar` archive) lets
// one object silently overwrite the other, dropping every symbol of
// zz::phy::StandardReceiver / estimate_at_peak and breaking 4 of the 9
// suites at link time. CMake keeps per-target object directories, so both
// survive — this TU references symbols that live in each file so any
// regression to a flat layout fails here first, at link, with a clear
// culprit.
#include <gtest/gtest.h>

#include "zz/phy/receiver.h"
#include "zz/zigzag/receiver.h"

namespace {

TEST(LinkSanity, PhyReceiverSymbolsPresent) {
  const zz::phy::StandardReceiver rx;
  EXPECT_GT(rx.config().preamble_len, 0u);

  auto* estimate = &zz::phy::estimate_at_peak;
  auto* noise = &zz::phy::estimate_noise_floor;
  EXPECT_NE(reinterpret_cast<void*>(estimate), nullptr);
  EXPECT_NE(reinterpret_cast<void*>(noise), nullptr);
}

TEST(LinkSanity, ZigZagReceiverSymbolsPresent) {
  zz::zigzag::ZigZagReceiver rx;
  EXPECT_EQ(rx.pending_collisions(), 0u);
  EXPECT_TRUE(rx.clients().empty());
}

TEST(LinkSanity, BothReceiversCoexistInOneImage) {
  const zz::phy::StandardReceiver std_rx;
  zz::zigzag::ZigZagReceiver zz_rx(zz::zigzag::ReceiverOptions{});
  EXPECT_GE(std_rx.config().detect_beta, 0.0);
  EXPECT_EQ(zz_rx.receive(zz::CVec{}).size(), 0u);
}

}  // namespace
