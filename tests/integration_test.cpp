// Cross-module property sweeps: the full pipeline (TX → channel →
// collisions → ZigZag) across the offset/SNR grid, and randomized
// consistency checks between the abstract scheduler and Assertion 4.5.1.
#include <gtest/gtest.h>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/decoder.h"
#include "zz/zigzag/scheduler.h"

namespace zz {
namespace {

using zigzag::CollisionInput;
using zigzag::Detection;
using zigzag::ZigZagDecoder;

struct Party {
  phy::TxFrame frame;
  chan::ChannelParams channel;
  phy::SenderProfile profile;
};

Party make_party(Rng& rng, std::uint8_t id, std::size_t payload, double snr) {
  Party p;
  phy::FrameHeader h;
  h.sender_id = id;
  h.seq = static_cast<std::uint16_t>(id * 17);
  h.payload_bytes = static_cast<std::uint16_t>(payload);
  p.frame = phy::build_frame(h, rng.bytes(payload));
  chan::ImpairmentConfig icfg;
  icfg.snr_db = snr;
  icfg.freq_offset_max = 2e-3;
  p.channel = chan::random_channel(rng, icfg);
  p.profile.id = id;
  p.profile.freq_offset = p.channel.freq_offset + rng.uniform(-1e-5, 1e-5);
  p.profile.snr_db = snr;
  p.profile.isi = p.channel.isi;
  p.profile.equalizer = p.channel.isi.inverse(7, 3);
  return p;
}

Detection detect(const emu::Reception& rec, int idx,
                 const phy::SenderProfile& prof, int pi) {
  const auto pe = phy::estimate_at_peak(
      rec.samples, static_cast<std::size_t>(rec.truth[idx].start),
      prof.freq_offset);
  Detection d;
  d.origin = pe.origin;
  d.mu = pe.mu;
  d.h = pe.h;
  d.freq_offset = prof.freq_offset;
  d.metric = pe.metric;
  d.profile_index = pi;
  return d;
}

double ber_vs(const phy::TxFrame& truth, const zigzag::PacketResult& r) {
  if (!r.header_ok) return 1.0;
  const phy::TxFrame ref = truth.header.retry == r.header.retry
                               ? truth
                               : phy::with_retry(truth, r.header.retry);
  return bit_error_rate(ref.air_bits(), r.air_bits);
}

// -------------------------------------------------------------------------
// Pair decoding across the (snr, Δ1, Δ2) grid — the paper's core claim is
// that *any* pair of distinct offsets bootstraps the decoder.
// -------------------------------------------------------------------------

struct GridCase {
  double snr_db;
  std::ptrdiff_t d1, d2;
};

class PairGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(PairGrid, BothPacketsDeliver) {
  const GridCase c = GetParam();
  Rng rng(0xfeed + static_cast<std::uint64_t>(c.snr_db * 10) +
          static_cast<std::uint64_t>(c.d1 * 3 + c.d2));
  auto alice = make_party(rng, 1, 250, c.snr_db);
  auto bob = make_party(rng, 2, 250, c.snr_db);
  auto c1 = emu::CollisionBuilder()
                .add(alice.frame, alice.channel, 0)
                .add(bob.frame, bob.channel, c.d1)
                .build(rng);
  auto c2 = emu::CollisionBuilder()
                .add(phy::with_retry(alice.frame, true),
                     chan::retransmission_channel(rng, alice.channel), 0)
                .add(phy::with_retry(bob.frame, true),
                     chan::retransmission_channel(rng, bob.channel), c.d2)
                .build(rng);
  std::vector<phy::SenderProfile> profiles{alice.profile, bob.profile};
  CollisionInput i1{&c1.samples,
                    {{0, detect(c1, 0, alice.profile, 0)},
                     {1, detect(c1, 1, bob.profile, 1)}},
                    false};
  CollisionInput i2{&c2.samples,
                    {{0, detect(c2, 0, alice.profile, 0)},
                     {1, detect(c2, 1, bob.profile, 1)}},
                    true};
  const CollisionInput inputs[2] = {i1, i2};
  const auto res = ZigZagDecoder().decode({inputs, 2}, profiles, 2);
  EXPECT_LT(ber_vs(alice.frame, res.packets[0]), 1e-3)
      << "snr=" << c.snr_db << " d1=" << c.d1 << " d2=" << c.d2;
  EXPECT_LT(ber_vs(bob.frame, res.packets[1]), 1e-3)
      << "snr=" << c.snr_db << " d1=" << c.d1 << " d2=" << c.d2;
}

INSTANTIATE_TEST_SUITE_P(
    OffsetSnrGrid, PairGrid,
    ::testing::Values(GridCase{9.0, 120, 480}, GridCase{9.0, 480, 120},
                      GridCase{12.0, 100, 900}, GridCase{12.0, 700, 200},
                      GridCase{15.0, 40, 1200}, GridCase{15.0, 1000, 100},
                      GridCase{10.0, 260, 620}, GridCase{18.0, 300, 150}));

// -------------------------------------------------------------------------
// Scheduler consistency: on random two-packet patterns the greedy algorithm
// succeeds iff the offsets differ (Assertion 4.5.1 specialized to pairs).
// -------------------------------------------------------------------------

TEST(SchedulerProperty, PairSuccessIffOffsetsDiffer) {
  Rng rng(0xabcd);
  for (int trial = 0; trial < 400; ++trial) {
    zigzag::Pattern p;
    p.lengths = {static_cast<std::size_t>(rng.uniform_int(40, 200)),
                 static_cast<std::size_t>(rng.uniform_int(40, 200))};
    const auto o1 = rng.uniform_int(0, 60);
    const auto o2 = rng.uniform_int(0, 60);
    p.collisions = {{{0, 0}, {1, o1}}, {{0, 0}, {1, o2}}};
    const bool decodable = zigzag::greedy_schedule(p).complete;
    const bool condition = zigzag::pairwise_condition_holds(p);
    EXPECT_EQ(decodable, condition)
        << "lens=" << p.lengths[0] << "," << p.lengths[1] << " o1=" << o1
        << " o2=" << o2;
  }
}

TEST(SchedulerProperty, ConditionImpliesDecodableForThree) {
  // Assertion 4.5.1: the pairwise condition is sufficient for three packets.
  Rng rng(0xdcba);
  std::size_t checked = 0;
  for (int trial = 0; trial < 600; ++trial) {
    zigzag::Pattern p;
    p.lengths = {100, 100, 100};
    for (int c = 0; c < 3; ++c) {
      std::vector<zigzag::Pattern::Placement> coll;
      for (std::size_t i = 0; i < 3; ++i)
        coll.push_back({i, rng.uniform_int(0, 50)});
      p.collisions.push_back(std::move(coll));
    }
    if (!zigzag::pairwise_condition_holds(p)) continue;
    ++checked;
    EXPECT_TRUE(zigzag::greedy_schedule(p).complete) << "trial " << trial;
  }
  EXPECT_GT(checked, 400u);  // the condition holds for most random draws
}

TEST(SchedulerProperty, StepsCoverEverySymbolExactlyOnce) {
  Rng rng(0x5555);
  for (int trial = 0; trial < 100; ++trial) {
    zigzag::Pattern p;
    p.lengths = {static_cast<std::size_t>(rng.uniform_int(50, 150)),
                 static_cast<std::size_t>(rng.uniform_int(50, 150))};
    p.collisions = {{{0, 0}, {1, rng.uniform_int(1, 40)}},
                    {{0, 0}, {1, rng.uniform_int(41, 80)}}};
    const auto r = zigzag::greedy_schedule(p);
    if (!r.complete) continue;
    std::vector<std::vector<int>> seen(2);
    seen[0].assign(p.lengths[0], 0);
    seen[1].assign(p.lengths[1], 0);
    for (const auto& st : r.steps)
      for (std::size_t k = st.k0; k < st.k1; ++k)
        ++seen[st.packet][k];
    for (int pk = 0; pk < 2; ++pk)
      for (std::size_t k = 0; k < p.lengths[static_cast<std::size_t>(pk)]; ++k)
        ASSERT_EQ(seen[pk][k], 1) << "packet " << pk << " symbol " << k;
  }
}

// -------------------------------------------------------------------------
// End-to-end conservation: subtracting every decoded packet's image leaves
// a residual at the noise floor — the physical sanity check behind ZigZag.
// -------------------------------------------------------------------------

TEST(Integration, DecodedImagesExplainTheReception) {
  Rng rng(0x777);
  auto alice = make_party(rng, 1, 200, 14.0);
  auto bob = make_party(rng, 2, 200, 14.0);
  auto c1 = emu::CollisionBuilder()
                .add(alice.frame, alice.channel, 0)
                .add(bob.frame, bob.channel, 300)
                .build(rng);
  auto c2 = emu::CollisionBuilder()
                .add(phy::with_retry(alice.frame, true),
                     chan::retransmission_channel(rng, alice.channel), 0)
                .add(phy::with_retry(bob.frame, true),
                     chan::retransmission_channel(rng, bob.channel), 800)
                .build(rng);
  std::vector<phy::SenderProfile> profiles{alice.profile, bob.profile};
  CollisionInput i1{&c1.samples,
                    {{0, detect(c1, 0, alice.profile, 0)},
                     {1, detect(c1, 1, bob.profile, 1)}},
                    false};
  CollisionInput i2{&c2.samples,
                    {{0, detect(c2, 0, alice.profile, 0)},
                     {1, detect(c2, 1, bob.profile, 1)}},
                    true};
  const CollisionInput inputs[2] = {i1, i2};
  const auto res = ZigZagDecoder().decode({inputs, 2}, profiles, 2);
  ASSERT_TRUE(res.packets[0].crc_ok);
  ASSERT_TRUE(res.packets[1].crc_ok);

  // Rebuild both frames from the decoded payloads and subtract them from
  // collision 1 using the TRUE channels: the payload bits must explain the
  // waveform down to (near) the noise floor.
  CVec residual = c1.samples;
  const phy::TxFrame fa = phy::build_frame(res.packets[0].header,
                                           res.packets[0].payload);
  const phy::TxFrame fb = phy::build_frame(res.packets[1].header,
                                           res.packets[1].payload);
  // Collision 1 carried the retry=0 variants.
  chan::add_signal(residual, c1.truth[0].start,
                   phy::with_retry(fa, false).symbols, alice.channel, -1.0);
  chan::add_signal(residual, c1.truth[1].start,
                   phy::with_retry(fb, false).symbols, bob.channel, -1.0);
  EXPECT_LT(mean_power(residual), 1.5);  // ≈ unit noise power
}

}  // namespace
}  // namespace zz
