// Unit tests for zz::sig — FIR filtering/inversion/fitting, band-limited
// interpolation, and the sliding correlator that powers collision detection.
#include <gtest/gtest.h>

#include <cmath>

#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/signal/correlate.h"
#include "zz/signal/fft.h"
#include "zz/signal/fir.h"
#include "zz/signal/interp.h"
#include "zz/signal/scratch.h"

namespace zz::sig {
namespace {

CVec random_bpsk(Rng& rng, std::size_t n) {
  CVec x(n);
  for (auto& v : x) v = rng.bit() ? cplx{1.0, 0.0} : cplx{-1.0, 0.0};
  return x;
}

// Band-limited test signal: sum of sub-Nyquist complex tones.
CVec bandlimited(std::size_t n) {
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = cplx{std::cos(0.11 * kTwoPi * t), std::sin(0.23 * kTwoPi * t)} +
           0.5 * cplx{std::cos(0.05 * kTwoPi * t + 1.0), 0.0};
  }
  return x;
}

TEST(Fir, IdentityPassesThrough) {
  Fir id;
  EXPECT_TRUE(id.is_identity());
  Rng rng(1);
  const CVec x = random_bpsk(rng, 32);
  const CVec y = id.apply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(Fir, CausalConvolution) {
  Fir f({cplx{1.0, 0.0}, cplx{0.5, 0.0}});  // y[n] = x[n] + 0.5 x[n-1]
  const CVec x{{1, 0}, {0, 0}, {0, 0}};
  const CVec y = f.apply(x);
  EXPECT_NEAR(std::abs(y[0] - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - cplx(0.5, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[2]), 0.0, 1e-12);
}

TEST(Fir, NonCausalCentering) {
  // y[n] = 0.2 x[n+1] + x[n] + 0.3 x[n-1]
  Fir f({cplx{0.2, 0.0}, cplx{1.0, 0.0}, cplx{0.3, 0.0}}, 1);
  const CVec x{{0, 0}, {1, 0}, {0, 0}};
  const CVec y = f.apply(x);
  EXPECT_NEAR(std::abs(y[0] - cplx(0.2, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[2] - cplx(0.3, 0.0)), 0.0, 1e-12);
}

TEST(Fir, RejectsBadConstruction) {
  EXPECT_THROW(Fir({}, 0), std::invalid_argument);
  EXPECT_THROW(Fir({cplx{1, 0}}, 3), std::invalid_argument);
}

TEST(Fir, InverseCancelsChannel) {
  Rng rng(2);
  const Fir h({cplx{0.1, 0.05}, cplx{1.0, 0.0}, cplx{0.2, -0.1}}, 1);
  const Fir g = h.inverse(9, 4);
  const CVec x = random_bpsk(rng, 256);
  const CVec y = g.apply(h.apply(x));
  double err = 0.0;
  for (std::size_t i = 8; i + 8 < x.size(); ++i) err += std::norm(y[i] - x[i]);
  EXPECT_LT(err / 240.0, 1e-3);
}

TEST(Fir, FitRecoversTrueTaps) {
  Rng rng(3);
  const Fir truth({cplx{0.08, 0.02}, cplx{1.0, 0.0}, cplx{0.15, -0.07}}, 1);
  const CVec x = random_bpsk(rng, 512);
  CVec y = truth.apply(x);
  for (auto& v : y) v += rng.gaussian_c(0.001);  // light noise
  const Fir fit = fit_fir(x, y, 1, 1);
  ASSERT_EQ(fit.taps().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_LT(std::abs(fit.taps()[i] - truth.taps()[i]), 0.02);
}

TEST(Fir, FitRejectsBadSizes) {
  EXPECT_THROW(fit_fir(CVec(2), CVec(3), 1, 1), std::invalid_argument);
}

class InterpMuSweep : public ::testing::TestWithParam<double> {};

TEST_P(InterpMuSweep, ShiftRecoversBandlimitedSignal) {
  const double mu = GetParam();
  const SincInterpolator interp(8);
  const CVec x = bandlimited(256);
  const CVec y = interp.shift(x, mu);
  // Compare against the analytic shifted signal in the interior.
  double worst = 0.0;
  for (std::size_t i = 24; i + 24 < x.size(); ++i) {
    const double t = static_cast<double>(i) + mu;
    const cplx truth =
        cplx{std::cos(0.11 * kTwoPi * t), std::sin(0.23 * kTwoPi * t)} +
        0.5 * cplx{std::cos(0.05 * kTwoPi * t + 1.0), 0.0};
    worst = std::max(worst, std::abs(y[i] - truth));
  }
  EXPECT_LT(worst, 0.02) << "mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(MuGrid, InterpMuSweep,
                         ::testing::Values(-0.5, -0.3, -0.1, 0.0, 0.07, 0.25,
                                           0.49));

TEST(Interp, IntegerShiftIsExact) {
  const SincInterpolator interp(8);
  const CVec x = bandlimited(64);
  for (std::size_t i = 10; i < 50; ++i)
    EXPECT_LT(std::abs(interp.at(x, static_cast<double>(i)) - x[i]), 1e-9);
}

TEST(Interp, BlockEvaluationMatchesPerSampleGolden) {
  // at_uniform / at_batch are the decoder's per-tracking-block fetch path;
  // they must agree with the per-sample route at <= 1e-12 (the
  // implementation is in fact bit-identical — same per-point arithmetic
  // with the recurrence constants hoisted).
  const SincInterpolator interp(8);
  const CVec x = bandlimited(256);
  const double t0 = 37.413, dt = 2.0000037;  // symbol-rate run with drift
  constexpr std::size_t n = 96;
  CVec out(n);
  interp.at_uniform(x, t0, dt, n, out.data());
  for (std::size_t j = 0; j < n; ++j) {
    const cplx ref = interp.at(x, t0 + dt * static_cast<double>(j));
    EXPECT_LE(std::abs(out[j] - ref), 1e-12) << "j=" << j;
  }

  std::vector<double> pos;
  Rng rng(5);
  for (std::size_t j = 0; j < 64; ++j) pos.push_back(rng.uniform(-8.0, 264.0));
  CVec batch(pos.size());
  interp.at_batch(x, pos, batch.data());
  for (std::size_t j = 0; j < pos.size(); ++j) {
    const cplx ref = interp.at(x, pos[j]);
    EXPECT_EQ(batch[j], ref) << "j=" << j;  // bit-identical by construction
  }
}

TEST(Interp, EdgeWindowKeepsInteriorGain) {
  // A truncated kernel window at the stream edge used to come back
  // attenuated (a DC stream read ~0.5 at sample 0); the clipped window is
  // now renormalized by its summed kernel weight, so edge samples keep
  // interior gain.
  const SincInterpolator interp(8);
  const CVec x(64, cplx{1.0, 0.0});
  const double interior = std::abs(interp.at(x, 32.3));
  EXPECT_NEAR(interior, 1.0, 0.01);
  for (const double t : {0.0, 0.3, 1.7, 4.4, 58.6, 62.7, 63.0}) {
    EXPECT_NEAR(std::abs(interp.at(x, t)), interior, 0.02) << "t=" << t;
  }
}

TEST(Interp, ShiftInheritsEdgeRenormalization) {
  const SincInterpolator interp(8);
  const CVec x(64, cplx{1.0, 0.0});
  const CVec y = interp.shift(x, 0.37);
  // First/last samples keep ~unit gain instead of reading the old ~50%.
  EXPECT_NEAR(std::abs(y.front()), 1.0, 0.02);
  EXPECT_NEAR(std::abs(y[1]), 1.0, 0.02);
  EXPECT_NEAR(std::abs(y[y.size() - 2]), 1.0, 0.02);
  EXPECT_NEAR(std::abs(y.back()), 1.0, 0.02);
}

TEST(Interp, RejectsZeroHalfWidth) {
  EXPECT_THROW(SincInterpolator(0), std::invalid_argument);
}

TEST(Interp, OutOfRangeReadsAreZero) {
  const SincInterpolator interp(4);
  const CVec x(8, cplx{1.0, 0.0});
  EXPECT_NEAR(std::abs(interp.at(x, -100.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(interp.at(x, 100.0)), 0.0, 1e-12);
}

TEST(Correlate, SpikesAtEmbeddedReference) {
  Rng rng(4);
  const CVec ref = random_bpsk(rng, 32);
  CVec stream = random_bpsk(rng, 400);
  // Overwrite positions 137.. with the reference.
  for (std::size_t k = 0; k < ref.size(); ++k) stream[137 + k] = ref[k];
  const CVec corr = sliding_correlation(ref, stream);
  std::size_t best = 0;
  for (std::size_t i = 0; i < corr.size(); ++i)
    if (std::abs(corr[i]) > std::abs(corr[best])) best = i;
  EXPECT_EQ(best, 137u);
  EXPECT_NEAR(std::abs(corr[137]), 32.0, 1e-9);
}

TEST(Correlate, FrequencyOffsetDestroysAndCompensationRestores) {
  Rng rng(5);
  const CVec ref = random_bpsk(rng, 64);
  const double df = 0.01;  // cycles/sample — decoheres a 64-sample window
  CVec stream(200, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < ref.size(); ++k) {
    const double phi = kTwoPi * df * static_cast<double>(k);
    stream[50 + k] = ref[k] * cplx{std::cos(phi), std::sin(phi)};
  }
  const cplx plain = correlation_at(ref, stream, 50);
  const cplx comp = correlation_at(ref, stream, 50, df);
  EXPECT_LT(std::abs(plain), 45.0);      // badly decohered
  EXPECT_NEAR(std::abs(comp), 64.0, 1e-6);  // fully restored (Γ' of §4.2.1)
}

TEST(Correlate, FindPeaksRespectsThresholdAndSeparation) {
  CVec corr(100, cplx{0.1, 0.0});
  corr[20] = {5.0, 0.0};
  corr[22] = {4.0, 0.0};  // swallowed by separation guard
  corr[70] = {6.0, 0.0};
  const auto peaks = find_peaks(corr, 3.0, 10);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 20u);
  EXPECT_EQ(peaks[1], 70u);
}

TEST(Correlate, ParabolicOffsetTracksTruePeak) {
  // Sample a smooth peak at fractional position 30.3.
  CVec corr(64);
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const double d = static_cast<double>(i) - 30.3;
    corr[i] = cplx{std::exp(-d * d / 8.0), 0.0};
  }
  const double frac = parabolic_peak_offset(corr, 30);
  EXPECT_NEAR(frac, 0.3, 0.05);
}

TEST(Correlate, EmptyAndShortStreams) {
  const CVec ref(8, cplx{1.0, 0.0});
  EXPECT_TRUE(sliding_correlation(ref, CVec(4)).empty());
  EXPECT_TRUE(sliding_correlation(CVec{}, CVec(4)).empty());
}

// ---------------------------------------------------------------------------
// FFT engine and the fast/naive correlation equivalence (golden test).
// ---------------------------------------------------------------------------

TEST(Fft, MatchesNaiveDftAndRoundtrips) {
  Rng rng(61);
  const std::size_t n = 64;
  CVec x(n);
  for (auto& v : x) v = cplx{rng.gaussian(), rng.gaussian()};

  // Naive DFT reference.
  CVec ref(n, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t m = 0; m < n; ++m) {
      const double phi = -kTwoPi * static_cast<double>(k * m) / static_cast<double>(n);
      ref[k] += x[m] * cplx{std::cos(phi), std::sin(phi)};
    }

  const Fft fft(n);
  CVec y = x;
  fft.forward(y.data());
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_LT(std::abs(y[k] - ref[k]), 1e-10) << "bin " << k;

  fft.inverse(y.data());
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_LT(std::abs(y[k] - x[k]), 1e-12) << "sample " << k;
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft(0), std::invalid_argument);
  EXPECT_THROW(Fft(1), std::invalid_argument);
  EXPECT_THROW(Fft(96), std::invalid_argument);
}

// The overlap-save engine must reproduce the naive O(N·M) loop to 1e-9 —
// values, peak positions AND sub-sample peak offsets — including under
// frequency-offset hypotheses (the detector's Γ').
TEST(Correlate, FastMatchesNaiveGolden) {
  Rng rng(62);
  const CVec ref = random_bpsk(rng, 64);
  CVec stream(3000);
  for (auto& v : stream) v = cplx{rng.gaussian(), rng.gaussian()};
  // Embed the reference twice so there are genuine peaks to compare.
  for (std::size_t k = 0; k < ref.size(); ++k) {
    stream[400 + k] += 3.0 * ref[k];
    stream[1777 + k] += 3.0 * ref[k];
  }

  for (const double df : {0.0, 1.3e-3, -2.0e-3}) {
    const CVec naive = sliding_correlation_naive(ref, stream, df);
    const CVec fast = sliding_correlation(ref, stream, df);
    ASSERT_EQ(naive.size(), fast.size());
    double worst = 0.0;
    for (std::size_t d = 0; d < naive.size(); ++d)
      worst = std::max(worst, std::abs(naive[d] - fast[d]));
    EXPECT_LT(worst, 1e-9) << "df=" << df;

    const auto pn = find_peaks(naive, 100.0, 16);
    const auto pf = find_peaks(fast, 100.0, 16);
    ASSERT_EQ(pn, pf) << "df=" << df;
    for (const std::size_t pk : pn)
      EXPECT_NEAR(parabolic_peak_offset(naive, pk),
                  parabolic_peak_offset(fast, pk), 1e-9);
  }
}

// set_reference() swaps the reference while keeping the prepared stream —
// the n-way matcher's reuse pattern. Must equal a fresh correlator.
TEST(Correlate, SetReferenceReusesPreparedStream) {
  Rng rng(65);
  const CVec ref_a = random_bpsk(rng, 96);
  const CVec ref_b = random_bpsk(rng, 96);
  CVec stream(2048);
  for (auto& v : stream) v = cplx{rng.gaussian(), rng.gaussian()};

  SlidingCorrelator corr(ref_a);
  corr.prepare(stream);
  CVec out;
  corr.correlate(0.0, out);
  const CVec fresh_a = SlidingCorrelator(ref_a).correlate(stream);
  ASSERT_EQ(out.size(), fresh_a.size());
  for (std::size_t d = 0; d < out.size(); ++d)
    EXPECT_LT(std::abs(out[d] - fresh_a[d]), 1e-12);

  corr.set_reference(ref_b);
  double eb = 0.0;
  for (const cplx& v : ref_b) eb += std::norm(v);
  EXPECT_NEAR(corr.reference_energy(), eb, 1e-9);
  corr.correlate(0.0, out);
  const CVec fresh_b = SlidingCorrelator(ref_b).correlate(stream);
  ASSERT_EQ(out.size(), fresh_b.size());
  for (std::size_t d = 0; d < out.size(); ++d)
    EXPECT_LT(std::abs(out[d] - fresh_b[d]), 1e-9);

  EXPECT_THROW(corr.set_reference(random_bpsk(rng, 64)), std::invalid_argument);
}

// prepare() once, correlate() per hypothesis — the detector's batched use.
TEST(Correlate, SlidingCorrelatorSharesStreamTransforms) {
  Rng rng(63);
  const CVec ref = random_bpsk(rng, 64);
  CVec stream(2200);
  for (auto& v : stream) v = cplx{rng.gaussian(), rng.gaussian()};

  SlidingCorrelator corr(ref);
  corr.prepare(stream);
  EXPECT_EQ(corr.positions(), stream.size() - ref.size() + 1);
  CVec out;
  for (const double df : {5e-4, 0.0, -1.7e-3}) {
    corr.correlate(df, out);
    const CVec naive = sliding_correlation_naive(ref, stream, df);
    ASSERT_EQ(out.size(), naive.size());
    for (std::size_t d = 0; d < out.size(); ++d)
      ASSERT_LT(std::abs(out[d] - naive[d]), 1e-9) << "df=" << df << " d=" << d;
  }
}

TEST(Correlate, WindowedEnergyMatchesDirectSum) {
  Rng rng(64);
  // Longer than the re-anchor block so the compensation path is exercised.
  CVec stream(5000);
  for (auto& v : stream) v = cplx{rng.gaussian(), rng.gaussian()};
  const std::size_t w = 64;
  const auto fast = windowed_energy(stream, w);
  ASSERT_EQ(fast.size(), stream.size() - w + 1);
  for (std::size_t d = 0; d < fast.size(); ++d) {
    double direct = 0.0;
    for (std::size_t k = 0; k < w; ++k) direct += std::norm(stream[d + k]);
    ASSERT_NEAR(fast[d], direct, 1e-9 * std::max(direct, 1.0)) << "d=" << d;
  }
  EXPECT_TRUE(windowed_energy(stream, 0).empty());
  EXPECT_TRUE(windowed_energy(CVec(10), 11).empty());
}

TEST(Correlate, FindPeaksRealProfileMatchesComplex) {
  Rng rng(65);
  CVec corr(300);
  for (auto& v : corr) v = cplx{rng.gaussian(), rng.gaussian()};
  corr[77] = {9.0, 0.0};
  corr[210] = {7.5, 0.0};
  std::vector<double> mag(corr.size());
  for (std::size_t i = 0; i < corr.size(); ++i) mag[i] = std::abs(corr[i]);
  EXPECT_EQ(find_peaks(corr, 5.0, 12), find_peaks(mag, 5.0, 12));
}

TEST(Scratch, SlotsKeepIdentityAcrossGrowth) {
  ScratchArena arena;
  CVec& a = arena.cvec(0, 100);
  a[0] = cplx{42.0, 0.0};
  // Materializing a later slot must not invalidate the first reference.
  CVec& b = arena.czero(5, 1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(a[0], (cplx{42.0, 0.0}));
  EXPECT_EQ(&a, &arena.cvec(0, 50));
  auto& d = arena.dvec(2, 64);
  EXPECT_EQ(d.size(), 64u);
}

}  // namespace
}  // namespace zz::sig
