// Direct unit coverage for the §4.5 greedy scheduler on 3+ overlapped
// packets: chunk ordering of the decode schedule, completeness bookkeeping,
// and the equation-conditioning/selection entry points the n-sender
// scenario engine drives (previously exercised only through integration
// paths).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "zz/zigzag/scheduler.h"

namespace zz::zigzag {
namespace {

// Fig 4-6(a): three packets, three collisions, distinct offset mixes.
Pattern fig_4_6a() {
  Pattern p;
  p.lengths = {100, 100, 100};
  p.collisions = {{{0, 0}, {1, 20}, {2, 50}},
                  {{0, 0}, {1, 60}, {2, 20}},
                  {{0, 0}, {1, 40}, {2, 80}}};
  return p;
}

TEST(SchedulerChunkOrder, FirstChunkIsAnInterferenceFreeOverhang) {
  // Step 1 of §4.5: decode an overhanging interference-free chunk. In
  // Fig 4-6(a) the earliest such chunk is packet 0's head before the first
  // interferer arrives at offset 20 in collision 0.
  const auto res = greedy_schedule(fig_4_6a());
  ASSERT_TRUE(res.complete);
  ASSERT_FALSE(res.steps.empty());
  const auto& first = res.steps.front();
  EXPECT_EQ(first.collision, 0u);
  EXPECT_EQ(first.packet, 0u);
  EXPECT_EQ(first.k0, 0u);
  EXPECT_EQ(first.k1, 20u);
}

TEST(SchedulerChunkOrder, EveryChunkBordersDecodedTerritoryOrAnEdge) {
  // The zigzag propagates: each decoded run either starts at a packet edge
  // or directly extends symbols decoded by an earlier chunk of the same
  // packet — there are no disconnected mid-packet islands in the schedule.
  const auto res = greedy_schedule(fig_4_6a());
  ASSERT_TRUE(res.complete);
  std::vector<std::vector<std::uint8_t>> known(3,
                                               std::vector<std::uint8_t>(100, 0));
  for (const auto& st : res.steps) {
    const bool at_edge = st.k0 == 0 || st.k1 == 100;
    const bool extends_prefix = st.k0 > 0 && known[st.packet][st.k0 - 1];
    const bool extends_suffix = st.k1 < 100 && known[st.packet][st.k1];
    EXPECT_TRUE(at_edge || extends_prefix || extends_suffix)
        << "chunk [" << st.k0 << ", " << st.k1 << ") of packet " << st.packet
        << " floats free";
    for (std::size_t k = st.k0; k < st.k1; ++k) known[st.packet][k] = 1;
  }
}

TEST(SchedulerChunkOrder, StepsCoverEverySymbolExactlyOnce) {
  const auto res = greedy_schedule(fig_4_6a());
  ASSERT_TRUE(res.complete);
  std::vector<std::vector<int>> cover(3, std::vector<int>(100, 0));
  for (const auto& st : res.steps) {
    ASSERT_LT(st.packet, 3u);
    ASSERT_LE(st.k1, 100u);
    for (std::size_t k = st.k0; k < st.k1; ++k) ++cover[st.packet][k];
  }
  for (const auto& pkt : cover)
    for (const int c : pkt) EXPECT_EQ(c, 1);
  EXPECT_TRUE(res.undecoded_packets.empty());
}

TEST(SchedulerChunkOrder, ThreePacketsNeedAThirdEquation) {
  // Two collisions of three mutually-overlapped packets leave one packet
  // pair tied (Assertion 4.5.1 needs n equations for n unknowns here).
  Pattern p;
  p.lengths = {100, 100, 100};
  p.collisions = {{{0, 0}, {1, 20}, {2, 50}}, {{0, 0}, {1, 60}, {2, 20}}};
  const auto res = greedy_schedule(p);
  EXPECT_FALSE(res.complete);
  EXPECT_FALSE(res.undecoded_packets.empty());
  // Adding the third distinct-offset collision resolves it.
  p.collisions.push_back({{0, 0}, {1, 40}, {2, 80}});
  EXPECT_TRUE(greedy_schedule(p).complete);
}

TEST(SchedulerChunkOrder, FivePacketsFiveRotatedCollisionsDecode) {
  // n = 5 packets × 5 collisions with rotated offset assignments — the
  // n-sender sweep's geometry in the abstract.
  Pattern p;
  const std::size_t n = 5;
  p.lengths.assign(n, 200);
  const std::ptrdiff_t offs[n] = {0, 35, 90, 140, 260};
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<Pattern::Placement> coll;
    for (std::size_t i = 0; i < n; ++i)
      coll.push_back({i, offs[(i + c) % n]});
    p.collisions.push_back(coll);
  }
  const auto res = greedy_schedule(p);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(pairwise_condition_holds(p));
}

TEST(SchedulerChunkOrder, GuardCanStarveTightOffsets) {
  // A guard wider than the offset gap erases the bootstrap chunk.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 4}}, {{0, 0}, {1, 8}}};
  EXPECT_TRUE(greedy_schedule(p, 0).complete);
  EXPECT_FALSE(greedy_schedule(p, 16).complete);
}

TEST(EquationSelection, ConditioningIsMinPairwiseSeparation) {
  Pattern p;
  p.lengths = {100, 100, 100};
  p.collisions = {{{0, 0}, {1, 7}, {2, 90}},    // min gap 7
                  {{0, 0}, {1, 55}, {2, 110}},  // min gap 55
                  {{0, 12}, {1, 12}, {2, 40}},  // duplicate offsets: 0
                  {{0, 5}}};                    // lone packet: unconstrained
  EXPECT_EQ(equation_conditioning(p, 0), 7u);
  EXPECT_EQ(equation_conditioning(p, 1), 55u);
  EXPECT_EQ(equation_conditioning(p, 2), 0u);
  EXPECT_EQ(equation_conditioning(p, 3), static_cast<std::size_t>(-1));
  EXPECT_THROW((void)equation_conditioning(p, 4), std::invalid_argument);
}

TEST(EquationSelection, OrdersBestConditionedFirstKeepingTies) {
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 10}},   // 10
                  {{0, 0}, {1, 80}},   // 80
                  {{0, 0}, {1, 10}},   // 10 again (tie with collision 0)
                  {{0, 0}, {1, 40}}};  // 40
  const auto order = order_equations(p);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 0u);  // stable: arrival order within the tie
  EXPECT_EQ(order[3], 2u);
}

TEST(EquationSelection, EmptyPatternYieldsEmptyOrder) {
  EXPECT_TRUE(order_equations(Pattern{}).empty());
}

}  // namespace
}  // namespace zz::zigzag
