// Soak gates for the AP-farm (zz/farm/farm.h): the endless-stream shape.
//
// A farm soaking for hours must reach a steady state that (a) performs no
// heap allocation per episode, (b) retains a bounded working set no matter
// how many episodes have played, and (c) keeps its caches warm. These are
// the gates bench/ap_farm --soak enforces in CI; here they are pinned as
// tests with the allocation-counting hook (zz/common/alloc_hook.h) as the
// measuring instrument.
#include <gtest/gtest.h>

#include "zz/common/alloc_hook.h"
#include "zz/farm/farm.h"
#include "zz/testbed/scenario.h"

namespace zz::farm {
namespace {

using testbed::CollectMode;
using testbed::ReceiverKind;

std::vector<CellSpec> soak_farm() {
  std::vector<CellSpec> cells;
  for (const double snr : {12.0, 10.5}) {
    CellSpec cell;
    cell.scenario =
        testbed::hidden_n_scenario(2, snr, ReceiverKind::ZigZag);
    cell.scenario.cfg.packets_per_sender = 2;
    cell.scenario.cfg.payload_bytes = 200;
    cells.push_back(cell);
  }
  return cells;
}

TEST(FarmSoak, SteadyStateEpisodesDoNotAllocate) {
  // Soak mode: each cell cycles 2 distinct episode seeds with the episode
  // memo on. The first run computes (and allocates — scenario engines,
  // waveforms, decoder state); every later run must serve all episodes
  // from the memo with ZERO operator-new calls inside episode processing,
  // measured per episode by the allocation hook on the worker threads.
  FarmOptions opt;
  opt.seed = 51;
  opt.workers = 2;
  opt.distinct_seeds = 2;
  ApFarm farm(soak_farm(), opt);

  const FarmResult warmup = farm.run(4);
  EXPECT_GT(warmup.episode_allocs, 0u);  // the engines really ran
  EXPECT_GT(warmup.memo_misses, 0u);

  for (int round = 0; round < 3; ++round) {
    const FarmResult steady = farm.run(4);
    EXPECT_EQ(steady.episode_allocs, 0u)
        << "steady-state episode allocated (round " << round << ")";
    EXPECT_EQ(steady.memo_hits, steady.episodes);
    EXPECT_EQ(steady.memo_misses, 0u);
    // Results stay bit-identical to the warmup's.
    ASSERT_EQ(steady.cells.size(), warmup.cells.size());
    for (std::size_t c = 0; c < steady.cells.size(); ++c) {
      EXPECT_EQ(steady.cells[c].delivered, warmup.cells[c].delivered);
      EXPECT_EQ(steady.cells[c].rounds, warmup.cells[c].rounds);
    }
  }
}

TEST(FarmSoak, RetainedHeapIsBoundedAcrossRuns) {
  // The farm's working set must plateau: after warmup, playing more
  // steady-state episodes may not grow the net live heap (the memo and
  // the per-worker shards/arenas are the only retained state, and they
  // are warm). Net growth is measured with the hook's live-byte counter;
  // a generous slack absorbs allocator-internal noise.
  FarmOptions opt;
  opt.seed = 52;
  opt.workers = 2;
  opt.distinct_seeds = 2;
  ApFarm farm(soak_farm(), opt);
  (void)farm.run(4);   // warmup: compute + memoize every distinct episode
  (void)farm.run(4);   // first steady run settles transient capacity
  const std::int64_t plateau = live_heap_bytes();
  for (int round = 0; round < 3; ++round) (void)farm.run(4);
  const std::int64_t growth = live_heap_bytes() - plateau;
  EXPECT_LT(growth, 256 * 1024) << "steady-state runs keep retaining memory";
}

TEST(FarmSoak, DecodeCacheHitRateMonotoneNonDecreasing) {
  // With the episode memo OFF but seed cycling ON, repeated runs re-play
  // the same episodes through the engine; one worker means one decode
  // cache shard, so every chunk fingerprint a replay produces is already
  // stored. The cumulative hit rate must be non-decreasing run over run,
  // and strictly higher after the first replay than after the cold run.
  FarmOptions opt;
  opt.seed = 53;
  opt.workers = 1;
  opt.distinct_seeds = 2;
  opt.memoize_episodes = false;
  ApFarm farm(soak_farm(), opt);

  const auto rate = [](const FarmResult& r) {
    const std::uint64_t total = r.decode_cache_hits + r.decode_cache_misses;
    return total ? static_cast<double>(r.decode_cache_hits) /
                       static_cast<double>(total)
                 : 0.0;
  };

  const FarmResult cold = farm.run(2);
  EXPECT_GT(cold.decode_cache_misses, 0u);
  EXPECT_EQ(cold.memo_hits, 0u);  // memo disabled: every episode executed
  double last = rate(cold);
  const std::uint64_t misses_after_cold = cold.decode_cache_misses;

  for (int round = 0; round < 3; ++round) {
    const FarmResult warm = farm.run(2);
    const double r = rate(warm);
    EXPECT_GE(r, last) << "hit rate regressed in round " << round;
    last = r;
    // A single shard replaying identical episodes never misses again.
    EXPECT_EQ(warm.decode_cache_misses, misses_after_cold)
        << "warm replay re-ran the black-box decoder (round " << round << ")";
  }
  EXPECT_GT(last, rate(cold));
}

}  // namespace
}  // namespace zz::farm
