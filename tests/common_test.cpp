// Unit tests for zz::common — RNG, CRC-32, math helpers, statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "zz/common/crc32.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"

namespace zz {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianComplexVariance) {
  Rng r(11);
  const double target = 2.5;
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += std::norm(r.gaussian_c(target));
  EXPECT_NEAR(acc / n, target, 0.1);
}

TEST(Rng, UnitPhasorMagnitude) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(std::abs(r.unit_phasor()), 1.0, 1e-12);
}

TEST(Rng, BitsAreBalanced) {
  Rng r(5);
  const Bits b = r.bits(10000);
  double ones = 0;
  for (auto v : b) ones += v;
  EXPECT_NEAR(ones / 10000.0, 0.5, 0.03);
}

TEST(Rng, ForkIndependence) {
  Rng parent(9);
  Rng child = parent.fork();
  // Child stream should not mirror parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform() == child.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Crc32, KnownVector) {
  // Standard check value for "123456789".
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyBuffer) { EXPECT_EQ(crc32({}), 0x00000000u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng r(13);
  const Bytes data = r.bytes(257);
  Crc32 inc;
  for (auto b : data) inc.update(b);
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng r(17);
  Bytes data = r.bytes(64);
  const auto before = crc32(data);
  data[20] ^= 0x10;
  EXPECT_NE(before, crc32(data));
}

TEST(MathUtil, DbRoundtrip) {
  EXPECT_NEAR(db_to_lin(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_lin(3.0), 1.9953, 1e-3);
  EXPECT_NEAR(lin_to_db(db_to_lin(7.3)), 7.3, 1e-10);
}

TEST(MathUtil, Sinc) {
  EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(2.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(0.5), 2.0 / kPi, 1e-12);
}

TEST(MathUtil, WrapPhase) {
  EXPECT_NEAR(wrap_phase(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_phase(-3.0 * kPi), kPi, 1e-9);
  EXPECT_NEAR(wrap_phase(0.3), 0.3, 1e-12);
}

TEST(MathUtil, HammingAndBer) {
  const Bits a{0, 1, 1, 0, 1};
  const Bits b{0, 1, 0, 0, 1};
  EXPECT_EQ(hamming_distance(a, b), 1u);
  EXPECT_NEAR(bit_error_rate(a, b), 0.2, 1e-12);
  // Length mismatch counts the tail as errors.
  const Bits c{0, 1, 1, 0, 1, 1, 1};
  EXPECT_EQ(hamming_distance(a, c), 2u);
}

TEST(MathUtil, MeanPowerAndEnergy) {
  const CVec x{{3.0, 4.0}, {0.0, 0.0}};
  EXPECT_NEAR(energy(x), 25.0, 1e-12);
  EXPECT_NEAR(mean_power(x), 12.5, 1e-12);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Cdf, PercentilesAndFractions) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_NEAR(c.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(c.percentile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(c.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(c.fraction_below(50.0), 0.5, 1e-12);
  EXPECT_NEAR(c.mean(), 50.5, 1e-12);
}

TEST(Cdf, CurveIsMonotone) {
  Rng r(23);
  Cdf c;
  for (int i = 0; i < 500; ++i) c.add(r.gaussian());
  const auto pts = c.curve(11);
  ASSERT_EQ(pts.size(), 11u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(Table, Formatting) {
  EXPECT_EQ(Table::pct(0.823, 1), "82.3%");
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  Table t({"a", "b"});
  t.add_row({"1"});  // short row padded
  t.print("smoke");  // must not crash
}

}  // namespace
}  // namespace zz
