// Unit tests for zz::common — RNG, CRC-32, math helpers, statistics, the
// worker pool's work-stealing episode queue and the allocation-counting
// hook the AP-farm soak gates are built on.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "zz/common/alloc_hook.h"
#include "zz/common/atomic.h"
#include "zz/common/crc32.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"
#include "zz/common/thread_pool.h"

namespace zz {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianComplexVariance) {
  Rng r(11);
  const double target = 2.5;
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += std::norm(r.gaussian_c(target));
  EXPECT_NEAR(acc / n, target, 0.1);
}

TEST(Rng, UnitPhasorMagnitude) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(std::abs(r.unit_phasor()), 1.0, 1e-12);
}

TEST(Rng, BitsAreBalanced) {
  Rng r(5);
  const Bits b = r.bits(10000);
  double ones = 0;
  for (auto v : b) ones += v;
  EXPECT_NEAR(ones / 10000.0, 0.5, 0.03);
}

TEST(Rng, ForkIndependence) {
  Rng parent(9);
  Rng child = parent.fork();
  // Child stream should not mirror parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform() == child.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Crc32, KnownVector) {
  // Standard check value for "123456789".
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyBuffer) { EXPECT_EQ(crc32({}), 0x00000000u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng r(13);
  const Bytes data = r.bytes(257);
  Crc32 inc;
  for (auto b : data) inc.update(b);
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng r(17);
  Bytes data = r.bytes(64);
  const auto before = crc32(data);
  data[20] ^= 0x10;
  EXPECT_NE(before, crc32(data));
}

TEST(MathUtil, DbRoundtrip) {
  EXPECT_NEAR(db_to_lin(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_lin(3.0), 1.9953, 1e-3);
  EXPECT_NEAR(lin_to_db(db_to_lin(7.3)), 7.3, 1e-10);
}

TEST(MathUtil, Sinc) {
  EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(2.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(0.5), 2.0 / kPi, 1e-12);
}

TEST(MathUtil, WrapPhase) {
  EXPECT_NEAR(wrap_phase(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_phase(-3.0 * kPi), kPi, 1e-9);
  EXPECT_NEAR(wrap_phase(0.3), 0.3, 1e-12);
}

TEST(MathUtil, HammingAndBer) {
  const Bits a{0, 1, 1, 0, 1};
  const Bits b{0, 1, 0, 0, 1};
  EXPECT_EQ(hamming_distance(a, b), 1u);
  EXPECT_NEAR(bit_error_rate(a, b), 0.2, 1e-12);
  // Length mismatch counts the tail as errors.
  const Bits c{0, 1, 1, 0, 1, 1, 1};
  EXPECT_EQ(hamming_distance(a, c), 2u);
}

TEST(MathUtil, MeanPowerAndEnergy) {
  const CVec x{{3.0, 4.0}, {0.0, 0.0}};
  EXPECT_NEAR(energy(x), 25.0, 1e-12);
  EXPECT_NEAR(mean_power(x), 12.5, 1e-12);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Cdf, PercentilesAndFractions) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_NEAR(c.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(c.percentile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(c.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(c.fraction_below(50.0), 0.5, 1e-12);
  EXPECT_NEAR(c.mean(), 50.5, 1e-12);
}

TEST(Cdf, CurveIsMonotone) {
  Rng r(23);
  Cdf c;
  for (int i = 0; i < 500; ++i) c.add(r.gaussian());
  const auto pts = c.curve(11);
  ASSERT_EQ(pts.size(), 11u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(Table, Formatting) {
  EXPECT_EQ(Table::pct(0.823, 1), "82.3%");
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  Table t({"a", "b"});
  t.add_row({"1"});  // short row padded
  t.print("smoke");  // must not crash
}

// ------------------------------------------- work-stealing episode queue

TEST(ThreadPoolSharded, EveryIndexRunsExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 500;
    std::vector<Atomic<int>> hits(kN);
    pool.parallel_for_sharded(kN, [&](std::size_t i, std::size_t) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
          << "index " << i << " at " << threads << " threads";
  }
}

TEST(ThreadPoolSharded, WorkerIdsNameExclusiveState) {
  // Per-worker state keyed by the queue id must never be entered by two
  // threads at once — the contract the farm's arenas and cache shards
  // rely on. Unsynchronized per-worker counters surface any violation as
  // a lost update (and as a TSan report on the sanitizer legs).
  ThreadPool pool(4);
  constexpr std::size_t kN = 2000;
  std::vector<std::size_t> per_worker(pool.size(), 0);
  pool.parallel_for_sharded(kN, [&](std::size_t, std::size_t w) {
    ASSERT_LT(w, pool.size());
    ++per_worker[w];
  });
  std::size_t total = 0;
  for (const std::size_t c : per_worker) total += c;
  EXPECT_EQ(total, kN);
}

TEST(ThreadPoolSharded, StealsAcrossSkewedBlocks) {
  // Front-loaded costs: the first block's indices are slow, the rest
  // instant. With stealing, fast workers must end up executing some of
  // the slow block's indices (the back half of its range).
  ThreadPool pool(4);
  if (pool.size() < 2) GTEST_SKIP() << "needs a real pool";
  constexpr std::size_t kN = 64;
  std::vector<Atomic<int>> hits(kN);
  pool.parallel_for_sharded(kN, [&](std::size_t i, std::size_t w) {
    if (i < kN / 4 && w == 0)  // only the owner is slow on its own block
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1);
}

TEST(ThreadPoolSharded, DegenerateSizes) {
  ThreadPool pool(3);
  std::size_t ran = 0;
  pool.parallel_for_sharded(0, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran, 0u);
  Atomic<std::size_t> ran1{0};
  pool.parallel_for_sharded(1, [&](std::size_t i, std::size_t w) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(w, 0u);
    ran1.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran1.load(std::memory_order_relaxed), 1u);
  // Fewer indices than workers: queue ids stay within [0, n).
  Atomic<std::size_t> ran2{0};
  pool.parallel_for_sharded(2, [&](std::size_t, std::size_t w) {
    EXPECT_LT(w, 2u);
    ran2.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran2.load(std::memory_order_relaxed), 2u);
}

TEST(ThreadPoolSharded, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_sharded(
          8,
          [&](std::size_t i, std::size_t) {
            if (i == 3) throw std::runtime_error("boom");
          }),
      std::runtime_error);
}

// ------------------------------------------------ allocation-count hook

// Opaque escape barrier: GCC at -O2 may elide a paired new/delete outright
// (allocation elision treats operator new as a removable builtin — which is
// fine for the soak gate, an elided allocation is not allocator churn), but
// these tests need the call to actually reach the hook.
template <typename T>
void keep_alloc(T const& p) {
  asm volatile("" : : "g"(p) : "memory");
}

TEST(AllocHook, TallyCountsScopedAllocations) {
  std::uint64_t in_scope, in_scope_bytes, empty_scope;
  {
    AllocTally tally;
    auto* v = new std::vector<double>(4096);
    keep_alloc(v);
    delete v;
    in_scope = tally.allocs();
    in_scope_bytes = tally.alloc_bytes();
  }
  {
    AllocTally tally;
    empty_scope = tally.allocs();
  }
  EXPECT_GE(in_scope, 1u);  // at least the 32 KiB buffer
  EXPECT_GE(in_scope_bytes, 4096u * sizeof(double));
  EXPECT_EQ(empty_scope, 0u);
}

TEST(AllocHook, CountersAreThreadLocal) {
  const AllocCounts before = thread_alloc_counts();
  std::uint64_t other_thread = 0;
  std::thread t([&] {
    AllocTally tally;
    auto* p = new int[256];
    keep_alloc(p);
    delete[] p;
    other_thread = tally.allocs();
  });
  t.join();
  // The worker's allocations land on its own counter, not ours. (join()
  // and thread teardown may allocate on this thread; only assert the
  // worker saw its own traffic.)
  EXPECT_GE(other_thread, 1u);
  EXPECT_GE(thread_alloc_counts().allocs, before.allocs);
}

TEST(AllocHook, LiveBytesTrackNetHeap) {
  const std::int64_t before = live_heap_bytes();
  constexpr std::size_t kBytes = 1 << 20;
  auto* p = new char[kBytes];
  keep_alloc(p);
  const std::int64_t during = live_heap_bytes();
  const std::int64_t peak = peak_heap_bytes();
  delete[] p;
  const std::int64_t after = live_heap_bytes();
  EXPECT_GE(during - before, static_cast<std::int64_t>(kBytes));
  EXPECT_GE(peak, during);
  EXPECT_LT(after, during);
}

TEST(AllocHook, CountsEveryReplacementOperatorVariant) {
  // Direct operator calls (never elidable — elision is a new-expression
  // privilege) through every replacement the hook installs: plain, array,
  // nothrow, over-aligned, and their delete counterparts. Each variant
  // must tick the same thread-local counter.
  AllocTally tally;
  constexpr std::align_val_t kAlign{64};

  void* a = ::operator new(32);
  keep_alloc(a);
  ::operator delete(a, std::size_t{32});
  void* b = ::operator new[](32);
  keep_alloc(b);
  ::operator delete[](b, std::size_t{32});

  void* c = ::operator new(32, std::nothrow);
  keep_alloc(c);
  ASSERT_NE(c, nullptr);
  ::operator delete(c, std::nothrow);
  void* d = ::operator new[](32, std::nothrow);
  keep_alloc(d);
  ASSERT_NE(d, nullptr);
  ::operator delete[](d, std::nothrow);

  void* e = ::operator new(32, kAlign);
  keep_alloc(e);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(e) % 64, 0u);
  ::operator delete(e, std::size_t{32}, kAlign);
  void* f = ::operator new[](32, kAlign);
  keep_alloc(f);
  ::operator delete[](f, kAlign);

  void* g = ::operator new(32, kAlign, std::nothrow);
  keep_alloc(g);
  ASSERT_NE(g, nullptr);
  ::operator delete(g, kAlign, std::nothrow);
  void* h = ::operator new[](32, kAlign, std::nothrow);
  keep_alloc(h);
  ASSERT_NE(h, nullptr);
  ::operator delete[](h, kAlign, std::nothrow);

  // Zero-size requests are legal and must return distinct pointers.
  void* z = ::operator new(0);
  keep_alloc(z);
  ASSERT_NE(z, nullptr);
  ::operator delete(z);
  // Deleting nullptr is a no-op, not a count.
  ::operator delete(static_cast<void*>(nullptr));
  ::operator delete[](static_cast<void*>(nullptr));

  EXPECT_EQ(tally.allocs(), 9u);
  EXPECT_GE(tally.frees(), 9u);
}

// Sanitizer allocators treat absurd requests as a hard error (and abort
// with halt_on_error) before the hook's failure path can run — exercise
// the bad_alloc/nothrow-null routes only in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ZZ_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ZZ_TEST_UNDER_SANITIZER 1
#endif
#endif
#ifndef ZZ_TEST_UNDER_SANITIZER
TEST(AllocHook, FailedAllocationsThrowOrReturnNull) {
  // Far beyond any address space, but not so large the aligned padding
  // arithmetic overflows.
  constexpr std::size_t kHuge = std::size_t{1} << 60;
  constexpr std::align_val_t kAlign{64};
  EXPECT_THROW(static_cast<void>(::operator new(kHuge)), std::bad_alloc);
  EXPECT_THROW(static_cast<void>(::operator new(kHuge, kAlign)),
               std::bad_alloc);
  EXPECT_EQ(::operator new(kHuge, std::nothrow), nullptr);
  EXPECT_EQ(::operator new[](kHuge, std::nothrow), nullptr);
  EXPECT_EQ(::operator new(kHuge, kAlign, std::nothrow), nullptr);
  EXPECT_EQ(::operator new[](kHuge, kAlign, std::nothrow), nullptr);
}
#endif

}  // namespace
}  // namespace zz
