// Tests for zz::mac — DCF timing, Lemma 4.4.1 ACK feasibility, and the
// Fig 4-7 greedy-failure Monte Carlo.
#include <gtest/gtest.h>

#include "zz/common/rng.h"
#include "zz/mac/offsets.h"
#include "zz/mac/timing.h"

namespace zz::mac {
namespace {

TEST(Timing, ExponentialBackoffDoublesAndSaturates) {
  DcfTiming t;
  EXPECT_EQ(t.cw_after(0), 31);
  EXPECT_EQ(t.cw_after(1), 63);
  EXPECT_EQ(t.cw_after(2), 127);
  EXPECT_EQ(t.cw_after(5), 1023);
  EXPECT_EQ(t.cw_after(12), 1023);  // capped at CWmax
}

TEST(Timing, AckBoundMatchesLemma441) {
  // Appendix A: S=20us, ACK=30us, SIFS=10us, window 2·CW → P >= 0.9375.
  EXPECT_NEAR(ack_offset_probability_bound(), 0.9375, 1e-9);
}

TEST(Timing, MonteCarloAgreesWithBound) {
  Rng rng(1);
  const double p = ack_offset_probability_mc(rng, 300000);
  // The bound is a lower bound; the empirical value sits at or above it.
  EXPECT_GE(p, 0.93);
  EXPECT_LE(p, 1.0);
  EXPECT_NEAR(p, 0.9375, 0.02);
}

TEST(Offsets, TwoNodesRarelyFail) {
  Rng rng(2);
  OffsetSimConfig cfg;
  cfg.cw = 16;
  const double f = greedy_failure_probability(rng, 2, 4000, cfg);
  // Failure needs identical offset differences in both collisions.
  EXPECT_LT(f, 0.15);
  EXPECT_GT(f, 0.0);  // but it does happen (Assertion 4.5.1)
}

TEST(Offsets, FailureDropsWithLargerWindow) {
  Rng rng(3);
  OffsetSimConfig small, large;
  small.cw = 8;
  large.cw = 32;
  const double fs = greedy_failure_probability(rng, 3, 3000, small);
  const double fl = greedy_failure_probability(rng, 3, 3000, large);
  EXPECT_GT(fs, fl);  // bigger windows → more distinct offsets
}

TEST(Offsets, ExponentialBackoffBeatsSmallFixedWindow) {
  Rng rng(4);
  OffsetSimConfig fixed, beb;
  fixed.cw = 8;
  beb.exponential_backoff = true;
  const double ff = greedy_failure_probability(rng, 4, 2000, fixed);
  const double fb = greedy_failure_probability(rng, 4, 2000, beb);
  EXPECT_GE(ff, fb);  // Fig 4-7(b) sits below Fig 4-7(a) at cw=8
}

TEST(Offsets, FailureProbabilityIsSmallForManyNodes) {
  Rng rng(5);
  OffsetSimConfig cfg;
  cfg.cw = 32;
  // Fig 4-7: even at 5 nodes the greedy algorithm almost always succeeds.
  EXPECT_LT(greedy_failure_probability(rng, 5, 800, cfg), 0.1);
}

}  // namespace
}  // namespace zz::mac
