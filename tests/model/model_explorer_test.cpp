// Self-tests of the interleaving explorer engine itself
// (zz/common/model/explorer.h): the memory model has teeth (relaxed
// message passing is caught, release/acquire passes), every façade access
// is a scheduling yield point, and model::Mutex detects deadlock and
// provides acquire/release view propagation.
#include <string>

#include <gtest/gtest.h>

#include "zz/common/atomic.h"
#include "zz/common/model/explorer.h"

namespace zz::model {
namespace {

Options exhaustive(int threads) {
  Options opt;
  opt.threads = threads;
  opt.max_preemptions = -1;
  return opt;
}

// ---- message passing: the canonical release/acquire litmus --------------

struct MessagePassingRelease {
  Atomic<int> data{0};
  Atomic<int> flag{0};
  void thread(int t) {
    if (t == 0) {
      data.store(1, std::memory_order_relaxed);
      flag.store(1, std::memory_order_release);
    } else if (flag.load(std::memory_order_acquire) == 1) {
      ZZ_MODEL_ASSERT(data.load(std::memory_order_relaxed) == 1,
                      "acquire reader of the flag saw stale data");
    }
  }
  void finish() {}
};

struct MessagePassingRelaxed {
  Atomic<int> data{0};
  Atomic<int> flag{0};
  void thread(int t) {
    if (t == 0) {
      data.store(1, std::memory_order_relaxed);
      flag.store(1, std::memory_order_relaxed);  // BUG under test
    } else if (flag.load(std::memory_order_relaxed) == 1) {
      ZZ_MODEL_ASSERT(data.load(std::memory_order_relaxed) == 1,
                      "relaxed reader saw stale data");
    }
  }
  void finish() {}
};

TEST(ModelExplorer, ReleaseAcquireMessagePassingPasses) {
  const Result r = explore<MessagePassingRelease>(exhaustive(2));
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_FALSE(r.cap_hit);
  EXPECT_GT(r.interleavings, 1u);
}

TEST(ModelExplorer, RelaxedMessagePassingIsCaught) {
  const Result r = explore<MessagePassingRelaxed>(exhaustive(2));
  EXPECT_TRUE(r.failed)
      << "the store-history window failed to expose the stale read";
  EXPECT_NE(r.failure.find("stale data"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("counterexample schedule"), std::string::npos)
      << "failure must carry the offending interleaving trace";
}

// ---- yield points: every façade access is a scheduling decision ---------

struct FiveOps {
  Atomic<std::uint64_t> a{0};
  void thread(int) {
    a.store(1, std::memory_order_relaxed);               // op 1
    (void)a.load(std::memory_order_relaxed);             // op 2
    (void)a.fetch_add(1, std::memory_order_relaxed);     // op 3
    std::uint64_t e = 2;
    (void)a.compare_exchange_strong(e, 3, std::memory_order_acq_rel,
                                    std::memory_order_relaxed);  // op 4
    (void)a.exchange(4, std::memory_order_acq_rel);      // op 5
  }
  void finish() {
    ZZ_MODEL_ASSERT(a.load(std::memory_order_relaxed) == 4, "lost op");
  }
};

TEST(ModelExplorer, EveryFacadeAccessIsAYieldPoint) {
  // One thread: no scheduling or visibility freedom, so exactly one
  // schedule runs — and every modeled access must have announced.
  const Result r = explore<FiveOps>(exhaustive(1));
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_EQ(r.interleavings, 1u);
  EXPECT_EQ(r.ops, 5u);
  EXPECT_EQ(r.choice_points, 0u);
}

// ---- model::Mutex -------------------------------------------------------

struct OppositeLockOrder {
  Mutex a, b;
  void thread(int t) {
    if (t == 0) {
      a.lock();
      b.lock();
      b.unlock();
      a.unlock();
    } else {
      b.lock();
      a.lock();
      a.unlock();
      b.unlock();
    }
  }
  void finish() {}
};

TEST(ModelExplorer, MutexDeadlockIsDetected) {
  const Result r = explore<OppositeLockOrder>(exhaustive(2));
  EXPECT_TRUE(r.failed) << "AB/BA lock order must deadlock on some schedule";
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

struct MutexCounter {
  Mutex mu;
  Atomic<int> n{0};
  void thread(int) {
    mu.lock();
    const int v = n.load(std::memory_order_relaxed);
    n.store(v + 1, std::memory_order_relaxed);
    mu.unlock();
  }
  void finish() {
    ZZ_MODEL_ASSERT(n.load(std::memory_order_relaxed) == 3,
                    "mutex failed to serialize (or propagate) the "
                    "relaxed read-modify-write");
  }
};

TEST(ModelExplorer, MutexSerializesAndPropagatesViews) {
  // Relaxed accesses under the lock are exactly the DecodeCache pattern:
  // correctness rests on the mutex's built-in acquire/release views.
  const Result r = explore<MutexCounter>(exhaustive(3));
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GT(r.interleavings, 1u);
}

}  // namespace
}  // namespace zz::model
