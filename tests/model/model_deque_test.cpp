// ThreadPool lock-free kernels under the interleaving explorer: the
// work-stealing range deque (range_pop_front / range_steal_back) and the
// generation-tagged batch ticket (ticket_claim) — the exact transitions
// parallel_for_sharded and parallel_for run (zz/common/steal_range.h).
#include <cstdio>

#include <gtest/gtest.h>

#include "zz/common/model/protocols.h"

namespace zz::model {
namespace {

TEST(ModelDeque, EveryIndexClaimedExactlyOnce) {
  const Result r = run_deque_steal();
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GE(r.interleavings, 1000u)
      << "exploration breadth regressed below the acceptance floor";
  std::printf("[model] deque-steal: %llu interleavings, %llu ops\n",
              static_cast<unsigned long long>(r.interleavings),
              static_cast<unsigned long long>(r.ops));
}

TEST(ModelDeque, TicketGenerationsNeverCross) {
  const Result r = run_ticket_generation();
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GE(r.interleavings, 1000u)
      << "exploration breadth regressed below the acceptance floor";
  std::printf("[model] ticket-generation: %llu interleavings, %llu ops\n",
              static_cast<unsigned long long>(r.interleavings),
              static_cast<unsigned long long>(r.ops));
}

}  // namespace
}  // namespace zz::model
