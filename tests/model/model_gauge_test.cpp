// Gauge and guard protocols under the interleaving explorer: the
// alloc-hook live/peak counters (fetch_max), the ReentryFlag /
// AtomicFlagGuard try-lock region, and the ScratchArena confinement
// counter whose acq_rel upgrade is this PR's bugfix — including the
// relaxed variant the explorer must catch (the pinned regression).
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "zz/common/model/protocols.h"

namespace zz::model {
namespace {

TEST(ModelGauge, PeakNeverLosesAConcurrentMaximum) {
  const Result r = run_peak_gauge();
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GE(r.interleavings, 1000u)
      << "exploration breadth regressed below the acceptance floor";
  std::printf("[model] peak-gauge: %llu interleavings, %llu ops\n",
              static_cast<unsigned long long>(r.interleavings),
              static_cast<unsigned long long>(r.ops));
}

TEST(ModelGauge, ReentryFlagRegionIsExclusiveAndHandsOff) {
  const Result r = run_reentry_flag();
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GE(r.interleavings, 1000u)
      << "exploration breadth regressed below the acceptance floor";
  std::printf("[model] reentry-flag: %llu interleavings, %llu ops\n",
              static_cast<unsigned long long>(r.interleavings),
              static_cast<unsigned long long>(r.ops));
}

TEST(ModelGauge, ConfinementHandOffIsOrderedByAcqRelCounter) {
  const Result r = run_confinement_handoff();
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GE(r.interleavings, 1000u)
      << "exploration breadth regressed below the acceptance floor";
  std::printf("[model] confinement-handoff: %llu interleavings, %llu ops\n",
              static_cast<unsigned long long>(r.interleavings),
              static_cast<unsigned long long>(r.ops));
}

TEST(ModelGauge, RelaxedConfinementCounterIsCaught) {
  // The pre-fix ScratchArena guard (relaxed fetch_add/fetch_sub): the
  // detector stays silent yet the serial hand-off loses an update. The
  // explorer finding this schedule is what pins the acq_rel bugfix.
  const Result r = run_confinement_broken_relaxed();
  EXPECT_TRUE(r.failed)
      << "explorer missed the lost hand-off behind the relaxed counter";
  EXPECT_NE(r.failure.find("lost"), std::string::npos) << r.failure;
}

}  // namespace
}  // namespace zz::model
