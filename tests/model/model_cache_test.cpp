// DecodeCache publish path under the interleaving explorer: check under
// the lock, decode outside it, first-writer-wins re-publish — with the
// entry fields relaxed, leaning entirely on model::Mutex's acquire/release
// view propagation (the production contract; entries are immutable once
// published).
#include <cstdio>

#include <gtest/gtest.h>

#include "zz/common/model/protocols.h"

namespace zz::model {
namespace {

TEST(ModelCache, FirstWriterWinsAndRacersAdopt) {
  const Result r = run_cache_publish();
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GE(r.interleavings, 1000u)
      << "exploration breadth regressed below the acceptance floor";
  std::printf("[model] cache-publish: %llu interleavings, %llu ops\n",
              static_cast<unsigned long long>(r.interleavings),
              static_cast<unsigned long long>(r.ops));
}

}  // namespace
}  // namespace zz::model
