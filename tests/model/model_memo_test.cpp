// Farm episode-memo protocol under the interleaving explorer
// (src/farm/farm.cpp's PublishOnceState lifecycle; contract details in
// src/common/model/protocols.cpp).
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "zz/common/model/protocols.h"

namespace zz::model {
namespace {

TEST(ModelMemo, PublishProtocolHoldsUnderAllSchedules) {
  const Result r = run_memo_publish();
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_GE(r.interleavings, 1000u)
      << "exploration breadth regressed below the acceptance floor";
  std::printf("[model] memo-publish: %llu interleavings, %llu ops\n",
              static_cast<unsigned long long>(r.interleavings),
              static_cast<unsigned long long>(r.ops));
}

TEST(ModelMemo, RelaxedPublishStoreIsCaught) {
  // The regression test that the memory model has teeth: weakening the
  // publish store to relaxed MUST produce a counterexample schedule where
  // a reader passes the Ready check but reads the stale payload.
  const Result r = run_memo_broken_relaxed_publish();
  EXPECT_TRUE(r.failed)
      << "explorer missed the stale-payload read behind a relaxed publish";
  EXPECT_NE(r.failure.find("stale payload"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("counterexample schedule"), std::string::npos)
      << r.failure;
}

}  // namespace
}  // namespace zz::model
