// Pins for the n-sender scenario engine (zz/testbed/scenario.h).
//
// The ScenarioPins constants were captured from the pre-refactor
// fixed-arity run_pair at these exact seeds/configs: the 2-sender wrapper
// must reproduce them bit-identically (delivered counts, airtime and the
// derived throughputs), or the engine's generic loop has changed the
// historical draw order / decision sequence.
#include <gtest/gtest.h>

#include <stdexcept>

#include "zz/common/thread_pool.h"
#include "zz/testbed/experiment.h"
#include "zz/testbed/scenario.h"
#include "zz/testbed/sweep.h"

namespace zz::testbed {
namespace {

ExperimentConfig pin_cfg() {
  ExperimentConfig cfg;
  cfg.packets_per_sender = 10;
  cfg.payload_bytes = 200;
  return cfg;
}

void expect_pair(const PairStats& r, std::size_t d0, std::size_t d1,
                 std::size_t airtime, std::size_t conc_rounds,
                 std::size_t c0, std::size_t c1) {
  EXPECT_EQ(r.flows[0].delivered, d0);
  EXPECT_EQ(r.flows[1].delivered, d1);
  EXPECT_EQ(r.airtime_rounds, airtime);
  EXPECT_EQ(r.concurrent_rounds, conc_rounds);
  EXPECT_DOUBLE_EQ(r.flows[0].throughput,
                   static_cast<double>(d0) / static_cast<double>(airtime));
  EXPECT_DOUBLE_EQ(r.flows[1].throughput,
                   static_cast<double>(d1) / static_cast<double>(airtime));
  EXPECT_DOUBLE_EQ(r.concurrent_throughput[0],
                   static_cast<double>(c0) / static_cast<double>(conc_rounds));
  EXPECT_DOUBLE_EQ(r.concurrent_throughput[1],
                   static_cast<double>(c1) / static_cast<double>(conc_rounds));
}

TEST(ScenarioPins, HiddenZigZagPairBitIdentical) {
  Rng rng(42);
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 11.0, 11.0, 0.0, pin_cfg());
  expect_pair(r, 6, 7, 60, 59, 5, 7);
}

TEST(ScenarioPins, Hidden80211PairBitIdentical) {
  Rng rng(43);
  const auto r =
      run_pair(rng, ReceiverKind::Current80211, 11.0, 11.0, 0.0, pin_cfg());
  expect_pair(r, 0, 0, 80, 80, 0, 0);
}

TEST(ScenarioPins, SchedulerPairBitIdentical) {
  Rng rng(44);
  const auto r = run_pair(rng, ReceiverKind::CollisionFreeScheduler, 12.0, 12.0,
                          0.0, pin_cfg());
  expect_pair(r, 10, 10, 20, 19, 10, 9);
}

TEST(ScenarioPins, CaptureZigZagPairBitIdentical) {
  Rng rng(45);
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 26.0, 12.0, 0.0, pin_cfg());
  expect_pair(r, 10, 10, 14, 10, 10, 6);
}

TEST(ScenarioPins, PartialSenseZigZagPairBitIdentical) {
  Rng rng(46);
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 12.0, 12.0, 0.5, pin_cfg());
  expect_pair(r, 10, 10, 30, 28, 10, 8);
}

TEST(ScenarioEngine, WrapperAndScenarioAgree) {
  // run_pair is a thin wrapper: the same scenario through run_scenario must
  // give the same numbers from the same seed.
  Rng rng1(42), rng2(42);
  const auto wrapped =
      run_pair(rng1, ReceiverKind::ZigZag, 11.0, 11.0, 0.0, pin_cfg());
  Scenario sc;
  sc.senders = {SenderSpec{11.0, 0}, SenderSpec{11.0, 0}};
  sc.receiver = ReceiverKind::ZigZag;
  sc.mode = CollectMode::Live;
  sc.p_sense = 0.0;
  sc.cfg = pin_cfg();
  const auto direct = run_scenario(rng2, sc);
  ASSERT_EQ(direct.flows.size(), 2u);
  EXPECT_EQ(direct.flows[0].delivered, wrapped.flows[0].delivered);
  EXPECT_EQ(direct.flows[1].delivered, wrapped.flows[1].delivered);
  EXPECT_EQ(direct.airtime_rounds, wrapped.airtime_rounds);
  EXPECT_DOUBLE_EQ(direct.concurrent_throughput[0],
                   wrapped.concurrent_throughput[0]);
  EXPECT_DOUBLE_EQ(direct.concurrent_throughput[1],
                   wrapped.concurrent_throughput[1]);
}

TEST(ScenarioEngine, ThreeSenderFairnessNearFig59) {
  // §5.7 / Fig 5-9: three hidden senders each hold a fair ~1/3 share.
  Rng rng(16);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 6;
  cfg.payload_bytes = 200;
  const auto st = run_scenario(rng, hidden_n_scenario(3, 12.0,
                                                      ReceiverKind::ZigZag, cfg));
  ASSERT_EQ(st.flows.size(), 3u);
  for (const auto& f : st.flows) {
    EXPECT_NEAR(f.throughput, 1.0 / 3.0, 0.08);
    EXPECT_LT(f.loss_rate(), 0.2);
  }
  EXPECT_GT(st.fairness_index(), 0.95);
}

TEST(ScenarioEngine, FourSenderSmokeDecodes) {
  Rng rng(17);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 2;
  cfg.payload_bytes = 200;
  const auto st = run_scenario(rng, hidden_n_scenario(4, 12.0,
                                                      ReceiverKind::ZigZag, cfg));
  ASSERT_EQ(st.flows.size(), 4u);
  EXPECT_GE(st.airtime_rounds, 8u);  // >= n collisions per round
  for (const auto& f : st.flows) {
    EXPECT_EQ(f.offered, 2u);
    EXPECT_GE(f.delivered, 1u);  // a 4-way joint decode must mostly work
  }
}

TEST(ScenarioEngine, RejectsDegenerateScenarios) {
  Rng rng(1);
  Scenario empty;
  EXPECT_THROW((void)run_scenario(rng, empty), std::invalid_argument);
  Scenario lone;
  lone.senders = {SenderSpec{12.0, 0}};
  lone.mode = CollectMode::LoggedJoint;
  EXPECT_THROW((void)run_scenario(rng, lone), std::invalid_argument);
}

TEST(ScenarioEngine, FairnessIndexMath) {
  ScenarioStats st;
  st.flows.resize(4);
  for (auto& f : st.flows) f.throughput = 0.25;
  EXPECT_DOUBLE_EQ(st.fairness_index(), 1.0);
  st.flows[1].throughput = st.flows[2].throughput = st.flows[3].throughput = 0.0;
  EXPECT_DOUBLE_EQ(st.fairness_index(), 0.25);  // one flow hogs: 1/n
  for (auto& f : st.flows) f.throughput = 0.0;
  EXPECT_DOUBLE_EQ(st.fairness_index(), 1.0);  // all-zero: vacuously fair
}

TEST(SweepDeterminism, BitIdenticalAtAnyThreadCount) {
  // shard_seed gives every run its own stream, so the sweep must be
  // bit-identical no matter how many workers execute it.
  NSenderSweepConfig cfg;
  cfg.n_min = 2;
  cfg.n_max = 3;
  cfg.runs_per_n = 2;
  cfg.packets_per_sender = 2;
  ThreadPool pool1(1), pool2(2), pool4(4);
  const auto a = run_n_sender_sweep(cfg, pool1);
  const auto b = run_n_sender_sweep(cfg, pool2);
  const auto c = run_n_sender_sweep(cfg, pool4);
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_EQ(a.points.size(), c.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    for (const auto* other : {&b.points[i], &c.points[i]}) {
      EXPECT_EQ(a.points[i].n, other->n);
      ASSERT_EQ(a.points[i].per_sender_throughput.size(),
                other->per_sender_throughput.size());
      for (std::size_t j = 0; j < a.points[i].per_sender_throughput.size(); ++j)
        EXPECT_EQ(a.points[i].per_sender_throughput[j],
                  other->per_sender_throughput[j]);  // exact, not NEAR
      EXPECT_EQ(a.points[i].mean_throughput, other->mean_throughput);
      EXPECT_EQ(a.points[i].fairness, other->fairness);
      EXPECT_EQ(a.points[i].mean_loss, other->mean_loss);
    }
  }
}

}  // namespace
}  // namespace zz::testbed
