// Pins for the n-sender scenario engine (zz/testbed/scenario.h).
//
// The ScenarioPins constants were captured from the pre-refactor
// fixed-arity run_pair at these exact seeds/configs: the 2-sender wrapper
// must reproduce them bit-identically (delivered counts, airtime and the
// derived throughputs), or the engine's generic loop has changed the
// historical draw order / decision sequence.
#include <gtest/gtest.h>

#include <stdexcept>

#include "zz/common/thread_pool.h"
#include "zz/testbed/experiment.h"
#include "zz/testbed/scenario.h"
#include "zz/testbed/sweep.h"

namespace zz::testbed {
namespace {

ExperimentConfig pin_cfg() {
  ExperimentConfig cfg;
  cfg.packets_per_sender = 10;
  cfg.payload_bytes = 200;
  return cfg;
}

void expect_pair(const PairStats& r, std::size_t d0, std::size_t d1,
                 std::size_t airtime, std::size_t conc_rounds,
                 std::size_t c0, std::size_t c1) {
  EXPECT_EQ(r.flows[0].delivered, d0);
  EXPECT_EQ(r.flows[1].delivered, d1);
  EXPECT_EQ(r.airtime_rounds, airtime);
  EXPECT_EQ(r.concurrent_rounds, conc_rounds);
  EXPECT_DOUBLE_EQ(r.flows[0].throughput,
                   static_cast<double>(d0) / static_cast<double>(airtime));
  EXPECT_DOUBLE_EQ(r.flows[1].throughput,
                   static_cast<double>(d1) / static_cast<double>(airtime));
  EXPECT_DOUBLE_EQ(r.concurrent_throughput[0],
                   static_cast<double>(c0) / static_cast<double>(conc_rounds));
  EXPECT_DOUBLE_EQ(r.concurrent_throughput[1],
                   static_cast<double>(c1) / static_cast<double>(conc_rounds));
}

TEST(ScenarioPins, HiddenZigZagPairBitIdentical) {
  Rng rng(42);
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 11.0, 11.0, 0.0, pin_cfg());
  expect_pair(r, 6, 7, 60, 59, 5, 7);
}

TEST(ScenarioPins, Hidden80211PairBitIdentical) {
  Rng rng(43);
  const auto r =
      run_pair(rng, ReceiverKind::Current80211, 11.0, 11.0, 0.0, pin_cfg());
  expect_pair(r, 0, 0, 80, 80, 0, 0);
}

TEST(ScenarioPins, SchedulerPairBitIdentical) {
  Rng rng(44);
  const auto r = run_pair(rng, ReceiverKind::CollisionFreeScheduler, 12.0, 12.0,
                          0.0, pin_cfg());
  expect_pair(r, 10, 10, 20, 19, 10, 9);
}

TEST(ScenarioPins, CaptureZigZagPairBitIdentical) {
  Rng rng(45);
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 26.0, 12.0, 0.0, pin_cfg());
  expect_pair(r, 10, 10, 14, 10, 10, 6);
}

TEST(ScenarioPins, PartialSenseZigZagPairBitIdentical) {
  Rng rng(46);
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 12.0, 12.0, 0.5, pin_cfg());
  expect_pair(r, 10, 10, 30, 28, 10, 8);
}

TEST(ScenarioEngine, WrapperAndScenarioAgree) {
  // run_pair is a thin wrapper: the same scenario through run_scenario must
  // give the same numbers from the same seed.
  Rng rng1(42), rng2(42);
  const auto wrapped =
      run_pair(rng1, ReceiverKind::ZigZag, 11.0, 11.0, 0.0, pin_cfg());
  Scenario sc;
  sc.senders = {SenderSpec{11.0, 0}, SenderSpec{11.0, 0}};
  sc.receiver = ReceiverKind::ZigZag;
  sc.mode = CollectMode::Live;
  sc.p_sense = 0.0;
  sc.cfg = pin_cfg();
  const auto direct = run_scenario(rng2, sc);
  ASSERT_EQ(direct.flows.size(), 2u);
  EXPECT_EQ(direct.flows[0].delivered, wrapped.flows[0].delivered);
  EXPECT_EQ(direct.flows[1].delivered, wrapped.flows[1].delivered);
  EXPECT_EQ(direct.airtime_rounds, wrapped.airtime_rounds);
  EXPECT_DOUBLE_EQ(direct.concurrent_throughput[0],
                   wrapped.concurrent_throughput[0]);
  EXPECT_DOUBLE_EQ(direct.concurrent_throughput[1],
                   wrapped.concurrent_throughput[1]);
}

TEST(ScenarioEngine, ThreeSenderFairnessNearFig59) {
  // §5.7 / Fig 5-9: three hidden senders each hold a fair ~1/3 share.
  Rng rng(16);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 6;
  cfg.payload_bytes = 200;
  const auto st = run_scenario(rng, hidden_n_scenario(3, 12.0,
                                                      ReceiverKind::ZigZag, cfg));
  ASSERT_EQ(st.flows.size(), 3u);
  for (const auto& f : st.flows) {
    EXPECT_NEAR(f.throughput, 1.0 / 3.0, 0.08);
    EXPECT_LT(f.loss_rate(), 0.2);
  }
  EXPECT_GT(st.fairness_index(), 0.95);
}

TEST(ScenarioEngine, FourSenderSmokeDecodes) {
  Rng rng(17);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 2;
  cfg.payload_bytes = 200;
  const auto st = run_scenario(rng, hidden_n_scenario(4, 12.0,
                                                      ReceiverKind::ZigZag, cfg));
  ASSERT_EQ(st.flows.size(), 4u);
  EXPECT_GE(st.airtime_rounds, 8u);  // >= n collisions per round
  for (const auto& f : st.flows) {
    EXPECT_EQ(f.offered, 2u);
    EXPECT_GE(f.delivered, 1u);  // a 4-way joint decode must mostly work
  }
}

TEST(ScenarioEngine, RejectsDegenerateScenarios) {
  Rng rng(1);
  Scenario empty;
  EXPECT_THROW((void)run_scenario(rng, empty), std::invalid_argument);
  Scenario lone;
  lone.senders = {SenderSpec{12.0, 0}};
  lone.mode = CollectMode::LoggedJoint;
  EXPECT_THROW((void)run_scenario(rng, lone), std::invalid_argument);
  // AlgebraicMP is an offline joint decoder: only LoggedJoint feeds it.
  Scenario mp_live;
  mp_live.senders = {SenderSpec{12.0, 0}, SenderSpec{12.0, 0}};
  mp_live.receiver = ReceiverKind::AlgebraicMP;
  mp_live.mode = CollectMode::Live;
  EXPECT_THROW((void)run_scenario(rng, mp_live), std::invalid_argument);
  mp_live.mode = CollectMode::SlottedAloha;
  EXPECT_THROW((void)run_scenario(rng, mp_live), std::invalid_argument);
  // A TDMA scheduler has no slotted contention to resolve.
  Scenario sched_slotted;
  sched_slotted.senders = {SenderSpec{12.0, 0}, SenderSpec{12.0, 0}};
  sched_slotted.receiver = ReceiverKind::CollisionFreeScheduler;
  sched_slotted.mode = CollectMode::SlottedAloha;
  EXPECT_THROW((void)run_scenario(rng, sched_slotted), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mixed-SNR and asymmetric-traffic coverage (per-sender SenderSpec
// overrides through run_scenario), pinned at fixed seeds for the three
// head-to-head receiver kinds.
// ---------------------------------------------------------------------------

Scenario mixed_snr_scenario(ReceiverKind kind) {
  Scenario sc;
  sc.senders = {SenderSpec{14.0, 0}, SenderSpec{12.0, 0}, SenderSpec{10.0, 0}};
  sc.receiver = kind;
  sc.mode = CollectMode::LoggedJoint;
  sc.backoff_stage = 2;
  sc.cfg.packets_per_sender = 4;
  sc.cfg.payload_bytes = 200;
  return sc;
}

TEST(MixedSnrScenarios, ZigZagDeliversAllThreeTiers) {
  Rng rng(21);
  const auto st = run_scenario(rng, mixed_snr_scenario(ReceiverKind::ZigZag));
  ASSERT_EQ(st.flows.size(), 3u);
  EXPECT_EQ(st.flows[0].delivered, 4u);
  EXPECT_EQ(st.flows[1].delivered, 4u);
  EXPECT_EQ(st.flows[2].delivered, 4u);
  EXPECT_EQ(st.airtime_rounds, 15u);  // one round needed an extra equation
}

TEST(MixedSnrScenarios, AlgebraicMpStrongTierSurvivesWeakTiersDegrade) {
  // Mixed SNR is where the algebraic receiver's missing §4.2.4 machinery
  // shows: the 14 dB sender's unrefined subtraction residue is large
  // relative to the 10-12 dB signals, so the weaker tiers miss the §5.1(f)
  // BER criterion in most rounds while zigzag (above) delivers all three.
  // Pinned, not aspirational: this gap is exactly what
  // bench/baseline_comparison's mp/zz band measures at uniform SNR.
  Rng rng(21);
  const auto st =
      run_scenario(rng, mixed_snr_scenario(ReceiverKind::AlgebraicMP));
  ASSERT_EQ(st.flows.size(), 3u);
  EXPECT_EQ(st.flows[0].delivered, 4u);
  EXPECT_EQ(st.flows[1].delivered, 1u);
  EXPECT_EQ(st.flows[2].delivered, 1u);
  // Failed joint decodes request extra equations — strictly more airtime
  // than zigzag needed on the same topology.
  EXPECT_GT(st.airtime_rounds, 15u);
}

TEST(MixedSnrScenarios, Stock80211StarvesAllTiers) {
  Rng rng(21);
  const auto st =
      run_scenario(rng, mixed_snr_scenario(ReceiverKind::Current80211));
  ASSERT_EQ(st.flows.size(), 3u);
  const std::size_t total = st.flows[0].delivered + st.flows[1].delivered +
                            st.flows[2].delivered;
  EXPECT_LE(total, 2u);  // capture at best; equal-power pileups are lost
}

TEST(AsymmetricTraffic, LiveOfferedLoadsFollowSenderSpecs) {
  Rng rng(24);
  Scenario sc;
  sc.senders = {SenderSpec{12.0, 8}, SenderSpec{12.0, 3}};
  sc.receiver = ReceiverKind::ZigZag;
  sc.mode = CollectMode::Live;
  sc.p_sense = 0.0;
  sc.cfg.packets_per_sender = 30;  // overridden per sender
  sc.cfg.payload_bytes = 200;
  const auto st = run_scenario(rng, sc);
  ASSERT_EQ(st.flows.size(), 2u);
  EXPECT_EQ(st.flows[0].offered, 8u);
  EXPECT_EQ(st.flows[1].offered, 3u);
  EXPECT_EQ(st.flows[0].delivered, 8u);
  EXPECT_EQ(st.flows[1].delivered, 3u);
  EXPECT_EQ(st.airtime_rounds, 15u);
}

TEST(AsymmetricTraffic, SchedulerDrainsUnevenBacklogs) {
  Rng rng(25);
  Scenario sc;
  sc.senders = {SenderSpec{12.0, 5}, SenderSpec{12.0, 2}};
  sc.receiver = ReceiverKind::CollisionFreeScheduler;
  sc.mode = CollectMode::Live;
  sc.cfg.payload_bytes = 200;
  const auto st = run_scenario(rng, sc);
  EXPECT_EQ(st.flows[0].delivered, 5u);
  EXPECT_EQ(st.flows[1].delivered, 2u);
  EXPECT_EQ(st.airtime_rounds, 7u);  // pure TDMA: one slot per packet
}

// ---------------------------------------------------------------------------
// Slotted-ALOHA mode (arXiv:1501.00976).
// ---------------------------------------------------------------------------

TEST(SlottedAloha, ZigZagRecoversWhatPlainAlohaLoses) {
  ExperimentConfig cfg;
  cfg.packets_per_sender = 6;
  cfg.payload_bytes = 200;
  Scenario sc = hidden_n_scenario(2, 12.0, ReceiverKind::ZigZag, cfg);
  sc.mode = CollectMode::SlottedAloha;
  Rng rng1(30);
  const auto zz = run_scenario(rng1, sc);
  sc.receiver = ReceiverKind::Current80211;
  Rng rng2(30);
  const auto plain = run_scenario(rng2, sc);
  const auto total = [](const ScenarioStats& st) {
    std::size_t acc = 0;
    for (const auto& f : st.flows) acc += f.delivered;
    return acc;
  };
  // Same seed, same slot structure: the zigzag AP turns collided slots
  // into deliveries that plain slotted ALOHA can only retry.
  EXPECT_GT(total(zz), 0u);
  EXPECT_GE(total(zz), total(plain));
  EXPECT_EQ(total(zz), 12u);  // every offered packet lands
}

TEST(SlottedAloha, AutoTxProbTracksBacklog) {
  mac::SlottedTiming t;
  EXPECT_DOUBLE_EQ(t.effective_tx_prob(2), 0.5);
  EXPECT_DOUBLE_EQ(t.effective_tx_prob(5), 0.2);
  t.tx_prob = 0.4;
  EXPECT_DOUBLE_EQ(t.effective_tx_prob(5), 0.4);
  t.tx_prob = 2.0;
  EXPECT_DOUBLE_EQ(t.effective_tx_prob(5), 1.0);  // clamped
}

TEST(SlottedAloha, DeterministicAtFixedSeed) {
  ExperimentConfig cfg;
  cfg.packets_per_sender = 3;
  cfg.payload_bytes = 200;
  Scenario sc = hidden_n_scenario(3, 12.0, ReceiverKind::ZigZag, cfg);
  sc.mode = CollectMode::SlottedAloha;
  Rng rng1(31), rng2(31);
  const auto a = run_scenario(rng1, sc);
  const auto b = run_scenario(rng2, sc);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].delivered, b.flows[i].delivered);
    EXPECT_EQ(a.flows[i].throughput, b.flows[i].throughput);
  }
  EXPECT_EQ(a.airtime_rounds, b.airtime_rounds);
}

TEST(ScenarioEngine, FairnessIndexMath) {
  ScenarioStats st;
  st.flows.resize(4);
  for (auto& f : st.flows) f.throughput = 0.25;
  EXPECT_DOUBLE_EQ(st.fairness_index(), 1.0);
  st.flows[1].throughput = st.flows[2].throughput = st.flows[3].throughput = 0.0;
  EXPECT_DOUBLE_EQ(st.fairness_index(), 0.25);  // one flow hogs: 1/n
  for (auto& f : st.flows) f.throughput = 0.0;
  EXPECT_DOUBLE_EQ(st.fairness_index(), 1.0);  // all-zero: vacuously fair
}

TEST(SweepDeterminism, BitIdenticalAtAnyThreadCount) {
  // shard_seed gives every run its own stream, so the sweep must be
  // bit-identical no matter how many workers execute it.
  NSenderSweepConfig cfg;
  cfg.n_min = 2;
  cfg.n_max = 3;
  cfg.runs_per_n = 2;
  cfg.packets_per_sender = 2;
  ThreadPool pool1(1), pool2(2), pool4(4);
  const auto a = run_n_sender_sweep(cfg, pool1);
  const auto b = run_n_sender_sweep(cfg, pool2);
  const auto c = run_n_sender_sweep(cfg, pool4);
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_EQ(a.points.size(), c.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    for (const auto* other : {&b.points[i], &c.points[i]}) {
      EXPECT_EQ(a.points[i].n, other->n);
      ASSERT_EQ(a.points[i].per_sender_throughput.size(),
                other->per_sender_throughput.size());
      for (std::size_t j = 0; j < a.points[i].per_sender_throughput.size(); ++j)
        EXPECT_EQ(a.points[i].per_sender_throughput[j],
                  other->per_sender_throughput[j]);  // exact, not NEAR
      EXPECT_EQ(a.points[i].mean_throughput, other->mean_throughput);
      EXPECT_EQ(a.points[i].fairness, other->fairness);
      EXPECT_EQ(a.points[i].mean_loss, other->mean_loss);
    }
  }
}

}  // namespace
}  // namespace zz::testbed
