// Tests for zz::testbed — topology synthesis and the pairwise flow
// experiments that drive the Chapter 5 evaluation.
#include <gtest/gtest.h>

#include "zz/common/rng.h"
#include "zz/testbed/experiment.h"
#include "zz/testbed/topology.h"

namespace zz::testbed {
namespace {

TEST(Topology, SensingMixRoughlyMatchesPaper) {
  // §5.6: 12% hidden, 8% partial, 80% full. Average over seeds; the mix is
  // a property of the ensemble, not of one placement.
  Rng rng(7);
  double hidden = 0, partial = 0, full = 0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    Topology topo(rng);
    const auto mix = topo.sensing_mix();
    hidden += mix.hidden;
    partial += mix.partial;
    full += mix.full;
  }
  hidden /= reps;
  partial /= reps;
  full /= reps;
  EXPECT_NEAR(hidden, 0.12, 0.08);
  EXPECT_NEAR(partial, 0.08, 0.07);
  EXPECT_NEAR(full, 0.80, 0.12);
}

TEST(Topology, SnrSymmetricAndDistanceMonotone) {
  Rng rng(8);
  Topology topo(rng);
  for (std::size_t a = 0; a < topo.size(); ++a)
    for (std::size_t b = a + 1; b < topo.size(); ++b)
      EXPECT_DOUBLE_EQ(topo.snr_db(a, b), topo.snr_db(b, a));
}

TEST(Topology, ViablePairsExist) {
  Rng rng(9);
  Topology topo(rng);
  EXPECT_GT(topo.viable_pairs().size(), 5u);
}

TEST(Experiment, CollisionFreeSchedulerDeliversEverything) {
  Rng rng(10);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 15;
  cfg.payload_bytes = 200;
  const auto r = run_pair(rng, ReceiverKind::CollisionFreeScheduler, 12.0,
                          12.0, 0.0, cfg);
  EXPECT_EQ(r.flows[0].delivered, 15u);
  EXPECT_EQ(r.flows[1].delivered, 15u);
  EXPECT_NEAR(r.total_throughput(), 1.0, 0.05);
}

TEST(Experiment, Hidden80211LosesAlmostEverything) {
  // The headline problem (§1): equal-power hidden terminals under stock
  // 802.11 collide repeatedly and their packets are lost.
  Rng rng(11);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 10;
  cfg.payload_bytes = 200;
  const auto r =
      run_pair(rng, ReceiverKind::Current80211, 11.0, 11.0, 0.0, cfg);
  EXPECT_GT(r.flows[0].loss_rate() + r.flows[1].loss_rate(), 1.5);
}

TEST(Experiment, ZigZagRescuesHiddenTerminals) {
  // The headline result (§5.6): ZigZag takes hidden-terminal loss to ~0.
  Rng rng(12);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 10;
  cfg.payload_bytes = 200;
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 11.0, 11.0, 0.0, cfg);
  EXPECT_LT(r.flows[0].loss_rate(), 0.25);
  EXPECT_LT(r.flows[1].loss_rate(), 0.25);
  // Ideal is the scheduler's 1.0 aggregate; our receiver occasionally
  // needs an extra collision pair, so require a clear multiple of the
  // near-zero throughput stock 802.11 achieves here.
  EXPECT_GT(r.total_throughput(), 0.35);
}

TEST(Experiment, FullSensingPairsAreUnaffected) {
  // §5.6 / Fig 5-7: ZigZag never hurts senders that carrier-sense fine.
  Rng rng(13);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 10;
  cfg.payload_bytes = 200;
  const auto z = run_pair(rng, ReceiverKind::ZigZag, 12.0, 12.0, 1.0, cfg);
  EXPECT_LT(z.flows[0].loss_rate(), 0.1);
  EXPECT_LT(z.flows[1].loss_rate(), 0.1);
}

TEST(Experiment, CaptureGivesStrongSenderThrough80211) {
  // Fig 5-4: with a large power gap, stock 802.11 delivers Alice (capture)
  // while Bob starves.
  Rng rng(14);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 10;
  cfg.payload_bytes = 200;
  const auto r =
      run_pair(rng, ReceiverKind::Current80211, 26.0, 10.0, 0.0, cfg);
  EXPECT_LT(r.flows[0].loss_rate(), 0.2);          // Alice captured
  EXPECT_LT(r.concurrent_throughput[1], 0.1);      // Bob starves meanwhile
  EXPECT_GT(r.concurrent_throughput[0], 0.7);
}

TEST(Experiment, ZigZagSicDoublesThroughputUnderCapture) {
  // Fig 5-4(c): when capture allows single-collision cancellation, ZigZag
  // delivers both packets from one collision — total throughput near 2.
  Rng rng(15);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 10;
  cfg.payload_bytes = 200;
  const auto r = run_pair(rng, ReceiverKind::ZigZag, 26.0, 12.0, 0.0, cfg);
  EXPECT_LT(r.flows[0].loss_rate(), 0.15);
  EXPECT_LT(r.flows[1].loss_rate(), 0.15);
  EXPECT_GT(r.total_throughput(), 1.1);  // clearly above the pair-decoding ceiling
}

TEST(Experiment, ThreeHiddenSendersShareFairly) {
  // §5.7 / Fig 5-9: three hidden terminals each get about a third.
  Rng rng(16);
  ExperimentConfig cfg;
  cfg.packets_per_sender = 6;
  cfg.payload_bytes = 200;
  const auto flows = run_three_hidden(rng, ReceiverKind::ZigZag, 12.0, cfg);
  double total = 0.0;
  for (const auto& f : flows) {
    EXPECT_LT(f.loss_rate(), 0.7);
    total += f.throughput;
  }
  EXPECT_GT(total, 0.3);
}

}  // namespace
}  // namespace zz::testbed
