// Seed-shard collision audit for the farm's RNG discipline.
//
// Every parallel result in this repo rests on shard_seed giving each task
// an independent stream. The AP-farm stacks the finalizer two (and
// conceptually three) levels deep: cell_seed = shard_seed(farm_seed,
// cell), episode_seed = shard_seed(cell_seed, episode), and a sender's
// sub-stream within an episode is shard_seed(episode_seed, sender). A
// collision anywhere in that tree would make two "independent" episodes
// replay each other's randomness — silently, since everything would still
// look plausibly random. This property test audits a representative farm
// grid for pairwise-distinct seeds at every level.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "zz/common/thread_pool.h"

namespace zz {
namespace {

/// Sorted-scan duplicate check; returns the number of duplicate pairs.
std::size_t duplicates(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  std::size_t dup = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] == v[i - 1]) ++dup;
  return dup;
}

TEST(SeedShard, FarmGridTuplesPairwiseDistinct) {
  // A farm bigger than anything the benches run: 32 cells × 128 episodes
  // × 8 senders = 32768 leaf streams per farm seed, audited for several
  // farm seeds including adversarial ones (0, consecutive, all-ones).
  constexpr std::size_t kCells = 32;
  constexpr std::size_t kEpisodes = 128;
  constexpr std::size_t kSenders = 8;
  for (const std::uint64_t farm_seed :
       {0ull, 1ull, 2ull, 0x9e3779b97f4a7c15ull, ~0ull}) {
    std::vector<std::uint64_t> cell_seeds, episode_seeds, sender_seeds;
    for (std::size_t c = 0; c < kCells; ++c) {
      const std::uint64_t cs = shard_seed(farm_seed, c);
      cell_seeds.push_back(cs);
      for (std::size_t e = 0; e < kEpisodes; ++e) {
        const std::uint64_t es = shard_seed(cs, e);
        episode_seeds.push_back(es);
        for (std::size_t s = 0; s < kSenders; ++s)
          sender_seeds.push_back(shard_seed(es, s));
      }
    }
    EXPECT_EQ(duplicates(cell_seeds), 0u) << "farm seed " << farm_seed;
    EXPECT_EQ(duplicates(episode_seeds), 0u) << "farm seed " << farm_seed;
    EXPECT_EQ(duplicates(sender_seeds), 0u) << "farm seed " << farm_seed;
  }
}

TEST(SeedShard, CrossLevelStreamsDistinct) {
  // The tree's levels must not alias each other either: a cell seed that
  // equals some episode seed would hand a whole cell the randomness of a
  // single episode. Pool cell, episode and sender seeds together.
  constexpr std::size_t kCells = 16;
  constexpr std::size_t kEpisodes = 32;
  constexpr std::size_t kSenders = 4;
  std::vector<std::uint64_t> all;
  const std::uint64_t farm_seed = 1;
  all.push_back(farm_seed);
  for (std::size_t c = 0; c < kCells; ++c) {
    const std::uint64_t cs = shard_seed(farm_seed, c);
    all.push_back(cs);
    for (std::size_t e = 0; e < kEpisodes; ++e) {
      const std::uint64_t es = shard_seed(cs, e);
      all.push_back(es);
      for (std::size_t s = 0; s < kSenders; ++s)
        all.push_back(shard_seed(es, s));
    }
  }
  EXPECT_EQ(duplicates(all), 0u);
}

TEST(SeedShard, NeighbouringFarmSeedsDoNotShareEpisodes) {
  // Farms run at consecutive seeds (bench sweeps do exactly this) must
  // not share any episode stream.
  constexpr std::size_t kCells = 16;
  constexpr std::size_t kEpisodes = 64;
  std::vector<std::uint64_t> all;
  for (const std::uint64_t farm_seed : {100ull, 101ull, 102ull, 103ull})
    for (std::size_t c = 0; c < kCells; ++c)
      for (std::size_t e = 0; e < kEpisodes; ++e)
        all.push_back(shard_seed(shard_seed(farm_seed, c), e));
  EXPECT_EQ(duplicates(all), 0u);
}

}  // namespace
}  // namespace zz
