// Unit tests for zz::phy — modulation, preamble, scrambler, framing,
// transmitter and the standard (black-box) receiver.
#include <gtest/gtest.h>

#include <cmath>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/emu/collision.h"
#include "zz/phy/frame.h"
#include "zz/phy/modulation.h"
#include "zz/phy/preamble.h"
#include "zz/phy/receiver.h"
#include "zz/phy/scrambler.h"
#include "zz/phy/transmitter.h"

namespace zz::phy {
namespace {

class ModulationSuite : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationSuite, RoundTripsRandomBits) {
  const Modulator mod(GetParam());
  Rng rng(1);
  const Bits tx = rng.bits(960);
  const CVec syms = mod.modulate(tx);
  const Bits rx = mod.demodulate(syms);
  ASSERT_GE(rx.size(), tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) EXPECT_EQ(tx[i], rx[i]);
}

TEST_P(ModulationSuite, UnitAveragePower) {
  const Modulator mod(GetParam());
  double acc = 0.0;
  const unsigned n = 1u << mod.bits_per_symbol();
  for (unsigned v = 0; v < n; ++v) acc += std::norm(mod.map(v));
  EXPECT_NEAR(acc / n, 1.0, 1e-9);
}

TEST_P(ModulationSuite, SliceIsNearestNeighbour) {
  const Modulator mod(GetParam());
  Rng rng(2);
  const unsigned n = 1u << mod.bits_per_symbol();
  for (unsigned v = 0; v < n; ++v) {
    const cplx noisy = mod.map(v) + rng.gaussian_c(0.001);
    EXPECT_EQ(mod.slice(noisy), v);
    EXPECT_LT(std::abs(mod.nearest_point(noisy) - mod.map(v)), 1e-12);
  }
}

TEST_P(ModulationSuite, SoftBitsAgreeWithHardDecisionsAtHighSnr) {
  const Modulator mod(GetParam());
  Rng rng(3);
  std::vector<double> llrs;
  for (int trial = 0; trial < 64; ++trial) {
    const unsigned v =
        static_cast<unsigned>(rng.uniform_int(0, (1 << mod.bits_per_symbol()) - 1));
    const cplx y = mod.map(v) + rng.gaussian_c(1e-4);
    mod.soft_bits(y, 1e-4, llrs);
    for (int b = 0; b < mod.bits_per_symbol(); ++b) {
      const bool bit = (v >> b) & 1u;
      // Positive LLR favours bit 0.
      EXPECT_EQ(llrs[static_cast<std::size_t>(b)] > 0.0, !bit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ModulationSuite,
                         ::testing::Values(Modulation::BPSK, Modulation::QPSK,
                                           Modulation::QAM16,
                                           Modulation::QAM64));

TEST(Modulation, MinDistanceOrdering) {
  // Denser constellations have smaller minimum distance.
  EXPECT_GT(Modulator(Modulation::BPSK).min_distance(),
            Modulator(Modulation::QPSK).min_distance());
  EXPECT_GT(Modulator(Modulation::QPSK).min_distance(),
            Modulator(Modulation::QAM16).min_distance());
  EXPECT_GT(Modulator(Modulation::QAM16).min_distance(),
            Modulator(Modulation::QAM64).min_distance());
}

TEST(Preamble, DeterministicAndBinary) {
  const CVec& p1 = preamble();
  const CVec& p2 = preamble();
  ASSERT_EQ(p1.size(), kPreambleLength);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p2[i]);
    EXPECT_NEAR(std::abs(p1[i]), 1.0, 1e-12);
  }
}

TEST(Preamble, LowAutocorrelationSidelobes) {
  // Pseudo-random ±1 sequences have sidelobes ~sqrt(L), far below the
  // L-valued main peak — the property §4.2.1's detector rests on.
  EXPECT_LT(preamble_max_sidelobe(32), 16.0);
  EXPECT_LT(preamble_max_sidelobe(64), 24.0);
}

TEST(Scrambler, InvolutionWithSameSeed) {
  Rng rng(4);
  const Bits data = rng.bits(1000);
  Scrambler a(0x35), b(0x35);
  const Bits scrambled = a.apply(data);
  const Bits restored = b.apply(scrambled);
  EXPECT_EQ(data, restored);
  EXPECT_NE(data, scrambled);
}

TEST(Scrambler, WhitensConstantInput) {
  const Bits zeros(2000, 0);
  Scrambler s(0x7f);
  const Bits out = s.apply(zeros);
  double ones = 0;
  for (auto b : out) ones += b;
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(Scrambler, SeedForSeqIsNonZero) {
  for (std::uint16_t seq = 0; seq < 200; ++seq)
    EXPECT_NE(scrambler_seed_for(seq), 0);
}

TEST(Frame, HeaderRoundTrip) {
  FrameHeader h;
  h.sender_id = 0xAB;
  h.seq = 0x1234;
  h.retry = true;
  h.payload_mod = Modulation::QAM16;
  h.payload_bytes = 1500;
  const Bits bits = encode_header(h);
  ASSERT_EQ(bits.size(), kHeaderBits);
  const auto back = decode_header(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(Frame, HeaderRejectsCorruption) {
  FrameHeader h;
  h.payload_bytes = 100;
  Bits bits = encode_header(h);
  bits[5] ^= 1;
  EXPECT_FALSE(decode_header(bits).has_value());
}

TEST(Frame, LayoutGeometry) {
  FrameHeader h;
  h.payload_bytes = 1500;
  h.payload_mod = Modulation::BPSK;
  const FrameLayout l = layout_for(h);
  EXPECT_EQ(l.preamble_syms, kPreambleLength);
  EXPECT_EQ(l.header_syms, kHeaderBits);
  EXPECT_EQ(l.body_bits, 8u * 1504u);
  EXPECT_EQ(l.body_syms, 8u * 1504u);  // BPSK: 1 bit/symbol
  EXPECT_EQ(l.total_syms, 32u + 48u + 12032u);
  EXPECT_EQ(l.body_begin(), 80u);

  h.payload_mod = Modulation::QAM64;
  const FrameLayout l64 = layout_for(h);
  EXPECT_EQ(l64.body_syms, (8u * 1504u + 5u) / 6u);
}

TEST(Frame, PackUnpackRoundTrip) {
  Rng rng(5);
  const Bytes data = rng.bytes(123);
  EXPECT_EQ(pack_bytes(unpack_bits(data)), data);
}

TEST(Transmitter, FrameStructure) {
  Rng rng(6);
  FrameHeader h;
  h.sender_id = 3;
  h.seq = 42;
  h.payload_bytes = 200;
  const TxFrame f = build_frame(h, rng.bytes(200));
  EXPECT_EQ(f.symbols.size(), f.layout.total_syms);
  // Starts with the preamble.
  const CVec& pre = preamble();
  for (std::size_t i = 0; i < pre.size(); ++i) EXPECT_EQ(f.symbols[i], pre[i]);
  // air_bits = header + body bits.
  EXPECT_EQ(f.air_bits().size(), kHeaderBits + f.layout.body_bits);
}

TEST(Transmitter, RejectsPayloadSizeMismatch) {
  FrameHeader h;
  h.payload_bytes = 10;
  EXPECT_THROW(build_frame(h, Bytes(9)), std::invalid_argument);
}

TEST(Transmitter, BodyCrcValidatesAndRejects) {
  Rng rng(7);
  FrameHeader h;
  h.seq = 9;
  h.payload_bytes = 64;
  const Bytes payload = rng.bytes(64);
  const TxFrame f = build_frame(h, payload);
  Scrambler scr(scrambler_seed_for(h.seq));
  Bits descrambled = scr.apply(f.body_bits);
  EXPECT_TRUE(body_crc_ok(descrambled));
  EXPECT_EQ(body_payload(descrambled), payload);
  descrambled[17] ^= 1;
  EXPECT_FALSE(body_crc_ok(descrambled));
}

TEST(Transmitter, RetryFlagFlipsHeaderOnly) {
  Rng rng(8);
  FrameHeader h;
  h.seq = 11;
  h.payload_bytes = 50;
  const TxFrame a = build_frame(h, rng.bytes(50));
  const TxFrame b = with_retry(a, true);
  EXPECT_TRUE(b.header.retry);
  EXPECT_EQ(a.payload, b.payload);
  ASSERT_EQ(a.symbols.size(), b.symbols.size());
  // Body symbols identical; only header symbols (retry + HCS bits) differ.
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.symbols.size(); ++i)
    if (std::abs(a.symbols[i] - b.symbols[i]) > 1e-12) {
      ++diffs;
      EXPECT_GE(i, kPreambleLength);
      EXPECT_LT(i, kPreambleLength + kHeaderBits);
    }
  EXPECT_GE(diffs, 1u);
  EXPECT_LE(diffs, 9u);  // retry bit + up to 8 HCS bits
}

// ---------------------------------------------------------------------------
// Standard receiver end-to-end.
// ---------------------------------------------------------------------------

struct RxCase {
  double snr_db;
  std::size_t payload;
  Modulation mod;
};

class ReceiverSweep : public ::testing::TestWithParam<RxCase> {};

TEST_P(ReceiverSweep, DecodesCleanPacketThroughImpairedChannel) {
  const RxCase c = GetParam();
  Rng rng(0x900d + static_cast<std::uint64_t>(c.snr_db * 10) + c.payload);

  FrameHeader h;
  h.sender_id = 7;
  h.seq = 21;
  h.payload_mod = c.mod;
  h.payload_bytes = static_cast<std::uint16_t>(c.payload);
  const Bytes payload = rng.bytes(c.payload);
  const TxFrame f = build_frame(h, payload);

  chan::ImpairmentConfig icfg;
  icfg.snr_db = c.snr_db;
  icfg.freq_offset_max = 2e-3;
  const auto cp = chan::random_channel(rng, icfg);
  const CVec rx = chan::clean_reception(rng, f.symbols, cp);

  // Association first (same sender, separate clean packet) to learn ISI.
  // Management frames go out at base rate — BPSK — like real 802.11.
  FrameHeader ah = h;
  ah.seq = 1;
  ah.payload_mod = Modulation::BPSK;
  const TxFrame af = build_frame(ah, rng.bytes(c.payload));
  auto acp = chan::retransmission_channel(rng, cp, 0.0);
  const CVec arx = chan::clean_reception(rng, af.symbols, acp);

  const StandardReceiver receiver;
  const SenderProfile profile = receiver.associate(arx, 7);
  EXPECT_NEAR(profile.freq_offset, cp.freq_offset, 1e-4);
  EXPECT_NEAR(profile.snr_db, c.snr_db, 3.5);

  const PacketDecode d = receiver.decode(rx, &profile);
  ASSERT_TRUE(d.detected);
  ASSERT_TRUE(d.header_ok);
  EXPECT_EQ(d.header, h);
  EXPECT_TRUE(d.crc_ok) << "SNR=" << c.snr_db;
  EXPECT_EQ(d.payload, payload);
  EXPECT_LT(bit_error_rate(f.air_bits(), d.air_bits), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReceiverSweep,
    ::testing::Values(RxCase{10.0, 200, Modulation::BPSK},
                      RxCase{14.0, 500, Modulation::BPSK},
                      RxCase{20.0, 200, Modulation::QPSK},
                      RxCase{24.0, 400, Modulation::QAM16},
                      RxCase{30.0, 200, Modulation::QAM64},
                      RxCase{12.0, 1500, Modulation::BPSK}));

// ---------------------------------------------------------------------------
// Chunk decoder: block interpolation engine + tracking edge cases.
// ---------------------------------------------------------------------------

TEST(ChunkDecoder, BatchedRouteBitIdenticalToPerSymbol) {
  // The batched per-tracking-block fetch (SincInterpolator::at_batch) must
  // reproduce the per-symbol raw_symbol route bit-for-bit — same decode,
  // same tracked link state — across random channels and seeds.
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    Rng rng(seed);
    FrameHeader h;
    h.sender_id = 3;
    h.seq = static_cast<std::uint16_t>(seed);
    h.payload_bytes = 120;
    const TxFrame f = build_frame(h, rng.bytes(120));

    chan::ImpairmentConfig icfg;
    icfg.snr_db = 12.0;
    icfg.freq_offset_max = 2e-3;
    const auto cp = chan::random_channel(rng, icfg);
    const CVec rx = chan::clean_reception(rng, f.symbols, cp);
    const auto pe = estimate_at_peak(rx, 64, cp.freq_offset);

    const auto make_est = [&] {
      LinkEstimate est;
      est.params.h = pe.h;
      est.params.freq_offset = cp.freq_offset;
      est.params.mu = pe.mu;
      est.params.isi = cp.isi;
      est.equalizer = cp.isi.inverse(7, 3);  // non-trivial guard margin
      est.noise_var = estimate_noise_floor(rx);
      return est;
    };

    const std::size_t total = layout_for(h).total_syms;
    std::vector<SymbolSpec> specs(total);
    const CVec& pre = preamble(kPreambleLength);
    for (std::size_t k = 0; k < total; ++k) {
      specs[k].mod = Modulation::BPSK;
      if (k < pre.size()) specs[k].pilot = pre[k];
    }

    const ChunkDecoder batched({}, 8, /*block_interp=*/true);
    const ChunkDecoder persym({}, 8, /*block_interp=*/false);
    LinkEstimate ea = make_est(), eb = make_est();
    const auto ra = batched.decode(rx, pe.origin, 0, total, specs, ea);
    const auto rb = persym.decode(rx, pe.origin, 0, total, specs, eb);

    ASSERT_EQ(ra.soft.size(), rb.soft.size());
    for (std::size_t k = 0; k < ra.soft.size(); ++k) {
      EXPECT_EQ(ra.soft[k], rb.soft[k]) << "seed=" << seed << " k=" << k;
      EXPECT_EQ(ra.decided[k], rb.decided[k]) << "seed=" << seed << " k=" << k;
    }
    EXPECT_EQ(ra.noise_var, rb.noise_var);
    EXPECT_EQ(ea.params.h, eb.params.h);
    EXPECT_EQ(ea.params.freq_offset, eb.params.freq_offset);
    EXPECT_EQ(ea.params.mu, eb.params.mu);
    EXPECT_EQ(ea.noise_var, eb.noise_var);
  }
}

TEST(ChunkDecoder, ShortBlockUpdatesTiming) {
  // A <=2-symbol block (short tail chunk) used to skip the timing-error
  // estimator entirely — its central-difference loop was empty — while
  // still applying phase/amplitude corrections. The degenerate block now
  // uses the one-sided slope: a known sampling offset must pull mu toward
  // the truth.
  CVec syms = {cplx{1.0, 0.0}, cplx{-1.0, 0.0}};
  chan::ChannelParams cp;
  cp.h = {1.0, 0.0};
  cp.mu = 0.3;  // true sampling offset the estimate does not know about
  CVec buf(96, cplx{0.0, 0.0});
  chan::add_signal(buf, 32, syms, cp);

  LinkEstimate est;  // mu = 0: sampling early by 0.3 samples
  std::vector<SymbolSpec> specs(2);
  specs[0] = {Modulation::BPSK, syms[0]};
  specs[1] = {Modulation::BPSK, syms[1]};
  const ChunkDecoder dec;
  (void)dec.decode(buf, 32, 0, 2, specs, est);
  EXPECT_GT(est.params.mu, 0.01) << "degenerate block left mu untouched";
  EXPECT_LT(est.params.mu, 0.3 + 0.05);
}

TEST(ChunkDecoder, NoiseEwmaSeedsFromFirstMeasurement) {
  Rng rng(77);
  FrameHeader h;
  h.payload_bytes = 80;
  const TxFrame f = build_frame(h, rng.bytes(80));
  chan::ChannelParams cp;
  cp.h = std::sqrt(db_to_lin(12.0)) * rng.unit_phasor();
  cp.mu = 0.1;
  const CVec rx = chan::clean_reception(rng, f.symbols, cp);
  const auto pe = estimate_at_peak(rx, 64, 0.0);

  LinkEstimate est;
  est.params.h = pe.h;
  est.params.mu = pe.mu;
  est.noise_var = 123.0;  // prior of a different scale must not leak in
  ASSERT_FALSE(est.noise_seeded);

  const std::size_t total = layout_for(h).total_syms;
  std::vector<SymbolSpec> specs(total);
  const CVec& pre = preamble(kPreambleLength);
  for (std::size_t k = 0; k < total; ++k) {
    specs[k].mod = Modulation::BPSK;
    if (k < pre.size()) specs[k].pilot = pre[k];
  }

  const ChunkDecoder dec;
  const auto first =
      dec.decode(rx, pe.origin, 0, 64, {specs.data(), 64}, est);
  EXPECT_TRUE(est.noise_seeded);
  EXPECT_DOUBLE_EQ(est.noise_var, first.noise_var);  // seeded, not blended

  const double prev = est.noise_var;
  const auto second =
      dec.decode(rx, pe.origin, 64, 128, {specs.data() + 64, 64}, est);
  EXPECT_DOUBLE_EQ(est.noise_var, 0.9 * prev + 0.1 * second.noise_var);
}

TEST(Receiver, NoiseFloorEstimate) {
  Rng rng(9);
  CVec rx(600, cplx{});
  for (auto& s : rx) s = rng.gaussian_c(2.0);
  for (std::size_t i = 200; i < 500; ++i) rx[i] += cplx{8.0, 0.0};
  EXPECT_NEAR(estimate_noise_floor(rx), 2.0, 0.8);
}

TEST(Receiver, NoDetectionOnPureNoise) {
  Rng rng(10);
  CVec rx(2000, cplx{});
  for (auto& s : rx) s = rng.gaussian_c(1.0);
  const StandardReceiver receiver;
  SenderProfile p;
  p.snr_db = 10.0;
  EXPECT_FALSE(receiver.decode(rx, &p).detected);
}

TEST(Receiver, PreambleEstimateAccuracy) {
  Rng rng(11);
  FrameHeader h;
  h.payload_bytes = 100;
  const TxFrame f = build_frame(h, rng.bytes(100));

  chan::ChannelParams cp;
  cp.h = std::sqrt(db_to_lin(15.0)) * rng.unit_phasor();
  cp.freq_offset = 8e-4;
  cp.mu = 0.21;
  const CVec rx = chan::clean_reception(rng, f.symbols, cp, 64, 32, 1.0);

  const auto pe = estimate_at_peak(rx, 64, 0.0, kPreambleLength);
  EXPECT_LT(std::abs(pe.h - cp.h) / std::abs(cp.h), 0.25);
  EXPECT_NEAR(pe.freq_offset, cp.freq_offset, 3e-4);
  EXPECT_NEAR(pe.mu, cp.mu, 0.15);
}

TEST(Receiver, TrackingSurvivesLongPacketWithResidualOffset) {
  // 1500-byte packet with a frequency offset: phase accumulates over 12k
  // symbols; without tracking this would rotate far past π/2 (Fig 5-2a).
  Rng rng(12);
  FrameHeader h;
  h.payload_bytes = 1500;
  const Bytes payload = rng.bytes(1500);
  const TxFrame f = build_frame(h, payload);

  chan::ChannelParams cp;
  cp.h = std::sqrt(db_to_lin(12.0)) * rng.unit_phasor();
  cp.freq_offset = 5e-5;  // residual after coarse correction
  cp.mu = -0.3;
  const CVec rx = chan::clean_reception(rng, f.symbols, cp);

  const StandardReceiver receiver;  // tracking on by default
  const PacketDecode d = receiver.decode(rx, nullptr);
  ASSERT_TRUE(d.header_ok);
  EXPECT_TRUE(d.crc_ok);
  // The tracker should have converged to the true offset.
  EXPECT_NEAR(d.est.params.freq_offset, cp.freq_offset, 5e-5);
}

TEST(Receiver, TrackingDisabledFailsOnLongPacket) {
  Rng rng(13);
  FrameHeader h;
  h.payload_bytes = 1500;
  const TxFrame f = build_frame(h, rng.bytes(1500));

  chan::ChannelParams cp;
  cp.h = std::sqrt(db_to_lin(12.0)) * rng.unit_phasor();
  cp.freq_offset = 5e-5;
  const CVec rx = chan::clean_reception(rng, f.symbols, cp);

  ReceiverConfig cfg;
  cfg.gains.enabled = false;  // ablation: no phase/timing tracking
  const StandardReceiver receiver(cfg);
  const PacketDecode d = receiver.decode(rx, nullptr);
  // The packet cannot pass CRC: accumulated rotation flips late bits.
  EXPECT_FALSE(d.crc_ok);
}

}  // namespace
}  // namespace zz::phy
