// zz::Atomic<T> façade (zz/common/atomic.h): production pass-through
// semantics, zero overhead (no size growth, no allocations), and the
// helper shapes (fetch_max, AtomicFlag/Guard, EntryCounter) the ported
// protocols lean on. These tests run in EVERY build configuration —
// under ZZ_MODEL_CHECK the objects here are constructed outside any
// exploration, so they exercise the fall-through-to-std::atomic path the
// model build's ordinary test suite depends on.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "zz/common/alloc_hook.h"
#include "zz/common/atomic.h"

namespace zz {
namespace {

// Zero overhead: the façade is exactly its embedded atomic — no extra
// members in any configuration (the model checker keys state off the
// object's address, not off per-object storage).
static_assert(sizeof(Atomic<bool>) == sizeof(bool));
static_assert(sizeof(Atomic<std::uint8_t>) == sizeof(std::uint8_t));
static_assert(sizeof(Atomic<int>) == sizeof(int));
static_assert(sizeof(Atomic<std::uint64_t>) == sizeof(std::uint64_t));
static_assert(sizeof(AtomicFlag) == sizeof(bool));
static_assert(sizeof(EntryCounter) == sizeof(int));

TEST(Atomic, LoadStoreExchangeRoundTrip) {
  Atomic<int> a{7};
  EXPECT_EQ(a.load(std::memory_order_relaxed), 7);
  a.store(-3, std::memory_order_release);
  EXPECT_EQ(a.load(std::memory_order_acquire), -3);
  EXPECT_EQ(a.exchange(11, std::memory_order_acq_rel), -3);
  EXPECT_EQ(a.load(std::memory_order_relaxed), 11);
}

TEST(Atomic, DefaultConstructionZeroInitializes) {
  Atomic<std::uint64_t> a;
  EXPECT_EQ(a.load(std::memory_order_relaxed), 0u);
}

TEST(Atomic, CompareExchangeSuccessAndFailure) {
  Atomic<std::uint64_t> a{5};
  std::uint64_t expected = 4;
  EXPECT_FALSE(a.compare_exchange_strong(expected, 9,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed));
  EXPECT_EQ(expected, 5u);  // failure loads the current value
  EXPECT_TRUE(a.compare_exchange_strong(expected, 9,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed));
  EXPECT_EQ(a.load(std::memory_order_relaxed), 9u);
}

TEST(Atomic, FetchAddSubReturnPriorValue) {
  Atomic<std::int64_t> a{10};
  EXPECT_EQ(a.fetch_add(5, std::memory_order_relaxed), 10);
  EXPECT_EQ(a.fetch_sub(3, std::memory_order_relaxed), 15);
  EXPECT_EQ(a.load(std::memory_order_relaxed), 12);
}

TEST(Atomic, NarrowTypesWrapAtTheirWidth) {
  Atomic<std::uint8_t> a{250};
  EXPECT_EQ(a.fetch_add(10, std::memory_order_relaxed), 250);
  EXPECT_EQ(a.load(std::memory_order_relaxed), 4);  // 260 mod 256
  Atomic<bool> b{false};
  EXPECT_FALSE(b.exchange(true, std::memory_order_acquire));
  EXPECT_TRUE(b.exchange(false, std::memory_order_acq_rel));
}

TEST(Atomic, OperationsDoNotAllocate) {
  AllocTally tally;
  Atomic<std::uint64_t> a{1};
  for (int i = 0; i < 1000; ++i) {
    a.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t e = a.load(std::memory_order_relaxed);
    a.compare_exchange_weak(e, e + 1, std::memory_order_acq_rel,
                            std::memory_order_relaxed);
    fetch_max(a, e, std::memory_order_relaxed);
  }
  EXPECT_EQ(tally.allocs(), 0u);
}

TEST(FetchMax, RaisesAndReturnsPrior) {
  Atomic<int> a{5};
  EXPECT_EQ(fetch_max(a, 9, std::memory_order_relaxed), 5);
  EXPECT_EQ(a.load(std::memory_order_relaxed), 9);
  EXPECT_EQ(fetch_max(a, 3, std::memory_order_relaxed), 9);  // no lowering
  EXPECT_EQ(a.load(std::memory_order_relaxed), 9);
}

TEST(FetchMax, NeverLosesAConcurrentMaximum) {
  Atomic<std::uint64_t> peak{0};
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&peak, t] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i)
        fetch_max(peak, std::uint64_t(t) * kPerThread + i,
                  std::memory_order_relaxed);
    });
  for (auto& th : ts) th.join();
  EXPECT_EQ(peak.load(std::memory_order_relaxed),
            std::uint64_t(kThreads) * kPerThread);
}

TEST(AtomicFlag, SecondAcquireFailsUntilRelease) {
  AtomicFlag f;
  EXPECT_FALSE(f.held(std::memory_order_relaxed));
  EXPECT_TRUE(f.try_acquire());
  EXPECT_TRUE(f.held(std::memory_order_relaxed));
  EXPECT_FALSE(f.try_acquire());
  f.release();
  EXPECT_TRUE(f.try_acquire());
  f.release();
}

TEST(AtomicFlagGuard, ReleasesOnlyWhatItAcquired) {
  AtomicFlag f;
  {
    AtomicFlagGuard outer(f);
    ASSERT_TRUE(outer.acquired());
    {
      AtomicFlagGuard inner(f);
      EXPECT_FALSE(inner.acquired());
    }
    // The failed inner guard must not have released the outer's hold.
    EXPECT_TRUE(f.held(std::memory_order_relaxed));
  }
  EXPECT_FALSE(f.held(std::memory_order_relaxed));
}

TEST(EntryCounter, ReportsPriorOccupancy) {
  EntryCounter c;
  EXPECT_EQ(c.enter(), 0);  // sole owner
  EXPECT_EQ(c.enter(), 1);  // overlap detected
  EXPECT_EQ(c.exit(), 2);
  EXPECT_EQ(c.exit(), 1);  // we were sole owner again
}

}  // namespace
}  // namespace zz
