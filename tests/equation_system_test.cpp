// Tests for the "Collision Helps" equation-system layer: chunk-equation
// partitioning and the message-passing plan (zz/zigzag/equation_system.h),
// plus the waveform executor (zz/zigzag/algebraic_mp.h) on synthesized
// collisions — including the equal-offset pattern that pure zigzag cannot
// decode (Assertion 4.5.1) but 2x2 Gaussian elimination can.
#include <gtest/gtest.h>

#include <cmath>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/algebraic_mp.h"
#include "zz/zigzag/decoder.h"
#include "zz/zigzag/equation_system.h"
#include "zz/zigzag/scheduler.h"

namespace zz::zigzag {
namespace {

// ---------------------------------------------------------------------------
// Chunk equations (geometry).
// ---------------------------------------------------------------------------

TEST(ChunkEquations, PairCollisionPartitions) {
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 30}}};
  const auto eqs = chunk_equations(p);
  // Segments: [0,30) deg-1, [30,100) deg-2, [100,130) deg-1.
  ASSERT_EQ(eqs.size(), 3u);
  EXPECT_EQ(eqs[0].degree(), 1u);
  EXPECT_EQ(eqs[0].t0, 0);
  EXPECT_EQ(eqs[0].t1, 30);
  EXPECT_EQ(eqs[0].terms[0].packet, 0u);
  EXPECT_EQ(eqs[1].degree(), 2u);
  EXPECT_EQ(eqs[1].t0, 30);
  EXPECT_EQ(eqs[1].t1, 100);
  EXPECT_EQ(eqs[2].degree(), 1u);
  EXPECT_EQ(eqs[2].terms[0].packet, 1u);
  EXPECT_EQ(eqs[2].terms[0].k0, 70u);
  EXPECT_EQ(eqs[2].terms[0].k1, 100u);
}

TEST(ChunkEquations, FullyOverlappedPairIsOneEquation) {
  Pattern p;
  p.lengths = {80, 80};
  p.collisions = {{{0, 0}, {1, 0}}};
  const auto eqs = chunk_equations(p);
  ASSERT_EQ(eqs.size(), 1u);
  EXPECT_EQ(eqs[0].degree(), 2u);
}

TEST(ChunkEquations, ThreeWayBoundaries) {
  Pattern p;
  p.lengths = {100, 100, 100};
  p.collisions = {{{0, 0}, {1, 20}, {2, 50}}};
  const auto eqs = chunk_equations(p);
  // Cuts at 0,20,50,100,120,150 -> five populated segments.
  ASSERT_EQ(eqs.size(), 5u);
  EXPECT_EQ(eqs[2].degree(), 3u);  // [50,100): all three packets
}

TEST(ChunkEquations, RejectsBadPlacement) {
  Pattern p;
  p.lengths = {10};
  p.collisions = {{{3, 0}}};
  EXPECT_THROW((void)chunk_equations(p), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Message-passing plan.
// ---------------------------------------------------------------------------

TEST(MessagePassingPlan, PeelsWhereGreedySucceeds) {
  // The classic hidden-terminal pair: peeling alone must solve it, no
  // eliminations needed.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 30}}, {{0, 0}, {1, 70}}};
  const auto plan = message_passing_plan(p);
  EXPECT_TRUE(plan.complete);
  EXPECT_GT(plan.peels, 0u);
  EXPECT_EQ(plan.eliminations, 0u);
  EXPECT_TRUE(greedy_schedule(p).complete);  // agreement with §4.5
}

TEST(MessagePassingPlan, EliminatesWhereGreedyFails) {
  // Identical offsets in both collisions: zigzag-undecodable (Assertion
  // 4.5.1), but the coefficients of the two equations are independent, so
  // one 2x2 elimination unlocks the rest.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 40}}, {{0, 0}, {1, 40}}};
  EXPECT_FALSE(greedy_schedule(p).complete);
  EXPECT_FALSE(pairwise_condition_holds(p));
  const auto plan = message_passing_plan(p);
  EXPECT_TRUE(plan.complete);
  EXPECT_GE(plan.eliminations, 1u);
  // The eliminated range is the pair's overlap in packet 0's indices.
  bool saw = false;
  for (const auto& s : plan.steps)
    if (s.kind == MpStep::Kind::Eliminate) {
      saw = true;
      EXPECT_EQ(s.packet, 0u);
      EXPECT_EQ(s.other_packet, 1u);
      EXPECT_EQ(s.k0, 40u);
      EXPECT_EQ(s.k1, 100u);
    }
  EXPECT_TRUE(saw);
}

TEST(MessagePassingPlan, FullyOverlappedEqualPairSolved) {
  // Complete overlap at offset 0 twice: no overhanging chunk at all, the
  // whole packet pair is recovered by elimination alone.
  Pattern p;
  p.lengths = {60, 60};
  p.collisions = {{{0, 0}, {1, 0}}, {{0, 0}, {1, 0}}};
  EXPECT_FALSE(greedy_schedule(p).complete);
  const auto plan = message_passing_plan(p);
  EXPECT_TRUE(plan.complete);
  EXPECT_GE(plan.eliminations, 1u);
}

TEST(MessagePassingPlan, SingleEquationStaysUnresolved) {
  // One collision of a fully-overlapped pair: one equation, two unknowns —
  // no algebra recovers that.
  Pattern p;
  p.lengths = {80, 80};
  p.collisions = {{{0, 0}, {1, 0}}};
  const auto plan = message_passing_plan(p);
  EXPECT_FALSE(plan.complete);
  ASSERT_EQ(plan.unresolved_packets.size(), 2u);
}

TEST(MessagePassingPlan, GuardShrinksPeelRuns) {
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 30}}, {{0, 0}, {1, 70}}};
  const auto p0 = message_passing_plan(p, 0);
  const auto p4 = message_passing_plan(p, 4);
  EXPECT_TRUE(p0.complete);
  EXPECT_TRUE(p4.complete);
  EXPECT_GE(p4.steps.size(), p0.steps.size());
}

TEST(MessagePassingPlan, ThreeSendersComplete) {
  Pattern p;
  p.lengths = {100, 100, 100};
  p.collisions = {{{0, 0}, {1, 20}, {2, 50}},
                  {{0, 0}, {1, 60}, {2, 20}},
                  {{0, 0}, {1, 40}, {2, 80}}};
  const auto plan = message_passing_plan(p);
  EXPECT_TRUE(plan.complete);
}

// ---------------------------------------------------------------------------
// Waveform executor: AlgebraicMpDecoder on synthesized collisions.
// ---------------------------------------------------------------------------

struct Party {
  phy::TxFrame frame;
  chan::ChannelParams channel;
  phy::SenderProfile profile;
};

Party make_party(Rng& rng, std::uint8_t id, std::uint16_t seq,
                 std::size_t payload_bytes, double snr_db) {
  Party p;
  phy::FrameHeader h;
  h.sender_id = id;
  h.seq = seq;
  h.payload_bytes = static_cast<std::uint16_t>(payload_bytes);
  p.frame = phy::build_frame(h, rng.bytes(payload_bytes));
  chan::ImpairmentConfig icfg;
  icfg.snr_db = snr_db;
  icfg.freq_offset_max = 2e-3;
  p.channel = chan::random_channel(rng, icfg);
  p.profile.id = id;
  p.profile.freq_offset = p.channel.freq_offset + rng.uniform(-2e-5, 2e-5);
  p.profile.snr_db = snr_db;
  p.profile.isi = p.channel.isi;
  if (!p.channel.isi.is_identity())
    p.profile.equalizer = p.channel.isi.inverse(7, 3);
  return p;
}

Detection detect_at(const CVec& rx, std::ptrdiff_t origin,
                    const phy::SenderProfile& prof, int profile_index) {
  const auto pe = phy::estimate_at_peak(rx, static_cast<std::size_t>(origin),
                                        prof.freq_offset);
  Detection d;
  d.origin = pe.origin;
  d.mu = pe.mu;
  d.h = pe.h;
  d.freq_offset = prof.freq_offset;
  d.metric = pe.metric;
  d.profile_index = profile_index;
  return d;
}

struct PairFixture {
  emu::Reception c1, c2;
  Party alice, bob;
  std::vector<phy::SenderProfile> profiles;
  CollisionInput in1, in2;
};

// Two collisions of the same packet pair at sample offsets d1, d2.
PairFixture make_pair(Rng& rng, std::size_t payload, double snr_db,
                      std::ptrdiff_t d1, std::ptrdiff_t d2) {
  PairFixture s;
  s.alice = make_party(rng, 1, 100, payload, snr_db);
  s.bob = make_party(rng, 2, 200, payload, snr_db);
  s.c1 = emu::CollisionBuilder()
             .lead(64)
             .add(s.alice.frame, s.alice.channel, 0)
             .add(s.bob.frame, s.bob.channel, d1)
             .build(rng);
  auto a2 = chan::retransmission_channel(rng, s.alice.channel, 0.0);
  auto b2 = chan::retransmission_channel(rng, s.bob.channel, 0.0);
  s.c2 = emu::CollisionBuilder()
             .lead(64)
             .add(phy::with_retry(s.alice.frame, true), a2, 0)
             .add(phy::with_retry(s.bob.frame, true), b2, d2)
             .build(rng);
  s.profiles = {s.alice.profile, s.bob.profile};
  s.in1.samples = &s.c1.samples;
  s.in1.placements = {
      {0, detect_at(s.c1.samples, s.c1.truth[0].start, s.alice.profile, 0)},
      {1, detect_at(s.c1.samples, s.c1.truth[1].start, s.bob.profile, 1)}};
  s.in2.samples = &s.c2.samples;
  s.in2.is_retransmission = true;
  s.in2.placements = {
      {0, detect_at(s.c2.samples, s.c2.truth[0].start, s.alice.profile, 0)},
      {1, detect_at(s.c2.samples, s.c2.truth[1].start, s.bob.profile, 1)}};
  return s;
}

double packet_ber(const phy::TxFrame& truth, const PacketResult& r) {
  if (!r.header_ok) return 1.0;
  const phy::TxFrame& ref = truth.header.retry == r.header.retry
                                ? truth
                                : phy::with_retry(truth, r.header.retry);
  return bit_error_rate(ref.air_bits(), r.air_bits);
}

TEST(AlgebraicMpDecoder, PeelsClassicPairMostlyClean) {
  // Peel-only recovery of the classic pair. Without the §4.2.4 tracking
  // refinements the mid-packet symbols (where both ladders' accumulated
  // subtraction error meets) carry a ~1% error floor — the documented gap
  // to the full zigzag decoder; the scenario engine reaches delivery-grade
  // BER by requesting extra equations (scenario_test pins that).
  Rng rng(7);
  const auto s = make_pair(rng, 150, 14.0, 80, 240);
  const CollisionInput ins[] = {s.in1, s.in2};
  const AlgebraicMpDecoder dec;
  const auto res = dec.decode({ins, 2}, s.profiles, 2,
                              phy::layout_for(s.alice.frame.header).total_syms);
  ASSERT_EQ(res.packets.size(), 2u);
  EXPECT_TRUE(res.packets[0].header_ok);
  EXPECT_TRUE(res.packets[1].header_ok);
  EXPECT_LT(packet_ber(s.alice.frame, res.packets[0]), 5e-2);
  EXPECT_LT(packet_ber(s.bob.frame, res.packets[1]), 5e-2);
}

TEST(AlgebraicMpDecoder, EliminatesEqualOffsetPairZigZagCannot) {
  // The same relative offset in both collisions — the pattern Assertion
  // 4.5.1 declares zigzag-undecodable. The algebraic receiver solves it by
  // per-symbol 2x2 elimination over the two (random-phase) channel gains.
  Rng rng(11);
  const auto s = make_pair(rng, 150, 20.0, 120, 120);
  const CollisionInput ins[] = {s.in1, s.in2};
  const std::size_t syms = phy::layout_for(s.alice.frame.header).total_syms;

  const AlgebraicMpDecoder mp;
  const auto res = mp.decode({ins, 2}, s.profiles, 2, syms);
  ASSERT_EQ(res.packets.size(), 2u);
  EXPECT_LT(packet_ber(s.alice.frame, res.packets[0]), 1e-2);
  EXPECT_LT(packet_ber(s.bob.frame, res.packets[1]), 1e-2);

  // The full zigzag decoder on the same inputs leaves symbols unresolved
  // or badly decoded — the offsets carry no chunk structure.
  const ZigZagDecoder zz;
  const auto zres = zz.decode({ins, 2}, s.profiles, 2);
  const double zz_worst = std::max(packet_ber(s.alice.frame, zres.packets[0]),
                                   packet_ber(s.bob.frame, zres.packets[1]));
  const double mp_worst = std::max(packet_ber(s.alice.frame, res.packets[0]),
                                   packet_ber(s.bob.frame, res.packets[1]));
  EXPECT_LT(mp_worst, zz_worst);
}

TEST(AlgebraicMpDecoder, RejectsNullSamples) {
  CollisionInput in;
  const AlgebraicMpDecoder dec;
  EXPECT_THROW((void)dec.decode({&in, 1}, {}, 1), std::invalid_argument);
}

TEST(AlgebraicMpDecoder, EmptyInputsReturnEmpty) {
  const AlgebraicMpDecoder dec;
  const auto res = dec.decode({}, {}, 0);
  EXPECT_TRUE(res.packets.empty());
}

}  // namespace
}  // namespace zz::zigzag
