// Tests for the streaming receiver pipeline (sample-in → packet-out):
// ring-buffer ingest, the incremental SlidingCorrelator stream, the
// WAIT_PREAMBLE → WAIT_PAYLOAD → JOINT_PENDING frame tracker, and the
// gated streaming contract — bit-identical packets vs the offline route
// under ANY chunking of the input, with bounded per-push work.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "zz/chan/channel.h"
#include "zz/common/rng.h"
#include "zz/emu/collision.h"
#include "zz/phy/framer.h"
#include "zz/phy/preamble.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/signal/correlate.h"
#include "zz/signal/ring.h"
#include "zz/testbed/scenario.h"
#include "zz/zigzag/receiver.h"
#include "zz/zigzag/streaming.h"

namespace zz {
namespace {

// ---------------------------------------------------------------------------
// SampleRing: absolute positions across wrap and growth.
// ---------------------------------------------------------------------------

CVec ramp(std::size_t n, std::size_t start = 0) {
  CVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = cplx{static_cast<double>(start + i),
                -static_cast<double>(start + i) / 3.0};
  return v;
}

TEST(SampleRing, WrapAroundKeepsAbsolutePositions) {
  sig::SampleRing ring(16);  // rounds up to a small power of two
  const CVec all = ramp(1000);
  std::size_t fed = 0;
  // Push / drop in a pattern that wraps the ring many times while keeping
  // the retained window smaller than the capacity.
  while (fed < all.size()) {
    const std::size_t chunk = std::min<std::size_t>(7, all.size() - fed);
    ring.push(all.data() + fed, chunk);
    fed += chunk;
    if (ring.size() > 10) ring.drop_before(ring.end_pos() - 10);
  }
  EXPECT_EQ(ring.end_pos(), all.size());
  EXPECT_LE(ring.capacity(), 32u);  // never grew past the retained window
  for (std::uint64_t p = ring.begin_pos(); p < ring.end_pos(); ++p)
    EXPECT_EQ(ring.at(p), all[static_cast<std::size_t>(p)]);
  CVec out;
  ring.copy_range(ring.begin_pos(), ring.end_pos(), out);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], all[static_cast<std::size_t>(ring.begin_pos()) + i]);
}

TEST(SampleRing, GrowthPreservesRetainedSamples) {
  sig::SampleRing ring(8);
  const CVec all = ramp(300, 77);
  ring.push(all.data(), 5);
  ring.drop_before(3);  // leave a wrapped, non-zero-based window
  ring.push(all.data() + 5, all.size() - 5);  // forces several growths
  EXPECT_EQ(ring.begin_pos(), 3u);
  EXPECT_EQ(ring.end_pos(), all.size());
  CVec out;
  ring.copy_range(3, all.size(), out);
  ASSERT_EQ(out.size(), all.size() - 3);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], all[i + 3]);
}

TEST(SampleRing, DropClampsAndResetForgets) {
  sig::SampleRing ring;
  const CVec v = ramp(10);
  ring.push(v);
  ring.drop_before(1000);  // past the end: clamps, doesn't corrupt
  EXPECT_EQ(ring.begin_pos(), 10u);
  EXPECT_EQ(ring.end_pos(), 10u);
  EXPECT_TRUE(ring.empty());
  ring.reset();
  EXPECT_EQ(ring.begin_pos(), 0u);
  ring.push(v);
  EXPECT_EQ(ring.at(0), v[0]);
}

// ---------------------------------------------------------------------------
// Streaming SlidingCorrelator: extend() must be bit-identical to a batch
// prepare() of the same stream, at every hypothesis, under any chunking.
// ---------------------------------------------------------------------------

CVec noise_stream(Rng& rng, std::size_t n) {
  CVec v(n);
  for (auto& x : v) x = rng.gaussian_c(1.0);
  return v;
}

TEST(StreamingCorrelator, ExtendMatchesPrepareBitForBit) {
  Rng rng(42);
  const CVec ref = phy::preamble_waveform(phy::kPreambleLength);
  const CVec stream = noise_stream(rng, 1777);
  const double freqs[] = {0.0, 7.3e-4, -1.9e-3};

  sig::SlidingCorrelator batch(ref);
  batch.prepare(stream);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng part(seed);
    sig::SlidingCorrelator inc(ref);
    inc.begin_stream();
    std::size_t fed = 0;
    while (fed < stream.size()) {
      const auto chunk = static_cast<std::size_t>(part.uniform_int(
          1, static_cast<std::int64_t>(std::min<std::size_t>(
                 400, stream.size() - fed))));
      inc.extend(stream.data() + fed, chunk);
      fed += chunk;
    }
    ASSERT_EQ(inc.stream_length(), stream.size());
    ASSERT_EQ(inc.stream_positions(), batch.positions());
    for (const double f : freqs) {
      CVec want, got;
      batch.correlate(f, want);
      inc.correlate_range(f, 0, inc.stream_positions(), got);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << "freq " << f << " alignment " << i
                                   << " partition seed " << seed;
    }
  }
}

TEST(StreamingCorrelator, FinalizedAlignmentsStableUnderLaterAppends) {
  Rng rng(7);
  const CVec ref = phy::preamble_waveform(phy::kPreambleLength);
  const CVec stream = noise_stream(rng, 1200);

  sig::SlidingCorrelator inc(ref);
  inc.begin_stream();
  inc.extend(stream.data(), 700);
  const std::size_t stable = inc.final_positions();
  ASSERT_GT(stable, 0u);
  CVec before;
  inc.correlate_range(4.2e-4, 0, stable, before);

  inc.extend(stream.data() + 700, stream.size() - 700);
  CVec after;
  inc.correlate_range(4.2e-4, 0, stable, after);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    ASSERT_EQ(before[i], after[i]) << "alignment " << i;
}

TEST(StreamingCorrelator, RangeQueriesMatchFullQuery) {
  Rng rng(9);
  const CVec ref = phy::preamble_waveform(phy::kPreambleLength);
  const CVec stream = noise_stream(rng, 900);
  sig::SlidingCorrelator inc(ref);
  inc.begin_stream();
  inc.extend(stream);
  CVec full;
  inc.correlate_range(0.0, 0, inc.stream_positions(), full);
  // Piecewise queries over awkward sub-ranges see the same values.
  for (std::size_t from = 0; from < full.size(); from += 131) {
    const std::size_t to = std::min(full.size(), from + 131);
    CVec piece;
    inc.correlate_range(0.0, from, to, piece);
    for (std::size_t i = 0; i < piece.size(); ++i)
      ASSERT_EQ(piece[i], full[from + i]);
  }
}

// ---------------------------------------------------------------------------
// FrameSync: exact window recovery under any chunking, and the state
// machine of the tracker.
// ---------------------------------------------------------------------------

TEST(FrameSync, RecoversWindowsExactlyUnderAnyChunking) {
  Rng rng(11);
  CVec stream;
  auto append_silence = [&](std::size_t n) {
    stream.insert(stream.end(), n, cplx{0.0, 0.0});
  };
  auto append_burst = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) stream.push_back(rng.gaussian_c(1.0));
  };
  append_silence(50);
  append_burst(300);   // window 1: [50, 350)
  append_silence(40);
  append_burst(211);   // window 2: [390, 601)
  append_silence(100);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, stream.size()}) {
    phy::FrameSync sync;
    std::vector<phy::FrameWindow> wins;
    for (std::size_t off = 0; off < stream.size(); off += chunk)
      sync.push(stream.data() + off, std::min(chunk, stream.size() - off),
                wins);
    sync.finish(wins);
    ASSERT_EQ(wins.size(), 2u) << "chunk " << chunk;
    EXPECT_EQ(wins[0].begin, 50u);
    EXPECT_EQ(wins[0].end, 350u);
    EXPECT_EQ(wins[0].decided_at, 350u + sync.config().gap_hang);
    EXPECT_EQ(wins[1].begin, 390u);
    EXPECT_EQ(wins[1].end, 601u);
    EXPECT_EQ(wins[1].decided_at, 601u + sync.config().gap_hang);
  }
}

TEST(FrameSync, ShortGapDoesNotSplitAWindow) {
  phy::FrameSync sync;  // gap_hang = 24 by default
  CVec stream(100, cplx{1.0, 0.0});
  for (std::size_t i = 40; i < 60; ++i) stream[i] = cplx{0.0, 0.0};  // 20 < 24
  std::vector<phy::FrameWindow> wins;
  sync.push(stream.data(), stream.size(), wins);
  sync.finish(wins);
  ASSERT_EQ(wins.size(), 1u);
  EXPECT_EQ(wins[0].begin, 0u);
  EXPECT_EQ(wins[0].end, 100u);  // the quiet dip is window content
}

TEST(FrameSync, TrackerStatesAdvanceAndResetPerWindow) {
  phy::FrameSync sync;
  std::vector<phy::FrameWindow> wins;
  const CVec on(10, cplx{1.0, 0.0});
  const CVec off(30, cplx{0.0, 0.0});

  EXPECT_EQ(sync.state(), phy::SyncState::WaitPreamble);
  sync.push(on.data(), on.size(), wins);
  ASSERT_TRUE(sync.in_window());
  sync.note_preamble(2);
  EXPECT_EQ(sync.state(), phy::SyncState::WaitPayload);
  sync.note_preamble(8);  // a second overlapped start: it's a collision
  EXPECT_EQ(sync.state(), phy::SyncState::JointPending);
  sync.note_preamble(9);  // further hints don't regress the state
  EXPECT_EQ(sync.state(), phy::SyncState::JointPending);

  sync.push(off.data(), off.size(), wins);
  ASSERT_EQ(wins.size(), 1u);
  EXPECT_EQ(wins[0].final_state, phy::SyncState::JointPending);
  EXPECT_FALSE(sync.in_window());
  EXPECT_EQ(sync.state(), phy::SyncState::WaitPreamble);  // fresh tracker

  sync.note_preamble(33);  // hint with no open window: ignored
  EXPECT_EQ(sync.state(), phy::SyncState::WaitPreamble);
}

TEST(FrameSync, MaxWindowCutsARunawayStream) {
  phy::FramerConfig cfg;
  cfg.max_window = 128;
  phy::FrameSync sync(cfg);
  std::vector<phy::FrameWindow> wins;
  const CVec on(500, cplx{1.0, 0.0});
  sync.push(on.data(), on.size(), wins);
  ASSERT_GE(wins.size(), 3u);
  EXPECT_EQ(wins[0].end - wins[0].begin, 128u);
}

// ---------------------------------------------------------------------------
// The streaming contract: StreamingReceiver emits bit-identical packets to
// the offline ZigZagReceiver fed the same receptions — at any chunking.
// ---------------------------------------------------------------------------

struct Party {
  phy::TxFrame frame;
  chan::ChannelParams channel;
  phy::SenderProfile profile;
};

Party make_party(Rng& rng, std::uint8_t id, std::uint16_t seq,
                 std::size_t payload_bytes, double snr_db) {
  Party p;
  phy::FrameHeader h;
  h.sender_id = id;
  h.seq = seq;
  h.payload_mod = phy::Modulation::BPSK;
  h.payload_bytes = static_cast<std::uint16_t>(payload_bytes);
  p.frame = phy::build_frame(h, rng.bytes(payload_bytes));

  chan::ImpairmentConfig icfg;
  icfg.snr_db = snr_db;
  icfg.freq_offset_max = 2e-3;
  p.channel = chan::random_channel(rng, icfg);

  p.profile.id = id;
  p.profile.freq_offset = p.channel.freq_offset + rng.uniform(-1e-5, 1e-5);
  p.profile.snr_db = snr_db;
  p.profile.mod = phy::Modulation::BPSK;
  p.profile.isi = p.channel.isi;
  if (!p.channel.isi.is_identity())
    p.profile.equalizer = p.channel.isi.inverse(7, 3);
  return p;
}

/// n-sender hidden-terminal log: `collisions` receptions of the same n
/// packets at per-collision offsets.
struct StreamScenario {
  std::vector<Party> parties;
  std::vector<phy::SenderProfile> profiles;
  std::vector<emu::Reception> receptions;
};

StreamScenario make_stream_scenario(
    Rng& rng, std::size_t n,
    const std::vector<std::vector<std::ptrdiff_t>>& offsets) {
  StreamScenario s;
  for (std::size_t i = 0; i < n; ++i) {
    s.parties.push_back(make_party(rng, static_cast<std::uint8_t>(i + 1),
                                   static_cast<std::uint16_t>(100 * (i + 1)),
                                   200, 15.0));
    s.profiles.push_back(s.parties.back().profile);
  }
  for (std::size_t c = 0; c < offsets.size(); ++c) {
    emu::CollisionBuilder builder;
    builder.lead(64);
    for (std::size_t i = 0; i < n; ++i)
      builder.add(phy::with_retry(s.parties[i].frame, c > 0),
                  chan::retransmission_channel(rng, s.parties[i].channel, 0.0),
                  offsets[c][i]);
    s.receptions.push_back(builder.build(rng));
  }
  return s;
}

zigzag::ReceiverOptions receiver_options(std::size_t n) {
  // The production n-client tuning (stock pair config at n = 2, n-way
  // match/detector tuning above) — the same options run_live builds, so
  // these pins cover the configuration the testbed routes actually use.
  return zigzag::ReceiverOptions::for_clients(n);
}

void expect_same_packet(const zigzag::Delivered& a, const zigzag::Delivered& b,
                        std::size_t k) {
  EXPECT_EQ(a.header.sender_id, b.header.sender_id) << "packet " << k;
  EXPECT_EQ(a.header.seq, b.header.seq) << "packet " << k;
  EXPECT_EQ(a.header.retry, b.header.retry) << "packet " << k;
  EXPECT_EQ(a.crc_ok, b.crc_ok) << "packet " << k;
  EXPECT_EQ(a.via_pair, b.via_pair) << "packet " << k;
  EXPECT_EQ(a.via_sic, b.via_sic) << "packet " << k;
  EXPECT_EQ(a.air_bits, b.air_bits) << "packet " << k;   // bit-identical
  EXPECT_EQ(a.payload, b.payload) << "packet " << k;
}

/// Push a reception through the streaming receiver in partition-seeded
/// random chunks, then a silence gap to close its window.
void stream_reception(zigzag::StreamingReceiver& rx, const CVec& samples,
                      Rng& part, std::vector<zigzag::StreamDelivered>& got) {
  std::size_t fed = 0;
  while (fed < samples.size()) {
    const auto chunk = static_cast<std::size_t>(part.uniform_int(
        1, static_cast<std::int64_t>(
               std::min<std::size_t>(700, samples.size() - fed))));
    for (auto& d : rx.push(samples.data() + fed, chunk))
      got.push_back(std::move(d));
    fed += chunk;
  }
  const CVec gap(64, cplx{0.0, 0.0});
  for (auto& d : rx.push(gap)) got.push_back(std::move(d));
}

void check_stream_matches_offline(std::uint64_t seed, std::size_t n) {
  std::vector<std::vector<std::ptrdiff_t>> offsets;
  if (n == 2) {
    offsets = {{0, 150}, {0, 420}};
  } else {
    // Five rounds: a 3-way joint decode needs three well-detected
    // receptions (§4.5), and a preamble lost to a fade in one round (the
    // paper's FN ≈ 2-4% per start) must be recoverable from later
    // retransmissions rather than failing the scenario.
    offsets = {{0, 150, 330},
               {0, 370, 190},
               {0, 260, 470},
               {0, 440, 240},
               {0, 180, 410}};
  }
  Rng rng(seed);
  const StreamScenario sc = make_stream_scenario(rng, n, offsets);

  zigzag::ZigZagReceiver offline(receiver_options(n));
  offline.add_clients(sc.profiles);
  std::vector<zigzag::Delivered> want;
  for (const auto& rec : sc.receptions)
    for (auto& d : offline.receive(rec.samples)) want.push_back(std::move(d));

  zigzag::StreamingOptions sopt;
  sopt.receiver = receiver_options(n);
  zigzag::StreamingReceiver streaming(sopt);
  streaming.add_clients(sc.profiles);
  Rng part(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<zigzag::StreamDelivered> got;
  for (const auto& rec : sc.receptions)
    stream_reception(streaming, rec.samples, part, got);
  for (auto& d : streaming.finish()) got.push_back(std::move(d));

  // The hidden-terminal log must actually decode (the pin would be vacuous
  // on an empty delivery list).
  EXPECT_GE(want.size(), n) << "seed " << seed;
  ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
  for (std::size_t k = 0; k < want.size(); ++k)
    expect_same_packet(got[k].packet, want[k], k);

  // Every reception framed into exactly one window, none spuriously split
  // by a push boundary.
  EXPECT_EQ(streaming.stats().windows, sc.receptions.size());
}

TEST(StreamingReceiver, BitIdenticalToOfflineTwoSenders) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    check_stream_matches_offline(seed, 2);
}

TEST(StreamingReceiver, BitIdenticalToOfflineThreeSenders) {
  // Seeds where the offline route delivers every sender (10 of the first
  // 14 do; the misses are genuine preamble-fade FNs, not pipeline bugs) —
  // the bit-identity assertion itself holds at any seed.
  for (const std::uint64_t seed : {2, 3, 5, 7, 8})
    check_stream_matches_offline(seed, 3);
}

TEST(StreamingReceiver, WindowsStraddlingPushBoundariesMatchContiguous) {
  // The adversarial chunkings: single-sample feeds, and cuts placed inside
  // the detection window (the last W samples of a block) — both must agree
  // with one whole-buffer push.
  Rng rng(77);
  const StreamScenario sc = make_stream_scenario(rng, 2, {{0, 150}, {0, 420}});
  const CVec gap(64, cplx{0.0, 0.0});

  auto run = [&](std::size_t chunk) {
    zigzag::StreamingOptions sopt;
    sopt.receiver = receiver_options(2);
    zigzag::StreamingReceiver rx(sopt);
    rx.add_clients(sc.profiles);
    std::vector<zigzag::StreamDelivered> got;
    for (const auto& rec : sc.receptions) {
      for (std::size_t off = 0; off < rec.samples.size(); off += chunk)
        for (auto& d : rx.push(rec.samples.data() + off,
                               std::min(chunk, rec.samples.size() - off)))
          got.push_back(std::move(d));
      for (auto& d : rx.push(gap)) got.push_back(std::move(d));
    }
    for (auto& d : rx.finish()) got.push_back(std::move(d));
    return got;
  };

  const auto whole = run(1u << 30);  // one push per reception
  ASSERT_GE(whole.size(), 2u);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{13},
                                  std::size_t{phy::kPreambleLength - 1},
                                  std::size_t{256}}) {
    const auto split = run(chunk);
    ASSERT_EQ(split.size(), whole.size()) << "chunk " << chunk;
    for (std::size_t k = 0; k < whole.size(); ++k) {
      expect_same_packet(split[k].packet, whole[k].packet, k);
      // Decode scheduling is also chunk-independent: the decision point is
      // a stream position, not a push boundary.
      EXPECT_EQ(split[k].decoded_at, whole[k].decoded_at) << "packet " << k;
      EXPECT_EQ(split[k].window_begin, whole[k].window_begin);
      EXPECT_EQ(split[k].window_end, whole[k].window_end);
    }
  }
}

TEST(StreamingReceiver, TrackerReachesJointPendingOnACollision) {
  Rng rng(5);
  const StreamScenario sc = make_stream_scenario(rng, 2, {{0, 150}, {0, 420}});
  zigzag::StreamingOptions sopt;
  sopt.receiver = receiver_options(2);
  zigzag::StreamingReceiver rx(sopt);
  rx.add_clients(sc.profiles);
  std::vector<zigzag::StreamDelivered> got;
  Rng part(123);
  for (const auto& rec : sc.receptions)
    stream_reception(rx, rec.samples, part, got);
  // Both receptions carry two overlapped packets; the online hints must
  // have walked the tracker to JOINT_PENDING in each window.
  EXPECT_EQ(rx.stats().joint_windows, sc.receptions.size());
  EXPECT_GE(rx.stats().preamble_hints, 2 * sc.receptions.size());
}

TEST(StreamingReceiver, PerPushWorkIsConstantInStreamLength) {
  // Same window geometry, 4 windows vs 16: if any per-push work scaled
  // with stream length (rescanning history, unbounded retention), the
  // longer run's peak push work would exceed the shorter run's.
  Rng rng(3);
  const StreamScenario sc = make_stream_scenario(rng, 2, {{0, 150}});
  const CVec& rec = sc.receptions[0].samples;
  const CVec gap(64, cplx{0.0, 0.0});

  auto run = [&](std::size_t repeats) {
    zigzag::StreamingOptions sopt;
    sopt.receiver = receiver_options(2);
    zigzag::StreamingReceiver rx(sopt);
    rx.add_clients(sc.profiles);
    for (std::size_t r = 0; r < repeats; ++r) {
      for (std::size_t off = 0; off < rec.size(); off += 256)
        rx.push(rec.data() + off, std::min<std::size_t>(256, rec.size() - off));
      rx.push(gap);
    }
    rx.finish();
    return rx.stats();
  };

  const auto short_run = run(4);
  const auto long_run = run(16);
  EXPECT_EQ(long_run.max_push_work, short_run.max_push_work);
  EXPECT_EQ(long_run.max_retained, short_run.max_retained);
  // Retention is bounded by the window, not the stream.
  EXPECT_LE(long_run.max_retained, rec.size() + 2 * gap.size());
  EXPECT_EQ(long_run.windows, 16u);
}

// ---------------------------------------------------------------------------
// Scenario-level pin: CollectMode::Streaming reproduces CollectMode::Live
// draw-for-draw and packet-for-packet, and reports latency.
// ---------------------------------------------------------------------------

testbed::Scenario live_scenario(std::size_t n) {
  testbed::Scenario sc;
  sc.senders.assign(n, testbed::SenderSpec{12.0, 0});
  sc.receiver = testbed::ReceiverKind::ZigZag;
  sc.mode = testbed::CollectMode::Live;
  sc.p_sense = 0.0;
  sc.cfg.packets_per_sender = 4;
  sc.cfg.payload_bytes = 200;
  return sc;
}

void check_streaming_scenario_matches_live(std::uint64_t seed, std::size_t n) {
  testbed::Scenario sc = live_scenario(n);
  Rng rng_live(seed);
  const auto live = testbed::run_scenario(rng_live, sc);

  sc.mode = testbed::CollectMode::Streaming;
  Rng rng_stream(seed);
  const auto stream = testbed::run_scenario(rng_stream, sc);

  ASSERT_EQ(stream.flows.size(), live.flows.size());
  for (std::size_t i = 0; i < live.flows.size(); ++i) {
    EXPECT_EQ(stream.flows[i].offered, live.flows[i].offered) << "seed " << seed;
    EXPECT_EQ(stream.flows[i].delivered, live.flows[i].delivered)
        << "seed " << seed << " flow " << i;
    EXPECT_EQ(stream.flows[i].throughput, live.flows[i].throughput);
  }
  EXPECT_EQ(stream.airtime_rounds, live.airtime_rounds) << "seed " << seed;
  EXPECT_EQ(stream.concurrent_rounds, live.concurrent_rounds);

  // The streaming-only accounting is populated and sane: decodes happen
  // mid-stream (first delivery long before the last sample), and every
  // window's decode latency is its length plus the silence hang.
  EXPECT_GT(stream.stream_samples, 0u);
  EXPECT_GT(stream.stream_windows, 0u);
  if (stream.stream_deliveries > 0) {
    EXPECT_LT(stream.first_delivery_pos, stream.stream_samples);
    EXPECT_GT(stream.mean_decode_latency, 0.0);
    EXPECT_LT(stream.mean_decode_latency,
              static_cast<double>(stream.stream_samples));
  }
  EXPECT_EQ(live.stream_samples, 0u);  // offline route reports none
}

TEST(StreamingScenario, MatchesLiveTwoSenders) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    check_streaming_scenario_matches_live(seed, 2);
}

TEST(StreamingScenario, MatchesLiveThreeSenders) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    check_streaming_scenario_matches_live(seed, 3);
}

TEST(StreamingScenario, RequiresZigZagReceiver) {
  testbed::Scenario sc = live_scenario(2);
  sc.mode = testbed::CollectMode::Streaming;
  sc.receiver = testbed::ReceiverKind::Current80211;
  Rng rng(1);
  EXPECT_THROW(testbed::run_scenario(rng, sc), std::invalid_argument);
}

}  // namespace
}  // namespace zz
