// Tests for the ZigZag core: the greedy scheduler (§4.5), collision
// detector (§4.2.1), matcher (§4.2.2), the full iterative decoder
// (§4.2.3-4.2.4, §4.3) across the collision patterns of Fig 4-1, and the
// receiver pipeline of §5.1(d).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/common/thread_pool.h"
#include "zz/signal/scratch.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/decoder.h"
#include "zz/zigzag/detector.h"
#include "zz/zigzag/matcher.h"
#include "zz/zigzag/receiver.h"
#include "zz/zigzag/scheduler.h"

namespace zz::zigzag {
namespace {

using phy::Modulation;

// ---------------------------------------------------------------------------
// Greedy scheduler (§4.5) on abstract patterns.
// ---------------------------------------------------------------------------

TEST(Scheduler, ClassicHiddenTerminalPair) {
  // Fig 1-2: two collisions of the same two packets at different offsets.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 30}}, {{0, 0}, {1, 70}}};
  const auto r = greedy_schedule(p);
  EXPECT_TRUE(r.complete);
  ASSERT_FALSE(r.steps.empty());
  // Bootstrap chunk: packet 0's head in the collision with the larger
  // interference-free stretch.
  EXPECT_EQ(r.steps[0].packet, 0u);
  EXPECT_EQ(r.steps[0].k0, 0u);
}

TEST(Scheduler, IdenticalOffsetsFail) {
  // Same offsets in both collisions: the linear system is singular.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 40}}, {{0, 0}, {1, 40}}};
  const auto r = greedy_schedule(p);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(pairwise_condition_holds(p));
}

TEST(Scheduler, SingleCollisionOnlyOverhangs) {
  // One collision: only the interference-free head and tail decode.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 40}}};
  const auto r = greedy_schedule(p);
  EXPECT_FALSE(r.complete);
  // Packet 0's head [0,40) and packet 1's tail [60,100) are decodable.
  std::size_t head = 0, tail = 0;
  for (const auto& s : r.steps) {
    if (s.packet == 0 && s.k0 == 0) head = s.k1;
    if (s.packet == 1 && s.k1 == 100) tail = s.k0;
  }
  EXPECT_EQ(head, 40u);
  EXPECT_EQ(tail, 60u);
}

TEST(Scheduler, FlippedOrder) {
  // Fig 4-1(b): packets change order between collisions.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 35}}, {{1, 0}, {0, 55}}};
  EXPECT_TRUE(greedy_schedule(p).complete);
}

TEST(Scheduler, DifferentSizes) {
  // Fig 4-1(c): different packet sizes.
  Pattern p;
  p.lengths = {150, 60};
  p.collisions = {{{0, 0}, {1, 20}}, {{0, 0}, {1, 90}}};
  EXPECT_TRUE(greedy_schedule(p).complete);
}

TEST(Scheduler, ThreeCollisionsThreeSenders) {
  // Fig 4-6(a).
  Pattern p;
  p.lengths = {100, 100, 100};
  p.collisions = {{{0, 0}, {1, 20}, {2, 50}},
                  {{0, 0}, {1, 60}, {2, 20}},
                  {{0, 0}, {1, 40}, {2, 80}}};
  EXPECT_TRUE(pairwise_condition_holds(p));
  EXPECT_TRUE(greedy_schedule(p).complete);
}

TEST(Scheduler, FourPacketChainOfPairwiseCollisions) {
  // Fig 6-1(b): four packets, four collisions, never more than two at a
  // time; decodable by the same greedy principle.
  Pattern p;
  p.lengths = {100, 100, 100, 100};
  p.collisions = {{{0, 0}, {1, 30}},
                  {{1, 0}, {2, 45}},
                  {{2, 0}, {3, 25}},
                  {{3, 0}, {0, 60}}};
  EXPECT_TRUE(greedy_schedule(p).complete);
}

TEST(Scheduler, GuardShrinksChunks) {
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 30}}, {{0, 0}, {1, 70}}};
  const auto r = greedy_schedule(p, 4);
  EXPECT_TRUE(r.complete);         // still decodable,
  const auto r0 = greedy_schedule(p, 0);
  EXPECT_GE(r.steps.size(), r0.steps.size());  // in no fewer chunks
}

TEST(Scheduler, PairwiseConditionVacuousWhenApart) {
  // A packet appearing alone in some collision breaks ties trivially.
  Pattern p;
  p.lengths = {100, 100};
  p.collisions = {{{0, 0}, {1, 40}}, {{1, 0}}};
  EXPECT_TRUE(pairwise_condition_holds(p));
  EXPECT_TRUE(greedy_schedule(p).complete);
}

// ---------------------------------------------------------------------------
// Waveform-level fixtures.
// ---------------------------------------------------------------------------

struct Party {
  phy::TxFrame frame;
  chan::ChannelParams channel;
  phy::SenderProfile profile;
};

// A sender with a synthesized profile as association would have produced:
// the coarse frequency offset is the truth plus oscillator jitter, and the
// ISI estimate is the true filter (associate() is tested separately).
Party make_party(Rng& rng, std::uint8_t id, std::uint16_t seq,
                 std::size_t payload_bytes, double snr_db,
                 Modulation mod = Modulation::BPSK, bool enable_isi = true,
                 double freq_jitter = 1e-5) {
  Party p;
  phy::FrameHeader h;
  h.sender_id = id;
  h.seq = seq;
  h.payload_mod = mod;
  h.payload_bytes = static_cast<std::uint16_t>(payload_bytes);
  p.frame = phy::build_frame(h, rng.bytes(payload_bytes));

  chan::ImpairmentConfig icfg;
  icfg.snr_db = snr_db;
  icfg.freq_offset_max = 2e-3;
  icfg.enable_isi = enable_isi;
  p.channel = chan::random_channel(rng, icfg);

  p.profile.id = id;
  p.profile.freq_offset =
      p.channel.freq_offset + rng.uniform(-freq_jitter, freq_jitter);
  p.profile.snr_db = snr_db;
  p.profile.mod = mod;
  if (enable_isi) {
    p.profile.isi = p.channel.isi;
    p.profile.equalizer = p.channel.isi.inverse(7, 3);
  }
  return p;
}

Detection detect_at(const CVec& rx, std::ptrdiff_t origin,
                    const phy::SenderProfile& prof, int profile_index) {
  const auto pe = phy::estimate_at_peak(rx, static_cast<std::size_t>(origin),
                                        prof.freq_offset);
  Detection d;
  d.origin = pe.origin;
  d.mu = pe.mu;
  d.h = pe.h;
  d.freq_offset = prof.freq_offset;
  d.metric = pe.metric;
  d.profile_index = profile_index;
  return d;
}

// Build the canonical hidden-terminal experiment: two packets collide twice
// at sample offsets (d1, d2) for the second sender.
struct PairScenario {
  emu::Reception c1, c2;
  Party alice, bob;
  std::vector<phy::SenderProfile> profiles;
  CollisionInput in1, in2;
};

PairScenario make_pair_scenario(Rng& rng, std::size_t payload, double snr_db,
                                std::ptrdiff_t d1, std::ptrdiff_t d2,
                                bool enable_isi = true,
                                double freq_jitter = 1e-5,
                                Modulation mod = Modulation::BPSK) {
  PairScenario s;
  s.alice = make_party(rng, 1, 100, payload, snr_db, mod, enable_isi, freq_jitter);
  s.bob = make_party(rng, 2, 200, payload, snr_db, mod, enable_isi, freq_jitter);

  s.c1 = emu::CollisionBuilder()
             .lead(64)
             .add(s.alice.frame, s.alice.channel, 0)
             .add(s.bob.frame, s.bob.channel, d1)
             .build(rng);
  auto a2 = chan::retransmission_channel(rng, s.alice.channel, 0.0);
  auto b2 = chan::retransmission_channel(rng, s.bob.channel, 0.0);
  const auto alice_retx = phy::with_retry(s.alice.frame, true);
  const auto bob_retx = phy::with_retry(s.bob.frame, true);
  s.c2 = emu::CollisionBuilder()
             .lead(64)
             .add(alice_retx, a2, 0)
             .add(bob_retx, b2, d2)
             .build(rng);

  s.profiles = {s.alice.profile, s.bob.profile};

  s.in1.samples = &s.c1.samples;
  s.in1.is_retransmission = false;
  s.in1.placements = {
      {0, detect_at(s.c1.samples, s.c1.truth[0].start, s.alice.profile, 0)},
      {1, detect_at(s.c1.samples, s.c1.truth[1].start, s.bob.profile, 1)}};
  s.in2.samples = &s.c2.samples;
  s.in2.is_retransmission = true;
  s.in2.placements = {
      {0, detect_at(s.c2.samples, s.c2.truth[0].start, s.alice.profile, 0)},
      {1, detect_at(s.c2.samples, s.c2.truth[1].start, s.bob.profile, 1)}};
  return s;
}

double packet_ber(const phy::TxFrame& truth, const PacketResult& r) {
  if (!r.header_ok) return 1.0;
  // The decoder reports whichever retry-flag variant it decoded; score
  // against the matching variant (the copies differ only in that flag and
  // the header checksum bits it feeds, §4.2.2).
  const phy::TxFrame& ref = truth.header.retry == r.header.retry
                                ? truth
                                : phy::with_retry(truth, r.header.retry);
  return bit_error_rate(ref.air_bits(), r.air_bits);
}

// The paper's delivery criterion (§5.1f): a packet counts as correctly
// received when its uncoded BER is below 1e-3 (practical channel codes then
// deliver it error-free; our prototype, like the paper's, sends uncoded).
::testing::AssertionResult delivered(const phy::TxFrame& truth,
                                     const PacketResult& r) {
  if (!r.header_ok) return ::testing::AssertionFailure() << "header not decoded";
  const double ber = packet_ber(truth, r);
  if (ber < 1e-3) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "BER " << ber;
}

// ---------------------------------------------------------------------------
// Detector and matcher.
// ---------------------------------------------------------------------------

TEST(Detector, FindsBothPacketStarts) {
  Rng rng(21);
  auto s = make_pair_scenario(rng, 200, 12.0, 150, 420);
  const CollisionDetector det;
  const auto found = det.detect(s.c1.samples, s.profiles);
  ASSERT_GE(found.size(), 2u);
  EXPECT_NEAR(static_cast<double>(found[0].origin),
              static_cast<double>(s.c1.truth[0].start), 2.0);
  EXPECT_NEAR(static_cast<double>(found[1].origin),
              static_cast<double>(s.c1.truth[1].start), 2.0);
}

TEST(Detector, NoDetectionsOnNoise) {
  Rng rng(22);
  CVec noise(4000);
  for (auto& v : noise) v = rng.gaussian_c(1.0);
  phy::SenderProfile prof;
  prof.snr_db = 10.0;
  const CollisionDetector det;
  EXPECT_TRUE(det.detect(noise, {&prof, 1}).empty());
}

TEST(Detector, CorrelationProfileSpikesAtSecondPacket) {
  // Fig 4-2: the correlation spikes in the middle of the reception where
  // the colliding packet starts.
  Rng rng(23);
  auto s = make_pair_scenario(rng, 200, 12.0, 300, 500);
  const CollisionDetector det;
  const auto prof = det.correlation_profile(s.c1.samples,
                                            s.bob.profile.freq_offset);
  // The spike at Bob's start dominates the median level by a wide margin.
  const std::size_t bob_start = static_cast<std::size_t>(s.c1.truth[1].start);
  double spike = 0.0;
  for (std::size_t i = bob_start - 3; i <= bob_start + 3; ++i)
    spike = std::max(spike, prof[i]);
  std::vector<double> sorted = prof;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(spike, 3.5 * median);
}

// Regression pins for the calibrated detector: at the paper's β = 0.65
// operating point, the false-positive and false-negative rates on a fixed
// seed set must stay near Table 5.1(a)'s 3.1% / 1.9%. The bounds carry
// slack for the small sample, but a mis-calibration like the one this
// guards against (90% FP) trips them immediately.
TEST(Detector, CalibratedFalsePositiveRate) {
  Rng rng(26);
  const std::size_t trials = 60;
  const CollisionDetector det;
  std::size_t fp = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const double snr = rng.uniform(6.0, 20.0);
    auto lone = make_party(rng, 1, 7, 200, snr);
    const CVec rx = chan::clean_reception(rng, lone.frame.symbols, lone.channel);
    for (const auto& d : det.detect(rx, {&lone.profile, 1}))
      if (std::llabs(d.origin - 64) > 128) {
        ++fp;
        break;
      }
  }
  EXPECT_LE(fp, trials / 5) << "clean-packet FP rate drifted above 20%";
}

TEST(Detector, CalibratedFalseNegativeRate) {
  Rng rng(27);
  const std::size_t trials = 60;
  const CollisionDetector det;
  std::size_t fn = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const double snr = rng.uniform(6.0, 20.0);
    auto s = make_pair_scenario(rng, 200, snr, 300, 700);
    bool found = false;
    for (const auto& d : det.detect(s.c1.samples, s.profiles))
      if (std::llabs(d.origin - s.c1.truth[1].start) <= 16) found = true;
    if (!found) ++fn;
  }
  EXPECT_LE(fn, trials / 8) << "buried-start FN rate drifted above 12.5%";
}

TEST(Detector, CaptureDisparityKeepsStrongStart) {
  // A 14 dB power disparity must not let the strong packet's data
  // excursions evict the true starts (the peak-height consistency metric
  // guards the max_detections cap).
  Rng rng(28);
  std::size_t strong_found = 0;
  const std::size_t trials = 10;
  const CollisionDetector det;
  for (std::size_t i = 0; i < trials; ++i) {
    auto strong = make_party(rng, 1, 1, 200, 26.0);
    auto weak = make_party(rng, 2, 2, 200, 12.0);
    auto c1 = emu::CollisionBuilder()
                  .lead(64)
                  .add(strong.frame, strong.channel, 0)
                  .add(weak.frame, weak.channel, 150)
                  .build(rng);
    std::vector<phy::SenderProfile> profiles{strong.profile, weak.profile};
    for (const auto& d : det.detect(c1.samples, profiles))
      if (std::llabs(d.origin - c1.truth[0].start) <= 2) {
        ++strong_found;
        break;
      }
  }
  EXPECT_GE(strong_found, trials - 1);
}

TEST(Matcher, SamePacketMatchesAcrossCollisions) {
  Rng rng(24);
  auto s = make_pair_scenario(rng, 300, 10.0, 150, 400);
  const auto score = match_same_packet(s.c1.samples, s.c1.truth[1].start,
                                       s.c2.samples, s.c2.truth[1].start);
  EXPECT_TRUE(score.matched);
  EXPECT_GT(score.score, 0.3);
}

TEST(Matcher, DifferentPacketsDoNotMatch) {
  Rng rng(25);
  auto s1 = make_pair_scenario(rng, 300, 10.0, 150, 400);
  auto s2 = make_pair_scenario(rng, 300, 10.0, 150, 400);
  const auto score = match_same_packet(s1.c1.samples, s1.c1.truth[1].start,
                                       s2.c1.samples, s2.c1.truth[1].start);
  EXPECT_FALSE(score.matched);
}

// The SlidingCorrelator route must reproduce the naive single-alignment
// reference bit-for-bit in score and verdict (golden equivalence, 1e-9).
TEST(Matcher, EngineRouteMatchesNaiveGolden) {
  Rng rng(26);
  PacketMatcher engine;
  std::size_t compared = 0;
  for (int trial = 0; trial < 3; ++trial) {
    auto s = make_pair_scenario(rng, 300, 10.0, 150, 400);
    // Same-packet, cross-packet and noise-start hypotheses, plus starts
    // near the buffer tail where the compared span truncates.
    const std::ptrdiff_t starts1[] = {
        s.c1.truth[0].start, s.c1.truth[1].start,
        static_cast<std::ptrdiff_t>(s.c1.samples.size()) - 300};
    const std::ptrdiff_t starts2[] = {
        s.c2.truth[0].start, s.c2.truth[1].start, 3,
        static_cast<std::ptrdiff_t>(s.c2.samples.size()) - 280};
    for (const auto st1 : starts1)
      for (const auto st2 : starts2) {
        const auto naive =
            match_same_packet(s.c1.samples, st1, s.c2.samples, st2);
        const auto fast =
            engine.match(s.c1.samples, st1, s.c2.samples, st2);
        EXPECT_NEAR(fast.score, naive.score, 1e-9)
            << "st1=" << st1 << " st2=" << st2;
        EXPECT_EQ(fast.matched, naive.matched)
            << "st1=" << st1 << " st2=" << st2;
        EXPECT_EQ(fast.lag, 0);
        ++compared;
      }
  }
  EXPECT_EQ(compared, 36u);
}

// One prepare() serves many candidates, and a non-zero slack recovers a
// misaligned start hypothesis (origin jitter between receptions).
TEST(Matcher, SlackRecoversMisalignedStart) {
  Rng rng(27);
  auto s = make_pair_scenario(rng, 300, 20.0, 150, 400);
  MatchConfig cfg;
  cfg.slack = 8;
  PacketMatcher engine(cfg);
  // Hypothesize Bob's start in c2 five samples early: the true alignment
  // sits at lag +5 inside the slack window.
  ASSERT_TRUE(engine.prepare(s.c2.samples, s.c2.truth[1].start - 5));
  const auto score = engine.score(s.c1.samples, s.c1.truth[1].start);
  EXPECT_TRUE(score.matched);
  EXPECT_EQ(score.lag, 5);
  // And the aligned exact score is at least the zero-slack one.
  const auto exact = match_same_packet(s.c1.samples, s.c1.truth[1].start,
                                       s.c2.samples, s.c2.truth[1].start);
  EXPECT_GE(score.score, exact.score - 1e-9);
}

// ---------------------------------------------------------------------------
// Full decoder.
// ---------------------------------------------------------------------------

TEST(Decoder, DecodesClassicHiddenTerminalPair) {
  Rng rng(31);
  auto s = make_pair_scenario(rng, 300, 10.0, 160, 420);
  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {s.in1, s.in2};
  const auto res = dec.decode({inputs, 2}, s.profiles, 2);
  ASSERT_EQ(res.packets.size(), 2u);
  EXPECT_TRUE(delivered(s.alice.frame, res.packets[0]));
  EXPECT_TRUE(delivered(s.bob.frame, res.packets[1]));
  if (res.packets[0].crc_ok) {
    EXPECT_EQ(res.packets[0].payload, s.alice.frame.payload);
  }
  if (res.packets[1].crc_ok) {
    EXPECT_EQ(res.packets[1].payload, s.bob.frame.payload);
  }
}

TEST(Decoder, SmallOffsetDifference) {
  // Offsets differing by only a few symbols still decode (stall-breaker +
  // exponential error decay + refinement).
  Rng rng(32);
  auto s = make_pair_scenario(rng, 200, 12.0, 200, 216);
  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {s.in1, s.in2};
  const auto res = dec.decode({inputs, 2}, s.profiles, 2);
  EXPECT_TRUE(delivered(s.alice.frame, res.packets[0]));
  EXPECT_TRUE(delivered(s.bob.frame, res.packets[1]));
}

TEST(Decoder, FlippedOrderPattern) {
  // Fig 4-1(b): Bob first in the second collision.
  Rng rng(33);
  auto alice = make_party(rng, 1, 11, 250, 11.0);
  auto bob = make_party(rng, 2, 22, 250, 11.0);
  auto c1 = emu::CollisionBuilder()
                .lead(64)
                .add(alice.frame, alice.channel, 0)
                .add(bob.frame, bob.channel, 180)
                .build(rng);
  auto a2 = chan::retransmission_channel(rng, alice.channel, 0.0);
  auto b2 = chan::retransmission_channel(rng, bob.channel, 0.0);
  auto c2 = emu::CollisionBuilder()
                .lead(64)
                .add(phy::with_retry(bob.frame, true), b2, 0)
                .add(phy::with_retry(alice.frame, true), a2, 240)
                .build(rng);

  std::vector<phy::SenderProfile> profiles{alice.profile, bob.profile};
  CollisionInput in1, in2;
  in1.samples = &c1.samples;
  in1.placements = {
      {0, detect_at(c1.samples, c1.truth[0].start, alice.profile, 0)},
      {1, detect_at(c1.samples, c1.truth[1].start, bob.profile, 1)}};
  in2.samples = &c2.samples;
  in2.is_retransmission = true;
  in2.placements = {
      {1, detect_at(c2.samples, c2.truth[0].start, bob.profile, 1)},
      {0, detect_at(c2.samples, c2.truth[1].start, alice.profile, 0)}};

  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {in1, in2};
  const auto res = dec.decode({inputs, 2}, profiles, 2);
  EXPECT_TRUE(delivered(alice.frame, res.packets[0]));
  EXPECT_TRUE(delivered(bob.frame, res.packets[1]));
}

TEST(Decoder, DifferentPacketSizes) {
  // Fig 4-1(c).
  Rng rng(34);
  auto alice = make_party(rng, 1, 11, 400, 11.0);
  auto bob = make_party(rng, 2, 22, 150, 11.0);
  auto c1 = emu::CollisionBuilder()
                .lead(64)
                .add(alice.frame, alice.channel, 0)
                .add(bob.frame, bob.channel, 200)
                .build(rng);
  auto a2 = chan::retransmission_channel(rng, alice.channel, 0.0);
  auto b2 = chan::retransmission_channel(rng, bob.channel, 0.0);
  auto c2 = emu::CollisionBuilder()
                .lead(64)
                .add(phy::with_retry(alice.frame, true), a2, 0)
                .add(phy::with_retry(bob.frame, true), b2, 520)
                .build(rng);

  std::vector<phy::SenderProfile> profiles{alice.profile, bob.profile};
  CollisionInput in1, in2;
  in1.samples = &c1.samples;
  in1.placements = {
      {0, detect_at(c1.samples, c1.truth[0].start, alice.profile, 0)},
      {1, detect_at(c1.samples, c1.truth[1].start, bob.profile, 1)}};
  in2.samples = &c2.samples;
  in2.is_retransmission = true;
  in2.placements = {
      {0, detect_at(c2.samples, c2.truth[0].start, alice.profile, 0)},
      {1, detect_at(c2.samples, c2.truth[1].start, bob.profile, 1)}};

  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {in1, in2};
  const auto res = dec.decode({inputs, 2}, profiles, 2);
  EXPECT_TRUE(delivered(alice.frame, res.packets[0]));
  EXPECT_TRUE(delivered(bob.frame, res.packets[1]));
}

TEST(Decoder, CaptureEffectSingleCollision) {
  // Fig 4-1(e): Alice far stronger — interference cancellation on a single
  // collision decodes both.
  Rng rng(35);
  auto alice = make_party(rng, 1, 11, 200, 24.0);
  auto bob = make_party(rng, 2, 22, 200, 10.0);
  auto c1 = emu::CollisionBuilder()
                .lead(64)
                .add(alice.frame, alice.channel, 0)
                .add(bob.frame, bob.channel, 130)
                .build(rng);
  std::vector<phy::SenderProfile> profiles{alice.profile, bob.profile};
  CollisionInput in1;
  in1.samples = &c1.samples;
  in1.placements = {
      {0, detect_at(c1.samples, c1.truth[0].start, alice.profile, 0)},
      {1, detect_at(c1.samples, c1.truth[1].start, bob.profile, 1)}};

  const ZigZagDecoder dec;
  const auto res = dec.decode({&in1, 1}, profiles, 2);
  EXPECT_TRUE(delivered(alice.frame, res.packets[0]));  // captured directly
  EXPECT_TRUE(delivered(bob.frame, res.packets[1]));  // after cancellation
}

TEST(Decoder, CollisionPlusCleanRetransmission) {
  // Fig 4-1(f): Bob's packet is collision-free in the retransmission; the
  // receiver decodes it, subtracts it from the collision, and gets Alice.
  Rng rng(36);
  auto alice = make_party(rng, 1, 11, 200, 10.0);
  auto bob = make_party(rng, 2, 22, 200, 10.0);
  auto c1 = emu::CollisionBuilder()
                .lead(64)
                .add(alice.frame, alice.channel, 0)
                .add(bob.frame, bob.channel, 150)
                .build(rng);
  auto b2 = chan::retransmission_channel(rng, bob.channel, 0.0);
  auto c2 = emu::CollisionBuilder()
                .lead(64)
                .add(phy::with_retry(bob.frame, true), b2, 0)
                .build(rng);

  std::vector<phy::SenderProfile> profiles{alice.profile, bob.profile};
  CollisionInput in1, in2;
  in1.samples = &c1.samples;
  in1.placements = {
      {0, detect_at(c1.samples, c1.truth[0].start, alice.profile, 0)},
      {1, detect_at(c1.samples, c1.truth[1].start, bob.profile, 1)}};
  in2.samples = &c2.samples;
  in2.is_retransmission = true;
  in2.placements = {
      {1, detect_at(c2.samples, c2.truth[0].start, bob.profile, 1)}};

  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {in1, in2};
  const auto res = dec.decode({inputs, 2}, profiles, 2);
  EXPECT_TRUE(delivered(bob.frame, res.packets[1]));
  EXPECT_TRUE(delivered(alice.frame, res.packets[0]));
}

TEST(Decoder, ThreeSendersThreeCollisions) {
  // §4.5 / Fig 4-6(a) with real waveforms.
  Rng rng(37);
  Party p[3] = {make_party(rng, 1, 11, 150, 12.0),
                make_party(rng, 2, 22, 150, 12.0),
                make_party(rng, 3, 33, 150, 12.0)};
  const std::ptrdiff_t offs[3][3] = {{0, 140, 420}, {0, 500, 180}, {0, 320, 640}};
  emu::Reception rec[3];
  for (int c = 0; c < 3; ++c) {
    emu::CollisionBuilder b;
    b.lead(64);
    for (int i = 0; i < 3; ++i) {
      auto ch = c == 0 ? p[i].channel
                       : chan::retransmission_channel(rng, p[i].channel, 0.0);
      b.add(c == 0 ? p[i].frame : phy::with_retry(p[i].frame, true), ch,
            offs[c][i]);
    }
    rec[c] = b.build(rng);
  }
  std::vector<phy::SenderProfile> profiles{p[0].profile, p[1].profile,
                                           p[2].profile};
  CollisionInput inputs[3];
  for (int c = 0; c < 3; ++c) {
    inputs[c].samples = &rec[c].samples;
    inputs[c].is_retransmission = c > 0;
    for (int i = 0; i < 3; ++i)
      inputs[c].placements.push_back(
          {static_cast<std::size_t>(i),
           detect_at(rec[c].samples, rec[c].truth[i].start, p[i].profile, i)});
  }
  const ZigZagDecoder dec;
  const auto res = dec.decode({inputs, 3}, profiles, 3);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(delivered(p[i].frame, res.packets[i])) << "packet " << i;
}

TEST(Decoder, IdenticalOffsetsCannotDecode) {
  Rng rng(38);
  auto s = make_pair_scenario(rng, 200, 10.0, 300, 300);
  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {s.in1, s.in2};
  const auto res = dec.decode({inputs, 2}, s.profiles, 2);
  EXPECT_FALSE(res.all_crc_ok());
}

TEST(Decoder, TrackingAblationFailsOnLongPackets) {
  // Table 5.1: without §4.2.4(b,c) tracking, residual frequency error makes
  // the reconstructed images rotate away from the received signal and long
  // packets become undecodable.
  Rng rng(39);
  auto s = make_pair_scenario(rng, 1500, 12.0, 400, 1100, true, 4e-5);
  DecodeOptions opt;
  opt.reconstruction_tracking = false;
  const ZigZagDecoder no_tracking(opt);
  const ZigZagDecoder with_tracking;
  const CollisionInput inputs[2] = {s.in1, s.in2};
  const auto off = no_tracking.decode({inputs, 2}, s.profiles, 2);
  const auto on = with_tracking.decode({inputs, 2}, s.profiles, 2);
  EXPECT_TRUE(delivered(s.alice.frame, on.packets[0]));
  EXPECT_TRUE(delivered(s.bob.frame, on.packets[1]));
  const double ber_off = 0.5 * (packet_ber(s.alice.frame, off.packets[0]) +
                                packet_ber(s.bob.frame, off.packets[1]));
  const double ber_on = 0.5 * (packet_ber(s.alice.frame, on.packets[0]) +
                               packet_ber(s.bob.frame, on.packets[1]));
  EXPECT_GT(ber_off, 10.0 * std::max(ber_on, 1e-5));
}

TEST(Decoder, ForwardBackwardBeatsForwardOnly) {
  // §4.3(b): every bit is received twice; MRC over both receptions lowers
  // the BER below a single pass.
  Rng rng(40);
  double err_fwd = 0.0, err_both = 0.0;
  for (int trial = 0; trial < 6; ++trial) {
    auto s = make_pair_scenario(rng, 300, 6.5, 160, 420);
    DecodeOptions fwd_only;
    fwd_only.backward_pass = false;
    fwd_only.refinement_passes = 0;
    const CollisionInput inputs[2] = {s.in1, s.in2};
    const auto a = ZigZagDecoder(fwd_only).decode({inputs, 2}, s.profiles, 2);
    const auto b = ZigZagDecoder().decode({inputs, 2}, s.profiles, 2);
    err_fwd += packet_ber(s.alice.frame, a.packets[0]) +
               packet_ber(s.bob.frame, a.packets[1]);
    err_both += packet_ber(s.alice.frame, b.packets[0]) +
                packet_ber(s.bob.frame, b.packets[1]);
  }
  EXPECT_LE(err_both, err_fwd);
}

// ---------------------------------------------------------------------------
// Incremental joint decode (DecodeCache).
// ---------------------------------------------------------------------------

// Field-wise bit-identity of two decode results.
void expect_identical_results(const DecodeResult& a, const DecodeResult& b) {
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.stall_breaks, b.stall_breaks);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t p = 0; p < a.packets.size(); ++p) {
    const auto& pa = a.packets[p];
    const auto& pb = b.packets[p];
    EXPECT_EQ(pa.header_ok, pb.header_ok);
    EXPECT_EQ(pa.crc_ok, pb.crc_ok);
    EXPECT_EQ(pa.symbols_decoded, pb.symbols_decoded);
    if (pa.header_ok && pb.header_ok) {
      EXPECT_EQ(pa.header, pb.header);
    }
    EXPECT_EQ(pa.air_bits, pb.air_bits);
    EXPECT_EQ(pa.payload, pb.payload);
    ASSERT_EQ(pa.soft.size(), pb.soft.size());
    for (std::size_t k = 0; k < pa.soft.size(); ++k)
      EXPECT_EQ(pa.soft[k], pb.soft[k]) << "p=" << p << " k=" << k;
  }
}

TEST(Decoder, IncrementalTopUpBitIdenticalToFromScratch) {
  // run_logged_joint's §4.5 top-up shape: decode an equation set, then
  // decode again with one extra logged collision, reusing the chunk-decode
  // memo. The incremental decode must be bit-identical to decoding the
  // widened set from scratch, and chunks the new equation did not perturb
  // must replay from the memo.
  for (const std::uint64_t seed : {71u, 72u, 73u, 74u, 75u}) {
    Rng rng(seed);
    auto s = make_pair_scenario(rng, 160, 10.0, 210, 620);
    // A third logged collision: one more retransmission round.
    const auto a3 = chan::retransmission_channel(rng, s.alice.channel, 0.0);
    const auto b3 = chan::retransmission_channel(rng, s.bob.channel, 0.0);
    const emu::Reception c3 = emu::CollisionBuilder()
                                  .lead(64)
                                  .add(phy::with_retry(s.alice.frame, true), a3, 0)
                                  .add(phy::with_retry(s.bob.frame, true), b3, 415)
                                  .build(rng);
    CollisionInput in3;
    in3.samples = &c3.samples;
    in3.is_retransmission = true;
    in3.placements = {
        {0, detect_at(c3.samples, c3.truth[0].start, s.alice.profile, 0)},
        {1, detect_at(c3.samples, c3.truth[1].start, s.bob.profile, 1)}};

    const ZigZagDecoder dec;
    DecodeCache cache;
    const CollisionInput two[2] = {s.in1, s.in2};
    (void)dec.decode({two, 2}, s.profiles, 2, &cache);  // initial equations

    const CollisionInput three[3] = {s.in1, s.in2, in3};
    const std::size_t hits_before = cache.hits();
    const auto incremental = dec.decode({three, 3}, s.profiles, 2, &cache);
    EXPECT_GT(cache.hits(), hits_before)
        << "top-up re-decoded every chunk from scratch (seed " << seed << ")";

    const auto scratch = ZigZagDecoder().decode({three, 3}, s.profiles, 2);
    expect_identical_results(incremental, scratch);
  }
}

TEST(Decoder, RepeatDecodeReplaysEntirelyFromCache) {
  // Decoding the identical equation set twice through one cache must not
  // run the black-box decoder again for any chunk — and must reproduce the
  // result bit-for-bit.
  Rng rng(76);
  auto s = make_pair_scenario(rng, 200, 10.0, 300, 700);
  const ZigZagDecoder dec;
  DecodeCache cache;
  const CollisionInput inputs[2] = {s.in1, s.in2};
  const auto first = dec.decode({inputs, 2}, s.profiles, 2, &cache);
  const std::size_t misses_after_first = cache.misses();
  const auto second = dec.decode({inputs, 2}, s.profiles, 2, &cache);
  EXPECT_EQ(cache.misses(), misses_after_first);  // all chunk decodes hit
  EXPECT_GT(cache.hits(), 0u);
  expect_identical_results(first, second);
}

TEST(Decoder, CachedDecodeMatchesUncached) {
  // The cache must be an invisible optimization: with or without it, the
  // decode result is bit-identical.
  for (const std::uint64_t seed : {81u, 82u, 83u}) {
    Rng rng(seed);
    auto s = make_pair_scenario(rng, 180, 11.0, 250, 640);
    const ZigZagDecoder dec;
    DecodeCache cache;
    const CollisionInput inputs[2] = {s.in1, s.in2};
    const auto with_cache = dec.decode({inputs, 2}, s.profiles, 2, &cache);
    const auto without = dec.decode({inputs, 2}, s.profiles, 2);
    expect_identical_results(with_cache, without);
  }
}

TEST(DecodeCacheStress, ConcurrentSharedCacheIsRaceFreeAndBitIdentical) {
  // The thread-safety contract the AP-farm scale-out assumes (ISSUE 6,
  // docs/ANALYSIS.md §3): one DecodeCache shared by decoder engines on
  // MANY threads, with no external locking. Threads repeatedly decode the
  // same scenarios, so they contend on the same fingerprints — the
  // double-miss insert race, hit-path reads of published entries and the
  // counters all get exercised. Run under TSan this is the mechanical
  // proof; in the plain config it still pins bit-identity under contention.
  constexpr std::size_t kScenarios = 3;
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 2;

  struct Case {
    PairScenario s;
    std::vector<CollisionInput> inputs;
    DecodeResult reference;
  };
  std::vector<Case> cases(kScenarios);
  const ZigZagDecoder dec;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    Rng rng(9100 + i);
    Case& c = cases[i];
    c.s = make_pair_scenario(rng, 150 + 20 * i, 10.0,
                             200 + 60 * static_cast<std::ptrdiff_t>(i),
                             600 + 40 * static_cast<std::ptrdiff_t>(i));
    // The scenario's own CollisionInputs point at the factory temporary's
    // sample buffers; re-point them at the case's final location.
    c.inputs = {c.s.in1, c.s.in2};
    c.inputs[0].samples = &c.s.c1.samples;
    c.inputs[1].samples = &c.s.c2.samples;
    c.reference = dec.decode({c.inputs.data(), 2}, c.s.profiles, 2);
  }

  DecodeCache cache;
  std::vector<DecodeResult> results(kThreads * kScenarios * kRounds);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns its decoder (engines are per-call anyway); ONLY
      // the cache is shared.
      const ZigZagDecoder local;
      for (int r = 0; r < kRounds; ++r)
        for (std::size_t i = 0; i < kScenarios; ++i)
          results[(t * kRounds + static_cast<std::size_t>(r)) * kScenarios +
                  i] =
              local.decode({cases[i].inputs.data(), 2}, cases[i].s.profiles, 2,
                           &cache);
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t)
    for (int r = 0; r < kRounds; ++r)
      for (std::size_t i = 0; i < kScenarios; ++i)
        expect_identical_results(
            results[(t * kRounds + static_cast<std::size_t>(r)) * kScenarios +
                    i],
            cases[i].reference);

  // Counter sanity: every stored entry came from a miss (racing misses may
  // discard their copy, so misses >= size), and the contended rounds must
  // have produced real sharing.
  EXPECT_GE(cache.misses(), cache.size());
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.hits(), 0u);

  // After the stampede the cache is fully warm: a repeat decode of every
  // scenario must not miss once.
  const std::size_t misses_before = cache.misses();
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const auto replay =
        dec.decode({cases[i].inputs.data(), 2}, cases[i].s.profiles, 2, &cache);
    expect_identical_results(replay, cases[i].reference);
  }
  EXPECT_EQ(cache.misses(), misses_before);
}

TEST(DecodeCacheStress, FarmShardsPerWorkerWarmReplayAndBitIdentical) {
  // The farm shape (src/farm): episodes from many cells fan out over
  // ThreadPool::parallel_for_sharded, and each stable worker id owns one
  // DecodeCacheShards shard plus one thread-confined ScratchArena, reused
  // across every episode that lands on that worker. Scheduling decides
  // which worker (and so which shard/arena) an episode hits, yet results
  // must be bit-identical to the uncached, arena-less reference — and a
  // second (warm) sweep must replay without a single new miss, because a
  // worker's shard already holds every fingerprint its cells produce only
  // when fingerprints are placement-independent. Run under TSan this also
  // pins that shard + arena handoff across pool batches is race-free.
  constexpr std::size_t kCells = 6;
  constexpr std::size_t kWorkers = 4;

  struct Cell {
    PairScenario s;
    std::vector<CollisionInput> inputs;
    DecodeResult reference;
  };
  std::vector<Cell> cells(kCells);
  const ZigZagDecoder dec;
  for (std::size_t i = 0; i < kCells; ++i) {
    Rng rng(9300 + i);
    Cell& c = cells[i];
    c.s = make_pair_scenario(rng, 140 + 12 * i, 10.0,
                             220 + 40 * static_cast<std::ptrdiff_t>(i),
                             590 + 30 * static_cast<std::ptrdiff_t>(i));
    c.inputs = {c.s.in1, c.s.in2};
    c.inputs[0].samples = &c.s.c1.samples;
    c.inputs[1].samples = &c.s.c2.samples;
    c.reference = dec.decode({c.inputs.data(), 2}, c.s.profiles, 2);
  }

  ThreadPool pool(kWorkers);
  DecodeCacheShards shards(pool.size());
  std::vector<sig::ScratchArena> arenas(pool.size());

  const auto sweep = [&](std::vector<DecodeResult>& out) {
    out.assign(kCells, {});
    pool.parallel_for_sharded(kCells, [&](std::size_t i, std::size_t w) {
      const ZigZagDecoder local;
      out[i] = local.decode({cells[i].inputs.data(), 2}, cells[i].s.profiles,
                            2, &shards.shard(w), &arenas[w]);
    });
  };

  std::vector<DecodeResult> cold, warm;
  sweep(cold);
  const std::size_t misses_cold = shards.misses();
  EXPECT_GT(misses_cold, 0u);
  EXPECT_EQ(shards.entries(), misses_cold);  // no cross-shard dedup

  sweep(warm);
  // Scheduling may move a cell to a worker whose shard has not seen it, so
  // the warm sweep can still miss — but never more than a cold sweep's
  // worth, and every result stays bit-identical.
  EXPECT_LE(shards.misses(), 2 * misses_cold);
  for (std::size_t i = 0; i < kCells; ++i) {
    expect_identical_results(cold[i], cells[i].reference);
    expect_identical_results(warm[i], cells[i].reference);
  }

  // Pin the shard-affinity guarantee the farm actually relies on: with the
  // cell → worker assignment fixed (cell i on shard i % workers, each on
  // one thread via the pool), a third sweep over warm shards must not miss
  // at all.
  const std::size_t misses_before = shards.misses();
  std::vector<DecodeResult> pinned(kCells);
  pool.parallel_for_sharded(pool.size(), [&](std::size_t w, std::size_t) {
    const ZigZagDecoder local;
    for (std::size_t i = w; i < kCells; i += pool.size())
      pinned[i] = local.decode({cells[i].inputs.data(), 2},
                               cells[i].s.profiles, 2, &shards.shard(w),
                               &arenas[w]);
  });
  // The pinned sweep may still populate shards that never saw a given cell;
  // run it twice so the second pass is provably all-hits.
  (void)misses_before;
  const std::size_t misses_pinned = shards.misses();
  pool.parallel_for_sharded(pool.size(), [&](std::size_t w, std::size_t) {
    const ZigZagDecoder local;
    for (std::size_t i = w; i < kCells; i += pool.size())
      pinned[i] = local.decode({cells[i].inputs.data(), 2},
                               cells[i].s.profiles, 2, &shards.shard(w),
                               &arenas[w]);
  });
  EXPECT_EQ(shards.misses(), misses_pinned)
      << "warm pinned replay re-ran the black-box decoder";
  for (std::size_t i = 0; i < kCells; ++i)
    expect_identical_results(pinned[i], cells[i].reference);
}

TEST(Decoder, QpskCollisionsDecode) {
  // §4.2.3(a): the decoder is modulation-agnostic.
  Rng rng(41);
  auto s = make_pair_scenario(rng, 200, 16.0, 160, 420, true, 1e-5,
                              Modulation::QPSK);
  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {s.in1, s.in2};
  const auto res = dec.decode({inputs, 2}, s.profiles, 2);
  EXPECT_TRUE(delivered(s.alice.frame, res.packets[0]));
  EXPECT_TRUE(delivered(s.bob.frame, res.packets[1]));
}

TEST(Decoder, MixedModulationCollision) {
  // Two colliding packets may use different bit rates (§4.2.3a).
  Rng rng(42);
  auto alice = make_party(rng, 1, 11, 200, 11.0, Modulation::BPSK);
  auto bob = make_party(rng, 2, 22, 150, 18.0, Modulation::QPSK);
  auto c1 = emu::CollisionBuilder()
                .lead(64)
                .add(alice.frame, alice.channel, 0)
                .add(bob.frame, bob.channel, 170)
                .build(rng);
  auto a2 = chan::retransmission_channel(rng, alice.channel, 0.0);
  auto b2 = chan::retransmission_channel(rng, bob.channel, 0.0);
  auto c2 = emu::CollisionBuilder()
                .lead(64)
                .add(phy::with_retry(alice.frame, true), a2, 0)
                .add(phy::with_retry(bob.frame, true), b2, 450)
                .build(rng);
  std::vector<phy::SenderProfile> profiles{alice.profile, bob.profile};
  CollisionInput in1, in2;
  in1.samples = &c1.samples;
  in1.placements = {
      {0, detect_at(c1.samples, c1.truth[0].start, alice.profile, 0)},
      {1, detect_at(c1.samples, c1.truth[1].start, bob.profile, 1)}};
  in2.samples = &c2.samples;
  in2.is_retransmission = true;
  in2.placements = {
      {0, detect_at(c2.samples, c2.truth[0].start, alice.profile, 0)},
      {1, detect_at(c2.samples, c2.truth[1].start, bob.profile, 1)}};
  const ZigZagDecoder dec;
  const CollisionInput inputs[2] = {in1, in2};
  const auto res = dec.decode({inputs, 2}, profiles, 2);
  EXPECT_TRUE(delivered(alice.frame, res.packets[0]));
  EXPECT_TRUE(delivered(bob.frame, res.packets[1]));
}

// ---------------------------------------------------------------------------
// Receiver pipeline (§5.1d).
// ---------------------------------------------------------------------------

TEST(Receiver, CleanPacketDeliveredImmediately) {
  Rng rng(51);
  auto alice = make_party(rng, 1, 7, 200, 12.0);
  const CVec rx = chan::clean_reception(rng, alice.frame.symbols,
                                        alice.channel);
  ZigZagReceiver receiver;
  receiver.add_client(alice.profile);
  const auto out = receiver.receive(rx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, alice.frame.payload);
  EXPECT_FALSE(out[0].via_pair);
}

TEST(Receiver, CollisionPairResolvedAcrossReceptions) {
  Rng rng(52);
  auto s = make_pair_scenario(rng, 250, 14.0, 170, 430);
  ZigZagReceiver receiver;
  receiver.add_client(s.alice.profile);
  receiver.add_client(s.bob.profile);

  const auto first = receiver.receive(s.c1.samples);
  EXPECT_TRUE(first.empty());  // stored, undecodable alone
  EXPECT_EQ(receiver.pending_collisions(), 1u);

  const auto second = receiver.receive(s.c2.samples);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_TRUE(second[0].via_pair);
  EXPECT_TRUE(second[1].via_pair);
  EXPECT_EQ(receiver.pending_collisions(), 0u);

  // Score as the paper does: delivery = BER below 1e-3 against the truth.
  for (const auto& d : second) {
    const auto& truth =
        d.header.sender_id == 1 ? s.alice.frame : s.bob.frame;
    const phy::TxFrame& ref = truth.header.retry == d.header.retry
                                  ? truth
                                  : phy::with_retry(truth, d.header.retry);
    EXPECT_LT(bit_error_rate(ref.air_bits(), d.air_bits), 1e-3);
    if (d.crc_ok) {
      EXPECT_EQ(d.payload, truth.payload);
    }
  }
}

TEST(Receiver, UnrelatedCollisionsNotMatched) {
  Rng rng(53);
  auto s1 = make_pair_scenario(rng, 250, 11.0, 170, 430);
  auto s2 = make_pair_scenario(rng, 250, 11.0, 210, 380);
  ZigZagReceiver receiver;
  receiver.add_client(s1.alice.profile);
  receiver.add_client(s1.bob.profile);
  EXPECT_TRUE(receiver.receive(s1.c1.samples).empty());
  // A collision of two *different* packets must not pair with the stored one.
  const auto out = receiver.receive(s2.c1.samples);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(receiver.pending_collisions(), 2u);
}

}  // namespace
}  // namespace zz::zigzag
