// Semantics of zz/common/check.h with ZZ_DCHECK contracts compiled OUT —
// this TU is built WITHOUT ZZ_ENABLE_DCHECKS (the plain Release shape that
// runs the drift-gated benches), in the same binary as check_test.cpp.
#include "zz/common/check.h"

#include <gtest/gtest.h>

#ifdef ZZ_ENABLE_DCHECKS
#error "check_release_test.cpp must be compiled without ZZ_ENABLE_DCHECKS"
#endif

namespace {

int g_evals = 0;
bool counted_false() {
  ++g_evals;
  return false;
}

TEST(CheckRelease, DcheckCompilesOutAndDoesNotEvaluateCondition) {
  g_evals = 0;
  ZZ_DCHECK(counted_false()) << "never " << counted_false();
  EXPECT_EQ(g_evals, 0) << "compiled-out DCHECK must not evaluate operands";
}

TEST(CheckRelease, DcheckComparisonCompilesOut) {
  g_evals = 0;
  ZZ_DCHECK_EQ(g_evals, 99);  // false, but compiled out — must not fire
  ZZ_DCHECK_LT(5, counted_false() ? 9 : 1);
  EXPECT_EQ(g_evals, 0);
}

TEST(CheckRelease, DcheckStillBindsAsOneStatement) {
  if (g_evals == 0)
    ZZ_DCHECK(false) << "then";
  else
    ZZ_DCHECK(false) << "else";
  SUCCEED();
}

TEST(CheckRelease, CheckStaysFatalInReleaseShape) {
  ZZ_CHECK(true);
  EXPECT_DEATH(ZZ_CHECK_NE(7, 7) << " release",
               "ZZ_CHECK_NE\\(7, 7\\) failed \\(7 vs\\. 7\\).*release");
}

}  // namespace
