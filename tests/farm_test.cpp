// Tests for the AP-farm throughput engine (zz/farm/farm.h).
//
// The contract under test is determinism at scale: a farm's merged result
// is a pure function of (cells, seed, episodes) — the worker count, the
// work-stealing schedule, the per-worker decode-cache shards and the
// episode-persistent arenas must all be invisible in the output. The pins
// compare 1/2/4/8-worker farms bit for bit against each other and against
// the serial run_cell reference, which is the definition of the
// computation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "zz/farm/farm.h"
#include "zz/testbed/episode.h"
#include "zz/testbed/scenario.h"

namespace zz::farm {
namespace {

using testbed::CollectMode;
using testbed::ReceiverKind;

CellSpec make_cell(double snr_db, std::size_t packets, CollectMode mode,
                   std::size_t senders = 2) {
  CellSpec cell;
  cell.scenario = testbed::hidden_n_scenario(senders, snr_db,
                                             ReceiverKind::ZigZag);
  cell.scenario.mode = mode;
  cell.scenario.cfg.packets_per_sender = packets;
  cell.scenario.cfg.payload_bytes = 200;
  return cell;
}

/// A small heterogeneous farm: cells differ in SNR, backlog and collection
/// mode so a merge that permuted or double-counted cells cannot cancel out.
std::vector<CellSpec> small_farm() {
  return {make_cell(12.0, 2, CollectMode::Live),
          make_cell(10.0, 3, CollectMode::Live),
          make_cell(11.0, 2, CollectMode::Streaming)};
}

void expect_cells_eq(const CellResult& a, const CellResult& b) {
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.concurrent_rounds, b.concurrent_rounds);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions_resolved, b.collisions_resolved);
  EXPECT_EQ(a.stream_samples, b.stream_samples);
  EXPECT_EQ(a.stream_windows, b.stream_windows);
  EXPECT_EQ(a.stream_deliveries, b.stream_deliveries);
  EXPECT_EQ(a.latency_sum, b.latency_sum);
  EXPECT_EQ(a.per_flow_delivered, b.per_flow_delivered);
}

void expect_farms_eq(const FarmResult& a, const FarmResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c)
    expect_cells_eq(a.cells[c], b.cells[c]);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions_resolved, b.collisions_resolved);
}

TEST(ApFarm, BitIdenticalAtAnyWorkerCount) {
  // The headline determinism pin: the same farm at 1, 2, 4 and 8 workers,
  // over several farm seeds. Identical results index-for-index — worker
  // count only changes wall clock.
  constexpr std::size_t kEpisodes = 2;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    FarmOptions base;
    base.seed = seed;
    base.workers = 1;
    ApFarm reference(small_farm(), base);
    const FarmResult ref = reference.run(kEpisodes);
    EXPECT_GT(ref.delivered, 0u) << "farm did nothing at seed " << seed;

    for (const std::size_t workers : {2u, 4u, 8u}) {
      FarmOptions opt = base;
      opt.workers = workers;
      ApFarm farm(small_farm(), opt);
      EXPECT_EQ(farm.workers(), workers);
      expect_farms_eq(farm.run(kEpisodes), ref);
    }
  }
}

TEST(ApFarm, PerCellStatsEqualStandaloneReference) {
  // Each merged per-cell aggregate equals run_cell — the serial,
  // pool-free, cache-free, arena-free definition of the computation.
  const auto cells = small_farm();
  FarmOptions opt;
  opt.seed = 21;
  opt.workers = 4;
  ApFarm farm(cells, opt);
  const FarmResult res = farm.run(3);
  ASSERT_EQ(res.cells.size(), cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellResult ref = run_cell(cells[c], c, opt.seed, 3);
    expect_cells_eq(res.cells[c], ref);
  }
}

TEST(ApFarm, MergeIsInCellOrder) {
  // cells[c] belongs to spec c: the heterogeneous backlog (2 vs 3 packets
  // per sender) makes per-cell episode round counts distinguishable, so a
  // permuted merge cannot pass.
  const auto cells = small_farm();
  FarmOptions opt;
  opt.seed = 31;
  opt.workers = 4;
  ApFarm farm(cells, opt);
  const FarmResult res = farm.run(2);
  std::uint64_t rounds = 0, delivered = 0;
  for (std::size_t c = 0; c < res.cells.size(); ++c) {
    EXPECT_EQ(res.cells[c].cell, c);
    EXPECT_EQ(res.cells[c].episodes, 2u);
    rounds += res.cells[c].rounds;
    delivered += res.cells[c].delivered;
    // The per-cell offered backlog bounds what one episode can deliver.
    const std::size_t offered =
        cells[c].scenario.cfg.packets_per_sender *
        cells[c].scenario.senders.size();
    EXPECT_LE(res.cells[c].delivered, 2u * offered);
  }
  EXPECT_EQ(res.rounds, rounds);
  EXPECT_EQ(res.delivered, delivered);
  // Cell 1 offers 3 packets per sender vs 2 elsewhere: strictly more
  // airtime per episode at the same SNR.
  EXPECT_GT(res.cells[1].rounds, res.cells[0].rounds);
}

TEST(ApFarm, SoakMemoReplayIsBitIdenticalAndAllHits) {
  // distinct_seeds cycles each cell through a fixed seed set; the second
  // run() replays the same grid, so every episode must be served from the
  // memo and the result must not change. The memoized result also equals
  // the run_cell reference with the same cycling — the memo is invisible.
  const auto cells = small_farm();
  FarmOptions opt;
  opt.seed = 41;
  opt.workers = 4;
  opt.distinct_seeds = 2;
  ApFarm farm(cells, opt);
  const FarmResult first = farm.run(4);
  EXPECT_EQ(first.memo_hits + first.memo_misses, first.episodes);
  // 4 episodes over 2 distinct seeds: at least half are replays (racing
  // workers may duplicate a first computation, never a later one).
  EXPECT_GE(first.memo_misses, cells.size() * 2u);

  const FarmResult second = farm.run(4);
  expect_farms_eq(second, first);
  EXPECT_EQ(second.memo_hits, second.episodes);
  EXPECT_EQ(second.memo_misses, 0u);

  for (std::size_t c = 0; c < cells.size(); ++c)
    expect_cells_eq(first.cells[c],
                    run_cell(cells[c], c, opt.seed, 4, opt.distinct_seeds));
}

TEST(ApFarm, RejectsInvalidFarms) {
  EXPECT_THROW(ApFarm({}, {}), std::invalid_argument);

  auto logged = make_cell(10.0, 2, CollectMode::Live);
  logged.scenario.mode = CollectMode::LoggedJoint;
  EXPECT_THROW(ApFarm({logged}, {}), std::invalid_argument);

  auto crowded = make_cell(10.0, 2, CollectMode::Live, kMaxCellSenders + 1);
  EXPECT_THROW(ApFarm({crowded}, {}), std::invalid_argument);

  auto stream80211 = make_cell(10.0, 2, CollectMode::Streaming);
  stream80211.scenario.receiver = ReceiverKind::Current80211;
  EXPECT_THROW(ApFarm({stream80211}, {}), std::invalid_argument);

  EXPECT_THROW(run_cell(logged, 0, 1, 1), std::invalid_argument);
}

// ------------------------------------------------------ EpisodeStream API

TEST(EpisodeStream, StepwiseRunMatchesRunScenario) {
  // The extraction contract: constructing an EpisodeStream and stepping it
  // to completion consumes the same RNG draws — and produces the same
  // stats — as the run_scenario loop it was carved out of.
  for (const auto mode : {CollectMode::Live, CollectMode::Streaming}) {
    auto sc = make_cell(11.0, 3, mode).scenario;
    Rng a(77), b(77);
    const auto direct = testbed::run_scenario(a, sc);

    testbed::EpisodeStream es(sc, b);
    std::size_t steps = 0;
    while (!es.done()) {
      es.step(b);
      ++steps;
    }
    const auto stepped = es.finish();
    EXPECT_GT(steps, 0u);
    EXPECT_GE(es.rounds(), steps);  // separated rounds count extra airtime

    EXPECT_EQ(stepped.airtime_rounds, direct.airtime_rounds);
    EXPECT_EQ(stepped.concurrent_rounds, direct.concurrent_rounds);
    EXPECT_EQ(stepped.stream_samples, direct.stream_samples);
    EXPECT_EQ(stepped.stream_deliveries, direct.stream_deliveries);
    ASSERT_EQ(stepped.flows.size(), direct.flows.size());
    for (std::size_t i = 0; i < stepped.flows.size(); ++i) {
      EXPECT_EQ(stepped.flows[i].delivered, direct.flows[i].delivered);
      EXPECT_DOUBLE_EQ(stepped.flows[i].throughput,
                       direct.flows[i].throughput);
    }
  }
}

TEST(EpisodeStream, RejectsNonEpisodicModes) {
  auto sc = make_cell(10.0, 2, CollectMode::Live).scenario;
  sc.mode = CollectMode::LoggedJoint;
  Rng rng(5);
  EXPECT_THROW(testbed::EpisodeStream(sc, rng), std::invalid_argument);
  sc.mode = CollectMode::SlottedAloha;
  EXPECT_THROW(testbed::EpisodeStream(sc, rng), std::invalid_argument);
}

}  // namespace
}  // namespace zz::farm
