// Shared helpers for the paper-reproduction benches: canonical scenario
// construction (senders, profiles, collisions) and scoring, mirroring the
// methodology fixtures used across the test suite.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "zz/chan/channel.h"
#include "zz/common/mathutil.h"
#include "zz/common/rng.h"
#include "zz/emu/collision.h"
#include "zz/phy/receiver.h"
#include "zz/phy/transmitter.h"
#include "zz/zigzag/decoder.h"

namespace zz::bench {

/// Scale factor for run sizes: ZZ_QUICK=1 shrinks every bench for smoke
/// runs; ZZ_FULL=1 enlarges them toward paper-sized sample counts.
inline double run_scale() {
  if (std::getenv("ZZ_QUICK")) return 0.25;
  if (std::getenv("ZZ_FULL")) return 4.0;
  return 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const auto v = static_cast<std::size_t>(static_cast<double>(n) * run_scale());
  return v ? v : 1;
}

struct Party {
  phy::TxFrame frame;
  chan::ChannelParams channel;
  phy::SenderProfile profile;
};

inline Party make_party(Rng& rng, std::uint8_t id, std::uint16_t seq,
                        std::size_t payload_bytes, double snr_db,
                        phy::Modulation mod = phy::Modulation::BPSK,
                        double freq_jitter = 2e-5,
                        double isi_strength = 0.15) {
  Party p;
  phy::FrameHeader h;
  h.sender_id = id;
  h.seq = seq;
  h.payload_mod = mod;
  h.payload_bytes = static_cast<std::uint16_t>(payload_bytes);
  p.frame = phy::build_frame(h, rng.bytes(payload_bytes));
  chan::ImpairmentConfig icfg;
  icfg.snr_db = snr_db;
  icfg.freq_offset_max = 2e-3;
  icfg.isi_strength = isi_strength;
  p.channel = chan::random_channel(rng, icfg);
  p.profile.id = id;
  p.profile.freq_offset =
      p.channel.freq_offset + rng.uniform(-freq_jitter, freq_jitter);
  p.profile.snr_db = snr_db;
  p.profile.mod = mod;
  p.profile.isi = p.channel.isi;
  if (!p.channel.isi.is_identity())
    p.profile.equalizer = p.channel.isi.inverse(7, 3);
  return p;
}

inline zigzag::Detection detect_at(const CVec& rx, std::ptrdiff_t origin,
                                   const phy::SenderProfile& prof,
                                   int profile_index) {
  const auto pe = phy::estimate_at_peak(rx, static_cast<std::size_t>(origin),
                                        prof.freq_offset);
  zigzag::Detection d;
  d.origin = pe.origin;
  d.mu = pe.mu;
  d.h = pe.h;
  d.freq_offset = prof.freq_offset;
  d.metric = pe.metric;
  d.profile_index = profile_index;
  return d;
}

/// The canonical hidden-terminal collision pair at sample offsets d1, d2.
struct PairScenario {
  emu::Reception c1, c2;
  Party alice, bob;
  std::vector<phy::SenderProfile> profiles;
  zigzag::CollisionInput in1, in2;
};

inline PairScenario make_pair_scenario(Rng& rng, std::size_t payload,
                                       double snr_db, std::ptrdiff_t d1,
                                       std::ptrdiff_t d2,
                                       double isi_strength = 0.15) {
  PairScenario s;
  s.alice = make_party(rng, 1, 100, payload, snr_db, phy::Modulation::BPSK,
                       2e-5, isi_strength);
  s.bob = make_party(rng, 2, 200, payload, snr_db, phy::Modulation::BPSK,
                     2e-5, isi_strength);
  s.c1 = emu::CollisionBuilder()
             .lead(64)
             .add(s.alice.frame, s.alice.channel, 0)
             .add(s.bob.frame, s.bob.channel, d1)
             .build(rng);
  auto a2 = chan::retransmission_channel(rng, s.alice.channel, 0.0);
  auto b2 = chan::retransmission_channel(rng, s.bob.channel, 0.0);
  s.c2 = emu::CollisionBuilder()
             .lead(64)
             .add(phy::with_retry(s.alice.frame, true), a2, 0)
             .add(phy::with_retry(s.bob.frame, true), b2, d2)
             .build(rng);
  s.profiles = {s.alice.profile, s.bob.profile};
  s.in1.samples = &s.c1.samples;
  s.in1.placements = {
      {0, detect_at(s.c1.samples, s.c1.truth[0].start, s.alice.profile, 0)},
      {1, detect_at(s.c1.samples, s.c1.truth[1].start, s.bob.profile, 1)}};
  s.in2.samples = &s.c2.samples;
  s.in2.is_retransmission = true;
  s.in2.placements = {
      {0, detect_at(s.c2.samples, s.c2.truth[0].start, s.alice.profile, 0)},
      {1, detect_at(s.c2.samples, s.c2.truth[1].start, s.bob.profile, 1)}};
  return s;
}

/// BER of a decoded packet against the matching retry variant of the truth.
inline double packet_ber(const phy::TxFrame& truth,
                         const zigzag::PacketResult& r) {
  if (!r.header_ok) return 1.0;
  const phy::TxFrame& ref = truth.header.retry == r.header.retry
                                ? truth
                                : phy::with_retry(truth, r.header.retry);
  return bit_error_rate(ref.air_bits(), r.air_bits);
}

}  // namespace zz::bench
