// Fig 5-9 generalized — n hidden terminals, n = 2..6: CDF of per-sender
// throughput and Jain fairness under ZigZag joint decoding. Paper (§5.7):
// every sender gets a fair ~1/n share, as if each had its own time slot.
//
// Runs on the shared worker pool with sharded per-run RNG, so the printed
// numbers are bit-identical at any thread count — run_all --check diffs
// them against the committed baseline and gates the fairness ratio.
#include <cstdio>

#include "bench_util.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"
#include "zz/common/thread_pool.h"
#include "zz/testbed/sweep.h"

int main() {
  using namespace zz;
  testbed::NSenderSweepConfig cfg;
  cfg.runs_per_n = bench::scaled(3);
  cfg.packets_per_sender = bench::scaled(4);

  const auto result = testbed::run_n_sender_sweep(cfg, ThreadPool::shared());

  Table cdf({"n", "p0", "p25", "p50", "p75", "p100"});
  for (const auto& pt : result.points) {
    Cdf c;
    c.add_all(pt.per_sender_throughput);
    cdf.add_row({std::to_string(pt.n), Table::num(c.percentile(0.0), 3),
                 Table::num(c.percentile(0.25), 3),
                 Table::num(c.percentile(0.5), 3),
                 Table::num(c.percentile(0.75), 3),
                 Table::num(c.percentile(1.0), 3)});
  }
  cdf.print("n-sender sweep: per-sender throughput CDF (ZigZag, 12 dB)");

  Table fair({"n", "mean tput", "fair share", "ratio", "fairness", "loss"});
  for (const auto& pt : result.points)
    fair.add_row({std::to_string(pt.n), Table::num(pt.mean_throughput, 4),
                  Table::num(pt.fair_share, 4),
                  Table::num(pt.mean_throughput / pt.fair_share, 3),
                  Table::num(pt.fairness, 4), Table::pct(pt.mean_loss, 1)});
  fair.print("\nn-sender sweep: fair-share ratio and Jain fairness");

  std::printf("\nEvery sender holds ~1/n of the airtime: the n-way greedy "
              "schedule (§4.5)\nresolves each round's collisions as if the "
              "senders were time-slotted.\n");
  return 0;
}
