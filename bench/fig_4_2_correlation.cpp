// Fig 4-2 — "Detecting Collisions by Correlation with the Known Preamble".
// Prints the sliding-correlation magnitude around a collision: near-flat
// except for a spike exactly where the second packet starts.
#include <cstdio>

#include "bench_util.h"
#include "zz/common/table.h"
#include "zz/zigzag/detector.h"

int main() {
  using namespace zz;
  Rng rng(42);
  auto s = bench::make_pair_scenario(rng, 300, 12.0, 500, 900);
  const zigzag::CollisionDetector det;
  const auto profile =
      det.correlation_profile(s.c1.samples, s.bob.profile.freq_offset);

  const auto bob_start = static_cast<std::size_t>(s.c1.truth[1].start);
  std::printf("Fig 4-2: correlation magnitude vs position (collision at %zu)\n",
              bob_start);
  Table t({"position", "|corr|", "note"});
  for (std::size_t i = 64; i + 64 < profile.size(); i += 50) {
    std::string note;
    if (i + 50 > bob_start && i <= bob_start) {
      t.add_row({std::to_string(bob_start), Table::num(profile[bob_start], 5),
                 "<-- spike: second packet starts (offset Delta)"});
    }
    t.add_row({std::to_string(i), Table::num(profile[i], 4), note});
  }
  t.print("correlation profile (every 50th sample + the spike)");

  double spike = 0, background = 0;
  std::size_t n = 0;
  for (std::size_t i = bob_start - 2; i <= bob_start + 2; ++i)
    spike = std::max(spike, profile[i]);
  for (std::size_t i = 200; i < profile.size(); i += 7)
    if (i < bob_start - 32 || i > bob_start + 32) {
      background += profile[i];
      ++n;
    }
  std::printf("\nspike = %.1f, mean background = %.1f, ratio = %.1fx\n", spike,
              background / n, spike / (background / n));
  return 0;
}
