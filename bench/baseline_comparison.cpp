// Head-to-head baseline receivers on the n-sender scenario engine,
// n = 2..6 hidden terminals at 12 dB:
//
//   zigzag        — the paper's receiver (§4), LoggedJoint joint decode.
//   algebraic-mp  — "Collision Helps" message-passing/Gaussian-elimination
//                   recovery (arXiv:1001.1948) on the SAME collision logs.
//   slotted-zz    — slotted ALOHA whose collided slots feed the zigzag
//                   decoder (arXiv:1501.00976), online matching across
//                   slots.
//   802.11        — stock receiver on the same logs (capture only).
//
// Every head runs the same sharded-RNG sweep, so the printed tables are
// bit-identical at any thread count; run_all --check diffs them verbatim
// against the committed baseline and gates the expected ordering
// (zigzag >= 802.11 at every n; algebraic-mp within its documented band of
// zigzag — see bench/README.md).
#include <cstdio>

#include "bench_util.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"
#include "zz/common/thread_pool.h"
#include "zz/testbed/sweep.h"

int main() {
  using namespace zz;

  struct Head {
    const char* name;
    testbed::ReceiverKind kind;
    testbed::CollectMode mode;
  };
  const Head heads[] = {
      {"zigzag", testbed::ReceiverKind::ZigZag,
       testbed::CollectMode::LoggedJoint},
      {"algebraic-mp", testbed::ReceiverKind::AlgebraicMP,
       testbed::CollectMode::LoggedJoint},
      {"slotted-zz", testbed::ReceiverKind::ZigZag,
       testbed::CollectMode::SlottedAloha},
      {"802.11", testbed::ReceiverKind::Current80211,
       testbed::CollectMode::LoggedJoint},
  };

  std::vector<testbed::NSenderSweepResult> results;
  for (const Head& h : heads) {
    testbed::NSenderSweepConfig cfg;
    cfg.runs_per_n = bench::scaled(2);
    cfg.packets_per_sender = bench::scaled(3);
    cfg.seed = 117;
    cfg.receiver = h.kind;
    cfg.mode = h.mode;
    results.push_back(testbed::run_n_sender_sweep(cfg, ThreadPool::shared()));
  }

  Table cdf({"n", "receiver", "p0", "p50", "p100", "mean tput", "mean loss"});
  for (std::size_t ni = 0; ni < results[0].points.size(); ++ni) {
    for (std::size_t h = 0; h < std::size(heads); ++h) {
      const auto& pt = results[h].points[ni];
      Cdf c;
      c.add_all(pt.per_sender_throughput);
      cdf.add_row({std::to_string(pt.n), heads[h].name,
                   Table::num(c.percentile(0.0), 3),
                   Table::num(c.percentile(0.5), 3),
                   Table::num(c.percentile(1.0), 3),
                   Table::num(pt.mean_throughput, 4),
                   Table::pct(pt.mean_loss, 1)});
    }
  }
  cdf.print("baseline comparison: per-sender throughput CDF and loss "
            "(n hidden senders, 12 dB)");

  Table ord({"n", "zz tput", "mp tput", "mp/zz", "slotted-zz", "802.11"});
  for (std::size_t ni = 0; ni < results[0].points.size(); ++ni) {
    const double zz = results[0].points[ni].mean_throughput;
    const double mp = results[1].points[ni].mean_throughput;
    ord.add_row({std::to_string(results[0].points[ni].n), Table::num(zz, 4),
                 Table::num(mp, 4), Table::num(zz > 0.0 ? mp / zz : 0.0, 3),
                 Table::num(results[2].points[ni].mean_throughput, 4),
                 Table::num(results[3].points[ni].mean_throughput, 4)});
  }
  ord.print("baseline comparison: ordering summary (mean per-sender "
            "throughput)");

  std::printf(
      "\nzigzag holds ~1/n at every n; the algebraic-MP receiver pays for "
      "skipping the\n§4.2.4 tracking loop, slotted-ALOHA-zigzag pays idle "
      "slots and k>2 pileups, and\nstock 802.11 gets nothing out of "
      "equal-power collisions.\n");
  return 0;
}
