// Bench driver: runs the paper-reproduction benches that live next to this
// binary and emits a machine-readable BENCH_decoder.json baseline.
//
// Usage:
//   run_all [--quick | --full] [--check] [--bin-dir <dir>] [--out <file>]
//           [--only <name,name,...>] [--wall-scale <x>]
//
// --only restricts the run to a comma-separated subset of the baseline
// benches (ci.sh --sanitize uses it for a fast deterministic subset sized
// for sanitizer overhead). --wall-scale multiplies every wall-time budget —
// sanitizer instrumentation slows the benches 2-10x, and without the
// multiplier --check would hard-fail budgets that measure the tool, not a
// regression.
//
// The committed baseline covers EVERY deterministic paper bench: the
// headline subset the ROADMAP's perf/accuracy trajectory tracks
// (table_5_1_micro, fig_5_3_ber, n_sender_sweep, baseline_comparison)
// plus the remaining fig_*/lemma_* benches — all sharded-RNG reproducible,
// so all drift-gated. Each bench's stdout is captured verbatim into the
// JSON together with its wall-clock time, so later PRs can diff both the
// numbers and the cost of producing them. (--all is accepted for backward
// compatibility; the full set runs by default now.)
//
// --check turns the driver into a regression gate: it parses the captured
// tables and fails the run when the detector accuracy drifts off the
// Table 5.1(a) operating point, the Fig 5-3 BER curve loses its
// monotonicity (the high-SNR anomaly this repo once shipped), an n-sender
// fairness or head-to-head ordering gate breaks (n_sender_sweep,
// baseline_comparison), any deterministic bench's stdout drifts from the
// committed baseline, or a bench's wall time blows past its recorded
// budget (~2.5x measured cost).
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct BenchRun {
  std::string name;
  int exit_code = -1;
  double wall_ms = 0.0;
  std::vector<std::string> stdout_lines;
};

// The committed baseline: the headline perf/accuracy subset first, then
// the remaining deterministic fig_*/lemma_* benches (folded into the
// baseline + drift gate once the decode hot path made them cheap enough to
// run gated in CI). complexity is excluded: it is a Google Benchmark
// binary with its own JSON emitter.
const char* const kBaselineBenches[] = {
    "table_5_1_micro",      "fig_5_3_ber",
    "n_sender_sweep",       "baseline_comparison",
    "error_propagation",    "fig_4_2_correlation",
    "fig_4_7_greedy_failure", "fig_5_2_tracking_isi",
    "fig_5_4_capture",      "fig_5_5_throughput_cdf",
    "fig_5_6_loss_cdf",     "fig_5_7_scatter",
    "fig_5_8_hidden_loss",  "fig_5_9_three_senders",
    "lemma_4_4_1_ack",      "streaming_pipeline",
    "ap_farm"};

// Every bench's stdout is fully deterministic (sharded RNG, thread-count
// independent — test-pinned for the sweeps), so --check --baseline diffs
// every bench verbatim against the committed baseline.

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

BenchRun run_bench(const std::string& bin_dir, const std::string& name) {
  BenchRun r;
  r.name = name;
  // Merge stderr into the captured stream so failures are visible in the
  // baseline file, not lost to the console. bin_dir is single-quoted so
  // spaces/metacharacters in the path survive the shell.
  const std::string cmd = "'" + bin_dir + "/" + name + "' 2>&1";
  const auto t0 = std::chrono::steady_clock::now();
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    r.exit_code = 127;
    r.stdout_lines.push_back("run_all: failed to spawn " + cmd);
    return r;
  }
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe)) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      r.stdout_lines.push_back(line);
      line.clear();
    }
  }
  if (!line.empty()) r.stdout_lines.push_back(line);
  const int status = pclose(pipe);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (status < 0) {
    r.exit_code = status;
  } else if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    // Shell convention: a bench killed by a signal must not read as a pass.
    r.exit_code = 128 + WTERMSIG(status);
  } else {
    r.exit_code = -1;
  }
  return r;
}

void write_json(const std::string& path, const std::string& scale,
                const std::vector<BenchRun>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "run_all: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"zz-bench-baseline-v1\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", scale.c_str());
  std::fprintf(f, "  \"benches\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", json_escape(r.name).c_str());
    std::fprintf(f, "      \"exit_code\": %d,\n", r.exit_code);
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"stdout\": [\n");
    for (std::size_t j = 0; j < r.stdout_lines.size(); ++j) {
      std::fprintf(f, "        \"%s\"%s\n", json_escape(r.stdout_lines[j]).c_str(),
                   j + 1 < r.stdout_lines.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

std::string dir_of(const char* argv0) {
  std::string s(argv0);
  const auto slash = s.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : s.substr(0, slash);
}

// ------------------------------------------------------------------ checks

// Split a markdown-ish table row "| a | b | c |" into cell strings.
std::vector<std::string> row_cells(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in = false;
  for (const char c : line) {
    if (c == '|') {
      if (in) {
        while (!cur.empty() && cur.back() == ' ') cur.pop_back();
        cells.push_back(cur);
      }
      cur.clear();
      in = true;
    } else if (in && !(cur.empty() && c == ' ')) {
      cur += c;
    }
  }
  return cells;
}

int check_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "run_all --check FAILED: %s\n", what.c_str());
    ++check_failures;
  }
}

// Table 5.1(a): the β = 0.65 row must stay at the calibrated operating
// point. Quick runs use a quarter of the samples, so their gates carry
// binomial slack.
void check_table_5_1(const BenchRun& r, bool quick) {
  const double fp_max = quick ? 15.0 : 10.0;
  const double fn_max = quick ? 10.0 : 5.0;
  bool seen = false;
  for (const auto& line : r.stdout_lines) {
    const auto cells = row_cells(line);
    if (cells.size() != 3 || cells[0] != "0.65") continue;
    seen = true;
    const double fp = std::strtod(cells[1].c_str(), nullptr);
    const double fn = std::strtod(cells[2].c_str(), nullptr);
    check(fp <= fp_max, "table_5_1(a) beta=0.65 FP " + cells[1] +
                            " above " + std::to_string(fp_max) + "%");
    check(fn <= fn_max, "table_5_1(a) beta=0.65 FN " + cells[2] +
                            " above " + std::to_string(fn_max) + "%");
  }
  check(seen, "table_5_1(a): beta=0.65 row not found in output");
}

// Fig 5-3: the fwd+bwd BER column must be monotonically non-increasing
// from 5 to 12 dB (within a small slack for single-bit noise) and free of
// the high-SNR anomaly (BER at >= 10 dB back above 5e-4).
void check_fig_5_3(const BenchRun& r, bool quick) {
  const double slack = quick ? 1e-3 : 5e-5;
  const double tail_max = quick ? 2e-3 : 5e-4;
  double prev = -1.0;
  std::size_t rows = 0;
  for (const auto& line : r.stdout_lines) {
    const auto cells = row_cells(line);
    if (cells.size() != 5) continue;
    char* end = nullptr;
    const double snr = std::strtod(cells[0].c_str(), &end);
    if (end == cells[0].c_str() || snr < 5.0 || snr > 12.0) continue;
    const double ber = std::strtod(cells[3].c_str(), nullptr);
    ++rows;
    if (prev >= 0.0)
      check(ber <= prev + slack,
            "fig_5_3 fwd+bwd BER not monotone at " + cells[0] + " dB (" +
                cells[3] + " after " + std::to_string(prev) + ")");
    if (snr >= 10.0)
      check(ber <= tail_max, "fig_5_3 fwd+bwd BER " + cells[3] + " at " +
                                 cells[0] + " dB above the high-SNR gate");
    prev = ber;
  }
  check(rows == 8, "fig_5_3: expected 8 SNR rows, found " +
                       std::to_string(rows));
}

// n_sender_sweep: every n = 2..6 must hold its fair ~1/n share under
// ZigZag (the §5.7 result generalized). The fairness table's rows carry
// | n | mean tput | fair share | ratio | fairness | loss |; the CDF table
// above it also has 6-cell rows, so rows only count once the fairness
// header has been seen.
void check_n_sender_sweep(const BenchRun& r, bool quick) {
  const double ratio_min = quick ? 0.85 : 0.90;
  const double fairness_min = quick ? 0.90 : 0.95;
  bool in_fair = false;
  std::size_t rows = 0;
  for (const auto& line : r.stdout_lines) {
    const auto cells = row_cells(line);
    if (cells.size() != 6) continue;
    if (cells[2] == "fair share") {
      in_fair = true;
      continue;
    }
    if (!in_fair) continue;
    char* end = nullptr;
    const double n = std::strtod(cells[0].c_str(), &end);
    if (end == cells[0].c_str() || n < 2.0 || n > 6.0) continue;
    ++rows;
    const double ratio = std::strtod(cells[3].c_str(), nullptr);
    const double fairness = std::strtod(cells[4].c_str(), nullptr);
    check(ratio >= ratio_min, "n_sender_sweep n=" + cells[0] +
                                  " fair-share ratio " + cells[3] +
                                  " below " + std::to_string(ratio_min));
    check(fairness >= fairness_min, "n_sender_sweep n=" + cells[0] +
                                        " Jain fairness " + cells[4] +
                                        " below " +
                                        std::to_string(fairness_min));
  }
  check(rows == 5, "n_sender_sweep: expected 5 n-rows, found " +
                       std::to_string(rows));
}

// baseline_comparison: the head-to-head ordering must hold at every
// n = 2..6 (see bench/README.md for the documented bands):
//   * zigzag mean per-sender throughput >= stock 802.11's (the paper's
//     core claim, generalized),
//   * algebraic-mp within [kMpBandLo, kMpBandHi] of zigzag — clearly
//     working (it decodes the same logs) but not mysteriously beating the
//     full §4.2.4 tracking receiver,
//   * slotted-ALOHA-zigzag above a positive floor (collision recovery
//     working despite idle slots and k>2 pileups).
// Rows are parsed from the 7-cell CDF table: | n | receiver | p0 | p50 |
// p100 | mean tput | mean loss |.
void check_baseline_comparison(const BenchRun& r, bool quick) {
  const double mp_lo = quick ? 0.45 : 0.60;
  const double mp_hi = quick ? 1.15 : 1.05;
  const double slotted_min = quick ? 0.03 : 0.04;
  struct Row {
    double zz = -1.0, mp = -1.0, slotted = -1.0, dot11 = -1.0;
  };
  Row rows[7];  // indexed by n
  std::size_t seen = 0;
  for (const auto& line : r.stdout_lines) {
    const auto cells = row_cells(line);
    if (cells.size() != 7 || cells[1] == "receiver") continue;
    char* end = nullptr;
    const double nd = std::strtod(cells[0].c_str(), &end);
    if (end == cells[0].c_str() || nd < 2.0 || nd > 6.0) continue;
    const auto n = static_cast<std::size_t>(nd);
    const double mean = std::strtod(cells[5].c_str(), nullptr);
    if (cells[1] == "zigzag") rows[n].zz = mean;
    else if (cells[1] == "algebraic-mp") rows[n].mp = mean;
    else if (cells[1] == "slotted-zz") rows[n].slotted = mean;
    else if (cells[1] == "802.11") rows[n].dot11 = mean;
    else continue;
    ++seen;
  }
  check(seen == 20, "baseline_comparison: expected 20 head rows, found " +
                        std::to_string(seen));
  for (std::size_t n = 2; n <= 6; ++n) {
    const Row& row = rows[n];
    if (row.zz < 0.0 || row.mp < 0.0 || row.slotted < 0.0 || row.dot11 < 0.0)
      continue;  // the row-count check already fired
    const std::string at = " at n=" + std::to_string(n);
    check(row.zz >= row.dot11, "baseline_comparison: zigzag throughput " +
                                   std::to_string(row.zz) + " below 802.11 " +
                                   std::to_string(row.dot11) + at);
    check(row.zz > 0.0, "baseline_comparison: zigzag throughput zero" + at);
    const double ratio = row.zz > 0.0 ? row.mp / row.zz : 0.0;
    check(ratio >= mp_lo && ratio <= mp_hi,
          "baseline_comparison: algebraic-mp/zigzag ratio " +
              std::to_string(ratio) + " outside [" + std::to_string(mp_lo) +
              ", " + std::to_string(mp_hi) + "]" + at);
    check(row.slotted >= slotted_min,
          "baseline_comparison: slotted-zz throughput " +
              std::to_string(row.slotted) + " below " +
              std::to_string(slotted_min) + at);
  }
}

// streaming_pipeline: the streaming contract and the streaming-route
// fairness, gated structurally (the exact numbers are drift-gated by the
// baseline diff like every other deterministic bench):
//   * every Live-vs-Streaming identity row must read "yes" — the stream
//     delivering different packets than the offline route is a pipeline
//     bug, never a tuning choice;
//   * the latency table must show a bounded per-push work figure and a
//     nonzero delivery count at every n;
//   * the streaming-route n-sender sweep must hold Jain fairness >= 0.90
//     at n = 3 — the gate the live route could not pass before the n-way
//     matching fixes. (The fair-share RATIO is not gated here: on the
//     live/streaming route airtime includes idle contention rounds, so
//     ratio << 1 is the methodology, not a regression — n_sender_sweep's
//     LoggedJoint rounds are lockstep and carry that gate. n = 4 is
//     reported but ungated: at quick scale its single run is degenerate.)
void check_streaming_pipeline(const BenchRun& r, bool quick) {
  const double fairness_min = quick ? 0.80 : 0.90;
  std::size_t ident_rows = 0, lat_rows = 0, fair_rows = 0;
  bool in_fair = false;
  for (const auto& line : r.stdout_lines) {
    const auto cells = row_cells(line);
    if (cells.size() == 6 && cells[1] != "seed" && cells[5] != "loss" &&
        !in_fair && cells[2] != "fair share") {
      // | n | seed | live | stream | airtime | identical |
      ++ident_rows;
      check(cells[5] == "yes", "streaming_pipeline: n=" + cells[0] +
                                   " seed=" + cells[1] +
                                   " stream diverged from live");
    }
    if (cells.size() == 7 && cells[1] != "samples") {
      // | n | samples | windows | delivered | first at | mean lat | max push |
      ++lat_rows;
      check(std::strtod(cells[3].c_str(), nullptr) > 0.0,
            "streaming_pipeline: no deliveries at n=" + cells[0]);
      check(std::strtod(cells[6].c_str(), nullptr) > 0.0,
            "streaming_pipeline: missing per-push work pin at n=" + cells[0]);
    }
    if (cells.size() == 6 && cells[2] == "fair share") {
      in_fair = true;
      continue;
    }
    if (in_fair && cells.size() == 6) {
      char* end = nullptr;
      const double n = std::strtod(cells[0].c_str(), &end);
      if (end == cells[0].c_str() || n < 2.0 || n > 4.0) continue;
      ++fair_rows;
      if (n == 3.0)
        check(std::strtod(cells[4].c_str(), nullptr) >= fairness_min,
              "streaming_pipeline: streaming Jain fairness " + cells[4] +
                  " below " + std::to_string(fairness_min) + " at n=" + cells[0]);
    }
  }
  check(ident_rows == 6, "streaming_pipeline: expected 6 identity rows, found " +
                             std::to_string(ident_rows));
  check(lat_rows == 3, "streaming_pipeline: expected 3 latency rows, found " +
                           std::to_string(lat_rows));
  check(fair_rows == 3, "streaming_pipeline: expected 3 fairness rows, found " +
                            std::to_string(fair_rows));
}

// Multiplier applied to every wall budget and perf floor (--wall-scale);
// 1.0 in plain runs, >1 under sanitizer instrumentation.
double wall_scale = 1.0;

// ap_farm: the farm determinism and soak gates plus the perf floors:
//   * every determinism row must read "yes" — the merged farm result is
//     bit-identical at any worker count, by construction and by gate;
//   * every steady-state soak row must report ZERO episode allocations and
//     zero memo misses — the endless-stream steady state is memo replay;
//   * the 1-worker sustained packet rate must clear a floor (scaled down
//     under --quick and by --wall-scale, which measures the sanitizer, not
//     the code);
//   * scaling efficiency at 4 workers must clear 0.7 — but only when the
//     machine actually has >= 4 hardware cores (the bench reports
//     hw_cores); oversubscribed 1-core containers measure the scheduler.
void check_ap_farm(const BenchRun& r, bool quick) {
  // The floor is a collapse detector, not a perf target (the recorded
  // perf lines carry the trajectory): sized for a loaded 1-core CI
  // container at ~1/6 of the measured 34 pkts/s.
  const double pkts_floor = (quick ? 3.0 : 5.0) / wall_scale;
  std::size_t det_rows = 0, steady_rows = 0;
  bool grid_total = false;
  unsigned hw_cores = 0;
  double eff4 = -1.0, pkts1 = -1.0;
  for (const auto& line : r.stdout_lines) {
    if (line.rfind("perf:", 0) == 0) {
      unsigned hw = 0;
      if (std::sscanf(line.c_str(), "perf: hw_cores=%u", &hw) == 1)
        hw_cores = hw;
      std::size_t w = 0;
      double wall = 0.0, eps = 0.0, pkts = 0.0, res = 0.0, eff = 0.0;
      if (std::sscanf(line.c_str(),
                      "perf: workers=%zu wall_ms=%lf episodes/s=%lf "
                      "pkts/s=%lf resolved/s=%lf eff=%lf",
                      &w, &wall, &eps, &pkts, &res, &eff) == 6) {
        if (w == 1) pkts1 = pkts;
        if (w == 4) eff4 = eff;
      }
      continue;
    }
    const auto cells = row_cells(line);
    if (cells.size() == 2 && cells[1] != "identical") {
      ++det_rows;
      check(cells[1] == "yes", "ap_farm: result at workers=" + cells[0] +
                                   " diverged from the 1-worker farm");
    }
    if (cells.size() == 6 && cells[0].rfind("steady-", 0) == 0) {
      ++steady_rows;
      check(cells[2] == "0", "ap_farm: soak run " + cells[0] +
                                 " allocated (" + cells[2] +
                                 " episode allocs; steady state must be 0)");
      check(cells[4] == "0", "ap_farm: soak run " + cells[0] +
                                 " missed the episode memo " + cells[4] +
                                 " times");
    }
    if (cells.size() == 7 && cells[0] == "all") {
      grid_total = true;
      check(std::strtod(cells[4].c_str(), nullptr) > 0.0,
            "ap_farm: farm delivered nothing");
      check(std::strtod(cells[5].c_str(), nullptr) > 0.0,
            "ap_farm: farm resolved no collisions");
    }
  }
  check(grid_total, "ap_farm: grid total row not found");
  check(det_rows == 3, "ap_farm: expected 3 determinism rows, found " +
                           std::to_string(det_rows));
  check(steady_rows == 2, "ap_farm: expected 2 steady soak rows, found " +
                              std::to_string(steady_rows));
  check(pkts1 >= pkts_floor,
        "ap_farm: 1-worker sustained rate " + std::to_string(pkts1) +
            " pkts/s below the " + std::to_string(pkts_floor) + " floor");
  if (hw_cores >= 4)
    check(eff4 >= 0.7, "ap_farm: 4-worker scaling efficiency " +
                           std::to_string(eff4) + " below 0.7 on " +
                           std::to_string(hw_cores) + " cores");
}

// Wall-time guard: ~2.5x the recorded cost of each bench at the given
// scale; a regression to the old O(N·M) correlation path or per-symbol
// interpolation route trips this. Budgets were tightened to the batched
// decode-engine numbers (PR 5); tiny benches get a 2 s floor so machine
// noise cannot flake them. --full runs 4x the samples (bench_util
// run_scale), so its budgets scale.
void check_wall_time(const BenchRun& r, bool quick, bool full) {
  double budget_ms = 0.0;
  // Headline subset (measured single-core: 5.9 s / 2.2 s / 8.8 s / 9.0 s).
  if (r.name == "table_5_1_micro") budget_ms = quick ? 8000.0 : 15000.0;
  if (r.name == "fig_5_3_ber") budget_ms = quick ? 4000.0 : 6000.0;
  if (r.name == "n_sender_sweep") budget_ms = quick ? 5000.0 : 22000.0;
  if (r.name == "baseline_comparison") budget_ms = quick ? 10000.0 : 25000.0;
  // Measured 25 s single-core: every identity row runs its scenario twice
  // (Live then Streaming), plus the streaming-route sweep.
  if (r.name == "streaming_pipeline") budget_ms = quick ? 15000.0 : 60000.0;
  // The saturation grid runs 6x (1/2/4/8-worker sweep + warm soak runs);
  // oversubscribed worker counts cost scheduler time on small machines.
  if (r.name == "ap_farm") budget_ms = quick ? 20000.0 : 60000.0;
  if (budget_ms == 0.0) {
    // Folded fig_*/lemma_* benches (measured 0.01-9.1 s single-core).
    // Quick runs quarter the samples, so their budgets scale to 0.4x with
    // the same 2 s machine-noise floor.
    if (r.name == "fig_4_7_greedy_failure") budget_ms = 25000.0;
    if (r.name == "fig_5_4_capture") budget_ms = 20000.0;
    if (r.name == "fig_5_8_hidden_loss") budget_ms = 20000.0;
    if (r.name == "fig_5_5_throughput_cdf") budget_ms = 5000.0;
    if (r.name == "fig_5_6_loss_cdf") budget_ms = 4000.0;
    if (r.name == "fig_5_7_scatter") budget_ms = 6000.0;
    if (r.name == "fig_5_9_three_senders") budget_ms = 7000.0;
    if (r.name == "error_propagation" || r.name == "fig_4_2_correlation" ||
        r.name == "fig_5_2_tracking_isi" || r.name == "lemma_4_4_1_ack")
      budget_ms = 2000.0;
    if (quick && budget_ms > 0.0)
      budget_ms = std::max(2000.0, 0.4 * budget_ms);
  }
  if (full) budget_ms *= 4.0;
  budget_ms *= wall_scale;
  if (budget_ms > 0.0)
    check(r.wall_ms <= budget_ms,
          r.name + " took " + std::to_string(r.wall_ms) + " ms (budget " +
              std::to_string(budget_ms) + " ms)");
}

// ------------------------------------------------- baseline drift (--check)

// Minimal reader for the committed baseline: the per-bench "stdout" arrays
// in their escaped on-disk form, plus the recorded scale.
struct Baseline {
  std::string scale;
  std::vector<std::pair<std::string, std::vector<std::string>>> benches;
};

std::string strip(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && (s[a] == ' ' || s[a] == '\t')) ++a;
  while (b > a && (s[b - 1] == ' ' || s[b - 1] == '\t' || s[b - 1] == '\r' ||
                   s[b - 1] == '\n'))
    --b;
  return s.substr(a, b - a);
}

// Extract the value of a `"key": "value"` line (escaped form, no unescape).
bool quoted_value(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string prefix = "\"" + key + "\": \"";
  const auto at = line.find(prefix);
  if (at == std::string::npos) return false;
  const auto start = at + prefix.size();
  auto end = line.rfind('"');
  if (end == std::string::npos || end <= start) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool load_baseline(const std::string& path, Baseline* out) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  char buf[1 << 16];
  std::string cur_name;
  bool in_stdout = false;
  while (std::fgets(buf, sizeof buf, f)) {
    const std::string line = strip(buf);
    std::string v;
    if (quoted_value(line, "scale", &v)) {
      out->scale = v;
    } else if (quoted_value(line, "name", &v)) {
      cur_name = v;
      out->benches.push_back({cur_name, {}});
    } else if (line.rfind("\"stdout\":", 0) == 0) {
      // A malformed file can present a stdout array before any bench
      // name; there is nowhere to attach those lines, so skip the array.
      in_stdout = !out->benches.empty();
    } else if (in_stdout) {
      if (line == "]" || line == "],") {
        in_stdout = false;
      } else if (line.size() >= 2 && line.front() == '"') {
        std::string s = line;
        if (!s.empty() && s.back() == ',') s.pop_back();
        if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
          out->benches.back().second.push_back(s.substr(1, s.size() - 2));
      }
    }
  }
  std::fclose(f);
  return true;
}

// Diff a deterministic bench's captured stdout against the committed
// baseline (both sides in escaped form). Only meaningful when the run's
// scale matches the baseline's — the caller guards that. Lines prefixed
// "perf:" are wall-clock measurements (ap_farm's throughput sweep) — they
// are recorded in the baseline for the trajectory but excluded from the
// diff on both sides, since they measure the machine, not the code.
void check_drift(const BenchRun& r, const Baseline& base) {
  const auto is_perf = [](const std::string& escaped) {
    return escaped.rfind("perf:", 0) == 0;
  };
  for (const auto& [name, lines] : base.benches) {
    if (name != r.name) continue;
    std::vector<std::string> want_lines, got_lines;
    for (const auto& l : lines)
      if (!is_perf(l)) want_lines.push_back(l);
    for (const auto& l : r.stdout_lines) {
      std::string e = json_escape(l);
      if (!is_perf(e)) got_lines.push_back(std::move(e));
    }
    std::size_t n = std::max(want_lines.size(), got_lines.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::string want = i < want_lines.size() ? want_lines[i]
                                                     : "<missing>";
      const std::string got =
          i < got_lines.size() ? got_lines[i] : "<missing>";
      if (want != got) {
        check(false, r.name + " drifted from baseline at line " +
                         std::to_string(i + 1) + ": baseline \"" + want +
                         "\" vs run \"" + got + "\"");
        return;  // first divergence is enough
      }
    }
    return;
  }
  check(false, r.name + " not present in baseline file");
}

void run_checks(const std::vector<BenchRun>& runs, const std::string& scale,
                const std::string& baseline_path) {
  const bool quick = scale == "quick";
  const bool full = scale == "full";

  Baseline base;
  bool have_base = false;
  if (!baseline_path.empty()) {
    have_base = load_baseline(baseline_path, &base);
    check(have_base, "cannot read baseline file " + baseline_path);
    if (have_base && base.scale != scale) {
      std::printf(
          "run_all --check: baseline scale \"%s\" != run scale \"%s\", "
          "skipping drift diff\n",
          base.scale.c_str(), scale.c_str());
      have_base = false;
    }
  }

  for (const auto& r : runs) {
    check(r.exit_code == 0, r.name + " exited with " +
                                std::to_string(r.exit_code));
    if (r.name == "table_5_1_micro") check_table_5_1(r, quick);
    if (r.name == "fig_5_3_ber") check_fig_5_3(r, quick);
    if (r.name == "n_sender_sweep") check_n_sender_sweep(r, quick);
    if (r.name == "baseline_comparison") check_baseline_comparison(r, quick);
    if (r.name == "streaming_pipeline") check_streaming_pipeline(r, quick);
    if (r.name == "ap_farm") check_ap_farm(r, quick);
    check_wall_time(r, quick, full);
    if (have_base) check_drift(r, base);
  }
  if (check_failures == 0)
    std::printf("run_all --check: all gates green\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  bool do_check = false;
  std::string scale = "default";
  std::string bin_dir = dir_of(argv[0]);
  std::string out = "BENCH_decoder.json";
  std::string baseline_path;
  std::vector<std::string> only;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--all") {
      all = true;
    } else if (a == "--check") {
      do_check = true;
    } else if (a == "--quick") {
      scale = "quick";
    } else if (a == "--full") {
      scale = "full";
    } else if (a == "--bin-dir" && i + 1 < argc) {
      bin_dir = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (a == "--only" && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const auto comma = list.find(',', pos);
        const auto end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) only.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (a == "--wall-scale" && i + 1 < argc) {
      wall_scale = std::strtod(argv[++i], nullptr);
      if (!(wall_scale > 0.0)) {
        std::fprintf(stderr, "run_all: --wall-scale must be > 0\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--all] [--quick|--full] [--check] "
                   "[--baseline <file>] [--bin-dir <dir>] [--out <file>] "
                   "[--only <name,...>] [--wall-scale <x>]\n",
                   argv[0]);
      return 2;
    }
  }

  // The benches read ZZ_QUICK / ZZ_FULL themselves (bench_util.h); the
  // driver just forwards the requested scale through the environment.
  if (scale == "quick") setenv("ZZ_QUICK", "1", 1);
  if (scale == "full") setenv("ZZ_FULL", "1", 1);

  // The full deterministic set runs (and is baselined) by default; --all
  // is retained as a no-op for compatibility with older invocations.
  (void)all;
  std::vector<std::string> names(std::begin(kBaselineBenches),
                                 std::end(kBaselineBenches));
  if (!only.empty()) {
    // Subset runs keep baseline order and reject unknown names loudly — a
    // typo in a CI matrix leg must not silently run nothing.
    std::vector<std::string> subset;
    for (const auto& name : names)
      if (std::find(only.begin(), only.end(), name) != only.end())
        subset.push_back(name);
    if (subset.size() != only.size()) {
      for (const auto& o : only)
        if (std::find(names.begin(), names.end(), o) == names.end())
          std::fprintf(stderr, "run_all: --only names unknown bench '%s'\n",
                       o.c_str());
      return 2;
    }
    names = std::move(subset);
  }

  std::vector<BenchRun> runs;
  int failures = 0;
  for (const auto& name : names) {
    std::printf("run_all: %s ...\n", name.c_str());
    std::fflush(stdout);
    runs.push_back(run_bench(bin_dir, name));
    const auto& r = runs.back();
    std::printf("run_all: %s exit=%d wall=%.0f ms\n", name.c_str(), r.exit_code,
                r.wall_ms);
    if (r.exit_code != 0) ++failures;
  }

  write_json(out, scale, runs);
  std::printf("run_all: wrote %s (%zu benches, %d failed)\n", out.c_str(),
              runs.size(), failures);
  if (do_check) run_checks(runs, scale, baseline_path);
  return failures == 0 && check_failures == 0 ? 0 : 1;
}
