// Bench driver: runs the paper-reproduction benches that live next to this
// binary and emits a machine-readable BENCH_decoder.json baseline.
//
// Usage:
//   run_all [--all] [--quick | --full] [--check] [--bin-dir <dir>] [--out <file>]
//
// The default set (table_5_1_micro, fig_5_3_ber) is the decoder baseline
// the ROADMAP's perf trajectory tracks; --all additionally runs every other
// fig_*/table_*/lemma_* bench. Each bench's stdout is captured verbatim
// into the JSON together with its wall-clock time, so later PRs can diff
// both the numbers and the cost of producing them.
//
// --check turns the driver into a regression gate: it parses the captured
// tables and fails the run when the detector accuracy drifts off the
// Table 5.1(a) operating point, the Fig 5-3 BER curve loses its
// monotonicity (the high-SNR anomaly this repo once shipped), or a bench's
// wall time blows past ~2.5x its recorded cost.
#include <sys/wait.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct BenchRun {
  std::string name;
  int exit_code = -1;
  double wall_ms = 0.0;
  std::vector<std::string> stdout_lines;
};

// The committed baseline subset (satellite: "table_5_1_micro + fig_5_3_ber").
const char* const kBaselineBenches[] = {"table_5_1_micro", "fig_5_3_ber"};

// The remaining plain-main benches, run only under --all. complexity is
// excluded: it is a Google Benchmark binary with its own JSON emitter.
const char* const kExtraBenches[] = {
    "error_propagation", "fig_4_2_correlation",  "fig_4_7_greedy_failure",
    "fig_5_2_tracking_isi", "fig_5_4_capture",   "fig_5_5_throughput_cdf",
    "fig_5_6_loss_cdf",   "fig_5_7_scatter",     "fig_5_8_hidden_loss",
    "fig_5_9_three_senders", "lemma_4_4_1_ack"};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

BenchRun run_bench(const std::string& bin_dir, const std::string& name) {
  BenchRun r;
  r.name = name;
  // Merge stderr into the captured stream so failures are visible in the
  // baseline file, not lost to the console. bin_dir is single-quoted so
  // spaces/metacharacters in the path survive the shell.
  const std::string cmd = "'" + bin_dir + "/" + name + "' 2>&1";
  const auto t0 = std::chrono::steady_clock::now();
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    r.exit_code = 127;
    r.stdout_lines.push_back("run_all: failed to spawn " + cmd);
    return r;
  }
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe)) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      r.stdout_lines.push_back(line);
      line.clear();
    }
  }
  if (!line.empty()) r.stdout_lines.push_back(line);
  const int status = pclose(pipe);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (status < 0) {
    r.exit_code = status;
  } else if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    // Shell convention: a bench killed by a signal must not read as a pass.
    r.exit_code = 128 + WTERMSIG(status);
  } else {
    r.exit_code = -1;
  }
  return r;
}

void write_json(const std::string& path, const std::string& scale,
                const std::vector<BenchRun>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "run_all: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"zz-bench-baseline-v1\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", scale.c_str());
  std::fprintf(f, "  \"benches\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", json_escape(r.name).c_str());
    std::fprintf(f, "      \"exit_code\": %d,\n", r.exit_code);
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"stdout\": [\n");
    for (std::size_t j = 0; j < r.stdout_lines.size(); ++j) {
      std::fprintf(f, "        \"%s\"%s\n", json_escape(r.stdout_lines[j]).c_str(),
                   j + 1 < r.stdout_lines.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

std::string dir_of(const char* argv0) {
  std::string s(argv0);
  const auto slash = s.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : s.substr(0, slash);
}

// ------------------------------------------------------------------ checks

// Split a markdown-ish table row "| a | b | c |" into cell strings.
std::vector<std::string> row_cells(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in = false;
  for (const char c : line) {
    if (c == '|') {
      if (in) {
        while (!cur.empty() && cur.back() == ' ') cur.pop_back();
        cells.push_back(cur);
      }
      cur.clear();
      in = true;
    } else if (in && !(cur.empty() && c == ' ')) {
      cur += c;
    }
  }
  return cells;
}

int check_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "run_all --check FAILED: %s\n", what.c_str());
    ++check_failures;
  }
}

// Table 5.1(a): the β = 0.65 row must stay at the calibrated operating
// point. Quick runs use a quarter of the samples, so their gates carry
// binomial slack.
void check_table_5_1(const BenchRun& r, bool quick) {
  const double fp_max = quick ? 15.0 : 10.0;
  const double fn_max = quick ? 10.0 : 5.0;
  bool seen = false;
  for (const auto& line : r.stdout_lines) {
    const auto cells = row_cells(line);
    if (cells.size() != 3 || cells[0] != "0.65") continue;
    seen = true;
    const double fp = std::strtod(cells[1].c_str(), nullptr);
    const double fn = std::strtod(cells[2].c_str(), nullptr);
    check(fp <= fp_max, "table_5_1(a) beta=0.65 FP " + cells[1] +
                            " above " + std::to_string(fp_max) + "%");
    check(fn <= fn_max, "table_5_1(a) beta=0.65 FN " + cells[2] +
                            " above " + std::to_string(fn_max) + "%");
  }
  check(seen, "table_5_1(a): beta=0.65 row not found in output");
}

// Fig 5-3: the fwd+bwd BER column must be monotonically non-increasing
// from 5 to 12 dB (within a small slack for single-bit noise) and free of
// the high-SNR anomaly (BER at >= 10 dB back above 5e-4).
void check_fig_5_3(const BenchRun& r, bool quick) {
  const double slack = quick ? 1e-3 : 5e-5;
  const double tail_max = quick ? 2e-3 : 5e-4;
  double prev = -1.0;
  std::size_t rows = 0;
  for (const auto& line : r.stdout_lines) {
    const auto cells = row_cells(line);
    if (cells.size() != 5) continue;
    char* end = nullptr;
    const double snr = std::strtod(cells[0].c_str(), &end);
    if (end == cells[0].c_str() || snr < 5.0 || snr > 12.0) continue;
    const double ber = std::strtod(cells[3].c_str(), nullptr);
    ++rows;
    if (prev >= 0.0)
      check(ber <= prev + slack,
            "fig_5_3 fwd+bwd BER not monotone at " + cells[0] + " dB (" +
                cells[3] + " after " + std::to_string(prev) + ")");
    if (snr >= 10.0)
      check(ber <= tail_max, "fig_5_3 fwd+bwd BER " + cells[3] + " at " +
                                 cells[0] + " dB above the high-SNR gate");
    prev = ber;
  }
  check(rows == 8, "fig_5_3: expected 8 SNR rows, found " +
                       std::to_string(rows));
}

// Wall-time guard: ~2.5x the recorded cost of each bench at the given
// scale; a regression to the old O(N·M) correlation path trips this.
// --full runs 4x the samples (bench_util run_scale), so its budgets scale.
void check_wall_time(const BenchRun& r, bool quick, bool full) {
  double budget_ms = 0.0;
  if (r.name == "table_5_1_micro") budget_ms = quick ? 10000.0 : 20000.0;
  if (r.name == "fig_5_3_ber") budget_ms = quick ? 6000.0 : 10000.0;
  if (full) budget_ms *= 4.0;
  if (budget_ms > 0.0)
    check(r.wall_ms <= budget_ms,
          r.name + " took " + std::to_string(r.wall_ms) + " ms (budget " +
              std::to_string(budget_ms) + " ms)");
}

void run_checks(const std::vector<BenchRun>& runs, const std::string& scale) {
  const bool quick = scale == "quick";
  const bool full = scale == "full";
  for (const auto& r : runs) {
    check(r.exit_code == 0, r.name + " exited with " +
                                std::to_string(r.exit_code));
    if (r.name == "table_5_1_micro") check_table_5_1(r, quick);
    if (r.name == "fig_5_3_ber") check_fig_5_3(r, quick);
    check_wall_time(r, quick, full);
  }
  if (check_failures == 0)
    std::printf("run_all --check: all gates green\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  bool do_check = false;
  std::string scale = "default";
  std::string bin_dir = dir_of(argv[0]);
  std::string out = "BENCH_decoder.json";

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--all") {
      all = true;
    } else if (a == "--check") {
      do_check = true;
    } else if (a == "--quick") {
      scale = "quick";
    } else if (a == "--full") {
      scale = "full";
    } else if (a == "--bin-dir" && i + 1 < argc) {
      bin_dir = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--all] [--quick|--full] [--check] "
                   "[--bin-dir <dir>] [--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }

  // The benches read ZZ_QUICK / ZZ_FULL themselves (bench_util.h); the
  // driver just forwards the requested scale through the environment.
  if (scale == "quick") setenv("ZZ_QUICK", "1", 1);
  if (scale == "full") setenv("ZZ_FULL", "1", 1);

  std::vector<std::string> names(std::begin(kBaselineBenches),
                                 std::end(kBaselineBenches));
  if (all) {
    names.insert(names.end(), std::begin(kExtraBenches),
                 std::end(kExtraBenches));
  }

  std::vector<BenchRun> runs;
  int failures = 0;
  for (const auto& name : names) {
    std::printf("run_all: %s ...\n", name.c_str());
    std::fflush(stdout);
    runs.push_back(run_bench(bin_dir, name));
    const auto& r = runs.back();
    std::printf("run_all: %s exit=%d wall=%.0f ms\n", name.c_str(), r.exit_code,
                r.wall_ms);
    if (r.exit_code != 0) ++failures;
  }

  write_json(out, scale, runs);
  std::printf("run_all: wrote %s (%zu benches, %d failed)\n", out.c_str(),
              runs.size(), failures);
  if (do_check) run_checks(runs, scale);
  return failures == 0 && check_failures == 0 ? 0 : 1;
}
