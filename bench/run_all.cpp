// Bench driver: runs the paper-reproduction benches that live next to this
// binary and emits a machine-readable BENCH_decoder.json baseline.
//
// Usage:
//   run_all [--all] [--quick | --full] [--bin-dir <dir>] [--out <file>]
//
// The default set (table_5_1_micro, fig_5_3_ber) is the decoder baseline
// the ROADMAP's perf trajectory tracks; --all additionally runs every other
// fig_*/table_*/lemma_* bench. Each bench's stdout is captured verbatim
// into the JSON together with its wall-clock time, so later PRs can diff
// both the numbers and the cost of producing them.
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct BenchRun {
  std::string name;
  int exit_code = -1;
  double wall_ms = 0.0;
  std::vector<std::string> stdout_lines;
};

// The committed baseline subset (satellite: "table_5_1_micro + fig_5_3_ber").
const char* const kBaselineBenches[] = {"table_5_1_micro", "fig_5_3_ber"};

// The remaining plain-main benches, run only under --all. complexity is
// excluded: it is a Google Benchmark binary with its own JSON emitter.
const char* const kExtraBenches[] = {
    "error_propagation", "fig_4_2_correlation",  "fig_4_7_greedy_failure",
    "fig_5_2_tracking_isi", "fig_5_4_capture",   "fig_5_5_throughput_cdf",
    "fig_5_6_loss_cdf",   "fig_5_7_scatter",     "fig_5_8_hidden_loss",
    "fig_5_9_three_senders", "lemma_4_4_1_ack"};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

BenchRun run_bench(const std::string& bin_dir, const std::string& name) {
  BenchRun r;
  r.name = name;
  // Merge stderr into the captured stream so failures are visible in the
  // baseline file, not lost to the console. bin_dir is single-quoted so
  // spaces/metacharacters in the path survive the shell.
  const std::string cmd = "'" + bin_dir + "/" + name + "' 2>&1";
  const auto t0 = std::chrono::steady_clock::now();
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    r.exit_code = 127;
    r.stdout_lines.push_back("run_all: failed to spawn " + cmd);
    return r;
  }
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe)) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      r.stdout_lines.push_back(line);
      line.clear();
    }
  }
  if (!line.empty()) r.stdout_lines.push_back(line);
  const int status = pclose(pipe);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (status < 0) {
    r.exit_code = status;
  } else if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    // Shell convention: a bench killed by a signal must not read as a pass.
    r.exit_code = 128 + WTERMSIG(status);
  } else {
    r.exit_code = -1;
  }
  return r;
}

void write_json(const std::string& path, const std::string& scale,
                const std::vector<BenchRun>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "run_all: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"zz-bench-baseline-v1\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", scale.c_str());
  std::fprintf(f, "  \"benches\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", json_escape(r.name).c_str());
    std::fprintf(f, "      \"exit_code\": %d,\n", r.exit_code);
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"stdout\": [\n");
    for (std::size_t j = 0; j < r.stdout_lines.size(); ++j) {
      std::fprintf(f, "        \"%s\"%s\n", json_escape(r.stdout_lines[j]).c_str(),
                   j + 1 < r.stdout_lines.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

std::string dir_of(const char* argv0) {
  std::string s(argv0);
  const auto slash = s.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : s.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  std::string scale = "default";
  std::string bin_dir = dir_of(argv[0]);
  std::string out = "BENCH_decoder.json";

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--all") {
      all = true;
    } else if (a == "--quick") {
      scale = "quick";
    } else if (a == "--full") {
      scale = "full";
    } else if (a == "--bin-dir" && i + 1 < argc) {
      bin_dir = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--all] [--quick|--full] [--bin-dir <dir>] "
                   "[--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }

  // The benches read ZZ_QUICK / ZZ_FULL themselves (bench_util.h); the
  // driver just forwards the requested scale through the environment.
  if (scale == "quick") setenv("ZZ_QUICK", "1", 1);
  if (scale == "full") setenv("ZZ_FULL", "1", 1);

  std::vector<std::string> names(std::begin(kBaselineBenches),
                                 std::end(kBaselineBenches));
  if (all) {
    names.insert(names.end(), std::begin(kExtraBenches),
                 std::end(kExtraBenches));
  }

  std::vector<BenchRun> runs;
  int failures = 0;
  for (const auto& name : names) {
    std::printf("run_all: %s ...\n", name.c_str());
    std::fflush(stdout);
    runs.push_back(run_bench(bin_dir, name));
    const auto& r = runs.back();
    std::printf("run_all: %s exit=%d wall=%.0f ms\n", name.c_str(), r.exit_code,
                r.wall_ms);
    if (r.exit_code != 0) ++failures;
  }

  write_json(out, scale, runs);
  std::printf("run_all: wrote %s (%zu benches, %d failed)\n", out.c_str(),
              runs.size(), failures);
  return failures == 0 ? 0 : 1;
}
