// Fig 5-9 — three hidden terminals: CDF of per-sender throughput under
// ZigZag. Paper: all three senders see a fair ~1/3 share, as if each had
// its own time slot.
#include <cstdio>

#include "bench_util.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"
#include "zz/testbed/experiment.h"

int main() {
  using namespace zz;
  testbed::ExperimentConfig cfg;
  cfg.packets_per_sender = bench::scaled(5);
  cfg.payload_bytes = 200;

  Cdf tput;
  double loss = 0.0;
  std::size_t flows = 0;
  const std::size_t runs = bench::scaled(6);
  for (std::size_t r = 0; r < runs; ++r) {
    Rng rng(90 + r);
    const auto out =
        testbed::run_three_hidden(rng, testbed::ReceiverKind::ZigZag, 12.0, cfg);
    for (const auto& f : out) {
      tput.add(f.throughput);
      loss += f.loss_rate();
      ++flows;
    }
  }

  Table t({"cum. fraction", "per-sender throughput"});
  for (double p = 0.0; p <= 1.0; p += 0.2)
    t.add_row({Table::num(p, 3), Table::num(tput.percentile(p), 3)});
  t.print("Fig 5-9: three hidden terminals under ZigZag (" +
          std::to_string(flows) + " flows)");
  std::printf("\nmean per-sender throughput %.3f (fair share = 0.333), "
              "mean loss %s\n",
              tput.mean(), Table::pct(loss / flows, 1).c_str());
  return 0;
}
