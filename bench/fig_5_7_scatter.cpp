// Fig 5-7 — scatter of per-flow throughput, ZigZag vs 802.11: ZigZag helps
// hidden terminals and never hurts anyone else.
#include <cstdio>

#include "testbed_sweep.h"
#include "zz/common/table.h"

int main() {
  using namespace zz;
  const auto sweep = bench::run_testbed_sweep(77);

  Table t({"802.11 tput", "ZigZag tput", "sensing"});
  std::size_t hurt = 0;
  for (const auto& f : sweep.flows) {
    const char* s = f.sensing == testbed::Sensing::Full      ? "full"
                    : f.sensing == testbed::Sensing::Partial ? "partial"
                                                             : "hidden";
    t.add_row({Table::num(f.throughput_80211, 3),
               Table::num(f.throughput_zigzag, 3), s});
    if (f.throughput_zigzag < f.throughput_80211 - 0.08) ++hurt;
  }
  t.print("Fig 5-7: per-flow throughput, ZigZag vs 802.11");
  std::printf("\nflows meaningfully hurt by ZigZag: %zu of %zu "
              "(paper: helps hidden pairs, never hurts)\n",
              hurt, sweep.flows.size());
  return 0;
}
