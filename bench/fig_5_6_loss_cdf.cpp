// Fig 5-6 — CDF of per-flow loss rate over the whole testbed.
// Paper: the average loss rate drops from 18.9% to 0.2%.
#include <cstdio>

#include "testbed_sweep.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"

int main() {
  using namespace zz;
  const auto sweep = bench::run_testbed_sweep(76);
  Cdf c11, czz;
  for (const auto& f : sweep.flows) {
    c11.add(f.loss_80211);
    czz.add(f.loss_zigzag);
  }

  Table t({"cum. fraction", "802.11 loss", "ZigZag loss"});
  for (double p = 0.0; p <= 1.0; p += 0.125)
    t.add_row({Table::num(p, 3), Table::pct(c11.percentile(p), 1),
               Table::pct(czz.percentile(p), 1)});
  t.print("Fig 5-6: CDF of per-flow packet loss (whole testbed)");
  std::printf("\nmean loss: 802.11 %s -> ZigZag %s (paper: 18.9%% -> 0.2%%)\n",
              Table::pct(c11.mean(), 1).c_str(),
              Table::pct(czz.mean(), 1).c_str());
  return 0;
}
