// Lemma 4.4.1 — synchronous-ACK feasibility: the probability that the
// offset between two colliding packets suffices to send an 802.11g ACK.
// Paper: at least 93.7% (slot 20 µs, SIFS 10 µs, ACK 30 µs).
#include <cstdio>

#include "bench_util.h"
#include "zz/common/table.h"
#include "zz/mac/timing.h"

int main() {
  using namespace zz;
  Rng rng(44);
  const mac::DcfTiming t;
  const double bound = mac::ack_offset_probability_bound(t);
  const double mc =
      mac::ack_offset_probability_mc(rng, bench::scaled(400000), t);

  Table tab({"quantity", "value"});
  tab.add_row({"analytic lower bound (Appendix A)", Table::pct(bound, 2)});
  tab.add_row({"Monte-Carlo estimate", Table::pct(mc, 2)});
  tab.add_row({"paper's claim", ">= 93.75%"});
  tab.print("Lemma 4.4.1: P(offset sufficient for synchronous ACK)");
  std::printf("\nMC >= bound: %s\n", mc >= bound - 0.01 ? "yes" : "NO");
  return 0;
}
