// Shared whole-testbed sweep for Figs 5-5 through 5-8: sample sender pairs
// (plus an AP) from the synthesized 14-node topology, run each pair under
// stock 802.11 and under ZigZag, and collect per-flow statistics.
//
// Pairs are embarrassingly parallel: each sampled pair runs on the shared
// worker pool from its own RNG shard, so the sweep's statistics are
// identical for any thread count and the wall time scales with cores.
#pragma once

#include <vector>

#include "bench_util.h"
#include "zz/common/thread_pool.h"
#include "zz/testbed/experiment.h"
#include "zz/testbed/topology.h"

namespace zz::bench {

struct SweepFlow {
  double throughput_80211 = 0.0;
  double throughput_zigzag = 0.0;
  double loss_80211 = 0.0;
  double loss_zigzag = 0.0;
  testbed::Sensing sensing = testbed::Sensing::Full;
};

struct SweepResult {
  std::vector<SweepFlow> flows;        // one per sender in each sampled pair
  std::vector<double> agg_80211;       // per-pair aggregate throughput
  std::vector<double> agg_zigzag;
};

inline SweepResult run_testbed_sweep(std::uint64_t seed = 77) {
  testbed::ExperimentConfig cfg;
  cfg.packets_per_sender = scaled(8);
  cfg.payload_bytes = 200;

  const std::size_t want_pairs = scaled(12);

  struct PairOutcome {
    SweepFlow flows[2];
    double agg_80211 = 0.0;
    double agg_zigzag = 0.0;
  };
  std::vector<PairOutcome> outcomes(want_pairs);

  ThreadPool::shared().parallel_for(want_pairs, [&](std::size_t pi) {
    Rng rng(shard_seed(seed, pi));
    PairOutcome& oc = outcomes[pi];
    for (;;) {
      testbed::Topology topo(rng);
      auto pairs = topo.viable_pairs();
      if (pairs.empty()) continue;
      const auto& pc = pairs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pairs.size()) - 1))];
      const auto sensing = topo.sensing(pc.s1, pc.s2);
      const double p_sense = sensing == testbed::Sensing::Full      ? 1.0
                             : sensing == testbed::Sensing::Partial ? 0.5
                                                                    : 0.0;
      const double snr1 = std::min(topo.snr_db(pc.s1, pc.ap), 30.0);
      const double snr2 = std::min(topo.snr_db(pc.s2, pc.ap), 30.0);
      if (snr1 < 7.0 || snr2 < 7.0) continue;

      const auto r11 = testbed::run_pair(
          rng, testbed::ReceiverKind::Current80211, snr1, snr2, p_sense, cfg);
      const auto rzz = testbed::run_pair(rng, testbed::ReceiverKind::ZigZag,
                                         snr1, snr2, p_sense, cfg);
      for (int i = 0; i < 2; ++i) {
        SweepFlow f;
        f.throughput_80211 = r11.concurrent_throughput[i];
        f.throughput_zigzag = rzz.concurrent_throughput[i];
        f.loss_80211 = r11.flows[i].loss_rate();
        f.loss_zigzag = rzz.flows[i].loss_rate();
        f.sensing = sensing;
        oc.flows[i] = f;
      }
      oc.agg_80211 = r11.total_throughput();
      oc.agg_zigzag = rzz.total_throughput();
      return;
    }
  });

  SweepResult out;
  for (const auto& oc : outcomes) {
    out.flows.push_back(oc.flows[0]);
    out.flows.push_back(oc.flows[1]);
    out.agg_80211.push_back(oc.agg_80211);
    out.agg_zigzag.push_back(oc.agg_zigzag);
  }
  return out;
}

}  // namespace zz::bench
