// §4.6 — "ZigZag is linear in the number of colliding senders".
// google-benchmark timings of the decoder vs number of senders and packet
// size; the per-sender cost should grow roughly linearly.
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace zz;

namespace {

// Build an n-sender, n-collision scenario and time the joint decode.
struct MultiScenario {
  std::vector<bench::Party> parties;
  std::vector<emu::Reception> recs;
  std::vector<phy::SenderProfile> profiles;
  std::vector<zigzag::CollisionInput> inputs;
};

MultiScenario make_multi(Rng& rng, std::size_t n, std::size_t payload) {
  MultiScenario s;
  for (std::size_t i = 0; i < n; ++i)
    s.parties.push_back(bench::make_party(
        rng, static_cast<std::uint8_t>(i + 1),
        static_cast<std::uint16_t>(10 * (i + 1)), payload, 12.0));
  for (std::size_t c = 0; c < n; ++c) {
    emu::CollisionBuilder b;
    b.lead(64);
    for (std::size_t i = 0; i < n; ++i) {
      const auto off = rng.uniform_int(0, 40) * 20;
      b.add(phy::with_retry(s.parties[i].frame, c > 0),
            chan::retransmission_channel(rng, s.parties[i].channel, 0.0), off);
    }
    s.recs.push_back(b.build(rng));
  }
  for (auto& p : s.parties) s.profiles.push_back(p.profile);
  s.inputs.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    s.inputs[c].samples = &s.recs[c].samples;
    s.inputs[c].is_retransmission = c > 0;
    for (std::size_t i = 0; i < n; ++i)
      s.inputs[c].placements.push_back(
          {i, bench::detect_at(s.recs[c].samples, s.recs[c].truth[i].start,
                               s.profiles[i], static_cast<int>(i))});
  }
  return s;
}

void BM_DecodeVsSenders(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(123 + n);
  auto s = make_multi(rng, n, 150);
  const zigzag::ZigZagDecoder dec;
  for (auto _ : state) {
    auto res = dec.decode({s.inputs.data(), s.inputs.size()}, s.profiles, n);
    benchmark::DoNotOptimize(res);
  }
  state.counters["per_sender_ms"] = benchmark::Counter(
      1e3 * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_DecodeVsPayload(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  Rng rng(321);
  auto s = make_multi(rng, 2, payload);
  const zigzag::ZigZagDecoder dec;
  for (auto _ : state) {
    auto res = dec.decode({s.inputs.data(), s.inputs.size()}, s.profiles, 2);
    benchmark::DoNotOptimize(res);
  }
}

void BM_StandardDecode(benchmark::State& state) {
  Rng rng(77);
  auto p = bench::make_party(rng, 1, 5, static_cast<std::size_t>(state.range(0)), 12.0);
  const CVec rx = chan::clean_reception(rng, p.frame.symbols, p.channel);
  const phy::StandardReceiver std_rx;
  for (auto _ : state) {
    auto d = std_rx.decode(rx, &p.profile);
    benchmark::DoNotOptimize(d);
  }
}

}  // namespace

BENCHMARK(BM_DecodeVsSenders)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecodeVsPayload)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StandardDecode)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
