// Fig 4-7 — "Failure Probability v/s number of colliding nodes".
// (a) nodes pick from a fixed congestion window cw ∈ {8, 16, 32};
// (b) nodes use 802.11 binary exponential backoff.
// The greedy §4.5 chunk scheduler decodes n senders from n collisions
// unless the random offsets are degenerate (Assertion 4.5.1).
#include <cstdio>

#include "bench_util.h"
#include "zz/common/table.h"
#include "zz/mac/offsets.h"

int main() {
  using namespace zz;
  Rng rng(47);
  const std::size_t trials = bench::scaled(4000);

  std::printf("Fig 4-7(a): greedy failure probability, fixed cw (%zu trials)\n",
              trials);
  Table a({"nodes", "cw=8", "cw=16", "cw=32"});
  for (std::size_t n = 2; n <= 9; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    for (int cw : {8, 16, 32}) {
      mac::OffsetSimConfig cfg;
      cfg.cw = cw;
      row.push_back(
          Table::num(mac::greedy_failure_probability(rng, n, trials, cfg), 4));
    }
    a.add_row(row);
  }
  a.print();

  std::printf("\nFig 4-7(b): greedy failure probability, exponential backoff\n");
  Table b({"nodes", "P(fail)"});
  for (std::size_t n = 2; n <= 9; ++n) {
    mac::OffsetSimConfig cfg;
    cfg.exponential_backoff = true;
    b.add_row({std::to_string(n),
               Table::num(mac::greedy_failure_probability(rng, n, trials, cfg), 5)});
  }
  b.print();
  std::printf("\nPaper shape: failure drops as cw grows and stays low (<~1e-2)\n"
              "for >2 nodes; BEB pushes it lower still.\n");
  return 0;
}
