// Fig 5-2 — (a) bit errors accumulate along a long packet when frequency
// tracking is disabled; (b) ISI makes a received bit's value depend on its
// neighbours.
#include <cstdio>

#include "bench_util.h"
#include "zz/common/table.h"

int main() {
  using namespace zz;
  Rng rng(52);

  // (a) Error distribution vs bit index without tracking (1500 B packets).
  auto s = bench::make_pair_scenario(rng, 1500, 12.0, 400, 1100);
  zigzag::DecodeOptions off;
  off.reconstruction_tracking = false;
  const zigzag::ZigZagDecoder dec(off);
  const zigzag::CollisionInput inputs[2] = {s.in1, s.in2};
  const auto res = dec.decode({inputs, 2}, s.profiles, 2);

  std::printf("Fig 5-2(a): bit errors per 1000-bit window, tracking OFF\n");
  Table t({"bit window", "errors (Alice)", "errors (Bob)"});
  const Bits ta = s.alice.frame.air_bits();
  const Bits tb = s.bob.frame.air_bits();
  const std::size_t win = 1000;
  for (std::size_t w = 0; w + win <= ta.size(); w += win) {
    std::size_t ea = 0, eb = 0;
    for (std::size_t k = w; k < w + win; ++k) {
      if (res.packets[0].header_ok && k < res.packets[0].air_bits.size() &&
          ta[k] != res.packets[0].air_bits[k])
        ++ea;
      if (res.packets[1].header_ok && k < res.packets[1].air_bits.size() &&
          tb[k] != res.packets[1].air_bits[k])
        ++eb;
    }
    t.add_row({std::to_string(w) + "-" + std::to_string(w + win),
               std::to_string(ea), std::to_string(eb)});
  }
  t.print();
  std::printf("Paper shape: early bits clean, errors explode later in the "
              "packet as the residual phase rotation accumulates.\n");

  // (b) ISI-prone symbols: received value depends on the previous bit.
  Rng rng2(53);
  CVec syms(400);
  Bits bits(400);
  for (std::size_t i = 0; i < 400; ++i) {
    bits[i] = rng2.bit();
    syms[i] = bits[i] ? cplx{1.0, 0.0} : cplx{-1.0, 0.0};
  }
  chan::ChannelParams p;
  p.isi = sig::Fir({cplx{0.08, 0.0}, cplx{1.0, 0.0}, cplx{0.22, 0.0}}, 1);
  CVec buf(900, cplx{});
  chan::add_signal(buf, 0, syms, p);

  double one_after_one = 0, one_after_zero = 0;
  std::size_t n11 = 0, n10 = 0;
  for (std::size_t k = 2; k < 398; ++k) {
    if (!bits[k]) continue;
    const double v = buf[2 * k].real();
    if (bits[k - 1]) {
      one_after_one += v;
      ++n11;
    } else {
      one_after_zero += v;
      ++n10;
    }
  }
  std::printf("\nFig 5-2(b): mean received value of a '1' bit\n");
  std::printf("  preceded by '1': %+.3f   preceded by '0': %+.3f\n",
              one_after_one / n11, one_after_zero / n10);
  std::printf("Paper shape: a bit's analog value leans toward its "
              "neighbours' values — the ISI the inverse filter must model.\n");
  return 0;
}
