// Fig 5-3 — "Comparison of Bit Error Rate": ZigZag decodes collisions with
// BER close to interference-free transmission, and forward+backward
// decoding with MRC pushes it below (paper: 1.4x lower on average).
//
// Every (SNR, pair) cell runs from its own RNG shard on the worker pool;
// the reported numbers are identical for any thread count.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "zz/common/table.h"
#include "zz/common/thread_pool.h"

using namespace zz;

namespace {

struct CellResult {
  double ber_cf = 0, ber_fwd = 0, ber_full = 0;
  std::size_t n_cf = 0, n_fwd = 0, n_full = 0, undecoded = 0;

  void operator+=(const CellResult& o) {
    ber_cf += o.ber_cf;
    ber_fwd += o.ber_fwd;
    ber_full += o.ber_full;
    n_cf += o.n_cf;
    n_fwd += o.n_fwd;
    n_full += o.n_full;
    undecoded += o.undecoded;
  }
};

}  // namespace

int main() {
  const std::size_t pairs = bench::scaled(8);
  const std::size_t payload = 300;
  constexpr double kSnrLo = 5.0, kSnrHi = 12.0;
  const auto snr_points = static_cast<std::size_t>(kSnrHi - kSnrLo) + 1;

  // One task per (SNR, pair) cell; reduce deterministically afterwards.
  std::vector<CellResult> cells(snr_points * pairs);
  ThreadPool::shared().parallel_for(cells.size(), [&](std::size_t idx) {
    const double snr = kSnrLo + static_cast<double>(idx / pairs);
    Rng rng(shard_seed(53, idx));
    CellResult& cell = cells[idx];

    // The paper's BER metric is physical-layer: averaged over packets whose
    // framing decoded (header failures are counted separately, like sync
    // losses in the prototype).
    auto s = bench::make_pair_scenario(rng, payload, snr,
                                       100 + rng.uniform_int(0, 300),
                                       600 + rng.uniform_int(0, 600));
    const zigzag::CollisionInput inputs[2] = {s.in1, s.in2};

    zigzag::DecodeOptions fwd;
    fwd.backward_pass = false;
    fwd.refinement_passes = 0;
    const auto rf = zigzag::ZigZagDecoder(fwd).decode({inputs, 2}, s.profiles, 2);
    const auto rb = zigzag::ZigZagDecoder().decode({inputs, 2}, s.profiles, 2);

    auto tally = [&cell](const bench::Party& party,
                         const zigzag::PacketResult& r, double& acc,
                         std::size_t& n) {
      if (!r.header_ok) {
        ++cell.undecoded;
        return;
      }
      acc += bench::packet_ber(party.frame, r);
      ++n;
    };
    tally(s.alice, rf.packets[0], cell.ber_fwd, cell.n_fwd);
    tally(s.bob, rf.packets[1], cell.ber_fwd, cell.n_fwd);
    tally(s.alice, rb.packets[0], cell.ber_full, cell.n_full);
    tally(s.bob, rb.packets[1], cell.ber_full, cell.n_full);

    // Collision-free reference: the same two packets in separate slots.
    const phy::StandardReceiver std_rx;
    for (const auto* party : {&s.alice, &s.bob}) {
      const auto ch = chan::retransmission_channel(rng, party->channel, 0.0);
      const CVec rx = chan::clean_reception(rng, party->frame.symbols, ch);
      const auto d = std_rx.decode(rx, &party->profile);
      if (!d.header_ok) {
        ++cell.undecoded;
        continue;
      }
      cell.ber_cf += bit_error_rate(party->frame.air_bits(), d.air_bits);
      ++cell.n_cf;
    }
  });

  Table t({"SNR (dB)", "Collision-Free", "ZigZag fwd-only", "ZigZag fwd+bwd",
           "undecoded"});
  double sum_cf = 0, sum_full = 0;
  int rows = 0;
  for (std::size_t si = 0; si < snr_points; ++si) {
    CellResult row;
    for (std::size_t i = 0; i < pairs; ++i) row += cells[si * pairs + i];
    const double snr = kSnrLo + static_cast<double>(si);
    const double cf = row.n_cf ? row.ber_cf / static_cast<double>(row.n_cf) : 0.0;
    const double f1 = row.n_fwd ? row.ber_fwd / static_cast<double>(row.n_fwd) : 0.0;
    const double f2 = row.n_full ? row.ber_full / static_cast<double>(row.n_full) : 0.0;
    sum_cf += cf;
    sum_full += f2;
    ++rows;
    t.add_row({Table::num(snr, 3), Table::num(cf, 3), Table::num(f1, 3),
               Table::num(f2, 3),
               std::to_string(row.undecoded) + "/" + std::to_string(6 * pairs)});
  }
  t.print("Fig 5-3: BER vs SNR (mean packet BER over " +
          std::to_string(pairs) + " collision pairs per point)");
  std::printf("\nAvg collision-free BER %.2e vs fwd+bwd ZigZag %.2e "
              "(paper: fwd+bwd is ~1.4x LOWER than collision-free)\n",
              sum_cf / rows, sum_full / rows);
  return 0;
}
