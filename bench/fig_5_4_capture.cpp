// Fig 5-4 — throughput vs SINR in capture-effect scenarios: Alice moves
// closer to the AP while Bob stays put. ZigZag beats both 802.11 (which
// starves Bob) and the Collision-Free Scheduler (which cannot exploit the
// widening capacity), peaking toward 2x when single-collision cancellation
// kicks in.
#include <cstdio>

#include "bench_util.h"
#include "zz/common/table.h"
#include "zz/testbed/experiment.h"

using namespace zz;

int main() {
  const double snr_bob = 12.0;
  testbed::ExperimentConfig cfg;
  cfg.packets_per_sender = bench::scaled(8);
  cfg.payload_bytes = 200;

  Table t({"SINR (dB)", "802.11 A", "802.11 B", "802.11 tot", "CFS tot",
           "ZigZag A", "ZigZag B", "ZigZag tot"});
  for (double sinr = 0.0; sinr <= 16.0; sinr += 2.0) {
    Rng rng(60 + static_cast<std::uint64_t>(sinr));
    const double snr_alice = snr_bob + sinr;
    const auto r11 = testbed::run_pair(rng, testbed::ReceiverKind::Current80211,
                                       snr_alice, snr_bob, 0.0, cfg);
    const auto rcf = testbed::run_pair(
        rng, testbed::ReceiverKind::CollisionFreeScheduler, snr_alice, snr_bob,
        0.0, cfg);
    const auto rzz = testbed::run_pair(rng, testbed::ReceiverKind::ZigZag,
                                       snr_alice, snr_bob, 0.0, cfg);
    t.add_row({Table::num(sinr, 3),
               Table::num(r11.concurrent_throughput[0], 3),
               Table::num(r11.concurrent_throughput[1], 3),
               Table::num(r11.total_throughput(), 3),
               Table::num(rcf.total_throughput(), 3),
               Table::num(rzz.concurrent_throughput[0], 3),
               Table::num(rzz.concurrent_throughput[1], 3),
               Table::num(rzz.total_throughput(), 3)});
  }
  t.print("Fig 5-4: normalized throughput vs SINR = SNR_A - SNR_B "
          "(SNR_B fixed at 12 dB)");
  std::printf("\nPaper shape: 802.11 ~0 until capture lets Alice through "
              "(Bob never); CFS pinned at 1.0;\nZigZag starts at ~1.0 "
              "(collision pair decoding) and rises toward 2.0 once capture\n"
              "enables single-collision cancellation.\n");
  return 0;
}
